// Command predict evaluates the paper's performance models for an
// All-to-All of n processes and message size m, given a contention
// signature (γ, δ, M) and Hockney parameters — the deployment-time use
// case of the paper: predict collective cost on a network you have
// characterized once.
//
// Usage:
//
//	predict -alpha 46.8e-6 -beta 8.44e-9 -gamma 4.36 -delta 4.93e-3 -M 8192 -n 40 -m 1048576
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/model"
)

func main() {
	var (
		alpha = flag.Float64("alpha", 0, "Hockney α (s)")
		beta  = flag.Float64("beta", 0, "Hockney β (s/B)")
		gamma = flag.Float64("gamma", 1, "contention ratio γ")
		delta = flag.Float64("delta", 0, "start-up overload δ (s)")
		mThr  = flag.Int("M", 0, "δ activation threshold (bytes)")
		n     = flag.Int("n", 0, "process count")
		m     = flag.Int("m", 0, "message size (bytes)")
	)
	flag.Parse()
	if *alpha <= 0 || *beta <= 0 || *n < 2 || *m <= 0 {
		fmt.Fprintln(os.Stderr, "predict: need -alpha, -beta, -n >= 2 and -m > 0")
		os.Exit(2)
	}
	h := model.Hockney{Alpha: *alpha, Beta: *beta}
	sig := model.Signature{H: h, Gamma: *gamma, Delta: *delta, M: *mThr}
	fmt.Printf("hockney:             %s\n", h)
	fmt.Printf("signature:           %s\n", sig)
	fmt.Printf("lower bound:         %.6fs\n", model.LowerBound(h, *n, *m))
	fmt.Printf("naive eq.(1):        %.6fs\n", model.Naive{H: h}.Predict(*n, *m))
	fmt.Printf("clement eq.(2):      %.6fs\n", model.Clement{H: h}.Predict(*n, *m))
	fmt.Printf("signature eq.(5):    %.6fs\n", sig.Predict(*n, *m))
}
