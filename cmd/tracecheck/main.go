// Command tracecheck validates an NDJSON observability trace (as
// written by gridplanner -trace or atabench -trace) against the event
// schema in docs/OBSERVABILITY.md: every line must be a well-formed
// event of a known type with its required fields. Exits nonzero on the
// first malformed line, so CI can gate on trace well-formedness.
//
// Usage:
//
//	tracecheck trace.ndjson
//	gridplanner -trace /dev/stdout | tracecheck -
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.ndjson|->")
		os.Exit(2)
	}
	var r io.Reader
	if os.Args[1] == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	n, err := obs.ValidateNDJSON(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace ok: %d lines\n", n)
}
