// Command tracecheck validates an NDJSON observability trace (as
// written by gridplanner -trace or atabench -trace) against the event
// schema in docs/OBSERVABILITY.md: every line must be a well-formed
// event of a known type with its required fields. Exits nonzero on the
// first malformed line, so CI can gate on trace well-formedness.
//
// Beyond schema validation, repeatable -counter flags assert on the
// trace's final counter values, so CI can also gate on behavior — e.g.
// that a warm-store planner run characterized nothing:
//
//	tracecheck -counter planner.probes=0 -counter store.miss=0 \
//	           -counter 'store.hit>=1' trace.ndjson
//
// An assertion is an exact match (name=value), a lower bound
// (name>=value), or an upper bound (name<=value — e.g. that a replan
// probed no more than the invalidated tier's budget). A counter absent
// from the trace has value 0 — traces only carry counters that were
// actually fed.
//
// Repeatable -span flags assert that a named span was opened at least
// once in the trace — e.g. that a planner run actually exercised the
// collective suite's traced validation path:
//
//	tracecheck -span simulate.kind trace.ndjson
//
// Usage:
//
//	tracecheck [-counter name=value]... [-span name]... <trace.ndjson|->
//	gridplanner -trace /dev/stdout | tracecheck -
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// counterAssertion is one parsed -counter flag.
type counterAssertion struct {
	name  string
	value uint64
	op    string // "=", ">=" or "<="
}

// assertionList collects repeated -counter flags.
type assertionList []counterAssertion

func (l *assertionList) String() string {
	var parts []string
	for _, a := range *l {
		parts = append(parts, fmt.Sprintf("%s%s%d", a.name, a.op, a.value))
	}
	return strings.Join(parts, ",")
}

func (l *assertionList) Set(s string) error {
	a, err := parseAssertion(s)
	if err != nil {
		return err
	}
	*l = append(*l, a)
	return nil
}

// parseAssertion parses "name=value", "name>=value" or "name<=value".
// The two-character operators are tried first: a bare "=" cut of
// "x>=1" would leave ">" dangling in the name.
func parseAssertion(s string) (counterAssertion, error) {
	op := "="
	switch {
	case strings.Contains(s, ">="):
		op = ">="
	case strings.Contains(s, "<="):
		op = "<="
	}
	name, val, ok := strings.Cut(s, op)
	if !ok || name == "" {
		return counterAssertion{}, fmt.Errorf("want name=value, name>=value or name<=value, got %q", s)
	}
	v, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return counterAssertion{}, fmt.Errorf("bad counter value in %q: %v", s, err)
	}
	return counterAssertion{name: name, value: v, op: op}, nil
}

// stringList collects repeated -span flags.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(s string) error {
	if s == "" {
		return fmt.Errorf("span name must be non-empty")
	}
	*l = append(*l, s)
	return nil
}

// traceCounters extracts the final counter values and the set of opened
// span names from a validated trace: the synthetic "counter" lines
// WriteNDJSON appends per fed counter, and each "span.start" line's
// name. Counters never mentioned are implicitly 0.
func traceCounters(trace []byte) (map[string]uint64, map[string]bool, error) {
	out := map[string]uint64{}
	spans := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(trace))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var m struct {
			Type  string  `json:"type"`
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			return nil, nil, err
		}
		switch m.Type {
		case "counter":
			out[m.Name] = uint64(m.Value)
		case "span.start":
			spans[m.Name] = true
		}
	}
	return out, spans, sc.Err()
}

func main() {
	var asserts assertionList
	var spanAsserts stringList
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.Var(&asserts, "counter", "assert a final counter value, name=value, name>=value or name<=value (repeatable; absent counters are 0)")
	fs.Var(&spanAsserts, "span", "assert the trace opened at least one span with this name (repeatable)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-counter name=value]... [-span name]... <trace.ndjson|->")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	arg := fs.Arg(0)
	var r io.Reader
	if arg == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	// The validator and the counter scan each need the full stream;
	// buffer it once so "-" works for both.
	trace, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	n, err := obs.ValidateNDJSON(bytes.NewReader(trace))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	counters, spans, err := traceCounters(trace)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	failed := 0
	for _, name := range spanAsserts {
		if !spans[name] {
			fmt.Fprintf(os.Stderr, "tracecheck: trace opened no span named %q\n", name)
			failed++
		}
	}
	for _, a := range asserts {
		got := counters[a.name]
		var ok bool
		switch a.op {
		case ">=":
			ok = got >= a.value
		case "<=":
			ok = got <= a.value
		default:
			ok = got == a.value
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "tracecheck: counter %s is %d, want %s%d\n", a.name, got, a.op, a.value)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
	fmt.Printf("trace ok: %d lines", n)
	if len(asserts) > 0 {
		fmt.Printf(", %d counter assertions", len(asserts))
	}
	if len(spanAsserts) > 0 {
		fmt.Printf(", %d span assertions", len(spanAsserts))
	}
	fmt.Println()
}
