// Command netprobe runs the Section 3 network saturation methodology
// (Figs. 1–3): it opens many simultaneous point-to-point connections on
// a simulated cluster, floods the network, and reports per-connection
// times, the average bandwidth, and the derived βF/βC pair.
//
// Usage:
//
//	netprobe -profile gigabit-ethernet -nodes 16 -conns 40 -size 33554432
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/stats"
)

func main() {
	var (
		profile = flag.String("profile", "gigabit-ethernet", "cluster profile (fast-ethernet|gigabit-ethernet|myrinet|infiniband-like)")
		nodes   = flag.Int("nodes", 16, "cluster size")
		conns   = flag.Int("conns", 40, "simultaneous connections")
		size    = flag.Int("size", 32<<20, "bytes per connection (paper: 32 MB)")
		seed    = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	p, err := cluster.ByName(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netprobe: %v\n", err)
		os.Exit(2)
	}

	single := calib.SaturationProbe(p, mpi.Config{}, *nodes, 1, *size, *seed)
	heavy := calib.SaturationProbe(p, mpi.Config{}, *nodes, *conns, *size, *seed)

	fmt.Printf("profile=%s nodes=%d size=%d\n\n", p.Name, *nodes, *size)
	fmt.Printf("single connection: %.4fs (%.1f MB/s)\n\n", single.Times[0], single.AvgBandwidth()/1e6)
	fmt.Printf("%d connections:\n", *conns)
	fmt.Printf("  %-10s %s\n", "conn", "time_s")
	for i, t := range heavy.Times {
		fmt.Printf("  %-10d %.4f\n", i, t)
	}
	fmt.Printf("\nmean=%.4fs p95=%.4fs max=%.4fs (max/mean=%.2fx)\n",
		heavy.MeanTime(), stats.Quantile(heavy.Times, 0.95), heavy.MaxTime(),
		heavy.MaxTime()/heavy.MeanTime())
	fmt.Printf("avg bandwidth=%.1f MB/s\n", heavy.AvgBandwidth()/1e6)
	bf, bc := calib.ExtractBetas(single, heavy)
	fmt.Printf("betaF=%.4g s/B  betaC=%.4g s/B  synthetic beta(rho=0.5)=%.4g s/B\n",
		bf, bc, 0.5*bf+0.5*bc)
}
