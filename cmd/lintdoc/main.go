// lintdoc is the repository's godoc lint: it fails when a package in
// the given directories misses its package comment, exports an
// identifier (type, function, method, var, const) without a doc
// comment, or documents an exported identifier with a comment that does
// not start with the identifier's name (go vet style — "Foo ..." or
// "A Foo ..."; grouped declarations whose shared comment covers several
// names are exempt). CI runs it over the core packages so the
// documented-API guarantee of docs/ARCHITECTURE.md stays enforced, with
// no external linter dependency.
//
// Usage:
//
//	go run ./cmd/lintdoc internal/grid internal/coll internal/model internal/netsim
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d godoc issue(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir checks one package directory and returns the number of
// missing doc comments, printing one line per finding.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdoc: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(p.Filename), p.Line, fmt.Sprintf(format, args...))
		bad++
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", filepath.ToSlash(dir), pkg.Name)
			bad++
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil || len(strings.TrimSpace(d.Doc.Text())) == 0 {
						report(d.Pos(), "exported %s %s has no doc comment", declKind(d), d.Name.Name)
					} else if !docStartsWithName(d.Doc.Text(), d.Name.Name) {
						report(d.Pos(), "comment on exported %s %s should be of the form %q",
							declKind(d), d.Name.Name, d.Name.Name+" ...")
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return bad
}

// declKind names a FuncDecl for messages: method or function.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// receiverExported reports whether a declaration is a plain function or
// a method on an exported receiver type — methods of unexported types
// are not part of the package API and need no doc comment.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	ident, ok := t.(*ast.Ident)
	return !ok || ident.IsExported()
}

// lintGenDecl checks exported specs of a const/var/type declaration.
// A doc comment on the grouped declaration covers every spec in it; the
// starts-with-name rule applies only where a comment documents exactly
// one identifier (a spec's own doc, or an ungrouped declaration's).
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	groupDoc := d.Doc != nil && len(strings.TrimSpace(d.Doc.Text())) > 0
	// An ungrouped declaration (`type T ...`, `var V = ...`) parses as
	// one spec whose doc sits on the GenDecl: that comment names exactly
	// this identifier and must start with it.
	soleSpec := !d.Lparen.IsValid() && len(d.Specs) == 1
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := ""
			if s.Doc != nil {
				doc = s.Doc.Text()
			} else if groupDoc && soleSpec {
				doc = d.Doc.Text()
			}
			switch {
			case !groupDoc && len(strings.TrimSpace(doc)) == 0:
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			case len(strings.TrimSpace(doc)) > 0 && !docStartsWithName(doc, s.Name.Name):
				report(s.Pos(), "comment on exported type %s should be of the form %q",
					s.Name.Name, s.Name.Name+" ...")
			}
		case *ast.ValueSpec:
			var exported []string
			for _, n := range s.Names {
				if n.IsExported() {
					exported = append(exported, n.Name)
				}
			}
			if len(exported) == 0 {
				continue
			}
			// Trailing line comments (`X = 1 // annotation`) count as
			// documentation for the missing-doc check but are exempt
			// from the starts-with-name rule: the convention governs
			// doc comments, not idiomatic trailing annotations.
			doc, trailing := "", false
			if s.Doc != nil {
				doc = s.Doc.Text()
			} else if groupDoc && soleSpec {
				doc = d.Doc.Text()
			} else if s.Comment != nil {
				doc, trailing = s.Comment.Text(), true
			}
			if !groupDoc && len(strings.TrimSpace(doc)) == 0 {
				report(s.Pos(), "exported %s %s has no doc comment", d.Tok, strings.Join(exported, ", "))
				continue
			}
			// A comment can only be required to lead with the name when
			// it documents exactly one identifier.
			if len(s.Names) == 1 && !trailing && len(strings.TrimSpace(doc)) > 0 &&
				!docStartsWithName(doc, exported[0]) {
				report(s.Pos(), "comment on exported %s %s should be of the form %q",
					d.Tok, exported[0], exported[0]+" ...")
			}
		}
	}
}

// docStartsWithName reports whether a doc comment leads with the
// identifier it documents, allowing one leading article ("A", "An",
// "The") before the name, per the Go documentation convention.
func docStartsWithName(doc, name string) bool {
	fields := strings.Fields(doc)
	if len(fields) == 0 {
		return true // emptiness is the missing-comment check's business
	}
	if fields[0] == name {
		return true
	}
	switch fields[0] {
	case "A", "An", "The":
		return len(fields) > 1 && fields[1] == name
	}
	return false
}
