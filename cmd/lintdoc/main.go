// lintdoc is the repository's godoc lint: it fails when a package in
// the given directories misses its package comment or exports an
// identifier (type, function, method, var, const) without a doc
// comment. CI runs it over the core packages so the documented-API
// guarantee of docs/ARCHITECTURE.md stays enforced, with no external
// linter dependency.
//
// Usage:
//
//	go run ./cmd/lintdoc internal/grid internal/coll internal/model internal/netsim
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir checks one package directory and returns the number of
// missing doc comments, printing one line per finding.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdoc: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(p.Filename), p.Line, fmt.Sprintf(format, args...))
		bad++
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			fmt.Printf("%s: package %s has no package comment\n", filepath.ToSlash(dir), pkg.Name)
			bad++
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil || len(strings.TrimSpace(d.Doc.Text())) == 0 {
						report(d.Pos(), "exported %s %s has no doc comment", declKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return bad
}

// declKind names a FuncDecl for messages: method or function.
func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// receiverExported reports whether a declaration is a plain function or
// a method on an exported receiver type — methods of unexported types
// are not part of the package API and need no doc comment.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	ident, ok := t.(*ast.Ident)
	return !ok || ident.IsExported()
}

// lintGenDecl checks exported specs of a const/var/type declaration.
// A doc comment on the grouped declaration covers every spec in it.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	groupDoc := d.Doc != nil && len(strings.TrimSpace(d.Doc.Text())) > 0
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && (s.Doc == nil || len(strings.TrimSpace(s.Doc.Text())) == 0) {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			var exported []string
			for _, n := range s.Names {
				if n.IsExported() {
					exported = append(exported, n.Name)
				}
			}
			if len(exported) == 0 {
				continue
			}
			specDoc := (s.Doc != nil && len(strings.TrimSpace(s.Doc.Text())) > 0) ||
				(s.Comment != nil && len(strings.TrimSpace(s.Comment.Text())) > 0)
			if !groupDoc && !specDoc {
				report(s.Pos(), "exported %s %s has no doc comment", d.Tok, strings.Join(exported, ", "))
			}
		}
	}
}
