// Command atabench runs the paper-reproduction experiments (one per
// figure, plus the signature table, the ablations, and the grid
// prediction-vs-simulation experiments GR1–GR7) and prints their data
// series.
//
// Usage:
//
//	atabench -list
//	atabench -exp F09                 # one experiment, CI scale
//	atabench -exp F09 -full           # paper-scale grids (slow)
//	atabench -exp GR7 -coll allreduce # collective suite, one kind
//	atabench -all -scale 0.25 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coll"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		expID    = flag.String("exp", "", "experiment id to run (e.g. F09, TA, AB2)")
		all      = flag.Bool("all", false, "run every experiment")
		full     = flag.Bool("full", false, "paper-scale grids (slow)")
		scale    = flag.Float64("scale", 0, "explicit scale factor (overrides -full)")
		reps     = flag.Int("reps", 0, "repetitions per point")
		seed     = flag.Int64("seed", 0, "simulation seed")
		csv      = flag.Bool("csv", false, "CSV output instead of aligned tables")
		alg      = flag.String("alg", "postall", "alltoall algorithm: direct|postall|bruck|pairwise")
		trace    = flag.String("trace", "", "write an NDJSON observability trace of the grid experiments' planner runs to this file")
		simMode  = flag.String("sim", "packet", "simulation engine for grid planner characterizations: packet|fluid")
		collKind = flag.String("coll", "", "restrict the collective-suite experiment (GR7) to one kind: allgather|broadcast|reduce|reduce-scatter|allreduce")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := exp.DefaultConfig()
	if *full {
		cfg = exp.PaperConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *trace != "" {
		cfg.Trace = obs.New()
	}
	mode, err := sim.ParseMode(*simMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atabench: %v\n", err)
		os.Exit(2)
	}
	cfg.SimMode = mode
	if *collKind != "" {
		if _, err := coll.ParseKind(*collKind); err != nil {
			fmt.Fprintf(os.Stderr, "atabench: %v\n", err)
			os.Exit(2)
		}
		cfg.Coll = *collKind
	}
	switch *alg {
	case "direct":
		cfg.Algorithm = coll.Direct
	case "postall":
		cfg.Algorithm = coll.PostAll
	case "bruck":
		cfg.Algorithm = coll.Bruck
	case "pairwise":
		cfg.Algorithm = coll.Pairwise
	default:
		fmt.Fprintf(os.Stderr, "atabench: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	var toRun []exp.Experiment
	switch {
	case *all:
		toRun = exp.All()
	case *expID != "":
		e, err := exp.ByID(*expID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atabench: %v (use -list)\n", err)
			os.Exit(2)
		}
		toRun = []exp.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "atabench: need -exp <id>, -all or -list")
		os.Exit(2)
	}

	for _, e := range toRun {
		res := e.Run(cfg)
		if *csv {
			exp.WriteCSV(os.Stdout, res)
		} else {
			exp.WriteText(os.Stdout, res)
		}
		fmt.Println()
	}

	if cfg.Trace != nil {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atabench: %v\n", err)
			os.Exit(1)
		}
		if err := cfg.Trace.WriteNDJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "atabench: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "atabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("observability trace (%d events) written to %s\n", len(cfg.Trace.Events()), *trace)
	}
}
