// Command sigfit fits a contention signature (γ, δ, M) from All-to-All
// measurements. It either reads samples from a CSV file (columns:
// msg_bytes,time_s) together with explicit Hockney parameters, or runs
// the full in-simulator procedure for a named cluster profile.
//
// Usage:
//
//	sigfit -profile gigabit-ethernet -n 40          # simulate + fit
//	sigfit -csv samples.csv -alpha 46.8e-6 -beta 8.44e-9 -n 40
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/signature"
)

func main() {
	var (
		profile = flag.String("profile", "", "cluster profile to simulate and fit")
		n       = flag.Int("n", 24, "process count n' of the samples")
		csvPath = flag.String("csv", "", "CSV file with msg_bytes,time_s samples")
		alpha   = flag.Float64("alpha", 0, "Hockney α (s), required with -csv")
		beta    = flag.Float64("beta", 0, "Hockney β (s/B), required with -csv")
		fixedM  = flag.Int("M", 0, "fix the δ threshold instead of scanning")
		uniform = flag.Bool("uniform", false, "uniform weighting instead of relative (GLS)")
		seed    = flag.Int64("seed", 1, "simulation seed (profile mode)")
	)
	flag.Parse()

	var h model.Hockney
	var samples []signature.Sample

	switch {
	case *csvPath != "":
		if *alpha <= 0 || *beta <= 0 {
			fmt.Fprintln(os.Stderr, "sigfit: -csv requires -alpha and -beta")
			os.Exit(2)
		}
		h = model.Hockney{Alpha: *alpha, Beta: *beta}
		var err error
		samples, err = readSamples(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigfit: %v\n", err)
			os.Exit(1)
		}
	case *profile != "":
		p, err := cluster.ByName(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigfit: %v\n", err)
			os.Exit(2)
		}
		h = calib.PingPong(p, mpi.Config{}, *seed, calib.PingPongConfig{})
		fmt.Printf("calibrated hockney: %s\n", h)
		for _, m := range []int{16 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20} {
			cl := cluster.Build(p, *n, *seed+int64(m))
			w := mpi.NewWorld(cl, mpi.Config{})
			meas := coll.Measure(w, 1, 2, func(r *mpi.Rank) { coll.Alltoall(r, m, coll.PostAll) })
			fmt.Printf("measured n=%d m=%d: %.6fs\n", *n, m, meas.Mean())
			samples = append(samples, signature.Sample{M: m, T: meas.Mean()})
		}
	default:
		fmt.Fprintln(os.Stderr, "sigfit: need -profile or -csv (see -h)")
		os.Exit(2)
	}

	opts := signature.Options{FixedM: *fixedM}
	if *uniform {
		opts.Weighting = signature.Uniform
	}
	sig, rep, err := signature.Fit(h, *n, samples, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigfit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nsignature: %s\n", sig)
	fmt.Printf("fit MAPE: %.2f%%  weighted SSE: %.4g\n", rep.MAPE*100, rep.SSE)
	fmt.Println("\npredictions:")
	for _, pn := range []int{8, 16, 24, 40, 64} {
		fmt.Printf("  n=%2d m=1MB: %.4fs\n", pn, sig.Predict(pn, 1<<20))
	}
}

// readSamples parses "msg_bytes,time_s" lines, skipping comments.
func readSamples(path string) ([]signature.Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []signature.Sample
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "msg") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("bad line %q", line)
		}
		m, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("bad size in %q: %v", line, err)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %v", line, err)
		}
		out = append(out, signature.Sample{M: m, T: t})
	}
	return out, sc.Err()
}
