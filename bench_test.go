// Package repro's top-level benchmarks regenerate every figure of the
// paper's evaluation plus the signature table and the ablations, as laid
// out in DESIGN.md. Each benchmark runs its experiment at a CI-friendly
// scale (override with -bench-scale) and reports the headline quantities
// as custom metrics, so `go test -bench=. -benchmem` doubles as the
// reproduction harness. Full paper-scale grids: cmd/atabench -full.
package main

import (
	"flag"
	"os"
	"testing"

	"repro/internal/exp"
)

var (
	benchScale = flag.Float64("bench-scale", 0.125, "experiment scale factor for benchmarks")
	benchSeed  = flag.Int64("bench-seed", 1, "simulation seed for benchmarks")
)

// benchConfig builds the experiment configuration for benchmarks.
func benchConfig() exp.Config {
	cfg := exp.DefaultConfig()
	cfg.Scale = *benchScale
	cfg.Seed = *benchSeed
	cfg.Warmup = 1
	cfg.Reps = 1
	return cfg
}

// runExperiment executes the experiment once per benchmark iteration and
// reports selected columns of its first series as metrics.
func runExperiment(b *testing.B, id string, metrics map[string]func(exp.Result) float64) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last exp.Result
	for i := 0; i < b.N; i++ {
		last = e.Run(benchConfig())
	}
	for name, f := range metrics {
		b.ReportMetric(f(last), name)
	}
	if testing.Verbose() {
		exp.WriteText(os.Stdout, last)
	}
}

// lastColMean averages column col of the first series.
func lastColMean(col int) func(exp.Result) float64 {
	return func(r exp.Result) float64 {
		if len(r.Series) == 0 || len(r.Series[0].Rows) == 0 {
			return 0
		}
		var s float64
		for _, row := range r.Series[0].Rows {
			s += row[col]
		}
		return s / float64(len(r.Series[0].Rows))
	}
}

// seriesCell fetches one cell of the first series.
func seriesCell(row, col int) func(exp.Result) float64 {
	return func(r exp.Result) float64 {
		if len(r.Series) == 0 || row >= len(r.Series[0].Rows) {
			return 0
		}
		return r.Series[0].Rows[row][col]
	}
}

func BenchmarkFig02SaturationBandwidth(b *testing.B) {
	runExperiment(b, "F02", map[string]func(exp.Result) float64{
		"first_MBps": seriesCell(0, 1),
		"last_MBps":  func(r exp.Result) float64 { s := r.Series[0]; return s.Rows[len(s.Rows)-1][1] },
	})
}

func BenchmarkFig03SaturationTimes(b *testing.B) {
	runExperiment(b, "F03", map[string]func(exp.Result) float64{
		"max_straggler_x": func(r exp.Result) float64 {
			// summary series: max of max_over_mean column.
			for _, s := range r.Series {
				if s.Name != "summary" {
					continue
				}
				var worst float64
				for _, row := range s.Rows {
					if row[4] > worst {
						worst = row[4]
					}
				}
				return worst
			}
			return 0
		},
	})
}

func BenchmarkFig04TwoBeta(b *testing.B) {
	runExperiment(b, "F04", map[string]func(exp.Result) float64{
		"mean_measured_s": lastColMean(1),
		"mean_twobeta_s":  lastColMean(2),
	})
}

func BenchmarkFig05SmallMsgSurface(b *testing.B) {
	runExperiment(b, "F05", map[string]func(exp.Result) float64{
		"mean_ratio": lastColMean(4),
	})
}

func fitMetrics() map[string]func(exp.Result) float64 {
	return map[string]func(exp.Result) float64{
		"mean_ratio_vs_lb": lastColMean(4),
	}
}

func BenchmarkFig06FastEthernetFit(b *testing.B) { runExperiment(b, "F06", fitMetrics()) }
func BenchmarkFig09GigEFit(b *testing.B)         { runExperiment(b, "F09", fitMetrics()) }
func BenchmarkFig12MyrinetFit(b *testing.B)      { runExperiment(b, "F12", fitMetrics()) }

func surfaceMetrics() map[string]func(exp.Result) float64 {
	return map[string]func(exp.Result) float64{
		"mean_abs_err_pct": func(r exp.Result) float64 {
			if len(r.Series) == 0 {
				return 0
			}
			var s float64
			var n int
			for _, row := range r.Series[0].Rows {
				e := row[4]
				if e < 0 {
					e = -e
				}
				s += e
				n++
			}
			if n == 0 {
				return 0
			}
			return s / float64(n)
		},
	}
}

func BenchmarkFig07FastEthernetSurface(b *testing.B) { runExperiment(b, "F07", surfaceMetrics()) }
func BenchmarkFig10GigESurface(b *testing.B)         { runExperiment(b, "F10", surfaceMetrics()) }
func BenchmarkFig13MyrinetSurface(b *testing.B)      { runExperiment(b, "F13", surfaceMetrics()) }

func BenchmarkFig08FastEthernetError(b *testing.B) { runExperiment(b, "F08", surfaceMetrics()) }
func BenchmarkFig11GigEError(b *testing.B)         { runExperiment(b, "F11", surfaceMetrics()) }
func BenchmarkFig14MyrinetError(b *testing.B)      { runExperiment(b, "F14", surfaceMetrics()) }

func BenchmarkTableASignatures(b *testing.B) {
	runExperiment(b, "TA", map[string]func(exp.Result) float64{
		"fe_gamma":   seriesCell(0, 4),
		"gige_gamma": seriesCell(1, 4),
		"myri_gamma": seriesCell(2, 4),
	})
}

func BenchmarkAblationAlgorithms(b *testing.B) {
	runExperiment(b, "AB1", map[string]func(exp.Result) float64{
		"mean_ratio_vs_lb": lastColMean(3),
	})
}

func BenchmarkAblationBufferSize(b *testing.B) {
	runExperiment(b, "AB2", map[string]func(exp.Result) float64{
		"gamma_spread": func(r exp.Result) float64 {
			if len(r.Series) == 0 || len(r.Series[0].Rows) == 0 {
				return 0
			}
			lo, hi := r.Series[0].Rows[0][1], r.Series[0].Rows[0][1]
			for _, row := range r.Series[0].Rows {
				if row[1] < lo {
					lo = row[1]
				}
				if row[1] > hi {
					hi = row[1]
				}
			}
			return hi - lo
		},
	})
}

func BenchmarkExtInfiniBandSignature(b *testing.B) {
	runExperiment(b, "EX1", map[string]func(exp.Result) float64{
		"mean_ratio_vs_lb": lastColMean(4),
	})
}

func BenchmarkExtHalfSaturatedModel(b *testing.B) {
	runExperiment(b, "EX2", map[string]func(exp.Result) float64{
		"mean_abs_halfsat_err_pct": func(r exp.Result) float64 {
			if len(r.Series) == 0 {
				return 0
			}
			var s float64
			var n int
			for _, row := range r.Series[0].Rows {
				e := row[4]
				if e < 0 {
					e = -e
				}
				s += e
				n++
			}
			if n == 0 {
				return 0
			}
			return s / float64(n)
		},
	})
}

func BenchmarkExtOtherCollectives(b *testing.B) {
	runExperiment(b, "EX3", map[string]func(exp.Result) float64{
		"alltoall_gamma":  seriesCell(0, 1),
		"allgather_gamma": seriesCell(1, 1),
	})
}

func BenchmarkAblationEagerThreshold(b *testing.B) {
	runExperiment(b, "AB3", map[string]func(exp.Result) float64{
		"mean_time_s": lastColMean(2),
	})
}
