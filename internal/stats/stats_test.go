package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = 3 + 2*xi
	}
	a, b, err := LinFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 3, 1e-9) || !almostEq(b, 2, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (3, 2)", a, b)
	}
}

func TestLinFitDegenerate(t *testing.T) {
	if _, _, err := LinFit([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point must be degenerate")
	}
	if _, _, err := LinFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x must be degenerate")
	}
}

func TestWeightedLinFitFollowsHeavyPoints(t *testing.T) {
	// Two clusters disagree; the heavily weighted one wins.
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 20, 5, 5} // first pair on y=10x, second flat
	wHeavyFirst := []float64{1000, 1000, 1, 1}
	_, b1, err := WeightedLinFit(x, y, wHeavyFirst)
	if err != nil {
		t.Fatal(err)
	}
	wHeavySecond := []float64{1, 1, 1000, 1000}
	_, b2, err := WeightedLinFit(x, y, wHeavySecond)
	if err != nil {
		t.Fatal(err)
	}
	if !(b1 > 5 && b2 < 5) {
		t.Fatalf("weights ignored: b1=%v b2=%v", b1, b2)
	}
}

func TestScaleFit(t *testing.T) {
	x := []float64{1, 2, 4}
	y := []float64{2.5, 5, 10}
	b, err := ScaleFit(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(b, 2.5, 1e-9) {
		t.Fatalf("scale = %v, want 2.5", b)
	}
}

func TestTwoRegressorFitRecoversPlane(t *testing.T) {
	// y = 4·x1 + 0.25·x2, with x2 an indicator-like regressor.
	x1 := []float64{0.1, 0.2, 0.5, 1.0, 2.0, 4.0}
	x2 := []float64{0, 0, 1, 1, 1, 1}
	y := make([]float64, len(x1))
	for i := range y {
		y[i] = 4*x1[i] + 0.25*x2[i]
	}
	b1, b2, err := TwoRegressorFit(x1, x2, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(b1, 4, 1e-9) || !almostEq(b2, 0.25, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (4, 0.25)", b1, b2)
	}
}

func TestTwoRegressorFitZeroSecondRegressor(t *testing.T) {
	// All-zero x2 degrades to a scale fit instead of failing.
	x1 := []float64{1, 2, 3}
	x2 := []float64{0, 0, 0}
	y := []float64{2, 4, 6}
	b1, b2, err := TwoRegressorFit(x1, x2, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(b1, 2, 1e-9) || b2 != 0 {
		t.Fatalf("fit = (%v, %v), want (2, 0)", b1, b2)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{2, 4, 6}
	if Mean(xs) != 4 || Min(xs) != 2 || Max(xs) != 6 {
		t.Fatalf("mean/min/max wrong: %v %v %v", Mean(xs), Min(xs), Max(xs))
	}
	if !almostEq(Std(xs), 2, 1e-12) {
		t.Fatalf("std = %v, want 2", Std(xs))
	}
	if Mean(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("empty/short input handling wrong")
	}
}

func TestErrMetrics(t *testing.T) {
	if !almostEq(RelErr(110, 100), 0.10, 1e-12) {
		t.Fatalf("RelErr = %v", RelErr(110, 100))
	}
	if !math.IsNaN(RelErr(1, 0)) {
		t.Fatal("RelErr with zero estimate should be NaN")
	}
	if !almostEq(RMSE([]float64{1, 2}, []float64{1, 4}), math.Sqrt(2), 1e-12) {
		t.Fatalf("RMSE = %v", RMSE([]float64{1, 2}, []float64{1, 4}))
	}
	m := MeanAbsRelErr([]float64{110, 90}, []float64{100, 100})
	if !almostEq(m, 0.10, 1e-12) {
		t.Fatalf("MeanAbsRelErr = %v", m)
	}
}

func TestLinFitPropertyRecoversRandomLines(t *testing.T) {
	prop := func(a8, b8 int8, n8 uint8) bool {
		a, b := float64(a8)/4, float64(b8)/4
		n := int(n8%20) + 2
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = float64(i + 1)
			y[i] = a + b*x[i]
		}
		ga, gb, err := LinFit(x, y)
		return err == nil && almostEq(ga, a, 1e-6) && almostEq(gb, b, 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(vals []float64, q1, q2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(vals, q1) <= Quantile(vals, q2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
