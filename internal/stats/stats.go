// Package stats provides the small statistical toolkit the paper's
// methodology needs: ordinary and weighted (diagonal GLS) least squares
// for line fitting, two-regressor least squares for the contention
// signature, and summary statistics for measurement series.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrDegenerate is returned when a fit has too few points or a singular
// design matrix.
var ErrDegenerate = errors.New("stats: degenerate fit")

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (0 for fewer than 2 points).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) with linear
// interpolation, copying its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= len(s) {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// LinFit fits y = a + b·x by ordinary least squares.
func LinFit(x, y []float64) (a, b float64, err error) {
	w := make([]float64, len(x))
	for i := range w {
		w[i] = 1
	}
	return WeightedLinFit(x, y, w)
}

// WeightedLinFit fits y = a + b·x minimizing Σ wᵢ(yᵢ - a - b·xᵢ)².
// A diagonal weight matrix makes this the generalized-least-squares
// variant the paper uses for signature fitting.
func WeightedLinFit(x, y, w []float64) (a, b float64, err error) {
	if len(x) != len(y) || len(x) != len(w) || len(x) < 2 {
		return 0, 0, ErrDegenerate
	}
	var sw, swx, swy, swxx, swxy float64
	for i := range x {
		sw += w[i]
		swx += w[i] * x[i]
		swy += w[i] * y[i]
		swxx += w[i] * x[i] * x[i]
		swxy += w[i] * x[i] * y[i]
	}
	det := sw*swxx - swx*swx
	if math.Abs(det) < 1e-300 || sw == 0 {
		return 0, 0, ErrDegenerate
	}
	b = (sw*swxy - swx*swy) / det
	a = (swy - b*swx) / sw
	return a, b, nil
}

// ScaleFit fits y = b·x (through the origin), optionally weighted; pass
// nil weights for OLS.
func ScaleFit(x, y, w []float64) (b float64, err error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, ErrDegenerate
	}
	var num, den float64
	for i := range x {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		num += wi * x[i] * y[i]
		den += wi * x[i] * x[i]
	}
	if den == 0 {
		return 0, ErrDegenerate
	}
	return num / den, nil
}

// TwoRegressorFit solves y ≈ b1·x1 + b2·x2 by (weighted) least squares
// via the 2×2 normal equations. Pass nil weights for OLS. This is the
// solver behind the (γ, δ) signature fit, where x1 is the lower bound
// and x2 the δ-activation indicator.
func TwoRegressorFit(x1, x2, y, w []float64) (b1, b2 float64, err error) {
	if len(x1) != len(y) || len(x2) != len(y) || len(y) < 2 {
		return 0, 0, ErrDegenerate
	}
	var s11, s12, s22, s1y, s2y float64
	for i := range y {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		s11 += wi * x1[i] * x1[i]
		s12 += wi * x1[i] * x2[i]
		s22 += wi * x2[i] * x2[i]
		s1y += wi * x1[i] * y[i]
		s2y += wi * x2[i] * y[i]
	}
	det := s11*s22 - s12*s12
	if math.Abs(det) < 1e-300 {
		// x2 may be all zeros (no point at or past the breakpoint):
		// degrade to a pure scale fit on x1.
		if s11 == 0 {
			return 0, 0, ErrDegenerate
		}
		return s1y / s11, 0, nil
	}
	b1 = (s22*s1y - s12*s2y) / det
	b2 = (s11*s2y - s12*s1y) / det
	return b1, b2, nil
}

// RMSE returns the root-mean-square error between predictions and
// observations.
func RMSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		d := pred[i] - obs[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// RelErr returns (measured/estimated − 1), the paper's error metric
// (multiply by 100 for percent).
func RelErr(measured, estimated float64) float64 {
	if estimated == 0 {
		return math.NaN()
	}
	return measured/estimated - 1
}

// MeanAbsRelErr returns the mean of |measured/estimated − 1| over the
// series.
func MeanAbsRelErr(measured, estimated []float64) float64 {
	if len(measured) != len(estimated) || len(measured) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range measured {
		s += math.Abs(RelErr(measured[i], estimated[i]))
	}
	return s / float64(len(measured))
}
