package signature

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestHalfSaturatedPredictLimits(t *testing.T) {
	sig := model.Signature{H: h, Gamma: 4, Delta: 5e-3, M: 8192}
	hs := model.HalfSaturated{Sig: sig, N0: 8, NSat: 32}
	// Below onset: exactly the lower bound.
	m := 1 << 20
	if got, want := hs.Predict(4, m), model.LowerBound(h, 4, m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("unsaturated predict = %v, want lower bound %v", got, want)
	}
	// At/after saturation: exactly the signature.
	if got, want := hs.Predict(40, m), sig.Predict(40, m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("saturated predict = %v, want signature %v", got, want)
	}
	// Midpoint: strictly between.
	mid := hs.Predict(20, m)
	if mid <= model.LowerBound(h, 20, m) || mid >= sig.Predict(20, m) {
		t.Fatalf("midpoint %v not between bound and signature", mid)
	}
}

func TestSaturationMonotone(t *testing.T) {
	hs := model.HalfSaturated{Sig: model.Signature{H: h, Gamma: 3}, N0: 4, NSat: 16}
	prev := -1.0
	for n := 2; n <= 24; n++ {
		s := hs.Saturation(n)
		if s < 0 || s > 1 {
			t.Fatalf("saturation out of range at n=%d: %v", n, s)
		}
		if s < prev {
			t.Fatalf("saturation not monotone at n=%d", n)
		}
		prev = s
	}
	// Degenerate ramp behaves like a step.
	step := model.HalfSaturated{Sig: model.Signature{H: h, Gamma: 3}, N0: 8, NSat: 8}
	if step.Saturation(7) != 0 || step.Saturation(8) != 1 {
		t.Fatal("degenerate ramp should step at NSat")
	}
}

func TestFitSaturationRecoversRamp(t *testing.T) {
	sig := model.Signature{H: h, Gamma: 4.3, Delta: 5e-3, M: 8192}
	truth := model.HalfSaturated{Sig: sig, N0: 6, NSat: 24}
	var pts []NPoint
	for _, n := range []int{2, 4, 6, 8, 12, 16, 20, 24, 32, 40} {
		for _, m := range []int{128 << 10, 1 << 20} {
			pts = append(pts, NPoint{N: n, M: m, T: truth.Predict(n, m)})
		}
	}
	got, err := FitSaturation(sig, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got.N0 != truth.N0 || got.NSat != truth.NSat {
		t.Fatalf("ramp = (%d, %d), want (%d, %d)", got.N0, got.NSat, truth.N0, truth.NSat)
	}
}

func TestFitSaturationImprovesSmallNError(t *testing.T) {
	// Synthetic world where contention ramps in: plain signature
	// overshoots at small n; the half-saturated fit must cut the error.
	sig := model.Signature{H: h, Gamma: 4, Delta: 4e-3, M: 4096}
	truth := model.HalfSaturated{Sig: sig, N0: 4, NSat: 20}
	var pts []NPoint
	for n := 2; n <= 40; n += 2 {
		pts = append(pts, NPoint{N: n, M: 512 << 10, T: truth.Predict(n, 512<<10)})
	}
	fitted, err := FitSaturation(sig, pts)
	if err != nil {
		t.Fatal(err)
	}
	var errPlain, errHS float64
	for _, p := range pts {
		errPlain += math.Abs(p.T/sig.Predict(p.N, p.M) - 1)
		errHS += math.Abs(p.T/fitted.Predict(p.N, p.M) - 1)
	}
	if errHS >= errPlain/4 {
		t.Fatalf("half-saturated model should cut error at least 4x: plain %v vs hs %v", errPlain, errHS)
	}
}

func TestFitSaturationTooFewPoints(t *testing.T) {
	_, err := FitSaturation(model.Signature{H: h, Gamma: 2}, []NPoint{{N: 2, M: 1024, T: 0.1}})
	if err != ErrTooFewNPoints {
		t.Fatalf("err = %v, want ErrTooFewNPoints", err)
	}
}
