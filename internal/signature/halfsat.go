package signature

import (
	"errors"

	"repro/internal/model"
)

// NPoint is one cross-process-count measurement at a fixed message size
// for the saturation-ramp fit.
type NPoint struct {
	N int     // process count
	M int     // message size (bytes)
	T float64 // measured completion (s)
}

// ErrTooFewNPoints guards the saturation fit.
var ErrTooFewNPoints = errors.New("signature: need at least 3 cross-n points to fit saturation")

// FitSaturation estimates the half-saturated model's (N0, NSat) ramp
// from measurements across process counts, given an already-fitted
// saturated signature. It grid-searches breakpoints minimizing the sum
// of squared relative errors — relative, because completion times across
// n span orders of magnitude.
//
// This implements the paper's proposed "intermediate performance model
// for half-saturate networks" (Section 9).
func FitSaturation(sig model.Signature, points []NPoint) (model.HalfSaturated, error) {
	if len(points) < 3 {
		return model.HalfSaturated{}, ErrTooFewNPoints
	}
	maxN := 2
	for _, p := range points {
		if p.N > maxN {
			maxN = p.N
		}
	}
	best := model.HalfSaturated{Sig: sig, N0: 1, NSat: 2}
	bestSSE := -1.0
	for n0 := 1; n0 < maxN; n0++ {
		for nsat := n0 + 1; nsat <= maxN+1; nsat++ {
			cand := model.HalfSaturated{Sig: sig, N0: n0, NSat: nsat}
			var sse float64
			for _, p := range points {
				pred := cand.Predict(p.N, p.M)
				if pred <= 0 {
					continue
				}
				r := p.T/pred - 1
				sse += r * r
			}
			if bestSSE < 0 || sse < bestSSE {
				bestSSE = sse
				best = cand
			}
		}
	}
	return best, nil
}
