// Package signature implements the paper's central procedure (Section
// 7): estimating a network's contention signature (γ, δ, M) from a small
// set of All-to-All measurements taken at one process count n', by
// least-squares regression against the theoretical lower bound, and the
// associated diagnostics. Once fitted, the model.Signature predicts
// All-to-All completion time for arbitrary process counts and message
// sizes on that network.
package signature

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/stats"
)

// Sample is one measurement: a regular All-to-All of per-pair message
// size M bytes completed in T seconds (at the fitting process count n').
type Sample struct {
	M int     // message size (bytes)
	T float64 // measured completion time (s)
}

// Weighting selects the regression weights.
type Weighting int

const (
	// Uniform is ordinary least squares (the default). Absolute
	// residuals anchor γ on the bandwidth-dominated large-message
	// points — the regime the paper's γ describes — while δ absorbs
	// the affine offset.
	Uniform Weighting = iota
	// Relative weights each point by 1/T², minimizing relative error —
	// a diagonal generalized-least-squares variant that emphasizes the
	// small-message points instead.
	Relative
)

// Options tunes the fit. The zero value is the default procedure:
// uniform weighting, automatic threshold scan, δ clamped at zero, and
// sub-microsecond δ treated as nonexistent (the paper's Myrinet case).
type Options struct {
	Weighting Weighting
	// FixedM skips the threshold scan and uses the given M (bytes).
	// Leave 0 to scan candidate breakpoints.
	FixedM int
	// AllowNegativeDelta keeps a negative fitted δ instead of clamping
	// to zero and refitting γ alone.
	AllowNegativeDelta bool
	// MinDelta is the magnitude below which δ is zeroed (default 1 µs,
	// matching the paper's treatment of the Myrinet fit).
	MinDelta float64
}

// Report carries fit diagnostics.
type Report struct {
	SSE        float64         // weighted sum of squared residuals at the optimum
	Candidates map[int]float64 // threshold candidate → weighted SSE
	Residuals  []float64       // per-sample (T - prediction), sample order
	MAPE       float64         // mean |measured/estimated − 1|
}

// ErrTooFewSamples mirrors the paper's requirement of at least four
// measurement points.
var ErrTooFewSamples = errors.New("signature: need at least 4 samples to fit")

// Fit estimates the contention signature from samples measured at
// process count n on a network whose contention-free Hockney parameters
// are h.
func Fit(h model.Hockney, n int, samples []Sample, opts Options) (model.Signature, Report, error) {
	if len(samples) < 4 {
		return model.Signature{}, Report{}, ErrTooFewSamples
	}
	if n < 2 {
		return model.Signature{}, Report{}, fmt.Errorf("signature: need n >= 2, got %d", n)
	}
	if opts.MinDelta == 0 {
		opts.MinDelta = 1e-6
	}

	candidates := thresholdCandidates(samples, opts)
	rep := Report{Candidates: make(map[int]float64, len(candidates))}
	best := model.Signature{}
	bestSSE := -1.0
	gammaOnlySSE := -1.0
	var gammaOnlySig model.Signature
	for _, M := range candidates {
		sig, sse, err := fitAt(h, n, samples, M, opts)
		if err != nil {
			continue
		}
		rep.Candidates[M] = sse
		if sig.Delta == 0 && (gammaOnlySSE < 0 || sse < gammaOnlySSE) {
			gammaOnlySSE = sse
			gammaOnlySig = sig
		}
		if bestSSE < 0 || sse < bestSSE {
			bestSSE = sse
			best = sig
		}
	}
	if bestSSE < 0 {
		return model.Signature{}, Report{}, stats.ErrDegenerate
	}
	// Parsimony (scan mode only): accept a δ term only if it at least
	// halves the weighted SSE relative to the best γ-only fit. The
	// threshold scan otherwise lets δ chase measurement noise on
	// networks that have no real affine offset (the paper's Myrinet
	// case: "the linear regression pointed a start-up cost δ smaller
	// than 1 microsecond").
	if opts.FixedM == 0 && best.Delta != 0 && gammaOnlySSE >= 0 && bestSSE > 0.5*gammaOnlySSE {
		best = gammaOnlySig
		bestSSE = gammaOnlySSE
		best.Delta = 0
		best.M = 0
	}
	// A contention ratio below one is unphysical (nothing beats the
	// lower bound): constrain γ = 1 and refit δ alone over the
	// threshold candidates. Relative weighting can otherwise trade γ
	// down against a large δ when the small-message points sit at the
	// bound.
	if best.Gamma < 1 {
		best = refitDeltaOnly(h, n, samples, candidates, opts)
		bestSSE = sseOf(best, n, samples, opts)
	}
	// Sub-threshold positive δ is measurement noise: drop it.
	if best.Delta >= 0 && best.Delta < opts.MinDelta && best.Delta != 0 {
		g, err := fitGammaOnly(h, n, samples, opts)
		if err == nil {
			best.Gamma = g
		}
		best.Delta = 0
		best.M = 0
	}
	if best.Delta == 0 {
		best.M = 0
	}
	rep.SSE = bestSSE
	rep.Residuals = make([]float64, len(samples))
	meas := make([]float64, len(samples))
	est := make([]float64, len(samples))
	for i, s := range samples {
		p := best.Predict(n, s.M)
		rep.Residuals[i] = s.T - p
		meas[i], est[i] = s.T, p
	}
	rep.MAPE = stats.MeanAbsRelErr(meas, est)
	return best, rep, nil
}

// thresholdCandidates returns the M values to scan: zero (δ everywhere),
// each distinct sample size, and one past the largest (δ nowhere).
func thresholdCandidates(samples []Sample, opts Options) []int {
	if opts.FixedM > 0 {
		return []int{opts.FixedM}
	}
	seen := map[int]bool{0: true}
	out := []int{0}
	maxM := 0
	for _, s := range samples {
		if !seen[s.M] {
			seen[s.M] = true
			out = append(out, s.M)
		}
		if s.M > maxM {
			maxM = s.M
		}
	}
	out = append(out, maxM+1)
	sort.Ints(out)
	return out
}

// fitAt solves the two-regressor least squares for a fixed threshold M:
// T ≈ γ·LB(n,m) + δ·(n−1)·1{m ≥ M}.
func fitAt(h model.Hockney, n int, samples []Sample, M int, opts Options) (model.Signature, float64, error) {
	x1 := make([]float64, len(samples))
	x2 := make([]float64, len(samples))
	y := make([]float64, len(samples))
	w := weights(samples, opts)
	for i, s := range samples {
		x1[i] = model.LowerBound(h, n, s.M)
		if s.M >= M {
			x2[i] = float64(n - 1)
		}
		y[i] = s.T
	}
	gamma, delta, err := stats.TwoRegressorFit(x1, x2, y, w)
	if err != nil {
		return model.Signature{}, 0, err
	}
	if delta < 0 && !opts.AllowNegativeDelta {
		gamma, err = stats.ScaleFit(x1, y, w)
		if err != nil {
			return model.Signature{}, 0, err
		}
		delta = 0
	}
	sig := model.Signature{H: h, Gamma: gamma, Delta: delta, M: M, SampleN: n}
	var sse float64
	for i, s := range samples {
		r := s.T - sig.Predict(n, s.M)
		sse += w[i] * r * r
	}
	return sig, sse, nil
}

// refitDeltaOnly fixes γ = 1 and fits only the affine overload δ,
// scanning the threshold candidates: δ(M) is the weighted mean of
// (T − LB)/(n−1) over samples with m ≥ M.
func refitDeltaOnly(h model.Hockney, n int, samples []Sample, candidates []int, opts Options) model.Signature {
	w := weights(samples, opts)
	best := model.Signature{H: h, Gamma: 1, SampleN: n}
	bestSSE := -1.0
	for _, M := range candidates {
		var num, den float64
		for i, s := range samples {
			if s.M >= M {
				num += w[i] * (s.T - model.LowerBound(h, n, s.M)) / float64(n-1)
				den += w[i]
			}
		}
		delta := 0.0
		if den > 0 {
			delta = num / den
		}
		if delta < 0 && !opts.AllowNegativeDelta {
			delta = 0
		}
		sig := model.Signature{H: h, Gamma: 1, Delta: delta, M: M, SampleN: n}
		sse := sseOf(sig, n, samples, opts)
		if bestSSE < 0 || sse < bestSSE {
			bestSSE = sse
			best = sig
		}
	}
	return best
}

// sseOf computes the weighted SSE of a signature over the samples.
func sseOf(sig model.Signature, n int, samples []Sample, opts Options) float64 {
	w := weights(samples, opts)
	var sse float64
	for i, s := range samples {
		r := s.T - sig.Predict(n, s.M)
		sse += w[i] * r * r
	}
	return sse
}

// fitGammaOnly fits T ≈ γ·LB with δ forced to zero.
func fitGammaOnly(h model.Hockney, n int, samples []Sample, opts Options) (float64, error) {
	x := make([]float64, len(samples))
	y := make([]float64, len(samples))
	w := weights(samples, opts)
	for i, s := range samples {
		x[i] = model.LowerBound(h, n, s.M)
		y[i] = s.T
	}
	return stats.ScaleFit(x, y, w)
}

// weights builds the regression weight vector.
func weights(samples []Sample, opts Options) []float64 {
	w := make([]float64, len(samples))
	for i, s := range samples {
		switch opts.Weighting {
		case Relative:
			if s.T > 0 {
				w[i] = 1 / (s.T * s.T)
			} else {
				w[i] = 1
			}
		default:
			w[i] = 1
		}
	}
	return w
}
