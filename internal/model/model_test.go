package model

import (
	"math"
	"testing"
	"testing/quick"
)

var h = Hockney{Alpha: 50e-6, Beta: 8.5e-9}

func TestHockneyP2P(t *testing.T) {
	got := h.P2P(1 << 20)
	want := 50e-6 + 8.5e-9*1048576
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P2P = %v, want %v", got, want)
	}
}

func TestLowerBoundPaperForm(t *testing.T) {
	// Proposition 1: (n-1)·α + (n-1)·m·β.
	n, m := 40, 1<<20
	want := 39*50e-6 + 39*8.5e-9*float64(m)
	if got := LowerBound(h, n, m); math.Abs(got-want) > 1e-9 {
		t.Fatalf("LowerBound = %v, want %v", got, want)
	}
	if LowerBound(h, 1, m) != 0 || LowerBound(h, 0, m) != 0 {
		t.Fatal("lower bound for n<=1 must be 0")
	}
}

func TestNaiveEqualsLowerBound(t *testing.T) {
	d := Naive{H: h}
	for _, n := range []int{2, 10, 40} {
		for _, m := range []int{1, 1024, 1 << 20} {
			if d.Predict(n, m) != LowerBound(h, n, m) {
				t.Fatalf("naive(%d,%d) != lower bound", n, m)
			}
		}
	}
}

func TestClementScalesWithN(t *testing.T) {
	c := Clement{H: h}
	// For the same total rounds, doubling n must more than double the
	// prediction because γ=n multiplies the bandwidth term.
	m := 1 << 20
	t8, t16 := c.Predict(8, m), c.Predict(16, m)
	if t16 <= 2*t8 {
		t.Fatalf("clement not superlinear in n: t8=%v t16=%v", t8, t16)
	}
}

func TestChunStepsSelection(t *testing.T) {
	c := Chun{
		Beta: 8.5e-9,
		Steps: []ChunStep{
			{MaxSize: 1024, Alpha: 60e-6},
			{MaxSize: 65536, Alpha: 200e-6},
			{MaxSize: 0, Alpha: 900e-6},
		},
	}
	if got := c.latencyFor(512); got != 60e-6 {
		t.Fatalf("latencyFor(512) = %v", got)
	}
	if got := c.latencyFor(1024); got != 60e-6 {
		t.Fatalf("latencyFor(1024) = %v (inclusive bound)", got)
	}
	if got := c.latencyFor(2048); got != 200e-6 {
		t.Fatalf("latencyFor(2048) = %v", got)
	}
	if got := c.latencyFor(1 << 20); got != 900e-6 {
		t.Fatalf("latencyFor(1MB) = %v", got)
	}
	if c.Predict(2, 512) != 60e-6+8.5e-9*512 {
		t.Fatal("Chun predict wrong")
	}
}

func TestTwoBetaPaperNumbers(t *testing.T) {
	// Section 6's worked example: βF=8.502e-9, βC=8.498189e-8, ρ=0.5
	// gives β≈4.6742e-8.
	tb := TwoBeta{Alpha: 50e-6, BetaF: 8.502e-9, BetaC: 8.498189e-8, Rho: 0.5}
	if math.Abs(tb.SyntheticBeta()-4.6742e-8) > 1e-12 {
		t.Fatalf("synthetic β = %v, want 4.6742e-8", tb.SyntheticBeta())
	}
	// Prediction reproduces the paper's form: (n-1)(α + β̂m).
	n, m := 40, 1<<20
	want := 39 * (50e-6 + 4.674194500000001e-8*float64(m))
	if got := tb.Predict(n, m); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("two-beta predict = %v, want %v", got, want)
	}
}

func TestSignaturePiecewise(t *testing.T) {
	s := Signature{H: h, Gamma: 4.3628, Delta: 4.93e-3, M: 8 << 10}
	n := 40
	below := s.Predict(n, 4<<10)
	if math.Abs(below-LowerBound(h, n, 4<<10)*4.3628) > 1e-12 {
		t.Fatalf("below M: got %v", below)
	}
	at := s.Predict(n, 8<<10)
	wantAt := LowerBound(h, n, 8<<10)*4.3628 + 39*4.93e-3
	if math.Abs(at-wantAt) > 1e-12 {
		t.Fatalf("at M: got %v, want %v", at, wantAt)
	}
	// δ adds exactly (n-1)·δ at the threshold.
	if math.Abs((at-LowerBound(h, n, 8<<10)*4.3628)-39*4.93e-3) > 1e-12 {
		t.Fatal("δ term wrong")
	}
}

func TestSignatureGammaOneDeltaZeroIsLowerBound(t *testing.T) {
	s := Signature{H: h, Gamma: 1, Delta: 0, M: 0}
	for _, n := range []int{2, 24, 50} {
		for _, m := range []int{128, 1 << 20} {
			if math.Abs(s.Predict(n, m)-LowerBound(h, n, m)) > 1e-15 {
				t.Fatalf("identity signature deviates at n=%d m=%d", n, m)
			}
		}
	}
}

func TestModelsMonotoneInSizeAndRanks(t *testing.T) {
	models := []Model{
		Naive{H: h},
		Clement{H: h},
		TwoBeta{Alpha: h.Alpha, BetaF: h.Beta, BetaC: 10 * h.Beta, Rho: 0.5},
		Signature{H: h, Gamma: 2.5, Delta: 1e-3, M: 2048},
	}
	prop := func(n8, dn8 uint8, m16, dm16 uint16) bool {
		n := int(n8%48) + 2
		dn := int(dn8 % 8)
		m := int(m16) + 1
		dm := int(dm16)
		for _, mod := range models {
			if mod.Predict(n+dn, m) < mod.Predict(n, m)-1e-12 {
				return false
			}
			if mod.Predict(n, m+dm) < mod.Predict(n, m)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if s := h.String(); s == "" {
		t.Fatal("empty Hockney string")
	}
	sig := Signature{H: h, Gamma: 1.0195, Delta: 8.23e-3, M: 2048, SampleN: 24}
	if s := sig.String(); s == "" {
		t.Fatal("empty Signature string")
	}
	for _, m := range []Model{Naive{}, Clement{}, Chun{}, TwoBeta{}, Signature{}} {
		if m.Name() == "" {
			t.Fatalf("%T has empty name", m)
		}
	}
}
