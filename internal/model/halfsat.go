package model

// HalfSaturated is the "intermediate performance model for half-saturate
// networks" the paper's conclusion calls for: the contention signature
// describes a *saturated* network, so predictions overshoot when there
// are too few processes to saturate the fabric (the large negative
// errors at small n in the paper's Figs. 8, 11 and 14). This model ramps
// the contention parameters in linearly between an onset process count
// N0 (no contention: the lower bound holds) and a saturation count NSat
// (full signature applies):
//
//	sat(n)  = clamp((n − N0) / (NSat − N0), 0, 1)
//	γ_eff(n) = 1 + (γ − 1)·sat(n)
//	δ_eff(n) = δ·sat(n)
//	T(n, m)  = (n−1)·(α + mβ)·γ_eff(n) [+ (n−1)·δ_eff(n) if m ≥ M]
//
// N0 and NSat are fitted from a handful of measurements across process
// counts (signature.FitSaturation).
type HalfSaturated struct {
	Sig  Signature
	N0   int // largest process count with no visible contention
	NSat int // smallest process count with full saturation
}

// Name implements Model.
func (h HalfSaturated) Name() string { return "half-saturated-signature" }

// Saturation returns sat(n) in [0, 1].
func (h HalfSaturated) Saturation(n int) float64 {
	if h.NSat <= h.N0 {
		if n >= h.NSat {
			return 1
		}
		return 0
	}
	s := float64(n-h.N0) / float64(h.NSat-h.N0)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Predict implements Model.
func (h HalfSaturated) Predict(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	sat := h.Saturation(n)
	gammaEff := 1 + (h.Sig.Gamma-1)*sat
	t := LowerBound(h.Sig.H, n, m) * gammaEff
	if m >= h.Sig.M {
		t += float64(n-1) * h.Sig.Delta * sat
	}
	return t
}
