package model

import (
	"testing"

	"repro/internal/coll"
)

func TestKindPredictionsAlltoallDelegates(t *testing.T) {
	for name, g := range map[string]GridModel{"2lvl": gridModelFixture(), "3lvl": threeLevelFixture()} {
		for _, m := range []int{4 << 10, 64 << 10, 512 << 10} {
			if got, want := g.PredictKindFlat(coll.KindAlltoall, m), g.PredictFlat(m); got != want {
				t.Fatalf("%s m=%d: flat alltoall kind %v != %v", name, m, got, want)
			}
			if got, want := g.PredictKindHier(coll.KindAlltoall, m), g.PredictHierGather(m); got != want {
				t.Fatalf("%s m=%d: hier alltoall kind %v != %v", name, m, got, want)
			}
		}
	}
}

func TestKindPredictionsPositiveAndOrdered(t *testing.T) {
	kinds := []coll.Kind{
		coll.KindAllgather, coll.KindBroadcast, coll.KindReduce,
		coll.KindReduceScatter, coll.KindAllreduce,
	}
	for name, g := range map[string]GridModel{"2lvl": gridModelFixture(), "3lvl": threeLevelFixture()} {
		for _, m := range []int{4 << 10, 64 << 10} {
			ata := g.PredictKindHier(coll.KindAlltoall, m)
			for _, k := range kinds {
				flat, hier := g.PredictKindFlat(k, m), g.PredictKindHier(k, m)
				if flat <= 0 || hier <= 0 {
					t.Fatalf("%s %v m=%d: nonpositive flat=%v hier=%v", name, k, m, flat, hier)
				}
				// Every deduplicating or single-sweep rooted kind moves
				// strictly less data than the full total exchange.
				// (Allreduce runs two relay sweeps; at latency-dominated
				// sizes those can legitimately cost more than one
				// exchange round, so it is checked via composition
				// below instead.)
				if k != coll.KindAllreduce && hier >= ata {
					t.Fatalf("%s %v m=%d: hier %v not below alltoall %v", name, k, m, hier, ata)
				}
			}
			// Broadcast relays one payload per hop — the cheapest kind.
			if b, ag := g.PredictKindHier(coll.KindBroadcast, m), g.PredictKindHier(coll.KindAllgather, m); b >= ag {
				t.Fatalf("%s m=%d: broadcast hier %v not below allgather hier %v", name, m, b, ag)
			}
			// Allreduce composes reduce and broadcast over the same tree.
			sum := g.PredictKindHier(coll.KindReduce, m) + g.PredictKindHier(coll.KindBroadcast, m)
			if ar := g.PredictKindHier(coll.KindAllreduce, m); ar != sum {
				t.Fatalf("%s m=%d: allreduce %v != reduce+broadcast %v", name, m, ar, sum)
			}
		}
	}
}

func TestKindHierBeatsFlatOnDeepGrid(t *testing.T) {
	// The whole point of the suite: on a grid with an expensive top
	// tier, topology-oblivious flat kernels pay a WAN-gated round per
	// step and lose to the hierarchy for every kind.
	g := threeLevelFixture()
	const m = 64 << 10
	for _, k := range []coll.Kind{
		coll.KindAllgather, coll.KindBroadcast, coll.KindReduce,
		coll.KindReduceScatter, coll.KindAllreduce,
	} {
		if flat, hier := g.PredictKindFlat(k, m), g.PredictKindHier(k, m); hier >= flat {
			t.Fatalf("%v: hier %v not below flat %v", k, hier, flat)
		}
	}
}

func TestInnerCoordSetKappaChargesIncast(t *testing.T) {
	// Marking an inner tier's coordinator as explicitly chosen κ-charges
	// its incast legs; with κ > 1 the three-level alltoall and weighted
	// kind predictions rise, and with the mark absent they are the
	// pre-refactor values bit for bit.
	base := threeLevelFixture()
	base.GatherGamma = ScalarFactor(4)
	marked := threeLevelFixture()
	marked.GatherGamma = ScalarFactor(4)
	for _, c := range marked.Root.Children {
		c.InnerCoordSet = true
	}
	const m = 64 << 10
	if b, mk := base.PredictHierGather(m), marked.PredictHierGather(m); mk <= b {
		t.Fatalf("alltoall: κ-charged inner incast %v not above default %v", mk, b)
	}
	for _, k := range []coll.Kind{coll.KindAllgather, coll.KindReduceScatter} {
		if b, mk := base.PredictKindHier(k, m), marked.PredictKindHier(k, m); mk <= b {
			t.Fatalf("%v: κ-charged inner incast %v not above default %v", k, mk, b)
		}
	}
}

func TestCombineBetaPricesReduction(t *testing.T) {
	free := threeLevelFixture()
	paid := threeLevelFixture()
	paid.CombineBeta = 1e-6
	const m = 64 << 10
	for _, k := range []coll.Kind{coll.KindReduce, coll.KindAllreduce, coll.KindReduceScatter} {
		if f, p := free.PredictKindFlat(k, m), paid.PredictKindFlat(k, m); p <= f {
			t.Fatalf("%v flat: priced combining %v not above free %v", k, p, f)
		}
	}
	for _, k := range []coll.Kind{coll.KindReduce, coll.KindAllreduce} {
		if f, p := free.PredictKindHier(k, m), paid.PredictKindHier(k, m); p <= f {
			t.Fatalf("%v hier: priced combining %v not above free %v", k, p, f)
		}
	}
	// Broadcast never combines: pricing must not move it.
	if f, p := free.PredictKindHier(coll.KindBroadcast, m), paid.PredictKindHier(coll.KindBroadcast, m); f != p {
		t.Fatalf("broadcast hier moved with CombineBeta: %v != %v", f, p)
	}
}
