package model

import (
	"math"
	"testing"

	"repro/internal/coll"
)

// relClose reports |a−b| ≤ tol·max(|a|,|b|, 1).
func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// TestGridVUniformBitEqual pins the fast path the acceptance criteria
// demand: fed a uniform matrix, every v-prediction must be bit-equal to
// the existing closed-form predictor at m — on two-level and 3-level
// fixtures, with non-trivial contention factors and coordinator splits.
func TestGridVUniformBitEqual(t *testing.T) {
	mk := func(name string, g GridModel) (string, GridModel) {
		g.OverlapGamma = ScalarFactor(2.5)
		g.GatherGamma = ScalarFactor(1.5)
		return name, g
	}
	fixtures := map[string]GridModel{}
	for _, f := range []func() (string, GridModel){
		func() (string, GridModel) { return mk("2lvl", gridModelFixture()) },
		func() (string, GridModel) { return mk("3lvl", threeLevelFixture()) },
		func() (string, GridModel) {
			name, g := mk("2lvl-split", gridModelFixture())
			g.Leaves()[0].NumCoords = 2
			g.Leaves()[0].CoordBeta = 3e-8
			return name, g
		},
	} {
		name, g := f()
		fixtures[name] = g
	}
	for name, g := range fixtures {
		n := g.TotalNodes()
		for _, m := range []int{4 << 10, 64 << 10, 512 << 10} {
			sz := coll.UniformSizeMatrix(n, m)
			if got, want := g.PredictFlatV(sz), g.PredictFlat(m); got != want {
				t.Fatalf("%s m=%d: PredictFlatV = %v, want bit-equal %v", name, m, got, want)
			}
			if got, want := g.PredictHierGatherV(sz), g.PredictHierGather(m); got != want {
				t.Fatalf("%s m=%d: PredictHierGatherV = %v, want bit-equal %v", name, m, got, want)
			}
			if got, want := g.PredictHierDirectV(sz), g.PredictHierDirect(m); got != want {
				t.Fatalf("%s m=%d: PredictHierDirectV = %v, want bit-equal %v", name, m, got, want)
			}
		}
	}
}

// TestGridVPartsUniformReduction checks the general v-legs (not the
// fast path): fed a uniform matrix, each decomposition must reproduce
// the uniform decomposition — the cut sums collapse to the n·m count
// terms — to floating-point re-association tolerance.
func TestGridVPartsUniformReduction(t *testing.T) {
	const tol = 1e-12
	for name, g := range map[string]GridModel{"2lvl": gridModelFixture(), "3lvl": threeLevelFixture()} {
		n := g.TotalNodes()
		for _, m := range []int{8 << 10, 64 << 10, 512 << 10} {
			sz := coll.UniformSizeMatrix(n, m)

			f1, s1, r1 := g.FlatParts(m)
			f2, s2, r2 := g.FlatPartsV(sz)
			if !relClose(f1, f2, tol) || !relClose(s1, s2, tol) || !relClose(r1, r2, tol) {
				t.Fatalf("%s m=%d: FlatPartsV = (%v,%v,%v), want uniform (%v,%v,%v)",
					name, m, f2, s2, r2, f1, s1, r1)
			}

			i1, x1, l1 := g.HierGatherParts(m)
			i2, x2, l2 := g.HierGatherPartsV(sz)
			if !relClose(i1, i2, tol) || !relClose(x1, x2, tol) || !relClose(l1, l2, tol) {
				t.Fatalf("%s m=%d: HierGatherPartsV = (%v,%v,%v), want uniform (%v,%v,%v)",
					name, m, i2, x2, l2, i1, x1, l1)
			}

			p1, hx1, sc1 := g.HierDirectParts(m)
			p2, hx2, sc2 := g.HierDirectPartsV(sz)
			if !relClose(p1, p2, tol) || !relClose(hx1, hx2, tol) || !relClose(sc1, sc2, tol) {
				t.Fatalf("%s m=%d: HierDirectPartsV = (%v,%v,%v), want uniform (%v,%v,%v)",
					name, m, p2, hx2, sc2, p1, hx1, sc1)
			}
		}
	}
}

// TestGridVSkewShiftsLegs: a hotspot row adds bytes to exactly the legs
// that carry it — predictions rise above the uniform base — while a
// block-diagonal matrix with zero cross-cluster traffic collapses every
// WAN leg to zero and leaves only local terms.
func TestGridVSkewShiftsLegs(t *testing.T) {
	g := gridModelFixture() // 4+4 nodes, one WAN tier
	n := g.TotalNodes()
	const m = 64 << 10

	base := coll.UniformSizeMatrix(n, m)
	hot := coll.UniformSizeMatrix(n, m)
	for j := 1; j < n; j++ {
		hot.Set(0, j, 8*m)
	}
	if g.PredictFlatV(hot) <= g.PredictFlatV(base) {
		t.Fatal("hotspot row must raise the flat prediction")
	}
	if g.PredictHierGatherV(hot) <= g.PredictHierGatherV(base) {
		t.Fatal("hotspot row must raise the hier-gather prediction")
	}
	if g.PredictHierDirectV(hot) <= g.PredictHierDirectV(base) {
		t.Fatal("hotspot row must raise the hier-direct prediction")
	}

	// The hotspot sits in cluster 0: its outbound cut grows 8-fold, the
	// reverse direction keeps the uniform cut. The worst-child exchange
	// leg must price the grown cut exactly.
	_, xchg, _ := g.HierGatherPartsV(hot)
	wantCut := 8*m*4 + 3*4*m // rank 0's 4 remote pairs at 8m, ranks 1–3 at m each
	perFlow := g.Root.Wan.Transfer(wantCut)
	wire := g.Root.Wan.Alpha() + float64(wantCut)*g.Root.Wan.BetaWire
	want := perFlow
	if wire > want {
		want = wire
	}
	// Exchange leg includes the upward-gather incast (zero here: the
	// root has no outside), so the worst-child exchange is the whole leg.
	if math.Abs(xchg-want) > 1e-12*want {
		t.Fatalf("hotspot exchange leg = %v, want cut-priced %v", xchg, want)
	}

	local := coll.NewSizeMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && (i < 4) == (j < 4) {
				local.Set(i, j, m)
			}
		}
	}
	intra, xchg0, legs := g.HierGatherPartsV(local)
	if xchg0 != 0 || legs != 0 {
		t.Fatalf("zero cross-traffic: WAN and leaf relay legs = %v/%v, want 0/0", xchg0, legs)
	}
	if intra <= 0 {
		t.Fatal("zero cross-traffic: intra leg must still price the local exchange")
	}
	if f := g.PredictFlatV(local); math.Abs(f-intra) > 1e-12*intra {
		t.Fatalf("zero cross-traffic flat = %v, want pure local term %v", f, intra)
	}
}

// TestGridVMatrixValidation: a matrix of the wrong rank count must be
// rejected loudly, not silently mispriced.
func TestGridVMatrixValidation(t *testing.T) {
	g := gridModelFixture()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rank-count mismatch")
		}
	}()
	g.PredictFlatV(coll.UniformSizeMatrix(3, 1024))
}
