package model

import (
	"fmt"

	"repro/internal/obs"
)

// Grid extension of the contention model: the paper's single-cluster
// signature T(n,m) = (n−1)(α+mβ)γ [+ (n−1)δ] composes with per-level
// WAN terms into completion-time predictions for All-to-All over a
// multi-level grid — a recursive tree of clusters joined by WAN tiers
// (campus → national → continental). Three strategies are modeled:
//
//   - flat direct exchange, where every inter-cluster block is its own
//     message through the shared WAN uplinks of every tier it crosses;
//   - hierarchical gather / per-tier coordinator exchange / scatter
//     (sequential phases);
//   - hierarchical direct (intra-cluster exchange overlapped with the
//     coordinator relay).
//
// The WAN terms follow the paper's methodology rather than first
// principles: each tier's path is characterized empirically by a
// ping-pong transfer-time curve (which automatically captures
// propagation, router forwarding, transport slow-start and the per-flow
// window cap over a long-fat pipe), and the flat exchange's
// loss-recovery chaos on each tier's shared uplink buffers is summarized
// by a fitted per-level contention factor γ_wan, exactly as γ summarizes
// it inside a cluster. Predictions sum per-level transfer-curve
// contributions: traffic whose endpoints diverge at tier t is charged to
// tier t's curve (which, being measured end to end, already includes the
// lower tiers it transits).

// WANPoint is one measured point of a WAN transfer curve.
type WANPoint struct {
	Bytes int
	T     float64 // one-way transfer time (s)
}

// WANModel describes the wide-area paths of one grid tier: the curve
// between two subtrees joined at that tier.
type WANModel struct {
	// Curve is the measured one-way transfer-time curve of a single
	// flow, ascending in Bytes. Queries interpolate linearly and
	// extrapolate with the terminal slope (the steady window- or
	// wire-limited gap).
	Curve []WANPoint
	// BetaWire is the inverse uplink rate in s/B including framing
	// overhead: the serialization floor shared by all concurrent flows.
	BetaWire float64
	// Gamma is the per-level contention factor charged to the flat
	// exchange's uncoordinated flows on this tier's shared uplinks
	// (≥ 1 after clamping), fitted from small probe grids like the paper
	// fits γ at n' — a size-indexed FactorCurve, looked up at the
	// per-flow message size crossing the tier. A single-point curve
	// (ScalarFactor) reproduces the scalar-factor model bit-identically.
	Gamma FactorCurve
}

// gammaAt looks a contention-factor curve up at a per-pair size and
// clamps the result to ≥ 1: a fitted factor below 1 (probe noise) must
// never discount a leg below its analytic serialization.
func gammaAt(c FactorCurve, bytes int) float64 {
	g := c.At(bytes)
	if g < 1 {
		return 1
	}
	return g
}

// Alpha returns the WAN start-up: the smallest measured transfer time.
func (w WANModel) Alpha() float64 {
	if len(w.Curve) == 0 {
		return 0
	}
	return w.Curve[0].T
}

// BetaSteady returns the terminal slope of the curve: the steady
// per-byte gap of one established flow.
func (w WANModel) BetaSteady() float64 {
	if len(w.Curve) < 2 {
		return w.BetaWire
	}
	a, b := w.Curve[len(w.Curve)-2], w.Curve[len(w.Curve)-1]
	if b.Bytes <= a.Bytes {
		return w.BetaWire
	}
	slope := (b.T - a.T) / float64(b.Bytes-a.Bytes)
	if slope < w.BetaWire {
		slope = w.BetaWire
	}
	return slope
}

// Transfer predicts one flow moving `bytes` one way across the tier by
// interpolating the measured curve.
func (w WANModel) Transfer(bytes int) float64 {
	if bytes <= 0 || len(w.Curve) == 0 {
		return 0
	}
	c := w.Curve
	if bytes <= c[0].Bytes {
		return c[0].T
	}
	for i := 1; i < len(c); i++ {
		if bytes <= c[i].Bytes {
			if c[i].Bytes <= c[i-1].Bytes {
				// Zero-width segment (duplicate probe sizes on a
				// hand-built curve): interpolating would divide by zero
				// and spray NaN into every prediction; take the
				// segment's later measurement instead.
				return c[i].T
			}
			frac := float64(bytes-c[i-1].Bytes) / float64(c[i].Bytes-c[i-1].Bytes)
			return c[i-1].T + frac*(c[i].T-c[i-1].T)
		}
	}
	last := c[len(c)-1]
	return last.T + float64(bytes-last.Bytes)*w.BetaSteady()
}

// TransferShared predicts `flows` concurrent flows of bytesPerFlow each
// through one uplink: each flow is individually curve-limited (they ramp
// in parallel), while their aggregate serializes at the wire rate.
func (w WANModel) TransferShared(flows, bytesPerFlow int) float64 {
	if flows <= 0 || bytesPerFlow <= 0 {
		return 0
	}
	perFlow := w.Transfer(bytesPerFlow)
	wire := w.Alpha() + float64(flows)*float64(bytesPerFlow)*w.BetaWire
	if wire > perFlow {
		return wire
	}
	return perFlow
}

// ModelNode is one node of a grid model tree, mirroring the topology
// tree the predictions are for. Exactly one form is populated:
//
//   - leaf: Size nodes whose local network obeys the contention
//     signature LAN;
//   - group: Children joined by a WAN tier modeled by Wan.
type ModelNode struct {
	// Size and LAN describe a leaf cluster.
	Size int
	LAN  Signature

	// NumCoords is the number of coordinators the hierarchical relay
	// splits this leaf's gather/scatter across (coordinator selection,
	// internal/grid). Zero or one is the single-coordinator default:
	// the κ-priced incast lands on one NIC port. With C > 1 the incast
	// volume divides across C ports (see docs/MODEL.md §4).
	NumCoords int
	// CoordBeta is the measured per-byte gap (s/B) of the slowest
	// chosen coordinator's NIC — the uplink headroom asymmetry term.
	// Zero means no headroom data: the local legs fall back to the LAN
	// signature's β and no coordinator-port floor is added to the tier
	// exchange, reproducing the pre-selection model exactly.
	CoordBeta float64

	// Children and Wan describe a group tier.
	Children []*ModelNode
	Wan      WANModel

	// InnerCoordSet marks a group tier whose coordinator was chosen
	// explicitly (planner coordinator selection at an inner tier rather
	// than the first-child default). The upward incast into that tier's
	// coordinator then behaves like the leaf gather's synchronized
	// incast and is κ-charged with GatherGamma; false (the default)
	// leaves the leg at its analytic serialization, reproducing the
	// pre-selection model bit-identically.
	InnerCoordSet bool
}

// coordSplit returns the leaf's effective coordinator count, clamped to
// its size.
func (v *ModelNode) coordSplit() int {
	c := v.NumCoords
	if c < 1 {
		c = 1
	}
	if c > v.Size {
		c = v.Size
	}
	return c
}

// LeafNode returns a leaf model node.
func LeafNode(size int, lan Signature) *ModelNode {
	return &ModelNode{Size: size, LAN: lan}
}

// GroupNode returns a group model node joining children through a tier.
func GroupNode(wan WANModel, children ...*ModelNode) *ModelNode {
	return &ModelNode{Children: children, Wan: wan}
}

// IsLeaf reports whether the node is a leaf cluster.
func (v *ModelNode) IsLeaf() bool { return len(v.Children) == 0 }

// TotalNodes sums leaf sizes over the subtree.
func (v *ModelNode) TotalNodes() int {
	if v.IsLeaf() {
		return v.Size
	}
	n := 0
	for _, c := range v.Children {
		n += c.TotalNodes()
	}
	return n
}

// Height returns the number of WAN tiers above the deepest leaf of the
// subtree (0 for a leaf).
func (v *ModelNode) Height() int {
	h := 0
	for _, c := range v.Children {
		if ch := c.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// Leaves returns the subtree's leaves in tree order.
func (v *ModelNode) Leaves() []*ModelNode {
	if v.IsLeaf() {
		return []*ModelNode{v}
	}
	var out []*ModelNode
	for _, c := range v.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// GridModel predicts All-to-All completion times on a multi-level grid:
// per-cluster contention signatures at the leaves, one WAN model (curve
// plus per-level contention factor) per tier above them.
type GridModel struct {
	// Root is the model tree. A lone leaf degenerates to the paper's
	// single-cluster signature prediction.
	Root *ModelNode
	// OverlapGamma inflates the hier-direct WAN exchange legs (≥ 1
	// after clamping): with the intra-cluster exchange still churning
	// the LAN, inbound WAN packets get dropped at the edge and the
	// wide-area flows pay loss recovery. Fitted from probe grids at the
	// planner's probe sizes, like the per-level Wan.Gamma — a
	// size-indexed FactorCurve looked up at the exchange's effective
	// per-pair size; values < 1 are treated as 1, and a single-point
	// curve reproduces the scalar factor bit-identically.
	OverlapGamma FactorCurve
	// GatherGamma inflates the hier-gather gather and scatter legs
	// (≥ 1 after clamping): the strict phase structure synchronizes the
	// s−1 local flows into a coordinator-port incast whose loss
	// recovery the plain serialization term misses. Fitted from probe
	// grids, size-indexed like OverlapGamma.
	GatherGamma FactorCurve
	// CombineBeta prices reduction arithmetic in seconds per combined
	// byte for the reducing kinds (Reduce, Allreduce, Reduce-scatter).
	// Zero — the default — keeps combining free, as the simulator and
	// the paper's models assume; All-to-All predictions never read it.
	CombineBeta float64
	// Obs, when non-nil, receives one factor.lookup event per
	// contention-curve read a prediction performs — which fitted
	// FactorCurve points the lookup interpolated, at what effective
	// size, and the resulting factor. Nil (the default) disables
	// tracing; predictions then pay only nil checks. The planner
	// installs its Options.Trace collector here.
	Obs *obs.Collector
}

// emitLookup records one factor-curve read: the curve's role, the tier
// height it belongs to (−1 for the strategy-level ω/κ factors), the
// effective per-pair size looked up, the clamped factor, and the fitted
// neighbor points the interpolation read. Callers guard with
// g.Obs != nil so disabled predictions skip the Lookup re-derivation.
func (g GridModel) emitLookup(curve string, height int, c FactorCurve, bytes int) {
	f, lo, hi := c.Lookup(bytes)
	if f < 1 {
		f = 1
	}
	g.Obs.Event("factor.lookup",
		obs.Str("curve", curve), obs.Int("tier_height", height),
		obs.Int("size", bytes), obs.F64("factor", f),
		obs.Int("lo_bytes", lo.Bytes), obs.F64("lo_factor", lo.Factor),
		obs.Int("hi_bytes", hi.Bytes), obs.F64("hi_factor", hi.Factor))
}

// emitFlatLookups records the per-tier γ_wan reads of a flat
// prediction, one event per group tier in tree order.
func (g GridModel) emitFlatLookups(m int) {
	var walk func(v *ModelNode)
	walk = func(v *ModelNode) {
		if v.IsLeaf() {
			return
		}
		g.emitLookup("gamma_wan", v.Height(), v.Wan.Gamma, m)
		for _, c := range v.Children {
			walk(c)
		}
	}
	walk(g.Root)
}

// TwoLevel builds the flat two-level model (the pre-recursive GridModel
// shape): leaf clusters of the given sizes and signatures under one WAN
// tier. It panics when sizes and signatures disagree in length — a
// missing signature would otherwise silently predict that cluster's LAN
// as free.
func TwoLevel(sizes []int, lan []Signature, wan WANModel) GridModel {
	if len(sizes) != len(lan) {
		panic(fmt.Sprintf("model: %d cluster sizes but %d LAN signatures", len(sizes), len(lan)))
	}
	root := &ModelNode{Wan: wan}
	for i, s := range sizes {
		root.Children = append(root.Children, LeafNode(s, lan[i]))
	}
	return GridModel{Root: root}
}

// Validate checks structural consistency.
func (g GridModel) Validate() error {
	if g.Root == nil {
		return fmt.Errorf("model: grid with no topology")
	}
	var walk func(v *ModelNode) error
	walk = func(v *ModelNode) error {
		if v.IsLeaf() {
			if v.Size < 1 {
				return fmt.Errorf("model: leaf cluster has %d nodes", v.Size)
			}
			return nil
		}
		if v.Size != 0 {
			return fmt.Errorf("model: group node sets Size")
		}
		for _, c := range v.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(g.Root)
}

// TotalNodes sums cluster sizes.
func (g GridModel) TotalNodes() int { return g.Root.TotalNodes() }

// Leaves returns the model's leaf clusters in tree order.
func (g GridModel) Leaves() []*ModelNode { return g.Root.Leaves() }

// intra returns the worst per-cluster intra-exchange time: each cluster
// runs a local All-to-All among its own ranks, predicted by its
// contention signature.
func (g GridModel) intra(m int) float64 {
	worst := 0.0
	for _, lf := range g.Leaves() {
		if t := lf.LAN.Predict(lf.Size, m); t > worst {
			worst = t
		}
	}
	return worst
}

// FlatParts decomposes the flat-exchange prediction for the worst leaf
// cluster: `fixed` is the local LAN term plus the γ-weighted WAN terms
// of every tier below the root (already fitted when the root is being
// calibrated bottom-up), `startup` the per-round WAN start-ups across
// all tiers, and `rootWan` the root tier's transfer term — the one the
// root's Gamma multiplies. Planner calibration inverts this
// decomposition to fit each tier's Gamma from a probe measurement,
// innermost tiers first.
func (g GridModel) FlatParts(m int) (fixed, startup, rootWan float64) {
	worst := -1.0
	var walkLeaf func(lf *ModelNode, ancestors []*ModelNode, childAt []*ModelNode)
	walkLeaf = func(lf *ModelNode, ancestors []*ModelNode, childAt []*ModelNode) {
		clan := lf.LAN.Predict(lf.Size, m)
		cfixed, cstart, croot := clan, 0.0, 0.0
		for i, a := range ancestors {
			c := childAt[i]
			lcaCount := a.TotalNodes() - c.TotalNodes()
			if lcaCount == 0 {
				continue
			}
			flows := c.TotalNodes() * lcaCount
			cstart += float64(lcaCount) * a.Wan.Alpha()
			wan := a.Wan.TransferShared(flows, m) - a.Wan.Alpha()
			if a == g.Root {
				croot = wan
			} else {
				cfixed += wan * gammaAt(a.Wan.Gamma, m)
			}
		}
		if t := cfixed + cstart + croot; t > worst {
			worst, fixed, startup, rootWan = t, cfixed, cstart, croot
		}
	}
	var walk func(v *ModelNode, ancestors, childAt []*ModelNode)
	walk = func(v *ModelNode, ancestors, childAt []*ModelNode) {
		if v.IsLeaf() {
			walkLeaf(v, ancestors, childAt)
			return
		}
		for _, c := range v.Children {
			// Ancestors are ordered outermost-first; childAt[i] is the
			// child of ancestors[i] the leaf sits under.
			walk(c, append(append([]*ModelNode(nil), ancestors...), v),
				append(append([]*ModelNode(nil), childAt...), c))
		}
	}
	walk(g.Root, nil, nil)
	return fixed, startup, rootWan
}

// PredictFlat models the flat direct exchange: intra-cluster traffic
// behaves per the local signature, every rank pays the start-up of each
// of its remote rounds at the tier where the pair diverges, and each
// tier's crossing volume serializes through its shared uplinks inflated
// by that tier's fitted contention factor.
func (g GridModel) PredictFlat(m int) float64 {
	if g.TotalNodes() <= 1 {
		return 0
	}
	fixed, startup, rootWan := g.FlatParts(m)
	gamma := 1.0
	if !g.Root.IsLeaf() {
		gamma = gammaAt(g.Root.Wan.Gamma, m)
	}
	if g.Obs != nil {
		g.emitFlatLookups(m)
	}
	return fixed + startup + rootWan*gamma
}

// exchangeAt returns the worst-child time of the aggregated coordinator
// exchange at group tier v: one message per sibling pair, posted
// concurrently; per-flow curve limit vs aggregate wire limit. When a
// leaf child carries measured coordinator headroom (CoordBeta > 0), its
// outbound aggregate is additionally floored by serialization through
// the chosen coordinator ports — the headroom asymmetry term: a slow
// coordinator NIC bounds the whole aggregated exchange, and a C-way
// split spreads the aggregate over C ports.
func (g GridModel) exchangeAt(v *ModelNode, m int) float64 {
	worst := 0.0
	for _, c := range v.Children {
		maxPer, total := 0, 0
		for _, d := range v.Children {
			if d != c {
				b := c.TotalNodes() * d.TotalNodes() * m
				total += b
				if b > maxPer {
					maxPer = b
				}
			}
		}
		if total == 0 {
			continue
		}
		perFlow := v.Wan.Transfer(maxPer)
		wire := v.Wan.Alpha() + float64(total)*v.Wan.BetaWire
		t := perFlow
		if wire > t {
			t = wire
		}
		if c.IsLeaf() && c.CoordBeta > 0 {
			port := v.Wan.Alpha() + float64(total)/float64(c.coordSplit())*c.CoordBeta
			if port > t {
				t = port
			}
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// collectAt returns the incast time of the upward gather into tier v's
// coordinator (or, symmetrically, the downward scatter from it): every
// child except the coordinator's own forwards its subtree's
// outside-bound volume across tier v's links. Zero at the root, which
// has no outside.
func (g GridModel) collectAt(v *ModelNode, m int, outsideN int) float64 {
	if outsideN == 0 || len(v.Children) < 2 {
		return 0
	}
	maxPer, total := 0, 0
	for i, c := range v.Children {
		if i == 0 {
			continue // the first child hosts the tier coordinator
		}
		b := c.TotalNodes() * outsideN * m
		total += b
		if b > maxPer {
			maxPer = b
		}
	}
	if total == 0 {
		return 0
	}
	perFlow := v.Wan.Transfer(maxPer)
	wire := v.Wan.Alpha() + float64(total)*v.Wan.BetaWire
	if wire > perFlow {
		return wire
	}
	return perFlow
}

// tierLegs sums the WAN legs of the hierarchical relay over the tree:
// per height, the worst group's exchange plus upward gather (tiers at
// one height run concurrently, different heights sequentially), and per
// depth, the worst group's downward scatter. Both sums are zero on
// two-level grids' inner structure — exchange at the root is the only
// crossing — which is exactly PR 1's model.
func (g GridModel) tierLegs(m int) (xchg, scatter float64) {
	n := g.TotalNodes()
	byHeight := map[int]float64{}
	byDepth := map[int]float64{}
	var walk func(v *ModelNode, depth int)
	walk = func(v *ModelNode, depth int) {
		if v.IsLeaf() {
			return
		}
		for _, c := range v.Children {
			walk(c, depth+1)
		}
		out := n - v.TotalNodes()
		incast := g.collectAt(v, m, out)
		if v.InnerCoordSet {
			// An explicitly-chosen inner-tier coordinator synchronizes
			// its children's forwards into a genuine incast on its port,
			// like the leaf gather: κ-charge the leg (satellite of the
			// collective-suite refactor; default coords keep the
			// analytic serialization bit-identically).
			incast *= gammaAt(g.GatherGamma, m)
		}
		if t := g.exchangeAt(v, m) + incast; t > byHeight[v.Height()] {
			byHeight[v.Height()] = t
		}
		if depth > 0 && incast > byDepth[depth] {
			byDepth[depth] = incast
		}
	}
	walk(g.Root, 0)
	for _, t := range byHeight {
		xchg += t
	}
	for _, t := range byDepth {
		scatter += t
	}
	return xchg, scatter
}

// leafLocal returns the worst leaf's gather (equivalently scatter) leg:
// s−1 local transfers of a rank's remote-bound volume, serialized at
// the coordinator NIC. With C coordinators the volume partitions by
// divergence target, so each of the C concurrent incasts moves a 1/C
// share per member — the C-way split of the κ-priced term. Measured
// coordinator headroom (CoordBeta) replaces the nominal LAN gap when
// present; both default to the pre-selection model.
func (g GridModel) leafLocal(m int) float64 {
	n := g.TotalNodes()
	worst := 0.0
	for _, lf := range g.Leaves() {
		s := lf.Size
		if s <= 1 || n == s {
			continue
		}
		h := lf.LAN.H
		beta := h.Beta
		if lf.CoordBeta > 0 {
			beta = lf.CoordBeta
		}
		c := float64(lf.coordSplit())
		if t := float64(s-1) * (h.Alpha + float64((n-s)*m)*beta/c); t > worst {
			worst = t
		}
	}
	return worst
}

// HierGatherParts decomposes the sequential hierarchical algorithm: the
// intra-cluster exchange, the summed per-tier WAN legs (exchange,
// upward gather, downward scatter), and the combined local leaf
// gather+scatter legs that GatherGamma multiplies (the synchronized
// coordinator incast; planner calibration inverts this decomposition).
func (g GridModel) HierGatherParts(m int) (intra, xchg, local float64) {
	tx, ts := g.tierLegs(m)
	return g.intra(m), tx + ts, 2 * g.leafLocal(m)
}

// PredictHierGather models the sequential hierarchical algorithm: the
// intra-cluster exchange and the per-tier relay sweeps run back to back.
func (g GridModel) PredictHierGather(m int) float64 {
	if g.TotalNodes() <= 1 {
		return 0
	}
	intra, xchg, local := g.HierGatherParts(m)
	if g.Obs != nil {
		g.emitLookup("kappa", -1, g.GatherGamma, m)
	}
	return intra + xchg + local*gammaAt(g.GatherGamma, m)
}

// HierDirectParts decomposes the overlapped algorithm's prediction. Its
// opening phase pushes the intra-cluster exchange and the gathers into
// the LAN at once, so each cluster behaves like a local All-to-All with
// the per-pair volume inflated to the rank's full outbound data,
// (n−1)·m/(s−1) — the local contention signature then prices the
// overlap, which is exactly what makes overlap a loss on high-γ
// networks. The relay follows, its summed WAN exchange legs being
// dependency-ordered behind the gathers; OverlapGamma multiplies those
// legs (planner calibration inverts this decomposition to fit it), and
// the scatter legs (per-tier plus leaf-local) close the plan.
func (g GridModel) HierDirectParts(m int) (phase0, xchg, scatter float64) {
	n := g.TotalNodes()
	for _, lf := range g.Leaves() {
		s := lf.Size
		if s <= 1 {
			continue
		}
		inflated := (n - 1) * m / (s - 1)
		if t := lf.LAN.Predict(s, inflated); t > phase0 {
			phase0 = t
		}
	}
	tx, ts := g.tierLegs(m)
	return phase0, tx, ts + g.leafLocal(m)
}

// PredictHierDirect models the overlapped hierarchical algorithm.
func (g GridModel) PredictHierDirect(m int) float64 {
	if g.TotalNodes() <= 1 {
		return 0
	}
	phase0, xchg, scatter := g.HierDirectParts(m)
	if g.Obs != nil {
		g.emitLookup("omega", -1, g.OverlapGamma, m)
	}
	return phase0 + xchg*gammaAt(g.OverlapGamma, m) + scatter
}
