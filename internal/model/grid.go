package model

import "fmt"

// Grid extension of the contention model: the paper's single-cluster
// signature T(n,m) = (n−1)(α+mβ)γ [+ (n−1)δ] composes with a WAN term
// into completion-time predictions for All-to-All over a multi-cluster
// grid. Three strategies are modeled:
//
//   - flat direct exchange, where every inter-cluster block is its own
//     message through the shared WAN uplink;
//   - hierarchical gather / coordinator exchange / scatter (sequential
//     phases);
//   - hierarchical direct (intra-cluster exchange overlapped with the
//     coordinator relay).
//
// The WAN term follows the paper's methodology rather than first
// principles: the path is characterized empirically by a ping-pong
// transfer-time curve (which automatically captures propagation, router
// forwarding, transport slow-start and the per-flow window cap over a
// long-fat pipe), and the flat exchange's loss-recovery chaos on the
// shared uplink buffer is summarized by a fitted contention factor
// γ_wan, exactly as γ summarizes it inside a cluster.

// WANPoint is one measured point of the WAN transfer curve.
type WANPoint struct {
	Bytes int
	T     float64 // one-way transfer time (s)
}

// WANModel describes the wide-area path between two clusters.
type WANModel struct {
	// Curve is the measured one-way transfer-time curve of a single
	// flow, ascending in Bytes. Queries interpolate linearly and
	// extrapolate with the terminal slope (the steady window- or
	// wire-limited gap).
	Curve []WANPoint
	// BetaWire is the inverse uplink rate in s/B including framing
	// overhead: the serialization floor shared by all concurrent flows.
	BetaWire float64
	// Gamma is the contention factor charged to the flat exchange's
	// uncoordinated flows on the shared uplink (≥ 1), fitted from a
	// small probe grid like the paper fits γ at n'.
	Gamma float64
}

// Alpha returns the WAN start-up: the smallest measured transfer time.
func (w WANModel) Alpha() float64 {
	if len(w.Curve) == 0 {
		return 0
	}
	return w.Curve[0].T
}

// BetaSteady returns the terminal slope of the curve: the steady
// per-byte gap of one established flow.
func (w WANModel) BetaSteady() float64 {
	if len(w.Curve) < 2 {
		return w.BetaWire
	}
	a, b := w.Curve[len(w.Curve)-2], w.Curve[len(w.Curve)-1]
	if b.Bytes <= a.Bytes {
		return w.BetaWire
	}
	slope := (b.T - a.T) / float64(b.Bytes-a.Bytes)
	if slope < w.BetaWire {
		slope = w.BetaWire
	}
	return slope
}

// Transfer predicts one flow moving `bytes` one way across the WAN by
// interpolating the measured curve.
func (w WANModel) Transfer(bytes int) float64 {
	if bytes <= 0 || len(w.Curve) == 0 {
		return 0
	}
	c := w.Curve
	if bytes <= c[0].Bytes {
		return c[0].T
	}
	for i := 1; i < len(c); i++ {
		if bytes <= c[i].Bytes {
			frac := float64(bytes-c[i-1].Bytes) / float64(c[i].Bytes-c[i-1].Bytes)
			return c[i-1].T + frac*(c[i].T-c[i-1].T)
		}
	}
	last := c[len(c)-1]
	return last.T + float64(bytes-last.Bytes)*w.BetaSteady()
}

// TransferShared predicts `flows` concurrent flows of bytesPerFlow each
// through one uplink: each flow is individually curve-limited (they ramp
// in parallel), while their aggregate serializes at the wire rate.
func (w WANModel) TransferShared(flows, bytesPerFlow int) float64 {
	if flows <= 0 || bytesPerFlow <= 0 {
		return 0
	}
	perFlow := w.Transfer(bytesPerFlow)
	wire := w.Alpha() + float64(flows)*float64(bytesPerFlow)*w.BetaWire
	if wire > perFlow {
		return wire
	}
	return perFlow
}

// GridModel predicts All-to-All completion times on a two-level grid:
// per-cluster contention signatures below, a WAN model between border
// routers above.
type GridModel struct {
	Sizes []int       // nodes per cluster
	LAN   []Signature // per-cluster contention signature
	Wan   WANModel
	// OverlapGamma inflates the hier-direct WAN exchange leg (≥ 1):
	// with the intra-cluster exchange still churning the LAN, inbound
	// WAN packets get dropped at the edge and the wide-area flows pay
	// loss recovery. Fitted from a probe grid, like Wan.Gamma; values
	// < 1 are treated as 1.
	OverlapGamma float64
	// GatherGamma inflates the hier-gather gather and scatter legs
	// (≥ 1): the strict phase structure synchronizes the s−1 local
	// flows into a coordinator-port incast whose loss recovery the
	// plain serialization term misses. Fitted from a probe grid.
	GatherGamma float64
}

// Validate checks structural consistency.
func (g GridModel) Validate() error {
	if len(g.Sizes) == 0 {
		return fmt.Errorf("model: grid with no clusters")
	}
	if len(g.Sizes) != len(g.LAN) {
		return fmt.Errorf("model: %d cluster sizes but %d LAN signatures", len(g.Sizes), len(g.LAN))
	}
	for c, s := range g.Sizes {
		if s < 1 {
			return fmt.Errorf("model: cluster %d has %d nodes", c, s)
		}
	}
	return nil
}

// TotalNodes sums cluster sizes.
func (g GridModel) TotalNodes() int {
	n := 0
	for _, s := range g.Sizes {
		n += s
	}
	return n
}

// intra returns the worst per-cluster intra-exchange time: each cluster
// runs a local All-to-All among its own ranks, predicted by its
// contention signature.
func (g GridModel) intra(m int) float64 {
	worst := 0.0
	for c, s := range g.Sizes {
		if t := g.LAN[c].Predict(s, m); t > worst {
			worst = t
		}
	}
	return worst
}

// FlatParts decomposes the flat-exchange prediction at γ_wan = 1 for
// the worst cluster: the local LAN term, the per-round WAN start-ups,
// and the WAN transfer term that Gamma multiplies. Planner calibration
// inverts this decomposition to fit Gamma from a probe measurement.
func (g GridModel) FlatParts(m int) (lan, startup, wan float64) {
	n := g.TotalNodes()
	worst := 0.0
	for c, s := range g.Sizes {
		remote := n - s
		clan := g.LAN[c].Predict(s, m)
		if remote == 0 {
			if clan > worst {
				worst, lan, startup, wan = clan, clan, 0, 0
			}
			continue
		}
		// Every rank runs `remote` WAN rounds, paying the one-way
		// start-up per round; the cluster's s·remote blocks serialize
		// through the uplink at the steady shared gap.
		cstart := float64(remote) * g.Wan.Alpha()
		cwan := g.Wan.TransferShared(s*remote, m) - g.Wan.Alpha()
		if t := clan + cstart + cwan; t > worst {
			worst, lan, startup, wan = t, clan, cstart, cwan
		}
	}
	return lan, startup, wan
}

// PredictFlat models the flat direct exchange: intra-cluster traffic
// behaves per the local signature, every rank pays the WAN start-up for
// each of its remote rounds, and the cluster's inter-cluster volume
// crosses the shared uplink inflated by the fitted contention factor.
func (g GridModel) PredictFlat(m int) float64 {
	if g.TotalNodes() <= 1 {
		return 0
	}
	gamma := g.Wan.Gamma
	if gamma < 1 {
		gamma = 1
	}
	lan, startup, wan := g.FlatParts(m)
	return lan + startup + wan*gamma
}

// relay returns the coordinator-relay phase times (gather, exchange,
// scatter), each the worst over clusters, for per-pair size m.
func (g GridModel) relay(m int) (gather, xchg, scatter float64) {
	n := g.TotalNodes()
	for c, s := range g.Sizes {
		remote := n - s
		if remote == 0 {
			continue
		}
		h := g.LAN[c].H
		// Gather and scatter: s−1 local transfers of the rank's entire
		// remote-bound volume, serialized at the coordinator's NIC.
		if s > 1 {
			t := float64(s-1) * (h.Alpha + float64(remote*m)*h.Beta)
			if t > gather {
				gather = t
			}
			if t > scatter {
				scatter = t
			}
		}
		// Exchange: one aggregated message per remote cluster, posted
		// concurrently; per-flow curve limit vs aggregate wire limit.
		maxPer, total := 0, 0
		for d, sd := range g.Sizes {
			if d != c {
				b := s * sd * m
				total += b
				if b > maxPer {
					maxPer = b
				}
			}
		}
		perFlow := g.Wan.Transfer(maxPer)
		wire := g.Wan.Alpha() + float64(total)*g.Wan.BetaWire
		t := perFlow
		if wire > t {
			t = wire
		}
		if t > xchg {
			xchg = t
		}
	}
	return gather, xchg, scatter
}

// HierGatherParts decomposes the sequential hierarchical algorithm: the
// intra-cluster exchange, the WAN exchange leg, and the combined local
// gather+scatter legs that GatherGamma multiplies (the synchronized
// coordinator incast; planner calibration inverts this decomposition).
func (g GridModel) HierGatherParts(m int) (intra, xchg, local float64) {
	gather, xchg, scatter := g.relay(m)
	return g.intra(m), xchg, gather + scatter
}

// PredictHierGather models the sequential hierarchical algorithm: the
// intra-cluster exchange and the three relay phases run back to back.
func (g GridModel) PredictHierGather(m int) float64 {
	if g.TotalNodes() <= 1 {
		return 0
	}
	kappa := g.GatherGamma
	if kappa < 1 {
		kappa = 1
	}
	intra, xchg, local := g.HierGatherParts(m)
	return intra + xchg + local*kappa
}

// HierDirectParts decomposes the overlapped algorithm's prediction. Its
// opening phase pushes the intra-cluster exchange and the gathers into
// the LAN at once, so each cluster behaves like a local All-to-All with
// the per-pair volume inflated to the rank's full outbound data,
// (n−1)·m/(s−1) — the local contention signature then prices the
// overlap, which is exactly what makes overlap a loss on high-γ
// networks. The relay (exchange + scatter) follows, its WAN leg being
// dependency-ordered behind the gathers; OverlapGamma multiplies that
// leg (planner calibration inverts this decomposition to fit it).
func (g GridModel) HierDirectParts(m int) (phase0, xchg, scatter float64) {
	n := g.TotalNodes()
	for c, s := range g.Sizes {
		if s <= 1 {
			continue
		}
		inflated := (n - 1) * m / (s - 1)
		if t := g.LAN[c].Predict(s, inflated); t > phase0 {
			phase0 = t
		}
	}
	_, xchg, scatter = g.relay(m)
	return phase0, xchg, scatter
}

// PredictHierDirect models the overlapped hierarchical algorithm.
func (g GridModel) PredictHierDirect(m int) float64 {
	n := g.TotalNodes()
	if n <= 1 {
		return 0
	}
	omega := g.OverlapGamma
	if omega < 1 {
		omega = 1
	}
	phase0, xchg, scatter := g.HierDirectParts(m)
	return phase0 + xchg*omega + scatter
}
