package model

import (
	"fmt"
	"math"
)

// Serialization support for the planner's persistent characterization
// store (internal/grid.CurveStore): the fitted curves marshal through
// encoding/json with their exported fields, and the Validate methods
// below are the load-time gate — a store file edited by hand, truncated
// mid-write, or produced by a different fit could otherwise inject
// non-finite or mis-ordered points that every subsequent prediction
// would silently interpolate over. Go's JSON encoder renders float64
// in the shortest form that parses back to the identical bits, so a
// save→load round trip reproduces fitted values exactly — the property
// the warm-vs-cold bit-identity tests pin.

// finiteVal reports whether v is a usable model parameter.
func finiteVal(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate rejects curves a prediction cannot safely interpolate:
// non-finite factors, non-positive... sizes are allowed to be zero
// (ScalarFactor uses Bytes 0), but points must ascend strictly in
// Bytes — equal sizes would make lookup segments zero-width.
func (c FactorCurve) Validate() error {
	for i, p := range c.Points {
		if !finiteVal(p.Factor) {
			return fmt.Errorf("model: factor curve point %d has non-finite factor %v", i, p.Factor)
		}
		if p.Bytes < 0 {
			return fmt.Errorf("model: factor curve point %d has negative size %d", i, p.Bytes)
		}
		if i > 0 && p.Bytes <= c.Points[i-1].Bytes {
			return fmt.Errorf("model: factor curve points not strictly ascending at %d (%d after %d)",
				i, p.Bytes, c.Points[i-1].Bytes)
		}
	}
	return nil
}

// Validate rejects WAN models whose measured curve cannot be
// interpolated: points must ascend strictly in Bytes with finite
// non-negative times, BetaWire must be finite and non-negative, and the
// contention curve must itself validate.
func (w WANModel) Validate() error {
	if len(w.Curve) < 2 {
		return fmt.Errorf("model: WAN curve has %d point(s), need at least 2 to interpolate", len(w.Curve))
	}
	for i, p := range w.Curve {
		if !finiteVal(p.T) || p.T < 0 {
			return fmt.Errorf("model: WAN curve point %d has unusable time %v", i, p.T)
		}
		if p.Bytes <= 0 {
			return fmt.Errorf("model: WAN curve point %d has non-positive size %d", i, p.Bytes)
		}
		if i > 0 && p.Bytes <= w.Curve[i-1].Bytes {
			return fmt.Errorf("model: WAN curve points not strictly ascending at %d (%d after %d)",
				i, p.Bytes, w.Curve[i-1].Bytes)
		}
	}
	if !finiteVal(w.BetaWire) || w.BetaWire < 0 {
		return fmt.Errorf("model: WAN BetaWire %v is unusable", w.BetaWire)
	}
	if err := w.Gamma.Validate(); err != nil {
		return fmt.Errorf("WAN gamma: %w", err)
	}
	return nil
}

// Validate rejects non-finite point-to-point parameters.
func (h Hockney) Validate() error {
	if !finiteVal(h.Alpha) || !finiteVal(h.Beta) || h.Alpha < 0 || h.Beta < 0 {
		return fmt.Errorf("model: Hockney parameters unusable: α=%v β=%v", h.Alpha, h.Beta)
	}
	return nil
}

// Validate rejects non-finite contention-signature parameters.
func (s Signature) Validate() error {
	if err := s.H.Validate(); err != nil {
		return err
	}
	if !finiteVal(s.Gamma) || !finiteVal(s.Delta) {
		return fmt.Errorf("model: signature parameters unusable: γ=%v δ=%v", s.Gamma, s.Delta)
	}
	return nil
}
