package model

import (
	"fmt"

	"repro/internal/coll"
)

// Irregular (All-to-Allv) predictions. The uniform grid model prices
// every tier's WAN leg by counts — n·m crossing bytes, one m-byte flow
// per rank pair — but an irregular exchange's per-pair sizes shift
// those volumes per cluster pair. The v-variants below price each leg
// by the *actual* bytes of the size matrix restricted to the tier cut:
// topology subtrees own contiguous rank blocks (BuildGridTree assigns
// ranks leaf by leaf in tree order), so every cut is a rectangle sum
// over the matrix (coll.SizeMatrix.SumRect and friends).
//
// Two invariants anchor the v-model to the uniform one, both pinned by
// tests:
//
//   - uniform fast path: a matrix whose off-diagonal entries all equal
//     m delegates to the uniform predictor outright, so predictions are
//     bit-identical, and
//   - uniform reduction: the general v-legs, fed a uniform matrix,
//     reproduce the uniform decompositions (cut sums collapse to the
//     n·m count terms).
//
// The fitted contention factors (γ_wan per tier, ω, κ) keep
// multiplying the same legs — they summarize loss-recovery inflation
// of the *pattern* (flat chaos, overlapped relay, synchronized
// incast), which skew shifts in volume but not in kind — but each
// factor is a size-indexed FactorCurve, and the v-predictions look it
// up at the leg's *effective per-flow size from the actual matrix
// cut* (cut bytes over nonzero cut pairs) instead of the uniform
// probe size. A skewed matrix whose fat rows push a tier's flows into
// a different contention regime is priced with the factor fitted
// nearest that regime — the skew-aware calibration. Uniform matrices
// reduce every effective size to m exactly, and single-point curves
// reduce every lookup to the scalar factor bit-identically.

// rankRanges assigns every node of the model tree its contiguous rank
// interval [lo, hi), leaf sizes accumulated in tree order — the rank
// assignment of a grid built from the mirrored topology.
func (g GridModel) rankRanges() map[*ModelNode][2]int {
	out := map[*ModelNode][2]int{}
	lo := 0
	var walk func(v *ModelNode)
	walk = func(v *ModelNode) {
		start := lo
		if v.IsLeaf() {
			lo += v.Size
		} else {
			for _, c := range v.Children {
				walk(c)
			}
		}
		out[v] = [2]int{start, lo}
	}
	walk(g.Root)
	return out
}

// checkMatrix validates that a size matrix covers the model's ranks.
func (g GridModel) checkMatrix(sz coll.SizeMatrix) {
	if sz.NumRanks() != g.TotalNodes() {
		panic(fmt.Sprintf("model: size matrix covers %d ranks, grid has %d",
			sz.NumRanks(), g.TotalNodes()))
	}
}

// outCut returns the bytes subtree [lo, hi) sends into the rest of
// [outerLo, outerHi), i.e. the rectangle sum over both flanks, plus the
// largest single pair entry of that cut (the per-flow curve limit) and
// the number of nonzero pairs in it (the flow count a factor-curve
// lookup divides the cut by).
func outCut(sz coll.SizeMatrix, lo, hi, outerLo, outerHi int) (cut, maxPair, flows int) {
	cut = sz.SumRect(lo, hi, outerLo, lo) + sz.SumRect(lo, hi, hi, outerHi)
	maxPair = sz.MaxRect(lo, hi, outerLo, lo)
	if m := sz.MaxRect(lo, hi, hi, outerHi); m > maxPair {
		maxPair = m
	}
	flows = sz.CountRect(lo, hi, outerLo, lo) + sz.CountRect(lo, hi, hi, outerHi)
	return cut, maxPair, flows
}

// effSize returns the effective per-flow size of a cut: its byte sum
// spread over its nonzero pairs. A uniform matrix reduces it to m
// exactly; an empty cut is size 0.
func effSize(cut, flows int) int {
	if flows <= 0 {
		return 0
	}
	return cut / flows
}

// localEffSize returns the leaf's effective per-pair local message
// size: the worst member's intra-leaf volume (outbound or inbound,
// whichever is larger) spread over its s−1 local partners — the size at
// which the leaf's contention signature prices the local exchange. A
// uniform matrix reduces it to m exactly. ok is false when the leaf
// exchanges no local bytes at all (the executor then posts no local
// messages, so the leg costs nothing).
func localEffSize(sz coll.SizeMatrix, lo, hi int) (eff int, ok bool) {
	s := hi - lo
	if s <= 1 {
		return 0, false
	}
	worst := 0
	for i := lo; i < hi; i++ {
		v := sz.RowSum(i, lo, hi)
		if in := sz.ColSum(i, lo, hi); in > v {
			v = in
		}
		if v > worst {
			worst = v
		}
	}
	if worst == 0 {
		return 0, false
	}
	return worst / (s - 1), true
}

// intraV returns the worst per-cluster intra-exchange time under the
// matrix, each leaf priced by its signature at its effective local size.
func (g GridModel) intraV(sz coll.SizeMatrix, ranges map[*ModelNode][2]int) float64 {
	worst := 0.0
	for _, lf := range g.Leaves() {
		r := ranges[lf]
		eff, ok := localEffSize(sz, r[0], r[1])
		if !ok {
			continue
		}
		if t := lf.LAN.Predict(lf.Size, eff); t > worst {
			worst = t
		}
	}
	return worst
}

// FlatPartsV decomposes the flat-exchange prediction for the worst leaf
// under a size matrix, mirroring FlatParts: `fixed` is the local LAN
// term plus the γ-weighted inner-tier transfer terms, `startup` the
// per-round WAN start-ups (only rounds that carry bytes in either
// direction count — zero pairs send nothing), and `rootWan` the root
// tier's transfer term. Each tier's transfer prices the actual cut:
// per-flow curve limit at the cut's largest pair entry, aggregate wire
// serialization at the cut's byte sum; each inner tier's γ_wan curve is
// looked up at the cut's effective per-flow size.
func (g GridModel) FlatPartsV(sz coll.SizeMatrix) (fixed, startup, rootWan float64) {
	fixed, startup, rootWan, _ = g.flatPartsV(sz)
	return fixed, startup, rootWan
}

// flatPartsV is FlatPartsV plus the worst leaf's effective per-flow
// size at the root tier — the size PredictFlatV looks the root γ_wan
// curve up at.
func (g GridModel) flatPartsV(sz coll.SizeMatrix) (fixed, startup, rootWan float64, rootEff int) {
	g.checkMatrix(sz)
	ranges := g.rankRanges()
	worst := -1.0
	var walk func(v *ModelNode, ancestors, childAt []*ModelNode)
	walk = func(v *ModelNode, ancestors, childAt []*ModelNode) {
		if !v.IsLeaf() {
			for _, c := range v.Children {
				walk(c, append(append([]*ModelNode(nil), ancestors...), v),
					append(append([]*ModelNode(nil), childAt...), c))
			}
			return
		}
		lr := ranges[v]
		clan := 0.0
		if eff, ok := localEffSize(sz, lr[0], lr[1]); ok {
			clan = v.LAN.Predict(v.Size, eff)
		}
		cfixed, cstart, croot := clan, 0.0, 0.0
		ceff := 0
		for i, a := range ancestors {
			c := childAt[i]
			ar, cr := ranges[a], ranges[c]
			// Start-ups: the leaf's worst rank pays one per peer that
			// diverges at this tier and owes bytes in either direction.
			rounds := 0
			for r := lr[0]; r < lr[1]; r++ {
				k := sz.NonzeroPairs(r, ar[0], cr[0]) + sz.NonzeroPairs(r, cr[1], ar[1])
				if k > rounds {
					rounds = k
				}
			}
			cstart += float64(rounds) * a.Wan.Alpha()
			cut, maxPair, flows := outCut(sz, cr[0], cr[1], ar[0], ar[1])
			if cut == 0 {
				continue
			}
			perFlow := a.Wan.Transfer(maxPair)
			wire := a.Wan.Alpha() + float64(cut)*a.Wan.BetaWire
			t := perFlow
			if wire > t {
				t = wire
			}
			wan := t - a.Wan.Alpha()
			if a == g.Root {
				croot = wan
				ceff = effSize(cut, flows)
			} else {
				cfixed += wan * gammaAt(a.Wan.Gamma, effSize(cut, flows))
			}
		}
		if t := cfixed + cstart + croot; t > worst {
			worst, fixed, startup, rootWan, rootEff = t, cfixed, cstart, croot, ceff
		}
	}
	walk(g.Root, nil, nil)
	return fixed, startup, rootWan, rootEff
}

// PredictFlatV models the flat direct exchange of an irregular total
// exchange: AlltoallV's zero-skipping rounds pay start-ups only where
// bytes flow, and each tier's shared uplinks serialize the actual cut
// volume inflated by the tier's fitted contention factor at the cut's
// effective per-flow size. Uniform matrices delegate to PredictFlat
// bit-identically; an all-zero matrix sends nothing and predicts 0.
func (g GridModel) PredictFlatV(sz coll.SizeMatrix) float64 {
	g.checkMatrix(sz)
	if sz.Total() == 0 {
		return 0
	}
	if m, ok := sz.Uniform(); ok {
		return g.PredictFlat(m)
	}
	if g.TotalNodes() <= 1 {
		return 0
	}
	fixed, startup, rootWan, rootEff := g.flatPartsV(sz)
	gamma := 1.0
	if !g.Root.IsLeaf() {
		gamma = gammaAt(g.Root.Wan.Gamma, rootEff)
		if g.Obs != nil {
			g.emitLookup("gamma_wan", g.Root.Height(), g.Root.Wan.Gamma, rootEff)
		}
	}
	return fixed + startup + rootWan*gamma
}

// exchangeAtV mirrors exchangeAt under a size matrix: the aggregated
// coordinator exchange at group tier v, with each ordered child pair's
// message priced at its actual rectangle sum, the per-flow curve limit
// at the largest pair message, and the coordinator-port floor at the
// child's actual outbound aggregate.
func (g GridModel) exchangeAtV(v *ModelNode, sz coll.SizeMatrix, ranges map[*ModelNode][2]int) float64 {
	worst := 0.0
	for _, c := range v.Children {
		cr := ranges[c]
		maxPer, total := 0, 0
		for _, d := range v.Children {
			if d == c {
				continue
			}
			dr := ranges[d]
			b := sz.SumRect(cr[0], cr[1], dr[0], dr[1])
			total += b
			if b > maxPer {
				maxPer = b
			}
		}
		if total == 0 {
			continue
		}
		perFlow := v.Wan.Transfer(maxPer)
		wire := v.Wan.Alpha() + float64(total)*v.Wan.BetaWire
		t := perFlow
		if wire > t {
			t = wire
		}
		if c.IsLeaf() && c.CoordBeta > 0 {
			port := v.Wan.Alpha() + float64(total)/float64(c.coordSplit())*c.CoordBeta
			if port > t {
				t = port
			}
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// collectAtV mirrors collectAt under a size matrix: the incast of the
// upward gather into tier v's coordinator (up == true, outbound cut of
// each non-coordinator child) or the downward scatter from it (inbound
// cut). Zero at the root, which has no outside.
func (g GridModel) collectAtV(v *ModelNode, sz coll.SizeMatrix, ranges map[*ModelNode][2]int, up bool) float64 {
	vr := ranges[v]
	n := sz.NumRanks()
	if vr[1]-vr[0] == n || len(v.Children) < 2 {
		return 0
	}
	maxPer, total := 0, 0
	for i, c := range v.Children {
		if i == 0 {
			continue // the first child hosts the tier coordinator
		}
		cr := ranges[c]
		var b int
		if up {
			b = sz.SumRect(cr[0], cr[1], 0, vr[0]) + sz.SumRect(cr[0], cr[1], vr[1], n)
		} else {
			b = sz.SumRect(0, vr[0], cr[0], cr[1]) + sz.SumRect(vr[1], n, cr[0], cr[1])
		}
		total += b
		if b > maxPer {
			maxPer = b
		}
	}
	if total == 0 {
		return 0
	}
	perFlow := v.Wan.Transfer(maxPer)
	wire := v.Wan.Alpha() + float64(total)*v.Wan.BetaWire
	if wire > perFlow {
		return wire
	}
	return perFlow
}

// tierLegsV mirrors tierLegs under a size matrix: per height, the worst
// group's exchange plus upward gather; per depth, the worst group's
// downward scatter.
func (g GridModel) tierLegsV(sz coll.SizeMatrix, ranges map[*ModelNode][2]int) (xchg, scatter float64) {
	byHeight := map[int]float64{}
	byDepth := map[int]float64{}
	var walk func(v *ModelNode, depth int)
	walk = func(v *ModelNode, depth int) {
		if v.IsLeaf() {
			return
		}
		for _, c := range v.Children {
			walk(c, depth+1)
		}
		if t := g.exchangeAtV(v, sz, ranges) + g.collectAtV(v, sz, ranges, true); t > byHeight[v.Height()] {
			byHeight[v.Height()] = t
		}
		if down := g.collectAtV(v, sz, ranges, false); depth > 0 && down > byDepth[depth] {
			byDepth[depth] = down
		}
	}
	walk(g.Root, 0)
	for _, t := range byHeight {
		xchg += t
	}
	for _, t := range byDepth {
		scatter += t
	}
	return xchg, scatter
}

// leafLegsV returns the worst leaf's gather and scatter legs under a
// size matrix: s−1 local transfers into (out of) the coordinator set,
// serialized over each member's actual remote-bound (remote-origin)
// volume, split across the C coordinator ports. The coordinator's own
// share never crosses the leaf's local links, so one member is
// excluded — the model only receives NumCoords/CoordBeta, never which
// rank a selection chose, so it excludes the member with the smallest
// remote volume: the worst case over possible coordinator choices (a
// hotspot member's fat rows are never priced away), reducing exactly
// to the uniform (s−1)-member form. Measured coordinator headroom
// (CoordBeta) replaces the nominal LAN gap when present, exactly as in
// the uniform leafLocal.
func (g GridModel) leafLegsV(sz coll.SizeMatrix, ranges map[*ModelNode][2]int) (gather, scatter float64) {
	gather, scatter, _ = g.leafLegsVEff(sz, ranges)
	return gather, scatter
}

// leafLegsVEff is leafLegsV plus the κ lookup size: the effective
// per-pair size of the worst legs' incast traffic — the worst gather
// leaf's relayed bytes and the worst scatter leaf's, spread over their
// nonzero remote pairs (the coordinator's own excluded share removed
// from both). A uniform matrix reduces it to m exactly.
func (g GridModel) leafLegsVEff(sz coll.SizeMatrix, ranges map[*ModelNode][2]int) (gather, scatter float64, eff int) {
	n := sz.NumRanks()
	effOutB, effOutP, effInB, effInP := 0, 0, 0, 0
	for _, lf := range g.Leaves() {
		r := ranges[lf]
		s := lf.Size
		if s <= 1 || r[1]-r[0] == n {
			continue
		}
		h := lf.LAN.H
		beta := h.Beta
		if lf.CoordBeta > 0 {
			beta = lf.CoordBeta
		}
		c := float64(lf.coordSplit())
		out, in, outPairs, inPairs := 0, 0, 0, 0
		minOut, minIn, minOutPairs, minInPairs := -1, -1, 0, 0
		for i := r[0]; i < r[1]; i++ {
			o := sz.RowSum(i, 0, r[0]) + sz.RowSum(i, r[1], n)
			v := sz.ColSum(i, 0, r[0]) + sz.ColSum(i, r[1], n)
			op := sz.CountRect(i, i+1, 0, r[0]) + sz.CountRect(i, i+1, r[1], n)
			vp := sz.CountRect(0, r[0], i, i+1) + sz.CountRect(r[1], n, i, i+1)
			out += o
			in += v
			outPairs += op
			inPairs += vp
			if minOut < 0 || o < minOut {
				minOut, minOutPairs = o, op
			}
			if minIn < 0 || v < minIn {
				minIn, minInPairs = v, vp
			}
		}
		out -= minOut
		in -= minIn
		outPairs -= minOutPairs
		inPairs -= minInPairs
		if out > 0 {
			if t := float64(s-1)*h.Alpha + float64(out)*beta/c; t > gather {
				gather = t
				effOutB, effOutP = out, outPairs
			}
		}
		if in > 0 {
			if t := float64(s-1)*h.Alpha + float64(in)*beta/c; t > scatter {
				scatter = t
				effInB, effInP = in, inPairs
			}
		}
	}
	return gather, scatter, effSize(effOutB+effInB, effOutP+effInP)
}

// overlapEff returns the worst leaf's effective local per-pair size —
// the size the ω curve is looked up at. ω prices the loss recovery
// wide-area relay flows pay while the intra-cluster exchange churns
// the LAN (§5's overlap term), and that churn's intensity is the local
// exchange's per-pair volume: a matrix with thin local blocks (the
// block-diagonal skew) interferes with the relay far less than the
// uniform probe at the cross-pair size did, and a hotspot's fat local
// rows far more. The ω probes fit the curve at uniform per-pair sizes,
// where local and cross sizes coincide, so the local intensity is the
// index that transfers. A uniform matrix reduces it to m exactly.
func (g GridModel) overlapEff(sz coll.SizeMatrix, ranges map[*ModelNode][2]int) int {
	worst := 0
	for _, lf := range g.Leaves() {
		r := ranges[lf]
		if eff, ok := localEffSize(sz, r[0], r[1]); ok && eff > worst {
			worst = eff
		}
	}
	return worst
}

// HierGatherPartsV decomposes the sequential hierarchical algorithm
// under a size matrix, mirroring HierGatherParts: the intra-cluster
// exchange at each leaf's effective local size, the summed per-tier WAN
// legs priced at the actual tier cuts, and the combined leaf
// gather+scatter legs that GatherGamma multiplies.
func (g GridModel) HierGatherPartsV(sz coll.SizeMatrix) (intra, xchg, local float64) {
	intra, xchg, local, _ = g.hierGatherPartsV(sz)
	return intra, xchg, local
}

// hierGatherPartsV is HierGatherPartsV plus the κ lookup size — the
// shared core, so the public decomposition and the prediction summing
// it cannot drift apart.
func (g GridModel) hierGatherPartsV(sz coll.SizeMatrix) (intra, xchg, local float64, kappaEff int) {
	g.checkMatrix(sz)
	ranges := g.rankRanges()
	tx, ts := g.tierLegsV(sz, ranges)
	lg, ls, eff := g.leafLegsVEff(sz, ranges)
	return g.intraV(sz, ranges), tx + ts, lg + ls, eff
}

// PredictHierGatherV models the sequential hierarchical algorithm for
// an irregular exchange: the κ curve is looked up at the worst leafs'
// effective incast size. Uniform matrices delegate to
// PredictHierGather bit-identically; an all-zero matrix predicts 0.
func (g GridModel) PredictHierGatherV(sz coll.SizeMatrix) float64 {
	g.checkMatrix(sz)
	if sz.Total() == 0 {
		return 0
	}
	if m, ok := sz.Uniform(); ok {
		return g.PredictHierGather(m)
	}
	if g.TotalNodes() <= 1 {
		return 0
	}
	intra, xchg, local, eff := g.hierGatherPartsV(sz)
	if g.Obs != nil {
		g.emitLookup("kappa", -1, g.GatherGamma, eff)
	}
	return intra + xchg + local*gammaAt(g.GatherGamma, eff)
}

// HierDirectPartsV decomposes the overlapped algorithm under a size
// matrix, mirroring HierDirectParts: the opening phase prices each leaf
// as a local All-to-All at the worst member's full outbound volume
// spread over its s−1 local partners, the relay's WAN exchange legs
// (OverlapGamma's multiplicand) carry the actual tier cuts, and the
// scatter legs (per-tier downward plus leaf-local) close the plan.
func (g GridModel) HierDirectPartsV(sz coll.SizeMatrix) (phase0, xchg, scatter float64) {
	phase0, xchg, scatter, _ = g.hierDirectPartsV(sz)
	return phase0, xchg, scatter
}

// hierDirectPartsV is HierDirectPartsV plus the ω lookup size — the
// shared core, computing the rank ranges once for both the legs and
// the overlap-intensity lookup.
func (g GridModel) hierDirectPartsV(sz coll.SizeMatrix) (phase0, xchg, scatter float64, omegaEff int) {
	g.checkMatrix(sz)
	ranges := g.rankRanges()
	n := sz.NumRanks()
	for _, lf := range g.Leaves() {
		s := lf.Size
		if s <= 1 {
			continue
		}
		r := ranges[lf]
		worstRow := 0
		for i := r[0]; i < r[1]; i++ {
			if v := sz.RowSum(i, 0, n); v > worstRow {
				worstRow = v
			}
		}
		if worstRow == 0 {
			continue
		}
		inflated := worstRow / (s - 1)
		if t := lf.LAN.Predict(s, inflated); t > phase0 {
			phase0 = t
		}
	}
	tx, ts := g.tierLegsV(sz, ranges)
	_, ls := g.leafLegsV(sz, ranges)
	return phase0, tx, ts + ls, g.overlapEff(sz, ranges)
}

// PredictHierDirectV models the overlapped hierarchical algorithm for
// an irregular exchange: the ω curve is looked up at the worst leaf's
// effective local per-pair size — the overlap intensity the factor
// summarizes. Uniform matrices delegate to PredictHierDirect
// bit-identically; an all-zero matrix predicts 0.
func (g GridModel) PredictHierDirectV(sz coll.SizeMatrix) float64 {
	g.checkMatrix(sz)
	if sz.Total() == 0 {
		return 0
	}
	if m, ok := sz.Uniform(); ok {
		return g.PredictHierDirect(m)
	}
	if g.TotalNodes() <= 1 {
		return 0
	}
	phase0, xchg, scatter, eff := g.hierDirectPartsV(sz)
	if g.Obs != nil {
		g.emitLookup("omega", -1, g.OverlapGamma, eff)
	}
	return phase0 + xchg*gammaAt(g.OverlapGamma, eff) + scatter
}
