package model

import (
	"math"
	"testing"

	"repro/internal/coll"
)

func TestFactorCurveAt(t *testing.T) {
	// Empty curve: the identity factor at every size.
	var zero FactorCurve
	if !zero.IsZero() || zero.At(0) != 1 || zero.At(1<<20) != 1 {
		t.Fatalf("zero curve not identity: At(1M)=%v", zero.At(1<<20))
	}

	// Scalar-compatible single point: the same factor at every size,
	// bit-identical to the scalar it wraps.
	s := ScalarFactor(2.41)
	for _, b := range []int{0, 1, 8 << 10, 64 << 10, 1 << 30} {
		if got := s.At(b); got != 2.41 {
			t.Fatalf("scalar curve At(%d) = %v, want 2.41", b, got)
		}
	}

	c := CurveOf(
		FactorPoint{Bytes: 8 << 10, Factor: 4},
		FactorPoint{Bytes: 64 << 10, Factor: 2},
		FactorPoint{Bytes: 256 << 10, Factor: 1},
	)
	// Terminal-value extrapolation on both ends.
	if got := c.At(1 << 10); got != 4 {
		t.Fatalf("below-curve lookup = %v, want first factor 4", got)
	}
	if got := c.At(1 << 30); got != 1 {
		t.Fatalf("beyond-curve lookup = %v, want last factor 1", got)
	}
	// Exact hits return the fitted factors.
	for _, p := range c.Points {
		if got := c.At(p.Bytes); math.Abs(got-p.Factor) > 1e-12 {
			t.Fatalf("At(%d) = %v, want fitted %v", p.Bytes, got, p.Factor)
		}
	}
	// Log-size interpolation: 16 KiB sits at log-fraction 1/3 of the
	// 8k→64k segment (8k·2^1 of the 2^3-wide octave span).
	want := 4 + (math.Log(2)/math.Log(8))*(2-4)
	if got := c.At(16 << 10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("At(16k) = %v, want log-interpolated %v", got, want)
	}
	// Monotone bracketing on a monotone curve.
	if mid := c.At(100 << 10); mid < 1 || mid > 2 {
		t.Fatalf("At(100k) = %v outside its bracket [1, 2]", mid)
	}
	if got := c.Max(); got != 4 {
		t.Fatalf("Max() = %v, want 4", got)
	}
}

func TestCurveOfSanitizes(t *testing.T) {
	// Unsorted, duplicated and non-finite points must come out as a
	// sorted, distinct, finite curve — fitting noise cannot poison
	// lookups.
	c := CurveOf(
		FactorPoint{Bytes: 64 << 10, Factor: 2},
		FactorPoint{Bytes: 8 << 10, Factor: math.NaN()},
		FactorPoint{Bytes: 8 << 10, Factor: 3},
		FactorPoint{Bytes: 64 << 10, Factor: 99}, // duplicate size: dropped
		FactorPoint{Bytes: 16 << 10, Factor: math.Inf(1)},
	)
	if len(c.Points) != 2 {
		t.Fatalf("sanitized curve has %d points, want 2: %+v", len(c.Points), c.Points)
	}
	if c.Points[0] != (FactorPoint{Bytes: 8 << 10, Factor: 3}) ||
		c.Points[1] != (FactorPoint{Bytes: 64 << 10, Factor: 2}) {
		t.Fatalf("sanitized curve wrong: %+v", c.Points)
	}
	for _, b := range []int{4 << 10, 16 << 10, 1 << 20} {
		if got := c.At(b); math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("At(%d) = %v, must be finite", b, got)
		}
	}
	// Hand-built zero-width segments are skipped, not divided by.
	dup := FactorCurve{Points: []FactorPoint{{Bytes: 8 << 10, Factor: 3}, {Bytes: 8 << 10, Factor: 5}}}
	if got := dup.At(8 << 10); math.IsNaN(got) {
		t.Fatalf("zero-width segment lookup = NaN")
	}
}

// TestWANTransferZeroWidthSegment pins the NaN regression: a curve
// whose consecutive points share one Bytes value (duplicate probe
// sizes) must not divide by the zero segment width.
func TestWANTransferZeroWidthSegment(t *testing.T) {
	w := WANModel{
		Curve: []WANPoint{
			{Bytes: 2 << 10, T: 0.020},
			{Bytes: 64 << 10, T: 0.030},
			{Bytes: 64 << 10, T: 0.034}, // duplicate probe size
			{Bytes: 1 << 20, T: 0.180},
		},
		BetaWire: 8e-8,
	}
	for _, b := range []int{1 << 10, 32 << 10, 64 << 10, 128 << 10, 4 << 20} {
		got := w.Transfer(b)
		if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
			t.Fatalf("Transfer(%d) = %v with a zero-width segment, want finite positive", b, got)
		}
	}
	// An exact hit on the duplicated size resolves through the
	// preceding segment's interpolation (its first measurement); sizes
	// beyond it continue from the later one.
	if got := w.Transfer(64 << 10); got != 0.030 {
		t.Fatalf("Transfer at duplicated size = %v, want 0.030", got)
	}
	if got := w.Transfer(65 << 10); got <= 0.030 || got >= 0.180 {
		t.Fatalf("Transfer just past duplicated size = %v, want within (0.034, 0.180) segment", got)
	}
}

// TestGridSinglePointCurveBitIdentical pins the scalar reduction the
// acceptance criteria demand: a model whose factors are single-point
// curves must predict bit-identically to the same factors spelled as
// multi-point curves with every point equal — the lookup path can
// change which point it reads, never the value it multiplies. (The
// reduction to the pre-curve scalar closed forms is pinned by
// TestGridTwoLevelMatchesClosedForm, whose expectations are computed
// from bare scalars.)
func TestGridSinglePointCurveBitIdentical(t *testing.T) {
	flat := func(f float64) FactorCurve {
		return CurveOf(
			FactorPoint{Bytes: 8 << 10, Factor: f},
			FactorPoint{Bytes: 64 << 10, Factor: f},
			FactorPoint{Bytes: 256 << 10, Factor: f},
		)
	}
	scalar := threeLevelFixture()
	scalar.OverlapGamma = ScalarFactor(2.5)
	scalar.GatherGamma = ScalarFactor(1.5)

	curved := threeLevelFixture()
	curved.OverlapGamma = flat(2.5)
	curved.GatherGamma = flat(1.5)
	curved.Root.Wan.Gamma = flat(3)
	for _, c := range curved.Root.Children {
		c.Wan.Gamma = flat(2)
	}

	n := scalar.TotalNodes()
	for _, m := range []int{4 << 10, 64 << 10, 512 << 10} {
		if a, b := scalar.PredictFlat(m), curved.PredictFlat(m); a != b {
			t.Fatalf("m=%d: flat scalar %v != flat curve %v", m, a, b)
		}
		if a, b := scalar.PredictHierGather(m), curved.PredictHierGather(m); a != b {
			t.Fatalf("m=%d: hier-gather scalar %v != curve %v", m, a, b)
		}
		if a, b := scalar.PredictHierDirect(m), curved.PredictHierDirect(m); a != b {
			t.Fatalf("m=%d: hier-direct scalar %v != curve %v", m, a, b)
		}
	}
	// Skewed matrices exercise the effective-size lookups; equal-value
	// curves must still be bit-identical to the single-point factors.
	hot := coll.UniformSizeMatrix(n, 64<<10)
	for j := 1; j < n; j++ {
		hot.Set(0, j, 8*64<<10)
	}
	if a, b := scalar.PredictFlatV(hot), curved.PredictFlatV(hot); a != b {
		t.Fatalf("flatV scalar %v != curve %v", a, b)
	}
	if a, b := scalar.PredictHierGatherV(hot), curved.PredictHierGatherV(hot); a != b {
		t.Fatalf("hier-gatherV scalar %v != curve %v", a, b)
	}
	if a, b := scalar.PredictHierDirectV(hot), curved.PredictHierDirectV(hot); a != b {
		t.Fatalf("hier-directV scalar %v != curve %v", a, b)
	}
}

// TestGridVCurveLookupIsSkewAware: with a factor curve that falls with
// size, a skewed matrix whose local exchange runs at fat per-pair
// sizes (the overlap intensity ω is indexed by) must be priced with
// the fat-size factor — below the factor fitted at the cross size —
// on exactly the legs ω multiplies.
func TestGridVCurveLookupIsSkewAware(t *testing.T) {
	const m = 64 << 10
	mk := func(omega FactorCurve) GridModel {
		g := gridModelFixture()
		g.OverlapGamma = omega
		return g
	}
	falling := CurveOf(
		FactorPoint{Bytes: 8 << 10, Factor: 4},
		FactorPoint{Bytes: 64 << 10, Factor: 3},
		FactorPoint{Bytes: 512 << 10, Factor: 1.2},
	)
	// Local pairs at 8m, cross pairs at m: the worst leaf's effective
	// local size is 8m, so the ω lookup must land at the 8m fit, below
	// the cross-size factor.
	n := gridModelFixture().TotalNodes()
	fat := coll.NewSizeMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if (i < 4) == (j < 4) {
				fat.Set(i, j, 8*m)
			} else {
				fat.Set(i, j, m)
			}
		}
	}
	curve := mk(falling).PredictHierDirectV(fat)
	atCross := mk(ScalarFactor(falling.At(m))).PredictHierDirectV(fat)
	atFat := mk(ScalarFactor(falling.At(8 * m))).PredictHierDirectV(fat)
	if curve >= atCross {
		t.Fatalf("fat local churn priced at the cross-size factor: curve %v !< scalar@m %v", curve, atCross)
	}
	if math.Abs(curve-atFat) > 1e-12*atFat {
		t.Fatalf("curve lookup = %v, want the 8m-size factor's prediction %v", curve, atFat)
	}
}

// TestGridVAllZeroMatrixPredictsZero pins the degenerate input: an
// exchange that owes no bytes sends nothing (the v-executors prune
// every message), so every v-prediction must be exactly 0 with no
// NaN/Inf anywhere in the decompositions.
func TestGridVAllZeroMatrixPredictsZero(t *testing.T) {
	for name, g := range map[string]GridModel{"2lvl": gridModelFixture(), "3lvl": threeLevelFixture()} {
		zero := coll.NewSizeMatrix(g.TotalNodes())
		if got := g.PredictFlatV(zero); got != 0 {
			t.Fatalf("%s: flat all-zero = %v, want 0", name, got)
		}
		if got := g.PredictHierGatherV(zero); got != 0 {
			t.Fatalf("%s: hier-gather all-zero = %v, want 0", name, got)
		}
		if got := g.PredictHierDirectV(zero); got != 0 {
			t.Fatalf("%s: hier-direct all-zero = %v, want 0", name, got)
		}
		f, s, r := g.FlatPartsV(zero)
		for _, v := range []float64{f, s, r} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: FlatPartsV on all-zero not finite: %v %v %v", name, f, s, r)
			}
		}
	}
}
