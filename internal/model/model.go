// Package model implements the analytical performance models discussed
// in the paper: the Hockney point-to-point transmission model, the total
// exchange lower bound (Proposition 1), the contention-unaware baseline
// (eq. 1), Clement's contention factor (eq. 2), Chun's size-dependent
// latency model, the two-beta throughput-under-contention approach
// (Section 6), and the paper's contention signature model (Section 7,
// eqs. 4 and 5). All times are in seconds, message sizes in bytes.
package model

import "fmt"

// Hockney is the point-to-point transmission model T(m) = α + m·β.
type Hockney struct {
	Alpha float64 // start-up latency (s)
	Beta  float64 // gap per byte (s/B); 1/β is the bandwidth
}

// P2P returns the modeled point-to-point time for an m-byte message.
func (h Hockney) P2P(m int) float64 { return h.Alpha + h.Beta*float64(m) }

// String renders the parameters in conventional units.
func (h Hockney) String() string {
	return fmt.Sprintf("α=%.3gs β=%.4gs/B (%.1f MB/s)", h.Alpha, h.Beta, 1/h.Beta/1e6)
}

// LowerBound is Proposition 1: with 1-port full-duplex communication, no
// forwarding, equal message sizes and a homogeneous network, a total
// exchange takes at least (n−1)·α + (n−1)·m·β.
func LowerBound(h Hockney, n, m int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * (h.Alpha + h.Beta*float64(m))
}

// Model predicts the completion time of an n-process All-to-All with
// per-pair message size m bytes.
type Model interface {
	Name() string
	Predict(n, m int) float64
}

// Naive is the contention-unaware model of eq. (1) (Christara,
// Pjesivac-Grbovic): T = (n−1)(α + βm) — identical to the lower bound.
type Naive struct {
	H Hockney
}

// Name implements Model.
func (d Naive) Name() string { return "naive-lower-bound" }

// Predict implements Model.
func (d Naive) Predict(n, m int) float64 { return LowerBound(d.H, n, m) }

// Clement is eq. (2): T = l + bγ/W with the contention factor γ equal to
// the number of processes, i.e. T = α + m·n·β. It assumes all processes
// communicate simultaneously on a shared medium and models a single
// message's cost; the All-to-All then repeats it n−1 times.
type Clement struct {
	H Hockney
}

// Name implements Model.
func (c Clement) Name() string { return "clement-contention-factor" }

// Predict implements Model.
func (c Clement) Predict(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	perMsg := c.H.Alpha + float64(m)*float64(n)*c.H.Beta
	return float64(n-1) * perMsg
}

// Chun models contention as a message-size-dependent latency: a latency
// table maps size classes to measured latencies (under load), keeping a
// single β. It ignores how many messages are in flight.
type Chun struct {
	Beta float64
	// Steps maps size-class upper bounds (bytes, ascending) to the
	// latency (s) used for messages up to that size; the last entry
	// covers everything larger.
	Steps []ChunStep
}

// ChunStep is one size-class latency entry.
type ChunStep struct {
	MaxSize int     // class upper bound (bytes); last step may be 0 = ∞
	Alpha   float64 // latency for this class (s)
}

// Name implements Model.
func (c Chun) Name() string { return "chun-size-dependent-latency" }

// latencyFor picks the class latency for size m.
func (c Chun) latencyFor(m int) float64 {
	for _, s := range c.Steps {
		if s.MaxSize == 0 || m <= s.MaxSize {
			return s.Alpha
		}
	}
	if len(c.Steps) > 0 {
		return c.Steps[len(c.Steps)-1].Alpha
	}
	return 0
}

// Predict implements Model.
func (c Chun) Predict(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * (c.latencyFor(m) + c.Beta*float64(m))
}

// TwoBeta is the Section 6 throughput-under-contention approach: blend a
// contention-free gap βF and a contended gap βC measured from a network
// saturation probe into a synthetic β = (1−ρ)·βF + ρ·βC, then evaluate
// the lower bound with it. The paper uses ρ = 0.5 ("at most one of each
// two connections will be delayed due to contention").
type TwoBeta struct {
	Alpha float64
	BetaF float64 // contention-free gap (s/B)
	BetaC float64 // contended gap (s/B)
	Rho   float64 // contended fraction, 0.5 in the paper
}

// Name implements Model.
func (t TwoBeta) Name() string { return "two-beta-throughput" }

// SyntheticBeta returns (1−ρ)·βF + ρ·βC.
func (t TwoBeta) SyntheticBeta() float64 { return (1-t.Rho)*t.BetaF + t.Rho*t.BetaC }

// Predict implements Model.
func (t TwoBeta) Predict(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * (t.Alpha + t.SyntheticBeta()*float64(m))
}

// Signature is the paper's contention signature model (Section 7):
//
//	T(n, m) = (n−1)·(α + mβ)·γ               if m < M
//	T(n, m) = (n−1)·((α + mβ)·γ + δ)         if m ≥ M
//
// γ is the contention ratio between real performance and the lower
// bound; δ is the per-simultaneous-communication start-up overload
// (the paper's Fast Ethernet reading: "each simultaneous communication
// induces an overload of 8.23 ms"); M is the message-size threshold
// above which δ applies. The parameters characterize the network, not
// the process count, so one fit extrapolates across n.
type Signature struct {
	H       Hockney
	Gamma   float64
	Delta   float64 // seconds per simultaneous communication
	M       int     // δ activation threshold (bytes); 0 applies δ always
	SampleN int     // process count n' used when fitting (informational)
}

// Name implements Model.
func (s Signature) Name() string { return "contention-signature" }

// Predict implements Model.
func (s Signature) Predict(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	t := LowerBound(s.H, n, m) * s.Gamma
	if m >= s.M {
		t += float64(n-1) * s.Delta
	}
	return t
}

// String renders the signature like the paper reports it.
func (s Signature) String() string {
	return fmt.Sprintf("γ=%.4f δ=%.3fms M=%dB (fit at n'=%d)",
		s.Gamma, s.Delta*1e3, s.M, s.SampleN)
}
