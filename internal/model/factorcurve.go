package model

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Size-indexed contention factors. The fitted factors (per-tier γ_wan,
// ω, κ) summarize loss-recovery inflation the analytics cannot supply,
// and that inflation is not size-free: small messages sit in the
// RTO-chaos regime where a single timeout multiplies completion, large
// aggregates push past the congestion-window knee where the explicit
// serialization terms already carry the cost. A factor fitted at one
// probe size therefore drifts when reused far from it (GR4: ranking
// survives, magnitudes drift up to +160%). A FactorCurve carries the
// factor at several fitted probe sizes instead and interpolates between
// them — the paper's "fit where you can measure, extrapolate by model"
// move, applied along the size axis.

// FactorPoint is one fitted point of a FactorCurve: the contention
// factor measured at a per-pair probe message size.
type FactorPoint struct {
	// Bytes is the per-pair message size the factor was fitted at.
	Bytes int
	// Factor is the fitted contention factor (≥ 1 after clamping).
	Factor float64
}

// FactorCurve is a size-indexed contention factor: fitted
// (size, factor) points ascending in Bytes. Lookups interpolate
// linearly in log-size between points (contention regimes — RTO chaos,
// slow-start, window cap — shift with the order of magnitude of the
// message, not its absolute byte count) and extrapolate with the
// terminal values beyond either end. A curve holding exactly one point
// is scalar-compatible: At returns that point's factor for every size,
// reproducing the scalar-factor model bit-identically. The zero value
// (no points) is the identity factor 1.
type FactorCurve struct {
	// Points are the fitted (size, factor) samples, ascending in Bytes
	// with distinct sizes. Construct with ScalarFactor or CurveOf (which
	// sort and deduplicate) unless the invariant is upheld by hand.
	Points []FactorPoint
}

// ScalarFactor returns the scalar-compatible single-point curve: every
// lookup yields f, bit-identical to the pre-curve scalar factor.
func ScalarFactor(f float64) FactorCurve {
	return FactorCurve{Points: []FactorPoint{{Bytes: 0, Factor: f}}}
}

// CurveOf builds a curve from fitted points, sorting by size and
// dropping duplicate sizes (keeping the first occurrence) and
// non-finite factors — fitting noise must never poison lookups with
// NaN/Inf.
func CurveOf(points ...FactorPoint) FactorCurve {
	kept := make([]FactorPoint, 0, len(points))
	for _, p := range points {
		if math.IsNaN(p.Factor) || math.IsInf(p.Factor, 0) {
			continue
		}
		kept = append(kept, p)
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Bytes < kept[j].Bytes })
	out := kept[:0]
	for i, p := range kept {
		if i > 0 && p.Bytes == kept[i-1].Bytes {
			continue
		}
		out = append(out, p)
	}
	return FactorCurve{Points: append([]FactorPoint(nil), out...)}
}

// IsZero reports whether the curve holds no fitted points (the identity
// factor).
func (c FactorCurve) IsZero() bool { return len(c.Points) == 0 }

// At returns the factor at a per-pair message size: the sole point's
// factor for scalar-compatible curves, log-size linear interpolation
// between bracketing points otherwise, and the terminal point's value
// beyond either end. An empty curve is the identity factor 1;
// zero-width segments (equal sizes, possible only on hand-built
// curves) are skipped defensively rather than divided by.
func (c FactorCurve) At(bytes int) float64 {
	f, _, _ := c.Lookup(bytes)
	return f
}

// Lookup returns At(bytes) together with the fitted points the lookup
// read: the bracketing points when interpolating, the terminal (or
// sole) point twice when extrapolating or scalar-compatible, and zero
// points for an empty curve. Tracing uses the neighbors to show which
// calibration measurements a prediction actually leaned on.
func (c FactorCurve) Lookup(bytes int) (f float64, lo, hi FactorPoint) {
	pts := c.Points
	switch len(pts) {
	case 0:
		return 1, FactorPoint{}, FactorPoint{}
	case 1:
		return pts[0].Factor, pts[0], pts[0]
	}
	if bytes <= pts[0].Bytes {
		return pts[0].Factor, pts[0], pts[0]
	}
	for i := 1; i < len(pts); i++ {
		if bytes > pts[i].Bytes {
			continue
		}
		a, b := pts[i-1], pts[i]
		if b.Bytes <= a.Bytes || a.Bytes <= 0 {
			// Zero-width or non-positive-size segment: no log-space
			// interpolation is possible, take the nearer fitted value.
			return b.Factor, a, b
		}
		frac := math.Log(float64(bytes)/float64(a.Bytes)) /
			math.Log(float64(b.Bytes)/float64(a.Bytes))
		return a.Factor + frac*(b.Factor-a.Factor), a, b
	}
	last := pts[len(pts)-1]
	return last.Factor, last, last
}

// Max returns the largest fitted factor (1 for an empty curve) — the
// conservative bound diagnostics report.
func (c FactorCurve) Max() float64 {
	worst := 1.0
	for _, p := range c.Points {
		if p.Factor > worst {
			worst = p.Factor
		}
	}
	return worst
}

// String renders the curve for experiment output: a bare number for
// scalar-compatible curves ("2.41"), size-annotated points otherwise
// ("8k:3.10 64k:2.41 256k:1.75").
func (c FactorCurve) String() string {
	switch len(c.Points) {
	case 0:
		return "1.00"
	case 1:
		return fmt.Sprintf("%.2f", c.Points[0].Factor)
	}
	var b strings.Builder
	for i, p := range c.Points {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%.2f", sizeLabel(p.Bytes), p.Factor)
	}
	return b.String()
}

// sizeLabel renders a byte count compactly (4k, 1M, 300).
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
