package model

import (
	"math"
	"testing"
)

func testWan() WANModel {
	return WANModel{
		Curve: []WANPoint{
			{Bytes: 1 << 10, T: 0.020},
			{Bytes: 64 << 10, T: 0.030},
			{Bytes: 1 << 20, T: 0.180},
		},
		BetaWire: 8e-8,
		Gamma:    3,
	}
}

func TestWANTransferInterpolation(t *testing.T) {
	w := testWan()
	if got := w.Transfer(512); got != 0.020 {
		t.Fatalf("below-curve transfer = %v, want clamp to first point", got)
	}
	mid := w.Transfer((1<<10 + 64<<10) / 2)
	if mid <= 0.020 || mid >= 0.030 {
		t.Fatalf("interpolated transfer %v outside segment", mid)
	}
	// Extrapolation continues with the terminal slope.
	slope := w.BetaSteady()
	want := 0.180 + slope*float64(1<<20)
	if got := w.Transfer(2 << 20); math.Abs(got-want) > 1e-12 {
		t.Fatalf("extrapolated transfer = %v, want %v", got, want)
	}
	if w.Transfer(0) != 0 {
		t.Fatal("zero bytes must cost zero")
	}
}

func TestWANBetaSteadyFloorsAtWire(t *testing.T) {
	w := testWan()
	// Terminal curve slope here is ~1.56e-7 s/B, above the wire gap.
	if got := w.BetaSteady(); got < w.BetaWire {
		t.Fatalf("steady gap %v below wire gap %v", got, w.BetaWire)
	}
	w.BetaWire = 1e-5 // absurdly slow wire dominates
	if got := w.BetaSteady(); got != 1e-5 {
		t.Fatalf("steady gap %v, want wire floor", got)
	}
}

func TestWANTransferShared(t *testing.T) {
	w := testWan()
	one := w.TransferShared(1, 64<<10)
	if one != w.Transfer(64<<10) {
		t.Fatalf("single flow shared = %v, want plain transfer %v", one, w.Transfer(64<<10))
	}
	// Many flows: the aggregate wire serialization must take over.
	many := w.TransferShared(64, 64<<10)
	wire := w.Alpha() + 64*float64(64<<10)*w.BetaWire
	if many != wire {
		t.Fatalf("64-flow shared = %v, want wire-limited %v", many, wire)
	}
	if many <= one {
		t.Fatal("sharing must not be free")
	}
}

func gridModelFixture() GridModel {
	sig := Signature{H: Hockney{Alpha: 50e-6, Beta: 8e-9}, Gamma: 10, Delta: 0.04, M: 128 << 10}
	return GridModel{
		Sizes: []int{4, 4},
		LAN:   []Signature{sig, sig},
		Wan:   testWan(),
	}
}

func TestGridModelValidate(t *testing.T) {
	g := gridModelFixture()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g
	bad.Sizes = []int{4}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched sizes must fail validation")
	}
	bad = g
	bad.Sizes = []int{4, 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty cluster must fail validation")
	}
	if err := (GridModel{}).Validate(); err == nil {
		t.Fatal("empty grid must fail validation")
	}
}

func TestGridPredictionsPositiveAndOrdered(t *testing.T) {
	g := gridModelFixture()
	for _, m := range []int{4 << 10, 64 << 10, 512 << 10} {
		flat := g.PredictFlat(m)
		hg := g.PredictHierGather(m)
		hd := g.PredictHierDirect(m)
		if flat <= 0 || hg <= 0 || hd <= 0 {
			t.Fatalf("m=%d: nonpositive predictions flat=%v hg=%v hd=%v", m, flat, hg, hd)
		}
		// The WAN exchange leg is common to both hierarchical variants;
		// they differ only in how the LAN legs combine, so both must
		// exceed the bare exchange time.
		_, xchg, _ := g.relay(m)
		if hg <= xchg || hd <= xchg {
			t.Fatalf("m=%d: hierarchical predictions below their WAN leg", m)
		}
	}
}

func TestGridPredictFlatGammaScaling(t *testing.T) {
	g := gridModelFixture()
	lo := g.PredictFlat(64 << 10)
	g.Wan.Gamma = 30
	hi := g.PredictFlat(64 << 10)
	if hi <= lo {
		t.Fatalf("raising γ_wan must raise the flat prediction (%v -> %v)", lo, hi)
	}
	lan, startup, wan := g.FlatParts(64 << 10)
	want := lan + startup + wan*30
	if math.Abs(hi-want) > 1e-12 {
		t.Fatalf("PredictFlat = %v, want decomposition %v", hi, want)
	}
}

func TestGridSingleClusterDegeneratesToSignature(t *testing.T) {
	sig := Signature{H: Hockney{Alpha: 50e-6, Beta: 8e-9}, Gamma: 2}
	g := GridModel{Sizes: []int{6}, LAN: []Signature{sig}, Wan: testWan()}
	m := 32 << 10
	want := sig.Predict(6, m)
	if got := g.PredictFlat(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("single-cluster flat = %v, want pure signature %v", got, want)
	}
	if got := g.PredictHierGather(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("single-cluster hier-gather = %v, want pure signature %v", got, want)
	}
}
