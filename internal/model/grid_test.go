package model

import (
	"math"
	"testing"
)

func testWan() WANModel {
	return WANModel{
		Curve: []WANPoint{
			{Bytes: 1 << 10, T: 0.020},
			{Bytes: 64 << 10, T: 0.030},
			{Bytes: 1 << 20, T: 0.180},
		},
		BetaWire: 8e-8,
		Gamma:    ScalarFactor(3),
	}
}

func TestWANTransferInterpolation(t *testing.T) {
	w := testWan()
	if got := w.Transfer(512); got != 0.020 {
		t.Fatalf("below-curve transfer = %v, want clamp to first point", got)
	}
	mid := w.Transfer((1<<10 + 64<<10) / 2)
	if mid <= 0.020 || mid >= 0.030 {
		t.Fatalf("interpolated transfer %v outside segment", mid)
	}
	// Extrapolation continues with the terminal slope.
	slope := w.BetaSteady()
	want := 0.180 + slope*float64(1<<20)
	if got := w.Transfer(2 << 20); math.Abs(got-want) > 1e-12 {
		t.Fatalf("extrapolated transfer = %v, want %v", got, want)
	}
	if w.Transfer(0) != 0 {
		t.Fatal("zero bytes must cost zero")
	}
}

func TestWANBetaSteadyFloorsAtWire(t *testing.T) {
	w := testWan()
	// Terminal curve slope here is ~1.56e-7 s/B, above the wire gap.
	if got := w.BetaSteady(); got < w.BetaWire {
		t.Fatalf("steady gap %v below wire gap %v", got, w.BetaWire)
	}
	w.BetaWire = 1e-5 // absurdly slow wire dominates
	if got := w.BetaSteady(); got != 1e-5 {
		t.Fatalf("steady gap %v, want wire floor", got)
	}
}

func TestWANTransferShared(t *testing.T) {
	w := testWan()
	one := w.TransferShared(1, 64<<10)
	if one != w.Transfer(64<<10) {
		t.Fatalf("single flow shared = %v, want plain transfer %v", one, w.Transfer(64<<10))
	}
	// Many flows: the aggregate wire serialization must take over.
	many := w.TransferShared(64, 64<<10)
	wire := w.Alpha() + 64*float64(64<<10)*w.BetaWire
	if many != wire {
		t.Fatalf("64-flow shared = %v, want wire-limited %v", many, wire)
	}
	if many <= one {
		t.Fatal("sharing must not be free")
	}
}

func testSig() Signature {
	return Signature{H: Hockney{Alpha: 50e-6, Beta: 8e-9}, Gamma: 10, Delta: 0.04, M: 128 << 10}
}

func gridModelFixture() GridModel {
	sig := testSig()
	return TwoLevel([]int{4, 4}, []Signature{sig, sig}, testWan())
}

// threeLevelFixture: 2 nations × 2 campuses of 4 nodes, a fast campus
// tier under the slow continental tier of testWan.
func threeLevelFixture() GridModel {
	sig := testSig()
	campus := WANModel{
		Curve: []WANPoint{
			{Bytes: 1 << 10, T: 0.005},
			{Bytes: 64 << 10, T: 0.008},
			{Bytes: 1 << 20, T: 0.050},
		},
		BetaWire: 4e-8,
		Gamma:    ScalarFactor(2),
	}
	nation := func() *ModelNode {
		return GroupNode(campus, LeafNode(4, sig), LeafNode(4, sig))
	}
	return GridModel{Root: GroupNode(testWan(), nation(), nation())}
}

func TestGridModelValidate(t *testing.T) {
	g := gridModelFixture()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := threeLevelFixture().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TwoLevel([]int{4, 0}, []Signature{testSig(), testSig()}, testWan())
	if err := bad.Validate(); err == nil {
		t.Fatal("empty cluster must fail validation")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("TwoLevel with mismatched sizes/signatures must panic")
			}
		}()
		TwoLevel([]int{4, 4}, []Signature{testSig()}, testWan())
	}()
	if err := (GridModel{}).Validate(); err == nil {
		t.Fatal("empty grid must fail validation")
	}
	mixed := gridModelFixture()
	mixed.Root.Children[0].Size = 3 // group node with Size set
	mixed.Root.Children[0].Children = []*ModelNode{LeafNode(3, testSig())}
	if err := mixed.Validate(); err == nil {
		t.Fatal("node that is both leaf and group must fail validation")
	}
}

func TestGridPredictionsPositiveAndOrdered(t *testing.T) {
	for name, g := range map[string]GridModel{"2lvl": gridModelFixture(), "3lvl": threeLevelFixture()} {
		for _, m := range []int{4 << 10, 64 << 10, 512 << 10} {
			flat := g.PredictFlat(m)
			hg := g.PredictHierGather(m)
			hd := g.PredictHierDirect(m)
			if flat <= 0 || hg <= 0 || hd <= 0 {
				t.Fatalf("%s m=%d: nonpositive predictions flat=%v hg=%v hd=%v", name, m, flat, hg, hd)
			}
			// The WAN exchange legs are common to both hierarchical
			// variants; they differ only in how the LAN legs combine, so
			// both must exceed the bare exchange time.
			xchg, _ := g.tierLegs(m)
			if hg <= xchg || hd <= xchg {
				t.Fatalf("%s m=%d: hierarchical predictions below their WAN legs", name, m)
			}
		}
	}
}

func TestGridPredictFlatGammaScaling(t *testing.T) {
	g := gridModelFixture()
	lo := g.PredictFlat(64 << 10)
	g.Root.Wan.Gamma = ScalarFactor(30)
	hi := g.PredictFlat(64 << 10)
	if hi <= lo {
		t.Fatalf("raising γ_wan must raise the flat prediction (%v -> %v)", lo, hi)
	}
	lan, startup, wan := g.FlatParts(64 << 10)
	want := lan + startup + wan*30
	if math.Abs(hi-want) > 1e-12 {
		t.Fatalf("PredictFlat = %v, want decomposition %v", hi, want)
	}
}

// TestGridDeeperTierRaisesPrediction: adding a continental tier above a
// two-level grid must never make any strategy cheaper — the extra tier
// adds start-ups and serialization.
func TestGridDeeperTierRaisesPrediction(t *testing.T) {
	g3 := threeLevelFixture()
	// A two-level model of just one nation of the 3-level fixture.
	nation := GridModel{Root: g3.Root.Children[0]}
	for _, m := range []int{16 << 10, 64 << 10} {
		if g3.PredictFlat(m) <= nation.PredictFlat(m) {
			t.Fatalf("m=%d: 3-level flat not above its single-nation sub-grid", m)
		}
		if g3.PredictHierGather(m) <= nation.PredictHierGather(m) {
			t.Fatalf("m=%d: 3-level hier-gather not above its single-nation sub-grid", m)
		}
	}
}

// TestGridTwoLevelMatchesClosedForm pins the depth-2 reduction: through
// the recursive tree code path, a two-level grid must reproduce the
// pre-refactor closed-form model (PR 1) exactly — worst-cluster LAN term
// plus per-round WAN start-ups plus the shared-uplink transfer term, and
// the three-phase relay for the hierarchical variants.
func TestGridTwoLevelMatchesClosedForm(t *testing.T) {
	sig := testSig()
	sizes := []int{4, 6}
	wan := testWan()
	g := TwoLevel(sizes, []Signature{sig, sig}, wan)
	g.Root.Wan.Gamma = ScalarFactor(3)
	g.OverlapGamma = ScalarFactor(2.5)
	g.GatherGamma = ScalarFactor(1.5)
	n := 10
	for _, m := range []int{8 << 10, 64 << 10, 512 << 10} {
		// Flat: PR 1's FlatParts loop.
		worst, lan, startup, wanT := -1.0, 0.0, 0.0, 0.0
		for _, s := range sizes {
			remote := n - s
			clan := sig.Predict(s, m)
			cstart := float64(remote) * wan.Alpha()
			cwan := wan.TransferShared(s*remote, m) - wan.Alpha()
			if t := clan + cstart + cwan; t > worst {
				worst, lan, startup, wanT = t, clan, cstart, cwan
			}
		}
		wantFlat := lan + startup + wanT*3
		if got := g.PredictFlat(m); math.Abs(got-wantFlat) > 1e-12 {
			t.Fatalf("m=%d: flat = %v, want closed form %v", m, got, wantFlat)
		}

		// Relay legs: PR 1's gather/exchange/scatter.
		var gather, xchg float64
		for _, s := range sizes {
			remote := n - s
			if s > 1 {
				lt := float64(s-1) * (sig.H.Alpha + float64(remote*m)*sig.H.Beta)
				if lt > gather {
					gather = lt
				}
			}
			maxPer, total := 0, 0
			for _, d := range sizes {
				if d != s { // sizes are distinct here
					b := s * d * m
					total += b
					if b > maxPer {
						maxPer = b
					}
				}
			}
			perFlow := wan.Transfer(maxPer)
			wire := wan.Alpha() + float64(total)*wan.BetaWire
			xt := perFlow
			if wire > xt {
				xt = wire
			}
			if xt > xchg {
				xchg = xt
			}
		}
		intra := 0.0
		for _, s := range sizes {
			if it := sig.Predict(s, m); it > intra {
				intra = it
			}
		}
		wantHG := intra + xchg + 2*gather*1.5
		if got := g.PredictHierGather(m); math.Abs(got-wantHG) > 1e-12 {
			t.Fatalf("m=%d: hier-gather = %v, want closed form %v", m, got, wantHG)
		}

		phase0 := 0.0
		for _, s := range sizes {
			inflated := (n - 1) * m / (s - 1)
			if pt := sig.Predict(s, inflated); pt > phase0 {
				phase0 = pt
			}
		}
		wantHD := phase0 + xchg*2.5 + gather
		if got := g.PredictHierDirect(m); math.Abs(got-wantHD) > 1e-12 {
			t.Fatalf("m=%d: hier-direct = %v, want closed form %v", m, got, wantHD)
		}
	}
}

func TestGridSingleClusterDegeneratesToSignature(t *testing.T) {
	sig := Signature{H: Hockney{Alpha: 50e-6, Beta: 8e-9}, Gamma: 2}
	g := GridModel{Root: LeafNode(6, sig)}
	m := 32 << 10
	want := sig.Predict(6, m)
	if got := g.PredictFlat(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("single-cluster flat = %v, want pure signature %v", got, want)
	}
	if got := g.PredictHierGather(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("single-cluster hier-gather = %v, want pure signature %v", got, want)
	}
}

// TestGridCoordSplitLowersGatherLeg: splitting a leaf's relay across C
// coordinators divides the per-member incast volume by C — the κ-priced
// local leg shrinks by exactly the modeled share, and the prediction
// with defaults (NumCoords 0 or 1, CoordBeta 0) is untouched.
func TestGridCoordSplitLowersGatherLeg(t *testing.T) {
	m := 64 << 10
	base := gridModelFixture()
	_, _, local1 := base.HierGatherParts(m)

	split := gridModelFixture()
	for _, lf := range split.Leaves() {
		lf.NumCoords = 2
	}
	_, _, local2 := split.HierGatherParts(m)

	sig := testSig()
	s, n := 4, 8
	want1 := 2 * float64(s-1) * (sig.H.Alpha + float64((n-s)*m)*sig.H.Beta)
	want2 := 2 * float64(s-1) * (sig.H.Alpha + float64((n-s)*m)*sig.H.Beta/2)
	if math.Abs(local1-want1) > 1e-12 {
		t.Fatalf("default local leg = %v, want closed form %v", local1, want1)
	}
	if math.Abs(local2-want2) > 1e-12 {
		t.Fatalf("2-way split local leg = %v, want closed form %v", local2, want2)
	}
	if split.PredictHierGather(m) >= base.PredictHierGather(m) {
		t.Fatal("2-way coordinator split must lower the hier-gather prediction")
	}

	// NumCoords == 1 is the explicit default, and the split clamps to
	// the leaf size.
	one := gridModelFixture()
	for _, lf := range one.Leaves() {
		lf.NumCoords = 1
	}
	if one.PredictHierGather(m) != base.PredictHierGather(m) {
		t.Fatal("NumCoords=1 must equal the default prediction")
	}
	over := gridModelFixture()
	for _, lf := range over.Leaves() {
		lf.NumCoords = 99
	}
	clamped := gridModelFixture()
	for _, lf := range clamped.Leaves() {
		lf.NumCoords = 4 // leaf size
	}
	if over.PredictHierGather(m) != clamped.PredictHierGather(m) {
		t.Fatal("NumCoords beyond the leaf size must clamp to it")
	}
}

// TestGridCoordBetaHeadroomAsymmetry: measured coordinator headroom
// replaces the nominal LAN gap in the local legs and floors the tier
// exchange by coordinator-port serialization — a degraded coordinator
// NIC raises both hierarchical predictions, and a C-way split wins part
// of it back.
func TestGridCoordBetaHeadroomAsymmetry(t *testing.T) {
	m := 64 << 10
	base := gridModelFixture()
	_, xchgBase, _ := base.HierGatherParts(m)

	slow := gridModelFixture()
	slowBeta := 100 * testSig().H.Beta // a NIC two orders slower
	for _, lf := range slow.Leaves() {
		lf.CoordBeta = slowBeta
	}
	_, xchgSlow, localSlow := slow.HierGatherParts(m)
	if xchgSlow <= xchgBase {
		t.Fatalf("slow coordinator NIC must floor the exchange leg (%v -> %v)", xchgBase, xchgSlow)
	}
	// The floor is exactly α + total·CoordBeta for the worst child
	// (both children symmetric here: 4·4·m outbound bytes).
	wantFloor := testWan().Alpha() + float64(4*4*m)*slowBeta
	if math.Abs(xchgSlow-wantFloor) > 1e-12 {
		t.Fatalf("exchange floor = %v, want port serialization %v", xchgSlow, wantFloor)
	}
	if slow.PredictHierGather(m) <= base.PredictHierGather(m) {
		t.Fatal("degraded coordinator NIC must raise the hier-gather prediction")
	}
	if slow.PredictHierDirect(m) <= base.PredictHierDirect(m) {
		t.Fatal("degraded coordinator NIC must raise the hier-direct prediction")
	}

	// Splitting across two (equally slow) ports halves both the incast
	// share and the port floor's per-port volume.
	split := gridModelFixture()
	for _, lf := range split.Leaves() {
		lf.CoordBeta = slowBeta
		lf.NumCoords = 2
	}
	_, xchgSplit, localSplit := split.HierGatherParts(m)
	if xchgSplit >= xchgSlow || localSplit >= localSlow {
		t.Fatalf("2-way split must relieve the port bottleneck (xchg %v->%v, local %v->%v)",
			xchgSlow, xchgSplit, localSlow, localSplit)
	}
}
