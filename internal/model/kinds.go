package model

import (
	"fmt"

	"repro/internal/coll"
)

// Per-kind grid predictions. The collective suite (internal/coll,
// PlanKindTree) reuses the hierarchical plan machinery across
// Allgather, Broadcast, Reduce, Reduce-scatter, and Allreduce; this
// file prices each kind's per-tier WAN legs with the same fitted
// ingredients the All-to-All model uses — the per-tier transfer curves,
// the κ incast factor (GatherGamma), the coordinator-port headroom
// floors — changing only the per-leg byte weights to match what the
// compiled plans actually move:
//
//   - Allgather rides the All-to-All plan structure with per-source
//     deduplication: a gather leg forwards m per member, a tier
//     exchange A→B moves |A|·m, a scatter leg fans (n−s)·m back out.
//   - Reduce-scatter is the mirror image (per-destination partials):
//     gather (n−s)·m, exchange A→B moves |B|·m, scatter m.
//   - Broadcast and Reduce relay one m-byte payload per hop of the
//     delegate tree (fan-out down, incast up); Reduce additionally
//     prices the combining arithmetic via CombineBeta, and its leaf
//     incast is κ-charged like the All-to-All gather incast.
//   - Allreduce is Reduce∘Broadcast over the same relay.
//
// All-to-All itself delegates to the original PredictFlat /
// PredictHierGather / PredictHierDirect methods, keeping that path
// bit-identical to the pre-suite model.

// PredictKindFlat prices the flat (topology-oblivious) kernel of a
// kind, as RunKindFlat executes it: ring allgather, binomial broadcast
// and reverse-binomial reduce, recursive doubling or reduce+broadcast
// allreduce, halving or ring reduce-scatter. Every flat round is gated
// by the grid's top tier in the worst case, which is what makes flat
// kernels lose to the hierarchy on deep grids. Alltoallv is size-bound
// and has no uniform-m prediction (use PredictV).
func (g GridModel) PredictKindFlat(kind coll.Kind, m int) float64 {
	n := g.TotalNodes()
	if n <= 1 {
		return 0
	}
	switch kind {
	case coll.KindAlltoall:
		return g.PredictFlat(m)
	case coll.KindAllgather:
		return float64(n-1) * g.hopTransfer(m)
	case coll.KindBroadcast:
		return float64(ceilLog2(n)) * g.hopTransfer(m)
	case coll.KindReduce:
		return float64(ceilLog2(n)) * (g.hopTransfer(m) + g.CombineBeta*float64(m))
	case coll.KindAllreduce:
		if n&(n-1) == 0 {
			// Recursive doubling: log2(n) pairwise exchanges. The
			// rounds whose partner mask crosses a cluster boundary push
			// all n ranks' flows through a WAN tier at once — the same
			// burst-through-one-uplink pattern the fitted κ incast
			// factor measures — so those ceil(log2 #clusters) rounds
			// are priced as n/2 concurrent flows κ-inflated, and only
			// the remaining intra-cluster rounds as single hops.
			rounds := ceilLog2(n)
			wanRounds := ceilLog2(len(g.Leaves()))
			if wanRounds > rounds {
				wanRounds = rounds
			}
			t := float64(rounds) * g.CombineBeta * float64(m)
			if !g.Root.IsLeaf() && wanRounds > 0 {
				t += float64(wanRounds) * g.Root.Wan.TransferShared(n/2, m) * gammaAt(g.GatherGamma, m)
				rounds -= wanRounds
			}
			return t + float64(rounds)*g.hopTransfer(m)
		}
		return g.PredictKindFlat(coll.KindReduce, m) + g.PredictKindFlat(coll.KindBroadcast, m)
	case coll.KindReduceScatter:
		if n&(n-1) == 0 {
			// Pairwise halving: the exchanged volume halves each step.
			t, size := 0.0, m*n/2
			for mask := 1; mask < n; mask <<= 1 {
				if size < 1 {
					size = 1
				}
				t += g.hopTransfer(size) + g.CombineBeta*float64(size)
				size /= 2
			}
			return t
		}
		return float64(n-1) * (g.hopTransfer(m) + g.CombineBeta*float64(m))
	}
	panic(fmt.Sprintf("model: no flat prediction for %v", kind))
}

// PredictKindHier prices the hierarchical plan PlanKindTree compiles
// for a kind: the weighted All-to-All structure for Allgather and
// Reduce-scatter, the delegate relay for the rooted kinds, and the
// original sequential hierarchical prediction for All-to-All itself.
// The rooted kinds' plans are structurally identical under both
// hierarchical algorithm variants, so one hierarchical prediction
// covers them.
func (g GridModel) PredictKindHier(kind coll.Kind, m int) float64 {
	if g.TotalNodes() <= 1 {
		return 0
	}
	switch kind {
	case coll.KindAlltoall:
		return g.PredictHierGather(m)
	case coll.KindAllgather, coll.KindReduceScatter:
		return g.predictWeightedHier(kind, m)
	case coll.KindBroadcast:
		wan, local, _ := g.relayLegs(m)
		return wan + local
	case coll.KindReduce:
		wan, local, compute := g.relayLegs(m)
		if g.Obs != nil {
			g.emitLookup("kappa", -1, g.GatherGamma, m)
		}
		return wan + local*gammaAt(g.GatherGamma, m) + compute
	case coll.KindAllreduce:
		return g.PredictKindHier(coll.KindReduce, m) + g.PredictKindHier(coll.KindBroadcast, m)
	}
	panic(fmt.Sprintf("model: no hierarchical prediction for %v", kind))
}

// hopTransfer prices one worst-case hop of a flat kernel's round: the
// top tier's end-to-end curve (which subsumes the tiers it transits),
// or the LAN point-to-point time on a degenerate single-cluster grid.
func (g GridModel) hopTransfer(m int) float64 {
	if g.Root.IsLeaf() {
		h := g.Root.LAN.H
		return h.Alpha + float64(m)*h.Beta
	}
	return g.Root.Wan.Transfer(m)
}

// ceilLog2 returns ceil(log2 n) for n ≥ 1: the round count of the
// binomial-tree kernels.
func ceilLog2(n int) int {
	r := 0
	for p := 1; p < n; p <<= 1 {
		r++
	}
	return r
}

// predictWeightedHier prices the weighted All-to-All plan structure the
// deduplicating kinds compile: intra-leaf exchange, per-tier exchange
// and incast legs with kind-specific byte weights, and κ-charged local
// gather/scatter legs at the leaf coordinators.
func (g GridModel) predictWeightedHier(kind coll.Kind, m int) float64 {
	xchg, scatter := g.kindTierLegs(kind, m)
	up, down := g.kindLeafLocal(kind, m)
	if g.Obs != nil {
		g.emitLookup("kappa", -1, g.GatherGamma, m)
	}
	return g.intra(m) + xchg + scatter + (up+down)*gammaAt(g.GatherGamma, m)
}

// kindExchangeAt is exchangeAt with kind-weighted sibling-pair volumes:
// an Allgather message A→B deduplicates to one copy per source (|A|·m),
// a Reduce-scatter message to one partial per destination (|B|·m). The
// per-flow curve limit, aggregate wire floor, and coordinator-port
// headroom floor mirror the All-to-All leg.
func (g GridModel) kindExchangeAt(v *ModelNode, kind coll.Kind, m int) float64 {
	worst := 0.0
	for _, c := range v.Children {
		maxPer, total := 0, 0
		for _, d := range v.Children {
			if d == c {
				continue
			}
			var b int
			switch kind {
			case coll.KindAllgather:
				b = c.TotalNodes() * m
			case coll.KindReduceScatter:
				b = d.TotalNodes() * m
			}
			total += b
			if b > maxPer {
				maxPer = b
			}
		}
		if total == 0 {
			continue
		}
		t := v.Wan.Transfer(maxPer)
		if wire := v.Wan.Alpha() + float64(total)*v.Wan.BetaWire; wire > t {
			t = wire
		}
		if c.IsLeaf() && c.CoordBeta > 0 {
			if port := v.Wan.Alpha() + float64(total)/float64(c.coordSplit())*c.CoordBeta; port > t {
				t = port
			}
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// kindCollectAt prices one tier's incast (or symmetric fan-out) with a
// caller-supplied per-child volume: every child except the
// coordinator's own moves bytesOf(child) across tier v's links.
func (g GridModel) kindCollectAt(v *ModelNode, bytesOf func(c *ModelNode) int) float64 {
	if len(v.Children) < 2 {
		return 0
	}
	maxPer, total := 0, 0
	for i, c := range v.Children {
		if i == 0 {
			continue // the first child hosts the tier coordinator
		}
		b := bytesOf(c)
		total += b
		if b > maxPer {
			maxPer = b
		}
	}
	if total == 0 {
		return 0
	}
	perFlow := v.Wan.Transfer(maxPer)
	wire := v.Wan.Alpha() + float64(total)*v.Wan.BetaWire
	if wire > perFlow {
		return wire
	}
	return perFlow
}

// kindTierLegs sums the weighted relay's WAN legs like tierLegs does
// for All-to-All: per height the worst group's exchange plus upward
// incast, per depth the worst group's downward leg. Upward an Allgather
// subtree forwards its own blocks once (|subtree|·m) while a
// Reduce-scatter subtree forwards one partial per outside destination;
// downward the weights swap. Explicitly-chosen inner-tier coordinators
// (InnerCoordSet) κ-charge the incast legs they terminate.
func (g GridModel) kindTierLegs(kind coll.Kind, m int) (xchg, scatter float64) {
	n := g.TotalNodes()
	byHeight := map[int]float64{}
	byDepth := map[int]float64{}
	var walk func(v *ModelNode, depth int)
	walk = func(v *ModelNode, depth int) {
		if v.IsLeaf() {
			return
		}
		for _, c := range v.Children {
			walk(c, depth+1)
		}
		out := n - v.TotalNodes()
		up, down := 0.0, 0.0
		if out > 0 {
			switch kind {
			case coll.KindAllgather:
				up = g.kindCollectAt(v, func(c *ModelNode) int { return c.TotalNodes() * m })
				down = g.kindCollectAt(v, func(c *ModelNode) int { return (n - c.TotalNodes()) * m })
			case coll.KindReduceScatter:
				up = g.kindCollectAt(v, func(c *ModelNode) int { return out * m })
				down = g.kindCollectAt(v, func(c *ModelNode) int { return c.TotalNodes() * m })
			}
		}
		kfac := 1.0
		if v.InnerCoordSet {
			kfac = gammaAt(g.GatherGamma, m)
		}
		if t := g.kindExchangeAt(v, kind, m) + up*kfac; t > byHeight[v.Height()] {
			byHeight[v.Height()] = t
		}
		if depth > 0 && down*kfac > byDepth[depth] {
			byDepth[depth] = down * kfac
		}
	}
	walk(g.Root, 0)
	for _, t := range byHeight {
		xchg += t
	}
	for _, t := range byDepth {
		scatter += t
	}
	return xchg, scatter
}

// kindLeafLocal returns the worst leaf's local gather and scatter legs
// under kind weighting: Allgather members forward m each and receive
// (n−s)·m back; Reduce-scatter mirrors. Measured coordinator headroom
// and the C-way coordinator split apply as in leafLocal.
func (g GridModel) kindLeafLocal(kind coll.Kind, m int) (gather, scatter float64) {
	n := g.TotalNodes()
	for _, lf := range g.Leaves() {
		s := lf.Size
		if s <= 1 || n == s {
			continue
		}
		h := lf.LAN.H
		beta := h.Beta
		if lf.CoordBeta > 0 {
			beta = lf.CoordBeta
		}
		c := float64(lf.coordSplit())
		var up, down int
		switch kind {
		case coll.KindAllgather:
			up, down = m, (n-s)*m
		case coll.KindReduceScatter:
			up, down = (n-s)*m, m
		}
		if t := float64(s-1) * (h.Alpha + float64(up)*beta/c); t > gather {
			gather = t
		}
		if t := float64(s-1) * (h.Alpha + float64(down)*beta/c); t > scatter {
			scatter = t
		}
	}
	return gather, scatter
}

// relayLegs prices the rooted delegate relay (planRooted): per group
// tier, one m-byte message per non-colocated child delegate through the
// tier's uplink (tiers at one height run concurrently, heights
// sequentially); at the leaves, the worst (s−1)-member local leg
// through the coordinator port. compute accumulates the combining
// arithmetic a reduction pays along the same critical path: each relay
// node combines one m-byte contribution per input, priced at
// CombineBeta seconds per byte (zero — free combining, as the simulator
// also assumes — by default).
func (g GridModel) relayLegs(m int) (wan, local, compute float64) {
	byHeight := map[int]float64{}
	localCompute := 0.0
	var walk func(v *ModelNode)
	walk = func(v *ModelNode) {
		if v.IsLeaf() {
			if s := v.Size; s > 1 {
				h := v.LAN.H
				beta := h.Beta
				if v.CoordBeta > 0 {
					beta = v.CoordBeta
				}
				t := float64(s-1) * (h.Alpha + float64(m)*beta/float64(v.coordSplit()))
				if t > local {
					local = t
					localCompute = g.CombineBeta * float64((s-1)*m)
				}
			}
			return
		}
		if k := len(v.Children) - 1; k > 0 {
			t := v.Wan.TransferShared(k, m)
			if t > byHeight[v.Height()] {
				byHeight[v.Height()] = t
			}
			if c := g.CombineBeta * float64(k*m); c > compute {
				compute = c
			}
		}
		for _, c := range v.Children {
			walk(c)
		}
	}
	walk(g.Root)
	for _, t := range byHeight {
		wan += t
	}
	return wan, local, compute + localCompute
}
