// Package calib acquires model parameters from the simulated clusters
// the same way the paper acquires them from real ones:
//
//   - PingPong measures the contention-free Hockney parameters (α, β)
//     with a two-node ping-pong, "a simple point-to-point measure".
//   - SaturationProbe reproduces the Fig. 1 methodology: many
//     simultaneous point-to-point connections flood the network; the
//     per-connection completion times yield the average bandwidth curve
//     (Fig. 2), the straggler scatter (Fig. 3), and the βF/βC pair used
//     by the Section 6 two-beta model.
package calib

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/stats"
)

const probeTag int32 = 7000

// PingPongConfig tunes the Hockney calibration.
type PingPongConfig struct {
	Reps       int   // ping-pongs per size (default 10)
	SmallSizes []int // sizes used for α (default 1, 64, 256, 1024)
	LargeSizes []int // sizes used for β (default 128k..1M)
}

func (c PingPongConfig) withDefaults() PingPongConfig {
	if c.Reps == 0 {
		c.Reps = 10
	}
	if len(c.SmallSizes) == 0 {
		c.SmallSizes = []int{1, 64, 256, 1024}
	}
	if len(c.LargeSizes) == 0 {
		c.LargeSizes = []int{128 << 10, 256 << 10, 512 << 10, 1 << 20}
	}
	return c
}

// PingPong measures Hockney α and β on a two-node instance of the
// profile: β is the OLS slope over the large-message one-way times, α
// the mean small-message residual after removing the β·m term.
func PingPong(p cluster.Profile, mcfg mpi.Config, seed int64, cfg PingPongConfig) model.Hockney {
	cfg = cfg.withDefaults()
	cl := cluster.Build(p, 2, seed)
	w := mpi.NewWorld(cl, mcfg)

	allSizes := append(append([]int{}, cfg.SmallSizes...), cfg.LargeSizes...)
	oneWay := make(map[int][]float64, len(allSizes))

	w.Run(func(r *mpi.Rank) {
		for _, m := range allSizes {
			for rep := 0; rep < cfg.Reps; rep++ {
				r.Barrier()
				if r.ID() == 0 {
					t0 := r.Now()
					r.Send(1, probeTag, m)
					r.Recv(1, probeTag)
					rtt := r.Now() - t0
					oneWay[m] = append(oneWay[m], rtt.Seconds()/2)
				} else {
					r.Recv(0, probeTag)
					r.Send(0, probeTag, m)
				}
			}
		}
	})

	// β from the large-message slope.
	var xs, ys []float64
	for _, m := range cfg.LargeSizes {
		xs = append(xs, float64(m))
		ys = append(ys, stats.Mean(oneWay[m]))
	}
	_, beta, err := stats.LinFit(xs, ys)
	if err != nil || beta <= 0 {
		// Degenerate sweep: fall back to a single-point bandwidth read.
		m := cfg.LargeSizes[len(cfg.LargeSizes)-1]
		beta = stats.Mean(oneWay[m]) / float64(m)
	}
	// α from small-message residuals.
	var alphas []float64
	for _, m := range cfg.SmallSizes {
		a := stats.Mean(oneWay[m]) - beta*float64(m)
		if a > 0 {
			alphas = append(alphas, a)
		}
	}
	alpha := stats.Mean(alphas)
	if alpha <= 0 {
		alpha = stats.Mean(oneWay[cfg.SmallSizes[0]])
	}
	return model.Hockney{Alpha: alpha, Beta: beta}
}

// ProbeResult holds one saturation-probe run: Conns simultaneous
// transfers of Size bytes, with the per-connection completion times.
type ProbeResult struct {
	Conns int
	Size  int
	Times []float64 // seconds, one per connection
}

// MeanTime returns the average per-connection completion time (s).
func (r ProbeResult) MeanTime() float64 { return stats.Mean(r.Times) }

// MaxTime returns the straggler (slowest connection) time (s).
func (r ProbeResult) MaxTime() float64 { return stats.Max(r.Times) }

// AvgBandwidth returns the mean of per-connection bandwidths (bytes/s),
// the quantity plotted in Fig. 2.
func (r ProbeResult) AvgBandwidth() float64 {
	if len(r.Times) == 0 {
		return 0
	}
	var s float64
	for _, t := range r.Times {
		if t > 0 {
			s += float64(r.Size) / t
		}
	}
	return s / float64(len(r.Times))
}

// GapPerByte converts a completion time to a Hockney-style gap (s/B).
func (r ProbeResult) GapPerByte(t float64) float64 { return t / float64(r.Size) }

// SaturationProbe opens conns point-to-point connections between random
// host pairs (reusing hosts, as happens when flooding a cluster) and
// transfers size bytes on each, all starting together. The per-
// connection times are measured at the receivers.
func SaturationProbe(p cluster.Profile, mcfg mpi.Config, nodes, conns, size int, seed int64) ProbeResult {
	cl := cluster.Build(p, nodes, seed)
	w := mpi.NewWorld(cl, mcfg)

	rng := rand.New(rand.NewSource(seed ^ 0x5eedca11))
	type pair struct{ src, dst int }
	pairs := make([]pair, conns)
	for k := range pairs {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		pairs[k] = pair{src, dst}
	}

	times := make([]float64, conns)
	w.Run(func(r *mpi.Rank) {
		// Post receives for the pairs targeting this rank.
		var recvQs []*mpi.Request
		var recvIdx []int
		for k, pr := range pairs {
			if pr.dst == r.ID() {
				recvQs = append(recvQs, r.Irecv(pr.src, probeTag+int32(k)))
				recvIdx = append(recvIdx, k)
			}
		}
		r.Barrier()
		start := r.Now()
		var sendQs []*mpi.Request
		for k, pr := range pairs {
			if pr.src == r.ID() {
				sendQs = append(sendQs, r.Isend(pr.dst, probeTag+int32(k), size))
			}
		}
		r.WaitAll(recvQs...)
		r.WaitAll(sendQs...)
		for i, q := range recvQs {
			times[recvIdx[i]] = (q.CompletedAt() - start).Seconds()
		}
	})
	return ProbeResult{Conns: conns, Size: size, Times: times}
}

// ExtractBetas derives the Section 6 parameters from a lightly loaded
// probe (βF, the contention-free gap) and a saturated probe (βC, read
// from the straggler tail — the p95 connection — because the contended
// gap the paper measures is the cost of the delayed connections).
func ExtractBetas(single, saturated ProbeResult) (betaF, betaC float64) {
	betaF = single.GapPerByte(stats.Min(single.Times))
	betaC = saturated.GapPerByte(stats.Quantile(saturated.Times, 0.95))
	return betaF, betaC
}

// TwoBetaModel assembles the Section 6 model from probe results with the
// paper's ρ = 0.5.
func TwoBetaModel(h model.Hockney, single, saturated ProbeResult) model.TwoBeta {
	bf, bc := ExtractBetas(single, saturated)
	return model.TwoBeta{Alpha: h.Alpha, BetaF: bf, BetaC: bc, Rho: 0.5}
}
