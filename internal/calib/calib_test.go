package calib

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/mpi"
)

func TestPingPongGigabitEthernet(t *testing.T) {
	h := PingPong(cluster.GigabitEthernet(), mpi.Config{}, 1, PingPongConfig{Reps: 3})
	// α must be on the tens-of-microseconds scale for switched GigE
	// (2 hops × 20 µs propagation + software overheads).
	if h.Alpha < 10e-6 || h.Alpha > 500e-6 {
		t.Fatalf("GigE α = %v s, want O(10µs..500µs)", h.Alpha)
	}
	// β must correspond to a bandwidth slightly below the 125 MB/s line
	// rate (header overhead) but above 80 MB/s.
	bw := 1 / h.Beta
	if bw < 80e6 || bw > 125e6 {
		t.Fatalf("GigE effective bandwidth = %.1f MB/s, want 80-125", bw/1e6)
	}
}

func TestPingPongOrdersNetworksCorrectly(t *testing.T) {
	fe := PingPong(cluster.FastEthernet(), mpi.Config{}, 1, PingPongConfig{Reps: 2})
	ge := PingPong(cluster.GigabitEthernet(), mpi.Config{}, 1, PingPongConfig{Reps: 2})
	my := PingPong(cluster.Myrinet(), mpi.Config{}, 1, PingPongConfig{Reps: 2})
	if !(fe.Beta > ge.Beta && ge.Beta > my.Beta) {
		t.Fatalf("β ordering wrong: FE=%v GigE=%v Myrinet=%v", fe.Beta, ge.Beta, my.Beta)
	}
	if !(my.Alpha < ge.Alpha) {
		t.Fatalf("Myrinet α (%v) should beat GigE (%v)", my.Alpha, ge.Alpha)
	}
}

func TestPingPongDeterministic(t *testing.T) {
	a := PingPong(cluster.Myrinet(), mpi.Config{}, 9, PingPongConfig{Reps: 2})
	b := PingPong(cluster.Myrinet(), mpi.Config{}, 9, PingPongConfig{Reps: 2})
	if a != b {
		t.Fatalf("nondeterministic calibration: %+v vs %+v", a, b)
	}
}

func TestSaturationProbeSingleConnection(t *testing.T) {
	r := SaturationProbe(cluster.GigabitEthernet(), mpi.Config{}, 8, 1, 2<<20, 3)
	if len(r.Times) != 1 || r.Times[0] <= 0 {
		t.Fatalf("bad probe result: %+v", r)
	}
	// One connection must reach most of the line rate.
	if bw := r.AvgBandwidth(); bw < 80e6 {
		t.Fatalf("single-connection bandwidth %.1f MB/s too low", bw/1e6)
	}
}

func TestSaturationProbeBandwidthDropsWithLoad(t *testing.T) {
	// The Fig. 2 shape: average per-connection bandwidth collapses as
	// connection count grows.
	light := SaturationProbe(cluster.GigabitEthernet(), mpi.Config{}, 16, 2, 2<<20, 4)
	heavy := SaturationProbe(cluster.GigabitEthernet(), mpi.Config{}, 16, 40, 2<<20, 4)
	if heavy.AvgBandwidth() >= light.AvgBandwidth() {
		t.Fatalf("no saturation: light %.1f MB/s, heavy %.1f MB/s",
			light.AvgBandwidth()/1e6, heavy.AvgBandwidth()/1e6)
	}
	if heavy.AvgBandwidth() > light.AvgBandwidth()/2 {
		t.Fatalf("saturation too mild: light %.1f MB/s, heavy %.1f MB/s",
			light.AvgBandwidth()/1e6, heavy.AvgBandwidth()/1e6)
	}
}

func TestSaturationProbeStragglers(t *testing.T) {
	// The Fig. 3 shape: under heavy load some connections take
	// noticeably longer than the average (TCP loss recovery). Our
	// simulated tail is milder than the paper's up-to-6x outliers —
	// documented in EXPERIMENTS.md — but must be clearly present.
	heavy := SaturationProbe(cluster.GigabitEthernet(), mpi.Config{}, 16, 40, 8<<20, 5)
	if heavy.MaxTime() < 1.35*heavy.MeanTime() {
		t.Fatalf("no straggler tail: max %.3fs vs mean %.3fs", heavy.MaxTime(), heavy.MeanTime())
	}
}

func TestExtractBetasOrdering(t *testing.T) {
	single := SaturationProbe(cluster.GigabitEthernet(), mpi.Config{}, 16, 1, 2<<20, 6)
	heavy := SaturationProbe(cluster.GigabitEthernet(), mpi.Config{}, 16, 40, 2<<20, 6)
	bf, bc := ExtractBetas(single, heavy)
	if bf <= 0 || bc <= bf {
		t.Fatalf("β ordering wrong: βF=%v βC=%v", bf, bc)
	}
	tb := TwoBetaModel(model.Hockney{Alpha: 50e-6, Beta: 8.5e-9}, single, heavy)
	if tb.Rho != 0.5 {
		t.Fatalf("ρ = %v, want paper's 0.5", tb.Rho)
	}
	if sb := tb.SyntheticBeta(); sb <= bf || sb >= bc {
		t.Fatalf("synthetic β %v not between βF %v and βC %v", sb, bf, bc)
	}
}
