package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestSpanNesting pins the parent/child ids recorded by nested spans
// and the span attribution of inner events.
func TestSpanNesting(t *testing.T) {
	c := New()
	c.SetClock(fakeClock())

	root := c.Span("root", Str("k", "v"))
	child := root.Span("child")
	child.Event("inner", Int("i", 1))
	child.End()
	sib := root.Span("sibling")
	sib.End(F64("total", 2.5))
	root.End()
	c.Event("top")

	evs := c.Events()
	want := []struct {
		typ, name    string
		span, parent int64
	}{
		{"span.start", "root", 1, 0},
		{"span.start", "child", 2, 1},
		{"event", "inner", 2, 0},
		{"span.end", "child", 2, 0},
		{"span.start", "sibling", 3, 1},
		{"span.end", "sibling", 3, 0},
		{"span.end", "root", 1, 0},
		{"event", "top", 0, 0},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i, w := range want {
		ev := evs[i]
		if ev.Type != w.typ || ev.Name != w.name || ev.Span != w.span || ev.Parent != w.parent {
			t.Errorf("event %d = {%s %s span=%d parent=%d}, want {%s %s span=%d parent=%d}",
				i, ev.Type, ev.Name, ev.Span, ev.Parent, w.typ, w.name, w.span, w.parent)
		}
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	// Fake clock steps once per read: root saw more ticks than child.
	if evs[3].DurNS <= 0 || evs[6].DurNS <= evs[3].DurNS {
		t.Errorf("durations not monotone with nesting: child=%d root=%d", evs[3].DurNS, evs[6].DurNS)
	}
}

// TestSpanEndIdempotent verifies double-End records one span.end.
func TestSpanEndIdempotent(t *testing.T) {
	c := New()
	sp := c.Span("s")
	sp.End()
	sp.End()
	n := 0
	for _, ev := range c.Events() {
		if ev.Type == "span.end" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("got %d span.end events, want 1", n)
	}
}

// TestCounterAtomicity hammers one counter from many goroutines; run
// under -race this doubles as the data-race check for the hot path.
func TestCounterAtomicity(t *testing.T) {
	c := New()
	ct := c.Counter("hits")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ct.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := ct.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if same := c.Counter("hits"); same != ct {
		t.Fatalf("Counter did not intern the handle")
	}
}

// TestDisabledZeroAlloc proves the disabled fast path — nil collector,
// nil span, nil counter — performs zero heap allocations, which is what
// lets the packet hot path and prediction loops stay instrumented
// unconditionally.
func TestDisabledZeroAlloc(t *testing.T) {
	var c *Collector
	var ct *Counter
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c.Event("e", Int("a", 1), F64("b", 2.5), Str("s", "x"))
		ct.Add(3)
		sp.Event("inner", Int("n", 7))
		sp.End()
		c.Add("name", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f times per run, want 0", allocs)
	}
	// An enabled counter's Add must also be allocation-free.
	live := New().Counter("hot")
	allocs = testing.AllocsPerRun(1000, func() { live.Add(1) })
	if allocs != 0 {
		t.Fatalf("enabled Counter.Add allocated %.1f times per run, want 0", allocs)
	}
}

// TestWriteAndValidateNDJSON round-trips a trace through the encoder
// and the schema validator.
func TestWriteAndValidateNDJSON(t *testing.T) {
	c := New()
	c.SetClock(fakeClock())
	sp := c.Span("phase", Str("alg", "hier-gather"), Int("m", 65536))
	sp.Event("sample", Int("seed", 1), F64("t_s", 2.31))
	sp.Event("weird", Str("q", `a"b\c`+"\n"))
	sp.End(F64("median_s", 2.5))
	c.Add("probes", 3)
	c.Add("sim.events", 12345)

	var b strings.Builder
	if err := c.WriteNDJSON(&b); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	n, err := ValidateNDJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ValidateNDJSON: %v\ntrace:\n%s", err, b.String())
	}
	// 4 events + 2 counter lines.
	if n != 6 {
		t.Fatalf("validated %d lines, want 6\ntrace:\n%s", n, b.String())
	}
	if !strings.Contains(b.String(), `"probes","value":3`) {
		t.Errorf("counter line missing:\n%s", b.String())
	}
}

// TestValidateNDJSONRejects spot-checks the validator's failure modes.
func TestValidateNDJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":     `{"seq":1,`,
		"no name":      `{"seq":1,"type":"event"}`,
		"bad type":     `{"seq":1,"type":"mystery","name":"x"}`,
		"no span id":   `{"seq":1,"type":"span.start","name":"x","parent":0}`,
		"no dur":       `{"seq":1,"type":"span.end","name":"x","span":1}`,
		"no value":     `{"seq":1,"type":"counter","name":"x"}`,
		"attrs scalar": `{"seq":1,"type":"event","name":"x","attrs":3}`,
		"empty":        "",
	}
	for label, line := range cases {
		if _, err := ValidateNDJSON(strings.NewReader(line)); err == nil {
			t.Errorf("%s: validator accepted %q", label, line)
		}
	}
}

// TestReset verifies Reset clears events and zeroes counters while
// keeping interned handles usable.
func TestReset(t *testing.T) {
	c := New()
	ct := c.Counter("n")
	ct.Add(5)
	c.Event("e")
	c.Reset()
	if len(c.Events()) != 0 || ct.Value() != 0 {
		t.Fatalf("Reset left events=%d counter=%d", len(c.Events()), ct.Value())
	}
	ct.Add(2)
	c.Event("again")
	if got := c.Events(); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("post-Reset events = %+v", got)
	}
}

// fakeClock returns a deterministic stepping clock: each read advances
// one millisecond.
func fakeClock() func() int64 {
	var t int64
	return func() int64 {
		t += 1e6
		return t
	}
}
