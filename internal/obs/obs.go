// Package obs is the repo's lightweight observability layer: spans,
// events, and monotonic counters recorded into an in-memory Collector
// and exported as NDJSON. It is dependency-free and built for two
// regimes:
//
//   - Disabled (nil *Collector): every entry point is nil-safe and the
//     fast path — a counter bump in the packet simulator, an event in a
//     prediction — costs one nil check and zero allocations. Attributes
//     are a concrete struct (no interface boxing) and recording copies
//     them, so the variadic argument never escapes.
//   - Enabled: events carry a process-wide sequence number and are
//     deterministic under fixed seeds — no wall-clock values appear in
//     any recorded payload except span durations, and even those can be
//     pinned by installing a fake clock with SetClock (golden tests do).
//
// The NDJSON schema is documented in docs/OBSERVABILITY.md and enforced
// by ValidateNDJSON, which cmd/tracecheck and CI run over real traces.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr kinds. A concrete tagged union keeps attribute construction
// allocation-free, which is what makes the disabled fast path free.
const (
	kindInt = iota
	kindFloat
	kindStr
)

// Attr is one typed key/value attribute attached to a span or event.
// Construct attrs with Int, I64, F64, or Str.
type Attr struct {
	Key  string
	kind uint8
	num  int64
	f    float64
	str  string
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, kind: kindInt, num: int64(v)} }

// I64 builds an int64 attribute.
func I64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, num: v} }

// F64 builds a float64 attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindStr, str: v} }

// Event is one recorded trace entry. Type is one of "span.start",
// "span.end", or "event"; WriteNDJSON additionally emits synthetic
// "counter" lines from the counter table. Span is the id of the event's
// own span (span.start/span.end) or of the enclosing span (plain
// events; 0 means top level). Parent is the enclosing span of a
// span.start. DurNS is the span duration in nanoseconds, present only
// on span.end — the single clock-derived field in the schema.
type Event struct {
	Seq    int64
	Type   string
	Name   string
	Span   int64
	Parent int64
	DurNS  int64
	Attrs  []Attr
}

// Counter is a monotonic counter handle. Handles are interned per name
// by Collector.Counter, so hot paths resolve the name once and then pay
// a single atomic add per increment. A nil handle ignores Add, which is
// how disabled call sites stay free.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter. Safe on a nil receiver (no-op) and for
// concurrent use.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Safe on a nil receiver (zero).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Collector accumulates events and counters. The zero value is not
// used; construct with New. A nil *Collector is the disabled state: all
// methods are nil-safe no-ops, so callers thread one pointer through
// and never branch beyond the nil check the methods already do.
type Collector struct {
	mu       sync.Mutex
	clock    func() int64 // monotonic nanoseconds; only span durations consume it
	start    time.Time
	seq      int64
	spans    int64
	events   []Event
	counters map[string]*Counter
}

// New creates an enabled collector. The default clock is the process
// monotonic clock and feeds only span durations; install a deterministic
// clock with SetClock when traces must be byte-stable.
func New() *Collector {
	c := &Collector{start: time.Now(), counters: make(map[string]*Counter)}
	c.clock = func() int64 { return int64(time.Since(c.start)) }
	return c
}

// SetClock replaces the duration clock with fn, which must return
// monotonically non-decreasing nanoseconds. Tests install a stepping
// fake so span durations — the one wall-clock-derived field — become
// deterministic.
func (c *Collector) SetClock(fn func() int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.clock = fn
	c.mu.Unlock()
}

// Enabled reports whether the collector records anything; it is the
// documented way to guard optional extra work (building attribute
// strings, snapshotting stats) that has a cost even before recording.
func (c *Collector) Enabled() bool { return c != nil }

// record appends an event under the lock, copying attrs so the caller's
// variadic slice never escapes (keeping disabled call sites
// allocation-free and enabled ones safe against reuse).
func (c *Collector) record(typ, name string, span, parent, durNS int64, attrs []Attr) {
	c.mu.Lock()
	c.seq++
	ev := Event{Seq: c.seq, Type: typ, Name: name, Span: span, Parent: parent, DurNS: durNS}
	if len(attrs) > 0 {
		ev.Attrs = append([]Attr(nil), attrs...)
	}
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Event records a top-level event (no enclosing span).
func (c *Collector) Event(name string, attrs ...Attr) {
	if c == nil {
		return
	}
	c.record("event", name, 0, 0, 0, attrs)
}

// Span opens a top-level span and records its span.start event.
func (c *Collector) Span(name string, attrs ...Attr) *Span {
	return c.newSpan(name, 0, attrs)
}

func (c *Collector) newSpan(name string, parent int64, attrs []Attr) *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	c.spans++
	id := c.spans
	start := c.clock()
	c.mu.Unlock()
	c.record("span.start", name, id, parent, 0, attrs)
	return &Span{c: c, id: id, name: name, startNS: start}
}

// Counter returns the interned counter handle for name, creating it on
// first use. On a nil collector it returns nil, which Add ignores.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ct := c.counters[name]
	if ct == nil {
		ct = &Counter{name: name}
		c.counters[name] = ct
	}
	c.mu.Unlock()
	return ct
}

// Add increments the named counter by n — the convenience form of
// Counter(name).Add(n) for cold paths.
func (c *Collector) Add(name string, n uint64) {
	if c == nil {
		return
	}
	c.Counter(name).Add(n)
}

// Counters returns a name-sorted snapshot of all counter values.
func (c *Collector) Counters() []CounterValue {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]CounterValue, 0, len(c.counters))
	for name, ct := range c.counters {
		out = append(out, CounterValue{Name: name, Value: ct.Value()})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValue is one entry of a Counters snapshot.
type CounterValue struct {
	Name  string
	Value uint64
}

// Events returns a snapshot of the recorded events in sequence order.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]Event(nil), c.events...)
	c.mu.Unlock()
	return out
}

// Reset discards all recorded events and zeroes every counter, keeping
// interned handles valid. Benchmarks call it between iterations so the
// event buffer does not grow with b.N.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = c.events[:0]
	c.seq = 0
	c.spans = 0
	for _, ct := range c.counters {
		ct.v.Store(0)
	}
	c.mu.Unlock()
}

// Span is an open span. Methods are nil-safe, so code holding a span
// from a disabled collector needs no guards.
type Span struct {
	c       *Collector
	id      int64
	name    string
	startNS int64
	ended   atomic.Bool
}

// Span opens a child span nested under s.
func (s *Span) Span(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.c.newSpan(name, s.id, attrs)
}

// Event records an event inside s.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.c.record("event", name, s.id, 0, 0, attrs)
}

// End closes the span, recording its span.end event with the duration
// since the span opened. Extra attrs ride on the end event (fit
// results, totals). End is idempotent; only the first call records.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	if s.ended.Swap(true) {
		return
	}
	s.c.mu.Lock()
	dur := s.c.clock() - s.startNS
	s.c.mu.Unlock()
	if dur < 0 {
		dur = 0
	}
	s.c.record("span.end", s.name, s.id, 0, dur, attrs)
}
