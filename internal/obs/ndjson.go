package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// NDJSON export and validation. The encoder is hand-rolled so attribute
// order is preserved exactly as recorded (encoding/json would sort map
// keys and allocate heavily); the validator parses each line back with
// encoding/json and checks the schema, so the two sides keep each other
// honest in the golden tests.

// WriteNDJSON writes the trace as newline-delimited JSON: every
// recorded event in sequence order, then one synthetic "counter" line
// per counter in name order. Safe on a nil collector (writes nothing).
func (c *Collector) WriteNDJSON(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	events := c.Events()
	for _, ev := range events {
		buf = ev.appendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	seq := int64(len(events))
	for _, cv := range c.Counters() {
		seq++
		buf = buf[:0]
		buf = append(buf, `{"seq":`...)
		buf = strconv.AppendInt(buf, seq, 10)
		buf = append(buf, `,"type":"counter","name":`...)
		buf = appendJSONString(buf, cv.Name)
		buf = append(buf, `,"value":`...)
		buf = strconv.AppendUint(buf, cv.Value, 10)
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendJSON renders the event as one JSON object with a fixed field
// order: seq, type, name, span/parent/dur_s as applicable, attrs.
func (e Event) appendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, e.Seq, 10)
	b = append(b, `,"type":`...)
	b = appendJSONString(b, e.Type)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, e.Name)
	if e.Span != 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendInt(b, e.Span, 10)
	}
	if e.Type == "span.start" {
		b = append(b, `,"parent":`...)
		b = strconv.AppendInt(b, e.Parent, 10)
	}
	if e.Type == "span.end" {
		b = append(b, `,"dur_s":`...)
		b = appendJSONFloat(b, float64(e.DurNS)/1e9)
	}
	if len(e.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range e.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, a.Key)
			b = append(b, ':')
			switch a.kind {
			case kindInt:
				b = strconv.AppendInt(b, a.num, 10)
			case kindFloat:
				b = appendJSONFloat(b, a.f)
			default:
				b = appendJSONString(b, a.str)
			}
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// appendJSONFloat renders f as a JSON number; NaN and infinities (which
// JSON cannot express) become null so a poisoned value is visible in
// the trace instead of corrupting it.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, `null`...)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// appendJSONString renders s as a quoted JSON string, escaping quotes,
// backslashes, and control characters.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch == '"' || ch == '\\':
			b = append(b, '\\', ch)
		case ch < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, ch)...)
		default:
			b = append(b, ch)
		}
	}
	return append(b, '"')
}

// ValidateNDJSON parses r as an NDJSON trace and checks every line
// against the event schema: a JSON object with integer "seq", a known
// "type", a non-empty "name", and the per-type required fields
// ("span" on span lines, "dur_s" on span.end, "value" on counter).
// It returns the number of lines validated; the error names the first
// offending line.
func ValidateNDJSON(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n++
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			return n, fmt.Errorf("line %d: not valid JSON: %v", n, err)
		}
		if err := validateLine(m); err != nil {
			return n, fmt.Errorf("line %d: %v", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("empty trace")
	}
	return n, nil
}

func validateLine(m map[string]interface{}) error {
	if _, ok := m["seq"].(float64); !ok {
		return fmt.Errorf("missing numeric \"seq\"")
	}
	name, _ := m["name"].(string)
	if name == "" {
		return fmt.Errorf("missing \"name\"")
	}
	typ, _ := m["type"].(string)
	switch typ {
	case "span.start", "span.end":
		if _, ok := m["span"].(float64); !ok {
			return fmt.Errorf("%s %q: missing \"span\" id", typ, name)
		}
		if typ == "span.start" {
			if _, ok := m["parent"].(float64); !ok {
				return fmt.Errorf("span.start %q: missing \"parent\"", name)
			}
		} else if _, ok := m["dur_s"]; !ok {
			return fmt.Errorf("span.end %q: missing \"dur_s\"", name)
		}
	case "event":
		// span is optional (0 = top level, omitted).
	case "counter":
		if _, ok := m["value"].(float64); !ok {
			return fmt.Errorf("counter %q: missing \"value\"", name)
		}
	default:
		return fmt.Errorf("unknown type %q", typ)
	}
	if attrs, present := m["attrs"]; present {
		if _, ok := attrs.(map[string]interface{}); !ok {
			return fmt.Errorf("%s %q: \"attrs\" is not an object", typ, name)
		}
	}
	return nil
}

// Outline renders the trace's structural skeleton, one line per event:
// type, name, span/parent ids, and the ordered attribute keys — but no
// values or durations. Golden tests pin the outline because it is
// platform-stable (float formatting and timings excluded) while still
// fixing the event schema and ordering.
func (c *Collector) Outline() []string {
	if c == nil {
		return nil
	}
	var out []string
	for _, ev := range c.Events() {
		var b strings.Builder
		b.WriteString(ev.Type)
		b.WriteByte(' ')
		b.WriteString(ev.Name)
		if ev.Span != 0 {
			fmt.Fprintf(&b, " span=%d", ev.Span)
		}
		if ev.Type == "span.start" {
			fmt.Fprintf(&b, " parent=%d", ev.Parent)
		}
		if len(ev.Attrs) > 0 {
			b.WriteString(" [")
			for i, a := range ev.Attrs {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(a.Key)
			}
			b.WriteByte(']')
		}
		out = append(out, b.String())
	}
	for _, cv := range c.Counters() {
		out = append(out, "counter "+cv.Name)
	}
	return out
}
