package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func gigeWorld(t *testing.T, nodes int, seed int64, cfg Config) *World {
	t.Helper()
	cl := cluster.Build(cluster.GigabitEthernet(), nodes, seed)
	return NewWorld(cl, cfg)
}

func TestBlockingSendRecv(t *testing.T) {
	w := gigeWorld(t, 2, 1, Config{})
	var got int
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, 1000)
		case 1:
			got = r.Recv(0, 7)
		}
	})
	if got != 1000 {
		t.Fatalf("recv size = %d, want 1000", got)
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	w := gigeWorld(t, 2, 2, Config{EagerThreshold: 1024})
	var got int
	var when sim.Time
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 1, 500_000) // well above threshold: rendezvous
		case 1:
			r.Sleep(3 * sim.Millisecond) // delayed recv: REQ waits unexpected
			got = r.Recv(0, 1)
			when = r.Now()
		}
	})
	if got != 500_000 {
		t.Fatalf("recv size = %d, want 500000", got)
	}
	// Payload must not have moved before the recv was posted: completion
	// strictly after the 3 ms sleep plus transfer time (≈4 ms at 1 Gb/s).
	if when < 6*sim.Millisecond {
		t.Fatalf("rendezvous completed at %v, should be after recv posting + transfer", when)
	}
}

func TestEagerBuffersBeforeRecvPosted(t *testing.T) {
	w := gigeWorld(t, 2, 3, Config{EagerThreshold: 64 << 10})
	var sendDone, recvDone sim.Time
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 1, 1000) // eager: completes locally at once
			sendDone = r.Now()
		case 1:
			r.Sleep(5 * sim.Millisecond)
			r.Recv(0, 1)
			recvDone = r.Now()
		}
	})
	if sendDone > sim.Millisecond {
		t.Fatalf("eager send completed at %v, want ~immediately", sendDone)
	}
	// Data was already here; recv completes right after posting.
	if recvDone > 6*sim.Millisecond {
		t.Fatalf("recv of buffered eager message at %v, want ≈5ms", recvDone)
	}
}

func TestTagMatchingOrder(t *testing.T) {
	w := gigeWorld(t, 2, 4, Config{})
	var sizes []int
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 10, 100)
			r.Send(1, 20, 200)
			r.Send(1, 10, 300)
		case 1:
			sizes = append(sizes, r.Recv(0, 20)) // out-of-tag-order recv
			sizes = append(sizes, r.Recv(0, 10))
			sizes = append(sizes, r.Recv(0, 10))
		}
	})
	if len(sizes) != 3 || sizes[0] != 200 || sizes[1] != 100 || sizes[2] != 300 {
		t.Fatalf("tag matching wrong: %v", sizes)
	}
}

func TestAnyTag(t *testing.T) {
	w := gigeWorld(t, 2, 5, Config{})
	var got int
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 99, 4321)
		case 1:
			got = r.Recv(0, AnyTag)
		}
	})
	if got != 4321 {
		t.Fatalf("AnyTag recv = %d, want 4321", got)
	}
}

func TestNonblockingWaitAll(t *testing.T) {
	w := gigeWorld(t, 3, 6, Config{})
	var got [3]int
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			q1 := r.Irecv(1, 1)
			q2 := r.Irecv(2, 1)
			r.WaitAll(q1, q2)
			got[1], got[2] = q1.Size(), q2.Size()
		default:
			r.Send(0, 1, 1000*r.ID())
		}
	})
	if got[1] != 1000 || got[2] != 2000 {
		t.Fatalf("waitall sizes: %v", got)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := gigeWorld(t, 4, 7, Config{})
	n := 4
	var ok [4]bool
	w.Run(func(r *Rank) {
		dst := (r.ID() + 1) % n
		src := (r.ID() - 1 + n) % n
		got := r.Sendrecv(dst, 5, 100+r.ID(), src, 5)
		ok[r.ID()] = got == 100+src
	})
	for i, v := range ok {
		if !v {
			t.Fatalf("rank %d ring exchange failed", i)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := gigeWorld(t, 8, 8, Config{})
	var before, after [8]sim.Time
	w.Run(func(r *Rank) {
		// Stagger arrivals deliberately.
		r.Sleep(sim.Time(r.ID()) * sim.Millisecond)
		before[r.ID()] = r.Now()
		r.Barrier()
		after[r.ID()] = r.Now()
	})
	var maxBefore, minAfter sim.Time
	minAfter = 1 << 62
	for i := 0; i < 8; i++ {
		if before[i] > maxBefore {
			maxBefore = before[i]
		}
		if after[i] < minAfter {
			minAfter = after[i]
		}
	}
	if minAfter < maxBefore {
		t.Fatalf("barrier leaked: a rank exited (%v) before the last arrived (%v)", minAfter, maxBefore)
	}
}

func TestRepeatedBarriers(t *testing.T) {
	w := gigeWorld(t, 5, 9, Config{})
	counts := make([]int, 5)
	w.Run(func(r *Rank) {
		for i := 0; i < 10; i++ {
			r.Barrier()
			counts[r.ID()]++
		}
	})
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("rank %d completed %d barriers, want 10", i, c)
		}
	}
}

func TestManyPairsSimultaneously(t *testing.T) {
	const n = 10
	w := gigeWorld(t, n, 10, Config{})
	var recvTotal [n]int
	w.Run(func(r *Rank) {
		// Each rank exchanges with every other rank, all at once.
		var qs []*Request
		for peer := 0; peer < n; peer++ {
			if peer == r.ID() {
				continue
			}
			qs = append(qs, r.Irecv(peer, 3))
		}
		for peer := 0; peer < n; peer++ {
			if peer == r.ID() {
				continue
			}
			qs = append(qs, r.Isend(peer, 3, 10_000))
		}
		r.WaitAll(qs...)
		for _, q := range qs {
			if q.isRecv {
				recvTotal[r.ID()] += q.Size()
			}
		}
	})
	for i := 0; i < n; i++ {
		if recvTotal[i] != (n-1)*10_000 {
			t.Fatalf("rank %d received %d bytes, want %d", i, recvTotal[i], (n-1)*10_000)
		}
	}
}

func TestSelfSendPanics(t *testing.T) {
	w := gigeWorld(t, 2, 11, Config{})
	panicked := false
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			func() {
				defer func() { panicked = recover() != nil }()
				r.Send(0, 1, 10)
			}()
		}
	})
	if !panicked {
		t.Fatal("expected panic on self-send")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		w := gigeWorld(t, 6, 99, Config{})
		return w.Run(func(r *Rank) {
			for i := 0; i < 3; i++ {
				r.Barrier()
				dst := (r.ID() + 1 + i) % r.Size()
				src := (r.ID() - 1 - i%r.Size() + 2*r.Size()) % r.Size()
				if dst != r.ID() && src != r.ID() {
					r.Sendrecv(dst, 1, 50_000, src, 1)
				}
			}
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic world runs: %v vs %v", a, b)
	}
}

func TestZeroSizeSend(t *testing.T) {
	// Size-0 payloads must work: the envelope still travels.
	w := gigeWorld(t, 2, 12, Config{})
	var got = -1
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 1, 0)
		case 1:
			got = r.Recv(0, 1)
		}
	})
	if got != 0 {
		t.Fatalf("zero-size recv = %d, want 0", got)
	}
}
