package mpi

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/transport"
)

// Request tracks an outstanding nonblocking operation.
type Request struct {
	fut    sim.Future
	isRecv bool
	src    int   // recv: matching source
	tag    int32 // recv: matching tag (AnyTag allowed)
	size   int   // payload size (recv: filled at completion)
	doneAt sim.Time
}

// Size returns the payload size transferred; valid after Wait.
func (q *Request) Size() int { return q.size }

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.fut.Done() }

// CompletedAt returns the simulated time at which the operation
// completed; valid once Done reports true. It lets measurement code
// timestamp individual transfers even when waits happen out of order.
func (q *Request) CompletedAt() sim.Time { return q.doneAt }

// complete stamps the completion time and releases waiters.
func (q *Request) complete(s *sim.Simulator) {
	q.doneAt = s.Now()
	q.fut.Complete(s)
}

// inbound is an arrived envelope with no matching posted receive yet.
type inbound struct {
	src     int
	kind    uint8
	tag     int32
	msgSeq  int64
	payload int
}

type dataKey struct {
	src int
	seq int64
}

// Rank is one MPI process.
type Rank struct {
	world *World
	id    int
	proc  *sim.Proc // spawn handle
	p     *sim.Proc // body-side handle, set when the body starts

	sendSeq      int64
	posted       []*Request
	unexpected   []inbound
	pendingRndzv map[int64]*Request   // my msgSeq → send request awaiting CTS
	pendingData  map[dataKey]*Request // (src, msgSeq) → recv awaiting payload
	barrierEpoch int32
}

func newRank(w *World, id int) *Rank {
	return &Rank{
		world:        w,
		id:           id,
		pendingRndzv: make(map[int64]*Request),
		pendingData:  make(map[dataKey]*Request),
	}
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.Size() }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Time { return r.p.Now() }

// Proc returns the rank's simulated process handle, letting collective
// runtimes coordinate rank coroutines through raw sim.Futures (epoch
// gates, join barriers) without routing everything through Requests.
// Valid once the rank body has started.
func (r *Rank) Proc() *sim.Proc { return r.p }

// Sleep suspends the rank for d of simulated time (models local compute).
func (r *Rank) Sleep(d sim.Time) { r.p.Sleep(d) }

func (r *Rank) conn(peer int) transport.Conn {
	return r.world.Cluster.Fabric.Conn(r.id, peer)
}

// Isend starts a nonblocking send of size payload bytes to dst with tag.
// Eager sends complete immediately (buffered semantics); rendezvous
// sends complete when the clear-to-send arrives and the payload has been
// handed to the transport, mirroring MPI local-completion semantics.
func (r *Rank) Isend(dst int, tag int32, size int) *Request {
	if dst == r.id {
		panic(fmt.Sprintf("mpi: rank %d Isend to self (collectives copy locally)", r.id))
	}
	if size < 0 {
		panic("mpi: negative send size")
	}
	cfg := r.world.cfg
	r.p.Sleep(cfg.Overhead)
	q := &Request{size: size}
	r.sendSeq++
	seq := r.sendSeq
	if size <= cfg.EagerThreshold {
		r.conn(dst).Send(transport.Message{
			Kind: kEager, Tag: tag, MsgSeq: seq, Size: cfg.EnvelopeSize + size,
		})
		q.complete(r.world.Cluster.Sim)
		return q
	}
	r.pendingRndzv[seq] = q
	r.conn(dst).Send(transport.Message{
		Kind: kReq, Tag: tag, MsgSeq: seq, Aux: int64(size), Size: cfg.EnvelopeSize,
	})
	return q
}

// Send is the blocking form of Isend.
func (r *Rank) Send(dst int, tag int32, size int) {
	r.Wait(r.Isend(dst, tag, size))
}

// Irecv posts a nonblocking receive matching (src, tag). tag may be
// AnyTag. Wildcard sources are intentionally unsupported: none of the
// paper's algorithms need them.
func (r *Rank) Irecv(src int, tag int32) *Request {
	if src == r.id {
		panic(fmt.Sprintf("mpi: rank %d Irecv from self", r.id))
	}
	cfg := r.world.cfg
	r.p.Sleep(cfg.Overhead)
	q := &Request{isRecv: true, src: src, tag: tag}
	// An already-arrived envelope may satisfy this receive.
	for i, u := range r.unexpected {
		if u.src == src && (tag == AnyTag || u.tag == tag) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			r.satisfy(q, u)
			return q
		}
	}
	r.posted = append(r.posted, q)
	return q
}

// Recv is the blocking form of Irecv; it returns the payload size.
func (r *Rank) Recv(src int, tag int32) int {
	q := r.Irecv(src, tag)
	r.Wait(q)
	return q.size
}

// Wait blocks until the request completes.
func (r *Rank) Wait(q *Request) { r.p.Await(&q.fut) }

// WaitAll blocks until every request completes.
func (r *Rank) WaitAll(qs ...*Request) {
	for _, q := range qs {
		r.p.Await(&q.fut)
	}
}

// WaitTimeout blocks until the request completes or d of simulated time
// elapses. It returns true on completion, false on timeout; on timeout
// the request stays outstanding and may still complete later.
func (r *Rank) WaitTimeout(q *Request, d sim.Time) bool {
	return r.p.AwaitTimeout(&q.fut, d)
}

// WaitAllTimeout blocks until every request completes or until d of
// simulated time has elapsed in total (an absolute deadline across the
// set, not a per-request allowance). It returns true when all
// completed, false on deadline; incomplete requests stay outstanding.
func (r *Rank) WaitAllTimeout(d sim.Time, qs ...*Request) bool {
	deadline := r.Now() + d
	for _, q := range qs {
		if q.fut.Done() {
			continue
		}
		rem := deadline - r.Now()
		if rem <= 0 || !r.p.AwaitTimeout(&q.fut, rem) {
			return false
		}
	}
	return true
}

// CancelRecv withdraws a posted receive that has not matched an
// envelope yet, returning true if it was withdrawn. A receive that
// already matched (eagerly satisfied, or clear-to-send granted) cannot
// be withdrawn — its completion simply goes unobserved — and false is
// returned. Failover uses this to retire an old plan's receives so a
// recovery plan's envelopes cannot match stale postings.
func (r *Rank) CancelRecv(q *Request) bool {
	for i, p := range r.posted {
		if p == q {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return true
		}
	}
	return false
}

// Sendrecv runs a send and a receive concurrently and waits for both,
// returning the received payload size — the inner step of the paper's
// Algorithm 1.
func (r *Rank) Sendrecv(dst int, stag int32, size int, src int, rtag int32) int {
	rq := r.Irecv(src, rtag)
	sq := r.Isend(dst, stag, size)
	r.Wait(rq)
	r.Wait(sq)
	return rq.size
}

// satisfy resolves a matched receive against an arrived envelope.
// For eager messages the payload is already here; for rendezvous we
// grant the clear-to-send and wait for the payload.
func (r *Rank) satisfy(q *Request, u inbound) {
	switch u.kind {
	case kEager:
		q.size = u.payload
		q.complete(r.world.Cluster.Sim)
	case kReq:
		r.pendingData[dataKey{u.src, u.msgSeq}] = q
		r.conn(u.src).Send(transport.Message{
			Kind: kCTS, MsgSeq: u.msgSeq, Size: r.world.cfg.EnvelopeSize,
		})
	default:
		panic(fmt.Sprintf("mpi: unexpected inbound kind %d", u.kind))
	}
}

// onMessage handles a transport delivery from src. It runs in event-loop
// context (never inside a rank coroutine).
func (r *Rank) onMessage(src int, m transport.Message) {
	cfg := r.world.cfg
	switch m.Kind {
	case kEager, kBarrier:
		u := inbound{src: src, kind: kEager, tag: m.Tag, msgSeq: m.MsgSeq, payload: m.Size - cfg.EnvelopeSize}
		if q := r.match(src, m.Tag); q != nil {
			r.satisfy(q, u)
		} else {
			r.unexpected = append(r.unexpected, u)
		}
	case kReq:
		u := inbound{src: src, kind: kReq, tag: m.Tag, msgSeq: m.MsgSeq, payload: int(m.Aux)}
		if q := r.match(src, m.Tag); q != nil {
			r.satisfy(q, u)
		} else {
			r.unexpected = append(r.unexpected, u)
		}
	case kCTS:
		q := r.pendingRndzv[m.MsgSeq]
		if q == nil {
			panic(fmt.Sprintf("mpi: rank %d got CTS for unknown msg %d", r.id, m.MsgSeq))
		}
		delete(r.pendingRndzv, m.MsgSeq)
		r.conn(src).Send(transport.Message{
			Kind: kData, MsgSeq: m.MsgSeq, Size: cfg.EnvelopeSize + q.size,
		})
		q.complete(r.world.Cluster.Sim)
	case kData:
		key := dataKey{src, m.MsgSeq}
		q := r.pendingData[key]
		if q == nil {
			panic(fmt.Sprintf("mpi: rank %d got DATA for unknown msg %d from %d", r.id, m.MsgSeq, src))
		}
		delete(r.pendingData, key)
		q.size = m.Size - cfg.EnvelopeSize
		q.complete(r.world.Cluster.Sim)
	default:
		panic(fmt.Sprintf("mpi: unknown message kind %d", m.Kind))
	}
}

// match pops the first posted receive matching (src, tag), or nil.
func (r *Rank) match(src int, tag int32) *Request {
	for i, q := range r.posted {
		if q.src == src && (q.tag == AnyTag || q.tag == tag) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return q
		}
	}
	return nil
}

// barrierTagFor builds a reserved tag for barrier round k of the current
// epoch. Tags at or above 1<<24 are reserved for the runtime.
func barrierTagFor(epoch int32, k int) int32 {
	return 1<<24 | (epoch&0xFFF)<<8 | int32(k&0xFF)
}

// Barrier executes a dissemination barrier across all ranks.
func (r *Rank) Barrier() {
	n := r.world.Size()
	if n == 1 {
		return
	}
	r.barrierEpoch++
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		dst := (r.id + dist) % n
		src := (r.id - dist + n) % n
		tag := barrierTagFor(r.barrierEpoch, k)
		sq := r.Isend(dst, tag, 1)
		r.Recv(src, tag)
		r.Wait(sq)
	}
}
