package mpi

import (
	"testing"

	"repro/internal/sim"
)

// TestWaitTimeoutExpiresThenCompletes: a receive that outlives its
// timeout stays outstanding and still completes on a later Wait.
func TestWaitTimeoutExpiresThenCompletes(t *testing.T) {
	w := gigeWorld(t, 2, 1, Config{})
	var timedOut bool
	var size int
	var done sim.Time
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Sleep(20 * sim.Millisecond)
			r.Send(1, 3, 1000)
		case 1:
			q := r.Irecv(0, 3)
			timedOut = !r.WaitTimeout(q, 5*sim.Millisecond)
			r.Wait(q)
			size = q.Size()
			done = r.Now()
		}
	})
	if !timedOut {
		t.Fatal("WaitTimeout returned true before any send")
	}
	if size != 1000 {
		t.Fatalf("size = %d, want 1000", size)
	}
	if done < 20*sim.Millisecond {
		t.Fatalf("recv completed at %v, before the delayed send", done)
	}
}

// TestWaitTimeoutCompletesInTime: a send landing inside the window
// returns true.
func TestWaitTimeoutCompletesInTime(t *testing.T) {
	w := gigeWorld(t, 2, 2, Config{})
	var ok bool
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 3, 1000)
		case 1:
			q := r.Irecv(0, 3)
			ok = r.WaitTimeout(q, 50*sim.Millisecond)
		}
	})
	if !ok {
		t.Fatal("WaitTimeout timed out on a prompt send")
	}
}

// TestWaitAllTimeoutAbsoluteDeadline: the budget is one deadline across
// the whole set — a second request arriving past it fails the call even
// though the first completed, and the leftovers stay live.
func TestWaitAllTimeoutAbsoluteDeadline(t *testing.T) {
	w := gigeWorld(t, 2, 3, Config{})
	var firstOK, secondOK, zeroOK bool
	var q1Done bool
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 1, 1000)
			r.Sleep(30 * sim.Millisecond)
			r.Send(1, 2, 2000)
		case 1:
			q1 := r.Irecv(0, 1)
			q2 := r.Irecv(0, 2)
			firstOK = r.WaitAllTimeout(10*sim.Millisecond, q1, q2)
			q1Done = q1.Done()
			zeroOK = r.WaitAllTimeout(0, q2)
			secondOK = r.WaitAllTimeout(sim.Second, q1, q2)
		}
	})
	if firstOK {
		t.Fatal("deadline spanning only the first send reported full completion")
	}
	if !q1Done {
		t.Fatal("first receive not completed inside the window")
	}
	if zeroOK {
		t.Fatal("zero budget on an incomplete request returned true")
	}
	if !secondOK {
		t.Fatal("requests did not stay live across the failed deadline")
	}
}

// TestCancelRecv covers the three outcomes: an unmatched posted receive
// withdraws; a receive already satisfied from the unexpected queue does
// not; re-posting after a cancel still matches a late envelope.
func TestCancelRecv(t *testing.T) {
	w := gigeWorld(t, 2, 4, Config{})
	var cancelledFresh, cancelledMatched bool
	var reposted int
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 9, 500) // eager: buffers as unexpected on rank 1
			r.Sleep(20 * sim.Millisecond)
			r.Send(1, 8, 700)
		case 1:
			// Never-matched posting withdraws cleanly.
			stale := r.Irecv(0, 5)
			cancelledFresh = r.CancelRecv(stale)
			// Let the eager tag-9 envelope land in the unexpected queue,
			// so the next post matches it immediately.
			r.Sleep(10 * sim.Millisecond)
			matched := r.Irecv(0, 9)
			cancelledMatched = r.CancelRecv(matched)
			r.Wait(matched)
			// A fresh posting after the cancel pairs with a later send.
			q := r.Irecv(0, 8)
			r.Wait(q)
			reposted = q.Size()
		}
	})
	if !cancelledFresh {
		t.Fatal("unmatched posted receive refused to cancel")
	}
	if cancelledMatched {
		t.Fatal("already-matched receive claimed to cancel")
	}
	if reposted != 700 {
		t.Fatalf("re-posted receive got %d bytes, want 700", reposted)
	}
}
