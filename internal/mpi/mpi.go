// Package mpi implements a rank-based message-passing runtime on the
// simulated cluster, standing in for the LAM-MPI library used by the
// paper. It provides blocking and nonblocking point-to-point operations
// with tag matching, the eager/rendezvous protocol switch of real MPI
// implementations, and a dissemination barrier.
//
// Rank code runs inside sim.Proc coroutines, so collective algorithms
// read like ordinary MPI programs while the simulator remains
// deterministic.
package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Protocol message kinds on the transport.
const (
	kEager   uint8 = 1 // envelope + payload in one transport message
	kReq     uint8 = 2 // rendezvous request (envelope only)
	kCTS     uint8 = 3 // rendezvous clear-to-send
	kData    uint8 = 4 // rendezvous payload
	kBarrier uint8 = 5 // barrier token
)

// AnyTag matches any tag in Recv/Irecv.
const AnyTag = -1

// Config tunes the runtime. Zero values take defaults.
type Config struct {
	// EagerThreshold is the largest payload sent eagerly; larger
	// payloads use the rendezvous protocol. LAM-era TCP RPIs switched
	// at 64 KiB.
	EagerThreshold int
	// EnvelopeSize is the wire size of a protocol envelope (it also
	// rides in front of eager payloads).
	EnvelopeSize int
	// Overhead is the per-posting CPU cost charged to the calling rank
	// (the LogP "o"); it contributes to the measured α.
	Overhead sim.Time
	// StartJitter is the maximum uniform random skew added to each
	// rank's start, modeling the asynchronous start of the paper's
	// synchronization model.
	StartJitter sim.Time
}

// DefaultConfig mirrors a LAM-MPI-like TCP stack.
func DefaultConfig() Config {
	return Config{
		EagerThreshold: 64 << 10,
		EnvelopeSize:   64,
		Overhead:       25 * sim.Microsecond,
		StartJitter:    50 * sim.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.EagerThreshold == 0 {
		c.EagerThreshold = d.EagerThreshold
	}
	if c.EnvelopeSize == 0 {
		c.EnvelopeSize = d.EnvelopeSize
	}
	if c.Overhead == 0 {
		c.Overhead = d.Overhead
	}
	if c.StartJitter == 0 {
		c.StartJitter = d.StartJitter
	}
	return c
}

// World binds a runtime to a built cluster, one rank per host.
type World struct {
	Cluster *cluster.Cluster
	cfg     Config
	ranks   []*Rank
}

// NewWorld creates one rank per cluster host and wires the transport
// handlers.
func NewWorld(cl *cluster.Cluster, cfg Config) *World {
	w := &World{Cluster: cl, cfg: cfg.withDefaults()}
	n := len(cl.Hosts)
	w.ranks = make([]*Rank, n)
	for i := 0; i < n; i++ {
		w.ranks[i] = newRank(w, i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			src := j
			rk := w.ranks[i]
			cl.Fabric.Conn(i, j).SetHandler(func(m transport.Message) {
				rk.onMessage(src, m)
			})
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Config returns the effective runtime configuration.
func (w *World) Config() Config { return w.cfg }

// Run spawns body on every rank (with start jitter), runs the simulation
// to completion, and panics if any rank deadlocked. It returns the final
// simulated time.
func (w *World) Run(body func(r *Rank)) sim.Time {
	s := w.Cluster.Sim
	for _, r := range w.ranks {
		r := r
		jitter := sim.Time(0)
		if w.cfg.StartJitter > 0 {
			jitter = sim.Time(s.Rand().Int63n(int64(w.cfg.StartJitter) + 1))
		}
		r.proc = s.SpawnAt(s.Now()+jitter, fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			r.p = p
			body(r)
		})
	}
	end := s.Run()
	s.MustQuiesce()
	return end
}
