package exp

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/sim"
)

// GR1: the multi-cluster grid extension. A two-cluster Gigabit Ethernet
// grid over a 20 ms WAN runs All-to-All under three strategies (flat
// direct exchange, hierarchical gather, hierarchical direct) across a
// message-size sweep; the contention-aware planner predicts each
// completion time from per-cluster signatures plus the characterized
// WAN term. The series reports prediction-vs-simulation error per
// strategy and whether the planner ranked the strategies as simulation
// did — the property that makes it usable for grid-aware collective
// selection (LaPIe/MagPIe style) without running the workload.
func init() {
	register(Experiment{
		ID:    "GR1",
		Title: "Grid: hierarchical All-to-All, prediction vs simulation (2×GigE over 20ms WAN)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "GR1", Title: "Grid planner: prediction vs simulation"}

			p := cluster.WANTuned(cluster.GigabitEthernet()) // long-fat-pipe tuning
			nodesPer := scaleCount(6, cfg.Scale, 6)
			topo := cluster.Uniform("gr1", p, 2, nodesPer, cluster.DefaultWAN(20*sim.Millisecond)).Tree()

			pl, err := grid.NewPlanner(topo, grid.Options{
				FitN:    scaleCount(8, cfg.Scale, 8),
				SimMode: cfg.SimMode,
				Trace:   cfg.Trace,
				Reps:    cfg.Reps,
				Seed:    cfg.Seed + 2,
			})
			if err != nil {
				res.Note("planner characterization failed: %v", err)
				return res
			}
			res.Note("WAN: α=%.1fms β_steady=%.3gs/B γ_wan=[%s] ω=[%s] κ=[%s]",
				pl.Model.Root.Wan.Alpha()*1e3, pl.Model.Root.Wan.BetaSteady(),
				pl.Model.Root.Wan.Gamma, pl.Model.OverlapGamma, pl.Model.GatherGamma)
			// Both clusters share one profile, so one signature line.
			res.Note("cluster signature: %s", pl.Model.Leaves()[0].LAN)

			s := Series{
				Name: "pred-vs-sim",
				Cols: []string{"msg_bytes", "strat_idx", "predicted_s", "simulated_s", "err_pct"},
			}
			agree := 0
			sizes := []int{16 << 10, 32 << 10, 48 << 10, 64 << 10}
			for i := range sizes {
				sizes[i] = scaleSize(sizes[i], cfg.Scale/0.25) // sized for the CI default
			}
			sizes = dedupInts(sizes)
			for _, m := range sizes {
				preds := pl.Predict(m)
				predOf := map[grid.Strategy]float64{}
				for _, pr := range preds {
					predOf[pr.Strategy] = pr.T
				}
				simBest, simBestT := grid.Strategy(-1), math.Inf(1)
				for _, strat := range grid.Strategies {
					// Average over two seeds: single runs of lossy TCP
					// over a WAN are RTO-noisy.
					simT := 0.0
					simErr := false
					for _, seed := range []int64{cfg.Seed + 6, cfg.Seed + 18} {
						one, err := grid.Simulate(topo, strat, m, seed, cfg.Warmup, cfg.Reps)
						if err != nil {
							res.Note("m=%d %v: simulation failed: %v", m, strat, err)
							simErr = true
							break
						}
						simT += one / 2
					}
					if simErr {
						continue
					}
					pred := predOf[strat]
					errPct := 100 * (pred/simT - 1)
					s.Rows = append(s.Rows, []float64{
						float64(m), float64(strat), pred, simT, errPct,
					})
					if simT < simBestT {
						simBest, simBestT = strat, simT
					}
				}
				best := preds[0]
				if best.Strategy == simBest {
					agree++
					res.Note("m=%d: planner and simulation agree on %v", m, best.Strategy)
				} else {
					res.Note("m=%d: planner picked %v, simulation preferred %v", m, best.Strategy, simBest)
				}
			}
			res.Series = append(res.Series, s)
			res.Note("strategies: 0=flat-direct 1=hier-gather 2=hier-direct")
			res.Note("planner/simulation best-strategy agreement: %d/%d sizes", agree, len(sizes))
			return res
		},
	})
}
