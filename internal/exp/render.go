package exp

import (
	"fmt"
	"io"
	"strings"
)

// WriteText renders a Result as aligned text tables plus notes.
func WriteText(w io.Writer, r Result) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n-- series %s --\n", s.Name)
		widths := make([]int, len(s.Cols))
		cells := make([][]string, len(s.Rows))
		for j, c := range s.Cols {
			widths[j] = len(c)
		}
		for i, row := range s.Rows {
			cells[i] = make([]string, len(row))
			for j, v := range row {
				cells[i][j] = formatCell(v)
				if len(cells[i][j]) > widths[j] {
					widths[j] = len(cells[i][j])
				}
			}
		}
		for j, c := range s.Cols {
			if j > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%*s", widths[j], c)
		}
		fmt.Fprintln(w)
		for i := range cells {
			for j := range cells[i] {
				if j > 0 {
					fmt.Fprint(w, "  ")
				}
				fmt.Fprintf(w, "%*s", widths[j], cells[i][j])
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Notes {
			fmt.Fprintf(w, "# %s\n", n)
		}
	}
}

// WriteCSV renders every series of a Result as CSV blocks.
func WriteCSV(w io.Writer, r Result) {
	for _, s := range r.Series {
		fmt.Fprintf(w, "# %s %s %s\n", r.ID, r.Title, s.Name)
		fmt.Fprintln(w, strings.Join(s.Cols, ","))
		for _, row := range s.Rows {
			parts := make([]string, len(row))
			for j, v := range row {
				parts[j] = formatCell(v)
			}
			fmt.Fprintln(w, strings.Join(parts, ","))
		}
	}
}

// formatCell chooses a compact numeric representation: integers print
// without decimals, everything else with six significant digits.
func formatCell(v float64) string {
	if v == float64(int64(v)) && v > -1e15 && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}
