package exp

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/grid"
	"repro/internal/sim"
)

// GR4: irregular All-to-Allv on grids — prediction vs simulation under
// skewed per-pair size matrices. Two topologies (a two-level 2×GigE
// grid over 20 ms and a 3-level 2×2 campus grid over 10/40 ms) run the
// canonical skewed workloads (cluster.SkewedWorkloads: hotspot-row, a
// master rank fanning out 4× bulk; block-diagonal, thin local blocks
// with 4× cross-cluster halos) under all three strategies. The planner
// prices each strategy from the size matrix's actual tier cuts
// (Planner.PredictV) and the experiment reports per-strategy
// prediction error and whether the v-ranking matches packet-level
// All-to-Allv simulation — the scenario-diversity jump past the
// uniform GR1/GR2 validation.
func init() {
	register(Experiment{
		ID:    "GR4",
		Title: "Grid: irregular All-to-Allv, prediction vs simulation on skewed size matrices",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "GR4", Title: "Grid planner: All-to-Allv prediction vs simulation"}

			ge := cluster.WANTuned(cluster.GigabitEthernet())
			topos := []struct {
				name string
				topo cluster.TopoNode
			}{
				{"2lvl-2x4-wan20", cluster.Uniform("gr4-2lvl", ge, 2,
					scaleCount(4, cfg.Scale/0.25, 4), cluster.DefaultWAN(20*sim.Millisecond)).Tree()},
				{"3lvl-2x2x2-wan10/40", cluster.ThreeLevel("gr4-3lvl", ge, 2, 2,
					scaleCount(2, cfg.Scale/0.25, 2),
					cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond))},
			}

			s := Series{
				Name: "predv-vs-sim",
				Cols: []string{"topo_idx", "pattern_idx", "strat_idx", "predicted_s", "simulated_s", "err_pct"},
			}
			agree, total := 0, 0
			for ti, tc := range topos {
				pl, err := grid.NewPlanner(tc.topo, grid.Options{
					FitN:    scaleCount(6, cfg.Scale, 6),
					SimMode: cfg.SimMode,
					Trace:   cfg.Trace,
					Reps:    cfg.Reps,
					Seed:    cfg.Seed + 2,
				})
				if err != nil {
					res.Note("%s: planner characterization failed: %v", tc.name, err)
					continue
				}
				res.Note("%s: γ_wan(root)=[%s] ω=[%s] κ=[%s]", tc.name,
					pl.Model.Root.Wan.Gamma, pl.Model.OverlapGamma, pl.Model.GatherGamma)

				workloads := cluster.SkewedWorkloads(tc.topo)
				names := make([]string, 0, len(workloads))
				for name := range workloads {
					names = append(names, name)
				}
				sort.Strings(names)
				for pi, name := range names {
					sz := coll.SizeMatrixFromRows(workloads[name])
					preds := pl.PredictV(sz)
					predOf := map[grid.Strategy]float64{}
					for _, pr := range preds {
						predOf[pr.Strategy] = pr.T
					}
					simBest, simBestT := grid.Strategy(-1), math.Inf(1)
					for _, strat := range grid.Strategies {
						// Average over two seeds: single runs of lossy
						// TCP over a WAN are RTO-noisy.
						simT := 0.0
						simErr := false
						for _, seed := range []int64{cfg.Seed + 6, cfg.Seed + 18} {
							one, err := grid.SimulateV(tc.topo, strat, sz, seed, cfg.Warmup, cfg.Reps)
							if err != nil {
								res.Note("%s %s %v: simulation failed: %v", tc.name, name, strat, err)
								simErr = true
								break
							}
							simT += one / 2
						}
						if simErr {
							continue
						}
						pred := predOf[strat]
						errPct := 100 * (pred/simT - 1)
						s.Rows = append(s.Rows, []float64{
							float64(ti), float64(pi), float64(strat), pred, simT, errPct,
						})
						if simT < simBestT {
							simBest, simBestT = strat, simT
						}
					}
					if math.IsInf(simBestT, 1) {
						res.Note("%s %s: no successful simulations, case skipped", tc.name, name)
						continue
					}
					total++
					best := preds[0]
					if best.Strategy == simBest {
						agree++
						res.Note("%s %s: planner and simulation agree on %v", tc.name, name, best.Strategy)
					} else {
						res.Note("%s %s: planner picked %v, simulation preferred %v",
							tc.name, name, best.Strategy, simBest)
					}
				}
			}
			res.Series = append(res.Series, s)
			res.Note("strategies: 0=flat-direct 1=hier-gather 2=hier-direct")
			res.Note("patterns: 0=block-diagonal (16k local / 64k cross) 1=hotspot-row (48k base, rank 0 ×4)")
			res.Note("planner/simulation best-strategy agreement: %d/%d (topology, matrix) cases", agree, total)
			return res
		},
	})
}
