package exp

import (
	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// F2/F3: the network saturation probe of Section 3 (Figs. 1–3). Many
// simultaneous point-to-point connections flood a Gigabit Ethernet
// network; Fig. 2 plots the average per-connection bandwidth, Fig. 3 the
// individual transmission times with their straggler tail.

func saturationConnCounts(scale float64) []int {
	base := []int{1, 2, 4, 8, 12, 16, 24, 32, 40, 50, 60}
	var out []int
	for _, c := range base {
		out = append(out, scaleCount(c, 1, 1)) // connection counts stay
	}
	_ = scale
	return out
}

func init() {
	register(Experiment{
		ID:    "F02",
		Title: "Fig. 2: average bandwidth vs simultaneous connections (GigE, 32 MB)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "F02", Title: "Fig. 2"}
			size := scaleSize(32<<20, cfg.Scale)
			nodes := 16
			s := Series{
				Name: "bandwidth",
				Cols: []string{"connections", "avg_bandwidth_MBps", "min_bandwidth_MBps"},
			}
			for _, c := range saturationConnCounts(cfg.Scale) {
				pr := calib.SaturationProbe(cluster.GigabitEthernet(), mpi.Config{}, nodes, c, size, cfg.Seed+int64(c))
				var minBW float64
				if mx := stats.Max(pr.Times); mx > 0 {
					minBW = float64(size) / mx / 1e6
				}
				s.Rows = append(s.Rows, []float64{float64(c), pr.AvgBandwidth() / 1e6, minBW})
			}
			res.Series = append(res.Series, s)
			res.Note("transfer size: %d bytes on %d nodes (paper: 32 MB)", size, nodes)
			res.Note("paper shape: average bandwidth collapses from ~110 MB/s toward ~20 MB/s by 60 connections")
			return res
		},
	})

	register(Experiment{
		ID:    "F03",
		Title: "Fig. 3: per-connection transmission times (GigE, 32 MB)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "F03", Title: "Fig. 3"}
			size := scaleSize(32<<20, cfg.Scale)
			nodes := 16
			indiv := Series{
				Name: "individual",
				Cols: []string{"connections", "time_s"},
			}
			summary := Series{
				Name: "summary",
				Cols: []string{"connections", "mean_s", "p95_s", "max_s", "max_over_mean"},
			}
			for _, c := range saturationConnCounts(cfg.Scale) {
				pr := calib.SaturationProbe(cluster.GigabitEthernet(), mpi.Config{}, nodes, c, size, cfg.Seed+int64(c))
				for _, t := range pr.Times {
					indiv.Rows = append(indiv.Rows, []float64{float64(c), t})
				}
				mean := pr.MeanTime()
				ratio := 0.0
				if mean > 0 {
					ratio = pr.MaxTime() / mean
				}
				summary.Rows = append(summary.Rows, []float64{
					float64(c), mean, stats.Quantile(pr.Times, 0.95), pr.MaxTime(), ratio,
				})
			}
			res.Series = append(res.Series, indiv, summary)
			res.Note("paper shape: most connections near the mean, a few up to ~6x slower (TCP loss recovery)")
			return res
		},
	})
}
