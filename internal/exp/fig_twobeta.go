package exp

import (
	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/mpi"
)

// F4: the Section 6 "throughput under contention" approach. βF and βC
// come from the saturation probe; the synthetic β = (1−ρ)βF + ρβC feeds
// the linear model, compared against the measured Direct Exchange and
// the contention-free lower bound on Gigabit Ethernet (paper: 40
// processes).
func init() {
	register(Experiment{
		ID:    "F04",
		Title: "Fig. 4: two-beta performance approximation (GigE, 40 processes)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "F04", Title: "Fig. 4"}
			p := cluster.GigabitEthernet()
			n := scaleCount(40, cfg.Scale, 8)
			h := hockneyFor(p, cfg)

			probeSize := scaleSize(32<<20, cfg.Scale)
			single := calib.SaturationProbe(p, mpi.Config{}, 16, 1, probeSize, cfg.Seed)
			heavy := calib.SaturationProbe(p, mpi.Config{}, 16, 40, probeSize, cfg.Seed)
			tb := calib.TwoBetaModel(h, single, heavy)
			naive := model.Naive{H: h}

			curve := alltoallCurve(p, n, messageSweep(cfg.Scale), cfg)
			s := Series{
				Name: "twobeta",
				Cols: []string{"msg_bytes", "measured_s", "two_beta_prediction_s", "lower_bound_s"},
			}
			for _, c := range curve {
				s.Rows = append(s.Rows, []float64{
					float64(c.M), c.Mean, tb.Predict(n, c.M), naive.Predict(n, c.M),
				})
			}
			res.Series = append(res.Series, s)
			res.Note("βF=%.4g s/B, βC=%.4g s/B, synthetic β=%.4g s/B (ρ=0.5)",
				tb.BetaF, tb.BetaC, tb.SyntheticBeta())
			res.Note("paper example: βF=8.502e-9, βC=8.498e-8, β=4.6742e-8 s/B")
			res.Note("paper shape: prediction tracks large messages, misses small ones (motivates Section 7)")
			return res
		},
	})
}
