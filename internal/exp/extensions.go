package exp

import (
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/signature"
)

// The paper's Section 9 names three future directions; each is
// implemented here as an experiment:
//
//	EX1 — "validating and extending our model under different network
//	       architectures like Infiniband"
//	EX2 — "propose an intermediate performance model for half-saturate
//	       networks"
//	EX3 — "extend our models to other collective communication
//	       operations"
func init() {
	register(Experiment{
		ID:    "EX1",
		Title: "Extension: contention signature of an InfiniBand-like fabric",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "EX1", Title: "InfiniBand-like"}
			p := cluster.InfiniBandLike()
			n := scaleCount(24, cfg.Scale, 8)
			h, curve, sig, rep, err := fitProfile(p, n, cfg)
			if err != nil {
				res.Note("fit failed: %v", err)
				return res
			}
			s := Series{
				Name: "fit",
				Cols: []string{"msg_bytes", "measured_s", "lower_bound_s", "prediction_s", "ratio_vs_lb"},
			}
			for _, c := range curve {
				lb := model.LowerBound(h, n, c.M)
				s.Rows = append(s.Rows, []float64{float64(c.M), c.Mean, lb, sig.Predict(n, c.M), c.Mean / lb})
			}
			res.Series = append(res.Series, s)
			res.Note("hockney: %s", h)
			res.Note("signature: %s (MAPE %.1f%%)", sig, rep.MAPE*100)
			res.Note("expected shape: lossless like Myrinet -> pure γ, δ≈0, γ between 1 and Myrinet's")
			return res
		},
	})

	register(Experiment{
		ID:    "EX2",
		Title: "Extension: half-saturated intermediate model (GigE)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "EX2", Title: "Half-saturated model"}
			p := cluster.GigabitEthernet()
			fitN := scaleCount(40, cfg.Scale, 8)
			_, _, sig, _, err := fitProfile(p, fitN, cfg)
			if err != nil {
				res.Note("fit failed: %v", err)
				return res
			}
			res.Note("saturated signature at n'=%d: %s", fitN, sig)

			// Measure across process counts at two sizes, fit the ramp.
			m1 := scaleSize(256<<10, cfg.Scale)
			m2 := scaleSize(1<<20, cfg.Scale)
			var pts []signature.NPoint
			for gi, n := range []int{2, 4, 6, 8, 12, 16, 24, 32, 40} {
				n = scaleCount(n, cfg.Scale, 2)
				if n < 2 {
					continue
				}
				for si, m := range []int{m1, m2} {
					t := alltoallPoint(p, n, m, cfg, int64(5000+gi*53+si))
					pts = append(pts, signature.NPoint{N: n, M: m, T: t})
				}
			}
			hs, err := signature.FitSaturation(sig, pts)
			if err != nil {
				res.Note("saturation fit failed: %v", err)
				return res
			}
			res.Note("fitted ramp: N0=%d NSat=%d", hs.N0, hs.NSat)

			s := Series{
				Name: "halfsat",
				Cols: []string{"nodes", "msg_bytes", "measured_s", "plain_sig_err_pct", "halfsat_err_pct"},
			}
			var plainSum, hsSum float64
			for _, pt := range pts {
				ePlain := (pt.T/sig.Predict(pt.N, pt.M) - 1) * 100
				eHS := (pt.T/hs.Predict(pt.N, pt.M) - 1) * 100
				s.Rows = append(s.Rows, []float64{float64(pt.N), float64(pt.M), pt.T, ePlain, eHS})
				plainSum += abs(ePlain)
				hsSum += abs(eHS)
			}
			res.Series = append(res.Series, s)
			res.Note("mean |error|: plain signature %.1f%%, half-saturated %.1f%%",
				plainSum/float64(len(pts)), hsSum/float64(len(pts)))
			return res
		},
	})

	register(Experiment{
		ID:    "EX3",
		Title: "Extension: signature methodology on other collectives (GigE)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "EX3", Title: "Other collectives"}
			p := cluster.GigabitEthernet()
			n := scaleCount(24, cfg.Scale, 8)
			h := hockneyFor(p, cfg)

			// Collectives whose linear-model lower bound matches the
			// total-exchange form (n−1 sequential m-byte transfers per
			// rank for allgather; log2 n for allreduce handled via its
			// own round count).
			type cc struct {
				name   string
				rounds func(n int) int
				op     func(r *mpi.Rank, m int)
			}
			cases := []cc{
				{"alltoall", func(n int) int { return n - 1 },
					func(r *mpi.Rank, m int) { coll.Alltoall(r, m, cfg.Algorithm) }},
				{"allgather", func(n int) int { return n - 1 },
					func(r *mpi.Rank, m int) { coll.Allgather(r, m) }},
				{"allreduce", func(n int) int { return log2ceil(n) },
					func(r *mpi.Rank, m int) { coll.Allreduce(r, m) }},
			}
			s := Series{
				Name: "collectives",
				Cols: []string{"coll_idx", "gamma", "delta_ms", "M_bytes", "fit_mape_pct"},
			}
			for ci, c := range cases {
				var samples []signature.Sample
				for i, m := range messageSweep(cfg.Scale) {
					cl := cluster.Build(p, n, cfg.Seed+int64(ci*1000+i))
					w := mpi.NewWorld(cl, mpi.Config{})
					meas := coll.Measure(w, cfg.Warmup, cfg.Reps, func(r *mpi.Rank) { c.op(r, m) })
					samples = append(samples, signature.Sample{M: m, T: meas.Mean()})
				}
				// Generalize the lower bound via the round count: scale
				// the Hockney parameters so LB(n,m) = rounds·(α+mβ).
				rounds := c.rounds(n)
				hEff := model.Hockney{
					Alpha: h.Alpha * float64(rounds) / float64(n-1),
					Beta:  h.Beta * float64(rounds) / float64(n-1),
				}
				sig, rep, err := signature.Fit(hEff, n, samples, signature.Options{})
				if err != nil {
					res.Note("%s: fit failed: %v", c.name, err)
					continue
				}
				s.Rows = append(s.Rows, []float64{
					float64(ci), sig.Gamma, sig.Delta * 1e3, float64(sig.M), rep.MAPE * 100,
				})
				res.Note("%s: rounds=%d %s (MAPE %.1f%%)", c.name, rounds, sig, rep.MAPE*100)
			}
			res.Series = append(res.Series, s)
			res.Note("collectives: 0=alltoall 1=allgather 2=allreduce")
			res.Note("expected: neighbor-pattern allgather and log-round allreduce show far smaller γ than alltoall")
			return res
		},
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func log2ceil(n int) int {
	k, p := 0, 1
	for p < n {
		p <<= 1
		k++
	}
	return k
}
