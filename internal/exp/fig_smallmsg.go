package exp

import (
	"repro/internal/cluster"
	"repro/internal/model"
)

// F5: the small-message non-linearity of Section 7.1 (Fig. 5): a dense
// sweep of small message sizes across 4–16 nodes on Gigabit Ethernet.
// The paper names three suspects for the non-linear steps — MPI sending
// policy, buffer capacity, process synchronization; in this simulator
// the eager/rendezvous switch and the onset of switch-buffer overflow
// produce the same qualitative steps.
func init() {
	register(Experiment{
		ID:    "F05",
		Title: "Fig. 5: non-linearity of communication cost with small messages (GigE)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "F05", Title: "Fig. 5"}
			p := cluster.GigabitEthernet()
			h := hockneyFor(p, cfg)

			step := 256 * 4                        // paper uses 256-byte intervals; we stride 1 KiB
			maxM := scaleSize(16<<10, cfg.Scale*4) // keep the full small range
			var nodes []int
			for _, n := range []int{4, 8, 12, 16} {
				nodes = append(nodes, n)
			}
			s := Series{
				Name: "smallmsg",
				Cols: []string{"nodes", "msg_bytes", "measured_s", "lower_bound_s", "ratio"},
			}
			for gi, n := range nodes {
				for m := step; m <= maxM; m += step {
					meas := alltoallPoint(p, n, m, cfg, int64(gi*211+m))
					lb := model.LowerBound(h, n, m)
					s.Rows = append(s.Rows, []float64{float64(n), float64(m), meas, lb, meas / lb})
				}
			}
			res.Series = append(res.Series, s)
			res.Note("paper shape: cost does not grow linearly with size; visible steps for small messages")
			return res
		},
	})
}
