package exp

import (
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/grid"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// GR6: resilience on the heterogeneous grid. The topology is GR3's
// hetero-3lvl shape — 2 nations × 2 campuses of Gigabit Ethernet over
// 10 ms campus and 40 ms continental tiers, every campus's lowest rank
// on a legacy 100 Mb access port — and the experiment injects the two
// failures a long-running grid actually sees (docs/RESILIENCE.md):
//
//  1. Coordinator loss mid-collective: the planner-selected hier-gather
//     plan runs under the epoch-failover runtime, the selected campus-0
//     coordinator's host is removed 25 ms in, and the run must finish
//     among the survivors with exactly-once delivery by promoting the
//     plan's headroom-ranked standby. Reported against a fault-free run
//     of the same plan, so the failover overhead (timeout wait +
//     recovery epochs) is isolated.
//  2. Degraded-port delta: a monitor reports campus 0's legacy port
//     collapsing to 10% of its characterized rate. Service.ReportDelta
//     must invalidate exactly that campus's store records, refit it
//     from fresh probes while every other tier replans warm from the
//     store, and move the campus coordinator off the degraded port.
//     The probe accounting (cold build vs replan) is the scope proof.
func init() {
	register(Experiment{
		ID:    "GR6",
		Title: "Grid: coordinator failover and replan-on-delta (hetero 2×2 GigE, degraded rank-0 NICs, 10/40ms WAN)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "GR6", Title: "Resilience: standby failover cost and warm replan scope"}

			// The probe accounting below reads planner.probes, so the
			// experiment needs a collector even when the caller didn't
			// ask for a trace.
			tc := cfg.Trace
			if tc == nil {
				tc = obs.New()
			}
			ctr := func(c *obs.Collector, name string) float64 {
				for _, cv := range c.Counters() {
					if cv.Name == name {
						return float64(cv.Value)
					}
				}
				return 0
			}
			probes := func() float64 { return ctr(tc, grid.CtrProbes) }

			p := cluster.WANTuned(cluster.GigabitEthernet())
			p.Name = "gigabit-ethernet-mixed-nics"
			p.NodeLinkRates = []int64{12_500_000} // rank 0 of each campus on 100 Mb
			nodesPer := scaleCount(4, cfg.Scale/0.25, 3)
			topo := cluster.ThreeLevel("gr6", p, 2, 2, nodesPer,
				cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond))

			svc, err := grid.NewService(grid.Options{
				FitN:    scaleCount(6, cfg.Scale, 6),
				SimMode: cfg.SimMode,
				Trace:   tc,
				Reps:    cfg.Reps,
				Seed:    cfg.Seed + 4,
			})
			if err != nil {
				res.Note("service construction failed: %v", err)
				return res
			}
			m := scaleSize(48<<10, cfg.Scale/0.25)
			choices, err := svc.SelectCoordinators(topo, m)
			if err != nil {
				res.Note("coordinator selection failed: %v", err)
				return res
			}
			coldProbes := probes()
			pl, err := svc.PlannerFor(topo)
			if err != nil {
				res.Note("planner lookup failed: %v", err)
				return res
			}
			spec := pl.PlanSpec()

			// Victim: the selected coordinator of the first campus (its
			// default lowest rank if selection kept the default).
			var firstLeaf *coll.TreeSpec
			var walk func(t *coll.TreeSpec)
			walk = func(t *coll.TreeSpec) {
				if firstLeaf != nil {
					return
				}
				if len(t.Children) == 0 {
					firstLeaf = t
					return
				}
				for i := range t.Children {
					walk(&t.Children[i])
				}
			}
			walk(&spec)
			victim := firstLeaf.Ranks[0]
			if len(firstLeaf.Coords) > 0 {
				victim = firstLeaf.Coords[0]
			}
			g, err := cluster.BuildGridTree(topo, cfg.Seed+4)
			if err != nil {
				res.Note("grid build failed: %v", err)
				return res
			}
			victimHost := g.Env.Hosts[victim].Name()
			res.Note("campus-0 coordinator: rank %d (host %s), standbys %v",
				victim, victimHost, firstLeaf.Standbys)

			sc := grid.SimConfig{Mode: cfg.SimMode}
			timeout := 400 * sim.Millisecond
			baseRes, baseT, err := grid.SimulateSpecFailover(tc, sc, topo, spec,
				coll.HierGather, m, cfg.Seed+6, netsim.FaultSchedule{}, timeout)
			if err != nil {
				res.Note("fault-free run failed: %v", err)
				return res
			}
			fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{
				{Host: victimHost, At: 25 * sim.Millisecond},
			}}
			failRes, failT, err := grid.SimulateSpecFailover(tc, sc, topo, spec,
				coll.HierGather, m, cfg.Seed+6, fs, timeout)
			if err != nil {
				res.Note("faulted run failed: %v", err)
				return res
			}
			fo := Series{
				Name: "coordinator-failover",
				Cols: []string{"msg_bytes", "baseline_s", "failover_s",
					"epochs", "dead", "delivered", "waived"},
			}
			fo.Rows = append(fo.Rows, []float64{
				float64(m), baseT, failT,
				float64(failRes.Epochs), float64(len(failRes.Dead)),
				float64(failRes.DeliveredBlocks), float64(failRes.WaivedBlocks),
			})
			res.Note("fault-free: %.3fs in %d epoch(s); coordinator lost at 25ms: %.3fs in %d epochs, dead %v, %d blocks delivered, %d waived, incomplete=%v",
				baseT, baseRes.Epochs, failT, failRes.Epochs, failRes.Dead,
				failRes.DeliveredBlocks, failRes.WaivedBlocks, failRes.Incomplete)
			res.Note("failover overhead: +%.3fs (%.0f%% of the fault-free run; timeout %s dominates)",
				failT-baseT, 100*(failT/baseT-1), timeout)

			// Degraded-port delta: campus 0's legacy port drops to 10% of
			// its characterized rate (100 Mb -> 10 Mb). The replan must
			// refit only that campus — every other tier's curves come
			// warm from the store.
			degP := p
			degP.Name = p.Name + "-deg0"
			degP.NodeLinkRates = []int64{1_250_000}
			degTopo := topo
			degTopo.Children = append([]cluster.TopoNode(nil), topo.Children...)
			n0 := degTopo.Children[0]
			n0.Children = append([]cluster.TopoNode(nil), n0.Children...)
			n0.Children[0] = cluster.Leaf(degP, nodesPer)
			degTopo.Children[0] = n0

			preProbes, preHits, preRefits := probes(), ctr(tc, grid.CtrStoreHit), ctr(tc, grid.CtrStoreRefit)
			rep, err := svc.ReportDelta(degTopo, grid.TierKey(topo.Children[0].Children[0]),
				grid.Delta{RateFactor: 0.1, Size: m, Source: "gr6-nic-monitor"})
			if err != nil {
				res.Note("replan failed: %v", err)
				return res
			}
			replanProbes := probes() - preProbes
			replanHits := ctr(tc, grid.CtrStoreHit) - preHits
			replanRefits := ctr(tc, grid.CtrStoreRefit) - preRefits

			// The probe ceiling: a from-scratch characterization of the
			// changed grid (no store), coordinator selection included —
			// what a planner without replan-on-delta would have to pay.
			// The initial build is NOT a fair ceiling because its four
			// identical campuses dedupe to one tier characterization; the
			// degraded grid has two distinct campus tiers.
			coldTc := obs.New()
			coldPl, err := grid.NewPlanner(degTopo, grid.Options{
				FitN:    scaleCount(6, cfg.Scale, 6),
				SimMode: cfg.SimMode,
				Trace:   coldTc,
				Reps:    cfg.Reps,
				Seed:    cfg.Seed + 4,
			})
			if err != nil {
				res.Note("cold degraded build failed: %v", err)
				return res
			}
			if _, err := coldPl.SelectCoordinators(m); err != nil {
				res.Note("cold degraded selection failed: %v", err)
				return res
			}
			coldDegProbes := ctr(coldTc, grid.CtrProbes)

			rp := Series{
				Name: "replan-on-delta",
				Cols: []string{"initial_probes", "cold_rebuild_probes", "replan_probes",
					"dropped_records", "store_hits", "store_refits", "nondefault_choices"},
			}
			nonDefault := 0
			for _, c := range rep.Choices {
				if !c.Default {
					nonDefault++
				}
			}
			rp.Rows = append(rp.Rows, []float64{
				coldProbes, coldDegProbes, replanProbes,
				float64(rep.DroppedRecords), replanHits, replanRefits, float64(nonDefault),
			})
			res.Series = append(res.Series, fo, rp)
			res.Note("replan: invalidated %d store records, refit %d tier(s) with %d warm store hits covering the rest, %d/%d campuses off the default coordinator after refit",
				rep.DroppedRecords, int(replanRefits), int(replanHits), nonDefault, len(rep.Choices))
			if len(rep.Predictions) > 0 {
				res.Note("post-replan best strategy: %v (%.3fs predicted)",
					rep.Predictions[0].Strategy, rep.Predictions[0].T)
			}
			if len(rep.Choices) > 0 {
				res.Note("degraded campus choice, %v", rep.Choices[0])
			}
			res.Note("probe scope: replan %d probes vs %d for a from-scratch build of the degraded grid (initial build: %d, its identical campuses dedupe to one tier)",
				int(replanProbes), int(coldDegProbes), int(coldProbes))
			res.Note("initial selection moved %d/%d campuses off the lowest rank", countNonDefault(choices), len(choices))
			return res
		},
	})
}

// countNonDefault tallies coordinator choices that moved off the
// lowest-rank default.
func countNonDefault(choices []grid.CoordChoice) int {
	n := 0
	for _, c := range choices {
		if !c.Default {
			n++
		}
	}
	return n
}
