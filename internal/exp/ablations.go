package exp

import (
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/signature"
)

// AB1: All-to-All algorithm choice under contention. The paper models
// the direct exchange; this ablation quantifies how much the round
// structure (Direct), full posting (PostAll), Bruck and pairwise differ
// on each network, i.e. how algorithm choice moves the effective γ.
func init() {
	register(Experiment{
		ID:    "AB1",
		Title: "Ablation: All-to-All algorithm vs contention (all profiles)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "AB1", Title: "Ablation: algorithms"}
			profiles := []cluster.Profile{
				cluster.FastEthernet(), cluster.GigabitEthernet(), cluster.Myrinet(),
			}
			n := scaleCount(16, cfg.Scale, 8)
			m := scaleSize(512<<10, cfg.Scale)
			s := Series{
				Name: "algorithms",
				Cols: []string{"profile_idx", "alg_idx", "mean_s", "ratio_vs_lb"},
			}
			for pi, p := range profiles {
				h := hockneyFor(p, cfg)
				lb := model.LowerBound(h, n, m)
				for ai, alg := range coll.Algorithms {
					cl := cluster.Build(p, n, cfg.Seed+int64(ai))
					w := mpi.NewWorld(cl, mpi.Config{})
					meas := coll.Measure(w, cfg.Warmup, cfg.Reps, func(r *mpi.Rank) {
						coll.Alltoall(r, m, alg)
					})
					// Label rows with the algorithm that actually ran
					// (Pairwise falls back to Direct off powers of two).
					eff := alg.Effective(n)
					s.Rows = append(s.Rows, []float64{float64(pi), float64(eff), meas.Mean(), meas.Mean() / lb})
					if eff != alg {
						res.Note("%s: requested %s, ran %s (n=%d not a power of two)", p.Name, alg, eff, n)
					}
					res.Note("%s/%s: %.4fs (%.2fx LB)", p.Name, eff, meas.Mean(), meas.Mean()/lb)
				}
			}
			res.Series = append(res.Series, s)
			res.Note("profiles: 0=fast-ethernet 1=gigabit-ethernet 2=myrinet; algs: 0=direct 1=postall 2=bruck 3=pairwise")
			return res
		},
	})

	// AB2: switch buffer size vs fitted γ and δ on Gigabit Ethernet —
	// the causal link between finite buffering, loss recovery and the
	// contention signature.
	register(Experiment{
		ID:    "AB2",
		Title: "Ablation: switch port buffer vs contention signature (GigE)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "AB2", Title: "Ablation: buffer size"}
			n := scaleCount(24, cfg.Scale, 8)
			s := Series{
				Name: "buffers",
				Cols: []string{"port_buffer_bytes", "gamma", "delta_ms", "timeouts_per_exchange"},
			}
			for _, buf := range []int{32 << 10, 64 << 10, 128 << 10, 512 << 10} {
				p := cluster.GigabitEthernet()
				p.PortBuffer = buf
				h := hockneyFor(p, cfg)
				curve := alltoallCurve(p, n, messageSweep(cfg.Scale), cfg)
				samples := make([]signature.Sample, len(curve))
				for i, c := range curve {
					samples[i] = signature.Sample{M: c.M, T: c.Mean}
				}
				sig, _, err := signature.Fit(h, n, samples, signature.Options{})
				if err != nil {
					res.Note("buf=%d: fit failed: %v", buf, err)
					continue
				}
				// Count timeouts on a representative point.
				cl := cluster.Build(p, n, cfg.Seed)
				w := mpi.NewWorld(cl, mpi.Config{})
				coll.Measure(w, 0, 1, func(r *mpi.Rank) {
					coll.Alltoall(r, scaleSize(512<<10, cfg.Scale), cfg.Algorithm)
				})
				s.Rows = append(s.Rows, []float64{
					float64(buf), sig.Gamma, sig.Delta * 1e3,
					float64(cl.Fabric.TotalStats().Timeouts),
				})
				res.Note("buf=%dKB: %s", buf>>10, sig)
			}
			res.Series = append(res.Series, s)
			res.Note("expected: smaller buffers -> more loss/RTOs -> larger gamma and delta")
			return res
		},
	})

	// AB3: eager/rendezvous threshold vs the small-message step (the
	// Fig. 5 mechanism probe): moving the protocol switch moves the
	// non-linearity.
	register(Experiment{
		ID:    "AB3",
		Title: "Ablation: eager threshold vs small-message non-linearity (GigE)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "AB3", Title: "Ablation: eager threshold"}
			p := cluster.GigabitEthernet()
			n := 8
			s := Series{
				Name: "eager",
				Cols: []string{"eager_threshold", "msg_bytes", "measured_s"},
			}
			for _, thresh := range []int{4 << 10, 16 << 10, 64 << 10} {
				for m := 1 << 10; m <= 32<<10; m *= 2 {
					cl := cluster.Build(p, n, cfg.Seed)
					w := mpi.NewWorld(cl, mpi.Config{EagerThreshold: thresh})
					meas := coll.Measure(w, cfg.Warmup, cfg.Reps, func(r *mpi.Rank) {
						coll.Alltoall(r, m, cfg.Algorithm)
					})
					s.Rows = append(s.Rows, []float64{float64(thresh), float64(m), meas.Mean()})
				}
			}
			res.Series = append(res.Series, s)
			res.Note("expected: a cost step tracks the eager->rendezvous switch point")
			return res
		},
	})
}
