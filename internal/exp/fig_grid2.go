package exp

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/sim"
)

// GR2: the recursive multi-level grid extension. A 3-level campus →
// national → continental topology (2 nations × 2 campuses of Gigabit
// Ethernet over 10 ms campus and 40 ms continental tiers) runs
// All-to-All under three strategies across a message-size sweep
// bracketing the calibration probe; the planner predicts each
// completion time from per-cluster signatures plus one empirical WAN
// term per tier, with per-level contention factors fitted innermost
// tier first. The series reports prediction-vs-simulation error per
// strategy and whether the planner ranked the strategies as simulation
// did — now with the depth-recursive model rather than the two-level
// special case GR1 exercises.
func init() {
	register(Experiment{
		ID:    "GR2",
		Title: "Grid: 3-level hierarchy, prediction vs simulation (2 nations × 2 campuses GigE, 10/40ms WAN)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "GR2", Title: "Multi-level grid planner: prediction vs simulation"}

			p := cluster.WANTuned(cluster.GigabitEthernet()) // long-fat-pipe tuning
			nodesPer := scaleCount(3, cfg.Scale, 3)
			topo := cluster.ThreeLevel("gr2", p, 2, 2, nodesPer,
				cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond))

			pl, err := grid.NewPlanner(topo, grid.Options{
				FitN:    scaleCount(6, cfg.Scale, 6),
				SimMode: cfg.SimMode,
				Trace:   cfg.Trace,
				Reps:    cfg.Reps,
				Seed:    cfg.Seed + 2,
			})
			if err != nil {
				res.Note("planner characterization failed: %v", err)
				return res
			}
			root := pl.Model.Root
			res.Note("continental tier: α=%.1fms β_steady=%.3gs/B γ_wan=[%s]",
				root.Wan.Alpha()*1e3, root.Wan.BetaSteady(), root.Wan.Gamma)
			res.Note("campus tier:      α=%.1fms β_steady=%.3gs/B γ_wan=[%s]",
				root.Children[0].Wan.Alpha()*1e3, root.Children[0].Wan.BetaSteady(),
				root.Children[0].Wan.Gamma)
			res.Note("strategy factors: ω=[%s] κ=[%s]", pl.Model.OverlapGamma, pl.Model.GatherGamma)
			// All campuses share one profile, so one signature line.
			res.Note("cluster signature: %s", pl.Model.Leaves()[0].LAN)

			s := Series{
				Name: "pred-vs-sim-3lvl",
				Cols: []string{"msg_bytes", "strat_idx", "predicted_s", "simulated_s", "err_pct"},
			}
			agree := 0
			sizes := []int{48 << 10, 64 << 10, 80 << 10}
			for i := range sizes {
				sizes[i] = scaleSize(sizes[i], cfg.Scale/0.25) // sized for the CI default
			}
			sizes = dedupInts(sizes)
			for _, m := range sizes {
				preds := pl.Predict(m)
				predOf := map[grid.Strategy]float64{}
				for _, pr := range preds {
					predOf[pr.Strategy] = pr.T
				}
				simBest, simBestT := grid.Strategy(-1), math.Inf(1)
				for _, strat := range grid.Strategies {
					// Average over two seeds: single runs of lossy TCP
					// over a WAN are RTO-noisy.
					simT := 0.0
					simErr := false
					for _, seed := range []int64{cfg.Seed + 6, cfg.Seed + 18} {
						one, err := grid.Simulate(topo, strat, m, seed, cfg.Warmup, cfg.Reps)
						if err != nil {
							res.Note("m=%d %v: simulation failed: %v", m, strat, err)
							simErr = true
							break
						}
						simT += one / 2
					}
					if simErr {
						continue
					}
					pred := predOf[strat]
					errPct := 100 * (pred/simT - 1)
					s.Rows = append(s.Rows, []float64{
						float64(m), float64(strat), pred, simT, errPct,
					})
					if simT < simBestT {
						simBest, simBestT = strat, simT
					}
				}
				best := preds[0]
				if best.Strategy == simBest {
					agree++
					res.Note("m=%d: planner and simulation agree on %v", m, best.Strategy)
				} else {
					res.Note("m=%d: planner picked %v, simulation preferred %v", m, best.Strategy, simBest)
				}
			}
			res.Series = append(res.Series, s)
			res.Note("strategies: 0=flat-direct 1=hier-gather 2=hier-direct")
			res.Note("planner/simulation best-strategy agreement: %d/%d sizes", agree, len(sizes))
			return res
		},
	})
}
