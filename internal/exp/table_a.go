package exp

import (
	"repro/internal/cluster"
)

// TA: the per-network contention signature table — the paper's headline
// quantitative results, scattered through Section 8:
//
//	Fast Ethernet:    γ = 1.0195,  δ = 8.23 ms, M = 2 kB  (n' = 24)
//	Gigabit Ethernet: γ = 4.3628,  δ = 4.93 ms, M = 8 kB  (n' = 40)
//	Myrinet:          γ = 2.49754, δ ≈ 0               (n' = 24)
func init() {
	register(Experiment{
		ID:    "TA",
		Title: "Table A: contention signatures (γ, δ, M) of the three networks",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "TA", Title: "Table A"}
			rows := []struct {
				profile    cluster.Profile
				fitN       int
				paperGamma float64
				paperDelta float64 // ms
			}{
				{cluster.FastEthernet(), 24, 1.0195, 8.23},
				{cluster.GigabitEthernet(), 40, 4.3628, 4.93},
				{cluster.Myrinet(), 24, 2.49754, 0},
			}
			s := Series{
				Name: "signatures",
				Cols: []string{
					"profile_idx", "fit_n", "alpha_us", "beta_ns_per_B",
					"gamma", "delta_ms", "M_bytes", "paper_gamma", "paper_delta_ms",
				},
			}
			for i, row := range rows {
				n := scaleCount(row.fitN, cfg.Scale, 8)
				h, _, sig, _, err := fitProfile(row.profile, n, cfg)
				if err != nil {
					res.Note("%s: fit failed: %v", row.profile.Name, err)
					continue
				}
				s.Rows = append(s.Rows, []float64{
					float64(i), float64(n), h.Alpha * 1e6, h.Beta * 1e9,
					sig.Gamma, sig.Delta * 1e3, float64(sig.M),
					row.paperGamma, row.paperDelta,
				})
				res.Note("%s: %s | %s | paper: γ=%.4f δ=%.2fms",
					row.profile.Name, h, sig, row.paperGamma, row.paperDelta)
			}
			res.Series = append(res.Series, s)
			res.Note("row order: 0=fast-ethernet 1=gigabit-ethernet 2=myrinet")
			return res
		},
	})
}
