package exp

import (
	"repro/internal/cluster"
)

// errorExperiment implements the Figures 8/11/14 pattern: fit the
// signature at n′, then report the estimation error
// (measured/estimated − 1)·100% as a function of the process count for
// the paper's four message sizes (128 kB to 1 MB).
func errorExperiment(id, title string, profile func() cluster.Profile, fitN int, gridN []int) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			p := profile()
			n := scaleCount(fitN, cfg.Scale, 8)
			res := Result{ID: id, Title: title}
			_, _, sig, _, err := fitProfile(p, n, cfg)
			if err != nil {
				res.Note("fit failed: %v", err)
				return res
			}
			res.Note("signature fitted at n'=%d: %s", n, sig)

			sizes := []int{128 << 10, 256 << 10, 512 << 10, 1 << 20}
			for i := range sizes {
				sizes[i] = scaleSize(sizes[i], cfg.Scale)
			}
			sizes = dedupInts(sizes)
			s := Series{
				Name: "error",
				Cols: []string{"nodes", "msg_bytes", "measured_s", "estimated_s", "err_pct"},
			}
			var satErrSum float64
			var satErrN int
			for gi, gn := range gridN {
				gn = scaleCount(gn, cfg.Scale, 4)
				if gn < 2 {
					continue
				}
				for si, m := range sizes {
					meas := alltoallPoint(p, gn, m, cfg, int64(1000+gi*37+si*7))
					pred := sig.Predict(gn, m)
					errPct := (meas/pred - 1) * 100
					s.Rows = append(s.Rows, []float64{
						float64(gn), float64(m), meas, pred, errPct,
					})
					if gn >= n { // saturated region: the model's domain
						if errPct < 0 {
							satErrSum -= errPct
						} else {
							satErrSum += errPct
						}
						satErrN++
					}
				}
			}
			res.Series = append(res.Series, s)
			if satErrN > 0 {
				res.Note("mean |error| in the saturated region (n >= n'): %.1f%%", satErrSum/float64(satErrN))
			}
			res.Note("paper: error usually below 10%% once the network is saturated")
			return res
		},
	}
}

func init() {
	register(errorExperiment("F08",
		"Fig. 8: estimation error on Fast Ethernet vs process count",
		cluster.FastEthernet, 24, []int{8, 12, 16, 20, 24, 32, 40}))
	register(errorExperiment("F11",
		"Fig. 11: estimation error on Gigabit Ethernet vs process count",
		cluster.GigabitEthernet, 40, []int{8, 16, 24, 32, 40, 50}))
	register(errorExperiment("F14",
		"Fig. 14: estimation error on Myrinet vs process count",
		cluster.Myrinet, 24, []int{8, 16, 24, 32, 40, 50}))
}
