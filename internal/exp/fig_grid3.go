package exp

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/grid"
	"repro/internal/sim"
)

// GR3: bandwidth-aware coordinator selection on a heterogeneous grid.
// The topology is the hetero-3lvl shape — 2 nations × 2 campuses of
// Gigabit Ethernet over 10 ms campus and 40 ms continental tiers, with
// every campus's lowest rank degraded to a legacy 100 Mb access port.
// The default hierarchical relay serializes each campus's gather incast
// and aggregated WAN exchange through exactly that port. The planner
// probes per-node uplink headroom during characterization, selects
// coordinators (and a split factor) by predicted cost, and the
// experiment validates the choice two ways: the selected plan's
// simulated All-to-All time against the lowest-rank default, and
// prediction-vs-simulation agreement for the strategy ranking with the
// selection applied.
func init() {
	register(Experiment{
		ID:    "GR3",
		Title: "Grid: bandwidth-aware coordinator selection (hetero 2×2 GigE, degraded rank-0 NICs, 10/40ms WAN)",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "GR3", Title: "Coordinator selection: degraded-port avoidance, selected vs default"}

			p := cluster.WANTuned(cluster.GigabitEthernet())
			p.Name = "gigabit-ethernet-mixed-nics"
			p.NodeLinkRates = []int64{12_500_000} // rank 0 of each campus on 100 Mb
			nodesPer := scaleCount(4, cfg.Scale/0.25, 3)
			topo := cluster.ThreeLevel("gr3", p, 2, 2, nodesPer,
				cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond))

			pl, err := grid.NewPlanner(topo, grid.Options{
				FitN:    scaleCount(6, cfg.Scale, 6),
				SimMode: cfg.SimMode,
				Trace:   cfg.Trace,
				Reps:    cfg.Reps,
				Seed:    cfg.Seed + 3,
			})
			if err != nil {
				res.Note("planner characterization failed: %v", err)
				return res
			}
			for l, rates := range pl.Headroom {
				res.Note("campus %d probed headroom: rank0=%.0f MB/s others≈%.0f MB/s",
					l, rates[0]/1e6, rates[len(rates)-1]/1e6)
			}

			m := scaleSize(48<<10, cfg.Scale/0.25)
			choices, err := pl.SelectCoordinators(m)
			if err != nil {
				res.Note("coordinator selection failed: %v", err)
				return res
			}
			nonDefault := 0
			for _, c := range choices {
				res.Note("coordinator choice, %v", c)
				if !c.Default {
					nonDefault++
				}
			}
			res.Note("coordinator selection: %d/%d campuses moved off the lowest rank", nonDefault, len(choices))

			// Selected plan vs lowest-rank default, simulated (averaged
			// over seeds: lossy TCP over a WAN is RTO-noisy).
			win := Series{
				Name: "coord-selection-win",
				Cols: []string{"msg_bytes", "hg_default_s", "hg_selected_s", "speedup_pct"},
			}
			defT, selT := 0.0, 0.0
			seeds := []int64{cfg.Seed + 6, cfg.Seed + 18}
			for _, seed := range seeds {
				d, err := grid.Simulate(topo, grid.HierGather, m, seed, cfg.Warmup, cfg.Reps)
				if err != nil {
					res.Note("default simulation failed: %v", err)
					return res
				}
				s, err := grid.SimulateSpec(topo, pl.PlanSpec(), coll.HierGather, m, seed, cfg.Warmup, cfg.Reps)
				if err != nil {
					res.Note("selected simulation failed: %v", err)
					return res
				}
				defT += d / float64(len(seeds))
				selT += s / float64(len(seeds))
			}
			win.Rows = append(win.Rows, []float64{float64(m), defT, selT, 100 * (defT/selT - 1)})
			res.Note("hier-gather at %d B: default %.3fs, selected %.3fs (%.0f%% faster)",
				m, defT, selT, 100*(defT/selT-1))

			// Ranking acceptance with the selection applied: predictions
			// against simulation per strategy, hierarchical strategies
			// running the selected plan.
			s := Series{
				Name: "pred-vs-sim-selected",
				Cols: []string{"msg_bytes", "strat_idx", "predicted_s", "simulated_s", "err_pct"},
			}
			preds := pl.Predict(m)
			predOf := map[grid.Strategy]float64{}
			for _, pr := range preds {
				predOf[pr.Strategy] = pr.T
			}
			simBest, simBestT := grid.Strategy(-1), math.Inf(1)
			for _, strat := range grid.Strategies {
				simT := 0.0
				for _, seed := range seeds {
					var one float64
					var err error
					if alg, ok := grid.DescribeStrategy(strat); ok {
						one, err = grid.SimulateSpec(topo, pl.PlanSpec(), alg, m, seed, cfg.Warmup, cfg.Reps)
					} else {
						one, err = grid.Simulate(topo, strat, m, seed, cfg.Warmup, cfg.Reps)
					}
					if err != nil {
						res.Note("m=%d %v: simulation failed: %v", m, strat, err)
						return res
					}
					simT += one / float64(len(seeds))
				}
				pred := predOf[strat]
				s.Rows = append(s.Rows, []float64{
					float64(m), float64(strat), pred, simT, 100 * (pred/simT - 1),
				})
				if simT < simBestT {
					simBest, simBestT = strat, simT
				}
			}
			res.Series = append(res.Series, s, win)
			res.Note("strategies: 0=flat-direct 1=hier-gather 2=hier-direct")
			if preds[0].Strategy == simBest {
				res.Note("planner and simulation agree on %v", preds[0].Strategy)
			} else {
				res.Note("planner picked %v, simulation preferred %v", preds[0].Strategy, simBest)
			}
			return res
		},
	})
}
