package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment tests affordable.
func tinyConfig() Config {
	return Config{Scale: 0.05, Warmup: 0, Reps: 1, Seed: 3}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"AB1", "AB2", "AB3",
		"EX1", "EX2", "EX3",
		"F02", "F03", "F04", "F05", "F06", "F07", "F08",
		"F09", "F10", "F11", "F12", "F13", "F14", "GR1", "GR2", "GR3", "GR4", "GR5", "GR6", "GR7", "TA",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("F09"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestMessageSweepScaling(t *testing.T) {
	full := messageSweep(1.0)
	if len(full) < 8 {
		t.Fatalf("full sweep too small: %v", full)
	}
	if full[len(full)-1] != 1<<20+200<<10 {
		t.Fatalf("full sweep must reach 1.2MB, got %d", full[len(full)-1])
	}
	small := messageSweep(0.05)
	if small[len(small)-1] >= full[len(full)-1] {
		t.Fatal("scaled sweep not smaller")
	}
	for i := 1; i < len(small); i++ {
		if small[i] <= small[i-1] {
			t.Fatalf("sweep not strictly increasing: %v", small)
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	if scaleSize(1<<20, 0.5) != 1<<19 {
		t.Fatal("scaleSize wrong")
	}
	if scaleSize(100, 0.001) != 256 {
		t.Fatal("scaleSize floor wrong")
	}
	if scaleCount(40, 0.25, 8) != 10 {
		t.Fatal("scaleCount wrong")
	}
	if scaleCount(40, 0.1, 8) != 8 {
		t.Fatal("scaleCount floor wrong")
	}
}

func TestFitExperimentRuns(t *testing.T) {
	e, err := ByID("F12") // Myrinet is the fastest profile to simulate
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(tinyConfig())
	if len(res.Series) == 0 {
		t.Fatalf("no series: notes=%v", res.Notes)
	}
	s := res.Series[0]
	if len(s.Rows) < 4 {
		t.Fatalf("too few rows: %d", len(s.Rows))
	}
	for _, row := range s.Rows {
		measured, lb := row[1], row[2]
		if measured <= 0 || lb <= 0 {
			t.Fatalf("nonpositive times in row %v", row)
		}
		if measured < lb*0.8 {
			t.Fatalf("measured %v implausibly below lower bound %v", measured, lb)
		}
	}
	joined := strings.Join(res.Notes, "\n")
	if !strings.Contains(joined, "signature") {
		t.Fatalf("notes missing signature: %v", res.Notes)
	}
}

func TestGridExperimentRuns(t *testing.T) {
	for id, wantNote := range map[string]string{"GR1": "WAN", "GR2": "tier", "GR3": "coordinator", "GR4": "patterns", "GR5": "scalar"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res := e.Run(tinyConfig())
		if len(res.Series) == 0 {
			t.Fatalf("%s: no series: notes=%v", id, res.Notes)
		}
		s := res.Series[0]
		if len(s.Rows) == 0 {
			t.Fatalf("%s: empty prediction-vs-simulation series", id)
		}
		predCol, simCol := -1, -1
		for i, c := range s.Cols {
			switch c {
			case "predicted_s", "pred_curve_s":
				predCol = i
			case "simulated_s":
				simCol = i
			}
		}
		if predCol < 0 || simCol < 0 {
			t.Fatalf("%s: series lacks predicted_s/simulated_s columns: %v", id, s.Cols)
		}
		for _, row := range s.Rows {
			pred, sim := row[predCol], row[simCol]
			if pred <= 0 || sim <= 0 {
				t.Fatalf("%s: nonpositive times in row %v", id, row)
			}
		}
		joined := ""
		for _, n := range res.Notes {
			joined += n + "\n"
		}
		if !strings.Contains(joined, wantNote) {
			t.Fatalf("%s: notes missing characterization %q: %v", id, wantNote, res.Notes)
		}
	}
}

func TestRenderText(t *testing.T) {
	r := Result{
		ID: "X", Title: "demo",
		Series: []Series{{
			Name: "s",
			Cols: []string{"a", "b"},
			Rows: [][]float64{{1, 2.5}, {3, 4.25}},
		}},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	WriteText(&buf, r)
	out := buf.String()
	for _, want := range []string{"X", "demo", "a", "b", "2.5", "4.25", "# hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	WriteCSV(&buf, r)
	if !strings.Contains(buf.String(), "a,b") || !strings.Contains(buf.String(), "1,2.5") {
		t.Fatalf("csv output wrong:\n%s", buf.String())
	}
}

func TestFormatCell(t *testing.T) {
	if formatCell(42) != "42" {
		t.Fatalf("int formatting: %s", formatCell(42))
	}
	if formatCell(0.125) != "0.125" {
		t.Fatalf("float formatting: %s", formatCell(0.125))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale <= 0 || cfg.Reps <= 0 || cfg.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	p := PaperConfig()
	if p.Scale != 1.0 {
		t.Fatal("paper config must be full scale")
	}
}
