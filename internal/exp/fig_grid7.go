package exp

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/grid"
	"repro/internal/sim"
)

// GR7: the collective suite on grids — per-kind prediction vs
// simulation. The same two topologies GR4 validated All-to-Allv on (a
// two-level 2×GigE grid over 20 ms and a 3-level 2×2 campus grid over
// 10/40 ms) run Allgather, Broadcast and Allreduce (Config.Coll
// narrows to one kind, e.g. `atabench -exp GR7 -coll reduce-scatter`)
// under every candidate strategy (grid.StrategiesFor: the flat
// topology-oblivious kernel vs the hierarchical coordinator-relay
// plan). The planner prices each through the per-kind tier
// decomposition plus its lazily calibrated correction curve
// (Planner.PredictKind) and the experiment reports per-strategy
// prediction error and whether the kind's flat-vs-hier ranking matches
// packet-level simulation (regret-based: a pick simulating within 3% of
// the best counts, since single-digit-percent gaps are RTO noise) — the
// collective-suite analogue of GR1/GR4's
// validation, and the experiment that shows topology-aware planning
// paying off across the whole suite, not just the total exchange.
func init() {
	register(Experiment{
		ID:    "GR7",
		Title: "Grid: collective suite (allgather/broadcast/reduce/allreduce), prediction vs simulation",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "GR7", Title: "Grid planner: collective-suite prediction vs simulation"}

			kinds := []coll.Kind{coll.KindAllgather, coll.KindBroadcast, coll.KindAllreduce}
			if cfg.Coll != "" {
				k, err := coll.ParseKind(cfg.Coll)
				if err != nil {
					res.Note("bad -coll: %v", err)
					return res
				}
				if k == coll.KindAlltoallv {
					res.Note("%v is size-bound; its validation is GR4", k)
					return res
				}
				kinds = []coll.Kind{k}
			}
			m := scaleSize(64<<10, cfg.Scale/0.25)

			ge := cluster.WANTuned(cluster.GigabitEthernet())
			topos := []struct {
				name string
				topo cluster.TopoNode
			}{
				{"2lvl-2x4-wan20", cluster.Uniform("gr7-2lvl", ge, 2,
					scaleCount(4, cfg.Scale/0.25, 4), cluster.DefaultWAN(20*sim.Millisecond)).Tree()},
				{"3lvl-2x2x2-wan10/40", cluster.ThreeLevel("gr7-3lvl", ge, 2, 2,
					scaleCount(2, cfg.Scale/0.25, 2),
					cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond))},
			}

			s := Series{
				Name: "kind-vs-sim",
				Cols: []string{"topo_idx", "kind_idx", "strat_idx", "predicted_s", "simulated_s", "err_pct"},
			}
			agree, total := 0, 0
			for ti, tc := range topos {
				pl, err := grid.NewPlanner(tc.topo, grid.Options{
					FitN:    scaleCount(6, cfg.Scale, 6),
					SimMode: cfg.SimMode,
					Trace:   cfg.Trace,
					Reps:    cfg.Reps,
					Seed:    cfg.Seed + 2,
				})
				if err != nil {
					res.Note("%s: planner characterization failed: %v", tc.name, err)
					continue
				}
				for ki, kind := range kinds {
					preds, err := pl.PredictKind(kind, m)
					if err != nil {
						res.Note("%s %v: prediction failed: %v", tc.name, kind, err)
						continue
					}
					predOf := map[grid.Strategy]float64{}
					for _, pr := range preds {
						predOf[pr.Strategy] = pr.T
					}
					simOf := map[grid.Strategy]float64{}
					simBest, simBestT := grid.Strategy(-1), math.Inf(1)
					for _, strat := range grid.StrategiesFor(kind) {
						// Average over two seeds: single runs of lossy TCP
						// over a WAN are RTO-noisy.
						simT := 0.0
						simErr := false
						for _, seed := range []int64{cfg.Seed + 6, cfg.Seed + 18} {
							one, err := grid.SimulateKind(tc.topo, kind, strat, m, seed, cfg.Warmup, cfg.Reps)
							if err != nil {
								res.Note("%s %v %v: simulation failed: %v", tc.name, kind, strat, err)
								simErr = true
								break
							}
							simT += one / 2
						}
						if simErr {
							continue
						}
						pred := predOf[strat]
						errPct := 100 * (pred/simT - 1)
						s.Rows = append(s.Rows, []float64{
							float64(ti), float64(ki), float64(strat), pred, simT, errPct,
						})
						simOf[strat] = simT
						if simT < simBestT {
							simBest, simBestT = strat, simT
						}
					}
					if math.IsInf(simBestT, 1) {
						res.Note("%s %v: no successful simulations, case skipped", tc.name, kind)
						continue
					}
					total++
					best := preds[0]
					// Ranking agreement is regret-based: the planner's
					// pick counts if it simulates within 3% of the best
					// strategy — below the RTO noise floor of two-seed
					// WAN averages, where exact argmin order is chance
					// (e.g. flat and hierarchical broadcast are both one
					// WAN transfer plus local relays).
					pickT, ok := simOf[best.Strategy]
					switch {
					case ok && best.Strategy == simBest:
						agree++
						res.Note("%s %v: planner and simulation agree on %v", tc.name, kind, best.Strategy)
					case ok && pickT <= simBestT*1.03:
						agree++
						res.Note("%s %v: planner picked %v, statistically tied with simulation's %v (%.1f%% apart)",
							tc.name, kind, best.Strategy, simBest, 100*(pickT/simBestT-1))
					default:
						res.Note("%s %v: planner picked %v, simulation preferred %v",
							tc.name, kind, best.Strategy, simBest)
					}
				}
			}
			res.Series = append(res.Series, s)
			res.Note("strategies: 0=flat-direct 1=hier-gather")
			kindNames := ""
			for i, k := range kinds {
				if i > 0 {
					kindNames += " "
				}
				kindNames += k.String()
			}
			res.Note("kinds (by kind_idx): %s; per-rank contribution m=%d B", kindNames, m)
			res.Note("planner/simulation best-strategy agreement: %d/%d (topology, kind) cases", agree, total)
			return res
		},
	})
}
