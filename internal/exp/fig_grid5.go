package exp

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/sim"
)

// scalarized returns a copy of a grid model with every factor curve
// collapsed to its single value at the given size — the scalar-factor
// baseline. For `at` equal to a fitted probe size this IS the model a
// single-probe-size planner run would assemble (an exact-hit lookup
// returns the fitted point, and the probe seeds don't depend on the
// size list), so GR5 gets its baseline without re-characterizing: the
// two planners then differ in nothing but the size-indexed lookups the
// experiment measures.
func scalarized(g model.GridModel, at int) model.GridModel {
	var clone func(v *model.ModelNode) *model.ModelNode
	clone = func(v *model.ModelNode) *model.ModelNode {
		out := &model.ModelNode{
			Size: v.Size, LAN: v.LAN,
			NumCoords: v.NumCoords, CoordBeta: v.CoordBeta,
			Wan: v.Wan,
		}
		out.Wan.Gamma = model.ScalarFactor(v.Wan.Gamma.At(at))
		for _, c := range v.Children {
			out.Children = append(out.Children, clone(c))
		}
		return out
	}
	return model.GridModel{
		Root:         clone(g.Root),
		OverlapGamma: model.ScalarFactor(g.OverlapGamma.At(at)),
		GatherGamma:  model.ScalarFactor(g.GatherGamma.At(at)),
	}
}

// GR5: size-indexed factor calibration on skewed workloads. GR4
// established that with scalar factors (one 64 KiB fit reused at every
// size) the planner's ranking survives skew but single-strategy
// magnitudes drift — worst for hier-direct on the two-level topology's
// block-diagonal and hotspot matrices. GR5 reruns GR4's
// topologies × skews with the curve planner (default 8/64/256 KiB
// probe sweep) and, against the same simulations, a scalar baseline
// derived from the same characterization (every curve collapsed to its
// 64 KiB fit — exactly the single-probe-size planner's model), so the
// reported error gap isolates the size-indexed lookups: curves fitted
// where they can be measured, looked up at the effective sizes each
// matrix actually moves.
func init() {
	register(Experiment{
		ID:    "GR5",
		Title: "Grid: size-indexed factor curves vs scalar factors on skewed size matrices",
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			res := Result{ID: "GR5", Title: "Factor curves: magnitude error vs the scalar-factor baseline"}

			ge := cluster.WANTuned(cluster.GigabitEthernet())
			topos := []struct {
				name string
				topo cluster.TopoNode
			}{
				{"2lvl-2x4-wan20", cluster.Uniform("gr5-2lvl", ge, 2,
					scaleCount(4, cfg.Scale/0.25, 4), cluster.DefaultWAN(20*sim.Millisecond)).Tree()},
				{"3lvl-2x2x2-wan10/40", cluster.ThreeLevel("gr5-3lvl", ge, 2, 2,
					scaleCount(2, cfg.Scale/0.25, 2),
					cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond))},
			}

			s := Series{
				Name: "curve-vs-scalar",
				Cols: []string{"topo_idx", "pattern_idx", "strat_idx",
					"pred_scalar_s", "pred_curve_s", "simulated_s",
					"err_scalar_pct", "err_curve_pct"},
			}
			agree, total := 0, 0
			var scalarAbs, curveAbs []float64
			for ti, tc := range topos {
				pl, err := grid.NewPlanner(tc.topo, grid.Options{
					FitN:    scaleCount(6, cfg.Scale, 6),
					SimMode: cfg.SimMode,
					Trace:   cfg.Trace,
					Reps:    cfg.Reps,
					Seed:    cfg.Seed + 2,
				})
				if err != nil {
					res.Note("%s: planner characterization failed: %v", tc.name, err)
					continue
				}
				scalar := scalarized(pl.Model, 64<<10) // the GR4 baseline
				res.Note("%s scalar: γ_wan(root)=[%s] ω=[%s] κ=[%s]", tc.name,
					scalar.Root.Wan.Gamma, scalar.OverlapGamma, scalar.GatherGamma)
				res.Note("%s curves: γ_wan(root)=[%s] ω=[%s] κ=[%s]", tc.name,
					pl.Model.Root.Wan.Gamma, pl.Model.OverlapGamma, pl.Model.GatherGamma)

				workloads := cluster.SkewedWorkloads(tc.topo)
				names := make([]string, 0, len(workloads))
				for name := range workloads {
					names = append(names, name)
				}
				sort.Strings(names)
				for pi, name := range names {
					sz := coll.SizeMatrixFromRows(workloads[name])
					scalarOf := map[grid.Strategy]float64{
						grid.FlatDirect: scalar.PredictFlatV(sz),
						grid.HierGather: scalar.PredictHierGatherV(sz),
						grid.HierDirect: scalar.PredictHierDirectV(sz),
					}
					preds := pl.PredictV(sz)
					curveOf := map[grid.Strategy]float64{}
					for _, pr := range preds {
						curveOf[pr.Strategy] = pr.T
					}
					simBest, simBestT := grid.Strategy(-1), math.Inf(1)
					for _, strat := range grid.Strategies {
						// Average over two seeds: single runs of lossy
						// TCP over a WAN are RTO-noisy.
						simT := 0.0
						simErr := false
						for _, seed := range []int64{cfg.Seed + 6, cfg.Seed + 18} {
							one, err := grid.SimulateV(tc.topo, strat, sz, seed, cfg.Warmup, cfg.Reps)
							if err != nil {
								res.Note("%s %s %v: simulation failed: %v", tc.name, name, strat, err)
								simErr = true
								break
							}
							simT += one / 2
						}
						if simErr {
							continue
						}
						errS := 100 * (scalarOf[strat]/simT - 1)
						errC := 100 * (curveOf[strat]/simT - 1)
						scalarAbs = append(scalarAbs, math.Abs(errS))
						curveAbs = append(curveAbs, math.Abs(errC))
						s.Rows = append(s.Rows, []float64{
							float64(ti), float64(pi), float64(strat),
							scalarOf[strat], curveOf[strat], simT, errS, errC,
						})
						if simT < simBestT {
							simBest, simBestT = strat, simT
						}
						// The two cases GR4 flags as scalar drift: both on
						// the two-level topology, both hier-direct.
						if ti == 0 && strat == grid.HierDirect {
							res.Note("%s %s %v (GR4-flagged): |err| scalar %.0f%% → curve %.0f%%",
								tc.name, name, strat, math.Abs(errS), math.Abs(errC))
						}
					}
					if math.IsInf(simBestT, 1) {
						res.Note("%s %s: no successful simulations, case skipped", tc.name, name)
						continue
					}
					total++
					if preds[0].Strategy == simBest {
						agree++
					} else {
						res.Note("%s %s: curve planner picked %v, simulation preferred %v",
							tc.name, name, preds[0].Strategy, simBest)
					}
				}
			}
			res.Series = append(res.Series, s)
			mean := func(v []float64) float64 {
				if len(v) == 0 {
					return 0
				}
				t := 0.0
				for _, x := range v {
					t += x
				}
				return t / float64(len(v))
			}
			res.Note("strategies: 0=flat-direct 1=hier-gather 2=hier-direct")
			res.Note("patterns: 0=block-diagonal (16k local / 64k cross) 1=hotspot-row (48k base, rank 0 ×4)")
			res.Note("mean |err|: scalar %.0f%% vs curves %.0f%% over %d (topology, matrix, strategy) rows",
				mean(scalarAbs), mean(curveAbs), len(scalarAbs))
			res.Note("curve-planner/simulation best-strategy agreement: %d/%d cases", agree, total)
			return res
		},
	})
}
