package exp

import (
	"repro/internal/cluster"
	"repro/internal/model"
)

// fitExperiment implements the Figures 6/9/12 pattern: measure the
// All-to-All on one network at the paper's sample process count n′,
// fit the contention signature, and emit measured vs lower bound vs
// prediction across the message sweep.
func fitExperiment(id, title string, profile func() cluster.Profile, paperN int, paperGamma, paperDeltaMS float64) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			p := profile()
			n := scaleCount(paperN, cfg.Scale, 8)
			res := Result{ID: id, Title: title}
			h, curve, sig, rep, err := fitProfile(p, n, cfg)
			if err != nil {
				res.Note("fit failed: %v", err)
				return res
			}
			s := Series{
				Name: "fit",
				Cols: []string{"msg_bytes", "measured_s", "lower_bound_s", "prediction_s", "ratio_vs_lb"},
			}
			for _, c := range curve {
				lb := model.LowerBound(h, n, c.M)
				s.Rows = append(s.Rows, []float64{
					float64(c.M), c.Mean, lb, sig.Predict(n, c.M), c.Mean / lb,
				})
			}
			res.Series = append(res.Series, s)
			res.Note("hockney: %s", h)
			res.Note("signature: %s", sig)
			res.Note("fit MAPE: %.1f%%", rep.MAPE*100)
			res.Note("paper reports: γ=%.4f δ=%.2fms at n'=%d (shape comparison only)",
				paperGamma, paperDeltaMS, paperN)
			return res
		},
	}
}

func init() {
	register(fitExperiment("F06",
		"Fig. 6: fitting MPI_Alltoall on Fast Ethernet (24 machines)",
		cluster.FastEthernet, 24, 1.0195, 8.23))
	register(fitExperiment("F09",
		"Fig. 9: fitting MPI_Alltoall on Gigabit Ethernet (40 machines)",
		cluster.GigabitEthernet, 40, 4.3628, 4.93))
	register(fitExperiment("F12",
		"Fig. 12: fitting MPI_Alltoall on Myrinet (24 processes)",
		cluster.Myrinet, 24, 2.49754, 0))
}
