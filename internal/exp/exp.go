// Package exp defines and runs the paper's evaluation: one experiment
// per figure (F2–F14), the signature parameter table (TA), the
// ablations called out in DESIGN.md (AB1–AB3), the extensions
// (EX1–EX3), and the grid experiments (GR1 two-level, GR2 3-level, GR3
// coordinator selection, GR4 irregular All-to-Allv, GR5 size-indexed
// factor curves, GR6 failover and replan resilience, GR7 the collective
// suite's sim-vs-model ranking agreement). Each experiment returns
// tabular Series that cmd/atabench prints and bench_test.go reports.
//
// Experiments accept a Config whose Scale field shrinks grids and
// message sizes so the full suite stays affordable in CI; Scale = 1
// reproduces the paper's grids (message sweeps to 1.2 MB, up to 50
// processes).
package exp

import (
	"fmt"
	"sort"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/sim"
)

// Config controls experiment execution.
type Config struct {
	// Scale multiplies grid density and maximum message sizes; 1.0 is
	// the paper's scale. Values in (0, 1) shrink the grids.
	Scale float64
	// Warmup and Reps control the per-point measurement protocol (the
	// paper averaged 100 runs; simulation variance is lower, so small
	// values suffice).
	Warmup int
	Reps   int
	// Seed drives every simulation in the experiment.
	Seed int64
	// Algorithm is the All-to-All implementation under test. The
	// default, PostAll, matches the nonblocking post-everything direct
	// exchange of the LAM/MPICH implementations the paper measured.
	Algorithm coll.Algorithm
	// Trace, when non-nil, collects the grid experiments' planner
	// characterization traces (see grid.Options.Trace); nil disables
	// tracing.
	Trace *obs.Collector
	// SimMode selects the simulation engine for the grid experiments'
	// planner characterizations (see grid.Options.SimMode): the default
	// sim.ModePacket, or sim.ModeFluid for analytic pricing of large
	// WAN transfers.
	SimMode sim.Mode
	// Coll, when non-empty, restricts the collective-suite experiment
	// (GR7) to one kind (a coll.ParseKind name, e.g. "allreduce");
	// empty runs GR7's default kind set.
	Coll string
}

// DefaultConfig is the CI-affordable configuration.
func DefaultConfig() Config {
	return Config{Scale: 0.25, Warmup: 1, Reps: 2, Seed: 1}
}

// PaperConfig reproduces the paper's grids.
func PaperConfig() Config {
	return Config{Scale: 1.0, Warmup: 1, Reps: 3, Seed: 1}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if c.Warmup == 0 {
		c.Warmup = d.Warmup
	}
	if c.Reps == 0 {
		c.Reps = d.Reps
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Series is one table of results: a name, column headers and rows.
type Series struct {
	Name string
	Cols []string
	Rows [][]float64
}

// Result is an executed experiment.
type Result struct {
	ID     string
	Title  string
	Series []Series
	Notes  []string
}

// Note appends a formatted annotation to the result.
func (r *Result) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment couples an identifier with a runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) Result
}

// registry of all experiments, populated by init functions in the
// per-figure files.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// ---- shared helpers ----

// scaleSize scales a byte count, keeping at least 256 bytes.
func scaleSize(m int, scale float64) int {
	s := int(float64(m) * scale)
	if s < 256 {
		s = 256
	}
	return s
}

// scaleCount scales an integer count, keeping at least lo.
func scaleCount(n int, scale float64, lo int) int {
	s := int(float64(n) * scale)
	if s < lo {
		s = lo
	}
	return s
}

// messageSweep returns the paper's message-size sweep (to 1.2 MB),
// scaled. It always contains enough points for a signature fit.
func messageSweep(scale float64) []int {
	base := []int{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 128 << 10,
		256 << 10, 512 << 10, 768 << 10, 1 << 20, 1<<20 + 200<<10,
	}
	out := make([]int, len(base))
	for i, m := range base {
		out[i] = scaleSize(m, scale)
	}
	return dedupInts(out)
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// CurvePoint is one measured (message size → completion time) point.
type CurvePoint struct {
	M    int
	Mean float64
	Min  float64
	Max  float64
}

// alltoallCurve measures the All-to-All completion time across a message
// size sweep at fixed process count. Each point runs on a fresh cluster
// (seeded deterministically) with warmup repetitions.
func alltoallCurve(p cluster.Profile, n int, sizes []int, cfg Config) []CurvePoint {
	out := make([]CurvePoint, 0, len(sizes))
	for i, m := range sizes {
		cl := cluster.Build(p, n, cfg.Seed+int64(i)*101)
		w := mpi.NewWorld(cl, mpi.Config{})
		meas := coll.Measure(w, cfg.Warmup, cfg.Reps, func(r *mpi.Rank) {
			coll.Alltoall(r, m, cfg.Algorithm)
		})
		out = append(out, CurvePoint{M: m, Mean: meas.Mean(), Min: meas.Min(), Max: meas.Max()})
	}
	return out
}

// alltoallPoint measures a single (n, m) combination.
func alltoallPoint(p cluster.Profile, n, m int, cfg Config, seedShift int64) float64 {
	cl := cluster.Build(p, n, cfg.Seed+seedShift)
	w := mpi.NewWorld(cl, mpi.Config{})
	meas := coll.Measure(w, cfg.Warmup, cfg.Reps, func(r *mpi.Rank) {
		coll.Alltoall(r, m, cfg.Algorithm)
	})
	return meas.Mean()
}

// hockneyFor calibrates the Hockney parameters for a profile.
func hockneyFor(p cluster.Profile, cfg Config) model.Hockney {
	return calib.PingPong(p, mpi.Config{}, cfg.Seed, calib.PingPongConfig{Reps: 3})
}

// fitProfile calibrates, measures a sweep at n′ and fits the signature —
// the full Section 7 procedure for one network.
func fitProfile(p cluster.Profile, n int, cfg Config) (model.Hockney, []CurvePoint, model.Signature, signature.Report, error) {
	h := hockneyFor(p, cfg)
	curve := alltoallCurve(p, n, messageSweep(cfg.Scale), cfg)
	samples := make([]signature.Sample, len(curve))
	for i, c := range curve {
		samples[i] = signature.Sample{M: c.M, T: c.Mean}
	}
	sig, rep, err := signature.Fit(h, n, samples, signature.Options{})
	return h, curve, sig, rep, err
}
