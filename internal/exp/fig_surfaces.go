package exp

import (
	"repro/internal/cluster"
)

// surfaceExperiment implements the Figures 7/10/13 pattern: fit the
// signature at the paper's sample count n′, then predict and measure the
// All-to-All across a (process count × message size) grid, demonstrating
// extrapolation across n from a single fit.
func surfaceExperiment(id, title string, profile func() cluster.Profile, fitN int, gridN []int) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(cfg Config) Result {
			cfg = cfg.withDefaults()
			p := profile()
			n := scaleCount(fitN, cfg.Scale, 8)
			res := Result{ID: id, Title: title}
			h, _, sig, _, err := fitProfile(p, n, cfg)
			if err != nil {
				res.Note("fit failed: %v", err)
				return res
			}
			res.Note("hockney: %s", h)
			res.Note("signature fitted at n'=%d: %s", n, sig)

			sizes := surfaceSizes(cfg.Scale)
			s := Series{
				Name: "surface",
				Cols: []string{"nodes", "msg_bytes", "measured_s", "prediction_s", "rel_err_pct"},
			}
			for gi, gn := range gridN {
				gn = scaleCount(gn, cfg.Scale, 4)
				if gn < 2 {
					continue
				}
				for si, m := range sizes {
					meas := alltoallPoint(p, gn, m, cfg, int64(gi*131+si*17))
					pred := sig.Predict(gn, m)
					s.Rows = append(s.Rows, []float64{
						float64(gn), float64(m), meas, pred, (meas/pred - 1) * 100,
					})
				}
			}
			res.Series = append(res.Series, s)
			return res
		},
	}
}

// surfaceSizes is a sparser sweep than the fit experiments use, keeping
// the 2-D grids affordable.
func surfaceSizes(scale float64) []int {
	base := []int{64 << 10, 256 << 10, 512 << 10, 1 << 20}
	out := make([]int, len(base))
	for i, m := range base {
		out[i] = scaleSize(m, scale)
	}
	return dedupInts(out)
}

func init() {
	register(surfaceExperiment("F07",
		"Fig. 7: performance prediction surface on Fast Ethernet",
		cluster.FastEthernet, 24, []int{8, 16, 24, 32, 40}))
	register(surfaceExperiment("F10",
		"Fig. 10: performance prediction surface on Gigabit Ethernet",
		cluster.GigabitEthernet, 40, []int{8, 16, 24, 40, 50}))
	register(surfaceExperiment("F13",
		"Fig. 13: performance prediction surface on Myrinet",
		cluster.Myrinet, 24, []int{8, 16, 24, 40, 50}))
}
