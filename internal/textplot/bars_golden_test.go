package textplot

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden renders")

// TestBarsGoldenRender pins the exact rendered output of HBar and
// Intervals over the awkward inputs the scaling math must survive —
// zero-width ranges, negative and non-finite values, a single sample —
// so any drift in layout, padding, or value formatting shows up as a
// byte diff instead of a subtly garbled diagnostics panel.
func TestBarsGoldenRender(t *testing.T) {
	var b strings.Builder
	section := func(name, body string) {
		b.WriteString("== " + name + " ==\n")
		b.WriteString(body)
		b.WriteString("\n")
	}

	section("hbar basic", HBar("phase timings",
		[]string{"intra", "leaf-gather", "tier-1-exchange"},
		[]float64{0.5, 2.0, 1.25}, 20))
	section("hbar single sample", HBar("one bar",
		[]string{"only"}, []float64{3.5}, 12))
	section("hbar negative and zero", HBar("mixed",
		[]string{"neg", "zero", "pos"}, []float64{-1.5, 0, 4}, 16))
	section("hbar all nonpositive", HBar("flat",
		[]string{"a", "b"}, []float64{-2, 0}, 10))
	section("hbar nonfinite", HBar("nf",
		[]string{"nan", "inf", "ok"}, []float64{math.NaN(), math.Inf(1), 1}, 10))
	section("hbar empty", HBar("void", nil, nil, 10))

	section("intervals basic", Intervals("probe dispersion",
		[]string{"γ@64k", "ω@64k", "κ@64k"},
		[]float64{0.10, 0.30, 0.20},
		[]float64{0.15, 0.50, 0.45},
		[]float64{0.20, 0.90, 0.70}, 24))
	section("intervals single sample", Intervals("one row",
		[]string{"solo"}, []float64{1.5}, []float64{1.5}, []float64{1.5}, 12))
	section("intervals zero width", Intervals("points",
		[]string{"a", "b"}, []float64{2, 2}, []float64{2, 2}, []float64{2, 2}, 10))
	section("intervals negative range", Intervals("negatives",
		[]string{"below", "cross"},
		[]float64{-3, -1}, []float64{-2.5, 0}, []float64{-2, 1}, 20))
	section("intervals partial nonfinite", Intervals("partial",
		[]string{"bad", "good"},
		[]float64{math.NaN(), 1}, []float64{math.NaN(), 2}, []float64{math.NaN(), 3}, 14))
	section("intervals empty", Intervals("void", nil, nil, nil, nil, 10))

	got := b.String()
	golden := filepath.Join("testdata", "bars_render.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("rendered output drifted from %s (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
