package textplot

import (
	"fmt"
	"math"
	"strings"
)

// HBar renders a labeled horizontal bar chart — one bar per value,
// scaled to the largest — used for per-phase timing breakdowns.
// Labels and values must have equal length; non-finite or negative
// values render as empty bars. Values are annotated with %.3g.
func HBar(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(labels) == 0 || len(labels) != len(values) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	lw := labelWidth(labels)
	max := 0.0
	for _, v := range values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
			max = v
		}
	}
	for i, l := range labels {
		v := values[i]
		n := 0
		if max > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0 {
			n = int(v / max * float64(width))
			if n == 0 {
				n = 1 // nonzero values always show
			}
		}
		fmt.Fprintf(&b, "%s |%-*s| %.3g\n", padLabel(l, lw), width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Intervals renders labeled min–mid–max ranges on a shared horizontal
// axis — one row per entry, the range as a dashed segment with the mid
// marked 'o' — used for probe per-seed dispersion. All four slices
// must have equal length; rows with non-finite endpoints render empty.
func Intervals(title string, labels []string, lo, mid, hi []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(labels) == 0 || len(labels) != len(lo) || len(labels) != len(mid) || len(labels) != len(hi) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	min, max := math.Inf(1), math.Inf(-1)
	for i := range lo {
		if finite(lo[i]) && finite(hi[i]) {
			min = math.Min(min, lo[i])
			max = math.Max(max, hi[i])
		}
	}
	if math.IsInf(min, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if max == min {
		max = min + 1
	}
	col := func(v float64) int {
		c := int((v - min) / (max - min) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	lw := labelWidth(labels)
	for i, l := range labels {
		row := []byte(strings.Repeat(" ", width))
		if finite(lo[i]) && finite(hi[i]) && finite(mid[i]) {
			a, z := col(lo[i]), col(hi[i])
			for c := a; c <= z; c++ {
				row[c] = '-'
			}
			row[a], row[z] = '|', '|'
			row[col(mid[i])] = 'o'
		}
		fmt.Fprintf(&b, "%s |%s| %.3g/%.3g/%.3g\n", padLabel(l, lw), string(row), lo[i], mid[i], hi[i])
	}
	fmt.Fprintf(&b, "%s  %-*.3g%*.3g\n", padLabel("", lw), width/2, min, width-width/2, max)
	return b.String()
}

// finite reports whether v is a usable plot coordinate.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// padLabel right-pads a label to w runes. fmt's %-*s pads by byte
// count, which misaligns the Greek factor names (γ, ω, κ).
func padLabel(l string, w int) string {
	if n := len([]rune(l)); n < w {
		return l + strings.Repeat(" ", w-n)
	}
	return l
}

// labelWidth returns the widest label's rune count, for column
// alignment.
func labelWidth(labels []string) int {
	w := 0
	for _, l := range labels {
		if n := len([]rune(l)); n > w {
			w = n
		}
	}
	return w
}
