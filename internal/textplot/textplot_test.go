package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	out := Plot("demo", 40, 10, Series{
		Label: "line", Marker: '*',
		X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3},
	})
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*") {
		t.Fatalf("plot missing title or markers:\n%s", out)
	}
	if !strings.Contains(out, "line") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmptyAndNaN(t *testing.T) {
	out := Plot("empty", 40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot should say so:\n%s", out)
	}
	out = Plot("nan", 40, 10, Series{
		Label: "nan", Marker: 'x',
		X: []float64{math.NaN()}, Y: []float64{math.NaN()},
	})
	if !strings.Contains(out, "no data") {
		t.Fatalf("all-NaN plot should say no data:\n%s", out)
	}
}

func TestPlotMultipleSeriesAndExtremes(t *testing.T) {
	out := Plot("two", 50, 12,
		Series{Label: "a", Marker: 'a', X: []float64{0, 10}, Y: []float64{5, 5}},
		Series{Label: "b", Marker: 'b', X: []float64{0, 10}, Y: []float64{1, 9}},
	)
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("markers missing:\n%s", out)
	}
	// Constant series must not crash the scaler.
	out = Plot("flat", 30, 6, Series{Label: "c", Marker: 'c', X: []float64{1, 1}, Y: []float64{2, 2}})
	if !strings.Contains(out, "c") {
		t.Fatalf("flat series not plotted:\n%s", out)
	}
	// Tiny dimensions are clamped.
	out = Plot("tiny", 1, 1, Series{Label: "d", Marker: 'd', X: []float64{0, 1}, Y: []float64{0, 1}})
	if len(out) == 0 {
		t.Fatal("tiny plot empty")
	}
}
