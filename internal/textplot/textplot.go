// Package textplot renders small ASCII scatter/line plots of experiment
// series, so the figures can be eyeballed in a terminal without gnuplot.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted dataset.
type Series struct {
	Label  string
	Marker byte
	X, Y   []float64
}

// Plot renders the given series into a width×height character grid with
// simple linear axes and a legend.
func Plot(title string, width, height int, series ...Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	var any bool
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = s.Marker
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, line := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.3g ", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.3g ", minY)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "%10s%-*.4g%*.4g\n", "", (width+2)/2, minX, (width+2)-(width+2)/2, maxX)
	for _, s := range series {
		fmt.Fprintf(&b, "%12c = %s\n", s.Marker, s.Label)
	}
	return b.String()
}
