package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestHBarScalesToMax(t *testing.T) {
	out := HBar("phases", []string{"intra", "leaf-gather"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 5)) || strings.Contains(lines[1], strings.Repeat("#", 6)) {
		t.Errorf("half bar not half width: %q", lines[1])
	}
	for _, ln := range lines[1:] {
		if !strings.HasPrefix(ln, "intra") && !strings.HasPrefix(ln, "leaf-gather") {
			t.Errorf("row missing label: %q", ln)
		}
	}
}

func TestHBarSmallNonzeroShows(t *testing.T) {
	out := HBar("t", []string{"a", "b"}, []float64{0.001, 100}, 10)
	row := strings.Split(out, "\n")[1]
	if !strings.Contains(row, "#") {
		t.Errorf("tiny nonzero value rendered no bar: %q", row)
	}
}

func TestHBarDegenerate(t *testing.T) {
	for _, out := range []string{
		HBar("t", nil, nil, 10),
		HBar("t", []string{"a"}, []float64{1, 2}, 10),
	} {
		if !strings.Contains(out, "(no data)") {
			t.Errorf("degenerate input did not render (no data): %q", out)
		}
	}
	out := HBar("t", []string{"a"}, []float64{math.NaN()}, 10)
	if strings.Contains(out, "#") {
		t.Errorf("NaN value rendered a bar: %q", out)
	}
}

func TestIntervalsMarksEndpointsAndMid(t *testing.T) {
	out := Intervals("probes", []string{"ω@64k", "hd@64k"},
		[]float64{0, 2}, []float64{1, 3}, []float64{2, 4}, 21)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	row := lines[1]
	if !strings.Contains(row, "|") || !strings.Contains(row, "o") || !strings.Contains(row, "-") {
		t.Errorf("row missing endpoint/mid/segment marks: %q", row)
	}
	// Axis spans the pooled range [0, 4].
	axis := lines[3]
	if !strings.Contains(axis, "0") || !strings.Contains(axis, "4") {
		t.Errorf("axis does not show pooled range: %q", axis)
	}
	// Multibyte labels must still align the left gutter by runes.
	runeIdx := func(s string) int {
		return len([]rune(s[:strings.Index(s, "|")]))
	}
	if runeIdx(lines[1]) != runeIdx(lines[2]) {
		t.Errorf("gutter misaligned between rows:\n%q\n%q", lines[1], lines[2])
	}
}

func TestIntervalsDegenerate(t *testing.T) {
	if out := Intervals("t", []string{"a"}, []float64{1}, []float64{1}, nil, 10); !strings.Contains(out, "(no data)") {
		t.Errorf("mismatched lengths did not render (no data): %q", out)
	}
	inf := math.Inf(1)
	if out := Intervals("t", []string{"a"}, []float64{inf}, []float64{inf}, []float64{inf}, 10); !strings.Contains(out, "(no data)") {
		t.Errorf("all-non-finite did not render (no data): %q", out)
	}
	// Zero-width pooled range must not divide by zero.
	out := Intervals("t", []string{"a"}, []float64{2}, []float64{2}, []float64{2}, 10)
	if !strings.Contains(out, "o") {
		t.Errorf("point interval did not render mid marker: %q", out)
	}
}
