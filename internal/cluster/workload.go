// Canonical irregular-exchange workloads on grid topologies. Real grid
// applications rarely exchange equal blocks with every peer: a master
// rank fans out bulk state (hotspot row), or a domain decomposition
// keeps most bytes inside a cluster and trades thin halos across the
// WAN (block diagonal). These fixtures generate such per-pair byte
// matrices for any topology tree, as plain [][]int rows (rows[src][dst]
// bytes) over the tree's contiguous leaf rank blocks — the layer above
// (coll.SizeMatrixFromRows) wraps them for planning and execution, and
// GR4 validates planner rankings on them.
package cluster

import "fmt"

// UniformBytes returns the regular All-to-All byte matrix of a
// topology: every ordered pair of distinct ranks exchanges base bytes.
func UniformBytes(t TopoNode, base int) [][]int {
	n := t.TotalNodes()
	rows := emptyRows(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				rows[i][j] = base
			}
		}
	}
	return rows
}

// HotspotRowBytes returns the hotspot-row workload: every pair
// exchanges base bytes, except that rank `hot` sends factor·base to
// every peer (a master fanning out bulk state). Its inbound sizes stay
// at base, so the skew is genuinely one-directional.
func HotspotRowBytes(t TopoNode, base, hot, factor int) [][]int {
	n := t.TotalNodes()
	if hot < 0 || hot >= n {
		panic(fmt.Sprintf("cluster: hotspot rank %d outside 0..%d", hot, n-1))
	}
	if factor < 1 {
		panic(fmt.Sprintf("cluster: hotspot factor %d < 1", factor))
	}
	rows := UniformBytes(t, base)
	for j := 0; j < n; j++ {
		if j != hot {
			rows[hot][j] = base * factor
		}
	}
	return rows
}

// BlockDiagonalBytes returns the block-diagonal workload: pairs inside
// one leaf cluster exchange `local` bytes, pairs in different leaves
// exchange `remote` bytes (a domain decomposition with heavy local
// coupling and thin WAN halos when remote ≪ local — or the inverse
// when remote ≫ local, which is what stresses the aggregation
// tradeoff).
func BlockDiagonalBytes(t TopoNode, local, remote int) [][]int {
	n := t.TotalNodes()
	rows := emptyRows(n)
	leafOf := leafOfRanks(t)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if leafOf[i] == leafOf[j] {
				rows[i][j] = local
			} else {
				rows[i][j] = remote
			}
		}
	}
	return rows
}

// SkewedWorkloads returns the canonical skewed fixtures for a
// topology, keyed by name — the GR4 validation workloads, sized to sit
// in the bracket the model claims (docs/MODEL.md §6):
//
//   - "hotspot-row": a 48 KiB uniform exchange with rank 0 sending
//     4× (192 KiB) to every peer — the master-fan-out shape;
//   - "block-diagonal": 16 KiB inside a leaf cluster, 64 KiB across —
//     the cross-heavy shape that stresses the aggregation tradeoff.
func SkewedWorkloads(t TopoNode) map[string][][]int {
	return map[string][][]int{
		"hotspot-row":    HotspotRowBytes(t, 48<<10, 0, 4),
		"block-diagonal": BlockDiagonalBytes(t, 16<<10, 64<<10),
	}
}

// emptyRows allocates an n×n zero byte matrix.
func emptyRows(n int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = make([]int, n)
	}
	return rows
}

// leafOfRanks maps every rank of a topology to its leaf index, using
// the contiguous tree-order rank blocks BuildGridTree assigns.
func leafOfRanks(t TopoNode) []int {
	out := make([]int, 0, t.TotalNodes())
	for l, lf := range t.Leaves() {
		for i := 0; i < lf.Nodes; i++ {
			out = append(out, l)
		}
	}
	return out
}
