package cluster

import (
	"testing"

	"repro/internal/sim"
)

func workloadTestTree() TopoNode {
	ge := WANTuned(GigabitEthernet())
	return Group("wl", DefaultWAN(10*sim.Millisecond),
		Leaf(ge, 3),
		Group("wl-inner", DefaultWAN(5*sim.Millisecond), Leaf(ge, 2), Leaf(ge, 2)),
	)
}

func TestUniformBytes(t *testing.T) {
	rows := UniformBytes(workloadTestTree(), 100)
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for i, row := range rows {
		for j, b := range row {
			want := 100
			if i == j {
				want = 0
			}
			if b != want {
				t.Fatalf("rows[%d][%d] = %d, want %d", i, j, b, want)
			}
		}
	}
}

func TestHotspotRowBytes(t *testing.T) {
	rows := HotspotRowBytes(workloadTestTree(), 100, 2, 8)
	for j := range rows {
		if j != 2 && rows[2][j] != 800 {
			t.Fatalf("hotspot row[2][%d] = %d, want 800", j, rows[2][j])
		}
		if j != 2 && rows[j][2] != 100 {
			t.Fatalf("hotspot inbound [%d][2] = %d, want base 100", j, rows[j][2])
		}
	}
	if rows[2][2] != 0 {
		t.Fatal("hotspot diagonal must stay zero")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("hot rank out of range", func() { HotspotRowBytes(workloadTestTree(), 100, 9, 8) })
	mustPanic("factor below 1", func() { HotspotRowBytes(workloadTestTree(), 100, 0, 0) })
}

func TestBlockDiagonalBytes(t *testing.T) {
	// Leaf rank blocks in tree order: {0,1,2}, {3,4}, {5,6}.
	rows := BlockDiagonalBytes(workloadTestTree(), 800, 100)
	leafOf := []int{0, 0, 0, 1, 1, 2, 2}
	for i, row := range rows {
		for j, b := range row {
			want := 100
			switch {
			case i == j:
				want = 0
			case leafOf[i] == leafOf[j]:
				want = 800
			}
			if b != want {
				t.Fatalf("rows[%d][%d] = %d, want %d", i, j, b, want)
			}
		}
	}
}

func TestSkewedWorkloads(t *testing.T) {
	ws := SkewedWorkloads(workloadTestTree())
	for _, name := range []string{"hotspot-row", "block-diagonal"} {
		rows, ok := ws[name]
		if !ok {
			t.Fatalf("missing canonical workload %q", name)
		}
		if len(rows) != 7 {
			t.Fatalf("%s: %d rows, want 7", name, len(rows))
		}
	}
	if got := ws["hotspot-row"][0][1]; got != 4*48<<10 {
		t.Fatalf("hotspot-row[0][1] = %d, want 4×48 KiB", got)
	}
	if got := ws["hotspot-row"][1][0]; got != 48<<10 {
		t.Fatalf("hotspot-row[1][0] = %d, want base 48 KiB", got)
	}
	// Ranks 0 and 1 share leaf 0; rank 6 sits in leaf 2.
	if ws["block-diagonal"][0][1] != 16<<10 || ws["block-diagonal"][0][6] != 64<<10 {
		t.Fatal("block-diagonal local/cross entries wrong")
	}
}
