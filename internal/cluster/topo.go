package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Recursive multi-level grid topologies: grids of grids. A TopoNode is
// either a leaf — one cluster built from a Profile — or a group of
// child subtrees joined by a WAN tier with its own latency, bandwidth
// and buffering. A two-level grid is a root group of leaves; real
// deployments add tiers: campus clusters under a national backbone,
// national grids under a continental one. BuildGridTree (grid.go)
// instantiates any such tree as one simulated network, wiring border
// routers per level.

// TopoNode is one node of a grid topology tree. Exactly one of the two
// forms must be populated:
//
//   - leaf: Profile and Nodes set, Children empty — one cluster;
//   - group: Children non-empty, WAN describing the tier that joins the
//     children's border routers.
type TopoNode struct {
	// Name labels the subtree; device names are prefixed by the path of
	// child indices, so Name is informational only.
	Name string

	// Profile and Nodes describe a leaf cluster.
	Profile Profile
	Nodes   int

	// Children and WAN describe a group: subtrees joined by one WAN tier.
	Children []TopoNode
	WAN      WANConfig
}

// Leaf returns a leaf topology node: one cluster of `nodes` hosts built
// from profile p.
func Leaf(p Profile, nodes int) TopoNode {
	return TopoNode{Name: p.Name, Profile: p, Nodes: nodes}
}

// Group returns a group topology node joining children through a WAN tier.
func Group(name string, wan WANConfig, children ...TopoNode) TopoNode {
	return TopoNode{Name: name, Children: children, WAN: wan}
}

// IsLeaf reports whether t is a leaf cluster.
func (t TopoNode) IsLeaf() bool { return len(t.Children) == 0 }

// Validate checks structural consistency of the whole subtree.
func (t TopoNode) Validate() error {
	if t.IsLeaf() {
		if t.Nodes < 1 {
			return fmt.Errorf("cluster: leaf %q has %d nodes", t.Name, t.Nodes)
		}
		return nil
	}
	if t.Nodes != 0 {
		return fmt.Errorf("cluster: group %q sets Nodes", t.Name)
	}
	for _, c := range t.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalNodes sums host counts over the subtree.
func (t TopoNode) TotalNodes() int {
	if t.IsLeaf() {
		return t.Nodes
	}
	total := 0
	for _, c := range t.Children {
		total += c.TotalNodes()
	}
	return total
}

// Height returns the number of WAN tiers above the deepest leaf: 0 for
// a single cluster, 1 for a two-level grid, 2 for a 3-level grid.
func (t TopoNode) Height() int {
	h := 0
	for _, c := range t.Children {
		if ch := c.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// NumLeaves counts the leaf clusters of the subtree.
func (t TopoNode) NumLeaves() int {
	if t.IsLeaf() {
		return 1
	}
	n := 0
	for _, c := range t.Children {
		n += c.NumLeaves()
	}
	return n
}

// Leaves returns the leaf clusters of the subtree in tree order — the
// order BuildGridTree assigns host (and MPI rank) blocks.
func (t TopoNode) Leaves() []TopoNode {
	if t.IsLeaf() {
		return []TopoNode{t}
	}
	var out []TopoNode
	for _, c := range t.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Tree converts a flat two-level GridProfile into its topology tree: a
// root group whose children are the member clusters. BuildGrid routes
// through this conversion, so the flat API and explicit trees share one
// recursive build path.
func (gp GridProfile) Tree() TopoNode {
	root := TopoNode{Name: gp.Name, WAN: gp.WAN}
	for _, m := range gp.Members {
		root.Children = append(root.Children, Leaf(m.Profile, m.Nodes))
	}
	return root
}

// ThreeLevel builds a uniform 3-level topology: `tops` groups of `mids`
// clusters of `nodesPer` nodes each, clusters joined by wanLow inside a
// group and groups joined by wanHigh — the campus → national →
// continental shape.
func ThreeLevel(name string, p Profile, tops, mids, nodesPer int, wanLow, wanHigh WANConfig) TopoNode {
	root := TopoNode{Name: name, WAN: wanHigh}
	for g := 0; g < tops; g++ {
		grp := TopoNode{Name: fmt.Sprintf("%s-g%d", name, g), WAN: wanLow}
		for c := 0; c < mids; c++ {
			grp.Children = append(grp.Children, Leaf(p, nodesPer))
		}
		root.Children = append(root.Children, grp)
	}
	return root
}

// GridTrees returns canonical multi-level grid environments keyed by
// name: 3-level campus → national → continental topologies over the
// paper's platforms, WAN-tuned as GridProfiles are.
func GridTrees() map[string]TopoNode {
	ge := WANTuned(GigabitEthernet())
	fe := WANTuned(FastEthernet())

	// Campus tier: metropolitan 10 ms links; continental tier: 50 ms
	// with a fatter, star-routed backbone.
	campus := DefaultWAN(10 * sim.Millisecond)
	continental := DefaultWAN(50 * sim.Millisecond)
	continental.Rate = 125_000_000 // 1 Gbit/s backbone
	continental.Mesh = false

	// Heterogeneous NIC headroom: every campus cluster's lowest rank
	// sits on a legacy 100 Mb access port while the rest keep full
	// Gigabit headroom — the canonical fixture for bandwidth-aware
	// coordinator selection, where the default lowest-rank coordinator
	// is exactly the wrong relay for the gather incast.
	hg := ge
	hg.Name = "gigabit-ethernet-mixed-nics"
	hg.NodeLinkRates = []int64{12_500_000}

	out := map[string]TopoNode{}
	for _, t := range []TopoNode{
		ThreeLevel("ge-3lvl", ge, 2, 2, 4, campus, continental),
		ThreeLevel("fe-3lvl", fe, 2, 2, 5, campus, DefaultWAN(30*sim.Millisecond)),
		ThreeLevel("hetero-3lvl", hg, 2, 2, 4, campus, DefaultWAN(40*sim.Millisecond)),
		// Uneven continental grid: one national grid of two campuses
		// next to one flat cluster reachable only over the backbone.
		Group("mixed-3lvl", continental,
			Group("mixed-3lvl-eu", campus, Leaf(ge, 6), Leaf(ge, 4)),
			Leaf(fe, 8),
		),
	} {
		out[t.Name] = t
	}
	return out
}

// TreeByName returns the named canonical grid tree.
func TreeByName(name string) (TopoNode, error) {
	t, ok := GridTrees()[name]
	if !ok {
		return TopoNode{}, fmt.Errorf("cluster: unknown grid tree %q", name)
	}
	return t, nil
}
