package cluster

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

func TestProfilesRegistry(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"fast-ethernet", "gigabit-ethernet", "myrinet", "infiniband-like"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if p.LinkRate <= 0 || p.LinkLatency <= 0 {
			t.Fatalf("%s has invalid link parameters: %+v", name, p)
		}
	}
	if _, err := ByName("myrinet"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("token-ring"); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestProfileCharacteristics(t *testing.T) {
	fe, ge, my := FastEthernet(), GigabitEthernet(), Myrinet()
	if !(fe.LinkRate < ge.LinkRate && ge.LinkRate < my.LinkRate) {
		t.Fatal("rate ordering wrong")
	}
	if fe.Kind != transport.TCP || ge.Kind != transport.TCP {
		t.Fatal("ethernet profiles must use TCP")
	}
	if my.Kind != transport.GM || !my.Lossless {
		t.Fatal("myrinet must be lossless GM")
	}
	if fe.Leaves != 5 {
		t.Fatal("fast ethernet must model the 5-switch icluster2 topology")
	}
}

func TestBuildFlat(t *testing.T) {
	cl := Build(GigabitEthernet(), 8, 1)
	if len(cl.Hosts) != 8 || cl.Net.NumHosts() != 8 {
		t.Fatalf("host count wrong: %d", len(cl.Hosts))
	}
	if cl.Fabric.NumHosts() != 8 {
		t.Fatal("fabric size mismatch")
	}
	// Flat topology: 8 host NICs + 8 switch ports = 16 egresses.
	if got := len(cl.Net.Stats()); got != 16 {
		t.Fatalf("flat GigE egress count = %d, want 16", got)
	}
}

func TestBuildHierarchical(t *testing.T) {
	cl := Build(FastEthernet(), 24, 1)
	// 5 leaves + core: egresses = 24 hosts + 24 leaf->host + 5 uplinks
	// each way (10) = 58.
	if got := len(cl.Net.Stats()); got != 58 {
		t.Fatalf("hierarchical egress count = %d, want 58", got)
	}
}

func TestBuildHierarchicalOverflowLeaves(t *testing.T) {
	// 120 nodes exceed 5 leaves x 20: a sixth leaf must appear.
	cl := Build(FastEthernet(), 120, 1)
	// egresses: 120 + 120 + 2*6 = 252.
	if got := len(cl.Net.Stats()); got != 252 {
		t.Fatalf("overflow egress count = %d, want 252", got)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	// With balanced round-robin placement, hosts i and i+5 share a leaf
	// on the 5-leaf Fast Ethernet profile; verify via route locality:
	// traffic between same-leaf hosts must not cross the core switch.
	cl := Build(FastEthernet(), 10, 1)
	host0 := cl.Hosts[0]
	if host0.Name() == "" {
		t.Fatal("hosts must be named")
	}
	// Indirect check: the network must have exactly 2 leaves worth of
	// uplinks (10 nodes, 5 leaves -> all 5 leaves in use).
	var uplinks int
	for _, st := range cl.Net.Stats() {
		if st.Name == "core->leaf0" || st.Name == "core->leaf4" {
			uplinks++
		}
	}
	if uplinks != 2 {
		t.Fatalf("expected leaf0 and leaf4 to exist (round-robin over 5 leaves), got %d", uplinks)
	}
}

func TestBuildDeterministicAcrossCalls(t *testing.T) {
	a := Build(Myrinet(), 6, 9)
	b := Build(Myrinet(), 6, 9)
	if len(a.Net.Stats()) != len(b.Net.Stats()) {
		t.Fatal("nondeterministic topology")
	}
}

// TestNodeRate: the per-node override applies only to positive entries
// within range.
func TestNodeRate(t *testing.T) {
	p := GigabitEthernet()
	p.NodeLinkRates = []int64{12_500_000, 0}
	if got := p.NodeRate(0); got != 12_500_000 {
		t.Fatalf("NodeRate(0) = %d, want override", got)
	}
	if got := p.NodeRate(1); got != p.LinkRate {
		t.Fatalf("NodeRate(1) = %d, want LinkRate (zero entry)", got)
	}
	if got := p.NodeRate(7); got != p.LinkRate {
		t.Fatalf("NodeRate(7) = %d, want LinkRate (beyond slice)", got)
	}
}

// TestNodeLinkRatesSlowFirstHost: a built cluster wires the per-node
// NIC override into the simulated network — the same packet takes an
// order of magnitude longer to serialize out of the degraded host.
func TestNodeLinkRatesSlowFirstHost(t *testing.T) {
	p := GigabitEthernet()
	p.NodeLinkRates = []int64{12_500_000} // host 0 on a 100 Mb port
	p.RxCostBase, p.RxCostPerConn = 0, 0
	p.PortBuffer = 1 << 20 // fit the probe packet through the switch
	c := Build(p, 4, 1)
	arrive := map[int]sim.Time{}
	for _, id := range []int{1, 3} {
		id := id
		c.Net.Host(netsim.NodeID(id)).SetHandler(func(pkt *netsim.Packet) {
			arrive[id] = c.Sim.Now()
		})
	}
	const size = 125_000 // 10 ms at 100 Mb/s, 1 ms at 1 Gb/s
	c.Net.Inject(&netsim.Packet{Src: 0, Dst: 1, Size: size})
	c.Net.Inject(&netsim.Packet{Src: 2, Dst: 3, Size: size})
	c.Sim.RunUntil(sim.Second)
	if arrive[1] == 0 || arrive[3] == 0 {
		t.Fatalf("packets not delivered: %v", arrive)
	}
	// 125 kB serializes in 10 ms out of the 100 Mb port, 1 ms at 1 Gb/s.
	if arrive[1] < 10*sim.Millisecond {
		t.Fatalf("slow-NIC delivery at %v, want ≥ its 10 ms serialization", arrive[1])
	}
	if arrive[3] > 5*sim.Millisecond {
		t.Fatalf("full-rate delivery at %v, implausibly slow", arrive[3])
	}
}

// TestHeteroGridTreeFixture: the canonical heterogeneous grid exists,
// degrades each campus's lowest rank, and builds.
func TestHeteroGridTreeFixture(t *testing.T) {
	tree, err := TreeByName("hetero-3lvl")
	if err != nil {
		t.Fatal(err)
	}
	for _, lf := range tree.Leaves() {
		if lf.Profile.NodeRate(0) >= lf.Profile.NodeRate(1) {
			t.Fatalf("leaf %q: rank 0 rate %d not below rank 1 rate %d",
				lf.Profile.Name, lf.Profile.NodeRate(0), lf.Profile.NodeRate(1))
		}
	}
	g, err := BuildGridTree(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Env.Hosts); got != tree.TotalNodes() {
		t.Fatalf("built %d hosts, want %d", got, tree.TotalNodes())
	}
}
