package cluster

import (
	"testing"

	"repro/internal/transport"
)

func TestProfilesRegistry(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"fast-ethernet", "gigabit-ethernet", "myrinet", "infiniband-like"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if p.LinkRate <= 0 || p.LinkLatency <= 0 {
			t.Fatalf("%s has invalid link parameters: %+v", name, p)
		}
	}
	if _, err := ByName("myrinet"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("token-ring"); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestProfileCharacteristics(t *testing.T) {
	fe, ge, my := FastEthernet(), GigabitEthernet(), Myrinet()
	if !(fe.LinkRate < ge.LinkRate && ge.LinkRate < my.LinkRate) {
		t.Fatal("rate ordering wrong")
	}
	if fe.Kind != transport.TCP || ge.Kind != transport.TCP {
		t.Fatal("ethernet profiles must use TCP")
	}
	if my.Kind != transport.GM || !my.Lossless {
		t.Fatal("myrinet must be lossless GM")
	}
	if fe.Leaves != 5 {
		t.Fatal("fast ethernet must model the 5-switch icluster2 topology")
	}
}

func TestBuildFlat(t *testing.T) {
	cl := Build(GigabitEthernet(), 8, 1)
	if len(cl.Hosts) != 8 || cl.Net.NumHosts() != 8 {
		t.Fatalf("host count wrong: %d", len(cl.Hosts))
	}
	if cl.Fabric.NumHosts() != 8 {
		t.Fatal("fabric size mismatch")
	}
	// Flat topology: 8 host NICs + 8 switch ports = 16 egresses.
	if got := len(cl.Net.Stats()); got != 16 {
		t.Fatalf("flat GigE egress count = %d, want 16", got)
	}
}

func TestBuildHierarchical(t *testing.T) {
	cl := Build(FastEthernet(), 24, 1)
	// 5 leaves + core: egresses = 24 hosts + 24 leaf->host + 5 uplinks
	// each way (10) = 58.
	if got := len(cl.Net.Stats()); got != 58 {
		t.Fatalf("hierarchical egress count = %d, want 58", got)
	}
}

func TestBuildHierarchicalOverflowLeaves(t *testing.T) {
	// 120 nodes exceed 5 leaves x 20: a sixth leaf must appear.
	cl := Build(FastEthernet(), 120, 1)
	// egresses: 120 + 120 + 2*6 = 252.
	if got := len(cl.Net.Stats()); got != 252 {
		t.Fatalf("overflow egress count = %d, want 252", got)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	// With balanced round-robin placement, hosts i and i+5 share a leaf
	// on the 5-leaf Fast Ethernet profile; verify via route locality:
	// traffic between same-leaf hosts must not cross the core switch.
	cl := Build(FastEthernet(), 10, 1)
	host0 := cl.Hosts[0]
	if host0.Name() == "" {
		t.Fatal("hosts must be named")
	}
	// Indirect check: the network must have exactly 2 leaves worth of
	// uplinks (10 nodes, 5 leaves -> all 5 leaves in use).
	var uplinks int
	for _, st := range cl.Net.Stats() {
		if st.Name == "core->leaf0" || st.Name == "core->leaf4" {
			uplinks++
		}
	}
	if uplinks != 2 {
		t.Fatalf("expected leaf0 and leaf4 to exist (round-robin over 5 leaves), got %d", uplinks)
	}
}

func TestBuildDeterministicAcrossCalls(t *testing.T) {
	a := Build(Myrinet(), 6, 9)
	b := Build(Myrinet(), 6, 9)
	if len(a.Net.Stats()) != len(b.Net.Stats()) {
		t.Fatal("nondeterministic topology")
	}
}
