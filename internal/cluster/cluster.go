// Package cluster assembles named simulated environments mirroring the
// three platforms of the paper's evaluation (Section 8):
//
//   - Fast Ethernet  — icluster2: 5 Fast Ethernet edge switches with 20
//     nodes each behind one Gigabit Ethernet core switch, TCP transport.
//   - Gigabit Ethernet — GdX: one flat Gigabit switch, TCP transport.
//   - Myrinet — icluster2's Myrinet 2000 (one M3-E128 switch), GM
//     transport over a lossless, credit-backpressured fabric.
//
// Profiles are plain data so experiments can perturb them (buffer-size
// ablations, InfiniBand-like extension, ...).
package cluster

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Profile describes a buildable cluster environment.
type Profile struct {
	Name string
	Kind transport.Kind

	// Host link (node ↔ edge switch).
	LinkRate    int64 // bytes/s
	LinkLatency sim.Time

	// Edge switch queueing.
	PortBuffer int
	Lossless   bool

	// Optional two-level hierarchy. Leaves > 1 builds that many edge
	// switches under one core switch and assigns hosts round-robin
	// (balanced placement, as a shared cluster's scheduler produces);
	// NodesPerLeaf caps a leaf's hosts, adding leaves beyond Leaves for
	// very large node counts.
	Leaves         int
	NodesPerLeaf   int
	UplinkRate     int64
	UplinkLatency  sim.Time
	CorePortBuffer int

	// Host receive-path software cost: per-packet processing time is
	// RxCostBase + RxCostPerConn × (nodes − 1), modeling the kernel TCP
	// receive path plus a select()-based MPI progress engine whose scan
	// cost grows with the number of open connections. Zero for kernel-
	// bypass stacks (Myrinet/GM). This is what lets a network deliver
	// full bandwidth to a single ping-pong stream while collapsing
	// under the n−1 concurrent connections of an All-to-All — the
	// paper's Gigabit Ethernet phenomenology.
	RxCostBase    sim.Time
	RxCostPerConn sim.Time

	// NodeLinkRates optionally overrides LinkRate per host position:
	// host i of a built cluster (or of a grid leaf, counted within the
	// leaf) uses NodeLinkRates[i] when that entry is positive; missing
	// or zero entries keep LinkRate. This models heterogeneous NIC or
	// access-port headroom — older adapters, oversubscribed ports — the
	// grid planner probes back from the built network to steer subtree
	// coordinators away from degraded uplinks.
	NodeLinkRates []int64

	// Transport tuning.
	TCP transport.TCPConfig
	GM  transport.GMConfig
}

// NodeRate returns host i's access-link rate: the per-node override
// when present, LinkRate otherwise.
func (p Profile) NodeRate(i int) int64 {
	if i >= 0 && i < len(p.NodeLinkRates) && p.NodeLinkRates[i] > 0 {
		return p.NodeLinkRates[i]
	}
	return p.LinkRate
}

// FastEthernet returns the icluster2 Fast Ethernet profile: 100 Mbit/s
// host links on 20-port edge switches, 1 Gbit/s uplinks to a core switch.
func FastEthernet() Profile {
	return Profile{
		Name:           "fast-ethernet",
		Kind:           transport.TCP,
		LinkRate:       12_500_000, // 100 Mbit/s
		LinkLatency:    25 * sim.Microsecond,
		PortBuffer:     192 << 10,
		Leaves:         5,
		NodesPerLeaf:   20,
		UplinkRate:     125_000_000, // 1 Gbit/s
		UplinkLatency:  10 * sim.Microsecond,
		CorePortBuffer: 768 << 10,
		RxCostBase:     2 * sim.Microsecond,
		RxCostPerConn:  550 * sim.Nanosecond,
		TCP:            transport.DefaultTCPConfig(),
	}
}

// GigabitEthernet returns the GdX profile: a flat 1 Gbit/s switch.
func GigabitEthernet() Profile {
	return Profile{
		Name:          "gigabit-ethernet",
		Kind:          transport.TCP,
		LinkRate:      125_000_000,
		LinkLatency:   20 * sim.Microsecond,
		PortBuffer:    80 << 10,
		RxCostBase:    2 * sim.Microsecond,
		RxCostPerConn: 550 * sim.Nanosecond,
		TCP:           transport.DefaultTCPConfig(),
	}
}

// Myrinet returns the icluster2 Myrinet 2000 profile: a flat lossless
// 2 Gbit/s switch with small port buffers and credit backpressure.
func Myrinet() Profile {
	return Profile{
		Name:        "myrinet",
		Kind:        transport.GM,
		LinkRate:    250_000_000, // 2 Gbit/s
		LinkLatency: 4 * sim.Microsecond,
		PortBuffer:  32 << 10,
		Lossless:    true,
		GM:          transport.DefaultGMConfig(),
	}
}

// InfiniBandLike is the forward-looking profile named in the paper's
// future work: higher rate, lower latency, lossless.
func InfiniBandLike() Profile {
	return Profile{
		Name:        "infiniband-like",
		Kind:        transport.GM,
		LinkRate:    1_000_000_000, // 8 Gbit/s effective
		LinkLatency: 2 * sim.Microsecond,
		PortBuffer:  64 << 10,
		Lossless:    true,
		GM:          transport.GMConfig{MTU: 2048, HeaderSize: 20},
	}
}

// Profiles returns the canonical evaluation profiles keyed by name.
func Profiles() map[string]Profile {
	out := map[string]Profile{}
	for _, p := range []Profile{FastEthernet(), GigabitEthernet(), Myrinet(), InfiniBandLike()} {
		out[p.Name] = p
	}
	return out
}

// ByName returns the named canonical profile.
func ByName(name string) (Profile, error) {
	p, ok := Profiles()[name]
	if !ok {
		return Profile{}, fmt.Errorf("cluster: unknown profile %q", name)
	}
	return p, nil
}

// Cluster is a built environment: simulator, network, hosts and fabric.
type Cluster struct {
	Profile Profile
	Sim     *sim.Simulator
	Net     *netsim.Network
	Hosts   []*netsim.Device
	Fabric  *transport.Fabric
}

// Build instantiates a profile with the given node count and seed.
func Build(p Profile, nodes int, seed int64) *Cluster {
	s := sim.New(seed)
	nw := netsim.New(s)
	hosts := make([]*netsim.Device, nodes)
	for i := 0; i < nodes; i++ {
		hosts[i] = nw.AddHost(fmt.Sprintf("%s-n%d", p.Name, i))
	}
	buildLAN(nw, p, hosts, "")
	nw.ComputeRoutes()
	applyRxCost(p, hosts, nodes)
	fab := transport.NewFabric(nw, hosts, transport.FabricConfig{Kind: p.Kind, TCP: p.TCP, GM: p.GM})
	return &Cluster{Profile: p, Sim: s, Net: nw, Hosts: hosts, Fabric: fab}
}

// buildLAN wires hosts into p's intra-cluster switch topology (flat edge
// switch, or leaves under a core) and returns the attachment point for a
// border router: the core switch when the profile is hierarchical, the
// single edge switch otherwise. Device names are prefixed so several
// LANs can share one network.
func buildLAN(nw *netsim.Network, p Profile, hosts []*netsim.Device, prefix string) *netsim.Device {
	edgeCfg := netsim.SwitchConfig{PortBuffer: p.PortBuffer, Lossless: p.Lossless}
	link := netsim.LinkConfig{Rate: p.LinkRate, Latency: p.LinkLatency}

	nodes := len(hosts)
	leaves := p.Leaves
	if p.NodesPerLeaf > 0 {
		if need := (nodes + p.NodesPerLeaf - 1) / p.NodesPerLeaf; need > leaves {
			leaves = need
		}
	}
	// nodeLink is host i's access link, honoring per-node NIC overrides.
	nodeLink := func(i int) netsim.LinkConfig {
		l := link
		l.Rate = p.NodeRate(i)
		return l
	}
	if leaves > 1 {
		coreCfg := netsim.SwitchConfig{PortBuffer: p.CorePortBuffer, Lossless: p.Lossless}
		core := nw.AddSwitch(prefix+"core", coreCfg)
		uplink := netsim.LinkConfig{Rate: p.UplinkRate, Latency: p.UplinkLatency}
		leafSw := make([]*netsim.Device, leaves)
		for l := 0; l < leaves; l++ {
			leafSw[l] = nw.AddSwitch(fmt.Sprintf("%sleaf%d", prefix, l), edgeCfg)
			nw.Connect(leafSw[l], core, uplink)
		}
		for i, h := range hosts {
			nw.Connect(h, leafSw[i%leaves], nodeLink(i))
		}
		return core
	}
	sw := nw.AddSwitch(prefix+"sw", edgeCfg)
	for i, h := range hosts {
		nw.Connect(h, sw, nodeLink(i))
	}
	return sw
}

// applyRxCost installs the per-packet receive processing cost on each
// host, scaled by the number of open connections (conns−1 peers).
func applyRxCost(p Profile, hosts []*netsim.Device, conns int) {
	if p.RxCostBase > 0 || p.RxCostPerConn > 0 {
		cost := p.RxCostBase + sim.Time(conns-1)*p.RxCostPerConn
		for _, h := range hosts {
			h.SetRxCost(cost)
		}
	}
}
