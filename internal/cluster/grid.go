// Grid environments: several cluster Profiles composed into one
// simulated multi-cluster platform, joined by wide-area links through
// per-cluster border routers. This is the paper's natural
// production-scale extension: All-to-All across a grid, where every
// inter-cluster block crosses a shared, high-latency WAN uplink and flat
// Direct Exchange collapses.
package cluster

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// GridMember is one cluster of a grid: a profile plus its node count.
type GridMember struct {
	Profile Profile
	Nodes   int
}

// WANConfig describes the wide-area interconnect between the border
// routers of a grid.
type WANConfig struct {
	Rate    int64    // bytes/s per WAN link direction
	Latency sim.Time // one-way propagation per WAN link

	// PortBuffer is the router WAN egress buffer (tail-drop). Shallow
	// buffers relative to the bandwidth-delay product are what make the
	// uplink the grid's contention point.
	PortBuffer int

	// ProcDelay is the per-packet router forwarding delay.
	ProcDelay sim.Time

	// Mesh selects full-mesh router-to-router WAN links; false builds a
	// star through one backbone router (each inter-cluster path then
	// crosses two WAN links).
	Mesh bool
}

// DefaultWAN returns a 100 Mbit/s WAN with the given one-way latency,
// shallow router buffers and full-mesh peering.
func DefaultWAN(latency sim.Time) WANConfig {
	return WANConfig{
		Rate:       12_500_000, // 100 Mbit/s
		Latency:    latency,
		PortBuffer: 256 << 10,
		ProcDelay:  50 * sim.Microsecond,
		Mesh:       true,
	}
}

// GridProfile names a buildable multi-cluster environment. All member
// profiles must share one transport kind; the first member's transport
// tuning is used fabric-wide.
type GridProfile struct {
	Name    string
	Members []GridMember
	WAN     WANConfig
}

// TotalNodes sums the member node counts.
func (gp GridProfile) TotalNodes() int {
	total := 0
	for _, m := range gp.Members {
		total += m.Nodes
	}
	return total
}

// Uniform builds a symmetric GridProfile: clusters copies of p with
// nodesPer nodes each.
func Uniform(name string, p Profile, clusters, nodesPer int, wan WANConfig) GridProfile {
	gp := GridProfile{Name: name, WAN: wan}
	for c := 0; c < clusters; c++ {
		gp.Members = append(gp.Members, GridMember{Profile: p, Nodes: nodesPer})
	}
	return gp
}

// wanTuned widens a profile's TCP receive window for long-fat WAN pipes
// (the real-world "window scaling" tuning a grid deployment would apply).
func wanTuned(p Profile) Profile {
	p.TCP.RcvWindow = 256 << 10
	return p
}

// GridProfiles returns canonical grid environments keyed by name:
// the paper's platforms composed over 10–100 ms WANs.
func GridProfiles() map[string]GridProfile {
	fe := wanTuned(FastEthernet())
	ge := wanTuned(GigabitEthernet())
	out := map[string]GridProfile{}
	for _, gp := range []GridProfile{
		Uniform("fe2-wan20", fe, 2, 8, DefaultWAN(20*sim.Millisecond)),
		Uniform("ge3-wan50", ge, 3, 8, func() WANConfig {
			w := DefaultWAN(50 * sim.Millisecond)
			w.Rate = 125_000_000 // 1 Gbit/s backbone
			w.Mesh = false
			return w
		}()),
		{
			Name: "mixed-wan30",
			Members: []GridMember{
				{Profile: fe, Nodes: 10},
				{Profile: ge, Nodes: 6},
			},
			WAN: DefaultWAN(30 * sim.Millisecond),
		},
	} {
		out[gp.Name] = gp
	}
	return out
}

// GridByName returns the named canonical grid profile.
func GridByName(name string) (GridProfile, error) {
	gp, ok := GridProfiles()[name]
	if !ok {
		return GridProfile{}, fmt.Errorf("cluster: unknown grid profile %q", name)
	}
	return gp, nil
}

// Grid is a built multi-cluster environment. Env carries the shared
// simulator, network and full-mesh transport fabric over every host of
// every member, so mpi.NewWorld works on a grid exactly as on a single
// cluster.
type Grid struct {
	Profile   GridProfile
	Env       *Cluster
	ClusterOf []int   // host/rank id → member index
	Members   [][]int // member index → host/rank ids (contiguous)
	Routers   []*netsim.Device
}

// BuildGrid instantiates a grid profile. Host NodeIDs (and therefore MPI
// ranks) are assigned contiguously cluster by cluster.
func BuildGrid(gp GridProfile, seed int64) (*Grid, error) {
	if len(gp.Members) == 0 {
		return nil, fmt.Errorf("cluster: grid %q has no members", gp.Name)
	}
	kind := gp.Members[0].Profile.Kind
	if kind != transport.TCP {
		// WAN ports are tail-drop; a transport without retransmission
		// (GM relies on a lossless fabric) would hang on the first
		// dropped segment.
		return nil, fmt.Errorf("cluster: grid %q needs a retransmitting transport, got %v", gp.Name, kind)
	}
	for _, m := range gp.Members {
		if m.Nodes < 1 {
			return nil, fmt.Errorf("cluster: grid %q member %q has %d nodes", gp.Name, m.Profile.Name, m.Nodes)
		}
		if m.Profile.Kind != kind {
			return nil, fmt.Errorf("cluster: grid %q mixes transport kinds %v and %v",
				gp.Name, kind, m.Profile.Kind)
		}
	}

	s := sim.New(seed)
	nw := netsim.New(s)
	g := &Grid{Profile: gp}

	// Hosts first, cluster by cluster, so NodeIDs are dense and grouped.
	perCluster := make([][]*netsim.Device, len(gp.Members))
	var hosts []*netsim.Device
	for c, m := range gp.Members {
		ids := make([]int, m.Nodes)
		perCluster[c] = make([]*netsim.Device, m.Nodes)
		for i := 0; i < m.Nodes; i++ {
			h := nw.AddHost(fmt.Sprintf("c%d.%s-n%d", c, m.Profile.Name, i))
			perCluster[c][i] = h
			ids[i] = len(hosts)
			hosts = append(hosts, h)
			g.ClusterOf = append(g.ClusterOf, c)
		}
		g.Members = append(g.Members, ids)
	}

	// Intra-cluster fabrics plus one border router per cluster.
	routerLAN := netsim.PortConfig{Buffer: 1 << 20}
	for c, m := range gp.Members {
		p := m.Profile
		attach := buildLAN(nw, p, perCluster[c], fmt.Sprintf("c%d.", c))
		gw := nw.AddRouter(fmt.Sprintf("c%d.gw", c), netsim.RouterConfig{ProcDelay: gp.WAN.ProcDelay})
		accessRate, accessLat := p.UplinkRate, p.UplinkLatency
		if accessRate == 0 {
			accessRate, accessLat = p.LinkRate, p.LinkLatency
		}
		access := netsim.LinkConfig{Rate: accessRate, Latency: accessLat}
		attachBuf := p.CorePortBuffer
		if attachBuf == 0 {
			attachBuf = p.PortBuffer
		}
		nw.ConnectPorts(attach, gw, access, access,
			netsim.PortConfig{Buffer: attachBuf, Lossless: p.Lossless}, routerLAN)
		g.Routers = append(g.Routers, gw)
	}

	// Wide-area peering: full mesh, or a star through a backbone router.
	wanLink := netsim.LinkConfig{Rate: gp.WAN.Rate, Latency: gp.WAN.Latency}
	wanPort := netsim.PortConfig{Buffer: gp.WAN.PortBuffer}
	if gp.WAN.Mesh {
		for i := 0; i < len(g.Routers); i++ {
			for j := i + 1; j < len(g.Routers); j++ {
				nw.ConnectPorts(g.Routers[i], g.Routers[j], wanLink, wanLink, wanPort, wanPort)
			}
		}
	} else {
		bb := nw.AddRouter("wan.bb", netsim.RouterConfig{ProcDelay: gp.WAN.ProcDelay})
		for _, r := range g.Routers {
			nw.ConnectPorts(r, bb, wanLink, wanLink, wanPort, wanPort)
		}
	}
	nw.ComputeRoutes()

	// Every host keeps one connection per remote rank, grid-wide.
	total := len(hosts)
	for c, m := range gp.Members {
		applyRxCost(m.Profile, perCluster[c], total)
	}

	first := gp.Members[0].Profile
	fab := transport.NewFabric(nw, hosts, transport.FabricConfig{Kind: kind, TCP: first.TCP, GM: first.GM})
	g.Env = &Cluster{
		Profile: Profile{Name: gp.Name, Kind: kind, TCP: first.TCP, GM: first.GM},
		Sim:     s, Net: nw, Hosts: hosts, Fabric: fab,
	}
	return g, nil
}
