// Grid environments: several cluster Profiles composed into one
// simulated multi-cluster platform, joined by wide-area links through
// per-cluster border routers. This is the paper's natural
// production-scale extension: All-to-All across a grid, where every
// inter-cluster block crosses a shared, high-latency WAN uplink and flat
// Direct Exchange collapses.
package cluster

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/transport"
)

// GridMember is one cluster of a grid: a profile plus its node count.
type GridMember struct {
	Profile Profile
	Nodes   int
}

// WANConfig describes the wide-area interconnect between the border
// routers of a grid.
type WANConfig struct {
	Rate    int64    // bytes/s per WAN link direction
	Latency sim.Time // one-way propagation per WAN link

	// PortBuffer is the router WAN egress buffer (tail-drop). Shallow
	// buffers relative to the bandwidth-delay product are what make the
	// uplink the grid's contention point.
	PortBuffer int

	// ProcDelay is the per-packet router forwarding delay.
	ProcDelay sim.Time

	// Mesh selects full-mesh router-to-router WAN links; false builds a
	// star through one backbone router (each inter-cluster path then
	// crosses two WAN links).
	Mesh bool
}

// DefaultWAN returns a 100 Mbit/s WAN with the given one-way latency,
// shallow router buffers and full-mesh peering.
func DefaultWAN(latency sim.Time) WANConfig {
	return WANConfig{
		Rate:       12_500_000, // 100 Mbit/s
		Latency:    latency,
		PortBuffer: 256 << 10,
		ProcDelay:  50 * sim.Microsecond,
		Mesh:       true,
	}
}

// GridProfile names a buildable multi-cluster environment. All member
// profiles must share one transport kind; the first member's transport
// tuning is used fabric-wide.
type GridProfile struct {
	Name    string
	Members []GridMember
	WAN     WANConfig
}

// TotalNodes sums the member node counts.
func (gp GridProfile) TotalNodes() int {
	total := 0
	for _, m := range gp.Members {
		total += m.Nodes
	}
	return total
}

// Uniform builds a symmetric GridProfile: clusters copies of p with
// nodesPer nodes each.
func Uniform(name string, p Profile, clusters, nodesPer int, wan WANConfig) GridProfile {
	gp := GridProfile{Name: name, WAN: wan}
	for c := 0; c < clusters; c++ {
		gp.Members = append(gp.Members, GridMember{Profile: p, Nodes: nodesPer})
	}
	return gp
}

// WANTuned widens a profile's TCP receive window for long-fat WAN pipes
// (the real-world "window scaling" tuning a grid deployment would apply).
// Every canonical grid environment and grid-facing example uses it.
func WANTuned(p Profile) Profile {
	p.TCP.RcvWindow = 256 << 10
	return p
}

// GridProfiles returns canonical grid environments keyed by name:
// the paper's platforms composed over 10–100 ms WANs.
func GridProfiles() map[string]GridProfile {
	fe := WANTuned(FastEthernet())
	ge := WANTuned(GigabitEthernet())
	out := map[string]GridProfile{}
	for _, gp := range []GridProfile{
		Uniform("fe2-wan20", fe, 2, 8, DefaultWAN(20*sim.Millisecond)),
		Uniform("ge3-wan50", ge, 3, 8, func() WANConfig {
			w := DefaultWAN(50 * sim.Millisecond)
			w.Rate = 125_000_000 // 1 Gbit/s backbone
			w.Mesh = false
			return w
		}()),
		{
			Name: "mixed-wan30",
			Members: []GridMember{
				{Profile: fe, Nodes: 10},
				{Profile: ge, Nodes: 6},
			},
			WAN: DefaultWAN(30 * sim.Millisecond),
		},
	} {
		out[gp.Name] = gp
	}
	return out
}

// GridByName returns the named canonical grid profile.
func GridByName(name string) (GridProfile, error) {
	gp, ok := GridProfiles()[name]
	if !ok {
		return GridProfile{}, fmt.Errorf("cluster: unknown grid profile %q", name)
	}
	return gp, nil
}

// Grid is a built multi-level grid environment. Env carries the shared
// simulator, network and full-mesh transport fabric over every host of
// every leaf cluster, so mpi.NewWorld works on a grid exactly as on a
// single cluster.
type Grid struct {
	// Tree is the topology the grid was built from.
	Tree TopoNode
	// Env is the shared environment (simulator, network, fabric).
	Env *Cluster
	// ClusterOf maps host/rank id → leaf index (tree order).
	ClusterOf []int
	// Members maps leaf index → host/rank ids (contiguous).
	Members [][]int
	// Routers holds each leaf cluster's border router, in leaf order.
	Routers []*netsim.Device
}

// BuildGrid instantiates a flat two-level grid profile. It is sugar for
// BuildGridTree over GridProfile.Tree: one recursive build path
// constructs every grid.
func BuildGrid(gp GridProfile, seed int64) (*Grid, error) {
	if len(gp.Members) == 0 {
		return nil, fmt.Errorf("cluster: grid %q has no members", gp.Name)
	}
	return BuildGridTree(gp.Tree(), seed)
}

// treeBuilder carries shared state across the recursive grid build.
type treeBuilder struct {
	nw    *netsim.Network
	g     *Grid
	hosts []*netsim.Device   // all hosts, rank order
	perLf [][]*netsim.Device // hosts per leaf
	gwLf  []*netsim.Device   // border router per leaf
	leafI int                // leaf cursor during wiring
}

// BuildGridTree instantiates a multi-level grid topology. Host NodeIDs
// (and therefore MPI ranks) are assigned contiguously leaf by leaf in
// tree order. Each leaf gets a border router on its parent tier; each
// group tier joins its children's gateways either in a full mesh or in
// a star through a tier backbone router, and exposes one gateway (the
// first child's for a mesh, the backbone for a star) to the tier above.
func BuildGridTree(root TopoNode, seed int64) (*Grid, error) {
	if err := root.Validate(); err != nil {
		return nil, err
	}
	leaves := root.Leaves()
	kind := leaves[0].Profile.Kind
	if !root.IsLeaf() && kind != transport.TCP {
		// WAN ports are tail-drop; a transport without retransmission
		// (GM relies on a lossless fabric) would hang on the first
		// dropped segment.
		return nil, fmt.Errorf("cluster: grid %q needs a retransmitting transport, got %v", root.Name, kind)
	}
	for _, lf := range leaves {
		if lf.Profile.Kind != kind {
			return nil, fmt.Errorf("cluster: grid %q mixes transport kinds %v and %v",
				root.Name, kind, lf.Profile.Kind)
		}
	}

	s := sim.New(seed)
	b := &treeBuilder{nw: netsim.New(s), g: &Grid{Tree: root}}

	// Hosts first, leaf by leaf, so NodeIDs are dense and grouped.
	for c, lf := range leaves {
		ids := make([]int, lf.Nodes)
		devs := make([]*netsim.Device, lf.Nodes)
		for i := 0; i < lf.Nodes; i++ {
			h := b.nw.AddHost(fmt.Sprintf("%s%s-n%d", leafPrefix(root, c), lf.Profile.Name, i))
			devs[i] = h
			ids[i] = len(b.hosts)
			b.hosts = append(b.hosts, h)
			b.g.ClusterOf = append(b.g.ClusterOf, c)
		}
		b.perLf = append(b.perLf, devs)
		b.g.Members = append(b.g.Members, ids)
	}

	// Intra-cluster fabrics plus per-level WAN wiring.
	if root.IsLeaf() {
		buildLAN(b.nw, root.Profile, b.perLf[0], "")
	} else {
		b.wire(root, "", nil)
	}
	b.nw.ComputeRoutes()

	// Every host keeps one connection per remote rank, grid-wide.
	total := len(b.hosts)
	for c, lf := range leaves {
		applyRxCost(lf.Profile, b.perLf[c], total)
	}

	first := leaves[0].Profile
	fab := transport.NewFabric(b.nw, b.hosts, transport.FabricConfig{Kind: kind, TCP: first.TCP, GM: first.GM})
	b.g.Routers = b.gwLf
	b.g.Env = &Cluster{
		Profile: Profile{Name: root.Name, Kind: kind, TCP: first.TCP, GM: first.GM},
		Sim:     s, Net: b.nw, Hosts: b.hosts, Fabric: fab,
	}
	return b.g, nil
}

// leafPrefix names the leaf at index li by its path of child indices
// ("c0.", or "c1.c0." at depth 2), matching the wiring prefixes.
func leafPrefix(root TopoNode, li int) string {
	prefix, n := "", 0
	var walk func(t TopoNode, p string) bool
	walk = func(t TopoNode, p string) bool {
		if t.IsLeaf() {
			if n == li {
				prefix = p
				return true
			}
			n++
			return false
		}
		for i, c := range t.Children {
			if walk(c, fmt.Sprintf("%sc%d.", p, i)) {
				return true
			}
		}
		return false
	}
	walk(root, "")
	return prefix
}

// wire recursively builds the subtree rooted at t (a group when called
// with children, a leaf otherwise) and returns its upward gateway. wan
// is the WAN tier the subtree's gateway faces (its parent group's), nil
// for the root.
func (b *treeBuilder) wire(t TopoNode, prefix string, wan *WANConfig) *netsim.Device {
	if t.IsLeaf() {
		p := t.Profile
		attach := buildLAN(b.nw, p, b.perLf[b.leafI], prefix)
		b.leafI++
		gw := b.nw.AddRouter(prefix+"gw", netsim.RouterConfig{ProcDelay: wan.ProcDelay})
		accessRate, accessLat := p.UplinkRate, p.UplinkLatency
		if accessRate == 0 {
			accessRate, accessLat = p.LinkRate, p.LinkLatency
		}
		access := netsim.LinkConfig{Rate: accessRate, Latency: accessLat}
		attachBuf := p.CorePortBuffer
		if attachBuf == 0 {
			attachBuf = p.PortBuffer
		}
		b.nw.ConnectPorts(attach, gw, access, access,
			netsim.PortConfig{Buffer: attachBuf, Lossless: p.Lossless},
			netsim.PortConfig{Buffer: 1 << 20})
		b.gwLf = append(b.gwLf, gw)
		return gw
	}

	// Children first (leaves claim their gateways in leaf order), then
	// this tier's wide-area peering: full mesh, or a star through a
	// tier backbone router.
	gws := make([]*netsim.Device, len(t.Children))
	for i, c := range t.Children {
		gws[i] = b.wire(c, fmt.Sprintf("%sc%d.", prefix, i), &t.WAN)
	}
	wanLink := netsim.LinkConfig{Rate: t.WAN.Rate, Latency: t.WAN.Latency}
	wanPort := netsim.PortConfig{Buffer: t.WAN.PortBuffer}
	if t.WAN.Mesh {
		for i := 0; i < len(gws); i++ {
			for j := i + 1; j < len(gws); j++ {
				b.nw.ConnectPorts(gws[i], gws[j], wanLink, wanLink, wanPort, wanPort)
			}
		}
		// The first child's gateway fronts the subtree on the tier
		// above — one site hosts the inter-tier uplink.
		return gws[0]
	}
	bb := b.nw.AddRouter(prefix+"wan.bb", netsim.RouterConfig{ProcDelay: t.WAN.ProcDelay})
	for _, gw := range gws {
		b.nw.ConnectPorts(gw, bb, wanLink, wanLink, wanPort, wanPort)
	}
	return bb
}
