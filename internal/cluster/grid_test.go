package cluster

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
)

func TestGridProfilesBuild(t *testing.T) {
	for name, gp := range GridProfiles() {
		g, err := BuildGrid(gp, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := len(g.Env.Hosts); got != gp.TotalNodes() {
			t.Fatalf("%s: %d hosts, want %d", name, got, gp.TotalNodes())
		}
		if len(g.Members) != len(gp.Members) {
			t.Fatalf("%s: %d member lists, want %d", name, len(g.Members), len(gp.Members))
		}
		seen := 0
		for c, ids := range g.Members {
			for _, id := range ids {
				if g.ClusterOf[id] != c {
					t.Fatalf("%s: ClusterOf[%d]=%d, want %d", name, id, g.ClusterOf[id], c)
				}
				seen++
			}
		}
		if seen != gp.TotalNodes() {
			t.Fatalf("%s: member lists cover %d ranks, want %d", name, seen, gp.TotalNodes())
		}
	}
}

func TestGridTreesBuild(t *testing.T) {
	for name, tree := range GridTrees() {
		g, err := BuildGridTree(tree, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := len(g.Env.Hosts); got != tree.TotalNodes() {
			t.Fatalf("%s: %d hosts, want %d", name, got, tree.TotalNodes())
		}
		if len(g.Members) != tree.NumLeaves() {
			t.Fatalf("%s: %d member lists, want %d leaves", name, len(g.Members), tree.NumLeaves())
		}
		if len(g.Routers) != tree.NumLeaves() {
			t.Fatalf("%s: %d border routers, want %d", name, len(g.Routers), tree.NumLeaves())
		}
		seen := 0
		for c, ids := range g.Members {
			for _, id := range ids {
				if g.ClusterOf[id] != c {
					t.Fatalf("%s: ClusterOf[%d]=%d, want %d", name, id, g.ClusterOf[id], c)
				}
				seen++
			}
		}
		if seen != tree.TotalNodes() {
			t.Fatalf("%s: member lists cover %d ranks, want %d", name, seen, tree.TotalNodes())
		}
	}
}

// TestBuildGridTreeSingleLeaf: a depth-0 tree is a plain cluster — no
// WAN, so even non-retransmitting transports build.
func TestBuildGridTreeSingleLeaf(t *testing.T) {
	g, err := BuildGridTree(Leaf(Myrinet(), 4), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Env.Hosts) != 4 || len(g.Members) != 1 || len(g.Routers) != 0 {
		t.Fatalf("single-leaf grid built %d hosts / %d leaves / %d routers",
			len(g.Env.Hosts), len(g.Members), len(g.Routers))
	}
}

// TestThreeLevelCrossTierLatency: a message between nations must cross
// one campus hop on each side plus the continental tier, so it cannot
// arrive before the summed one-way propagation delays.
func TestThreeLevelCrossTierLatency(t *testing.T) {
	low, high := 10*sim.Millisecond, 50*sim.Millisecond
	tree := ThreeLevel("t3", WANTuned(GigabitEthernet()), 2, 2, 2,
		DefaultWAN(low), DefaultWAN(high))
	g, err := BuildGridTree(tree, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf order: n0c0, n0c1, n1c0, n1c1. Source in n0c1, destination in
	// n1c1: the mesh gateways sit at each nation's first campus, so the
	// path crosses campus links twice and the continental link once.
	src, dst := g.Members[1][0], g.Members[3][0]
	var at sim.Time
	arrived := false
	g.Env.Fabric.Conn(dst, src).SetHandler(func(m transport.Message) {
		at, arrived = g.Env.Sim.Now(), true
	})
	g.Env.Fabric.Conn(src, dst).Send(transport.Message{Kind: 1, Size: 1024})
	g.Env.Sim.Run()
	if !arrived {
		t.Fatal("cross-nation message not delivered")
	}
	if want := 2*low + high; at < want {
		t.Fatalf("delivered at %v, before the %v three-tier path", at, want)
	}
	// Intra-nation, cross-campus: one campus hop only — faster than any
	// continental crossing. Fresh build, so the clock starts at zero.
	g, err = BuildGridTree(tree, 11)
	if err != nil {
		t.Fatal(err)
	}
	src2, dst2 := g.Members[0][0], g.Members[1][1]
	var at2 sim.Time
	arrived = false
	g.Env.Fabric.Conn(dst2, src2).SetHandler(func(m transport.Message) {
		at2, arrived = g.Env.Sim.Now(), true
	})
	g.Env.Fabric.Conn(src2, dst2).Send(transport.Message{Kind: 1, Size: 1024})
	g.Env.Sim.Run()
	if !arrived {
		t.Fatal("cross-campus message not delivered")
	}
	if at2 < low || at2 >= high {
		t.Fatalf("cross-campus delivery at %v, want within [%v, %v)", at2, low, high)
	}
}

func TestGridRejectsMixedTransportKinds(t *testing.T) {
	gp := GridProfile{
		Name: "bad",
		Members: []GridMember{
			{Profile: FastEthernet(), Nodes: 2},
			{Profile: Myrinet(), Nodes: 2},
		},
		WAN: DefaultWAN(10 * sim.Millisecond),
	}
	if _, err := BuildGrid(gp, 1); err == nil || !strings.Contains(err.Error(), "transport kinds") {
		t.Fatalf("want mixed-kind error, got %v", err)
	}
}

func TestGridRejectsNonRetransmittingTransport(t *testing.T) {
	// GM relies on a lossless fabric; over tail-drop WAN ports the
	// first lost segment would hang the simulation forever.
	gp := Uniform("gm-grid", Myrinet(), 2, 2, DefaultWAN(10*sim.Millisecond))
	if _, err := BuildGrid(gp, 1); err == nil || !strings.Contains(err.Error(), "retransmitting") {
		t.Fatalf("want transport rejection, got %v", err)
	}
}

// TestGridStarCrossesTwoWANLinks: Mesh=false must route through the
// backbone router even for two clusters, so the one-way path pays the
// WAN propagation twice.
func TestGridStarCrossesTwoWANLinks(t *testing.T) {
	wanLat := 15 * sim.Millisecond
	wan := DefaultWAN(wanLat)
	wan.Mesh = false
	gp := Uniform("t2star", GigabitEthernet(), 2, 2, wan)
	g, err := BuildGrid(gp, 9)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := g.Members[0][0], g.Members[1][0]
	var at sim.Time
	arrived := false
	g.Env.Fabric.Conn(dst, src).SetHandler(func(m transport.Message) {
		at, arrived = g.Env.Sim.Now(), true
	})
	g.Env.Fabric.Conn(src, dst).Send(transport.Message{Kind: 1, Size: 1024})
	g.Env.Sim.Run()
	if !arrived {
		t.Fatal("cross-cluster message not delivered via backbone")
	}
	if at < 2*wanLat {
		t.Fatalf("delivered at %v, before two WAN hops (%v)", at, 2*wanLat)
	}
}

// TestGridCrossClusterTransfer sends a transport message between
// clusters and checks it arrives no earlier than the WAN propagation
// delay allows.
func TestGridCrossClusterTransfer(t *testing.T) {
	wanLat := 15 * sim.Millisecond
	gp := Uniform("t2", WANTuned(GigabitEthernet()), 2, 3, DefaultWAN(wanLat))
	g, err := BuildGrid(gp, 42)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := g.Members[0][0], g.Members[1][0]
	var at sim.Time
	arrived := false
	g.Env.Fabric.Conn(dst, src).SetHandler(func(m transport.Message) {
		at, arrived = g.Env.Sim.Now(), true
	})
	g.Env.Fabric.Conn(src, dst).Send(transport.Message{Kind: 1, Size: 100 << 10})
	g.Env.Sim.Run()
	if !arrived {
		t.Fatal("cross-cluster message not delivered")
	}
	if at < wanLat {
		t.Fatalf("delivered at %v, before one-way WAN latency %v", at, wanLat)
	}
}
