package netsim

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Fault injection. A FaultSchedule is a deterministic list of link and
// node faults resolved against a built network by ApplyFaults, which
// arms one simulator event per transition. The schedule is pure data —
// seeds, generation, and ground-truth queries live here; the event-loop
// effects are three flags the hot paths already check (egress.down,
// Device.lost, and the fluid waterfill's down-link freeze), so an empty
// schedule leaves a run bit-identical to an unfaulted one.

// Fault counter and event names published via the attached collector.
const (
	// CtrLinkDown counts link-down and link-degrade transitions fired.
	CtrLinkDown = "netsim.faults.link_down"
	// CtrLinkUp counts link recoveries fired.
	CtrLinkUp = "netsim.faults.link_up"
	// CtrNodeLost counts node-loss faults fired.
	CtrNodeLost = "netsim.faults.node_lost"
	// CtrBlackholed counts packets discarded on arrival at a lost host.
	CtrBlackholed = "netsim.pkts.blackholed"
)

// LinkFault takes one directed link down — or degrades it — for an
// interval of simulated time.
type LinkFault struct {
	// Port names the egress, in the "<owner>-><peer>" form Stats and
	// WANPorts report.
	Port string
	// At is when the fault strikes.
	At sim.Time
	// Until is when the link recovers; zero means the fault is
	// permanent. A permanently downed link never drains its queue, so
	// transports retrying across it keep the event loop alive — pair a
	// permanent link fault with a transport-level abort, or give it an
	// Until.
	Until sim.Time
	// RateFraction selects the failure mode: 0 takes the link fully
	// down (packets wait, fluid flows freeze); a value in (0, 1)
	// degrades the link to that fraction of its nominal rate instead.
	RateFraction float64
}

// NodeFault removes a host permanently at a point in simulated time:
// arriving packets blackhole, and every link touching the host goes
// down. There is no recovery — a lost node models a crash, and
// higher layers (coll failover) decide what survives it.
type NodeFault struct {
	// Host names the host device (Device.Name).
	Host string
	// At is when the node is lost.
	At sim.Time
}

// FaultSchedule is a deterministic set of faults to inject into one
// run. The zero value is the empty schedule: applying it arms no
// events and perturbs nothing.
type FaultSchedule struct {
	Links []LinkFault
	Nodes []NodeFault
}

// Empty reports whether the schedule contains no faults.
func (fs FaultSchedule) Empty() bool {
	return len(fs.Links) == 0 && len(fs.Nodes) == 0
}

// NodeLostBy reports whether the schedule loses the named host at or
// before time t — the ground truth a failure detector's oracle checks
// against when a rendezvous times out.
func (fs FaultSchedule) NodeLostBy(host string, t sim.Time) bool {
	for _, nf := range fs.Nodes {
		if nf.Host == host && nf.At <= t {
			return true
		}
	}
	return false
}

// FaultGenConfig bounds the random schedules GenFaultSchedule draws.
type FaultGenConfig struct {
	// LinkFlaps is the number of link up/down (or degrade) intervals to
	// draw across the given ports.
	LinkFlaps int
	// NodeLosses is the number of distinct hosts to lose.
	NodeLosses int
	// Horizon bounds fault start times: every fault strikes in
	// [0, Horizon).
	Horizon sim.Time
	// MinOutage and MaxOutage bound each link flap's duration.
	MinOutage, MaxOutage sim.Time
	// DegradeProb is the probability a drawn link fault degrades the
	// link (to a fraction in [0.05, 0.5]) instead of downing it.
	DegradeProb float64
}

// GenFaultSchedule draws a deterministic random schedule from the seed:
// LinkFlaps flap intervals over the given ports and NodeLosses losses
// over distinct hosts. The same seed, ports, hosts, and config always
// produce the same schedule.
func GenFaultSchedule(seed int64, ports, hosts []string, cfg FaultGenConfig) FaultSchedule {
	rng := rand.New(rand.NewSource(seed))
	var fs FaultSchedule
	if cfg.Horizon <= 0 {
		return fs
	}
	span := cfg.MaxOutage - cfg.MinOutage
	for i := 0; i < cfg.LinkFlaps && len(ports) > 0; i++ {
		at := sim.Time(rng.Int63n(int64(cfg.Horizon)))
		out := cfg.MinOutage
		if span > 0 {
			out += sim.Time(rng.Int63n(int64(span)))
		}
		frac := 0.0
		if rng.Float64() < cfg.DegradeProb {
			frac = 0.05 + 0.45*rng.Float64()
		}
		fs.Links = append(fs.Links, LinkFault{
			Port: ports[rng.Intn(len(ports))],
			At:   at, Until: at + out, RateFraction: frac,
		})
	}
	if cfg.NodeLosses > 0 && len(hosts) > 0 {
		perm := rng.Perm(len(hosts))
		n := cfg.NodeLosses
		if n > len(hosts) {
			n = len(hosts)
		}
		picked := append([]int(nil), perm[:n]...)
		sort.Ints(picked) // deterministic order independent of Perm internals
		for _, hi := range picked {
			fs.Nodes = append(fs.Nodes, NodeFault{
				Host: hosts[hi],
				At:   sim.Time(rng.Int63n(int64(cfg.Horizon))),
			})
		}
	}
	return fs
}

// faultTarget tracks per-egress fault nesting so overlapping intervals
// compose: the link recovers only when every active fault on it ends.
type faultTarget struct {
	e     *egress
	downN int
}

// ApplyFaults resolves the schedule against the network and arms one
// simulator event per transition. Call it after the topology is
// complete (ComputeRoutes) and before or after AttachCollector — fault
// events and counters are emitted through the collector attached at
// fire time. Unknown port or host names are an error. Applying an
// empty schedule arms nothing.
func (n *Network) ApplyFaults(fs FaultSchedule) error {
	byPort := map[string]*faultTarget{}
	for _, lf := range fs.Links {
		if _, ok := byPort[lf.Port]; ok {
			continue
		}
		e := n.findEgress(lf.Port)
		if e == nil {
			return fmt.Errorf("netsim: fault on unknown port %q", lf.Port)
		}
		byPort[lf.Port] = &faultTarget{e: e}
	}
	for _, lf := range fs.Links {
		lf := lf
		if lf.RateFraction < 0 || lf.RateFraction >= 1 {
			return fmt.Errorf("netsim: fault on %q: RateFraction %g outside [0, 1)", lf.Port, lf.RateFraction)
		}
		if lf.Until != 0 && lf.Until <= lf.At {
			return fmt.Errorf("netsim: fault on %q: Until %d not after At %d", lf.Port, lf.Until, lf.At)
		}
		t := byPort[lf.Port]
		if t.e.nominalRate == 0 {
			t.e.nominalRate = t.e.rate
		}
		n.sim.At(lf.At, func() { n.linkDown(t, lf.RateFraction) })
		if lf.Until != 0 {
			n.sim.At(lf.Until, func() { n.linkUp(t) })
		}
	}
	for _, nf := range fs.Nodes {
		nf := nf
		var host *Device
		for _, h := range n.hosts {
			if h.name == nf.Host {
				host = h
				break
			}
		}
		if host == nil {
			return fmt.Errorf("netsim: node fault on unknown host %q", nf.Host)
		}
		n.sim.At(nf.At, func() { n.nodeLost(host) })
	}
	return nil
}

// linkDown applies one link fault transition: full down when frac is 0,
// degradation to frac of nominal otherwise.
func (n *Network) linkDown(t *faultTarget, frac float64) {
	t.downN++
	if frac == 0 {
		t.e.down = true
	} else {
		r := int64(frac * float64(t.e.nominalRate))
		if r < 1 {
			r = 1
		}
		t.e.rate = r
	}
	n.obsC.Add(CtrLinkDown, 1)
	n.obsC.Event("netsim.link.down",
		obs.Str("port", t.e.name), obs.F64("fraction", frac))
	if n.fluid != nil {
		n.fluidRecompute()
	}
}

// linkUp ends one link fault; the link recovers when no fault remains
// active on it.
func (n *Network) linkUp(t *faultTarget) {
	t.downN--
	if t.downN > 0 {
		return
	}
	t.e.down = false
	t.e.rate = t.e.nominalRate
	n.obsC.Add(CtrLinkUp, 1)
	n.obsC.Event("netsim.link.up", obs.Str("port", t.e.name))
	t.e.maybeStart()
	if n.fluid != nil {
		n.fluidRecompute()
	}
}

// nodeLost removes a host: blackhole delivery, and every egress the
// host owns or terminates goes down, freezing packets and fluid flows
// in both directions. Permanent by design.
func (n *Network) nodeLost(host *Device) {
	if host.lost {
		return
	}
	host.lost = true
	for _, e := range host.egr {
		e.down = true
	}
	for _, d := range n.devices {
		for _, e := range d.egr {
			if e.peer == host {
				e.down = true
			}
		}
	}
	n.obsC.Add(CtrNodeLost, 1)
	n.obsC.Event("netsim.node.lost", obs.Str("host", host.name))
	if n.fluid != nil {
		n.fluidRecompute()
	}
}

// findEgress locates an egress by its "<owner>-><peer>" name.
func (n *Network) findEgress(name string) *egress {
	for _, d := range n.devices {
		for _, e := range d.egr {
			if e.name == name {
				return e
			}
		}
	}
	return nil
}

// WANPorts returns the names of every router→router egress — the WAN
// tier links a fault schedule most plausibly targets — in device and
// creation order, so the list is deterministic for seeding generators.
func (n *Network) WANPorts() []string {
	var out []string
	for _, d := range n.devices {
		for _, e := range d.egr {
			if e.wan {
				out = append(out, e.name)
			}
		}
	}
	return out
}

// HostPorts returns the names of every host NIC egress (the host's
// outbound port), in host order.
func (n *Network) HostPorts() []string {
	var out []string
	for _, h := range n.hosts {
		for _, e := range h.egr {
			out = append(out, e.name)
		}
	}
	return out
}
