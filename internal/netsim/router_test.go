package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// buildTwoClusterNet wires two star fabrics joined by routers over a WAN
// link: hosts 0..a-1 under swA, hosts a..a+b-1 under swB,
// swA—rA—(WAN)—rB—swB. Returns the network.
func buildTwoClusterNet(s *sim.Simulator, a, b, wanBuf int, wanRate int64, wanLat, proc sim.Time) *Network {
	n := New(s)
	lan := LinkConfig{Rate: 12_500_000, Latency: 20 * sim.Microsecond}
	swA := n.AddSwitch("swA", SwitchConfig{PortBuffer: 256 << 10})
	swB := n.AddSwitch("swB", SwitchConfig{PortBuffer: 256 << 10})
	for i := 0; i < a; i++ {
		n.Connect(n.AddHost("a"), swA, lan)
	}
	for i := 0; i < b; i++ {
		n.Connect(n.AddHost("b"), swB, lan)
	}
	rA := n.AddRouter("rA", RouterConfig{ProcDelay: proc})
	rB := n.AddRouter("rB", RouterConfig{ProcDelay: proc})
	edge := PortConfig{Buffer: 512 << 10}
	n.ConnectPorts(swA, rA, lan, lan, PortConfig{Buffer: 256 << 10}, edge)
	n.ConnectPorts(swB, rB, lan, lan, PortConfig{Buffer: 256 << 10}, edge)
	wan := LinkConfig{Rate: wanRate, Latency: wanLat}
	n.ConnectPorts(rA, rB, wan, wan, PortConfig{Buffer: wanBuf}, PortConfig{Buffer: wanBuf})
	n.ComputeRoutes()
	return n
}

// TestRouterFlowOrderingProperty: across random two-cluster topologies
// with a congested WAN uplink, packets of the same flow are delivered in
// injection order (drops may thin a flow but never reorder it).
func TestRouterFlowOrderingProperty(t *testing.T) {
	prop := func(seed int64, a8, b8, pkts8, buf8 uint8) bool {
		a := int(a8%4) + 1
		b := int(b8%4) + 1
		pkts := int(pkts8%96) + 8
		wanBuf := (int(buf8%8) + 2) * 1500
		s := sim.New(seed)
		n := buildTwoClusterNet(s, a, b, wanBuf, 1_250_000, 10*sim.Millisecond, 50*sim.Microsecond)
		hosts := a + b
		lastSeq := map[uint64]int64{}
		ok := true
		for i := 0; i < hosts; i++ {
			n.Host(NodeID(i)).SetHandler(func(pkt *Packet) {
				if last, seen := lastSeq[pkt.Flow]; seen && pkt.Seq <= last {
					ok = false
				}
				lastSeq[pkt.Flow] = pkt.Seq
			})
		}
		rng := s.Rand()
		seqs := map[uint64]int64{}
		for k := 0; k < pkts; k++ {
			src := rng.Intn(hosts)
			dst := rng.Intn(hosts - 1)
			if dst >= src {
				dst++
			}
			flow := uint64(src)<<32 | uint64(dst)
			seqs[flow]++
			n.Inject(&Packet{
				Src: NodeID(src), Dst: NodeID(dst), Flow: flow,
				Seq: seqs[flow], Size: 200 + rng.Intn(1300),
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterConservation: packets crossing the WAN are delivered or
// counted as dropped, never duplicated or lost silently.
func TestRouterConservation(t *testing.T) {
	s := sim.New(7)
	n := buildTwoClusterNet(s, 3, 3, 6000, 1_250_000, 20*sim.Millisecond, 0)
	delivered := 0
	for i := 0; i < 6; i++ {
		n.Host(NodeID(i)).SetHandler(func(pkt *Packet) { delivered++ })
	}
	injected := 0
	for k := 0; k < 200; k++ {
		src := k % 3       // cluster A
		dst := 3 + (k % 3) // cluster B
		n.Inject(&Packet{Src: NodeID(src), Dst: NodeID(dst), Size: 1500})
		injected++
	}
	s.Run()
	if delivered+int(n.Drops()) != injected {
		t.Fatalf("conservation violated: delivered %d + drops %d != injected %d",
			delivered, n.Drops(), injected)
	}
	if n.Drops() == 0 {
		t.Fatal("expected WAN tail drops under this load")
	}
}

// TestRouterWANLatencyBound: a single packet crossing the WAN can never
// arrive before the sum of serializations, propagation delays and the
// two router processing delays along its 5-hop path.
func TestRouterWANLatencyBound(t *testing.T) {
	const (
		lanRate = int64(12_500_000)
		wanRate = int64(1_250_000)
		proc    = 100 * sim.Microsecond
		wanLat  = 25 * sim.Millisecond
	)
	s := sim.New(1)
	n := buildTwoClusterNet(s, 1, 1, 1<<20, wanRate, wanLat, proc)
	var at sim.Time
	arrived := false
	n.Host(1).SetHandler(func(pkt *Packet) { at, arrived = s.Now(), true })
	const size = 1500
	n.Inject(&Packet{Src: 0, Dst: 1, Size: size})
	s.Run()
	if !arrived {
		t.Fatal("packet not delivered across the WAN")
	}
	lanHop := sim.TransmitTime(size, lanRate) + 20*sim.Microsecond
	wanHop := sim.TransmitTime(size, wanRate) + wanLat
	bound := 4*lanHop + wanHop + 2*proc
	if at < bound {
		t.Fatalf("delivered at %v, before physical bound %v", at, bound)
	}
}
