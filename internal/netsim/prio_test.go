package netsim

import (
	"testing"

	"repro/internal/sim"
)

func TestPriorityPacketOvertakesData(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	var order []int64
	b.SetHandler(func(pkt *Packet) { order = append(order, pkt.Seq) })
	// Queue three big data packets, then a priority packet: it must be
	// delivered after the in-flight head but before the queued data.
	for i := 0; i < 3; i++ {
		n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000, Seq: int64(i)})
	}
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 100, Seq: 99, Prio: true})
	s.Run()
	if len(order) != 4 {
		t.Fatalf("delivered %d packets", len(order))
	}
	if order[1] != 99 {
		t.Fatalf("priority packet did not overtake: %v", order)
	}
}

func TestPriorityNeverDropped(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	s, n := starNetwork(t, 3, SwitchConfig{PortBuffer: 2000}, link)
	var prio, data int
	n.Host(2).SetHandler(func(pkt *Packet) {
		if pkt.Prio {
			prio++
		} else {
			data++
		}
	})
	// Saturate the tiny buffer with data, interleaving priority packets.
	for i := 0; i < 50; i++ {
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 1000})
		n.Inject(&Packet{Src: 1, Dst: 2, Size: 1000})
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 64, Prio: true})
	}
	s.Run()
	if n.Drops() == 0 {
		t.Fatal("expected data drops")
	}
	if prio != 50 {
		t.Fatalf("priority packets lost: got %d, want 50", prio)
	}
	if data+int(n.Drops()) != 100 {
		t.Fatalf("data conservation violated: %d + %d != 100", data, n.Drops())
	}
}

func TestPriorityKeepsFIFOAmongThemselves(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	var order []int64
	b.SetHandler(func(pkt *Packet) {
		if pkt.Prio {
			order = append(order, pkt.Seq)
		}
	})
	for i := 0; i < 10; i++ {
		n.Inject(&Packet{Src: 0, Dst: 1, Size: 64, Seq: int64(i), Prio: true})
	}
	s.Run()
	for i, q := range order {
		if q != int64(i) {
			t.Fatalf("priority reordering at %d: %v", i, order)
		}
	}
}
