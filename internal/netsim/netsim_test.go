package netsim

import (
	"testing"

	"repro/internal/sim"
)

// testRate is 1 MB/s so a 1000-byte packet serializes in exactly 1 ms.
const testRate = 1_000_000

func twoHostsDirect(t *testing.T) (*sim.Simulator, *Network, *Device, *Device) {
	t.Helper()
	s := sim.New(1)
	n := New(s)
	a := n.AddHost("a")
	b := n.AddHost("b")
	n.Connect(a, b, LinkConfig{Rate: testRate, Latency: 10 * sim.Microsecond})
	n.ComputeRoutes()
	return s, n, a, b
}

func TestDirectDeliveryTiming(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	var arrival sim.Time
	b.SetHandler(func(pkt *Packet) { arrival = s.Now() })
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000})
	s.Run()
	want := sim.Millisecond + 10*sim.Microsecond // serialize + propagate
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestFIFOAndSerialization(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	var seqs []int64
	var times []sim.Time
	b.SetHandler(func(pkt *Packet) {
		seqs = append(seqs, pkt.Seq)
		times = append(times, s.Now())
	})
	for i := 0; i < 3; i++ {
		n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000, Seq: int64(i)})
	}
	s.Run()
	if len(seqs) != 3 || seqs[0] != 0 || seqs[1] != 1 || seqs[2] != 2 {
		t.Fatalf("out-of-order delivery: %v", seqs)
	}
	// Packets serialize back to back: arrivals 1 ms apart.
	for i := 1; i < 3; i++ {
		if times[i]-times[i-1] != sim.Millisecond {
			t.Fatalf("inter-arrival %v, want 1ms (times: %v)", times[i]-times[i-1], times)
		}
	}
}

func starNetwork(t *testing.T, hosts int, swCfg SwitchConfig, link LinkConfig) (*sim.Simulator, *Network) {
	t.Helper()
	s := sim.New(1)
	n := New(s)
	sw := n.AddSwitch("sw", swCfg)
	for i := 0; i < hosts; i++ {
		h := n.AddHost("h")
		n.Connect(h, sw, link)
	}
	n.ComputeRoutes()
	return s, n
}

func TestSwitchForwardingTiming(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: 10 * sim.Microsecond}
	s, n := starNetwork(t, 2, SwitchConfig{PortBuffer: 1 << 20}, link)
	var arrival sim.Time
	n.Host(1).SetHandler(func(pkt *Packet) { arrival = s.Now() })
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000})
	s.Run()
	// Store-and-forward over two hops: 2×(serialize + propagate).
	want := 2 * (sim.Millisecond + 10*sim.Microsecond)
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestTailDropConservation(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	// Tiny switch buffer: 3 packets' worth.
	s, n := starNetwork(t, 3, SwitchConfig{PortBuffer: 3000}, link)
	var delivered int
	n.Host(2).SetHandler(func(pkt *Packet) { delivered++ })
	// Two senders flood host 2 simultaneously.
	const per = 50
	for i := 0; i < per; i++ {
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 1000, Seq: int64(i)})
		n.Inject(&Packet{Src: 1, Dst: 2, Size: 1000, Seq: int64(i)})
	}
	s.Run()
	drops := int(n.Drops())
	if drops == 0 {
		t.Fatal("expected tail drops with 2:1 fan-in and a 3-packet buffer")
	}
	if delivered+drops != 2*per {
		t.Fatalf("packet conservation violated: delivered %d + drops %d != %d",
			delivered, drops, 2*per)
	}
}

func TestLosslessNoDropsAndConservation(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	s, n := starNetwork(t, 3, SwitchConfig{PortBuffer: 3000, Lossless: true}, link)
	var delivered int
	n.Host(2).SetHandler(func(pkt *Packet) { delivered++ })
	const per = 50
	for i := 0; i < per; i++ {
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 1000, Seq: int64(i)})
		n.Inject(&Packet{Src: 1, Dst: 2, Size: 1000, Seq: int64(i)})
	}
	s.Run()
	if n.Drops() != 0 {
		t.Fatalf("lossless network dropped %d packets", n.Drops())
	}
	if delivered != 2*per {
		t.Fatalf("delivered %d, want %d", delivered, 2*per)
	}
}

func TestLosslessBackpressureThrottlesToBottleneck(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	s, n := starNetwork(t, 3, SwitchConfig{PortBuffer: 2000, Lossless: true}, link)
	var last sim.Time
	var delivered int
	n.Host(2).SetHandler(func(pkt *Packet) { delivered++; last = s.Now() })
	const per = 25
	for i := 0; i < per; i++ {
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 1000})
		n.Inject(&Packet{Src: 1, Dst: 2, Size: 1000})
	}
	s.Run()
	// 50 packets drain through one 1 MB/s egress: at least 50 ms.
	if last < 50*sim.Millisecond {
		t.Fatalf("completed at %v; bottleneck egress should enforce >= 50ms", last)
	}
	if delivered != 2*per {
		t.Fatalf("delivered %d, want %d", delivered, 2*per)
	}
}

func TestFanInSharesBandwidthFairly(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	s, n := starNetwork(t, 3, SwitchConfig{PortBuffer: 1 << 20}, link)
	counts := map[NodeID]int{}
	n.Host(2).SetHandler(func(pkt *Packet) { counts[pkt.Src]++ })
	const per = 100
	for i := 0; i < per; i++ {
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 1000})
		n.Inject(&Packet{Src: 1, Dst: 2, Size: 1000})
	}
	// Run only long enough for half the packets to drain.
	s.RunUntil(100 * sim.Millisecond)
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("one flow starved: %v", counts)
	}
	diff := counts[0] - counts[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Fatalf("unfair interleaving under FIFO fan-in: %v", counts)
	}
}

func TestHierarchicalRouting(t *testing.T) {
	// Two leaf switches under a core switch (the paper's Fast Ethernet
	// topology in miniature).
	s := sim.New(1)
	n := New(s)
	core := n.AddSwitch("core", SwitchConfig{PortBuffer: 1 << 20})
	leafA := n.AddSwitch("leafA", SwitchConfig{PortBuffer: 1 << 20})
	leafB := n.AddSwitch("leafB", SwitchConfig{PortBuffer: 1 << 20})
	link := LinkConfig{Rate: testRate, Latency: 10 * sim.Microsecond}
	uplink := LinkConfig{Rate: 10 * testRate, Latency: 10 * sim.Microsecond}
	n.Connect(leafA, core, uplink)
	n.Connect(leafB, core, uplink)
	var hostsA, hostsB []*Device
	for i := 0; i < 2; i++ {
		h := n.AddHost("ha")
		n.Connect(h, leafA, link)
		hostsA = append(hostsA, h)
	}
	for i := 0; i < 2; i++ {
		h := n.AddHost("hb")
		n.Connect(h, leafB, link)
		hostsB = append(hostsB, h)
	}
	n.ComputeRoutes()

	// Use distinct source NICs so the two paths are timed independently.
	var crossArrive, localArrive sim.Time
	hostsB[0].SetHandler(func(pkt *Packet) { crossArrive = s.Now() })
	hostsA[0].SetHandler(func(pkt *Packet) { localArrive = s.Now() })
	n.Inject(&Packet{Src: hostsA[0].ID(), Dst: hostsB[0].ID(), Size: 1000})
	n.Inject(&Packet{Src: hostsA[1].ID(), Dst: hostsA[0].ID(), Size: 1000})
	s.Run()
	if crossArrive == 0 || localArrive == 0 {
		t.Fatal("cross-switch or local packet not delivered")
	}
	// Cross-switch path has 4 hops (h→leafA→core→leafB→h); local has 2.
	if crossArrive <= localArrive {
		t.Fatalf("cross-switch (%v) should be slower than local (%v)", crossArrive, localArrive)
	}
}

func TestUplinkBottleneck(t *testing.T) {
	// 4 hosts per leaf; uplink has the same rate as a host link, so 4
	// simultaneous cross-switch flows are 4:1 oversubscribed.
	s := sim.New(1)
	n := New(s)
	core := n.AddSwitch("core", SwitchConfig{PortBuffer: 4000})
	leafA := n.AddSwitch("leafA", SwitchConfig{PortBuffer: 4000})
	leafB := n.AddSwitch("leafB", SwitchConfig{PortBuffer: 4000})
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	n.Connect(leafA, core, link)
	n.Connect(leafB, core, link)
	for i := 0; i < 4; i++ {
		h := n.AddHost("ha")
		n.Connect(h, leafA, link)
	}
	for i := 0; i < 4; i++ {
		h := n.AddHost("hb")
		n.Connect(h, leafB, link)
	}
	n.ComputeRoutes()
	var delivered int
	for i := 4; i < 8; i++ {
		n.Host(NodeID(i)).SetHandler(func(pkt *Packet) { delivered++ })
	}
	const per = 20
	for i := 0; i < per; i++ {
		for src := 0; src < 4; src++ {
			n.Inject(&Packet{Src: NodeID(src), Dst: NodeID(4 + src), Size: 1000})
		}
	}
	s.Run()
	if n.Drops() == 0 {
		t.Fatal("expected drops on the oversubscribed uplink")
	}
	if delivered+int(n.Drops()) != 4*per {
		t.Fatalf("conservation: delivered %d + drops %d != %d", delivered, n.Drops(), 4*per)
	}
}

func TestEgressStats(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	b.SetHandler(func(pkt *Packet) {})
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 500})
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 500})
	s.Run()
	var found bool
	for _, st := range n.Stats() {
		if st.Name == "a->b" {
			found = true
			if st.Sent != 2 || st.SentBytes != 1000 {
				t.Fatalf("stats = %+v", st)
			}
			if st.MaxQueue < 500 {
				t.Fatalf("maxQueue = %d, want >= 500", st.MaxQueue)
			}
		}
	}
	if !found {
		t.Fatal("a->b egress not in stats")
	}
}

func TestZeroSizedNetworkOperations(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	n.ComputeRoutes() // no devices: must not panic
	if n.NumHosts() != 0 || n.Drops() != 0 {
		t.Fatal("empty network should have zero counters")
	}
}
