package netsim

import (
	"testing"

	"repro/internal/sim"
)

// Focused unit tests for the egress queue (egress.go): admission,
// tail-drop failure path, priority exemption, lossless reservation with
// stalled-waiter wakeup, high-water accounting, and drain callbacks.

// TestEgressTailDropFailurePath: a lossy egress whose buffer is full
// drops exactly the overflow, counts it, and never delivers it — the
// surviving packets arrive in FIFO order.
func TestEgressTailDropFailurePath(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	// A 2:1 fan-in through a two-packet port buffer: the egress drains
	// at the same rate each sender injects, so the queue grows and
	// overflows.
	s, n := starNetwork(t, 3, SwitchConfig{PortBuffer: 2000}, link)
	type rx struct{ src, seq int64 }
	var got []rx
	n.Host(2).SetHandler(func(pkt *Packet) { got = append(got, rx{int64(pkt.Src), pkt.Seq}) })
	const per = 10
	for i := 0; i < per; i++ {
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 1000, Seq: int64(i)})
		n.Inject(&Packet{Src: 1, Dst: 2, Size: 1000, Seq: int64(i)})
	}
	s.Run()
	if n.Drops() == 0 {
		t.Fatal("no drops on an overfull lossy egress")
	}
	if int(n.Drops())+len(got) != 2*per {
		t.Fatalf("conservation: %d delivered + %d dropped != %d injected", len(got), n.Drops(), 2*per)
	}
	// Survivors of each flow keep their order: tail-drop removes
	// packets but never reorders a queue.
	last := map[int64]int64{0: -1, 1: -1}
	for _, r := range got {
		if r.seq <= last[r.src] {
			t.Fatalf("flow %d survivors out of order: %v", r.src, got)
		}
		last[r.src] = r.seq
	}
	// The drop is visible in the per-egress stats of the switch port.
	found := false
	for _, st := range n.Stats() {
		if st.Drops > 0 {
			found = true
			if st.Sent != uint64(len(got)) {
				t.Fatalf("egress %s sent %d, want %d survivors", st.Name, st.Sent, len(got))
			}
		}
	}
	if !found {
		t.Fatal("no egress reported its drops")
	}
}

// TestEgressPriorityExemptFromCapacity: control-priority packets are
// admitted to a full queue (never tail-dropped) and overtake the queued
// data backlog.
func TestEgressPriorityExemptFromCapacity(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	s, n := starNetwork(t, 2, SwitchConfig{PortBuffer: 2000}, link)
	var got []int64
	n.Host(1).SetHandler(func(pkt *Packet) { got = append(got, pkt.Seq) })
	// Fill the buffer with data, then inject a priority frame.
	for i := 0; i < 2; i++ {
		n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000, Seq: int64(i)})
	}
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 40, Seq: 99, Prio: true})
	s.Run()
	if n.Drops() != 0 {
		t.Fatalf("priority packet must never be dropped (drops=%d)", n.Drops())
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(got))
	}
	// The priority frame passes the switch's queued data: it cannot beat
	// packet 0 (already serializing on the host NIC before the switch
	// queue forms) but must arrive before the last data packet.
	last := got[len(got)-1]
	if last == 99 {
		t.Fatalf("priority frame arrived last: %v", got)
	}
}

// TestEgressLosslessReservationWakesWaiters: with credit backpressure,
// an upstream transmitter stalls when the downstream buffer is full
// (head-of-line blocking, zero drops) and resumes when serialization
// frees bytes — every packet is eventually delivered.
func TestEgressLosslessReservationWakesWaiters(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	s, n := starNetwork(t, 3, SwitchConfig{PortBuffer: 1000, Lossless: true}, link)
	var delivered int
	n.Host(2).SetHandler(func(pkt *Packet) { delivered++ })
	// Two senders push five packets each through a one-packet buffer.
	const per = 5
	for i := 0; i < per; i++ {
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 1000, Seq: int64(i)})
		n.Inject(&Packet{Src: 1, Dst: 2, Size: 1000, Seq: int64(i)})
	}
	s.Run()
	if n.Drops() != 0 {
		t.Fatalf("lossless egress dropped %d packets", n.Drops())
	}
	if delivered != 2*per {
		t.Fatalf("delivered %d, want %d (stalled waiter never woke?)", delivered, 2*per)
	}
	// Reservation accounting: the switch egress never held more than its
	// buffer.
	for _, st := range n.Stats() {
		if st.MaxQueue > 1000 && st.Sent > 0 && st.Name == "sw->h" {
			t.Fatalf("egress %s exceeded its buffer: high water %d", st.Name, st.MaxQueue)
		}
	}
}

// TestEgressMaxQueueHighWater: the queued-bytes high-water mark reflects
// the deepest backlog, bounded by the configured buffer.
func TestEgressMaxQueueHighWater(t *testing.T) {
	link := LinkConfig{Rate: testRate, Latency: sim.Microsecond}
	s, n := starNetwork(t, 3, SwitchConfig{PortBuffer: 4000}, link)
	n.Host(2).SetHandler(func(pkt *Packet) {})
	for i := 0; i < 10; i++ {
		n.Inject(&Packet{Src: 0, Dst: 2, Size: 1000})
		n.Inject(&Packet{Src: 1, Dst: 2, Size: 1000})
	}
	s.Run()
	// Only the switch's output ports are capacity-bounded; host NIC
	// queues are unbounded (the transport's window bounds them).
	maxSeen := 0
	for _, st := range n.Stats() {
		if st.Name != "sw->h" {
			continue
		}
		if st.MaxQueue > maxSeen {
			maxSeen = st.MaxQueue
		}
	}
	if maxSeen < 2000 {
		t.Fatalf("high water %d implausibly low under 2:1 fan-in", maxSeen)
	}
	if maxSeen > 4000 {
		t.Fatalf("high water %d exceeds the 4000-byte buffer", maxSeen)
	}
}

// TestEgressDrainCallbacksOneShot: NotifyTxDrain fires exactly once per
// registration, when the host NIC finishes serializing a packet.
func TestEgressDrainCallbacksOneShot(t *testing.T) {
	s, n, a, b := twoHostsDirect(t)
	b.SetHandler(func(pkt *Packet) {})
	fired := 0
	a.NotifyTxDrain(func() { fired++ })
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000})
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000})
	s.Run()
	if fired != 1 {
		t.Fatalf("one-shot drain callback fired %d times, want 1", fired)
	}
	// Re-registration fires again on the next drain.
	a.NotifyTxDrain(func() { fired++ })
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000})
	s.Run()
	if fired != 2 {
		t.Fatalf("re-registered drain callback fired %d times total, want 2", fired)
	}
	// TxBacklogBytes is empty once everything drained.
	if got := a.TxBacklogBytes(); got != 0 {
		t.Fatalf("backlog %d after drain, want 0", got)
	}
}
