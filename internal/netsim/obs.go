package netsim

import "repro/internal/obs"

// Observability hooks. The per-egress counters (sent/drops/maxQueue)
// have always been recorded unconditionally — they are plain integer
// bumps on structs the simulator already owns. What the obs layer adds
// is *live aggregation* into a shared Collector (so a planner run can
// report total packets forwarded or dropped across dozens of throwaway
// probe networks) and per-port event publication for traces. Both are
// gated so a disabled collector costs the hot path exactly one nil
// check per packet.

// Aggregate counter names published by AttachCollector's handles.
const (
	// CtrForwarded counts packets fully serialized by any egress.
	CtrForwarded = "netsim.pkts.forwarded"
	// CtrDropped counts packets tail-dropped at any egress.
	CtrDropped = "netsim.pkts.dropped"
	// CtrWANBytes counts bytes serialized on WAN links (egresses whose
	// both endpoints are routers — the inter-tier links ConnectPorts
	// creates in grid topologies).
	CtrWANBytes = "netsim.bytes.wan"
	// CtrFluidFlows counts transfers priced by the fluid engine instead
	// of being simulated packet by packet (see EnableFluid).
	CtrFluidFlows = "netsim.flows.fluid"
	// CtrFluidBytes counts wire bytes carried by fluid flows.
	CtrFluidBytes = "netsim.bytes.fluid"
)

// AttachCollector wires every existing egress queue to the collector's
// aggregate counters (CtrForwarded, CtrDropped, CtrWANBytes). Call it
// after the topology is complete; egresses created later are not
// covered. A nil collector detaches nothing and disables nothing — it
// is simply a no-op, keeping call sites unconditional.
func (n *Network) AttachCollector(c *obs.Collector) {
	if c == nil {
		return
	}
	n.obsC = c
	fwd := c.Counter(CtrForwarded)
	drop := c.Counter(CtrDropped)
	wanB := c.Counter(CtrWANBytes)
	for _, d := range n.devices {
		for _, e := range d.egr {
			e.ctrFwd, e.ctrDrop, e.ctrWanBytes = fwd, drop, wanB
		}
	}
	if n.fluid != nil {
		n.fluid.ctrFlows = c.Counter(CtrFluidFlows)
		n.fluid.ctrBytes = c.Counter(CtrFluidBytes)
	}
}

// PublishPorts emits one "netsim.port" event per egress queue that
// carried or dropped traffic: packets forwarded, bytes, tail-drops, the
// queue-occupancy high-water mark, and whether the egress is a WAN link
// (router→router). The scope attribute labels which run the snapshot
// belongs to. No-op on a nil collector.
func (n *Network) PublishPorts(c *obs.Collector, scope string) {
	if c == nil {
		return
	}
	for _, d := range n.devices {
		for _, e := range d.egr {
			if e.sent == 0 && e.drops == 0 {
				continue
			}
			wan := 0
			if e.wan {
				wan = 1
			}
			c.Event("netsim.port",
				obs.Str("scope", scope), obs.Str("port", e.name), obs.Int("wan", wan),
				obs.I64("sent", int64(e.sent)), obs.I64("sent_bytes", int64(e.sentBytes)),
				obs.I64("drops", int64(e.drops)), obs.Int("max_queue", e.maxQueue))
		}
	}
}
