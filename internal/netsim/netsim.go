// Package netsim models cluster interconnect hardware at packet
// granularity on top of the sim event core: hosts with full-duplex NICs,
// store-and-forward switches with finite per-output-port buffers, and
// point-to-point links with configurable rate and propagation latency.
//
// Two congestion disciplines are supported, matching the two families of
// networks in the paper:
//
//   - Lossy (Ethernet-like): a packet arriving at a full switch output
//     queue is tail-dropped. Loss recovery is the transport's problem,
//     and the recovery cost (TCP retransmission timeouts) is what creates
//     the contention penalty the paper measures.
//   - Lossless (Myrinet-like): an upstream transmitter reserves buffer
//     space in the downstream output queue before serializing a packet;
//     if no space is available the transmitter stalls (link-level
//     backpressure), which produces head-of-line blocking and transfer
//     serialization instead of loss.
//
// Contention is therefore emergent: nothing in this package knows about
// All-to-All or about the paper's γ and δ parameters.
package netsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// NodeID identifies a host (an MPI-process-capable endpoint).
type NodeID int

// Packet is the unit of transmission. Transports define the semantics of
// Flow, Seq, Kind and Aux; the network layer only reads Src, Dst and Size.
type Packet struct {
	Src, Dst NodeID
	Flow     uint64 // demultiplexing key at the destination host
	Seq      int64  // transport sequence (byte or packet number)
	Ack      int64  // transport cumulative acknowledgment
	Size     int    // total wire size in bytes (headers included)
	Payload  int    // payload bytes carried
	Kind     uint8  // transport-defined packet type
	Prio     bool   // control-priority (e.g. pure ACKs): served first,
	// never tail-dropped. Models 802.1p/TOS control-frame priority and
	// avoids the ACK-compression artifact a single-FIFO model would
	// introduce.
}

// LinkConfig describes one direction of a physical link.
type LinkConfig struct {
	Rate    int64    // bytes per second
	Latency sim.Time // one-way propagation + per-hop processing delay
}

// SwitchConfig describes a switch's queueing discipline.
type SwitchConfig struct {
	PortBuffer int  // bytes of buffer per output port (0 = unbounded)
	Lossless   bool // true: credit backpressure; false: tail-drop
}

// Network is a set of devices plus the routing tables connecting them.
type Network struct {
	sim     *sim.Simulator
	devices []*Device
	hosts   []*Device // devices with a host role, indexed by NodeID

	// fluid, when non-nil, enables flow-level pricing of large
	// transfers (see EnableFluid); obsC remembers the attached
	// collector so EnableFluid and AttachCollector compose in either
	// order.
	fluid *fluidState
	obsC  *obs.Collector
}

// New creates an empty network bound to a simulator.
func New(s *sim.Simulator) *Network {
	return &Network{sim: s}
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *sim.Simulator { return n.sim }

// Device is a network element: either a host (traffic endpoint) or a
// switch (forwarder). Hosts are devices whose host field is non-nil.
type Device struct {
	net      *Network
	name     string
	id       NodeID // valid only for hosts
	isHost   bool
	isRouter bool
	cfg      SwitchConfig
	// Router-only per-packet forwarding delay (see RouterConfig).
	procDelay sim.Time
	egr       []*egress
	routes    map[NodeID]*egress

	// Host-only: transport demultiplexer, set via SetHandler.
	handler func(pkt *Packet)

	// Host-only receive-side software cost: each arriving packet is
	// processed serially by the host CPU for rxCost before delivery.
	// Models the kernel TCP + MPI progress-engine path, whose per-
	// packet cost grows with the number of open connections in
	// select()-based stacks; zero disables the stage (kernel-bypass
	// stacks like GM).
	rxCost  sim.Time
	cpuBusy bool
	cpuQ    []*Packet

	// lost marks a host removed by a node-loss fault (ApplyFaults):
	// arriving packets are blackholed instead of delivered, and every
	// egress touching the host is down. Permanent — node loss has no
	// recovery event.
	lost bool

	// Counters.
	RxPackets uint64
	RxBytes   uint64
	// Blackholed counts packets dropped at delivery because the host was
	// lost when they arrived.
	Blackholed uint64
}

// Lost reports whether a node-loss fault has removed this host.
func (d *Device) Lost() bool { return d.lost }

// RxCost returns the host's per-packet receive processing cost (zero
// for kernel-bypass stacks). The fluid pricer reads it to bound a
// flow's rate by the destination CPU's packet-processing capacity.
func (d *Device) RxCost() sim.Time { return d.rxCost }

// SetRxCost configures the per-packet receive processing cost.
func (d *Device) SetRxCost(c sim.Time) {
	if !d.isHost {
		panic("netsim: SetRxCost on a switch")
	}
	d.rxCost = c
}

// deliver hands a packet to the transport handler. A lost host
// blackholes instead: the packet is counted and discarded, producing
// the silence (no ACKs, no data) a crashed node presents to its peers.
func (d *Device) deliver(pkt *Packet) {
	if d.lost {
		d.Blackholed++
		d.net.obsC.Add(CtrBlackholed, 1)
		return
	}
	d.RxPackets++
	d.RxBytes += uint64(pkt.Size)
	if d.handler != nil {
		d.handler(pkt)
	}
}

// cpuStep serves the receive-processing queue serially.
func (d *Device) cpuStep() {
	if d.cpuBusy || len(d.cpuQ) == 0 {
		return
	}
	pkt := d.cpuQ[0]
	copy(d.cpuQ, d.cpuQ[1:])
	d.cpuQ[len(d.cpuQ)-1] = nil
	d.cpuQ = d.cpuQ[:len(d.cpuQ)-1]
	d.cpuBusy = true
	d.net.sim.After(d.rxCost, func() {
		d.cpuBusy = false
		d.deliver(pkt)
		d.cpuStep()
	})
}

// Name returns the device's diagnostic name.
func (d *Device) Name() string { return d.name }

// ID returns the host's NodeID; calling it on a switch panics.
func (d *Device) ID() NodeID {
	if !d.isHost {
		panic("netsim: ID on a switch")
	}
	return d.id
}

// AddHost creates a new host device. NodeIDs are assigned densely in
// creation order.
func (n *Network) AddHost(name string) *Device {
	d := &Device{net: n, name: name, id: NodeID(len(n.hosts)), isHost: true}
	n.devices = append(n.devices, d)
	n.hosts = append(n.hosts, d)
	return d
}

// AddSwitch creates a new switch device with the given queueing config.
func (n *Network) AddSwitch(name string, cfg SwitchConfig) *Device {
	d := &Device{net: n, name: name, cfg: cfg}
	n.devices = append(n.devices, d)
	return d
}

// NumHosts returns the number of hosts added so far.
func (n *Network) NumHosts() int { return len(n.hosts) }

// Host returns the host device with the given id.
func (n *Network) Host(id NodeID) *Device { return n.hosts[id] }

// SetHandler installs the packet delivery callback for a host. Packets
// addressed to the host are handed to the callback in arrival order.
func (d *Device) SetHandler(h func(pkt *Packet)) {
	if !d.isHost {
		panic("netsim: SetHandler on a switch")
	}
	d.handler = h
}

// Connect joins two devices with a full-duplex link (one egress queue per
// direction, both using cfg). Queue capacity and discipline for each
// direction come from the *downstream* device when it is a switch, since
// the buffer being modeled is the switch's output buffer; traffic flowing
// into a host is drained immediately and needs no finite queue.
func (n *Network) Connect(a, b *Device, cfg LinkConfig) {
	n.connectDir(a, b, cfg)
	n.connectDir(b, a, cfg)
}

// connectDir creates the a→b egress on device a.
func (n *Network) connectDir(a, b *Device, cfg LinkConfig) {
	e := &egress{
		sim:  n.sim,
		name: fmt.Sprintf("%s->%s", a.name, b.name),
		rate: cfg.Rate, latency: cfg.Latency,
		owner: a, peer: b,
		wan: a.isRouter && b.isRouter,
	}
	// The egress queue on device a is a's output buffer. Hosts get an
	// unbounded output queue (the transport's window bounds it); switch
	// egress queues use the switch's own configuration.
	if !a.isHost {
		e.capBytes = a.cfg.PortBuffer
		e.lossless = a.cfg.Lossless
	} else if !b.isHost {
		// A host NIC feeding a lossless switch participates in the
		// credit protocol: it must not serialize a packet the switch
		// cannot buffer.
		e.lossless = b.cfg.Lossless
	}
	a.egr = append(a.egr, e)
}

// ComputeRoutes builds shortest-path next-hop tables for every device via
// BFS from each host. Must be called after the topology is complete and
// before traffic is injected.
func (n *Network) ComputeRoutes() {
	for _, d := range n.devices {
		d.routes = make(map[NodeID]*egress, len(n.hosts))
	}
	for _, dst := range n.hosts {
		// BFS outward from dst; parentEgr[d] is the egress on d that
		// leads one hop closer to dst.
		visited := map[*Device]bool{dst: true}
		queue := []*Device{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			// Examine devices adjacent to cur: every device u with an
			// egress whose peer is cur.
			for _, u := range n.devices {
				if visited[u] {
					continue
				}
				for _, e := range u.egr {
					if e.peer == cur {
						u.routes[dst.id] = e
						visited[u] = true
						queue = append(queue, u)
						break
					}
				}
			}
		}
	}
}

// Inject queues a packet for transmission at the source host. It panics
// if the source has no route to the destination.
func (n *Network) Inject(pkt *Packet) {
	src := n.hosts[pkt.Src]
	e := src.routes[pkt.Dst]
	if e == nil {
		panic(fmt.Sprintf("netsim: no route %s -> host %d", src.name, pkt.Dst))
	}
	e.enqueue(pkt)
}

// arrive is invoked when a packet has fully arrived at device d.
func (d *Device) arrive(pkt *Packet) {
	if d.isHost {
		if pkt.Dst != d.id {
			panic(fmt.Sprintf("netsim: packet for host %d arrived at host %d", pkt.Dst, d.id))
		}
		if d.rxCost > 0 {
			d.cpuQ = append(d.cpuQ, pkt)
			d.cpuStep()
			return
		}
		d.deliver(pkt)
		return
	}
	d.forward(pkt)
}

// TxBacklogBytes returns the bytes currently queued on a host's NIC
// egress (the device transmit queue). Transports use it to emulate the
// bounded device queues of real hosts (txqueuelen): instead of dumping
// whole windows into the NIC FIFO — which would delay returning ACKs by
// the full queue depth and destroy ACK clocking — they pace injection.
func (d *Device) TxBacklogBytes() int {
	if !d.isHost || len(d.egr) == 0 {
		panic("netsim: TxBacklogBytes on a non-host device")
	}
	return d.egr[0].qBytes
}

// NotifyTxDrain registers a one-shot callback invoked the next time the
// host NIC finishes serializing a packet (i.e. when transmit queue space
// frees up). Callbacks fire in registration order.
func (d *Device) NotifyTxDrain(f func()) {
	if !d.isHost || len(d.egr) == 0 {
		panic("netsim: NotifyTxDrain on a non-host device")
	}
	d.egr[0].drainCBs = append(d.egr[0].drainCBs, f)
}

// reserve asks device d to set aside space for pkt before the upstream
// transmitter serializes it (lossless mode). It returns true if space was
// reserved; otherwise retry is registered to fire when space frees up.
func (d *Device) reserve(pkt *Packet, retry func()) bool {
	if d.isHost {
		return true // hosts drain arrivals immediately
	}
	e := d.routes[pkt.Dst]
	if e == nil {
		panic(fmt.Sprintf("netsim: switch %s has no route to host %d", d.name, pkt.Dst))
	}
	return e.reserveBytes(pkt.Size, retry)
}

// Drops returns the total tail-dropped packets across all egress queues.
func (n *Network) Drops() uint64 {
	var total uint64
	for _, d := range n.devices {
		for _, e := range d.egr {
			total += e.drops
		}
	}
	return total
}

// DeliveredPackets returns total packets delivered to host handlers.
func (n *Network) DeliveredPackets() uint64 {
	var total uint64
	for _, h := range n.hosts {
		total += h.RxPackets
	}
	return total
}

// EgressStats describes one egress queue's counters, for tests and the
// ablation experiments.
type EgressStats struct {
	Name      string
	Sent      uint64 // packets fully serialized
	SentBytes uint64
	Drops     uint64 // packets tail-dropped at enqueue
	MaxQueue  int    // high-water mark of queued+reserved bytes
}

// EgressSnapshot returns the live state of the named egress queue:
// bytes queued, bytes reserved by upstream transmitters, and packets
// sent so far. Diagnostic use (experiments and tests).
func (n *Network) EgressSnapshot(name string) (queued, reserved int, sent uint64, ok bool) {
	for _, d := range n.devices {
		for _, e := range d.egr {
			if e.name == name {
				return e.qBytes, e.reserved, e.sent, true
			}
		}
	}
	return 0, 0, 0, false
}

// Stats returns per-egress counters for every queue in the network.
func (n *Network) Stats() []EgressStats {
	var out []EgressStats
	for _, d := range n.devices {
		for _, e := range d.egr {
			out = append(out, EgressStats{
				Name: e.name, Sent: e.sent, SentBytes: e.sentBytes,
				Drops: e.drops, MaxQueue: e.maxQueue,
			})
		}
	}
	return out
}
