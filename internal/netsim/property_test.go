package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestPacketConservationProperty: for random star networks, traffic
// matrices and buffer sizes, every injected packet is either delivered
// or counted as dropped — never duplicated, never lost silently. In
// lossless mode drops must be zero.
func TestPacketConservationProperty(t *testing.T) {
	prop := func(seed int64, hosts8, pkts8, buf16 uint8, lossless bool) bool {
		hosts := int(hosts8%6) + 2
		pkts := int(pkts8%64) + 1
		buf := (int(buf16%16) + 2) * 1500
		s := sim.New(seed)
		n := New(s)
		sw := n.AddSwitch("sw", SwitchConfig{PortBuffer: buf, Lossless: lossless})
		link := LinkConfig{Rate: 1_000_000, Latency: sim.Microsecond}
		for i := 0; i < hosts; i++ {
			n.Connect(n.AddHost("h"), sw, link)
		}
		n.ComputeRoutes()
		delivered := 0
		for i := 0; i < hosts; i++ {
			n.Host(NodeID(i)).SetHandler(func(pkt *Packet) { delivered++ })
		}
		rng := s.Rand()
		injected := 0
		for k := 0; k < pkts; k++ {
			src := rng.Intn(hosts)
			dst := rng.Intn(hosts - 1)
			if dst >= src {
				dst++
			}
			n.Inject(&Packet{Src: NodeID(src), Dst: NodeID(dst), Size: 200 + rng.Intn(1300)})
			injected++
		}
		s.Run()
		if lossless && n.Drops() != 0 {
			return false
		}
		return delivered+int(n.Drops()) == injected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDeliveryTimePhysicalBoundProperty: a packet can never arrive
// earlier than its serialization plus propagation over the two hops of
// a star network.
func TestDeliveryTimePhysicalBoundProperty(t *testing.T) {
	prop := func(seed int64, size16 uint16) bool {
		size := int(size16%4096) + 64
		s := sim.New(seed)
		n := New(s)
		sw := n.AddSwitch("sw", SwitchConfig{PortBuffer: 1 << 20})
		link := LinkConfig{Rate: 2_000_000, Latency: 5 * sim.Microsecond}
		a := n.AddHost("a")
		b := n.AddHost("b")
		n.Connect(a, sw, link)
		n.Connect(b, sw, link)
		n.ComputeRoutes()
		var at sim.Time
		b.SetHandler(func(pkt *Packet) { at = s.Now() })
		n.Inject(&Packet{Src: 0, Dst: 1, Size: size})
		s.Run()
		bound := 2 * (sim.TransmitTime(size, 2_000_000) + 5*sim.Microsecond)
		return at >= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
