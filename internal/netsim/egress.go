package netsim

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// egress is one direction of a link: a FIFO output queue plus a
// transmitter that serializes packets at the link rate and delivers them
// to the peer device after the propagation latency.
//
// Store-and-forward semantics: a packet occupies queue bytes from enqueue
// (or from reservation, in lossless mode) until its serialization onto
// the wire completes.
type egress struct {
	sim     *sim.Simulator
	name    string
	rate    int64    // bytes per second
	latency sim.Time // propagation delay
	owner   *Device
	peer    *Device

	capBytes int  // capacity of queued+reserved bytes; 0 = unbounded
	lossless bool // reserve downstream space before transmitting

	q        []*Packet
	prioQ    []*Packet // control-priority packets, served first
	qBytes   int       // bytes of packets physically in the queue
	reserved int       // bytes promised to in-flight upstream transmissions
	busy     bool
	waiters  []func() // upstream transmitters stalled on reservation

	sent      uint64
	sentBytes uint64
	drops     uint64
	maxQueue  int

	// wan marks a router→router egress: a WAN tier link in grid
	// topologies, whose byte total feeds the CtrWANBytes aggregate.
	wan bool
	// down halts the transmitter (see ApplyFaults): enqueued packets
	// wait, fluid flows crossing the egress freeze at rate zero. The
	// nominal rate is saved the first time a fault touches the egress so
	// degradation and recovery can restore it.
	down        bool
	nominalRate int64
	// Live obs counter handles, nil unless AttachCollector wired them:
	// the disabled hot path pays one nil check per packet.
	ctrFwd, ctrDrop, ctrWanBytes *obs.Counter

	drainCBs []func() // one-shot transmit-drain notifications (host NICs)
}

// enqueue admits a packet to the output queue, tail-dropping in lossy
// mode when the buffer is full. In lossless mode the bytes were reserved
// by the upstream transmitter, so admission always succeeds and converts
// the reservation into real occupancy.
func (e *egress) enqueue(pkt *Packet) {
	if pkt.Prio {
		// Control frames: exempt from capacity accounting and loss
		// (they are a fraction of a percent of the bytes), served
		// ahead of data.
		e.qBytes += pkt.Size
		e.prioQ = append(e.prioQ, pkt)
		e.maybeStart()
		return
	}
	if e.lossless {
		if e.reserved < pkt.Size {
			// Packets injected directly by a host (first hop) were not
			// reserved; treat their enqueue as implicit reservation.
			// This happens only on host NIC queues, which are unbounded.
			e.qBytes += pkt.Size
		} else {
			e.reserved -= pkt.Size
			e.qBytes += pkt.Size
		}
	} else {
		if e.capBytes > 0 && e.qBytes+pkt.Size > e.capBytes {
			e.drops++
			if e.ctrDrop != nil {
				e.ctrDrop.Add(1)
			}
			return
		}
		e.qBytes += pkt.Size
	}
	if occ := e.qBytes + e.reserved; occ > e.maxQueue {
		e.maxQueue = occ
	}
	e.q = append(e.q, pkt)
	e.maybeStart()
}

// reserveBytes reserves space for an upstream packet (lossless mode).
// If the queue is full, retry is registered and false returned.
func (e *egress) reserveBytes(size int, retry func()) bool {
	if e.capBytes > 0 && e.qBytes+e.reserved+size > e.capBytes {
		e.waiters = append(e.waiters, retry)
		return false
	}
	e.reserved += size
	if occ := e.qBytes + e.reserved; occ > e.maxQueue {
		e.maxQueue = occ
	}
	return true
}

// maybeStart begins serializing the head packet if the transmitter is
// idle. In lossless mode it first reserves space downstream; a failed
// reservation leaves the head packet in place (head-of-line blocking)
// and arranges a retry when space frees.
func (e *egress) maybeStart() {
	if e.busy || e.down {
		return
	}
	var pkt *Packet
	if len(e.prioQ) > 0 {
		pkt = e.prioQ[0]
		copy(e.prioQ, e.prioQ[1:])
		e.prioQ[len(e.prioQ)-1] = nil
		e.prioQ = e.prioQ[:len(e.prioQ)-1]
	} else {
		if len(e.q) == 0 {
			return
		}
		pkt = e.q[0]
		if e.lossless && !e.peer.reserve(pkt, e.maybeStart) {
			return
		}
		copy(e.q, e.q[1:])
		e.q[len(e.q)-1] = nil
		e.q = e.q[:len(e.q)-1]
	}
	e.busy = true
	txTime := sim.TransmitTime(pkt.Size, e.rate)
	e.sim.After(txTime, func() { e.finishTx(pkt) })
}

// finishTx completes serialization of pkt: frees its buffer bytes, wakes
// stalled upstream transmitters, schedules delivery at the peer after the
// propagation latency, and starts the next packet.
func (e *egress) finishTx(pkt *Packet) {
	e.busy = false
	e.qBytes -= pkt.Size
	e.sent++
	e.sentBytes += uint64(pkt.Size)
	if e.ctrFwd != nil {
		e.ctrFwd.Add(1)
		if e.wan {
			e.ctrWanBytes.Add(uint64(pkt.Size))
		}
	}
	if len(e.waiters) > 0 {
		ws := e.waiters
		e.waiters = nil
		for _, w := range ws {
			w()
		}
	}
	peer := e.peer
	e.sim.After(e.latency, func() { peer.arrive(pkt) })
	if len(e.drainCBs) > 0 {
		cbs := e.drainCBs
		e.drainCBs = nil
		for _, cb := range cbs {
			cb()
		}
	}
	e.maybeStart()
}
