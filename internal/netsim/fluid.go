package netsim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Flow-level ("fluid") transfer pricing. Instead of serializing every
// segment and ACK through the event loop, a large steady-state transfer
// becomes a single flow with a byte count and an instantaneous rate.
// Rates are recomputed by deterministic max-min fair sharing over the
// links each flow crosses whenever the flow set changes, so concurrent
// flows still contend for WAN capacity — just at flow granularity
// instead of packet granularity. Transports opt in per transfer (see
// transport.TCPConfig and the eligibility rules in the tcp fluid hook);
// everything below the configured byte threshold keeps the packet
// engine, because the RTO-noisy small-transfer regime (docs/MODEL.md
// §6) has no steady state for a fluid model to price.

// DefaultFluidThreshold is the transfer size, in payload bytes, at and
// below which fluid-enabled networks still simulate packet-by-packet.
// 32 KiB matches the RTO-noisy regime boundary in docs/MODEL.md §6:
// below it, completion time is dominated by slow-start and timeout
// draws, not steady-state throughput.
const DefaultFluidThreshold = 32 << 10

// FluidConfig configures the flow-level pricer.
type FluidConfig struct {
	// Threshold is the payload-byte cutoff: transfers of Threshold
	// bytes or fewer stay packet-level. Zero selects
	// DefaultFluidThreshold.
	Threshold int
}

// fluidState is the per-network flow table.
type fluidState struct {
	threshold int
	nextID    uint64
	flows     []*fluidFlow

	ctrFlows, ctrBytes *obs.Counter
}

// fluidFlow is one in-flight analytic transfer.
type fluidFlow struct {
	id      uint64
	links   []*egress // links crossed, in path order
	latency sim.Time  // one-way path latency (propagation + processing)
	remain  float64   // wire bytes still to carry
	capRate float64   // flow's own rate ceiling (window/RTT, rx CPU)
	rate    float64   // current allocated rate, bytes/s
	last    sim.Time  // sim time rate/remain were last settled
	gen     uint64    // invalidates stale completion timers
	drained func()    // last byte entered the pipe (source side free)
	done    func()    // last byte arrived (drained + path latency)
}

// EnableFluid turns on flow-level pricing for this network. Call any
// time after New; composes with AttachCollector in either order. Large
// transfers are only actually priced fluidly when a transport asks for
// it via StartFluidFlow — enabling the mode changes nothing by itself.
func (n *Network) EnableFluid(cfg FluidConfig) {
	thr := cfg.Threshold
	if thr == 0 {
		thr = DefaultFluidThreshold
	}
	n.fluid = &fluidState{threshold: thr}
	if n.obsC != nil {
		n.fluid.ctrFlows = n.obsC.Counter(CtrFluidFlows)
		n.fluid.ctrBytes = n.obsC.Counter(CtrFluidBytes)
	}
}

// FluidThreshold returns the payload-byte threshold above which
// transfers may be priced fluidly, or 0 when fluid mode is disabled.
func (n *Network) FluidThreshold() int {
	if n.fluid == nil {
		return 0
	}
	return n.fluid.threshold
}

// PathInfo summarizes the routed path between two hosts, as needed by a
// transport to decide fluid eligibility and derive a flow's rate cap.
type PathInfo struct {
	// Bottleneck is the minimum link rate along the path, bytes/s.
	Bottleneck int64
	// Latency is the one-way path latency: link propagation plus
	// router processing delays.
	Latency sim.Time
	// SerialPerByte is the summed per-byte serialization time across
	// all hops (store-and-forward adds one packet serialization per
	// hop).
	SerialPerByte float64
	// MinBuffer is the smallest finite lossy egress buffer on the
	// path in bytes, or 0 if every egress is unbounded or lossless.
	MinBuffer int
	// Hops is the number of links crossed.
	Hops int
	// CrossesWAN reports whether any link is a router→router WAN link.
	CrossesWAN bool
	// RxCost is the destination host's per-packet receive CPU cost.
	RxCost sim.Time
}

// PathInfo computes the routed path summary from src to dst. The bool
// result is false when no route exists or routes were not computed.
func (n *Network) PathInfo(src, dst NodeID) (PathInfo, bool) {
	var pi PathInfo
	if int(src) >= len(n.hosts) || int(dst) >= len(n.hosts) || src == dst {
		return pi, false
	}
	cur := n.hosts[src]
	pi.Bottleneck = math.MaxInt64
	for !(cur.isHost && cur.id == dst) {
		if cur.routes == nil {
			return PathInfo{}, false
		}
		e := cur.routes[dst]
		if e == nil {
			return PathInfo{}, false
		}
		pi.Hops++
		if pi.Hops > len(n.devices) {
			return PathInfo{}, false // routing loop
		}
		pi.Latency += e.latency
		if e.rate > 0 {
			pi.SerialPerByte += 1.0 / float64(e.rate)
			if e.rate < pi.Bottleneck {
				pi.Bottleneck = e.rate
			}
		}
		if !e.lossless && e.capBytes > 0 && (pi.MinBuffer == 0 || e.capBytes < pi.MinBuffer) {
			pi.MinBuffer = e.capBytes
		}
		if e.wan {
			pi.CrossesWAN = true
		}
		cur = e.peer
		if !cur.isHost {
			pi.Latency += cur.procDelay
		}
	}
	if pi.Bottleneck == math.MaxInt64 {
		pi.Bottleneck = 0
	}
	pi.RxCost = n.hosts[dst].rxCost
	return pi, true
}

// StartFluidFlow injects an analytic transfer of wireBytes from src to
// dst, rate-capped at capRate bytes/s (the transport's window/RTT and
// receive-CPU ceiling). drained fires when the last byte has entered
// the pipe — the moment a byte-stream sender would start its next
// message — and done fires one path latency later, when that byte
// arrives. Either callback may be nil. It panics if fluid mode is
// disabled or no route exists, mirroring Inject's contract.
func (n *Network) StartFluidFlow(src, dst NodeID, wireBytes int64, capRate float64, drained, done func()) {
	fl := n.fluid
	if fl == nil {
		panic("netsim: StartFluidFlow with fluid mode disabled")
	}
	links, latency := n.fluidPath(src, dst)
	if capRate <= 0 || wireBytes <= 0 {
		panic(fmt.Sprintf("netsim: StartFluidFlow invalid capRate=%g wireBytes=%d", capRate, wireBytes))
	}
	fl.nextID++
	f := &fluidFlow{
		id: fl.nextID, links: links, latency: latency,
		remain: float64(wireBytes), capRate: capRate,
		last: n.sim.Now(), drained: drained, done: done,
	}
	fl.flows = append(fl.flows, f)
	if fl.ctrFlows != nil {
		fl.ctrFlows.Add(1)
		fl.ctrBytes.Add(uint64(wireBytes))
	}
	n.fluidRecompute()
}

// fluidPath collects the egress list and latency from src to dst.
func (n *Network) fluidPath(src, dst NodeID) ([]*egress, sim.Time) {
	cur := n.hosts[src]
	var links []*egress
	var latency sim.Time
	for !(cur.isHost && cur.id == dst) {
		e := cur.routes[dst]
		if e == nil {
			panic(fmt.Sprintf("netsim: no route %s -> host %d", cur.name, dst))
		}
		links = append(links, e)
		latency += e.latency
		cur = e.peer
		if !cur.isHost {
			latency += cur.procDelay
		}
		if len(links) > len(n.devices) {
			panic("netsim: routing loop in fluidPath")
		}
	}
	return links, latency
}

// fluidRecompute settles every flow's progress to the current sim time,
// retires finished flows, reallocates rates by max-min fair share, and
// schedules a completion check at each flow's projected finish. Timers
// carry the flow's generation so a reallocation invalidates stale ones.
func (n *Network) fluidRecompute() {
	fl := n.fluid
	now := n.sim.Now()
	var finished []*fluidFlow
	live := make([]*fluidFlow, 0, len(fl.flows))
	for _, f := range fl.flows {
		if dt := now - f.last; dt > 0 && f.rate > 0 {
			f.remain -= f.rate * (float64(dt) / float64(sim.Second))
		}
		f.last = now
		f.gen++
		if f.remain <= 0.5 {
			finished = append(finished, f)
		} else {
			live = append(live, f)
		}
	}
	fl.flows = live
	waterfillFluid(live)
	for _, f := range live {
		if f.rate <= 0 {
			continue
		}
		ns := math.Ceil(f.remain / f.rate * float64(sim.Second))
		if ns < 1 {
			ns = 1
		}
		gen := f.gen
		ff := f
		n.sim.After(sim.Time(ns), func() {
			if ff.gen == gen {
				n.fluidRecompute()
			}
		})
	}
	for _, f := range finished {
		if f.drained != nil {
			// Fire via a zero-delay event, not inline: the callback may
			// start the connection's next flow, which re-enters
			// fluidRecompute.
			n.sim.After(0, f.drained)
		}
		if f.done != nil {
			n.sim.After(f.latency, f.done)
		}
	}
}

// waterfillFluid assigns max-min fair rates: repeatedly find the most
// constrained link (smallest capacity/flows share), freeze its flows at
// that share, subtract, and recurse over the rest. Flows whose own
// capRate is below the share freeze there instead. Deterministic: links
// are processed in first-seen order over the (insertion-ordered) flow
// list, shares depend only on capacities and membership.
func waterfillFluid(flows []*fluidFlow) {
	if len(flows) == 0 {
		return
	}
	// A flow crossing a downed link (fault injection, ApplyFaults) is
	// frozen at rate zero: it keeps its remaining bytes, schedules no
	// completion timer, and resumes when a recovery transition triggers
	// the next recompute. It must be excluded here — a down link cannot
	// be modeled as rate 0 because the rate<=0 test below means
	// "unconstrained", not "unusable".
	blocked := false
	for _, f := range flows {
		for _, e := range f.links {
			if e.down {
				blocked = true
			}
		}
	}
	if blocked {
		live := make([]*fluidFlow, 0, len(flows))
	nextFlow:
		for _, f := range flows {
			for _, e := range f.links {
				if e.down {
					f.rate = 0
					continue nextFlow
				}
			}
			live = append(live, f)
		}
		flows = live
		if len(flows) == 0 {
			return
		}
	}
	type linkState struct {
		capLeft float64
		n       int
	}
	idx := make(map[*egress]int)
	var links []*egress
	var states []*linkState
	for _, f := range flows {
		f.rate = 0
		for _, e := range f.links {
			if e.rate <= 0 {
				continue
			}
			i, ok := idx[e]
			if !ok {
				i = len(links)
				idx[e] = i
				links = append(links, e)
				states = append(states, &linkState{capLeft: float64(e.rate)})
			}
			states[i].n++
		}
	}
	unfrozen := len(flows)
	frozen := make(map[*fluidFlow]bool, len(flows))
	freeze := func(f *fluidFlow, rate float64) {
		f.rate = rate
		frozen[f] = true
		for _, e := range f.links {
			if i, ok := idx[e]; ok {
				st := states[i]
				st.n--
				st.capLeft -= rate
				if st.capLeft < 0 {
					st.capLeft = 0
				}
			}
		}
	}
	for unfrozen > 0 {
		// Smallest per-flow share over links still carrying unfrozen flows.
		share := math.Inf(1)
		for _, st := range states {
			if st.n > 0 {
				if s := st.capLeft / float64(st.n); s < share {
					share = s
				}
			}
		}
		progressed := false
		if !math.IsInf(share, 1) {
			// Pass 1: flows capped below the share freeze at their cap.
			for _, f := range flows {
				if frozen[f] || f.capRate > share {
					continue
				}
				freeze(f, f.capRate)
				unfrozen--
				progressed = true
			}
			if progressed {
				continue // shares changed; recompute before freezing links
			}
			// Pass 2: freeze flows crossing a bottleneck link at the share.
			for _, f := range flows {
				if frozen[f] {
					continue
				}
				bottled := false
				for _, e := range f.links {
					i, ok := idx[e]
					if !ok {
						continue
					}
					st := states[i]
					if st.n > 0 && st.capLeft/float64(st.n) <= share*(1+1e-9) {
						bottled = true
						break
					}
				}
				if bottled {
					freeze(f, share)
					unfrozen--
					progressed = true
				}
			}
		}
		if !progressed {
			// No finite share (flows crossing only unbounded-rate links)
			// or numeric stall: freeze everything left at its own cap.
			for _, f := range flows {
				if !frozen[f] {
					freeze(f, f.capRate)
					unfrozen--
				}
			}
		}
	}
	// Deterministic output regardless of map iteration: rates were
	// assigned in flow order; nothing above depends on map order, but
	// sort flows by id for the avoidance of doubt in future edits.
	sort.SliceStable(flows, func(i, j int) bool { return flows[i].id < flows[j].id })
}
