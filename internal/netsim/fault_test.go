package netsim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// faultWANPair is wanPair with distinct device names, so egress port
// names ("a->swA", "rtA->rtB", ...) are unambiguous fault targets.
func faultWANPair(t *testing.T, wanRate int64, wanLat sim.Time) (*sim.Simulator, *Network) {
	t.Helper()
	s := sim.New(1)
	n := New(s)
	lan := LinkConfig{Rate: testRate, Latency: 10 * sim.Microsecond}
	wan := LinkConfig{Rate: wanRate, Latency: wanLat}
	port := PortConfig{Buffer: 64 << 10}
	a := n.AddHost("a")
	swA := n.AddSwitch("swA", SwitchConfig{PortBuffer: 1 << 20})
	rtA := n.AddRouter("rtA", RouterConfig{ProcDelay: sim.Microsecond})
	b := n.AddHost("b")
	swB := n.AddSwitch("swB", SwitchConfig{PortBuffer: 1 << 20})
	rtB := n.AddRouter("rtB", RouterConfig{ProcDelay: sim.Microsecond})
	n.Connect(a, swA, lan)
	n.Connect(swA, rtA, lan)
	n.Connect(b, swB, lan)
	n.Connect(swB, rtB, lan)
	n.ConnectPorts(rtA, rtB, wan, wan, port, port)
	n.ComputeRoutes()
	return s, n
}

// TestLinkFaultDownDelaysDelivery: a packet injected during an outage
// waits in the egress queue and serializes only after recovery.
func TestLinkFaultDownDelaysDelivery(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	fs := FaultSchedule{Links: []LinkFault{
		{Port: "a->b", At: sim.Millisecond, Until: 20 * sim.Millisecond},
	}}
	if err := n.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	var arrival sim.Time
	b.SetHandler(func(pkt *Packet) { arrival = s.Now() })
	s.At(5*sim.Millisecond, func() { n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000}) })
	s.Run()
	// Recovery at 20ms, then serialize (1ms) + propagate (10µs).
	want := 20*sim.Millisecond + sim.Millisecond + 10*sim.Microsecond
	if arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

// TestLinkFaultDegradeSlowsSerialization: RateFraction 0.5 doubles
// serialization time while the fault is active, and the link returns to
// nominal speed after Until.
func TestLinkFaultDegradeSlowsSerialization(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	fs := FaultSchedule{Links: []LinkFault{
		{Port: "a->b", At: sim.Millisecond, Until: 50 * sim.Millisecond, RateFraction: 0.5},
	}}
	if err := n.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	var arrivals []sim.Time
	b.SetHandler(func(pkt *Packet) { arrivals = append(arrivals, s.Now()) })
	s.At(5*sim.Millisecond, func() { n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000, Seq: 1}) })
	s.At(60*sim.Millisecond, func() { n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000, Seq: 2}) })
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	// Degraded to testRate/2: 1000 bytes serialize in 2ms instead of 1ms.
	if want := 5*sim.Millisecond + 2*sim.Millisecond + 10*sim.Microsecond; arrivals[0] != want {
		t.Fatalf("degraded arrival = %v, want %v", arrivals[0], want)
	}
	// After Until the nominal rate is restored.
	if want := 60*sim.Millisecond + sim.Millisecond + 10*sim.Microsecond; arrivals[1] != want {
		t.Fatalf("recovered arrival = %v, want %v", arrivals[1], want)
	}
}

// TestOverlappingLinkFaultsCompose: two overlapping outages on the same
// port recover only when the last one ends (the downN refcount).
func TestOverlappingLinkFaultsCompose(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	fs := FaultSchedule{Links: []LinkFault{
		{Port: "a->b", At: sim.Millisecond, Until: 10 * sim.Millisecond},
		{Port: "a->b", At: 5 * sim.Millisecond, Until: 30 * sim.Millisecond},
	}}
	if err := n.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	var arrival sim.Time
	b.SetHandler(func(pkt *Packet) { arrival = s.Now() })
	s.At(2*sim.Millisecond, func() { n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000}) })
	s.Run()
	want := 30*sim.Millisecond + sim.Millisecond + 10*sim.Microsecond
	if arrival != want {
		t.Fatalf("arrival = %v, want %v (first recovery must not reopen the link)", arrival, want)
	}
}

// TestNodeLostBlackholesDelivery: a packet in flight when its
// destination dies is discarded at delivery, counted, and never handed
// to the handler.
func TestNodeLostBlackholesDelivery(t *testing.T) {
	s, n, _, b := twoHostsDirect(t)
	c := obs.New()
	n.AttachCollector(c)
	fs := FaultSchedule{Nodes: []NodeFault{{Host: "b", At: 500 * sim.Microsecond}}}
	if err := n.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	b.SetHandler(func(pkt *Packet) { delivered++ })
	n.Inject(&Packet{Src: 0, Dst: 1, Size: 1000}) // arrives ~1.01ms, after the loss
	s.Run()
	if delivered != 0 {
		t.Fatalf("handler ran %d times on a lost host", delivered)
	}
	if !b.Lost() {
		t.Fatal("host b not marked lost")
	}
	if b.Blackholed != 1 {
		t.Fatalf("Blackholed = %d, want 1", b.Blackholed)
	}
	if got := c.Counter(CtrBlackholed).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", CtrBlackholed, got)
	}
	if got := c.Counter(CtrNodeLost).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", CtrNodeLost, got)
	}
}

// TestFaultCounters pins the transition counters emitted through an
// attached collector.
func TestFaultCounters(t *testing.T) {
	s, n, _, _ := twoHostsDirect(t)
	c := obs.New()
	n.AttachCollector(c)
	fs := FaultSchedule{Links: []LinkFault{
		{Port: "a->b", At: sim.Millisecond, Until: 2 * sim.Millisecond},
		{Port: "b->a", At: sim.Millisecond, Until: 3 * sim.Millisecond, RateFraction: 0.25},
	}}
	if err := n.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got := c.Counter(CtrLinkDown).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", CtrLinkDown, got)
	}
	if got := c.Counter(CtrLinkUp).Value(); got != 2 {
		t.Fatalf("%s = %d, want 2", CtrLinkUp, got)
	}
}

// TestApplyFaultsValidates rejects unknown targets and malformed
// intervals up front, before arming any events.
func TestApplyFaultsValidates(t *testing.T) {
	cases := []struct {
		name string
		fs   FaultSchedule
		want string
	}{
		{"unknown port", FaultSchedule{Links: []LinkFault{{Port: "x->y", At: 1}}}, "unknown port"},
		{"unknown host", FaultSchedule{Nodes: []NodeFault{{Host: "zz", At: 1}}}, "unknown host"},
		{"fraction one", FaultSchedule{Links: []LinkFault{{Port: "a->b", At: 1, RateFraction: 1}}}, "RateFraction"},
		{"fraction negative", FaultSchedule{Links: []LinkFault{{Port: "a->b", At: 1, RateFraction: -0.1}}}, "RateFraction"},
		{"until before at", FaultSchedule{Links: []LinkFault{{Port: "a->b", At: 5, Until: 3}}}, "not after"},
	}
	for _, tc := range cases {
		_, n, _, _ := twoHostsDirect(t)
		err := n.ApplyFaults(tc.fs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestFaultScheduleQueries covers Empty and the NodeLostBy oracle.
func TestFaultScheduleQueries(t *testing.T) {
	var fs FaultSchedule
	if !fs.Empty() {
		t.Fatal("zero schedule not Empty")
	}
	fs.Nodes = []NodeFault{{Host: "h2", At: 10 * sim.Millisecond}}
	if fs.Empty() {
		t.Fatal("schedule with a node fault reported Empty")
	}
	if fs.NodeLostBy("h2", 9*sim.Millisecond) {
		t.Fatal("host reported lost before its fault time")
	}
	if !fs.NodeLostBy("h2", 10*sim.Millisecond) {
		t.Fatal("host not lost at its fault time")
	}
	if fs.NodeLostBy("h3", sim.Second) {
		t.Fatal("unfaulted host reported lost")
	}
}

// TestGenFaultScheduleDeterministic: same seed and inputs reproduce the
// schedule exactly; a different seed perturbs it; all draws respect the
// configured bounds; zero horizon yields the empty schedule.
func TestGenFaultScheduleDeterministic(t *testing.T) {
	ports := []string{"p0", "p1", "p2"}
	hosts := []string{"h0", "h1", "h2", "h3"}
	cfg := FaultGenConfig{
		LinkFlaps: 5, NodeLosses: 2, Horizon: sim.Second,
		MinOutage: 10 * sim.Millisecond, MaxOutage: 100 * sim.Millisecond,
		DegradeProb: 0.5,
	}
	a := GenFaultSchedule(42, ports, hosts, cfg)
	b := GenFaultSchedule(42, ports, hosts, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if c := GenFaultSchedule(43, ports, hosts, cfg); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Links) != cfg.LinkFlaps || len(a.Nodes) != cfg.NodeLosses {
		t.Fatalf("drew %d links / %d nodes, want %d / %d",
			len(a.Links), len(a.Nodes), cfg.LinkFlaps, cfg.NodeLosses)
	}
	for _, lf := range a.Links {
		if lf.At < 0 || lf.At >= cfg.Horizon {
			t.Fatalf("link fault at %v outside horizon", lf.At)
		}
		if out := lf.Until - lf.At; out < cfg.MinOutage || out > cfg.MaxOutage {
			t.Fatalf("outage %v outside [%v, %v]", out, cfg.MinOutage, cfg.MaxOutage)
		}
		if lf.RateFraction != 0 && (lf.RateFraction < 0.05 || lf.RateFraction > 0.5) {
			t.Fatalf("degrade fraction %g outside [0.05, 0.5]", lf.RateFraction)
		}
	}
	seen := map[string]bool{}
	for _, nf := range a.Nodes {
		if seen[nf.Host] {
			t.Fatalf("host %s lost twice", nf.Host)
		}
		seen[nf.Host] = true
	}
	if got := GenFaultSchedule(42, ports, hosts, FaultGenConfig{LinkFlaps: 3}); !got.Empty() {
		t.Fatalf("zero horizon drew %+v", got)
	}
}

// TestWANAndHostPorts pins the port-listing helpers fault generators
// seed from.
func TestWANAndHostPorts(t *testing.T) {
	_, n := faultWANPair(t, testRate/2, 5*sim.Millisecond)
	wan := n.WANPorts()
	if !reflect.DeepEqual(wan, []string{"rtA->rtB", "rtB->rtA"}) {
		t.Fatalf("WANPorts = %v", wan)
	}
	hp := n.HostPorts()
	if !reflect.DeepEqual(hp, []string{"a->swA", "b->swB"}) {
		t.Fatalf("HostPorts = %v", hp)
	}
}

// TestFluidFlowFreezesAcrossOutage: in fluid mode a WAN outage freezes
// the flow's progress for the outage duration and the waterfill resumes
// it afterwards.
func TestFluidFlowFreezesAcrossOutage(t *testing.T) {
	base := func(fs FaultSchedule) sim.Time {
		s, n := faultWANPair(t, testRate/2, 5*sim.Millisecond)
		n.EnableFluid(FluidConfig{})
		if err := n.ApplyFaults(fs); err != nil {
			t.Fatal(err)
		}
		var done sim.Time
		n.StartFluidFlow(0, 1, 1_000_000, 10*testRate, nil, func() { done = s.Now() })
		s.Run()
		if done == 0 {
			t.Fatal("flow never completed")
		}
		return done
	}
	clean := base(FaultSchedule{})
	outage := 50 * sim.Millisecond
	faulted := base(FaultSchedule{Links: []LinkFault{
		{Port: "rtA->rtB", At: 10 * sim.Millisecond, Until: 10*sim.Millisecond + outage},
	}})
	delta := faulted - clean
	if delta < outage*9/10 || delta > outage*11/10 {
		t.Fatalf("outage shifted completion by %v, want ≈%v (clean %v, faulted %v)",
			delta, outage, clean, faulted)
	}
}
