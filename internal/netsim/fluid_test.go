package netsim

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// wanPair builds host A — switch — router == router — switch — host B
// with a WAN link between the routers, the shape fluid flows target.
// wanRate is the router-to-router link rate; LAN links run at testRate
// with 10 µs latency, the WAN at wanLat with a 64 KiB lossy buffer.
func wanPair(t *testing.T, wanRate int64, wanLat sim.Time) (*sim.Simulator, *Network) {
	t.Helper()
	s := sim.New(1)
	n := New(s)
	lan := LinkConfig{Rate: testRate, Latency: 10 * sim.Microsecond}
	wan := LinkConfig{Rate: wanRate, Latency: wanLat}
	port := PortConfig{Buffer: 64 << 10}
	for side := 0; side < 2; side++ {
		h := n.AddHost("h")
		sw := n.AddSwitch("sw", SwitchConfig{PortBuffer: 1 << 20})
		n.Connect(h, sw, lan)
		rt := n.AddRouter("rt", RouterConfig{ProcDelay: sim.Microsecond})
		n.Connect(sw, rt, lan)
		_ = rt
	}
	n.ConnectPorts(n.devices[2], n.devices[5], wan, wan, port, port)
	n.ComputeRoutes()
	return s, n
}

func TestFluidThresholdDefaultsAndDisable(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	if n.FluidThreshold() != 0 {
		t.Fatalf("threshold = %d before EnableFluid, want 0", n.FluidThreshold())
	}
	n.EnableFluid(FluidConfig{})
	if n.FluidThreshold() != DefaultFluidThreshold {
		t.Fatalf("threshold = %d, want default %d", n.FluidThreshold(), DefaultFluidThreshold)
	}
	n.EnableFluid(FluidConfig{Threshold: 1 << 20})
	if n.FluidThreshold() != 1<<20 {
		t.Fatalf("threshold = %d, want %d", n.FluidThreshold(), 1<<20)
	}
}

func TestPathInfoWANPair(t *testing.T) {
	_, n := wanPair(t, testRate/2, 5*sim.Millisecond)
	pi, ok := n.PathInfo(0, 1)
	if !ok {
		t.Fatal("no path info for routed pair")
	}
	if !pi.CrossesWAN {
		t.Fatal("router-router link not flagged as WAN")
	}
	if pi.Bottleneck != testRate/2 {
		t.Fatalf("bottleneck = %d, want %d", pi.Bottleneck, testRate/2)
	}
	if pi.Hops != 5 {
		t.Fatalf("hops = %d, want 5", pi.Hops)
	}
	// Latency: 5 links (4 LAN at 10 µs + WAN at 5 ms) plus the
	// forwarding delay of each device entered en route (two routers at
	// 1 µs; switches forward at wire speed).
	wantLat := 4*10*sim.Microsecond + 5*sim.Millisecond + 2*sim.Microsecond
	if pi.Latency != wantLat {
		t.Fatalf("latency = %v, want %v", pi.Latency, wantLat)
	}
	if pi.MinBuffer != 64<<10 {
		t.Fatalf("min buffer = %d, want %d", pi.MinBuffer, 64<<10)
	}
	wantSerial := 4.0/testRate + 1.0/(testRate/2)
	if math.Abs(pi.SerialPerByte-wantSerial)/wantSerial > 1e-12 {
		t.Fatalf("serial per byte = %v, want %v", pi.SerialPerByte, wantSerial)
	}
}

func TestPathInfoNoRoute(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	n.AddHost("a")
	n.AddHost("b")
	// No links, no ComputeRoutes: both failure modes must report !ok.
	if _, ok := n.PathInfo(0, 1); ok {
		t.Fatal("path info reported for unrouted hosts")
	}
	if _, ok := n.PathInfo(0, 0); ok {
		t.Fatal("path info reported for src == dst")
	}
}

func TestFluidSingleFlowTiming(t *testing.T) {
	s, n := wanPair(t, testRate, sim.Millisecond)
	n.EnableFluid(FluidConfig{})
	var drainedAt, doneAt sim.Time
	n.StartFluidFlow(0, 1, 1_000_000, float64(testRate)/2,
		func() { drainedAt = s.Now() },
		func() { doneAt = s.Now() })
	s.Run()
	// 1 MB at the 0.5 MB/s cap drains in 2 s; delivery follows one
	// path latency later.
	wantDrain := 2 * sim.Second
	if d := drainedAt - wantDrain; d < -sim.Microsecond || d > sim.Microsecond {
		t.Fatalf("drained at %v, want ~%v", drainedAt, wantDrain)
	}
	pi, _ := n.PathInfo(0, 1)
	if doneAt-drainedAt != pi.Latency {
		t.Fatalf("done-drained = %v, want path latency %v", doneAt-drainedAt, pi.Latency)
	}
}

// TestFluidFairShare runs two flows over the shared WAN link with caps
// above the fair share: each must get half the bottleneck while both
// are live, so the shorter flow finishes at half rate and the longer
// one speeds up afterwards.
func TestFluidFairShare(t *testing.T) {
	s := sim.New(1)
	n := New(s)
	lan := LinkConfig{Rate: 100 * testRate, Latency: sim.Microsecond}
	wan := LinkConfig{Rate: testRate, Latency: sim.Millisecond}
	swA := n.AddSwitch("swA", SwitchConfig{PortBuffer: 1 << 20})
	swB := n.AddSwitch("swB", SwitchConfig{PortBuffer: 1 << 20})
	rtA := n.AddRouter("rtA", RouterConfig{})
	rtB := n.AddRouter("rtB", RouterConfig{})
	for i := 0; i < 2; i++ {
		h := n.AddHost("src")
		n.Connect(h, swA, lan)
	}
	for i := 0; i < 2; i++ {
		h := n.AddHost("dst")
		n.Connect(h, swB, lan)
	}
	n.Connect(swA, rtA, lan)
	n.Connect(swB, rtB, lan)
	n.ConnectPorts(rtA, rtB, wan, wan, PortConfig{Buffer: 64 << 10}, PortConfig{Buffer: 64 << 10})
	n.ComputeRoutes()
	n.EnableFluid(FluidConfig{})

	done := map[int]sim.Time{}
	// Flow 1: 1 MB, flow 2: 2 MB, both capped well above fair share.
	n.StartFluidFlow(0, 2, 1_000_000, 10*testRate, nil, func() { done[1] = s.Now() })
	n.StartFluidFlow(1, 3, 2_000_000, 10*testRate, nil, func() { done[2] = s.Now() })
	s.Run()
	// Shared 1 MB/s link: both run at 0.5 MB/s until flow 1 drains at
	// t=2s; flow 2's remaining 1 MB then runs at the full 1 MB/s,
	// draining at t=3s.
	tol := 10 * sim.Millisecond
	if d := done[1] - 2*sim.Second; d < -tol || d > tol {
		t.Fatalf("flow 1 done at %v, want ~2s", done[1])
	}
	if d := done[2] - 3*sim.Second; d < -tol || d > tol {
		t.Fatalf("flow 2 done at %v, want ~3s", done[2])
	}
}

// TestFluidCapBelowShare pins the other waterfill branch: a flow whose
// own cap sits below the fair share frees the difference for its rival.
func TestFluidCapBelowShare(t *testing.T) {
	s, n := wanPair(t, testRate, sim.Millisecond)
	n.EnableFluid(FluidConfig{})
	var done1, done2 sim.Time
	// Flow 1 capped at 1/4 of the link; flow 2 may use the rest.
	n.StartFluidFlow(0, 1, 250_000, float64(testRate)/4, nil, func() { done1 = s.Now() })
	n.StartFluidFlow(0, 1, 750_000, 10*testRate, nil, func() { done2 = s.Now() })
	s.Run()
	// Flow 1: 250 KB at 0.25 MB/s = 1 s. Flow 2: 750 KB at 0.75 MB/s = 1 s.
	tol := 10 * sim.Millisecond
	if d := done1 - sim.Second; d < -tol || d > tol {
		t.Fatalf("capped flow done at %v, want ~1s", done1)
	}
	if d := done2 - sim.Second; d < -tol || d > tol {
		t.Fatalf("residual flow done at %v, want ~1s", done2)
	}
}

// TestFluidDeterminism re-runs an interleaved flow schedule and expects
// bit-identical completion times: rate allocation must not depend on
// map iteration order.
func TestFluidDeterminism(t *testing.T) {
	run := func() []sim.Time {
		s, n := wanPair(t, testRate, sim.Millisecond)
		n.EnableFluid(FluidConfig{})
		var times []sim.Time
		sizes := []int64{300_000, 500_000, 200_000, 400_000}
		for i, sz := range sizes {
			sz := sz
			s.After(sim.Time(i)*100*sim.Millisecond, func() {
				n.StartFluidFlow(0, 1, sz, float64(testRate), nil,
					func() { times = append(times, s.Now()) })
			})
		}
		s.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("flow completions: %d and %d, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestFluidCounters also pins that EnableFluid and AttachCollector
// compose in either call order.
func TestFluidCounters(t *testing.T) {
	for _, collectorFirst := range []bool{true, false} {
		s, n := wanPair(t, testRate, sim.Millisecond)
		coll := obs.New()
		if collectorFirst {
			n.AttachCollector(coll)
			n.EnableFluid(FluidConfig{})
		} else {
			n.EnableFluid(FluidConfig{})
			n.AttachCollector(coll)
		}
		n.StartFluidFlow(0, 1, 123_456, float64(testRate), nil, nil)
		s.Run()
		if got := coll.Counter(CtrFluidFlows).Value(); got != 1 {
			t.Fatalf("collectorFirst=%v: %s = %d, want 1", collectorFirst, CtrFluidFlows, got)
		}
		if got := coll.Counter(CtrFluidBytes).Value(); got != 123_456 {
			t.Fatalf("collectorFirst=%v: %s = %d, want 123456", collectorFirst, CtrFluidBytes, got)
		}
	}
}

func TestStartFluidFlowDisabledPanics(t *testing.T) {
	s, n := wanPair(t, testRate, sim.Millisecond)
	_ = s
	defer func() {
		if recover() == nil {
			t.Fatal("StartFluidFlow with fluid disabled did not panic")
		}
	}()
	n.StartFluidFlow(0, 1, 1000, float64(testRate), nil, nil)
}
