package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Router support. A router is a store-and-forward forwarding device like
// a switch, with two differences that matter for wide-area topologies:
//
//   - Per-port queueing: each egress carries its own buffer size and
//     loss discipline instead of one switch-wide configuration, so a
//     router can face a deep-buffered campus LAN on one port and a
//     shallow, lossy WAN uplink on another.
//   - A per-packet forwarding delay (route lookup / header processing),
//     modeled as a pipeline stage: every packet is delayed by ProcDelay
//     between arrival and enqueue on the output port, without limiting
//     throughput. Delivery order between arrival and forwarding is
//     preserved because simulator events with equal timestamps fire in
//     schedule order.
//
// Routers let topologies grow beyond the two-level leaf/core tree:
// multiple switch fabrics (clusters) joined by high-latency, limited-rate
// WAN links, rings or meshes of points of presence, and so on. Routing
// still comes from ComputeRoutes, which is topology-agnostic.

// RouterConfig describes a router's forwarding engine.
type RouterConfig struct {
	// ProcDelay is the per-packet forwarding latency (route lookup and
	// header processing). Zero means wire-speed forwarding.
	ProcDelay sim.Time
}

// PortConfig describes the queueing discipline of one router port
// (applied to the egress in the direction away from the router).
type PortConfig struct {
	Buffer   int  // bytes of output buffer; 0 = unbounded
	Lossless bool // true: credit backpressure; false: tail-drop
}

// AddRouter creates a router device.
func (n *Network) AddRouter(name string, cfg RouterConfig) *Device {
	d := &Device{net: n, name: name, isRouter: true, procDelay: cfg.ProcDelay}
	n.devices = append(n.devices, d)
	return d
}

// ConnectPorts joins two devices with a full-duplex link whose two
// directions may differ, and assigns explicit per-port queue configs: pa
// governs the a→b egress, pb the b→a egress. It is the general form of
// Connect, intended for router ports (WAN uplinks with their own buffer
// and loss discipline); either endpoint may nevertheless be any device
// kind.
func (n *Network) ConnectPorts(a, b *Device, ab, ba LinkConfig, pa, pb PortConfig) {
	n.connectDirPort(a, b, ab, pa)
	n.connectDirPort(b, a, ba, pb)
}

// connectDirPort creates the a→b egress on device a with an explicit
// port queue configuration.
func (n *Network) connectDirPort(a, b *Device, cfg LinkConfig, port PortConfig) {
	e := &egress{
		sim:  n.sim,
		name: fmt.Sprintf("%s->%s", a.name, b.name),
		rate: cfg.Rate, latency: cfg.Latency,
		owner: a, peer: b,
		wan: a.isRouter && b.isRouter,
	}
	if a.isHost {
		// Host NICs keep their unbounded queue; they only join the
		// credit protocol when feeding a lossless port.
		e.lossless = port.Lossless
	} else {
		e.capBytes = port.Buffer
		e.lossless = port.Lossless
	}
	a.egr = append(a.egr, e)
}

// forward routes a packet that arrived at a forwarding device (switch or
// router) to its next hop, applying the router processing delay.
func (d *Device) forward(pkt *Packet) {
	e := d.routes[pkt.Dst]
	if e == nil {
		panic(fmt.Sprintf("netsim: %s has no route to host %d", d.name, pkt.Dst))
	}
	if d.procDelay > 0 {
		d.net.sim.After(d.procDelay, func() { e.enqueue(pkt) })
		return
	}
	e.enqueue(pkt)
}
