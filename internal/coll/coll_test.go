package coll

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func world(t *testing.T, p cluster.Profile, nodes int, seed int64) *mpi.World {
	t.Helper()
	return mpi.NewWorld(cluster.Build(p, nodes, seed), mpi.Config{})
}

func TestAlltoallAllAlgorithmsComplete(t *testing.T) {
	for _, alg := range Algorithms {
		for _, n := range []int{2, 4, 7, 8} {
			alg, n := alg, n
			t.Run(alg.String(), func(t *testing.T) {
				w := world(t, cluster.GigabitEthernet(), n, 17)
				m := Measure(w, 0, 1, func(r *mpi.Rank) { Alltoall(r, 10_000, alg) })
				if m.Times[0] <= 0 {
					t.Fatalf("n=%d: nonpositive completion time %v", n, m.Times[0])
				}
			})
		}
	}
}

func TestAlltoallMovesExpectedBytes(t *testing.T) {
	const n, m = 6, 5000
	cl := cluster.Build(cluster.GigabitEthernet(), n, 3)
	w := mpi.NewWorld(cl, mpi.Config{})
	Measure(w, 0, 1, func(r *mpi.Rank) { Alltoall(r, m, Direct) })
	st := cl.Fabric.TotalStats()
	// n(n-1) payload messages plus barrier/envelope traffic.
	wantPayload := int64(n * (n - 1) * m)
	if st.BytesSent < wantPayload {
		t.Fatalf("fabric carried %d bytes, want >= %d", st.BytesSent, wantPayload)
	}
	if st.BytesSent > wantPayload*2 {
		t.Fatalf("fabric carried %d bytes, far above payload %d: protocol overhead bug?", st.BytesSent, wantPayload)
	}
}

func TestAlltoallScalesWithMessageSize(t *testing.T) {
	run := func(m int) float64 {
		w := world(t, cluster.GigabitEthernet(), 6, 5)
		meas := Measure(w, 1, 2, func(r *mpi.Rank) { Alltoall(r, m, Direct) })
		return meas.Mean()
	}
	small, large := run(1_000), run(100_000)
	if large <= small {
		t.Fatalf("100kB alltoall (%v) not slower than 1kB (%v)", large, small)
	}
}

func TestAlltoallScalesWithRanks(t *testing.T) {
	run := func(n int) float64 {
		w := world(t, cluster.GigabitEthernet(), n, 6)
		meas := Measure(w, 1, 2, func(r *mpi.Rank) { Alltoall(r, 50_000, Direct) })
		return meas.Mean()
	}
	few, many := run(4), run(12)
	if many <= few {
		t.Fatalf("12-rank alltoall (%v) not slower than 4-rank (%v)", many, few)
	}
}

func TestAlltoallOnMyrinetLossless(t *testing.T) {
	cl := cluster.Build(cluster.Myrinet(), 8, 7)
	w := mpi.NewWorld(cl, mpi.Config{})
	meas := Measure(w, 1, 2, func(r *mpi.Rank) { Alltoall(r, 100_000, Direct) })
	if cl.Net.Drops() != 0 {
		t.Fatalf("myrinet dropped %d packets", cl.Net.Drops())
	}
	if meas.Mean() <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestScatterGather(t *testing.T) {
	w := world(t, cluster.GigabitEthernet(), 6, 8)
	meas := Measure(w, 0, 1, func(r *mpi.Rank) {
		Scatter(r, 0, 10_000)
		Gather(r, 0, 10_000)
	})
	if meas.Times[0] <= 0 {
		t.Fatal("scatter+gather did not advance time")
	}
}

func TestAllgatherAndBcast(t *testing.T) {
	for _, n := range []int{2, 5, 8} {
		w := world(t, cluster.GigabitEthernet(), n, 9)
		meas := Measure(w, 0, 1, func(r *mpi.Rank) {
			Allgather(r, 5000)
			Bcast(r, 0, 5000)
			Bcast(r, n-1, 5000) // non-zero root exercises rank rotation
		})
		if meas.Times[0] <= 0 {
			t.Fatalf("n=%d: no time elapsed", n)
		}
	}
}

func TestBcastFasterThanLinearScatterForManyRanks(t *testing.T) {
	// Binomial broadcast is O(log n) rounds; linear scatter is O(n).
	// With equal per-message size the tree must win for larger n.
	const n, m = 16, 200_000
	wB := world(t, cluster.GigabitEthernet(), n, 10)
	bc := Measure(wB, 1, 2, func(r *mpi.Rank) { Bcast(r, 0, m) })
	wS := world(t, cluster.GigabitEthernet(), n, 10)
	sc := Measure(wS, 1, 2, func(r *mpi.Rank) { Scatter(r, 0, m) })
	if bc.Mean() >= sc.Mean() {
		t.Fatalf("binomial bcast (%v) not faster than linear scatter (%v)", bc.Mean(), sc.Mean())
	}
}

func TestMeasureRepsIndependentAndPositive(t *testing.T) {
	w := world(t, cluster.GigabitEthernet(), 4, 11)
	meas := Measure(w, 2, 5, func(r *mpi.Rank) { Alltoall(r, 20_000, Direct) })
	if len(meas.Times) != 5 {
		t.Fatalf("got %d reps, want 5", len(meas.Times))
	}
	for i, tm := range meas.Times {
		if tm <= 0 {
			t.Fatalf("rep %d: nonpositive %v", i, tm)
		}
	}
	if meas.Min() > meas.Mean() || meas.Mean() > meas.Max() {
		t.Fatalf("min/mean/max ordering violated: %v %v %v", meas.Min(), meas.Mean(), meas.Max())
	}
}

func TestDirectExchangeRoundStructure(t *testing.T) {
	// With Direct, each rank takes n-1 rounds; on an idle network the
	// completion time must be at least (n-1) * m / rate.
	const n, m = 8, 100_000
	w := world(t, cluster.GigabitEthernet(), n, 12)
	meas := Measure(w, 0, 1, func(r *mpi.Rank) { Alltoall(r, m, Direct) })
	lower := sim.TransmitTime((n-1)*m, 125_000_000).Seconds()
	if meas.Times[0].Seconds() < lower {
		t.Fatalf("completion %.6fs below physical lower bound %.6fs", meas.Times[0].Seconds(), lower)
	}
}

func TestBruckFewerRoundsThanDirectForSmallMessages(t *testing.T) {
	// For tiny messages, latency dominates: Bruck's log2(n) rounds beat
	// Direct's n-1 rounds.
	const n, m = 16, 64
	wD := world(t, cluster.FastEthernet(), n, 13)
	d := Measure(wD, 1, 3, func(r *mpi.Rank) { Alltoall(r, m, Direct) })
	wB := world(t, cluster.FastEthernet(), n, 13)
	b := Measure(wB, 1, 3, func(r *mpi.Rank) { Alltoall(r, m, Bruck) })
	if b.Mean() >= d.Mean() {
		t.Fatalf("bruck (%v) not faster than direct (%v) for %dB messages", b.Mean(), d.Mean(), m)
	}
}
