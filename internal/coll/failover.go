package coll

import (
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Coordinator failover for compiled hierarchical plans.
//
// A plan routes every cross-cluster block through coordinators; when a
// coordinator's node dies mid-run, every rank whose phase depends on it
// stalls forever (the paper's grids lose nodes routinely — batch
// preemption, WAN cuts). FailoverRun wraps the plan executor in an
// epoch protocol:
//
//  1. Ranks run the plan's phases with timed waits instead of blocking
//     waits. A timeout alone proves nothing (a congested WAN tier can
//     stall a phase past any bound), so the stuck rank consults a
//     failure-detector oracle about its unresponsive peers; a confirmed
//     death is declared, the dead node's transport is quenched, and the
//     epoch advances.
//  2. Every live rank joins the new epoch: it snapshots which of its
//     in-flight receives completed (marking the carried blocks that
//     terminate at it as delivered) and cancels the rest, so stale
//     envelopes cannot match recovery-plan receives.
//  3. The last rank to join compiles a recovery plan: the same topology
//     tree with dead coordinators replaced — by the leaf's ranked
//     standby list when one was planned, else the lowest live rank —
//     carrying only blocks not yet at their destination and not
//     involving dead ranks. Recovery tags are offset per epoch so the
//     two plans' messages can never be confused.
//  4. Ranks execute the recovery plan from phase 0. Further deaths
//     advance the epoch again, up to MaxEpochs.
//
// Delivery is exactly-once at the application level: a block counts as
// delivered only when its destination rank receives it, each epoch's
// recovery plan excludes already-delivered blocks, and Verify checks
// that no block was delivered twice. Blocks whose source or destination
// died are waived — the collective's semantics cannot be preserved for
// them. The obligations verified are the plan's Universe, so the same
// protocol covers every kind PlanKindTree compiles: All-to-All's full
// pair matrix, Allgather's forwarded contributions, a rooted relay's
// (src→root) and (root→dst) legs.
//
// With no faults the executor posts exactly the operation sequence of
// AlltoallHierPlanned — same order, same tags, same sizes — so an empty
// fault schedule is behaviorally identical to the plain executor (the
// timed waits arm extra timers, but those fire as no-ops).

// epochTagStride separates consecutive epochs in tag space. Plan tags
// start at tagHier (6000) and grow by small per-pair counts, and the
// runtime reserves tags at or above 1<<24, so strides of 1<<16 leave
// room for 256 epochs — far above any MaxEpochs in use.
const epochTagStride int32 = 1 << 16

// FailoverConfig parameterizes a FailoverRun. The zero value of each
// field takes a default.
type FailoverConfig struct {
	// Timeout is the per-phase wait deadline after which a rank
	// consults the failure detector (default 2s of simulated time).
	Timeout sim.Time
	// IsDead is the failure-detector oracle: it reports ground truth
	// about whether a rank's node has been lost. In simulation the
	// fault schedule backs it; a real deployment would substitute a
	// heartbeat detector. A nil oracle never confirms a death, so
	// timeouts are always treated as congestion.
	IsDead func(rank int) bool
	// Quench aborts transport to and from a declared-dead rank (wire to
	// transport.Fabric.Quench) so survivors stop retransmitting into
	// the blackhole. Optional.
	Quench func(rank int)
	// OnDeclare is called once per declared death, with the epoch that
	// detected it. Optional (observability hook).
	OnDeclare func(rank, epoch int, now sim.Time)
	// OnEpoch is called when a new epoch opens. Optional.
	OnEpoch func(epoch int, now sim.Time)
	// MaxEpochs bounds total epochs (initial + recoveries); a declare
	// that would exceed it abandons the run as Incomplete (default 8).
	MaxEpochs int
	// GiveUpAfter bounds consecutive unconfirmed timeouts of a single
	// phase wait before the run is abandoned as Incomplete — the escape
	// hatch for a permanently partitioned network where the oracle
	// confirms no death (default 64).
	GiveUpAfter int
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Timeout == 0 {
		c.Timeout = 2 * sim.Second
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 8
	}
	if c.GiveUpAfter == 0 {
		c.GiveUpAfter = 64
	}
	return c
}

// FailoverResult summarizes a completed (or abandoned) failover run.
type FailoverResult struct {
	Epochs          int   // epochs executed (1 = no failover needed)
	Dead            []int // ranks declared dead, ascending
	DeliveredBlocks int   // blocks received at their destination
	WaivedBlocks    int   // blocks waived because an endpoint died
	DuplicateBlocks int   // blocks delivered more than once (must be 0)
	Incomplete      bool  // run abandoned (MaxEpochs or GiveUpAfter hit)
	// FinishAt is each rank's completion time; zero for ranks that died
	// or were abandoned.
	FinishAt []sim.Time
}

// reqInfo tracks one outstanding plan operation of the current phase so
// the epoch transition can snapshot completions and cancel leftovers.
type reqInfo struct {
	q      *mpi.Request
	peer   int
	msgIdx int
	isRecv bool
	st     *epochState
}

// epochState is the shared per-epoch execution state. The plan and its
// filtered block lists are compiled by the last rank to join the epoch;
// the two futures are the epoch's barriers.
type epochState struct {
	idx     int
	plan    *HierPlan
	carried [][]Block // per message: blocks actually carried this epoch
	bytes   []int     // per message: payload bytes (0 ⇒ op skipped)
	tagOff  int32
	// joinGate completes when every live rank has joined the epoch and
	// the plan is compiled; gate completes when every live rank has
	// finished the epoch's phases (global done) or the epoch advanced.
	joinGate sim.Future
	gate     sim.Future
	joined   int
	finished int
}

// FailoverRun executes one compiled uniform plan across a world with
// epoch-based coordinator failover. Build one run, then call Run from
// every rank body. All shared state is mutated only from rank
// coroutines, which is race-free under the simulator's one-active-
// process discipline.
type FailoverRun struct {
	base *HierPlan
	m    int
	cfg  FailoverConfig
	s    *sim.Simulator

	epoch     int
	dead      map[int]bool
	deadList  []int
	delivered map[Block]bool
	universe  []Block // the base plan's delivery obligations
	epochs    []*epochState
	reqs      [][]reqInfo // per rank: outstanding current-phase requests
	done      bool
	failed    bool
	finishAt  []sim.Time
	dups      int
	trace     *PhaseTrace
}

// NewFailoverRun prepares a failover execution of a compiled uniform
// plan of any kind with per-rank payload m. Size-bound plans
// (PlanHierTreeV) are not supported: recovery replanning assumes the
// uniform block model.
func NewFailoverRun(plan *HierPlan, m int, cfg FailoverConfig) *FailoverRun {
	if plan.vbytes != nil {
		panic("coll: failover supports uniform plans only")
	}
	if m <= 0 {
		panic(fmt.Sprintf("coll: failover block size %d must be positive", m))
	}
	n := plan.Tree.NumRanks()
	fr := &FailoverRun{
		base:      plan,
		m:         m,
		cfg:       cfg.withDefaults(),
		dead:      make(map[int]bool),
		delivered: make(map[Block]bool),
		universe:  plan.Universe(),
		reqs:      make([][]reqInfo, n),
		finishAt:  make([]sim.Time, n),
	}
	st := &epochState{idx: 0, plan: plan}
	st.carried = make([][]Block, len(plan.msgs))
	st.bytes = make([]int, len(plan.msgs))
	for i, msg := range plan.msgs {
		st.carried[i] = msg.blocks
		st.bytes[i] = plan.msgBytesAt(i, m)
	}
	fr.epochs = []*epochState{st}
	return fr
}

// SetTrace records epoch-0 phase boundaries into pt (built for the base
// plan), mirroring AlltoallHierPlannedTraced. Recovery epochs are not
// traced: their plans have their own phase layouts.
func (fr *FailoverRun) SetTrace(pt *PhaseTrace) { fr.trace = pt }

// Run executes the failover protocol for one rank; call it from every
// rank body of the world the plan was compiled for.
func (fr *FailoverRun) Run(r *mpi.Rank) {
	if fr.base.Tree.NumRanks() != r.Size() {
		panic(fmt.Sprintf("coll: plan for %d ranks executed on world of %d",
			fr.base.Tree.NumRanks(), r.Size()))
	}
	me := r.ID()
	if fr.s == nil {
		fr.s = r.Proc().Sim()
	}
	for {
		if fr.failed || fr.dead[me] {
			return
		}
		st := fr.epochs[fr.epoch]
		if fr.runPhases(r, st) {
			st.finished++
			if st.finished >= fr.liveCount() {
				fr.done = true
				fr.sweepQuench()
				st.gate.Complete(fr.s)
			} else {
				r.Proc().Await(&st.gate)
			}
			if fr.done {
				fr.finishAt[me] = r.Now()
				return
			}
		}
		if fr.failed || fr.dead[me] {
			return
		}
		fr.join(r)
	}
}

// runPhases executes the epoch's phases for one rank. It returns true
// when every phase completed, false when the rank abandoned the epoch —
// because it advanced, because this rank declared a death (or was
// declared dead), or because the run gave up.
func (fr *FailoverRun) runPhases(r *mpi.Rank, st *epochState) bool {
	me := r.ID()
	for pi, ph := range st.plan.perRank[me] {
		infos := make([]reqInfo, 0, len(ph.recvs)+len(ph.sends))
		start := r.Now()
		for _, rv := range ph.recvs {
			if st.bytes[rv.msgIdx] == 0 {
				continue
			}
			q := r.Irecv(rv.peer, rv.tag+st.tagOff)
			infos = append(infos, reqInfo{q: q, peer: rv.peer, msgIdx: rv.msgIdx, isRecv: true, st: st})
		}
		for _, sd := range ph.sends {
			if st.bytes[sd.msgIdx] == 0 {
				continue
			}
			q := r.Isend(sd.peer, sd.tag+st.tagOff, st.bytes[sd.msgIdx])
			infos = append(infos, reqInfo{q: q, peer: sd.peer, msgIdx: sd.msgIdx, st: st})
		}
		if len(infos) == 0 {
			continue
		}
		fr.reqs[me] = infos
		if !fr.waitPhase(r, st) {
			return false
		}
		for _, ri := range infos {
			if ri.isRecv {
				fr.markDelivered(me, ri)
			}
		}
		fr.reqs[me] = nil
		if fr.trace != nil && st.idx == 0 {
			fr.trace.record(pi, me, start, r.Now())
		}
		if fr.epoch != st.idx {
			// The epoch advanced while this phase drained; stop before
			// posting operations no peer will ever match.
			return false
		}
	}
	return true
}

// waitPhase waits for the rank's current-phase requests, invoking the
// failure detector on every timeout. It returns true when the phase
// completed, false when the epoch was abandoned.
func (fr *FailoverRun) waitPhase(r *mpi.Rank, st *epochState) bool {
	me := r.ID()
	spurious := 0
	for {
		qs := make([]*mpi.Request, 0, len(fr.reqs[me]))
		for _, ri := range fr.reqs[me] {
			if !ri.q.Done() {
				qs = append(qs, ri.q)
			}
		}
		if len(qs) == 0 {
			return true
		}
		if r.WaitAllTimeout(fr.cfg.Timeout, qs...) {
			return true
		}
		if fr.failed || fr.dead[me] {
			return false
		}
		if fr.epoch != st.idx {
			return false
		}
		var newDead []int
		if fr.cfg.IsDead != nil {
			seen := make(map[int]bool)
			for _, ri := range fr.reqs[me] {
				if !ri.q.Done() && !fr.dead[ri.peer] && !seen[ri.peer] && fr.cfg.IsDead(ri.peer) {
					seen[ri.peer] = true
					newDead = append(newDead, ri.peer)
				}
			}
			// A rank whose own node died still runs as a coroutine; its
			// self-check stands in for its peers' detectors noticing the
			// silence, which keeps the protocol single-sided.
			if !fr.dead[me] && fr.cfg.IsDead(me) {
				newDead = append(newDead, me)
			}
		}
		if len(newDead) > 0 {
			sort.Ints(newDead)
			fr.declare(r, st, newDead)
			return false
		}
		spurious++
		if spurious >= fr.cfg.GiveUpAfter {
			fr.failed = true
			fr.sweepQuench()
			st.gate.Complete(fr.s)
			return false
		}
	}
}

// sweepQuench aborts transport touching ranks that died without ever
// being declared. An All-to-All-shaped plan always detects a death —
// every rank both sends and receives — but a rooted plan can have pure
// receivers: a leaf whose broadcast payload was already in flight when
// its node died completes the run from every survivor's perspective,
// yet its host can no longer acknowledge, so the sender's transport
// would retransmit the tail forever and keep the simulation from
// draining. Called once at every run-ending transition; the swept ranks
// are NOT recorded dead (their obligations were met), only silenced.
func (fr *FailoverRun) sweepQuench() {
	if fr.cfg.IsDead == nil || fr.cfg.Quench == nil {
		return
	}
	for rk := 0; rk < fr.base.Tree.NumRanks(); rk++ {
		if !fr.dead[rk] && fr.cfg.IsDead(rk) {
			fr.cfg.Quench(rk)
		}
	}
}

// declare records confirmed deaths, quenches their transport, and opens
// the next epoch (or abandons the run at the MaxEpochs bound). Runs in
// the detecting rank's coroutine; the epoch gate wakes finished ranks.
func (fr *FailoverRun) declare(r *mpi.Rank, st *epochState, ranks []int) {
	now := r.Now()
	for _, d := range ranks {
		fr.dead[d] = true
		fr.deadList = append(fr.deadList, d)
		if fr.cfg.Quench != nil {
			fr.cfg.Quench(d)
		}
		if fr.cfg.OnDeclare != nil {
			fr.cfg.OnDeclare(d, st.idx, now)
		}
	}
	if st.idx+1 >= fr.cfg.MaxEpochs {
		fr.failed = true
		fr.sweepQuench()
		st.gate.Complete(fr.s)
		return
	}
	fr.epoch = st.idx + 1
	fr.epochs = append(fr.epochs, &epochState{idx: fr.epoch})
	if fr.cfg.OnEpoch != nil {
		fr.cfg.OnEpoch(fr.epoch, now)
	}
	st.gate.Complete(fr.s)
}

// join moves one live rank into the freshly opened epoch: snapshot
// completed receives (marking their terminal blocks delivered), cancel
// unmatched ones, and wait at the join barrier. The last rank to join
// compiles the epoch's recovery plan, so the compile sees every
// survivor's delivery marks. Between the epoch advance and the last
// join no rank executes phases, so the dead set is stable here.
func (fr *FailoverRun) join(r *mpi.Rank) {
	me := r.ID()
	for _, ri := range fr.reqs[me] {
		if ri.q.Done() {
			if ri.isRecv {
				fr.markDelivered(me, ri)
			}
		} else if ri.isRecv {
			r.CancelRecv(ri.q)
		}
	}
	fr.reqs[me] = nil
	st := fr.epochs[fr.epoch]
	st.joined++
	if st.joined >= fr.liveCount() {
		fr.compileRecovery(st)
		st.joinGate.Complete(fr.s)
	} else {
		r.Proc().Await(&st.joinGate)
	}
}

// markDelivered records the blocks of a completed receive that
// terminate at rank me. Relay hops do not count: exactly-once is an
// application-level property of a block reaching its destination.
func (fr *FailoverRun) markDelivered(me int, ri reqInfo) {
	for _, b := range ri.st.carried[ri.msgIdx] {
		if b.Dst != me {
			continue
		}
		if fr.delivered[b] {
			fr.dups++
		} else {
			fr.delivered[b] = true
		}
	}
}

// compileRecovery builds the epoch's plan: the base topology with dead
// coordinators replaced, carrying only live, undelivered blocks. Tags
// are offset per epoch so recovery messages can never match a stale
// posting from an earlier epoch.
func (fr *FailoverRun) compileRecovery(st *epochState) {
	plan := PlanKindTree(fr.recoverySpec(), fr.base.Kind, fr.base.Alg)
	st.plan = plan
	st.tagOff = int32(st.idx) * epochTagStride
	st.carried = make([][]Block, len(plan.msgs))
	st.bytes = make([]int, len(plan.msgs))
	for i, msg := range plan.msgs {
		for _, b := range msg.blocks {
			if fr.dead[b.Src] || fr.dead[b.Dst] || fr.delivered[b] {
				continue
			}
			st.carried[i] = append(st.carried[i], b)
		}
		st.bytes[i] = KindMsgBytes(fr.base.Kind, st.carried[i], fr.m)
	}
}

// recoverySpec rebuilds the base plan's topology spec with every dead
// coordinator replaced by a live one. Dead ranks stay in the tree —
// placements require dense ranks — but carry no traffic: every block
// touching them is waived, so every operation involving them sizes to
// zero and is skipped by both sides.
func (fr *FailoverRun) recoverySpec() TreeSpec {
	var walk func(v *pnode) TreeSpec
	walk = func(v *pnode) TreeSpec {
		var s TreeSpec
		if v.leaf() {
			s.Ranks = append([]int(nil), v.ranks...)
			s.Standbys = append([]int(nil), v.standbys...)
		} else {
			for _, c := range v.children {
				s.Children = append(s.Children, walk(c))
			}
		}
		s.Coords = fr.liveCoords(v)
		return s
	}
	return walk(fr.base.Tree.root)
}

// liveCoords rewrites a node's coordinator set over the live ranks,
// preserving ownership order so surviving coordinators keep their
// traffic shares. A fully dead subtree keeps default coords: all of its
// blocks are waived, so its (dead) coordinator is never exercised.
func (fr *FailoverRun) liveCoords(v *pnode) []int {
	alive := false
	for _, rk := range v.ranks {
		if !fr.dead[rk] {
			alive = true
			break
		}
	}
	if !alive {
		return nil
	}
	out := make([]int, 0, len(v.coords))
	used := make(map[int]bool, len(v.coords))
	for _, c := range v.coords {
		pick := c
		if fr.dead[c] || used[c] {
			pick = fr.replacementFor(c, v, used)
		}
		if pick >= 0 {
			out = append(out, pick)
			used[pick] = true
		}
	}
	if len(out) == 0 {
		for _, rk := range v.ranks {
			if !fr.dead[rk] {
				out = append(out, rk)
				break
			}
		}
	}
	return out
}

// replacementFor picks the fill-in for coordinator c at node v: the
// first live, unchosen standby of c's leaf that is a member of v, else
// the lowest live unchosen rank of v, else -1.
func (fr *FailoverRun) replacementFor(c int, v *pnode, used map[int]bool) int {
	tp := fr.base.Tree
	inV := make(map[int]bool, len(v.ranks))
	for _, rk := range v.ranks {
		inV[rk] = true
	}
	if li := tp.leafOf[c]; li >= 0 {
		for _, sb := range tp.leaves[li].standbys {
			if !fr.dead[sb] && !used[sb] && inV[sb] {
				return sb
			}
		}
	}
	for _, rk := range v.ranks {
		if !fr.dead[rk] && !used[rk] {
			return rk
		}
	}
	return -1
}

func (fr *FailoverRun) liveCount() int {
	return fr.base.Tree.NumRanks() - len(fr.deadList)
}

// Result summarizes the run; call it after the world has quiesced.
func (fr *FailoverRun) Result() FailoverResult {
	res := FailoverResult{
		Epochs:          fr.epoch + 1,
		DeliveredBlocks: len(fr.delivered),
		DuplicateBlocks: fr.dups,
		Incomplete:      fr.failed,
		FinishAt:        append([]sim.Time(nil), fr.finishAt...),
	}
	res.Dead = append([]int(nil), fr.deadList...)
	sort.Ints(res.Dead)
	for _, b := range fr.universe {
		if (fr.dead[b.Src] || fr.dead[b.Dst]) && !fr.delivered[b] {
			res.WaivedBlocks++
		}
	}
	return res
}

// Verify checks the run's delivery invariants: every obligation of the
// plan's Universe between two surviving ranks arrived at its
// destination exactly once, and nothing arrived twice. It returns nil
// on success.
func (fr *FailoverRun) Verify() error {
	if fr.dups != 0 {
		return fmt.Errorf("coll: %d blocks delivered more than once", fr.dups)
	}
	if fr.failed {
		return fmt.Errorf("coll: failover run abandoned after %d epochs (dead: %v)",
			fr.epoch+1, fr.deadList)
	}
	for _, b := range fr.universe {
		if fr.dead[b.Src] || fr.dead[b.Dst] {
			continue
		}
		if !fr.delivered[b] {
			return fmt.Errorf("coll: block %d→%d never delivered", b.Src, b.Dst)
		}
	}
	return nil
}
