package coll

import "repro/internal/mpi"

// Reduction collectives. The paper's future work proposes extending the
// contention-signature methodology to other collectives; these provide
// the workloads for that extension (experiment EX2). Only data movement
// is simulated — reduction arithmetic is free in this model, as the
// paper's models also assume.

const (
	tagReduce        int32 = 6000
	tagAllreduce     int32 = 6200
	tagReduceScatter int32 = 6400
)

// Reduce combines m-byte contributions from all ranks at root using a
// binomial tree: ceil(log2 n) communication steps, each moving m bytes.
func Reduce(r *mpi.Rank, root, m int) {
	n := r.Size()
	if n == 1 {
		return
	}
	vrank := (r.ID() - root + n) % n
	// Reverse binomial: leaves send first, internal nodes combine.
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			r.Send(parent, tagReduce, m)
			return
		}
		if vrank|mask < n {
			child := ((vrank | mask) + root) % n
			r.Recv(child, tagReduce)
		}
		mask <<= 1
	}
}

// Allreduce uses recursive doubling for power-of-two rank counts and
// reduce+broadcast otherwise.
func Allreduce(r *mpi.Rank, m int) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) == 0 {
		// Recursive doubling: log2(n) pairwise exchanges of m bytes.
		for step, mask := 0, 1; mask < n; step, mask = step+1, mask<<1 {
			partner := r.ID() ^ mask
			r.Sendrecv(partner, tagAllreduce+int32(step), m, partner, tagAllreduce+int32(step))
		}
		return
	}
	Reduce(r, 0, m)
	Bcast(r, 0, m)
}

// ReduceScatter distributes reduced m-byte blocks (one per rank) via the
// pairwise-halving pattern for power-of-two n, ring otherwise. Each step
// of the halving exchange moves half the remaining data.
func ReduceScatter(r *mpi.Rank, m int) {
	n := r.Size()
	if n == 1 {
		return
	}
	if n&(n-1) == 0 {
		size := m * n / 2
		for step, mask := 0, 1; mask < n; step, mask = step+1, mask<<1 {
			partner := r.ID() ^ mask
			if size < 1 {
				size = 1
			}
			r.Sendrecv(partner, tagReduceScatter+int32(step), size, partner, tagReduceScatter+int32(step))
			size /= 2
		}
		return
	}
	// Ring fallback: n-1 steps, each passing m bytes to the successor.
	dst := (r.ID() + 1) % n
	src := (r.ID() - 1 + n) % n
	for t := 0; t < n-1; t++ {
		r.Sendrecv(dst, tagReduceScatter+int32(t), m, src, tagReduceScatter+int32(t))
	}
}
