// Package coll implements collective communication operations on the mpi
// runtime. The central operation is the regular All-to-All (total
// exchange with equal message sizes), in the Direct Exchange form the
// paper models (Algorithm 1, the implementation used by LAM-MPI and
// MPICH at the time), plus alternative algorithms used as ablation
// baselines, and the auxiliary collectives referenced by the related
// work (Scatter, Gather, Allgather, Broadcast).
package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Reserved user-level tag bases, one per collective family.
const (
	tagAlltoall  int32 = 1000
	tagScatter   int32 = 2000
	tagGather    int32 = 3000
	tagAllgather int32 = 4000
	tagBcast     int32 = 5000
)

// Algorithm selects an All-to-All implementation.
type Algorithm int

const (
	// Direct is the paper's Algorithm 1: n-1 rounds, in round t rank i
	// sends to (i+t) mod n while receiving from (i-t) mod n, waiting for
	// both before the next round. Destination rotation spreads load;
	// there is no global synchronization between rounds.
	Direct Algorithm = iota
	// PostAll posts every receive and every send at once and waits for
	// all of them: maximum injection pressure, no round structure.
	PostAll
	// Bruck is the log-round store-and-forward algorithm: ceil(log2 n)
	// rounds, each moving about half the blocks; total traffic grows by
	// a log factor but start-ups drop from n-1 to log2 n.
	Bruck
	// Pairwise is the XOR-pattern exchange: in round t, partners i and
	// i^t swap. Requires a power-of-two rank count; callers fall back to
	// Direct otherwise.
	Pairwise
)

// Algorithms lists all All-to-All variants.
var Algorithms = []Algorithm{Direct, PostAll, Bruck, Pairwise}

// String names the algorithm as used in experiment output.
func (a Algorithm) String() string {
	switch a {
	case Direct:
		return "direct"
	case PostAll:
		return "postall"
	case Bruck:
		return "bruck"
	case Pairwise:
		return "pairwise"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Effective resolves the algorithm that actually runs for n ranks:
// Pairwise requires a power-of-two rank count and otherwise falls back
// to Direct. Experiments must label results with the effective
// algorithm, not the requested one.
func (a Algorithm) Effective(n int) Algorithm {
	if a == Pairwise && n&(n-1) != 0 {
		return Direct
	}
	return a
}

// Alltoall runs one total exchange with per-pair message size m using the
// chosen algorithm. Every rank must call it. It returns the algorithm
// actually executed, which differs from alg only for Pairwise on
// non-power-of-two rank counts (Direct fallback).
func Alltoall(r *mpi.Rank, m int, alg Algorithm) Algorithm {
	eff := alg.Effective(r.Size())
	switch eff {
	case Direct:
		alltoallDirect(r, m)
	case PostAll:
		alltoallPostAll(r, m)
	case Bruck:
		alltoallBruck(r, m)
	case Pairwise:
		alltoallPairwise(r, m)
	default:
		panic("coll: unknown algorithm")
	}
	return eff
}

// alltoallDirect is Algorithm 1 of the paper.
func alltoallDirect(r *mpi.Rank, m int) {
	n := r.Size()
	for t := 1; t < n; t++ {
		dst := (r.ID() + t) % n
		src := (r.ID() - t + n) % n
		r.Sendrecv(dst, tagAlltoall+int32(t), m, src, tagAlltoall+int32(t))
	}
}

// alltoallPostAll posts everything nonblocking and waits once.
func alltoallPostAll(r *mpi.Rank, m int) {
	n := r.Size()
	qs := make([]*mpi.Request, 0, 2*(n-1))
	for t := 1; t < n; t++ {
		src := (r.ID() - t + n) % n
		qs = append(qs, r.Irecv(src, tagAlltoall+int32(t)))
	}
	for t := 1; t < n; t++ {
		dst := (r.ID() + t) % n
		qs = append(qs, r.Isend(dst, tagAlltoall+int32(t), m))
	}
	r.WaitAll(qs...)
}

// alltoallBruck runs the Bruck algorithm, tracking only data volumes: in
// the round with distance k, every block whose index has a nonzero k-bit
// is forwarded, so the transfer size is m times the number of such
// blocks.
func alltoallBruck(r *mpi.Rank, m int) {
	n := r.Size()
	round := 0
	for k := 1; k < n; k <<= 1 {
		blocks := 0
		for j := 1; j < n; j++ {
			if j&k != 0 {
				blocks++
			}
		}
		dst := (r.ID() + k) % n
		src := (r.ID() - k + n) % n
		size := blocks * m
		if size == 0 {
			size = 1
		}
		r.Sendrecv(dst, tagAlltoall+int32(round), size, src, tagAlltoall+int32(round))
		round++
	}
}

// alltoallPairwise is the XOR exchange (power-of-two n only).
func alltoallPairwise(r *mpi.Rank, m int) {
	n := r.Size()
	for t := 1; t < n; t++ {
		partner := r.ID() ^ t
		r.Sendrecv(partner, tagAlltoall+int32(t), m, partner, tagAlltoall+int32(t))
	}
}

// Scatter distributes one m-byte block from root to every other rank
// (linear algorithm, the shape assumed by the related-work models).
func Scatter(r *mpi.Rank, root, m int) {
	if r.ID() == root {
		for dst := 0; dst < r.Size(); dst++ {
			if dst != root {
				r.Send(dst, tagScatter, m)
			}
		}
	} else {
		r.Recv(root, tagScatter)
	}
}

// Gather collects one m-byte block from every rank at root (linear).
func Gather(r *mpi.Rank, root, m int) {
	if r.ID() == root {
		for src := 0; src < r.Size(); src++ {
			if src != root {
				r.Recv(src, tagGather)
			}
		}
	} else {
		r.Send(root, tagGather, m)
	}
}

// Allgather runs the ring algorithm: n-1 steps, each passing an m-byte
// block to the successor.
func Allgather(r *mpi.Rank, m int) {
	n := r.Size()
	if n == 1 {
		return
	}
	dst := (r.ID() + 1) % n
	src := (r.ID() - 1 + n) % n
	for t := 0; t < n-1; t++ {
		r.Sendrecv(dst, tagAllgather+int32(t), m, src, tagAllgather+int32(t))
	}
}

// Bcast broadcasts an m-byte message from root using a binomial tree.
func Bcast(r *mpi.Rank, root, m int) {
	n := r.Size()
	vrank := (r.ID() - root + n) % n
	// Receive from parent (if not root).
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % n
			r.Recv(parent, tagBcast)
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for ; mask > 0; mask >>= 1 {
		if vrank+mask < n {
			child := (vrank + mask + root) % n
			r.Send(child, tagBcast, m)
		}
	}
}
