package coll

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// verifyHierPlan executes a plan symbolically at block granularity: each
// rank advances through its phases; a phase completes once every inbound
// message's sender has posted it (entered its own sending phase). It
// checks three properties of the actual plan the mpi executor runs:
//
//  1. progress: every rank finishes all phases (deadlock-freedom of the
//     phase structure under dependency-respecting scheduling);
//  2. causality: a rank holds every block it sends at posting time;
//  3. permutation: afterwards every rank holds exactly the blocks
//     addressed to it.
func verifyHierPlan(t *testing.T, plan *HierPlan) {
	t.Helper()
	p := plan.Place
	n := p.NumRanks()
	hold := make([]map[Block]bool, n)
	for i := 0; i < n; i++ {
		hold[i] = map[Block]bool{}
		for j := 0; j < n; j++ {
			if j != i {
				hold[i][Block{Src: i, Dst: j}] = true
			}
		}
	}
	progress := make([]int, n)

	// checkSendsHeld asserts causality when rank r enters phase ph.
	checkSendsHeld := func(r, ph int) {
		for _, m := range plan.msgs {
			if m.from != r || m.fromPhase != ph {
				continue
			}
			for _, blk := range m.blocks {
				if !hold[r][blk] {
					t.Fatalf("%v: rank %d posts block %+v in phase %d without holding it",
						plan.Alg, r, blk, ph)
				}
			}
		}
	}
	for r := 0; r < n; r++ {
		checkSendsHeld(r, 0)
	}

	for {
		advanced := false
		for r := 0; r < n; r++ {
			ph := progress[r]
			if ph >= len(plan.perRank[r]) {
				continue
			}
			ready := true
			for _, m := range plan.msgs {
				if m.to == r && m.toPhase == ph && progress[m.from] < m.fromPhase {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			for _, m := range plan.msgs {
				if m.to == r && m.toPhase == ph {
					for _, blk := range m.blocks {
						hold[r][blk] = true
					}
				}
			}
			progress[r]++
			if progress[r] < len(plan.perRank[r]) {
				checkSendsHeld(r, progress[r])
			}
			advanced = true
		}
		if !advanced {
			break
		}
	}
	for r := 0; r < n; r++ {
		if progress[r] != len(plan.perRank[r]) {
			t.Fatalf("%v: deadlock, rank %d stuck at phase %d/%d",
				plan.Alg, r, progress[r], len(plan.perRank[r]))
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i != j && !hold[j][Block{Src: i, Dst: j}] {
				t.Fatalf("%v: block %d->%d never reached rank %d", plan.Alg, i, j, j)
			}
		}
	}
}

// TestHierPlanPermutation checks block-permutation correctness of both
// hierarchical algorithms across placements with uneven cluster sizes,
// single-rank clusters, one-cluster grids and non-contiguous
// rank→cluster assignments.
func TestHierPlanPermutation(t *testing.T) {
	placements := [][]int{
		{0},
		{0, 0, 0},
		{0, 1},
		{0, 0, 1},
		{0, 1, 2},
		{0, 0, 0, 1, 1, 1, 1},
		{0, 0, 0, 1, 2, 2, 2, 2, 2},
		{0, 1, 0, 2, 1, 0, 2, 2, 1}, // interleaved placement
	}
	for _, clusterOf := range placements {
		place := NewPlacement(clusterOf)
		for _, alg := range HierAlgorithms {
			verifyHierPlan(t, PlanHier(place, alg))
		}
	}
}

// TestHierPlanPermutationRandom fuzzes placements: random cluster counts
// and random (dense, non-empty) assignments.
func TestHierPlanPermutationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		k := rng.Intn(4) + 1
		n := k + rng.Intn(10)
		clusterOf := make([]int, n)
		// Guarantee every cluster is non-empty, then fill randomly.
		perm := rng.Perm(n)
		for c := 0; c < k; c++ {
			clusterOf[perm[c]] = c
		}
		for i := k; i < n; i++ {
			clusterOf[perm[i]] = rng.Intn(k)
		}
		place := NewPlacement(clusterOf)
		for _, alg := range HierAlgorithms {
			verifyHierPlan(t, PlanHier(place, alg))
		}
	}
}

// TestHierPlanAggregation: the WAN-crossing traffic of a hierarchical
// plan is exactly one message per ordered cluster pair, carrying every
// inter-cluster block once.
func TestHierPlanAggregation(t *testing.T) {
	place := NewPlacement([]int{0, 0, 0, 1, 1, 2})
	for _, alg := range HierAlgorithms {
		plan := PlanHier(place, alg)
		cross := map[[2]int]int{}
		for _, m := range plan.msgs {
			cf, ct := place.Cluster(m.from), place.Cluster(m.to)
			if cf != ct {
				cross[[2]int{cf, ct}]++
				if m.from != place.Coordinator(cf) || m.to != place.Coordinator(ct) {
					t.Fatalf("%v: inter-cluster message %d->%d not coordinator-relayed", alg, m.from, m.to)
				}
			}
		}
		k := place.NumClusters()
		if len(cross) != k*(k-1) {
			t.Fatalf("%v: %d cross-cluster message pairs, want %d", alg, len(cross), k*(k-1))
		}
		for pair, cnt := range cross {
			if cnt != 1 {
				t.Fatalf("%v: cluster pair %v crossed by %d messages, want 1", alg, pair, cnt)
			}
		}
	}
}

// TestHierAlltoallOnGrid runs both hierarchical algorithms end-to-end on
// a simulated two-cluster grid over a 10 ms WAN and checks completion
// (the mpi runtime panics on deadlock) with a physically sensible time.
func TestHierAlltoallOnGrid(t *testing.T) {
	gp := cluster.Uniform("t-hier", cluster.GigabitEthernet(), 2, 3,
		cluster.DefaultWAN(10*sim.Millisecond))
	for _, alg := range HierAlgorithms {
		g, err := cluster.BuildGrid(gp, 5)
		if err != nil {
			t.Fatal(err)
		}
		place := NewPlacement(g.ClusterOf)
		plan := PlanHier(place, alg)
		w := mpi.NewWorld(g.Env, mpi.Config{})
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { AlltoallHierPlanned(r, plan, 20_000) })
		if meas.Mean() <= 0.010 {
			t.Fatalf("%v: completion %.4fs, cannot beat one WAN latency", alg, meas.Mean())
		}
		if meas.Mean() > 5 {
			t.Fatalf("%v: completion %.1fs implausibly slow", alg, meas.Mean())
		}
	}
}

// TestAlltoallReportsEffectiveAlgorithm is the regression test for the
// silent Pairwise→Direct fallback: the effective algorithm is reported,
// both statically and from the runtime.
func TestAlltoallReportsEffectiveAlgorithm(t *testing.T) {
	if got := Pairwise.Effective(6); got != Direct {
		t.Fatalf("Pairwise.Effective(6) = %v, want Direct", got)
	}
	if got := Pairwise.Effective(8); got != Pairwise {
		t.Fatalf("Pairwise.Effective(8) = %v, want Pairwise", got)
	}
	for _, alg := range []Algorithm{Direct, PostAll, Bruck} {
		if got := alg.Effective(6); got != alg {
			t.Fatalf("%v.Effective(6) = %v, want %v", alg, got, alg)
		}
	}
	for _, n := range []int{6, 8} {
		cl := cluster.Build(cluster.Myrinet(), n, 3)
		w := mpi.NewWorld(cl, mpi.Config{})
		got := make([]Algorithm, n)
		w.Run(func(r *mpi.Rank) {
			got[r.ID()] = Alltoall(r, 4096, Pairwise)
		})
		want := Pairwise.Effective(n)
		for id, eff := range got {
			if eff != want {
				t.Fatalf("n=%d rank %d: Alltoall ran %v, want %v", n, id, eff, want)
			}
		}
	}
}
