package coll

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// verifyHierPlan executes a plan symbolically at block granularity: each
// rank advances through its phases; a phase completes once every inbound
// message's sender has posted it (entered its own sending phase) AND
// every outbound message's receiver has posted the matching receive —
// the rendezvous protocol's completion rule, under which a send blocks
// its phase until the receiver arrives. It checks three properties of
// the actual plan the mpi executor runs:
//
//  1. progress: every rank finishes all phases (deadlock-freedom of the
//     phase structure under dependency-respecting scheduling, even when
//     every message is rendezvous);
//  2. causality: a rank holds every block it sends at posting time;
//  3. permutation: afterwards every rank holds exactly the blocks
//     addressed to it.
func verifyHierPlan(t *testing.T, plan *HierPlan) {
	t.Helper()
	p := plan.Place
	n := p.NumRanks()
	hold := make([]map[Block]bool, n)
	for i := 0; i < n; i++ {
		hold[i] = map[Block]bool{}
		for j := 0; j < n; j++ {
			if j != i {
				hold[i][Block{Src: i, Dst: j}] = true
			}
		}
	}
	progress := make([]int, n)

	// checkSendsHeld asserts causality when rank r enters phase ph.
	checkSendsHeld := func(r, ph int) {
		for _, m := range plan.msgs {
			if m.from != r || m.fromPhase != ph {
				continue
			}
			for _, blk := range m.blocks {
				if !hold[r][blk] {
					t.Fatalf("%v: rank %d posts block %+v in phase %d without holding it",
						plan.Alg, r, blk, ph)
				}
			}
		}
	}
	for r := 0; r < n; r++ {
		checkSendsHeld(r, 0)
	}

	for {
		advanced := false
		for r := 0; r < n; r++ {
			ph := progress[r]
			if ph >= len(plan.perRank[r]) {
				continue
			}
			ready := true
			for _, m := range plan.msgs {
				if m.to == r && m.toPhase == ph && progress[m.from] < m.fromPhase {
					ready = false
					break
				}
				// Rendezvous: a send completes only once the receiver
				// has posted the matching receive.
				if m.from == r && m.fromPhase == ph && progress[m.to] < m.toPhase {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			for _, m := range plan.msgs {
				if m.to == r && m.toPhase == ph {
					for _, blk := range m.blocks {
						hold[r][blk] = true
					}
				}
			}
			progress[r]++
			if progress[r] < len(plan.perRank[r]) {
				checkSendsHeld(r, progress[r])
			}
			advanced = true
		}
		if !advanced {
			break
		}
	}
	for r := 0; r < n; r++ {
		if progress[r] != len(plan.perRank[r]) {
			t.Fatalf("%v: deadlock, rank %d stuck at phase %d/%d",
				plan.Alg, r, progress[r], len(plan.perRank[r]))
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i != j && !hold[j][Block{Src: i, Dst: j}] {
				t.Fatalf("%v: block %d->%d never reached rank %d", plan.Alg, i, j, j)
			}
		}
	}

	// Exactly-once delivery: each block is carried into its final
	// destination by exactly one message — a relay must never re-send a
	// block its destination already holds.
	delivered := map[Block]int{}
	for _, m := range plan.msgs {
		for _, blk := range m.blocks {
			if blk.Dst == m.to {
				delivered[blk]++
			}
		}
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			if got := delivered[Block{Src: i, Dst: j}]; got != 1 {
				t.Fatalf("%v: block %d->%d delivered by %d messages, want exactly 1",
					plan.Alg, i, j, got)
			}
		}
	}
}

// TestHierPlanPermutation checks block-permutation correctness of both
// hierarchical algorithms across placements with uneven cluster sizes,
// single-rank clusters, one-cluster grids and non-contiguous
// rank→cluster assignments.
func TestHierPlanPermutation(t *testing.T) {
	placements := [][]int{
		{0},
		{0, 0, 0},
		{0, 1},
		{0, 0, 1},
		{0, 1, 2},
		{0, 0, 0, 1, 1, 1, 1},
		{0, 0, 0, 1, 2, 2, 2, 2, 2},
		{0, 1, 0, 2, 1, 0, 2, 2, 1}, // interleaved placement
	}
	for _, clusterOf := range placements {
		place := NewPlacement(clusterOf)
		for _, alg := range HierAlgorithms {
			verifyHierPlan(t, PlanHier(place, alg))
		}
	}
}

// TestHierPlanPermutationRandom fuzzes placements: random cluster counts
// and random (dense, non-empty) assignments.
func TestHierPlanPermutationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		k := rng.Intn(4) + 1
		n := k + rng.Intn(10)
		clusterOf := make([]int, n)
		// Guarantee every cluster is non-empty, then fill randomly.
		perm := rng.Perm(n)
		for c := 0; c < k; c++ {
			clusterOf[perm[c]] = c
		}
		for i := k; i < n; i++ {
			clusterOf[perm[i]] = rng.Intn(k)
		}
		place := NewPlacement(clusterOf)
		for _, alg := range HierAlgorithms {
			verifyHierPlan(t, PlanHier(place, alg))
		}
	}
}

// treeSpecs are multi-level topologies covering uniform 3-level trees,
// uneven depths (a leaf directly under the root next to deep groups),
// single-rank leaves and interleaved rank assignments.
func treeSpecs() []TreeSpec {
	leaf := func(ranks ...int) TreeSpec { return TreeSpec{Ranks: ranks} }
	group := func(children ...TreeSpec) TreeSpec { return TreeSpec{Children: children} }
	return []TreeSpec{
		// Depth 0: a single cluster.
		leaf(0, 1, 2, 3),
		// Depth 1: the PR-1 two-level grid.
		group(leaf(0, 1, 2), leaf(3, 4, 5)),
		// Uniform depth 2: campus → national → continental.
		group(
			group(leaf(0, 1), leaf(2, 3)),
			group(leaf(4, 5), leaf(6, 7)),
		),
		// Uneven cluster sizes and a single-rank campus.
		group(
			group(leaf(0, 1, 2), leaf(3)),
			group(leaf(4, 5), leaf(6, 7, 8, 9)),
		),
		// Uneven depth: a leaf right under the root next to a deep group.
		group(
			leaf(0, 1, 2),
			group(leaf(3, 4), leaf(5)),
		),
		// Interleaved (non-contiguous) rank placement on a 3-level tree.
		group(
			group(leaf(7, 0), leaf(3, 9)),
			group(leaf(1, 8), leaf(5, 2), leaf(4, 6)),
		),
		// Depth 3, mixed shapes, single-rank subtrees.
		group(
			group(
				group(leaf(0), leaf(1, 2)),
				leaf(3, 4),
			),
			group(leaf(5, 6), group(leaf(7), leaf(8))),
		),
	}
}

// TestHierTreePlanPermutation checks block-permutation correctness and
// deadlock-freedom of both hierarchical algorithms across multi-level
// topologies, including uneven depths and single-rank leaves.
func TestHierTreePlanPermutation(t *testing.T) {
	for ti, spec := range treeSpecs() {
		for _, alg := range HierAlgorithms {
			plan := PlanHierTree(spec, alg)
			if plan.Tree.NumRanks() != plan.Place.NumRanks() {
				t.Fatalf("tree %d %v: tree has %d ranks, placement %d",
					ti, alg, plan.Tree.NumRanks(), plan.Place.NumRanks())
			}
			verifyHierPlan(t, plan)
		}
	}
}

// TestHierTreePlanPermutationRandom fuzzes topology trees: random
// shapes up to depth 3, random rank distribution over leaves.
func TestHierTreePlanPermutationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var build func(depthLeft int) TreeSpec
	var leafCount int
	build = func(depthLeft int) TreeSpec {
		if depthLeft == 0 || rng.Intn(3) == 0 {
			leafCount++
			return TreeSpec{Ranks: []int{}} // ranks filled afterwards
		}
		k := rng.Intn(3) + 1
		var s TreeSpec
		for c := 0; c < k; c++ {
			s.Children = append(s.Children, build(depthLeft-1))
		}
		return s
	}
	fill := func(s *TreeSpec, perLeaf [][]int) {
		idx := 0
		var walk func(v *TreeSpec)
		walk = func(v *TreeSpec) {
			if len(v.Children) == 0 {
				v.Ranks = perLeaf[idx]
				idx++
				return
			}
			for i := range v.Children {
				walk(&v.Children[i])
			}
		}
		walk(s)
	}
	for iter := 0; iter < 40; iter++ {
		leafCount = 0
		spec := build(3)
		if leafCount == 0 {
			continue
		}
		n := leafCount + rng.Intn(8)
		perm := rng.Perm(n)
		perLeaf := make([][]int, leafCount)
		for l := 0; l < leafCount; l++ {
			perLeaf[l] = []int{perm[l]} // every leaf non-empty
		}
		for i := leafCount; i < n; i++ {
			l := rng.Intn(leafCount)
			perLeaf[l] = append(perLeaf[l], perm[i])
		}
		fill(&spec, perLeaf)
		for _, alg := range HierAlgorithms {
			verifyHierPlan(t, PlanHierTree(spec, alg))
		}
	}
}

// TestHierTreeAggregation: on a 3-level tree, traffic crossing a tier is
// coordinator-relayed and the top tier carries exactly one aggregated
// message per ordered national pair.
func TestHierTreeAggregation(t *testing.T) {
	spec := TreeSpec{Children: []TreeSpec{
		{Children: []TreeSpec{{Ranks: []int{0, 1, 2}}, {Ranks: []int{3, 4}}}},
		{Children: []TreeSpec{{Ranks: []int{5, 6, 7}}, {Ranks: []int{8}}}},
	}}
	nationOf := func(r int) int {
		if r <= 4 {
			return 0
		}
		return 1
	}
	for _, alg := range HierAlgorithms {
		plan := PlanHierTree(spec, alg)
		cross := map[[2]int]int{}
		for _, m := range plan.msgs {
			nf, nt := nationOf(m.from), nationOf(m.to)
			if nf != nt {
				cross[[2]int{nf, nt}]++
				// National coordinators are the lowest ranks: 0 and 5.
				if (m.from != 0 && m.from != 5) || (m.to != 0 && m.to != 5) {
					t.Fatalf("%v: top-tier message %d->%d not coordinator-relayed", alg, m.from, m.to)
				}
				if len(m.blocks) != 5*4 {
					t.Fatalf("%v: top-tier message %d->%d carries %d blocks, want 20", alg, m.from, m.to, len(m.blocks))
				}
			}
		}
		if len(cross) != 2 || cross[[2]int{0, 1}] != 1 || cross[[2]int{1, 0}] != 1 {
			t.Fatalf("%v: top-tier crossings %v, want exactly one per ordered pair", alg, cross)
		}
		// Campus crossings within nation 0: two exchange messages
		// between campus coordinators (0 and 3), one upward gather
		// (3 -> 0 carries campus {3,4}'s outbound) and one downward
		// scatter (0 -> 3) — four coordinator-relayed messages.
		campus := 0
		for _, m := range plan.msgs {
			a, b := m.from <= 2, m.to <= 2
			if m.from <= 4 && m.to <= 4 && a != b {
				campus++
				if (m.from != 0 && m.from != 3) || (m.to != 0 && m.to != 3) {
					t.Fatalf("%v: campus-tier message %d->%d not coordinator-relayed", alg, m.from, m.to)
				}
			}
		}
		if campus != 4 {
			t.Fatalf("%v: %d campus-tier crossings in nation 0, want 4", alg, campus)
		}
	}
}

// TestHierPlanTwoLevelShapePinned pins the exact two-level plan shape
// the flat-placement path produced before the recursive rewrite
// (PR 1), proving depth-1 inputs reproduce it through the unified
// recursive builder: per-rank phase layouts, message counts and
// aggregation for a 3+3 grid.
func TestHierPlanTwoLevelShapePinned(t *testing.T) {
	place := NewPlacement([]int{0, 0, 0, 1, 1, 1})

	ops := func(p *HierPlan, r, ph int) (sends, recvs int) {
		if ph >= len(p.perRank[r]) {
			return 0, 0
		}
		return len(p.perRank[r][ph].sends), len(p.perRank[r][ph].recvs)
	}

	// hier-gather: 0 intra, 1 gather, 2 coordinator exchange, 3 scatter.
	g := PlanHier(place, HierGather)
	for r := 0; r < 6; r++ {
		if got := len(g.perRank[r]); got != 4 {
			t.Fatalf("gather: rank %d has %d phases, want 4", r, got)
		}
	}
	for _, r := range []int{0, 3} { // coordinators
		for ph, want := range [][2]int{{2, 2}, {0, 2}, {1, 1}, {2, 0}} {
			s, v := ops(g, r, ph)
			if s != want[0] || v != want[1] {
				t.Fatalf("gather: coord %d phase %d = %d sends/%d recvs, want %d/%d", r, ph, s, v, want[0], want[1])
			}
		}
	}
	for _, r := range []int{1, 2, 4, 5} { // members
		for ph, want := range [][2]int{{2, 2}, {1, 0}, {0, 0}, {0, 1}} {
			s, v := ops(g, r, ph)
			if s != want[0] || v != want[1] {
				t.Fatalf("gather: member %d phase %d = %d sends/%d recvs, want %d/%d", r, ph, s, v, want[0], want[1])
			}
		}
	}

	// hier-direct: members collapse to a single do-everything phase;
	// coordinators keep 3 (intra+gathers, exchange, scatter).
	d := PlanHier(place, HierDirect)
	for _, r := range []int{1, 2, 4, 5} {
		if got := len(d.perRank[r]); got != 1 {
			t.Fatalf("direct: member %d has %d phases, want 1", r, got)
		}
		s, v := ops(d, r, 0)
		if s != 3 || v != 3 {
			t.Fatalf("direct: member %d phase 0 = %d sends/%d recvs, want 3/3", r, s, v)
		}
	}
	for _, r := range []int{0, 3} {
		if got := len(d.perRank[r]); got != 3 {
			t.Fatalf("direct: coord %d has %d phases, want 3", r, got)
		}
		for ph, want := range [][2]int{{2, 4}, {1, 1}, {2, 0}} {
			s, v := ops(d, r, ph)
			if s != want[0] || v != want[1] {
				t.Fatalf("direct: coord %d phase %d = %d sends/%d recvs, want %d/%d", r, ph, s, v, want[0], want[1])
			}
		}
	}

	// Aggregation invariants shared by both variants: one exchange
	// message per ordered cluster pair with 9 blocks, gathers of 3
	// blocks, scatters of 3 blocks, 12 intra messages.
	for _, p := range []*HierPlan{g, d} {
		var intra, gather, xchg, scatter int
		for _, m := range p.msgs {
			switch {
			case p.Place.Cluster(m.from) != p.Place.Cluster(m.to):
				xchg++
				if len(m.blocks) != 9 {
					t.Fatalf("%v: exchange carries %d blocks, want 9", p.Alg, len(m.blocks))
				}
			case len(m.blocks) == 1:
				intra++
			case m.to == p.Place.Coordinator(p.Place.Cluster(m.to)):
				gather++
			default:
				scatter++
			}
		}
		if intra != 12 || gather != 4 || xchg != 2 || scatter != 4 {
			t.Fatalf("%v: intra/gather/xchg/scatter = %d/%d/%d/%d, want 12/4/2/4",
				p.Alg, intra, gather, xchg, scatter)
		}
	}
}

// TestHierPlanAggregation: the WAN-crossing traffic of a hierarchical
// plan is exactly one message per ordered cluster pair, carrying every
// inter-cluster block once.
func TestHierPlanAggregation(t *testing.T) {
	place := NewPlacement([]int{0, 0, 0, 1, 1, 2})
	for _, alg := range HierAlgorithms {
		plan := PlanHier(place, alg)
		cross := map[[2]int]int{}
		for _, m := range plan.msgs {
			cf, ct := place.Cluster(m.from), place.Cluster(m.to)
			if cf != ct {
				cross[[2]int{cf, ct}]++
				if m.from != place.Coordinator(cf) || m.to != place.Coordinator(ct) {
					t.Fatalf("%v: inter-cluster message %d->%d not coordinator-relayed", alg, m.from, m.to)
				}
			}
		}
		k := place.NumClusters()
		if len(cross) != k*(k-1) {
			t.Fatalf("%v: %d cross-cluster message pairs, want %d", alg, len(cross), k*(k-1))
		}
		for pair, cnt := range cross {
			if cnt != 1 {
				t.Fatalf("%v: cluster pair %v crossed by %d messages, want 1", alg, pair, cnt)
			}
		}
	}
}

// TestHierAlltoallOnGrid runs both hierarchical algorithms end-to-end on
// a simulated two-cluster grid over a 10 ms WAN and checks completion
// (the mpi runtime panics on deadlock) with a physically sensible time.
func TestHierAlltoallOnGrid(t *testing.T) {
	gp := cluster.Uniform("t-hier", cluster.GigabitEthernet(), 2, 3,
		cluster.DefaultWAN(10*sim.Millisecond))
	for _, alg := range HierAlgorithms {
		g, err := cluster.BuildGrid(gp, 5)
		if err != nil {
			t.Fatal(err)
		}
		place := NewPlacement(g.ClusterOf)
		plan := PlanHier(place, alg)
		w := mpi.NewWorld(g.Env, mpi.Config{})
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { AlltoallHierPlanned(r, plan, 20_000) })
		if meas.Mean() <= 0.010 {
			t.Fatalf("%v: completion %.4fs, cannot beat one WAN latency", alg, meas.Mean())
		}
		if meas.Mean() > 5 {
			t.Fatalf("%v: completion %.1fs implausibly slow", alg, meas.Mean())
		}
	}
}

// TestHierTreeAlltoallOn3LevelGrid runs both hierarchical algorithms
// end-to-end on a simulated 3-level grid (2 nations × 2 campuses × 2
// nodes, 5 ms campus / 20 ms continental tiers) and checks completion
// with a physically sensible time (the mpi runtime panics on deadlock).
func TestHierTreeAlltoallOn3LevelGrid(t *testing.T) {
	p := cluster.WANTuned(cluster.GigabitEthernet())
	tree := cluster.ThreeLevel("t-hier3", p, 2, 2, 2,
		cluster.DefaultWAN(5*sim.Millisecond), cluster.DefaultWAN(20*sim.Millisecond))
	for _, alg := range HierAlgorithms {
		g, err := cluster.BuildGridTree(tree, 5)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanHierTree(GridSpec(g), alg)
		if plan.Tree.Height() != 2 {
			t.Fatalf("%v: plan height %d, want 2", alg, plan.Tree.Height())
		}
		w := mpi.NewWorld(g.Env, mpi.Config{})
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { AlltoallHierPlanned(r, plan, 20_000) })
		if meas.Mean() <= 0.020 {
			t.Fatalf("%v: completion %.4fs, cannot beat one continental latency", alg, meas.Mean())
		}
		if meas.Mean() > 10 {
			t.Fatalf("%v: completion %.1fs implausibly slow", alg, meas.Mean())
		}
	}
}

// TestAlltoallReportsEffectiveAlgorithm is the regression test for the
// silent Pairwise→Direct fallback: the effective algorithm is reported,
// both statically and from the runtime.
func TestAlltoallReportsEffectiveAlgorithm(t *testing.T) {
	if got := Pairwise.Effective(6); got != Direct {
		t.Fatalf("Pairwise.Effective(6) = %v, want Direct", got)
	}
	if got := Pairwise.Effective(8); got != Pairwise {
		t.Fatalf("Pairwise.Effective(8) = %v, want Pairwise", got)
	}
	for _, alg := range []Algorithm{Direct, PostAll, Bruck} {
		if got := alg.Effective(6); got != alg {
			t.Fatalf("%v.Effective(6) = %v, want %v", alg, got, alg)
		}
	}
	for _, n := range []int{6, 8} {
		cl := cluster.Build(cluster.Myrinet(), n, 3)
		w := mpi.NewWorld(cl, mpi.Config{})
		got := make([]Algorithm, n)
		w.Run(func(r *mpi.Rank) {
			got[r.ID()] = Alltoall(r, 4096, Pairwise)
		})
		want := Pairwise.Effective(n)
		for id, eff := range got {
			if eff != want {
				t.Fatalf("n=%d rank %d: Alltoall ran %v, want %v", n, id, eff, want)
			}
		}
	}
}

// planFingerprint renders a plan's full observable structure — per-rank
// phase op lists and every message with its blocks — for exact
// plan-equality regression checks.
func planFingerprint(p *HierPlan) string {
	var b strings.Builder
	for r, phases := range p.perRank {
		fmt.Fprintf(&b, "rank %d:", r)
		for ph, ops := range phases {
			fmt.Fprintf(&b, " [%d: %ds %dr]", ph, len(ops.sends), len(ops.recvs))
		}
		b.WriteString("\n")
	}
	for _, m := range p.msgs {
		fmt.Fprintf(&b, "msg %d@%d -> %d@%d tag %d blocks %v\n",
			m.from, m.fromPhase, m.to, m.toPhase, m.tag, m.blocks)
	}
	return b.String()
}

// TestHierPlanDefaultEqualsExplicitLowestCoords pins the regression the
// coordinator extension must honor: naming each subtree's lowest rank
// explicitly produces byte-identical plans to the no-Coords default, so
// the selection machinery provably changes nothing unless a non-default
// coordinator is chosen.
func TestHierPlanDefaultEqualsExplicitLowestCoords(t *testing.T) {
	lowest := func(ranks []int) int {
		lo := ranks[0]
		for _, r := range ranks {
			if r < lo {
				lo = r
			}
		}
		return lo
	}
	var explicit func(s TreeSpec) TreeSpec
	explicit = func(s TreeSpec) TreeSpec {
		if len(s.Children) == 0 {
			s.Coords = []int{lowest(s.Ranks)}
			return s
		}
		children := make([]TreeSpec, len(s.Children))
		var all []int
		for i, c := range s.Children {
			children[i] = explicit(c)
			all = append(all, specRanks(c)...)
		}
		s.Children = children
		s.Coords = []int{lowest(all)}
		return s
	}
	for ti, spec := range treeSpecs() {
		for _, alg := range HierAlgorithms {
			def := planFingerprint(PlanHierTree(spec, alg))
			exp := planFingerprint(PlanHierTree(explicit(spec), alg))
			if def != exp {
				t.Fatalf("tree %d %v: explicit lowest-rank coords changed the plan:\n--- default ---\n%s--- explicit ---\n%s",
					ti, alg, def, exp)
			}
		}
	}
}

// specRanks collects every rank of a spec subtree.
func specRanks(s TreeSpec) []int {
	if len(s.Children) == 0 {
		return append([]int(nil), s.Ranks...)
	}
	var out []int
	for _, c := range s.Children {
		out = append(out, specRanks(c)...)
	}
	return out
}

// TestHierPlanNonLowestCoordinatorRouting: with explicit non-lowest
// coordinators, every cross-cluster message is relayed between exactly
// the chosen ranks, and the plan invariants still hold.
func TestHierPlanNonLowestCoordinatorRouting(t *testing.T) {
	spec := TreeSpec{Children: []TreeSpec{
		{Ranks: []int{0, 1, 2}, Coords: []int{2}},
		{Ranks: []int{3, 4, 5}, Coords: []int{4}},
	}}
	for _, alg := range HierAlgorithms {
		plan := PlanHierTree(spec, alg)
		verifyHierPlan(t, plan)
		if got := plan.Tree.Coordinators(0); len(got) != 1 || got[0] != 2 {
			t.Fatalf("%v: leaf 0 coordinators = %v, want [2]", alg, got)
		}
		for _, m := range plan.msgs {
			if plan.Tree.LeafOf(m.from) == plan.Tree.LeafOf(m.to) {
				continue
			}
			if (m.from != 2 && m.from != 4) || (m.to != 2 && m.to != 4) {
				t.Fatalf("%v: cross message %d->%d not relayed via chosen coordinators", alg, m.from, m.to)
			}
		}
	}
}

// TestHierPlanMultiCoordinatorSplit: a wide leaf with two coordinators
// splits its relay by divergence target — target k is owned by
// coordinator k mod C — so each coordinator carries exactly its share
// of the cross traffic and the gather incast lands on two ports.
func TestHierPlanMultiCoordinatorSplit(t *testing.T) {
	spec := TreeSpec{Children: []TreeSpec{
		{Ranks: []int{0, 1, 2, 3}, Coords: []int{1, 3}},
		{Ranks: []int{4, 5}},
		{Ranks: []int{6, 7}},
	}}
	for _, alg := range HierAlgorithms {
		plan := PlanHierTree(spec, alg)
		verifyHierPlan(t, plan)

		// Leaf 0's targets in canonical order are cluster 1 (owner 1)
		// and cluster 2 (owner 3).
		wantOwner := map[int]int{1: 1, 2: 3}
		for _, m := range plan.msgs {
			lf, lt := plan.Tree.LeafOf(m.from), plan.Tree.LeafOf(m.to)
			if lf == lt {
				continue
			}
			if lf == 0 {
				if want := wantOwner[lt]; m.from != want {
					t.Fatalf("%v: exchange to cluster %d sent by %d, want owner %d", alg, lt, m.from, want)
				}
			}
			if lt == 0 {
				if want := wantOwner[lf]; m.to != want {
					t.Fatalf("%v: exchange from cluster %d received by %d, want owner %d", alg, lf, m.to, want)
				}
			}
		}

		// Gather split: every member of leaf 0 hands cluster-1-bound
		// blocks to rank 1 and cluster-2-bound blocks to rank 3 — no
		// single port sees the whole incast.
		gathers := map[[2]int]int{} // (member, owner) -> messages
		for _, m := range plan.msgs {
			if plan.Tree.LeafOf(m.from) != 0 || plan.Tree.LeafOf(m.to) != 0 {
				continue
			}
			if len(m.blocks) > 0 && m.blocks[0].Src == m.from && plan.Tree.LeafOf(m.blocks[0].Dst) != 0 {
				gathers[[2]int{m.from, m.to}]++
			}
		}
		for _, member := range []int{0, 2} { // plain members gather to both owners
			for _, owner := range []int{1, 3} {
				if gathers[[2]int{member, owner}] != 1 {
					t.Fatalf("%v: member %d -> owner %d gather messages = %d, want 1 (gathers: %v)",
						alg, member, owner, gathers[[2]int{member, owner}], gathers)
				}
			}
		}
		// The co-coordinators forward each other the targets they do
		// not own.
		if gathers[[2]int{1, 3}] != 1 || gathers[[2]int{3, 1}] != 1 {
			t.Fatalf("%v: co-coordinator handoffs missing: %v", alg, gathers)
		}
	}
}

// TestHierTreeCoordinatorFuzz fuzzes topology trees with random
// coordinator assignments — non-lowest ranks, multiple coordinators,
// at leaves and at inner tiers — asserting the full plan invariants:
// every block delivered exactly once, causality, and rendezvous-safe
// deadlock-free phase ordering.
func TestHierTreeCoordinatorFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	var build func(depthLeft int) TreeSpec
	var leafCount int
	build = func(depthLeft int) TreeSpec {
		if depthLeft == 0 || rng.Intn(3) == 0 {
			leafCount++
			return TreeSpec{Ranks: []int{}}
		}
		k := rng.Intn(3) + 1
		var s TreeSpec
		for c := 0; c < k; c++ {
			s.Children = append(s.Children, build(depthLeft-1))
		}
		return s
	}
	fill := func(s *TreeSpec, perLeaf [][]int) {
		idx := 0
		var walk func(v *TreeSpec)
		walk = func(v *TreeSpec) {
			if len(v.Children) == 0 {
				v.Ranks = perLeaf[idx]
				idx++
				return
			}
			for i := range v.Children {
				walk(&v.Children[i])
			}
		}
		walk(s)
	}
	// assignCoords gives each node, with probability 1/2, a random
	// coordinator set drawn from its subtree: random size 1..3, random
	// members, in random order — lowest rank only by accident.
	var assignCoords func(s *TreeSpec)
	assignCoords = func(s *TreeSpec) {
		for i := range s.Children {
			assignCoords(&s.Children[i])
		}
		if rng.Intn(2) == 0 {
			return
		}
		ranks := specRanks(*s)
		rng.Shuffle(len(ranks), func(i, j int) { ranks[i], ranks[j] = ranks[j], ranks[i] })
		c := rng.Intn(3) + 1
		if c > len(ranks) {
			c = len(ranks)
		}
		s.Coords = append([]int(nil), ranks[:c]...)
	}
	for iter := 0; iter < 60; iter++ {
		leafCount = 0
		spec := build(3)
		if leafCount == 0 {
			continue
		}
		n := leafCount + rng.Intn(10)
		perm := rng.Perm(n)
		perLeaf := make([][]int, leafCount)
		for l := 0; l < leafCount; l++ {
			perLeaf[l] = []int{perm[l]}
		}
		for i := leafCount; i < n; i++ {
			l := rng.Intn(leafCount)
			perLeaf[l] = append(perLeaf[l], perm[i])
		}
		fill(&spec, perLeaf)
		assignCoords(&spec)
		for _, alg := range HierAlgorithms {
			verifyHierPlan(t, PlanHierTree(spec, alg))
		}
	}
}

// TestTreeSpecCoordsValidation: malformed coordinator sets must be
// rejected at compile time, not silently produce broken plans.
func TestTreeSpecCoordsValidation(t *testing.T) {
	mustPanic := func(name string, spec TreeSpec) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		NewTreePlacement(spec)
	}
	mustPanic("coordinator outside subtree", TreeSpec{Children: []TreeSpec{
		{Ranks: []int{0, 1}, Coords: []int{2}},
		{Ranks: []int{2, 3}},
	}})
	mustPanic("duplicate coordinator", TreeSpec{Children: []TreeSpec{
		{Ranks: []int{0, 1}, Coords: []int{1, 1}},
		{Ranks: []int{2, 3}},
	}})
}

// TestWithLeafCoords: the helper installs per-leaf coordinator sets in
// tree order without mutating the receiver.
func TestWithLeafCoords(t *testing.T) {
	spec := TreeSpec{Children: []TreeSpec{
		{Ranks: []int{0, 1, 2}},
		{Children: []TreeSpec{{Ranks: []int{3, 4}}, {Ranks: []int{5}}}},
	}}
	got := spec.WithLeafCoords([][]int{{2}, nil, {5}})
	if len(spec.Children[0].Coords) != 0 {
		t.Fatal("WithLeafCoords mutated the receiver")
	}
	tp := NewTreePlacement(got)
	if c := tp.Coordinators(0); len(c) != 1 || c[0] != 2 {
		t.Fatalf("leaf 0 coords = %v, want [2]", c)
	}
	if c := tp.Coordinators(1); len(c) != 1 || c[0] != 3 {
		t.Fatalf("leaf 1 coords = %v, want default [3]", c)
	}
	if c := tp.Coordinators(2); len(c) != 1 || c[0] != 5 {
		t.Fatalf("leaf 2 coords = %v, want [5]", c)
	}
}

// TestHierAlltoallOnGridWithCoords runs both hierarchical algorithms
// end-to-end on the mpi runtime with non-default coordinators — a
// non-lowest single coordinator and a 2-way split wide cluster — and
// checks completion with a physically sensible time.
func TestHierAlltoallOnGridWithCoords(t *testing.T) {
	gp := cluster.Uniform("t-hier-coords", cluster.WANTuned(cluster.GigabitEthernet()), 3, 3,
		cluster.DefaultWAN(10*sim.Millisecond))
	for _, alg := range HierAlgorithms {
		g, err := cluster.BuildGrid(gp, 5)
		if err != nil {
			t.Fatal(err)
		}
		spec := GridSpec(g).WithLeafCoords([][]int{{1, 2}, {4}, {8}})
		plan := PlanHierTree(spec, alg)
		verifyHierPlan(t, plan)
		w := mpi.NewWorld(g.Env, mpi.Config{})
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { AlltoallHierPlanned(r, plan, 20_000) })
		if meas.Mean() <= 0.010 {
			t.Fatalf("%v: completion %.4fs, cannot beat one WAN latency", alg, meas.Mean())
		}
		if meas.Mean() > 5 {
			t.Fatalf("%v: completion %.1fs implausibly slow", alg, meas.Mean())
		}
	}
}
