package coll

import "testing"

func TestSizeMatrixBasics(t *testing.T) {
	sz := NewSizeMatrix(3)
	if sz.NumRanks() != 3 || sz.Total() != 0 {
		t.Fatalf("fresh matrix: ranks=%d total=%d", sz.NumRanks(), sz.Total())
	}
	sz.Set(0, 1, 100)
	sz.Set(1, 0, 7)
	sz.Set(2, 1, 50)
	if sz.At(0, 1) != 100 || sz.At(1, 0) != 7 || sz.At(0, 2) != 0 {
		t.Fatal("At/Set mismatch")
	}
	if got := sz.Total(); got != 157 {
		t.Fatalf("Total = %d, want 157", got)
	}
	if got := sz.RowSum(0, 0, 3); got != 100 {
		t.Fatalf("RowSum(0) = %d, want 100", got)
	}
	if got := sz.ColSum(1, 0, 3); got != 150 {
		t.Fatalf("ColSum(1) = %d, want 150", got)
	}
	if got := sz.SumRect(0, 2, 0, 2); got != 107 {
		t.Fatalf("SumRect = %d, want 107", got)
	}
	if got := sz.MaxRect(0, 3, 0, 3); got != 100 {
		t.Fatalf("MaxRect = %d, want 100", got)
	}
	// Rank 0 exchanges bytes with rank 1 (both directions) but not 2.
	if got := sz.NonzeroPairs(0, 0, 3); got != 1 {
		t.Fatalf("NonzeroPairs(0) = %d, want 1", got)
	}
	// Rank 2 sends to 1 only; 1 sends nothing to 2 — still one pair.
	if got := sz.NonzeroPairs(2, 0, 3); got != 1 {
		t.Fatalf("NonzeroPairs(2) = %d, want 1", got)
	}
	scaled := sz.Scale(3)
	if scaled.At(0, 1) != 300 || sz.At(0, 1) != 100 {
		t.Fatal("Scale must copy, not mutate")
	}
}

func TestSizeMatrixUniform(t *testing.T) {
	u := UniformSizeMatrix(4, 64)
	if m, ok := u.Uniform(); !ok || m != 64 {
		t.Fatalf("UniformSizeMatrix not detected uniform: m=%d ok=%v", m, ok)
	}
	u.Set(2, 3, 65)
	if _, ok := u.Uniform(); ok {
		t.Fatal("perturbed matrix still reported uniform")
	}
	z := NewSizeMatrix(4)
	if m, ok := z.Uniform(); !ok || m != 0 {
		t.Fatalf("all-zero matrix: m=%d ok=%v, want uniform 0", m, ok)
	}
	one := NewSizeMatrix(1)
	if _, ok := one.Uniform(); !ok {
		t.Fatal("1-rank matrix must be uniform")
	}
}

func TestSizeMatrixFromRowsValidation(t *testing.T) {
	rows := [][]int{
		{0, 10, 20},
		{1, 0, 2},
		{3, 4, 0},
	}
	sz := SizeMatrixFromRows(rows)
	rows[0][1] = 999 // the matrix must have copied
	if sz.At(0, 1) != 10 {
		t.Fatal("SizeMatrixFromRows retained the caller's slice")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("ragged rows", func() { SizeMatrixFromRows([][]int{{0, 1}, {1}}) })
	mustPanic("negative entry", func() { SizeMatrixFromRows([][]int{{0, -1}, {1, 0}}) })
	mustPanic("nonzero diagonal", func() { SizeMatrixFromRows([][]int{{5, 1}, {1, 0}}) })
	mustPanic("negative set", func() { NewSizeMatrix(2).Set(0, 1, -3) })
	mustPanic("diagonal set", func() { NewSizeMatrix(2).Set(1, 1, 3) })
	mustPanic("empty matrix", func() { NewSizeMatrix(0) })
}
