package coll

import "fmt"

// Irregular total exchange (All-to-Allv) support: instead of one
// per-pair message size m, a SizeMatrix names the exact byte count each
// ordered (src, dst) rank pair exchanges. The uniform All-to-All is the
// special case where every off-diagonal entry equals m — and every v
// code path (plan compilation, execution, prediction) is required to
// reduce to the uniform path exactly on such matrices, so the v-variant
// is a strict generalization, never a fork.

// SizeMatrix holds per-(src, dst) byte counts of one irregular total
// exchange over n ranks. The diagonal must stay zero (ranks do not send
// to themselves); all entries must be non-negative. The zero value is
// unusable — construct with NewSizeMatrix, UniformSizeMatrix or
// SizeMatrixFromRows.
type SizeMatrix struct {
	n     int
	bytes []int // row-major, bytes[src*n+dst]
}

// NewSizeMatrix returns an all-zero n×n size matrix.
func NewSizeMatrix(n int) SizeMatrix {
	if n < 1 {
		panic(fmt.Sprintf("coll: size matrix over %d ranks", n))
	}
	return SizeMatrix{n: n, bytes: make([]int, n*n)}
}

// UniformSizeMatrix returns the matrix of the regular All-to-All: every
// ordered pair of distinct ranks exchanges m bytes.
func UniformSizeMatrix(n, m int) SizeMatrix {
	if m < 0 {
		panic(fmt.Sprintf("coll: negative uniform size %d", m))
	}
	sz := NewSizeMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				sz.bytes[i*n+j] = m
			}
		}
	}
	return sz
}

// SizeMatrixFromRows builds a size matrix from explicit rows
// (rows[src][dst] bytes), validating shape, non-negativity and a zero
// diagonal. Rows are copied; the caller's slice is not retained.
func SizeMatrixFromRows(rows [][]int) SizeMatrix {
	n := len(rows)
	sz := NewSizeMatrix(n)
	for i, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("coll: size matrix row %d has %d entries, want %d", i, len(row), n))
		}
		for j, b := range row {
			if b < 0 {
				panic(fmt.Sprintf("coll: negative size %d at (%d,%d)", b, i, j))
			}
			if i == j && b != 0 {
				panic(fmt.Sprintf("coll: nonzero diagonal %d at rank %d", b, i))
			}
			sz.bytes[i*n+j] = b
		}
	}
	return sz
}

// NumRanks returns the rank count the matrix covers.
func (sz SizeMatrix) NumRanks() int { return sz.n }

// At returns the bytes rank src owes rank dst.
func (sz SizeMatrix) At(src, dst int) int { return sz.bytes[src*sz.n+dst] }

// Set assigns the bytes rank src owes rank dst. Diagonal entries must
// stay zero and sizes non-negative.
func (sz SizeMatrix) Set(src, dst, b int) {
	if b < 0 {
		panic(fmt.Sprintf("coll: negative size %d at (%d,%d)", b, src, dst))
	}
	if src == dst && b != 0 {
		panic(fmt.Sprintf("coll: nonzero diagonal at rank %d", src))
	}
	sz.bytes[src*sz.n+dst] = b
}

// Scale returns a copy with every entry multiplied by k (k ≥ 0).
func (sz SizeMatrix) Scale(k int) SizeMatrix {
	if k < 0 {
		panic(fmt.Sprintf("coll: negative scale %d", k))
	}
	out := NewSizeMatrix(sz.n)
	for i, b := range sz.bytes {
		out.bytes[i] = b * k
	}
	return out
}

// Total sums every entry — the exchange's global byte volume.
func (sz SizeMatrix) Total() int {
	t := 0
	for _, b := range sz.bytes {
		t += b
	}
	return t
}

// RowSum returns rank src's total outbound bytes over dsts in [lo, hi).
func (sz SizeMatrix) RowSum(src, lo, hi int) int {
	t := 0
	for j := lo; j < hi; j++ {
		t += sz.bytes[src*sz.n+j]
	}
	return t
}

// ColSum returns rank dst's total inbound bytes over srcs in [lo, hi).
func (sz SizeMatrix) ColSum(dst, lo, hi int) int {
	t := 0
	for i := lo; i < hi; i++ {
		t += sz.bytes[i*sz.n+dst]
	}
	return t
}

// SumRect sums the bytes of the rectangle srcs [srcLo, srcHi) ×
// dsts [dstLo, dstHi) — the cross-subtree cut volumes the grid model
// prices, since topology subtrees own contiguous rank blocks.
func (sz SizeMatrix) SumRect(srcLo, srcHi, dstLo, dstHi int) int {
	t := 0
	for i := srcLo; i < srcHi; i++ {
		t += sz.RowSum(i, dstLo, dstHi)
	}
	return t
}

// MaxRect returns the largest single entry of the rectangle
// srcs [srcLo, srcHi) × dsts [dstLo, dstHi) — the per-flow curve limit
// of a shared WAN crossing.
func (sz SizeMatrix) MaxRect(srcLo, srcHi, dstLo, dstHi int) int {
	m := 0
	for i := srcLo; i < srcHi; i++ {
		for j := dstLo; j < dstHi; j++ {
			if b := sz.bytes[i*sz.n+j]; b > m {
				m = b
			}
		}
	}
	return m
}

// CountRect returns the number of nonzero entries of the rectangle
// srcs [srcLo, srcHi) × dsts [dstLo, dstHi) — the flow count a
// cross-subtree cut spreads its bytes over, which the grid model's
// factor-curve lookups divide the cut sum by for an effective per-flow
// size.
func (sz SizeMatrix) CountRect(srcLo, srcHi, dstLo, dstHi int) int {
	c := 0
	for i := srcLo; i < srcHi; i++ {
		for j := dstLo; j < dstHi; j++ {
			if sz.bytes[i*sz.n+j] > 0 {
				c++
			}
		}
	}
	return c
}

// NonzeroPairs reports how many (src, dst) pairs of the rectangle carry
// any bytes in either direction — the rounds a direct exchange actually
// pays start-ups for.
func (sz SizeMatrix) NonzeroPairs(src, dstLo, dstHi int) int {
	c := 0
	for j := dstLo; j < dstHi; j++ {
		if j == src {
			continue
		}
		if sz.bytes[src*sz.n+j] > 0 || sz.bytes[j*sz.n+src] > 0 {
			c++
		}
	}
	return c
}

// Uniform reports whether every off-diagonal entry equals one value m,
// returning it. Uniform matrices are the fast path: plans and
// predictions delegate to the regular All-to-All code, guaranteeing
// bit-identical results.
func (sz SizeMatrix) Uniform() (m int, ok bool) {
	if sz.n == 1 {
		return 0, true
	}
	m = sz.bytes[1] // (0,1): first off-diagonal entry
	for i := 0; i < sz.n; i++ {
		for j := 0; j < sz.n; j++ {
			if i == j {
				continue
			}
			if sz.bytes[i*sz.n+j] != m {
				return 0, false
			}
		}
	}
	return m, true
}
