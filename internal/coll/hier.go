package coll

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// Hierarchical All-to-All for multi-cluster and multi-level grids. Flat
// Direct Exchange sends every inter-cluster block as its own message
// across the shared WAN uplink — n_c·(n−n_c) start-ups per cluster over
// a 10–100 ms pipe. The hierarchical algorithms route inter-cluster
// traffic through one coordinator per subtree (the MagPIe/LaPIe
// structure the paper's prediction framework is built for): local
// blocks travel the LAN directly, remote blocks are aggregated at
// coordinators, exchanged coordinator-to-coordinator as one large
// message per subtree pair at each tier, and scattered on arrival.
//
// Topologies are arbitrary trees (TreeSpec): a leaf is a cluster of
// ranks, a group is a set of subtrees joined by a WAN tier. A two-level
// grid is the depth-1 tree; the paper's single cluster is the depth-0
// tree; campus → national → continental deployments are depth-2 and
// beyond. One recursive plan builder covers every depth — the flat
// Placement API below compiles through the same path.
//
// Coordinators are a planned decision, not a convention. By default each
// subtree relays through its lowest rank, but a TreeSpec may name any
// member — or several. With C coordinators the subtree's relay traffic
// is partitioned by divergence target: target k (in the canonical
// bottom-up ancestor walk) is owned by coordinator k mod C, in both
// directions, so a wide cluster's gather incast and scatter fan-out
// split across C NIC ports instead of serializing through one.
//
// Both algorithms are generated as explicit per-rank communication plans
// (phases of matched sends and receives annotated with the logical
// blocks they carry). The plan is what runs on the mpi runtime, and the
// same plan is executed symbolically by tests to prove every (src,dst)
// block reaches its destination under arbitrary rank→cluster placements
// — including uneven cluster sizes and uneven tree depths — and that the
// phase structure is deadlock-free.

// tagHier is the reserved tag base for hierarchical collectives.
const tagHier int32 = 6000

// HierAlgorithm selects a hierarchical All-to-All variant.
type HierAlgorithm int

const (
	// HierGather is the sequential variant: intra-cluster direct
	// exchange rounds, then per-tier sweeps — gather remote-bound blocks
	// at each subtree coordinator going up, one aggregated exchange per
	// subtree pair at each tier, and scatters going down. Phases do not
	// overlap, so each WAN tier sees exactly one aggregated message per
	// subtree pair with no competing lower-tier traffic.
	HierGather HierAlgorithm = iota
	// HierDirect overlaps the intra-cluster direct exchange with the
	// coordinator relay: every rank posts its operations as early as
	// data dependencies allow, so LAN and WAN transfers proceed
	// concurrently and the WAN latency hides behind local work.
	HierDirect
)

// HierAlgorithms lists the hierarchical variants.
var HierAlgorithms = []HierAlgorithm{HierGather, HierDirect}

// String names the variant as used in experiment output.
func (a HierAlgorithm) String() string {
	switch a {
	case HierGather:
		return "hier-gather"
	case HierDirect:
		return "hier-direct"
	default:
		return fmt.Sprintf("HierAlgorithm(%d)", int(a))
	}
}

// TreeSpec declares a topology subtree for plan construction: exactly
// one of Ranks (a leaf cluster) or Children (a group of subtrees joined
// by one WAN tier) must be non-empty. Ranks across the whole tree must
// cover 0..n−1, each exactly once, in any order.
//
// Coords optionally names the subtree's coordinator ranks. Every entry
// must be a rank of the subtree and appear once; the slice order is the
// ownership order (divergence target k is owned by Coords[k mod C]).
// Empty Coords keeps the default: the subtree's lowest rank.
type TreeSpec struct {
	Ranks    []int
	Children []TreeSpec
	Coords   []int
	// Standbys optionally ranks the subtree's secondary coordinators,
	// best first — the failover order when a coordinator is declared
	// dead mid-plan (see FailoverRun). Planners derive it from the same
	// per-node headroom probing that picks Coords. Every entry must be a
	// rank of the subtree; entries may overlap Coords (a standby for one
	// ownership slot may hold another).
	Standbys []int
}

// WithLeafCoords returns a deep copy of the spec with per-leaf
// coordinator sets installed in leaf (tree) order. A nil entry keeps
// that leaf's default; coords shorter than the leaf count leaves the
// remaining leaves at their defaults.
func (t TreeSpec) WithLeafCoords(coords [][]int) TreeSpec {
	li := 0
	var walk func(s TreeSpec) TreeSpec
	walk = func(s TreeSpec) TreeSpec {
		if len(s.Children) == 0 {
			s.Ranks = append([]int(nil), s.Ranks...)
			s.Standbys = append([]int(nil), s.Standbys...)
			if li < len(coords) && len(coords[li]) > 0 {
				s.Coords = append([]int(nil), coords[li]...)
			}
			li++
			return s
		}
		children := make([]TreeSpec, len(s.Children))
		for i, c := range s.Children {
			children[i] = walk(c)
		}
		s.Children = children
		return s
	}
	return walk(t)
}

// FlatSpec builds the depth-1 TreeSpec of a flat rank→cluster map:
// every cluster becomes a leaf under one root group.
func FlatSpec(p Placement) TreeSpec {
	var t TreeSpec
	for c := 0; c < p.NumClusters(); c++ {
		t.Children = append(t.Children, TreeSpec{Ranks: p.Members(c)})
	}
	return t
}

// GridSpec mirrors a built grid into the plan builder's topology spec:
// the tree shape of the topology with each leaf's assigned rank block.
func GridSpec(g *cluster.Grid) TreeSpec {
	li := 0
	var walk func(t cluster.TopoNode) TreeSpec
	walk = func(t cluster.TopoNode) TreeSpec {
		if t.IsLeaf() {
			s := TreeSpec{Ranks: g.Members[li]}
			li++
			return s
		}
		var s TreeSpec
		for _, c := range t.Children {
			s.Children = append(s.Children, walk(c))
		}
		return s
	}
	return walk(g.Tree)
}

// pnode is a compiled topology-tree node.
type pnode struct {
	ranks    []int // all ranks of the subtree, ascending
	children []*pnode
	parent   *pnode
	height   int   // 0 for leaves
	depth    int   // 0 for the root
	coords   []int // coordinator set, ownership order; default lowest rank
	standbys []int // ranked secondary coordinators (failover order)
	leafIdx  int   // dense leaf index, -1 for groups
}

func (v *pnode) leaf() bool { return len(v.children) == 0 }

// targetsOf returns the divergence targets of v in canonical order:
// walking ancestors bottom-up, the sibling subtrees at each level in
// child order. Every rank outside v belongs to exactly one target (the
// sibling subtree at the level where its path diverges from v's).
func targetsOf(v *pnode) []*pnode {
	var out []*pnode
	for w := v; w.parent != nil; w = w.parent {
		for _, s := range w.parent.children {
			if s != w {
				out = append(out, s)
			}
		}
	}
	return out
}

// ownerOf returns the coordinator of v that owns the traffic diverging
// at target t — both the outbound blocks addressed into t and the
// inbound blocks originating there. Targets are assigned round-robin
// over v's coordinator set in canonical target order, which is what
// partitions a wide cluster's relay across its C coordinator ports.
func ownerOf(v, t *pnode) int {
	idx := 0
	for w := v; w.parent != nil; w = w.parent {
		for _, s := range w.parent.children {
			if s == w {
				continue
			}
			if s == t {
				return v.coords[idx%len(v.coords)]
			}
			idx++
		}
	}
	panic("coll: ownerOf called with a non-divergence target")
}

// deliveredAbove reports whether rank d (a rank of v's subtree) already
// holds target t's inbound blocks addressed to it: d owns t at v or at
// an ancestor relay on the chain up to t's sibling subtree, so the
// exchange (or an intermediate scatter hop) handed d its own blocks
// directly and no deeper hop may re-forward them — a deeper relay never
// held them.
func deliveredAbove(v, t *pnode, d int) bool {
	for w := v; ; w = w.parent {
		if ownerOf(w, t) == d {
			return true
		}
		if w.parent == t.parent {
			return false
		}
	}
}

// TreePlacement maps ranks onto a compiled topology tree. It is the
// hierarchical generalization of Placement: leaves are clusters, inner
// nodes are WAN tiers.
type TreePlacement struct {
	root   *pnode
	leaves []*pnode
	leafOf []int // rank → leaf index
}

// NewTreePlacement validates and compiles a topology spec. It panics on
// malformed specs (mixed leaf/group nodes, missing or duplicate ranks),
// like NewPlacement.
func NewTreePlacement(spec TreeSpec) TreePlacement {
	tp := TreePlacement{}
	tp.root = tp.compile(spec, nil, 0)
	n := 0
	for _, lf := range tp.leaves {
		n += len(lf.ranks)
	}
	if n == 0 {
		panic("coll: empty topology tree")
	}
	tp.leafOf = make([]int, n)
	for i := range tp.leafOf {
		tp.leafOf[i] = -1
	}
	for li, lf := range tp.leaves {
		for _, r := range lf.ranks {
			if r < 0 || r >= n {
				panic(fmt.Sprintf("coll: rank %d outside dense range 0..%d", r, n-1))
			}
			if tp.leafOf[r] != -1 {
				panic(fmt.Sprintf("coll: rank %d appears in two leaves", r))
			}
			tp.leafOf[r] = li
		}
	}
	return tp
}

// compile recursively builds pnodes, assigning leaf indices in spec
// order and computing subtree rank sets, heights and depths.
func (tp *TreePlacement) compile(spec TreeSpec, parent *pnode, depth int) *pnode {
	v := &pnode{parent: parent, depth: depth, leafIdx: -1}
	switch {
	case len(spec.Ranks) > 0 && len(spec.Children) > 0:
		panic("coll: tree node has both ranks and children")
	case len(spec.Ranks) > 0:
		v.ranks = append([]int(nil), spec.Ranks...)
		sort.Ints(v.ranks)
		for i := 1; i < len(v.ranks); i++ {
			if v.ranks[i] == v.ranks[i-1] {
				panic(fmt.Sprintf("coll: rank %d duplicated within a leaf", v.ranks[i]))
			}
		}
		v.leafIdx = len(tp.leaves)
		tp.leaves = append(tp.leaves, v)
	case len(spec.Children) > 0:
		for _, cs := range spec.Children {
			c := tp.compile(cs, v, depth+1)
			v.children = append(v.children, c)
			v.ranks = append(v.ranks, c.ranks...)
			if c.height+1 > v.height {
				v.height = c.height + 1
			}
		}
		sort.Ints(v.ranks)
	default:
		panic("coll: tree node has neither ranks nor children")
	}
	if len(spec.Coords) > 0 {
		in := make(map[int]bool, len(v.ranks))
		for _, r := range v.ranks {
			in[r] = true
		}
		seen := make(map[int]bool, len(spec.Coords))
		for _, cr := range spec.Coords {
			if !in[cr] {
				panic(fmt.Sprintf("coll: coordinator %d is not a rank of its subtree", cr))
			}
			if seen[cr] {
				panic(fmt.Sprintf("coll: coordinator %d named twice", cr))
			}
			seen[cr] = true
		}
		v.coords = append([]int(nil), spec.Coords...)
	} else {
		v.coords = []int{v.ranks[0]}
	}
	if len(spec.Standbys) > 0 {
		in := make(map[int]bool, len(v.ranks))
		for _, r := range v.ranks {
			in[r] = true
		}
		for _, sr := range spec.Standbys {
			if !in[sr] {
				panic(fmt.Sprintf("coll: standby %d is not a rank of its subtree", sr))
			}
		}
		v.standbys = append([]int(nil), spec.Standbys...)
	}
	return v
}

// NumRanks returns the total rank count.
func (tp TreePlacement) NumRanks() int { return len(tp.leafOf) }

// NumLeaves returns the number of leaf clusters.
func (tp TreePlacement) NumLeaves() int { return len(tp.leaves) }

// LeafOf returns the leaf index of rank r.
func (tp TreePlacement) LeafOf(r int) int { return tp.leafOf[r] }

// LeafMembers returns the ranks of leaf l in ascending order.
func (tp TreePlacement) LeafMembers(l int) []int { return tp.leaves[l].ranks }

// Coordinators returns leaf l's coordinator set in ownership order
// (divergence target k is owned by entry k mod C). The default set is
// the leaf's lowest rank.
func (tp TreePlacement) Coordinators(l int) []int {
	return append([]int(nil), tp.leaves[l].coords...)
}

// Standbys returns leaf l's ranked secondary coordinators (failover
// order), or nil when the spec named none.
func (tp TreePlacement) Standbys(l int) []int {
	return append([]int(nil), tp.leaves[l].standbys...)
}

// Height returns the root height: 0 for a single cluster, 1 for a
// two-level grid, 2 for campus → national → continental, and so on.
func (tp TreePlacement) Height() int { return tp.root.height }

// Placement flattens the tree to leaf granularity: leaf index becomes
// cluster index. For depth-1 trees this is the inverse of FlatSpec.
func (tp TreePlacement) Placement() Placement {
	return NewPlacement(append([]int(nil), tp.leafOf...))
}

// Placement maps ranks to clusters of a two-level grid. Cluster indices
// must be dense (0..K-1) with every cluster non-empty; rank→cluster
// assignment is otherwise arbitrary — members of a cluster need not be
// contiguous.
type Placement struct {
	clusterOf []int
	members   [][]int
}

// NewPlacement validates and indexes a rank→cluster map.
func NewPlacement(clusterOf []int) Placement {
	if len(clusterOf) == 0 {
		panic("coll: empty placement")
	}
	k := 0
	for _, c := range clusterOf {
		if c < 0 {
			panic("coll: negative cluster index in placement")
		}
		if c+1 > k {
			k = c + 1
		}
	}
	p := Placement{clusterOf: append([]int(nil), clusterOf...), members: make([][]int, k)}
	for r, c := range clusterOf {
		p.members[c] = append(p.members[c], r)
	}
	for c, m := range p.members {
		if len(m) == 0 {
			panic(fmt.Sprintf("coll: placement cluster %d is empty", c))
		}
	}
	return p
}

// NumRanks returns the total rank count.
func (p Placement) NumRanks() int { return len(p.clusterOf) }

// NumClusters returns the cluster count.
func (p Placement) NumClusters() int { return len(p.members) }

// Cluster returns the cluster of rank r.
func (p Placement) Cluster(r int) int { return p.clusterOf[r] }

// Members returns the ranks of cluster c in ascending order.
func (p Placement) Members(c int) []int { return p.members[c] }

// Coordinator returns cluster c's coordinator (its lowest rank).
func (p Placement) Coordinator(c int) int { return p.members[c][0] }

// Block is one logical All-to-All block: the m bytes rank Src owes rank
// Dst. Plans carry blocks so tests can check the permutation; the
// executor only uses counts.
type Block struct{ Src, Dst int }

// hierMsg is one matched message of a plan, annotated with its carried
// blocks and the phase index at which each side posts it.
type hierMsg struct {
	from, to           int
	fromPhase, toPhase int
	tag                int32
	blocks             []Block
}

// planOp is the executor's view of one message end.
type planOp struct {
	peer   int
	tag    int32
	blocks int
	msgIdx int // index into the plan's message list, for byte annotation
}

// hierPhase groups the operations a rank posts together and then waits
// for. Phases run in order on each rank; there is no global barrier.
type hierPhase struct {
	sends []planOp
	recvs []planOp
}

// HierPlan is a compiled hierarchical collective for one topology.
type HierPlan struct {
	Alg HierAlgorithm
	// Kind is the collective the plan implements. The zero value is
	// KindAlltoall: plans compiled by PlanHierTree are All-to-All plans.
	Kind Kind
	// Place is the leaf-granularity flattening of the topology (leaf
	// index = cluster index), kept for executors and diagnostics.
	Place Placement
	// Tree is the full topology the plan was compiled for.
	Tree    TreePlacement
	perRank [][]hierPhase
	msgs    []*hierMsg // block-annotated message list, for verification
	// vbytes carries each message's total payload bytes when the plan
	// was compiled from a SizeMatrix (PlanHierTreeV), indexed like msgs;
	// nil for uniform plans, whose executor multiplies blocks by m.
	vbytes []int
	// kweights carries each message's payload multiple of m for kinds
	// whose wire bytes are not blocks·m (Allgather forwards one copy
	// per source, Reduce-scatter one partial per destination, rooted
	// relays exactly m); nil for All-to-All plans.
	kweights []int
}

// msgBytesAt returns message i's payload bytes at per-rank size m,
// honoring a bound size matrix (vbytes) or a per-kind weighting
// (kweights); All-to-All plans fall through to blocks·m.
func (p *HierPlan) msgBytesAt(i, m int) int {
	switch {
	case p.vbytes != nil:
		return p.vbytes[i]
	case p.kweights != nil:
		return p.kweights[i] * m
	default:
		return len(p.msgs[i].blocks) * m
	}
}

// NumPhases returns the deepest per-rank phase count of the plan.
func (p *HierPlan) NumPhases() int {
	n := 0
	for _, phases := range p.perRank {
		if len(phases) > n {
			n = len(phases)
		}
	}
	return n
}

// NumMessages returns the plan's total matched message count.
func (p *HierPlan) NumMessages() int { return len(p.msgs) }

// CrossLeafMessages returns how many messages cross leaf-cluster
// boundaries — the coordinator-relayed traffic that rides WAN tiers.
func (p *HierPlan) CrossLeafMessages() int {
	n := 0
	for _, m := range p.msgs {
		if p.Tree.LeafOf(m.from) != p.Tree.LeafOf(m.to) {
			n++
		}
	}
	return n
}

// planBuilder accumulates matched messages into per-rank phase lists.
type planBuilder struct {
	plans [][]hierPhase
	tags  map[[2]int]int32
	msgs  []*hierMsg
}

func newPlanBuilder(n int) *planBuilder {
	return &planBuilder{plans: make([][]hierPhase, n), tags: map[[2]int]int32{}}
}

// phase grows rank r's phase list to include index ph and returns it.
func (b *planBuilder) phase(r, ph int) *hierPhase {
	for len(b.plans[r]) <= ph {
		b.plans[r] = append(b.plans[r], hierPhase{})
	}
	return &b.plans[r][ph]
}

// msg registers a message carrying blocks from rank `from` (posted in
// its phase fromPhase) to rank `to` (received in its phase toPhase).
// Tags are allocated per ordered rank pair in registration order, which
// both sides share because one builder constructs the whole plan.
func (b *planBuilder) msg(from, fromPhase, to, toPhase int, blocks []Block) {
	if len(blocks) == 0 || from == to {
		return
	}
	key := [2]int{from, to}
	tag := tagHier + b.tags[key]
	b.tags[key]++
	m := &hierMsg{from: from, to: to, fromPhase: fromPhase, toPhase: toPhase, tag: tag, blocks: blocks}
	b.msgs = append(b.msgs, m)
	idx := len(b.msgs) - 1
	sp := b.phase(from, fromPhase)
	sp.sends = append(sp.sends, planOp{peer: to, tag: tag, blocks: len(blocks), msgIdx: idx})
	rp := b.phase(to, toPhase)
	rp.recvs = append(rp.recvs, planOp{peer: from, tag: tag, blocks: len(blocks), msgIdx: idx})
}

// PlanHier compiles the hierarchical All-to-All plan for a flat
// two-level placement. It is sugar for PlanHierTree over FlatSpec: the
// same recursive builder constructs every plan.
func PlanHier(p Placement, alg HierAlgorithm) *HierPlan {
	return PlanHierTree(FlatSpec(p), alg)
}

// PlanHierTree compiles the hierarchical All-to-All plan for an
// arbitrary topology tree.
func PlanHierTree(spec TreeSpec, alg HierAlgorithm) *HierPlan {
	tp := NewTreePlacement(spec)
	c := &treeCompiler{tp: tp, alg: alg, b: newPlanBuilder(tp.NumRanks())}
	switch alg {
	case HierGather, HierDirect:
		c.build()
	default:
		panic("coll: unknown hierarchical algorithm")
	}
	return &HierPlan{Alg: alg, Place: tp.Placement(), Tree: tp, perRank: c.b.plans, msgs: c.b.msgs}
}

// treeCompiler emits the recursive plan. Both variants share one message
// set — what differs is phase assignment:
//
// HierGather sequences global tiers: phase 0 is the intra-leaf exchange,
// phase 1 the leaf gather, phase 1+h runs tier h (aggregated exchange
// between sibling subtrees plus the upward gather to the tier's
// coordinator), and phase 1+H+d scatters at depth d on the way down.
//
// HierDirect assigns each message its data-dependency level: a send
// forwarding blocks received at level ℓ is posted at level ℓ+1, and
// receives are posted one phase before the rank forwards their content
// (terminal receives as early as safety allows). Leaf non-coordinators
// collapse to a single phase posting everything at once, which is what
// overlaps the local exchange with the coordinator relay.
type treeCompiler struct {
	tp  TreePlacement
	alg HierAlgorithm
	b   *planBuilder
}

func (c *treeCompiler) build() {
	root := c.tp.root
	H := root.height

	// downSend(v): the HierDirect level at which v's owning coordinators
	// forward inbound blocks down to v's children — after the parent-tier
	// exchange (its own participation phase v.height+1 and the sibling
	// send levels, which differ in uneven trees) and the parent's own
	// scatter.
	downSend := map[*pnode]int{}
	var computeDown func(v *pnode)
	computeDown = func(v *pnode) {
		if v.parent != nil {
			lvl := v.height + 1
			for _, a := range v.parent.children {
				if a != v && a.height+1 > lvl {
					lvl = a.height + 1
				}
			}
			if v.parent.parent != nil {
				if d := downSend[v.parent]; d > lvl {
					lvl = d
				}
			}
			downSend[v] = lvl + 1
		}
		for _, ch := range v.children {
			computeDown(ch)
		}
	}
	computeDown(root)

	direct := c.alg == HierDirect

	// Phase selectors per message family. For HierGather both ends share
	// the global tier phase; for HierDirect sends use dependency levels
	// and receives are resolved below (terminal receives need the
	// rank's final send phase, so emission is two-pass).
	type pending struct {
		from, to     int
		fromPhase    int
		toPhase      int  // ≥0 when fixed
		terminalAtTo bool // HierDirect: resolve toPhase to maxSend(to)
		blocks       []Block
	}
	var out []pending
	emit := func(from, fromPhase, to, toPhase int, blocks []Block) {
		if len(blocks) == 0 || from == to {
			return
		}
		out = append(out, pending{from: from, fromPhase: fromPhase, to: to, toPhase: toPhase, blocks: blocks})
	}
	emitTerminal := func(from, fromPhase, to int, blocks []Block) {
		if len(blocks) == 0 || from == to {
			return
		}
		out = append(out, pending{from: from, fromPhase: fromPhase, to: to, toPhase: -1, terminalAtTo: true, blocks: blocks})
	}

	// 1. Intra-leaf exchange: every local ordered pair's block, all
	// posted at once (PostAll style, the shape the contention signature
	// is fitted on). Phase 0 in both variants.
	for _, lf := range c.tp.leaves {
		mem := lf.ranks
		for ki, i := range mem {
			for _, j := range mem[ki+1:] {
				emit(i, 0, j, 0, []Block{{Src: i, Dst: j}})
				emit(j, 0, i, 0, []Block{{Src: j, Dst: i}})
			}
		}
	}

	// 2. Leaf gather: each member hands its remote-bound blocks to the
	// owning leaf coordinator, one message per divergence target —
	// walking ancestors bottom-up, one message per sibling subtree. With
	// C coordinators the targets (and so the gather incast) split
	// round-robin across the set; a coordinator forwards the targets it
	// does not own like any other member.
	for _, lf := range c.tp.leaves {
		for _, i := range lf.ranks {
			for _, sib := range targetsOf(lf) {
				owner := ownerOf(lf, sib)
				if i == owner {
					continue
				}
				var blocks []Block
				for _, j := range sib.ranks {
					blocks = append(blocks, Block{Src: i, Dst: j})
				}
				sp, rp := 1, 1
				if direct {
					sp, rp = 0, 0 // held at start; the owner forwards at level 1
				}
				emit(i, sp, owner, rp, blocks)
			}
		}
	}

	// 3. Upward sweep, tier by tier: aggregated exchange between sibling
	// subtrees plus the upward gather of blocks leaving the tier.
	var groups []*pnode
	var collectGroups func(v *pnode)
	collectGroups = func(v *pnode) {
		for _, ch := range v.children {
			collectGroups(ch)
		}
		if !v.leaf() {
			groups = append(groups, v)
		}
	}
	collectGroups(root)
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].height < groups[j].height })

	// rankPair keys coalesced coordinator-to-coordinator messages.
	type rankPair struct{ from, to int }

	for _, g := range groups {
		// Exchange: one aggregated message per ordered child pair, routed
		// between the owning coordinators of each side (the sender owns
		// the outbound target, the receiver the inbound source).
		for _, a := range g.children {
			for _, bb := range g.children {
				if a == bb {
					continue
				}
				var blocks []Block
				for _, i := range a.ranks {
					for _, j := range bb.ranks {
						blocks = append(blocks, Block{Src: i, Dst: j})
					}
				}
				sp, rp := 1+g.height, 1+g.height
				if direct {
					// Exchange sends and receives are posted together, at
					// each side's own tier level: a rendezvous send only
					// completes once the receive is posted, so delaying
					// the receive past the peer's send phase would
					// deadlock two coordinators against each other.
					sp, rp = a.height+1, bb.height+1
				}
				emit(ownerOf(a, bb), sp, ownerOf(bb, a), rp, blocks)
			}
		}
		// Upward gather: the blocks that leave this tier move from each
		// child's owning coordinator to the tier's, per divergence
		// target of g; messages between one rank pair coalesce, so the
		// default single-coordinator case keeps exactly one aggregated
		// message per child.
		if g.parent == nil {
			continue
		}
		gTargets := targetsOf(g)
		for _, ch := range g.children {
			var order []rankPair
			byPair := map[rankPair][]Block{}
			for _, t := range gTargets {
				p := rankPair{from: ownerOf(ch, t), to: ownerOf(g, t)}
				if p.from == p.to {
					continue
				}
				if _, ok := byPair[p]; !ok {
					order = append(order, p)
				}
				for _, i := range ch.ranks {
					for _, j := range t.ranks {
						byPair[p] = append(byPair[p], Block{Src: i, Dst: j})
					}
				}
			}
			for _, p := range order {
				sp, rp := 1+g.height, 1+g.height
				if direct {
					sp, rp = ch.height+1, g.height
				}
				emit(p.from, sp, p.to, rp, byPair[p])
			}
		}
	}

	// 4. Downward scatter, depth by depth: each subtree coordinator
	// forwards inbound blocks to child coordinators, and leaf
	// coordinators deliver to members.
	var nodes []*pnode
	var collectAll func(v *pnode)
	collectAll = func(v *pnode) {
		nodes = append(nodes, v)
		for _, ch := range v.children {
			collectAll(ch)
		}
	}
	collectAll(root)
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].depth < nodes[j].depth })

	// forwardsAny reports whether the receiver will forward part of the
	// message (some block is addressed past it) — the HierDirect test
	// for a fixed receive level versus a terminal receive.
	forwardsAny := func(blocks []Block, to int) bool {
		for _, b := range blocks {
			if b.Dst != to {
				return true
			}
		}
		return false
	}

	for _, v := range nodes {
		if v.parent == nil {
			continue // the root has no inbound traffic to distribute
		}
		vTargets := targetsOf(v)
		if v.leaf() {
			// Deliver to members: each owning coordinator hands the
			// member the inbound blocks of the targets it owns — one
			// message per (owner, member) pair, so a C-way split leaf
			// scatters through C ports.
			for _, i := range v.ranks {
				var order []int
				byOwner := map[int][]Block{}
				for _, t := range vTargets {
					if deliveredAbove(v, t, i) {
						continue // an upstream relay already handed i these blocks
					}
					o := ownerOf(v, t)
					if _, ok := byOwner[o]; !ok {
						order = append(order, o)
					}
					for _, j := range t.ranks {
						byOwner[o] = append(byOwner[o], Block{Src: j, Dst: i})
					}
				}
				for _, o := range order {
					sp, rp := 1+H+v.depth, 1+H+v.depth
					if direct {
						emitTerminal(o, downSend[v], i, byOwner[o])
						continue
					}
					emit(o, sp, i, rp, byOwner[o])
				}
			}
			continue
		}
		for _, ch := range v.children {
			var order []rankPair
			byPair := map[rankPair][]Block{}
			for _, t := range vTargets {
				p := rankPair{from: ownerOf(v, t), to: ownerOf(ch, t)}
				if p.from == p.to {
					continue
				}
				if _, ok := byPair[p]; !ok {
					order = append(order, p)
				}
				var dsts []int
				for _, d := range ch.ranks {
					if !deliveredAbove(v, t, d) {
						dsts = append(dsts, d)
					}
				}
				for _, j := range t.ranks {
					for _, d := range dsts {
						byPair[p] = append(byPair[p], Block{Src: j, Dst: d})
					}
				}
			}
			for _, p := range order {
				blocks := byPair[p]
				if len(blocks) == 0 {
					continue
				}
				sp, rp := 1+H+v.depth, 1+H+v.depth
				if direct {
					sp = downSend[v]
					if forwardsAny(blocks, p.to) {
						rp = downSend[ch] - 1
						emit(p.from, sp, p.to, rp, blocks)
						continue
					}
					emitTerminal(p.from, sp, p.to, blocks)
					continue
				}
				emit(p.from, sp, p.to, rp, blocks)
			}
		}
	}

	// Resolve terminal receive phases: a receive whose content the rank
	// never forwards is posted once all the rank's sends are out, so a
	// blocked WaitAll can't withhold a message another subtree needs.
	maxSend := make([]int, c.tp.NumRanks())
	for _, m := range out {
		if m.fromPhase > maxSend[m.from] {
			maxSend[m.from] = m.fromPhase
		}
	}
	for _, m := range out {
		ph := m.toPhase
		if m.terminalAtTo {
			ph = maxSend[m.to]
		}
		c.b.msg(m.from, m.fromPhase, m.to, ph, m.blocks)
	}
}

// AlltoallHierPlanned executes a compiled plan on the calling rank with
// per-pair message size m. Every rank of the plan's topology must call
// it with the same plan and m.
func AlltoallHierPlanned(r *mpi.Rank, plan *HierPlan, m int) {
	if plan.Place.NumRanks() != r.Size() {
		panic(fmt.Sprintf("coll: plan for %d ranks executed on world of %d",
			plan.Place.NumRanks(), r.Size()))
	}
	runPlanPhases(r, plan, m, nil)
}

// AlltoallHier compiles and executes the hierarchical All-to-All. For
// repeated measurements compile once with PlanHier and use
// AlltoallHierPlanned instead.
func AlltoallHier(r *mpi.Rank, place Placement, m int, alg HierAlgorithm) {
	AlltoallHierPlanned(r, PlanHier(place, alg), m)
}
