package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Hierarchical All-to-All for multi-cluster grids. Flat Direct Exchange
// sends every inter-cluster block as its own message across the shared
// WAN uplink — n_c·(n−n_c) start-ups per cluster over a 10–100 ms pipe.
// The hierarchical algorithms route inter-cluster traffic through one
// coordinator per cluster (the MagPIe/LaPIe structure the paper's
// prediction framework is built for): local blocks travel the LAN
// directly, remote blocks are aggregated at the coordinator, exchanged
// coordinator-to-coordinator as one large message per cluster pair, and
// scattered on arrival.
//
// Both algorithms are generated as explicit per-rank communication plans
// (phases of matched sends and receives annotated with the logical
// blocks they carry). The plan is what runs on the mpi runtime, and the
// same plan is executed symbolically by tests to prove every (src,dst)
// block reaches its destination under arbitrary rank→cluster placements
// — including uneven cluster sizes — and that the phase structure is
// deadlock-free.

// tagHier is the reserved tag base for hierarchical collectives.
const tagHier int32 = 6000

// HierAlgorithm selects a hierarchical All-to-All variant.
type HierAlgorithm int

const (
	// HierGather is the sequential variant: intra-cluster direct
	// exchange rounds, then a per-cluster gather of remote-bound blocks
	// at the coordinator, one aggregated exchange per coordinator pair,
	// and a final scatter. Phases do not overlap, so the WAN sees
	// exactly one aggregated message per cluster pair with no competing
	// LAN traffic.
	HierGather HierAlgorithm = iota
	// HierDirect overlaps the intra-cluster direct exchange with the
	// coordinator relay: non-coordinators post all local exchanges,
	// gathers and the scatter receive at once, so LAN and WAN transfers
	// proceed concurrently and the WAN latency hides behind local work.
	HierDirect
)

// HierAlgorithms lists the hierarchical variants.
var HierAlgorithms = []HierAlgorithm{HierGather, HierDirect}

func (a HierAlgorithm) String() string {
	switch a {
	case HierGather:
		return "hier-gather"
	case HierDirect:
		return "hier-direct"
	default:
		return fmt.Sprintf("HierAlgorithm(%d)", int(a))
	}
}

// Placement maps ranks to clusters. Cluster indices must be dense
// (0..K-1) with every cluster non-empty; rank→cluster assignment is
// otherwise arbitrary — members of a cluster need not be contiguous.
type Placement struct {
	clusterOf []int
	members   [][]int
}

// NewPlacement validates and indexes a rank→cluster map.
func NewPlacement(clusterOf []int) Placement {
	if len(clusterOf) == 0 {
		panic("coll: empty placement")
	}
	k := 0
	for _, c := range clusterOf {
		if c < 0 {
			panic("coll: negative cluster index in placement")
		}
		if c+1 > k {
			k = c + 1
		}
	}
	p := Placement{clusterOf: append([]int(nil), clusterOf...), members: make([][]int, k)}
	for r, c := range clusterOf {
		p.members[c] = append(p.members[c], r)
	}
	for c, m := range p.members {
		if len(m) == 0 {
			panic(fmt.Sprintf("coll: placement cluster %d is empty", c))
		}
	}
	return p
}

// NumRanks returns the total rank count.
func (p Placement) NumRanks() int { return len(p.clusterOf) }

// NumClusters returns the cluster count.
func (p Placement) NumClusters() int { return len(p.members) }

// Cluster returns the cluster of rank r.
func (p Placement) Cluster(r int) int { return p.clusterOf[r] }

// Members returns the ranks of cluster c in ascending order.
func (p Placement) Members(c int) []int { return p.members[c] }

// Coordinator returns cluster c's coordinator (its lowest rank).
func (p Placement) Coordinator(c int) int { return p.members[c][0] }

// Block is one logical All-to-All block: the m bytes rank Src owes rank
// Dst. Plans carry blocks so tests can check the permutation; the
// executor only uses counts.
type Block struct{ Src, Dst int }

// hierMsg is one matched message of a plan, annotated with its carried
// blocks and the phase index at which each side posts it.
type hierMsg struct {
	from, to           int
	fromPhase, toPhase int
	tag                int32
	blocks             []Block
}

// planOp is the executor's view of one message end.
type planOp struct {
	peer   int
	tag    int32
	blocks int
}

// hierPhase groups the operations a rank posts together and then waits
// for. Phases run in order on each rank; there is no global barrier.
type hierPhase struct {
	sends []planOp
	recvs []planOp
}

// HierPlan is a compiled hierarchical All-to-All for one placement.
type HierPlan struct {
	Alg     HierAlgorithm
	Place   Placement
	perRank [][]hierPhase
	msgs    []*hierMsg // block-annotated message list, for verification
}

// planBuilder accumulates matched messages into per-rank phase lists.
type planBuilder struct {
	plans [][]hierPhase
	tags  map[[2]int]int32
	msgs  []*hierMsg
}

func newPlanBuilder(n int) *planBuilder {
	return &planBuilder{plans: make([][]hierPhase, n), tags: map[[2]int]int32{}}
}

// phase grows rank r's phase list to include index ph and returns it.
func (b *planBuilder) phase(r, ph int) *hierPhase {
	for len(b.plans[r]) <= ph {
		b.plans[r] = append(b.plans[r], hierPhase{})
	}
	return &b.plans[r][ph]
}

// msg registers a message carrying blocks from rank `from` (posted in
// its phase fromPhase) to rank `to` (received in its phase toPhase).
// Tags are allocated per ordered rank pair in registration order, which
// both sides share because one builder constructs the whole plan.
func (b *planBuilder) msg(from, fromPhase, to, toPhase int, blocks []Block) {
	if len(blocks) == 0 {
		return
	}
	key := [2]int{from, to}
	tag := tagHier + b.tags[key]
	b.tags[key]++
	m := &hierMsg{from: from, to: to, fromPhase: fromPhase, toPhase: toPhase, tag: tag, blocks: blocks}
	b.msgs = append(b.msgs, m)
	sp := b.phase(from, fromPhase)
	sp.sends = append(sp.sends, planOp{peer: to, tag: tag, blocks: len(blocks)})
	rp := b.phase(to, toPhase)
	rp.recvs = append(rp.recvs, planOp{peer: from, tag: tag, blocks: len(blocks)})
}

// outboundBlocks returns the blocks rank i owes cluster d's members.
func outboundBlocks(p Placement, i, d int) []Block {
	var out []Block
	for _, j := range p.Members(d) {
		if j != i {
			out = append(out, Block{Src: i, Dst: j})
		}
	}
	return out
}

// PlanHier compiles the hierarchical All-to-All plan for a placement.
func PlanHier(p Placement, alg HierAlgorithm) *HierPlan {
	b := newPlanBuilder(p.NumRanks())
	switch alg {
	case HierGather:
		planHierGather(b, p)
	case HierDirect:
		planHierDirect(b, p)
	default:
		panic("coll: unknown hierarchical algorithm")
	}
	return &HierPlan{Alg: alg, Place: p, perRank: b.plans, msgs: b.msgs}
}

// planHierGather emits the sequential gather/exchange/scatter plan.
// Per-rank phase layout, uniform across cluster sizes:
//
//	0  intra-cluster exchange, every local pair posted at once
//	1  gather: non-coordinators send remote-bound blocks to coord
//	2  exchange: coordinator pairs swap aggregated blocks
//	3  scatter: coordinator delivers inbound blocks locally
//
// The phases are strictly sequenced per rank, so the WAN exchange sees
// exactly one aggregated message per cluster pair with no competing LAN
// traffic — the defining contrast with HierDirect's overlap.
func planHierGather(b *planBuilder, p Placement) {
	for c := 0; c < p.NumClusters(); c++ {
		mem := p.Members(c)
		planIntraPairs(b, mem, 0)
		coord := p.Coordinator(c)
		// Gather: each non-coordinator hands over its blocks for every
		// remote cluster as one message per remote cluster.
		for _, i := range mem[1:] {
			for d := 0; d < p.NumClusters(); d++ {
				if d != c {
					b.msg(i, 1, coord, 1, outboundBlocks(p, i, d))
				}
			}
		}
		// Exchange: one aggregated message per ordered cluster pair.
		for d := 0; d < p.NumClusters(); d++ {
			if d == c {
				continue
			}
			var blocks []Block
			for _, i := range mem {
				blocks = append(blocks, outboundBlocks(p, i, d)...)
			}
			b.msg(coord, 2, p.Coordinator(d), 2, blocks)
		}
		// Scatter: the coordinator forwards every inbound remote block
		// to its local destination (keeping its own).
		for _, i := range mem[1:] {
			var blocks []Block
			for j := 0; j < p.NumRanks(); j++ {
				if p.Cluster(j) != c {
					blocks = append(blocks, Block{Src: j, Dst: i})
				}
			}
			b.msg(coord, 3, i, 3, blocks)
		}
	}
}

// planHierDirect emits the overlapped plan. Non-coordinators run a
// single phase posting everything at once: the intra-cluster exchange
// (PostAll style), the gathers to the coordinator, and the scatter
// receive. Coordinators need three phases to respect data dependencies:
//
//	0  intra exchange + local gather receives
//	1  coordinator exchange (sends and receives posted together)
//	2  local scatter sends
func planHierDirect(b *planBuilder, p Placement) {
	for c := 0; c < p.NumClusters(); c++ {
		mem := p.Members(c)
		coord := p.Coordinator(c)
		planIntraPairs(b, mem, 0)
		// Gathers into the coordinator, posted with everything else.
		for _, i := range mem[1:] {
			for d := 0; d < p.NumClusters(); d++ {
				if d != c {
					b.msg(i, 0, coord, 0, outboundBlocks(p, i, d))
				}
			}
		}
		// Coordinator exchange.
		for d := 0; d < p.NumClusters(); d++ {
			if d == c {
				continue
			}
			var blocks []Block
			for _, i := range mem {
				blocks = append(blocks, outboundBlocks(p, i, d)...)
			}
			b.msg(coord, 1, p.Coordinator(d), 1, blocks)
		}
		// Scatter, received by non-coordinators in their single phase.
		for _, i := range mem[1:] {
			var blocks []Block
			for j := 0; j < p.NumRanks(); j++ {
				if p.Cluster(j) != c {
					blocks = append(blocks, Block{Src: j, Dst: i})
				}
			}
			b.msg(coord, 2, i, 0, blocks)
		}
	}
}

// planIntraPairs emits the intra-cluster exchange among mem in a single
// phase: every local ordered pair's block, all posted at once (PostAll
// style, the shape the contention signature is fitted on).
func planIntraPairs(b *planBuilder, mem []int, phase int) {
	for ki, i := range mem {
		for _, j := range mem[ki+1:] {
			b.msg(i, phase, j, phase, []Block{{Src: i, Dst: j}})
			b.msg(j, phase, i, phase, []Block{{Src: j, Dst: i}})
		}
	}
}

// AlltoallHierPlanned executes a compiled plan on the calling rank with
// per-pair message size m. Every rank of the plan's placement must call
// it with the same plan and m.
func AlltoallHierPlanned(r *mpi.Rank, plan *HierPlan, m int) {
	if plan.Place.NumRanks() != r.Size() {
		panic(fmt.Sprintf("coll: plan for %d ranks executed on world of %d",
			plan.Place.NumRanks(), r.Size()))
	}
	for _, ph := range plan.perRank[r.ID()] {
		if len(ph.sends) == 0 && len(ph.recvs) == 0 {
			continue
		}
		qs := make([]*mpi.Request, 0, len(ph.sends)+len(ph.recvs))
		for _, rv := range ph.recvs {
			qs = append(qs, r.Irecv(rv.peer, rv.tag))
		}
		for _, sd := range ph.sends {
			qs = append(qs, r.Isend(sd.peer, sd.tag, sd.blocks*m))
		}
		r.WaitAll(qs...)
	}
}

// AlltoallHier compiles and executes the hierarchical All-to-All. For
// repeated measurements compile once with PlanHier and use
// AlltoallHierPlanned instead.
func AlltoallHier(r *mpi.Rank, place Placement, m int, alg HierAlgorithm) {
	AlltoallHierPlanned(r, PlanHier(place, alg), m)
}
