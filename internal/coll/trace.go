package coll

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Per-phase execution tracing. A compiled HierPlan runs as a sequence
// of post-and-wait phases on every rank; when a deep plan underperforms
// its prediction, the end-to-end makespan says nothing about *which*
// phase — the tier exchange, the leaf gather, a scatter level — ate the
// time. A PhaseTrace records each rank's phase boundaries (simulated
// time, so the trace is deterministic under a fixed seed) and reduces
// them to per-phase spans.

// PhaseTrace records per-rank phase boundaries of one plan's
// execution. It is sized for a specific plan and world; ranks write
// disjoint slots, which is race-free under the simulator's one-active-
// process discipline (the same structure coll.Measure relies on). Under
// repeated executions (warmup + reps) each rank overwrites its slots,
// so the trace reflects the final repetition.
type PhaseTrace struct {
	plan   *HierPlan
	starts [][]sim.Time // [phase][rank]
	ends   [][]sim.Time
	active [][]bool // rank posted operations in the phase
}

// NewPhaseTrace builds a trace sized for the plan's phases and ranks.
func NewPhaseTrace(plan *HierPlan) *PhaseTrace {
	n := plan.Place.NumRanks()
	p := plan.NumPhases()
	pt := &PhaseTrace{plan: plan}
	pt.starts = make([][]sim.Time, p)
	pt.ends = make([][]sim.Time, p)
	pt.active = make([][]bool, p)
	for i := 0; i < p; i++ {
		pt.starts[i] = make([]sim.Time, n)
		pt.ends[i] = make([]sim.Time, n)
		pt.active[i] = make([]bool, n)
	}
	return pt
}

// record stores one rank's boundaries for a phase it participated in.
func (pt *PhaseTrace) record(phase, rank int, start, end sim.Time) {
	pt.starts[phase][rank] = start
	pt.ends[phase][rank] = end
	pt.active[phase][rank] = true
}

// PhaseSpan is one phase's reduction over the ranks that posted
// operations in it: earliest post time and latest completion, both in
// seconds relative to the first recorded post of the whole execution.
type PhaseSpan struct {
	Phase int
	Label string
	Start float64 // seconds from the execution's first post
	End   float64
	Ranks int // ranks that posted operations in the phase
}

// Dur returns the span's width in seconds.
func (s PhaseSpan) Dur() float64 { return s.End - s.Start }

// Spans reduces the recorded boundaries to one span per phase that saw
// any activity, in phase order.
func (pt *PhaseTrace) Spans() []PhaseSpan {
	t0 := sim.Time(-1)
	for p := range pt.starts {
		for r := range pt.starts[p] {
			if pt.active[p][r] && (t0 < 0 || pt.starts[p][r] < t0) {
				t0 = pt.starts[p][r]
			}
		}
	}
	var out []PhaseSpan
	for p := range pt.starts {
		lo, hi, ranks := sim.Time(-1), sim.Time(0), 0
		for r := range pt.starts[p] {
			if !pt.active[p][r] {
				continue
			}
			ranks++
			if lo < 0 || pt.starts[p][r] < lo {
				lo = pt.starts[p][r]
			}
			if pt.ends[p][r] > hi {
				hi = pt.ends[p][r]
			}
		}
		if ranks == 0 {
			continue
		}
		out = append(out, PhaseSpan{
			Phase: p, Label: pt.plan.PhaseLabel(p),
			Start: (lo - t0).Seconds(), End: (hi - t0).Seconds(), Ranks: ranks,
		})
	}
	return out
}

// PhaseLabel names phase i of the plan in terms of the algorithm's
// structure. For HierGather the compiler's phase layout is: phase 0 the
// intra-leaf exchange, phase 1 the leaf gather, phase 1+h the tier-h
// coordinator exchange, and phase 1+H+d the depth-d scatter (H the tree
// height). HierDirect phases are dependency levels of the overlapped
// relay, which interleave gather, exchange, and scatter traffic.
func (p *HierPlan) PhaseLabel(i int) string {
	switch p.Kind {
	case KindBroadcast, KindReduce, KindAllreduce:
		// Rooted relays share one phase layout across both algorithm
		// variants: one relay level per phase (Allreduce runs the reduce
		// levels first, then the broadcast levels).
		return fmt.Sprintf("relay-%d", i)
	}
	if p.Alg == HierGather {
		h := p.Tree.Height()
		switch {
		case i == 0:
			return "intra"
		case i == 1:
			return "leaf-gather"
		case i <= 1+h:
			return fmt.Sprintf("tier-%d-exchange", i-1)
		default:
			return fmt.Sprintf("scatter-depth-%d", i-1-h)
		}
	}
	return fmt.Sprintf("level-%d", i)
}

// AlltoallHierPlannedTraced executes a compiled uniform plan like
// AlltoallHierPlanned while recording the calling rank's phase
// boundaries into pt (which must have been built for this plan). A nil
// pt degenerates to the untraced executor.
func AlltoallHierPlannedTraced(r *mpi.Rank, plan *HierPlan, m int, pt *PhaseTrace) {
	if plan.Place.NumRanks() != r.Size() {
		panic(fmt.Sprintf("coll: plan for %d ranks executed on world of %d",
			plan.Place.NumRanks(), r.Size()))
	}
	runPlanPhases(r, plan, m, pt)
}

// AlltoallHierPlannedVTraced executes a size-bound plan like
// AlltoallHierPlannedV while recording the calling rank's phase
// boundaries into pt. A nil pt degenerates to the untraced executor.
func AlltoallHierPlannedVTraced(r *mpi.Rank, plan *HierPlan, pt *PhaseTrace) {
	if plan.vbytes == nil {
		panic("coll: plan has no bound size matrix; compile with PlanHierTreeV")
	}
	if plan.Place.NumRanks() != r.Size() {
		panic(fmt.Sprintf("coll: plan for %d ranks executed on world of %d",
			plan.Place.NumRanks(), r.Size()))
	}
	runPlanPhases(r, plan, 0, pt)
}

// runPlanPhases is the shared phase loop of every plan executor: post
// the phase's receives and sends, wait for all, record boundaries when
// traced. Uniform plans (vbytes nil) size sends as blocks·m — or
// kweights·m for non-All-to-All kinds — and skip empty phases
// outright; size-bound plans skip zero-byte messages individually.
func runPlanPhases(r *mpi.Rank, plan *HierPlan, m int, pt *PhaseTrace) {
	for pi, ph := range plan.perRank[r.ID()] {
		if plan.vbytes == nil && len(ph.sends) == 0 && len(ph.recvs) == 0 {
			continue
		}
		start := r.Now()
		qs := make([]*mpi.Request, 0, len(ph.sends)+len(ph.recvs))
		for _, rv := range ph.recvs {
			if plan.vbytes != nil && plan.vbytes[rv.msgIdx] == 0 {
				continue
			}
			qs = append(qs, r.Irecv(rv.peer, rv.tag))
		}
		for _, sd := range ph.sends {
			b := sd.blocks * m
			switch {
			case plan.vbytes != nil:
				b = plan.vbytes[sd.msgIdx]
				if b == 0 {
					continue
				}
			case plan.kweights != nil:
				b = plan.kweights[sd.msgIdx] * m
			}
			qs = append(qs, r.Isend(sd.peer, sd.tag, b))
		}
		r.WaitAll(qs...)
		if pt != nil && len(qs) > 0 {
			pt.record(pi, r.ID(), start, r.Now())
		}
	}
}
