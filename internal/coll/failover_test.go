package coll

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// failoverGrid builds a 2-cluster grid with explicit coordinators and
// ranked standbys per leaf, mirroring what the planner emits.
func failoverGrid(t *testing.T, nodesPer int, seed int64) (*cluster.Grid, TreeSpec) {
	t.Helper()
	gp := cluster.Uniform("t-fo", cluster.GigabitEthernet(), 2, nodesPer,
		cluster.DefaultWAN(10*sim.Millisecond))
	g, err := cluster.BuildGrid(gp, seed)
	if err != nil {
		t.Fatal(err)
	}
	spec := GridSpec(g)
	for i := range spec.Children {
		rk := spec.Children[i].Ranks
		spec.Children[i].Coords = []int{rk[0]}
		spec.Children[i].Standbys = append([]int(nil), rk[1:]...)
	}
	return g, spec
}

// TestFailoverNoFaultsMatchesPlain: with an empty fault schedule the
// failover executor must be behaviorally identical to the plain planned
// executor — same phase trace to the nanosecond — because it posts the
// same operations in the same order and its extra timeout timers fire
// as no-ops.
func TestFailoverNoFaultsMatchesPlain(t *testing.T) {
	for _, alg := range HierAlgorithms {
		gA, specA := failoverGrid(t, 3, 7)
		planA := PlanHierTree(specA, alg)
		ptA := NewPhaseTrace(planA)
		wA := mpi.NewWorld(gA.Env, mpi.Config{})
		wA.Run(func(r *mpi.Rank) { AlltoallHierPlannedTraced(r, planA, 20_000, ptA) })

		gB, specB := failoverGrid(t, 3, 7)
		planB := PlanHierTree(specB, alg)
		ptB := NewPhaseTrace(planB)
		fr := NewFailoverRun(planB, 20_000, FailoverConfig{Timeout: 500 * sim.Millisecond})
		fr.SetTrace(ptB)
		wB := mpi.NewWorld(gB.Env, mpi.Config{})
		wB.Run(func(r *mpi.Rank) { fr.Run(r) })

		if !reflect.DeepEqual(ptA.Spans(), ptB.Spans()) {
			t.Fatalf("%v: failover trace diverges from plain executor:\nplain:    %+v\nfailover: %+v",
				alg, ptA.Spans(), ptB.Spans())
		}
		res := fr.Result()
		if res.Epochs != 1 || len(res.Dead) != 0 || res.Incomplete {
			t.Fatalf("%v: no-fault run reports %+v", alg, res)
		}
		n := planB.Tree.NumRanks()
		if res.DeliveredBlocks != n*(n-1) {
			t.Fatalf("%v: delivered %d blocks, want %d", alg, res.DeliveredBlocks, n*(n-1))
		}
		if err := fr.Verify(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

// TestFailoverCoordinatorLoss kills cluster 0's coordinator mid-run and
// checks the run completes by failing over to the first standby, with
// exactly-once delivery among survivors and the dead rank's blocks
// waived.
func TestFailoverCoordinatorLoss(t *testing.T) {
	g, spec := failoverGrid(t, 3, 11)
	plan := PlanHierTree(spec, HierGather)
	n := plan.Tree.NumRanks()

	fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{
		{Host: g.Env.Hosts[0].Name(), At: 15 * sim.Millisecond},
	}}
	if err := g.Env.Net.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	declared := make(map[int]int)
	fr := NewFailoverRun(plan, 20_000, FailoverConfig{
		Timeout: 200 * sim.Millisecond,
		IsDead:  func(rank int) bool { return fs.NodeLostBy(g.Env.Hosts[rank].Name(), g.Env.Sim.Now()) },
		Quench:  func(rank int) { g.Env.Fabric.Quench(rank) },
		OnDeclare: func(rank, epoch int, now sim.Time) {
			declared[rank] = epoch
		},
	})
	w := mpi.NewWorld(g.Env, mpi.Config{})
	w.Run(func(r *mpi.Rank) { fr.Run(r) })

	res := fr.Result()
	if res.Incomplete {
		t.Fatalf("run abandoned: %+v", res)
	}
	if res.Epochs < 2 {
		t.Fatalf("coordinator loss handled in %d epoch(s), want a recovery epoch", res.Epochs)
	}
	if len(res.Dead) != 1 || res.Dead[0] != 0 {
		t.Fatalf("dead = %v, want [0]", res.Dead)
	}
	if _, ok := declared[0]; !ok {
		t.Fatal("OnDeclare never fired for rank 0")
	}
	if err := fr.Verify(); err != nil {
		t.Fatal(err)
	}
	// Blocks rank 0 exchanged before dying (the intra-cluster phase)
	// stay delivered; only its undelivered blocks are waived.
	if res.WaivedBlocks == 0 || res.WaivedBlocks > 2*(n-1) {
		t.Fatalf("waived %d blocks, want 1..%d", res.WaivedBlocks, 2*(n-1))
	}
	if res.DeliveredBlocks+res.WaivedBlocks != n*(n-1) {
		t.Fatalf("delivered %d + waived %d ≠ %d blocks", res.DeliveredBlocks, res.WaivedBlocks, n*(n-1))
	}
	// The recovery plan must have moved cluster 0's coordinator onto the
	// first standby, not an arbitrary rank.
	rec := fr.epochs[len(fr.epochs)-1].plan
	if got := rec.Tree.Coordinators(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("recovery coordinator of leaf 0 = %v, want [1] (first standby)", got)
	}
	for _, ft := range res.FinishAt[1:] {
		if ft <= 15*sim.Millisecond {
			t.Fatalf("survivor finished at %v, before the fault", ft)
		}
	}
}

// TestFailoverNonCoordinatorLoss kills a non-coordinator and checks the
// coordinator set is untouched while its blocks are waived.
func TestFailoverNonCoordinatorLoss(t *testing.T) {
	g, spec := failoverGrid(t, 3, 13)
	plan := PlanHierTree(spec, HierGather)

	victim := 4 // member of cluster 1, not its coordinator (rank 3)
	fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{
		{Host: g.Env.Hosts[victim].Name(), At: 10 * sim.Millisecond},
	}}
	if err := g.Env.Net.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	fr := NewFailoverRun(plan, 20_000, FailoverConfig{
		Timeout: 200 * sim.Millisecond,
		IsDead:  func(rank int) bool { return fs.NodeLostBy(g.Env.Hosts[rank].Name(), g.Env.Sim.Now()) },
		Quench:  func(rank int) { g.Env.Fabric.Quench(rank) },
	})
	w := mpi.NewWorld(g.Env, mpi.Config{})
	w.Run(func(r *mpi.Rank) { fr.Run(r) })

	if err := fr.Verify(); err != nil {
		t.Fatal(err)
	}
	res := fr.Result()
	if len(res.Dead) != 1 || res.Dead[0] != victim {
		t.Fatalf("dead = %v, want [%d]", res.Dead, victim)
	}
	rec := fr.epochs[len(fr.epochs)-1].plan
	if got := rec.Tree.Coordinators(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("recovery coordinator of leaf 1 = %v, want [3] (unchanged)", got)
	}
}

// TestFailoverExactlyOnceProperty: across random seeds, victims, and
// fault times, a single mid-run node loss always ends in a verified
// run — every surviving pair's block delivered exactly once, the dead
// rank's blocks waived, no duplicates — and the world quiesces (the mpi
// runtime panics on deadlock).
func TestFailoverExactlyOnceProperty(t *testing.T) {
	prop := func(seed int64, victim8, at16 uint16, algPick uint8) bool {
		nodesPer := 3
		alg := HierAlgorithms[int(algPick)%len(HierAlgorithms)]
		gp := cluster.Uniform("t-fop", cluster.GigabitEthernet(), 2, nodesPer,
			cluster.DefaultWAN(10*sim.Millisecond))
		g, err := cluster.BuildGrid(gp, seed)
		if err != nil {
			return false
		}
		spec := GridSpec(g)
		for i := range spec.Children {
			rk := spec.Children[i].Ranks
			spec.Children[i].Coords = []int{rk[0]}
			spec.Children[i].Standbys = append([]int(nil), rk[1:]...)
		}
		plan := PlanHierTree(spec, alg)
		n := plan.Tree.NumRanks()
		victim := int(victim8) % n
		at := sim.Time(at16%120) * sim.Millisecond // 0..119ms, spanning the whole run
		fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{
			{Host: g.Env.Hosts[victim].Name(), At: at},
		}}
		if err := g.Env.Net.ApplyFaults(fs); err != nil {
			return false
		}
		fr := NewFailoverRun(plan, 20_000, FailoverConfig{
			Timeout: 150 * sim.Millisecond,
			IsDead:  func(rank int) bool { return fs.NodeLostBy(g.Env.Hosts[rank].Name(), g.Env.Sim.Now()) },
			Quench:  func(rank int) { g.Env.Fabric.Quench(rank) },
		})
		w := mpi.NewWorld(g.Env, mpi.Config{})
		w.Run(func(r *mpi.Rank) { fr.Run(r) })
		if err := fr.Verify(); err != nil {
			// A fault landing after completion leaves nothing declared;
			// Verify still passes (no dead, all delivered), so any error
			// is a genuine protocol violation.
			t.Logf("seed=%d victim=%d at=%v alg=%v: %v", seed, victim, at, alg, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
