package coll

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestAlltoallPayloadConservationProperty: across random small rank
// counts and message sizes, the fabric carries at least the payload
// volume each algorithm is supposed to move, and the run terminates
// (no deadlock) with positive completion time. Direct/PostAll/Pairwise
// move exactly n(n-1) payload messages; Bruck trades bandwidth for
// start-ups so it moves at least that much.
func TestAlltoallPayloadConservationProperty(t *testing.T) {
	prop := func(seed int64, n8, m16 uint16, algPick uint8) bool {
		n := int(n8%6) + 2
		m := int(m16%8192) + 128
		alg := Algorithms[int(algPick)%len(Algorithms)]
		cl := cluster.Build(cluster.GigabitEthernet(), n, seed)
		w := mpi.NewWorld(cl, mpi.Config{})
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { Alltoall(r, m, alg) })
		if meas.Times[0] <= 0 {
			return false
		}
		var wantPayload int64
		switch alg {
		case Bruck:
			// Sum over rounds of blocks*m (at least the direct volume
			// for n >= 2 is not guaranteed, so just require > 0).
			wantPayload = int64(m)
		default:
			wantPayload = int64(n*(n-1)) * int64(m)
		}
		return cl.Fabric.TotalStats().BytesSent >= wantPayload
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMeasureMonotoneUnderLoadProperty: adding ranks never makes the
// same-size All-to-All complete faster by more than measurement jitter
// allows (sanity of the harness, not a strict theorem — tolerance 20%).
func TestMeasureMonotoneUnderLoadProperty(t *testing.T) {
	prop := func(seed int64) bool {
		m := 20_000
		run := func(n int) float64 {
			cl := cluster.Build(cluster.Myrinet(), n, seed)
			w := mpi.NewWorld(cl, mpi.Config{})
			return Measure(w, 0, 1, func(r *mpi.Rank) { Alltoall(r, m, Direct) }).Mean()
		}
		small, large := run(4), run(8)
		return large > small*0.8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverChaosProperty is the resilience fuzz harness: random grid
// shapes × random coordinator and standby choices × random node-loss
// schedules must always end in a verified failover run — every block
// between surviving ranks delivered exactly once, every block touching
// a dead rank waived, no duplicates, and the world quiesced (the mpi
// runtime panics on deadlock). Bounded small so CI stays fast; crank
// MaxCount locally when hunting protocol bugs.
func TestFailoverChaosProperty(t *testing.T) {
	prop := func(seed int64, shape8, coordPick, losses8 uint8, at16 uint16, algPick uint8) bool {
		clusters := 2 + int(shape8%2)    // 2..3 clusters
		nodesPer := 2 + int(shape8>>4)%3 // 2..4 nodes each
		gp := cluster.Uniform("t-chaos", cluster.GigabitEthernet(), clusters, nodesPer,
			cluster.DefaultWAN(10*sim.Millisecond))
		g, err := cluster.BuildGrid(gp, seed)
		if err != nil {
			return false
		}
		spec := GridSpec(g)
		for i := range spec.Children {
			rk := spec.Children[i].Ranks
			// Random coordinator per leaf; the rest become standbys in
			// rotated order, so the failover order is exercised too.
			ci := int(coordPick) % len(rk)
			spec.Children[i].Coords = []int{rk[ci]}
			for off := 1; off < len(rk); off++ {
				spec.Children[i].Standbys = append(spec.Children[i].Standbys, rk[(ci+off)%len(rk)])
			}
		}
		alg := HierAlgorithms[int(algPick)%len(HierAlgorithms)]
		plan := PlanHierTree(spec, alg)
		n := plan.Tree.NumRanks()

		// Up to 2 node losses, but always at least 2 survivors.
		losses := int(losses8 % 3)
		if losses > n-2 {
			losses = n - 2
		}
		hosts := make([]string, n)
		for i := range hosts {
			hosts[i] = g.Env.Hosts[i].Name()
		}
		fs := netsim.GenFaultSchedule(seed^0x5eed, nil, hosts, netsim.FaultGenConfig{
			NodeLosses: losses,
			Horizon:    sim.Time(at16%150+1) * sim.Millisecond,
		})
		if err := g.Env.Net.ApplyFaults(fs); err != nil {
			return false
		}
		fr := NewFailoverRun(plan, 10_000, FailoverConfig{
			Timeout: 150 * sim.Millisecond,
			IsDead:  func(rank int) bool { return fs.NodeLostBy(hosts[rank], g.Env.Sim.Now()) },
			Quench:  func(rank int) { g.Env.Fabric.Quench(rank) },
		})
		w := mpi.NewWorld(g.Env, mpi.Config{})
		w.Run(func(r *mpi.Rank) { fr.Run(r) })
		if err := fr.Verify(); err != nil {
			t.Logf("seed=%d clusters=%d nodes=%d coord=%d losses=%d alg=%v: %v",
				seed, clusters, nodesPer, coordPick, losses, alg, err)
			return false
		}
		res := fr.Result()
		dead := len(res.Dead)
		live := n - dead
		if want := live * (live - 1); res.DeliveredBlocks < want {
			t.Logf("delivered %d blocks among %d live ranks, want >= %d", res.DeliveredBlocks, live, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
