package coll

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// TestAlltoallPayloadConservationProperty: across random small rank
// counts and message sizes, the fabric carries at least the payload
// volume each algorithm is supposed to move, and the run terminates
// (no deadlock) with positive completion time. Direct/PostAll/Pairwise
// move exactly n(n-1) payload messages; Bruck trades bandwidth for
// start-ups so it moves at least that much.
func TestAlltoallPayloadConservationProperty(t *testing.T) {
	prop := func(seed int64, n8, m16 uint16, algPick uint8) bool {
		n := int(n8%6) + 2
		m := int(m16%8192) + 128
		alg := Algorithms[int(algPick)%len(Algorithms)]
		cl := cluster.Build(cluster.GigabitEthernet(), n, seed)
		w := mpi.NewWorld(cl, mpi.Config{})
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { Alltoall(r, m, alg) })
		if meas.Times[0] <= 0 {
			return false
		}
		var wantPayload int64
		switch alg {
		case Bruck:
			// Sum over rounds of blocks*m (at least the direct volume
			// for n >= 2 is not guaranteed, so just require > 0).
			wantPayload = int64(m)
		default:
			wantPayload = int64(n*(n-1)) * int64(m)
		}
		return cl.Fabric.TotalStats().BytesSent >= wantPayload
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMeasureMonotoneUnderLoadProperty: adding ranks never makes the
// same-size All-to-All complete faster by more than measurement jitter
// allows (sanity of the harness, not a strict theorem — tolerance 20%).
func TestMeasureMonotoneUnderLoadProperty(t *testing.T) {
	prop := func(seed int64) bool {
		m := 20_000
		run := func(n int) float64 {
			cl := cluster.Build(cluster.Myrinet(), n, seed)
			w := mpi.NewWorld(cl, mpi.Config{})
			return Measure(w, 0, 1, func(r *mpi.Rank) { Alltoall(r, m, Direct) }).Mean()
		}
		small, large := run(4), run(8)
		return large > small*0.8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
