package coll

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestReduceCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		for _, root := range []int{0, n - 1} {
			w := world(t, cluster.GigabitEthernet(), n, 21)
			meas := Measure(w, 0, 1, func(r *mpi.Rank) { Reduce(r, root, 10_000) })
			if meas.Times[0] <= 0 {
				t.Fatalf("n=%d root=%d: no time elapsed", n, root)
			}
		}
	}
}

func TestAllreduceCompletesAllShapes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		w := world(t, cluster.GigabitEthernet(), n, 22)
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { Allreduce(r, 20_000) })
		if meas.Times[0] <= 0 {
			t.Fatalf("n=%d: no time elapsed", n)
		}
	}
}

func TestReduceScatterCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 5, 6} {
		w := world(t, cluster.GigabitEthernet(), n, 23)
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { ReduceScatter(r, 8_000) })
		if meas.Times[0] <= 0 {
			t.Fatalf("n=%d: no time elapsed", n)
		}
	}
}

func TestAllreduceRecursiveDoublingBeatsReduceBcast(t *testing.T) {
	// For power-of-two n the recursive-doubling path takes log2(n)
	// exchange steps vs 2·log2(n) for reduce+bcast; with large messages
	// it must win.
	const n, m = 16, 200_000
	wA := world(t, cluster.GigabitEthernet(), n, 24)
	rd := Measure(wA, 1, 2, func(r *mpi.Rank) { Allreduce(r, m) })
	wB := world(t, cluster.GigabitEthernet(), n, 24)
	rb := Measure(wB, 1, 2, func(r *mpi.Rank) {
		Reduce(r, 0, m)
		Bcast(r, 0, m)
	})
	if rd.Mean() >= rb.Mean() {
		t.Fatalf("recursive doubling (%v) not faster than reduce+bcast (%v)", rd.Mean(), rb.Mean())
	}
}

func TestReduceTreeShallowerThanLinear(t *testing.T) {
	// Binomial reduce is O(log n) rounds; a linear gather is O(n).
	const n, m = 16, 100_000
	wR := world(t, cluster.FastEthernet(), n, 25)
	red := Measure(wR, 1, 2, func(r *mpi.Rank) { Reduce(r, 0, m) })
	wG := world(t, cluster.FastEthernet(), n, 25)
	gat := Measure(wG, 1, 2, func(r *mpi.Rank) { Gather(r, 0, m) })
	if red.Mean() >= gat.Mean() {
		t.Fatalf("binomial reduce (%v) not faster than linear gather (%v)", red.Mean(), gat.Mean())
	}
}

func TestReductionKernelsNonPowerOfTwo(t *testing.T) {
	// The pow2 fast paths (recursive doubling, pairwise halving) must
	// hand off cleanly to their general fallbacks, including interior
	// (non-edge) roots.
	for _, n := range []int{3, 5, 7, 9} {
		w := world(t, cluster.GigabitEthernet(), n, 27)
		meas := Measure(w, 0, 1, func(r *mpi.Rank) {
			Reduce(r, n/2, 10_000)
			Allreduce(r, 10_000)
			ReduceScatter(r, 10_000)
		})
		if meas.Times[0] <= 0 {
			t.Fatalf("n=%d: no time elapsed", n)
		}
	}
}

func TestReductionKernelsZeroPayload(t *testing.T) {
	// m=0 reductions still synchronize: every kernel moves envelopes
	// through its full step structure rather than short-circuiting, so
	// the run takes positive time and leaves no rank waiting.
	for _, n := range []int{2, 3, 4, 6, 8} {
		w := world(t, cluster.GigabitEthernet(), n, 28)
		meas := Measure(w, 0, 1, func(r *mpi.Rank) {
			Reduce(r, 0, 0)
			Allreduce(r, 0)
			ReduceScatter(r, 0)
		})
		if meas.Times[0] <= 0 {
			t.Fatalf("n=%d: zero-payload reductions took no time", n)
		}
	}
}

func TestReductionKernelsUnderFaultSchedule(t *testing.T) {
	// A transient NIC degradation (10% rate for a window mid-run) must
	// not wedge the blocking kernels — TCP rides out the slow window —
	// and the degraded run is measurably slower than the clean one.
	const n, m = 8, 200_000
	run := func(degrade bool) sim.Time {
		cl := cluster.Build(cluster.GigabitEthernet(), n, 29)
		if degrade {
			fs := netsim.FaultSchedule{Links: []netsim.LinkFault{{
				Port:         cl.Net.HostPorts()[0],
				At:           0,
				Until:        500 * sim.Millisecond,
				RateFraction: 0.1,
			}}}
			if err := cl.Net.ApplyFaults(fs); err != nil {
				t.Fatal(err)
			}
		}
		w := mpi.NewWorld(cl, mpi.Config{})
		meas := Measure(w, 0, 1, func(r *mpi.Rank) {
			Reduce(r, 0, m)
			Allreduce(r, m)
			ReduceScatter(r, m)
		})
		return meas.Times[0]
	}
	clean, degraded := run(false), run(true)
	if clean <= 0 || degraded <= 0 {
		t.Fatalf("nonpositive times: clean=%v degraded=%v", clean, degraded)
	}
	if degraded <= clean {
		t.Fatalf("degraded NIC run (%v) not slower than clean run (%v)", degraded, clean)
	}
}

func TestReduceUnderFaultWithTimedWaits(t *testing.T) {
	// The nonblocking form of the reverse-binomial exchange under a
	// fully downed (then healed) link: timed waits observe the outage as
	// timeouts, keep re-waiting, and complete once the link heals.
	const n, m = 4, 100_000
	cl := cluster.Build(cluster.GigabitEthernet(), n, 30)
	fs := netsim.FaultSchedule{Links: []netsim.LinkFault{{
		Port:  cl.Net.HostPorts()[1],
		At:    0,
		Until: 80 * sim.Millisecond,
	}}}
	if err := cl.Net.ApplyFaults(fs); err != nil {
		t.Fatal(err)
	}
	w := mpi.NewWorld(cl, mpi.Config{})
	timeouts := 0
	w.Run(func(r *mpi.Rank) {
		vrank := r.ID()
		mask := 1
		for mask < n {
			if vrank&mask != 0 {
				q := r.Isend(vrank&^mask, tagReduce, m)
				for !r.WaitTimeout(q, 10*sim.Millisecond) {
					timeouts++
				}
				return
			}
			if vrank|mask < n {
				q := r.Irecv(vrank|mask, tagReduce)
				for !r.WaitTimeout(q, 10*sim.Millisecond) {
					timeouts++
				}
			}
			mask <<= 1
		}
	})
	if timeouts == 0 {
		t.Fatal("80ms outage produced no 10ms wait timeouts")
	}
}

func TestReductionCollectivesOnLosslessNetwork(t *testing.T) {
	cl := cluster.Build(cluster.Myrinet(), 8, 26)
	w := mpi.NewWorld(cl, mpi.Config{})
	meas := Measure(w, 0, 1, func(r *mpi.Rank) {
		Reduce(r, 0, 50_000)
		Allreduce(r, 50_000)
		ReduceScatter(r, 50_000)
	})
	if cl.Net.Drops() != 0 {
		t.Fatalf("lossless network dropped %d packets", cl.Net.Drops())
	}
	if meas.Times[0] <= 0 {
		t.Fatal("no time elapsed")
	}
}
