package coll

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

func TestReduceCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		for _, root := range []int{0, n - 1} {
			w := world(t, cluster.GigabitEthernet(), n, 21)
			meas := Measure(w, 0, 1, func(r *mpi.Rank) { Reduce(r, root, 10_000) })
			if meas.Times[0] <= 0 {
				t.Fatalf("n=%d root=%d: no time elapsed", n, root)
			}
		}
	}
}

func TestAllreduceCompletesAllShapes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6, 8} {
		w := world(t, cluster.GigabitEthernet(), n, 22)
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { Allreduce(r, 20_000) })
		if meas.Times[0] <= 0 {
			t.Fatalf("n=%d: no time elapsed", n)
		}
	}
}

func TestReduceScatterCompletes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 5, 6} {
		w := world(t, cluster.GigabitEthernet(), n, 23)
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { ReduceScatter(r, 8_000) })
		if meas.Times[0] <= 0 {
			t.Fatalf("n=%d: no time elapsed", n)
		}
	}
}

func TestAllreduceRecursiveDoublingBeatsReduceBcast(t *testing.T) {
	// For power-of-two n the recursive-doubling path takes log2(n)
	// exchange steps vs 2·log2(n) for reduce+bcast; with large messages
	// it must win.
	const n, m = 16, 200_000
	wA := world(t, cluster.GigabitEthernet(), n, 24)
	rd := Measure(wA, 1, 2, func(r *mpi.Rank) { Allreduce(r, m) })
	wB := world(t, cluster.GigabitEthernet(), n, 24)
	rb := Measure(wB, 1, 2, func(r *mpi.Rank) {
		Reduce(r, 0, m)
		Bcast(r, 0, m)
	})
	if rd.Mean() >= rb.Mean() {
		t.Fatalf("recursive doubling (%v) not faster than reduce+bcast (%v)", rd.Mean(), rb.Mean())
	}
}

func TestReduceTreeShallowerThanLinear(t *testing.T) {
	// Binomial reduce is O(log n) rounds; a linear gather is O(n).
	const n, m = 16, 100_000
	wR := world(t, cluster.FastEthernet(), n, 25)
	red := Measure(wR, 1, 2, func(r *mpi.Rank) { Reduce(r, 0, m) })
	wG := world(t, cluster.FastEthernet(), n, 25)
	gat := Measure(wG, 1, 2, func(r *mpi.Rank) { Gather(r, 0, m) })
	if red.Mean() >= gat.Mean() {
		t.Fatalf("binomial reduce (%v) not faster than linear gather (%v)", red.Mean(), gat.Mean())
	}
}

func TestReductionCollectivesOnLosslessNetwork(t *testing.T) {
	cl := cluster.Build(cluster.Myrinet(), 8, 26)
	w := mpi.NewWorld(cl, mpi.Config{})
	meas := Measure(w, 0, 1, func(r *mpi.Rank) {
		Reduce(r, 0, 50_000)
		Allreduce(r, 50_000)
		ReduceScatter(r, 50_000)
	})
	if cl.Net.Drops() != 0 {
		t.Fatalf("lossless network dropped %d packets", cl.Net.Drops())
	}
	if meas.Times[0] <= 0 {
		t.Fatal("no time elapsed")
	}
}
