package coll

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Measurement holds the timings of repeated executions of a collective.
type Measurement struct {
	Times []sim.Time // one global makespan per repetition
}

// Mean returns the average completion time in seconds.
func (m Measurement) Mean() float64 {
	if len(m.Times) == 0 {
		return 0
	}
	var sum float64
	for _, t := range m.Times {
		sum += t.Seconds()
	}
	return sum / float64(len(m.Times))
}

// Min returns the fastest repetition in seconds.
func (m Measurement) Min() float64 {
	if len(m.Times) == 0 {
		return 0
	}
	best := m.Times[0]
	for _, t := range m.Times[1:] {
		if t < best {
			best = t
		}
	}
	return best.Seconds()
}

// Max returns the slowest repetition in seconds.
func (m Measurement) Max() float64 {
	if len(m.Times) == 0 {
		return 0
	}
	worst := m.Times[0]
	for _, t := range m.Times[1:] {
		if t > worst {
			worst = t
		}
	}
	return worst.Seconds()
}

// Measure times reps executions of op across all ranks of w, separated by
// barriers, after warmup unmeasured executions (which also warm TCP
// congestion windows, as the paper's repeated measurements did). The
// makespan of a repetition is the interval from the earliest rank start
// to the latest rank finish — the paper's definition of completion time.
func Measure(w *mpi.World, warmup, reps int, op func(r *mpi.Rank)) Measurement {
	n := w.Size()
	starts := make([][]sim.Time, reps)
	ends := make([][]sim.Time, reps)
	for i := range starts {
		starts[i] = make([]sim.Time, n)
		ends[i] = make([]sim.Time, n)
	}
	w.Run(func(r *mpi.Rank) {
		for i := 0; i < warmup; i++ {
			r.Barrier()
			op(r)
		}
		for i := 0; i < reps; i++ {
			r.Barrier()
			starts[i][r.ID()] = r.Now()
			op(r)
			ends[i][r.ID()] = r.Now()
		}
	})
	out := Measurement{Times: make([]sim.Time, reps)}
	for i := 0; i < reps; i++ {
		minStart, maxEnd := starts[i][0], ends[i][0]
		for k := 1; k < n; k++ {
			if starts[i][k] < minStart {
				minStart = starts[i][k]
			}
			if ends[i][k] > maxEnd {
				maxEnd = ends[i][k]
			}
		}
		out.Times[i] = maxEnd - minStart
	}
	return out
}
