package coll

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// suiteKinds are the uniform kinds PlanKindTree compiles (Alltoallv
// binds a matrix and goes through PlanHierTreeV).
var suiteKinds = []Kind{
	KindAlltoall, KindAllgather, KindBroadcast,
	KindReduce, KindReduceScatter, KindAllreduce,
}

// wantUniverse computes the delivery obligations a kind owes over n
// ranks: every ordered pair for the All-to-All-shaped kinds, the rooted
// legs for broadcast/reduce, both legs for allreduce (root 0).
func wantUniverse(kind Kind, n int) map[Block]bool {
	u := map[Block]bool{}
	switch kind {
	case KindAlltoall, KindAllgather, KindReduceScatter:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					u[Block{Src: i, Dst: j}] = true
				}
			}
		}
	case KindBroadcast:
		for j := 1; j < n; j++ {
			u[Block{Src: 0, Dst: j}] = true
		}
	case KindReduce:
		for i := 1; i < n; i++ {
			u[Block{Src: i, Dst: 0}] = true
		}
	case KindAllreduce:
		for r := 1; r < n; r++ {
			u[Block{Src: r, Dst: 0}] = true
			u[Block{Src: 0, Dst: r}] = true
		}
	}
	return u
}

// verifyKindPlan statically checks a compiled kind plan: the universe
// matches the kind's semantics, every obligation is delivered exactly
// once at its terminal rank, every message's sender possesses its
// blocks before forwarding them (received in a strictly earlier phase
// of its own order, or held initially), and the payload sizing agrees
// with KindMsgBytes.
func verifyKindPlan(plan *HierPlan, kind Kind, m int) error {
	n := plan.Tree.NumRanks()
	want := wantUniverse(kind, n)
	got := map[Block]bool{}
	for _, b := range plan.Universe() {
		got[b] = true
	}
	if !reflect.DeepEqual(want, got) {
		return fmt.Errorf("%s over %d ranks: universe has %d blocks, want %d",
			kind, n, len(got), len(want))
	}

	// arrival[rank][block]: earliest phase the rank receives the block.
	arrival := make([]map[Block]int, n)
	for i := range arrival {
		arrival[i] = map[Block]int{}
	}
	delivered := map[Block]int{}
	for _, msg := range plan.msgs {
		for _, b := range msg.blocks {
			if ph, ok := arrival[msg.to][b]; !ok || msg.toPhase < ph {
				arrival[msg.to][b] = msg.toPhase
			}
			if b.Dst == msg.to {
				delivered[b]++
			}
		}
	}
	for b := range want {
		if delivered[b] != 1 {
			return fmt.Errorf("%s: block %d→%d delivered %d times, want exactly once",
				kind, b.Src, b.Dst, delivered[b])
		}
	}
	for i, msg := range plan.msgs {
		for _, b := range msg.blocks {
			if b.Src == msg.from {
				continue // initially held at its source
			}
			ph, ok := arrival[msg.from][b]
			if !ok {
				return fmt.Errorf("%s: rank %d forwards block %d→%d it never received",
					kind, msg.from, b.Src, b.Dst)
			}
			if ph >= msg.fromPhase {
				return fmt.Errorf("%s: rank %d forwards block %d→%d in phase %d but receives it in phase %d",
					kind, msg.from, b.Src, b.Dst, msg.fromPhase, ph)
			}
		}
		if gotB, wantB := plan.msgBytesAt(i, m), KindMsgBytes(kind, msg.blocks, m); gotB != wantB {
			return fmt.Errorf("%s: message %d sized %d bytes, want %d", kind, i, gotB, wantB)
		}
	}
	return nil
}

// fuzzSpec builds a random 2- or 3-level tree spec with randomized
// leaf coordinator sets, standbys, and (on 3-level shapes) an explicit
// inner-tier coordinator — the joint fuzz surface of the suite.
func fuzzSpec(shape8, coordPick uint8) (TreeSpec, int) {
	leaves := 2 + int(shape8%2)        // 2..3 leaves per group
	nodesPer := 2 + int(shape8>>4)%3   // 2..4 ranks per leaf
	threeLevel := (shape8>>2)&0x1 == 1 // nest two groups under a root
	groups := 1
	if threeLevel {
		groups = 2
	}
	n := 0
	var root TreeSpec
	for g := 0; g < groups; g++ {
		var grp TreeSpec
		for l := 0; l < leaves; l++ {
			var rk []int
			for k := 0; k < nodesPer; k++ {
				rk = append(rk, n)
				n++
			}
			ci := int(coordPick) % len(rk)
			leaf := TreeSpec{Ranks: rk, Coords: []int{rk[ci]}}
			for off := 1; off < len(rk); off++ {
				leaf.Standbys = append(leaf.Standbys, rk[(ci+off)%len(rk)])
			}
			grp.Children = append(grp.Children, leaf)
		}
		if threeLevel {
			root.Children = append(root.Children, grp)
		} else {
			root = grp
		}
	}
	if threeLevel && coordPick%3 == 0 {
		// An explicit inner-tier coordinator on the first national group:
		// its second leaf's coordinator relays the tier.
		root.Children[0].Coords = []int{root.Children[0].Children[1].Coords[0]}
	}
	return root, n
}

// TestKindPlansExactlyOnceProperty fuzzes tree shapes × coordinator
// sets × kinds × algorithm variants and statically verifies every
// compiled plan: kind-correct universe, exactly-once delivery,
// forward-after-receive phase safety, and kind-consistent payloads.
func TestKindPlansExactlyOnceProperty(t *testing.T) {
	prop := func(shape8, coordPick, kindPick, algPick uint8) bool {
		spec, _ := fuzzSpec(shape8, coordPick)
		kind := suiteKinds[int(kindPick)%len(suiteKinds)]
		alg := HierAlgorithms[int(algPick)%len(HierAlgorithms)]
		plan := PlanKindTree(spec, kind, alg)
		if err := verifyKindPlan(plan, kind, 4096); err != nil {
			t.Logf("shape=%d coord=%d alg=%v: %v", shape8, coordPick, alg, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanKindAlltoallBitIdentical pins the refactor's regression
// contract at the plan layer: PlanKindTree(KindAlltoall) and the
// pre-suite PlanHierTree produce byte-for-byte the same plan — same
// messages, phases, tags, blocks, per-rank schedules — with no kind
// weighting attached, and the executor sizes every message exactly as
// before.
func TestPlanKindAlltoallBitIdentical(t *testing.T) {
	for shape := uint8(0); shape < 8; shape++ {
		spec, _ := fuzzSpec(shape, shape*3)
		for _, alg := range HierAlgorithms {
			old := PlanHierTree(spec, alg)
			neu := PlanKindTree(spec, KindAlltoall, alg)
			if neu.Kind != KindAlltoall || neu.kweights != nil || neu.vbytes != nil {
				t.Fatalf("alltoall plan grew kind annotations: kind=%v", neu.Kind)
			}
			if !reflect.DeepEqual(old.perRank, neu.perRank) {
				t.Fatalf("shape=%d %v: per-rank schedules differ", shape, alg)
			}
			if len(old.msgs) != len(neu.msgs) {
				t.Fatalf("shape=%d %v: %d vs %d messages", shape, alg, len(old.msgs), len(neu.msgs))
			}
			for i := range old.msgs {
				if !reflect.DeepEqual(*old.msgs[i], *neu.msgs[i]) {
					t.Fatalf("shape=%d %v: message %d differs", shape, alg, i)
				}
				if old.msgBytesAt(i, 777) != len(old.msgs[i].blocks)*777 {
					t.Fatalf("alltoall sizing changed for message %d", i)
				}
			}
		}
	}
}

// TestKindPlannedExecutionCompletes runs every suite kind's plan on a
// simulated 3-level grid end to end: the run terminates (the runtime
// panics on deadlock), takes positive time, and the fabric moved at
// least the kind's minimum aggregate payload.
func TestKindPlannedExecutionCompletes(t *testing.T) {
	p := cluster.GigabitEthernet()
	tree := cluster.ThreeLevel("t-kind3", p, 2, 2, 2,
		cluster.DefaultWAN(5*sim.Millisecond), cluster.DefaultWAN(20*sim.Millisecond))
	const m = 10_000
	for _, kind := range suiteKinds {
		for _, alg := range HierAlgorithms {
			g, err := cluster.BuildGridTree(tree, 7)
			if err != nil {
				t.Fatal(err)
			}
			plan := PlanKindTree(GridSpec(g), kind, alg)
			n := plan.Tree.NumRanks()
			w := mpi.NewWorld(g.Env, mpi.Config{})
			meas := Measure(w, 0, 1, func(r *mpi.Rank) { RunKindPlanned(r, plan, m) })
			if meas.Times[0] <= 0 {
				t.Fatalf("%s/%v: no time elapsed", kind, alg)
			}
			var wantPayload int64
			switch kind {
			case KindBroadcast, KindReduce:
				wantPayload = int64(n-1) * m // every non-root touched once
			case KindAllreduce:
				wantPayload = int64(n-1) * 2 * m
			default:
				wantPayload = int64(n*(n-1)) * m
			}
			if got := g.Env.Fabric.TotalStats().BytesSent; got < wantPayload {
				t.Fatalf("%s/%v: fabric moved %d bytes, want >= %d", kind, alg, got, wantPayload)
			}
		}
	}
}

// TestKindWireVolumeOrdering pins the per-kind payload model at the
// wire: on the same topology, Broadcast moves far fewer bytes than
// Allgather, which moves fewer than All-to-All relayed through the
// same coordinator plan (Allgather deduplicates per-source copies on
// shared hops).
func TestKindWireVolumeOrdering(t *testing.T) {
	p := cluster.GigabitEthernet()
	gp := cluster.Uniform("t-kindvol", p, 2, 4, cluster.DefaultWAN(10*sim.Millisecond))
	const m = 10_000
	vol := func(kind Kind) int64 {
		g, err := cluster.BuildGrid(gp, 9)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanKindTree(GridSpec(g), kind, HierGather)
		w := mpi.NewWorld(g.Env, mpi.Config{})
		Measure(w, 0, 1, func(r *mpi.Rank) { RunKindPlanned(r, plan, m) })
		return g.Env.Fabric.TotalStats().BytesSent
	}
	bcast, ag, ata := vol(KindBroadcast), vol(KindAllgather), vol(KindAlltoall)
	if !(bcast < ag && ag < ata) {
		t.Fatalf("wire volumes out of order: broadcast=%d allgather=%d alltoall=%d", bcast, ag, ata)
	}
}

// TestKindFailoverExactlyOnce kills a non-root coordinator mid-run for
// every suite kind and requires the epoch protocol to finish among the
// survivors with the kind's exactly-once delivery intact and the
// victim's obligations waived.
func TestKindFailoverExactlyOnce(t *testing.T) {
	p := cluster.GigabitEthernet()
	gp := cluster.Uniform("t-kindfail", p, 2, 3, cluster.DefaultWAN(10*sim.Millisecond))
	const m = 10_000
	for _, kind := range suiteKinds {
		g, err := cluster.BuildGrid(gp, 11)
		if err != nil {
			t.Fatal(err)
		}
		spec := GridSpec(g)
		// Leaf 1 relays through its middle rank with the others ranked as
		// standbys; the relay is the victim.
		rk := spec.Children[1].Ranks
		victim := rk[1]
		spec.Children[1].Coords = []int{victim}
		spec.Children[1].Standbys = []int{rk[2], rk[0]}
		plan := PlanKindTree(spec, kind, HierGather)
		n := plan.Tree.NumRanks()
		hosts := make([]string, n)
		for i := range hosts {
			hosts[i] = g.Env.Hosts[i].Name()
		}
		fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{
			{Host: hosts[victim], At: 2 * sim.Millisecond},
		}}
		if err := g.Env.Net.ApplyFaults(fs); err != nil {
			t.Fatal(err)
		}
		fr := NewFailoverRun(plan, m, FailoverConfig{
			Timeout: 100 * sim.Millisecond,
			IsDead:  func(rank int) bool { return fs.NodeLostBy(hosts[rank], g.Env.Sim.Now()) },
			Quench:  func(rank int) { g.Env.Fabric.Quench(rank) },
		})
		w := mpi.NewWorld(g.Env, mpi.Config{})
		w.Run(func(r *mpi.Rank) { fr.Run(r) })
		if err := fr.Verify(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res := fr.Result()
		if res.Epochs < 2 {
			t.Fatalf("%s: coordinator death handled without an epoch advance (epochs=%d)", kind, res.Epochs)
		}
		universe := wantUniverse(kind, n)
		waivable := 0
		for b := range universe {
			if b.Src == victim || b.Dst == victim {
				waivable++
			}
		}
		if res.DeliveredBlocks+res.WaivedBlocks != len(universe) {
			t.Fatalf("%s: delivered %d + waived %d != universe %d",
				kind, res.DeliveredBlocks, res.WaivedBlocks, len(universe))
		}
		if res.WaivedBlocks > waivable {
			t.Fatalf("%s: waived %d blocks, at most %d touch the victim",
				kind, res.WaivedBlocks, waivable)
		}
	}
}

// TestKindFailoverChaosProperty extends the resilience fuzz harness to
// the whole suite: random shapes × coordinator choices × node-loss
// schedules × kinds must always end in a verified run.
func TestKindFailoverChaosProperty(t *testing.T) {
	prop := func(seed int64, shape8, coordPick, losses8, kindPick uint8, at16 uint16) bool {
		clusters := 2 + int(shape8%2)
		nodesPer := 2 + int(shape8>>4)%3
		gp := cluster.Uniform("t-kindchaos", cluster.GigabitEthernet(), clusters, nodesPer,
			cluster.DefaultWAN(10*sim.Millisecond))
		g, err := cluster.BuildGrid(gp, seed)
		if err != nil {
			return false
		}
		spec := GridSpec(g)
		for i := range spec.Children {
			rk := spec.Children[i].Ranks
			ci := int(coordPick) % len(rk)
			spec.Children[i].Coords = []int{rk[ci]}
			for off := 1; off < len(rk); off++ {
				spec.Children[i].Standbys = append(spec.Children[i].Standbys, rk[(ci+off)%len(rk)])
			}
		}
		kind := suiteKinds[int(kindPick)%len(suiteKinds)]
		plan := PlanKindTree(spec, kind, HierGather)
		n := plan.Tree.NumRanks()
		losses := int(losses8 % 3)
		if losses > n-2 {
			losses = n - 2
		}
		hosts := make([]string, n)
		for i := range hosts {
			hosts[i] = g.Env.Hosts[i].Name()
		}
		fs := netsim.GenFaultSchedule(seed^0x7a11, nil, hosts, netsim.FaultGenConfig{
			NodeLosses: losses,
			Horizon:    sim.Time(at16%150+1) * sim.Millisecond,
		})
		if err := g.Env.Net.ApplyFaults(fs); err != nil {
			return false
		}
		fr := NewFailoverRun(plan, 10_000, FailoverConfig{
			Timeout: 150 * sim.Millisecond,
			IsDead:  func(rank int) bool { return fs.NodeLostBy(hosts[rank], g.Env.Sim.Now()) },
			Quench:  func(rank int) { g.Env.Fabric.Quench(rank) },
		})
		w := mpi.NewWorld(g.Env, mpi.Config{})
		w.Run(func(r *mpi.Rank) { fr.Run(r) })
		if err := fr.Verify(); err != nil {
			t.Logf("seed=%d kind=%s losses=%d: %v", seed, kind, losses, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestParseKindRoundTrips pins the flag/store spelling of every kind.
func TestParseKindRoundTrips(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("gatherv"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}
