package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// The collective suite on TreeSpec. PlanHierTree compiles the
// hierarchical All-to-All; the other collectives a grid schedules —
// Allgather, Broadcast, Reduce, Reduce-scatter, Allreduce — route
// through the same coordinator trees (the MagPIe/LaPIe per-collective
// wide-area plans). PlanKindTree generalizes the builder: every kind
// reuses the rendezvous-safe phase machinery, the coordinator sets and
// standbys, and the block-annotated exactly-once verification; what
// changes per kind is the block flow and how many bytes each message
// carries.
//
// Allgather and Reduce-scatter are the gather/scatter halves of the
// All-to-All structure: the message set and phases are identical, but a
// message's payload collapses to one m-byte contribution per distinct
// source (Allgather forwards each source's block once) or per distinct
// destination (Reduce-scatter combines partial sums addressed to the
// same rank). Broadcast and Reduce are rooted relays over the same
// tree's delegates, and Allreduce is Reduce∘Broadcast over that relay —
// the reduction converges on the root, then the result fans back out.

// Kind identifies a collective operation of the suite. The zero value
// is KindAlltoall, so plans compiled before the suite existed keep
// their meaning.
type Kind int

const (
	// KindAlltoall is the uniform All-to-All: every rank owes every
	// other rank m bytes.
	KindAlltoall Kind = iota
	// KindAlltoallv is the irregular All-to-All over a SizeMatrix
	// (PlanHierTreeV).
	KindAlltoallv
	// KindAllgather delivers every rank's m-byte contribution to every
	// rank.
	KindAllgather
	// KindBroadcast delivers the root's m bytes to every rank.
	KindBroadcast
	// KindReduce combines every rank's m-byte contribution at the root.
	KindReduce
	// KindReduceScatter combines contributions and leaves each rank its
	// own m-byte share of the result.
	KindReduceScatter
	// KindAllreduce combines every contribution and delivers the m-byte
	// result to every rank (Reduce∘Broadcast).
	KindAllreduce
)

// Kinds lists the suite in a stable order.
var Kinds = []Kind{
	KindAlltoall, KindAlltoallv, KindAllgather, KindBroadcast,
	KindReduce, KindReduceScatter, KindAllreduce,
}

// String names the kind as used in flags, store keys and spans.
func (k Kind) String() string {
	switch k {
	case KindAlltoall:
		return "alltoall"
	case KindAlltoallv:
		return "alltoallv"
	case KindAllgather:
		return "allgather"
	case KindBroadcast:
		return "broadcast"
	case KindReduce:
		return "reduce"
	case KindReduceScatter:
		return "reduce-scatter"
	case KindAllreduce:
		return "allreduce"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("coll: unknown collective kind %q", s)
}

// Rooted reports whether the kind has a distinguished root rank
// (Broadcast and Reduce; plans fix it at rank 0).
func (k Kind) Rooted() bool { return k == KindBroadcast || k == KindReduce }

// PlanKindTree compiles the hierarchical plan of one collective kind
// over a topology tree. KindAlltoall compiles exactly the PlanHierTree
// plan (same messages, phases, tags and sizes). Rooted kinds fix the
// root at rank 0. KindAlltoallv is rejected: irregular plans need a
// size matrix — use PlanHierTreeV.
func PlanKindTree(spec TreeSpec, kind Kind, alg HierAlgorithm) *HierPlan {
	switch kind {
	case KindAlltoall:
		return PlanHierTree(spec, alg)
	case KindAlltoallv:
		panic("coll: Alltoallv plans bind a size matrix; use PlanHierTreeV")
	case KindAllgather:
		p := PlanHierTree(spec, alg)
		p.Kind = kind
		p.kweights = blockWeights(p.msgs, distinctSrcs)
		return p
	case KindReduceScatter:
		p := PlanHierTree(spec, alg)
		p.Kind = kind
		p.kweights = blockWeights(p.msgs, distinctDsts)
		return p
	case KindBroadcast, KindReduce, KindAllreduce:
		return planRooted(spec, kind, alg)
	default:
		panic(fmt.Sprintf("coll: unknown collective kind %d", int(kind)))
	}
}

// blockWeights computes each message's payload multiple of m under a
// per-kind weighting of its carried blocks.
func blockWeights(msgs []*hierMsg, weigh func([]Block) int) []int {
	out := make([]int, len(msgs))
	for i, m := range msgs {
		out[i] = weigh(m.blocks)
	}
	return out
}

// distinctSrcs counts distinct block sources: an Allgather message
// forwards one m-byte contribution per source it covers, however many
// destinations each is bound for.
func distinctSrcs(blocks []Block) int {
	seen := make(map[int]bool, len(blocks))
	for _, b := range blocks {
		seen[b.Src] = true
	}
	return len(seen)
}

// distinctDsts counts distinct block destinations: a Reduce-scatter
// message combines same-destination contributions into one m-byte
// partial sum before it travels.
func distinctDsts(blocks []Block) int {
	seen := make(map[int]bool, len(blocks))
	for _, b := range blocks {
		seen[b.Dst] = true
	}
	return len(seen)
}

// relayEdge is one hop of the rooted delegate relay: parent holds the
// payload (or receives the partial) for the subtree whose ranks are
// covers, child is the subtree's delegate. Levels count from the root's
// sends (level 0); broadcast runs edges top-down, reduce bottom-up.
type relayEdge struct {
	parent, child int
	level         int
	covers        []int
}

// relayTree builds the delegate relay of a compiled topology rooted at
// rank root: at each node the current holder forwards to every child
// subtree's delegate — the holder itself when the subtree contains it,
// else the subtree's first coordinator (so selected inner-tier and leaf
// coordinator sets steer the relay) — and leaves fan out to members.
func relayTree(tp TreePlacement, root int) []relayEdge {
	var edges []relayEdge
	contains := func(sorted []int, r int) bool {
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			if sorted[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(sorted) && sorted[lo] == r
	}
	delegate := func(v *pnode, src int) int {
		if contains(v.ranks, src) {
			return src
		}
		return v.coords[0]
	}
	var build func(v *pnode, src, level int)
	build = func(v *pnode, src, level int) {
		if v.leaf() {
			for _, r := range v.ranks {
				if r != src {
					edges = append(edges, relayEdge{parent: src, child: r, level: level, covers: []int{r}})
				}
			}
			return
		}
		for _, c := range v.children {
			d := delegate(c, src)
			if d != src {
				edges = append(edges, relayEdge{parent: src, child: d, level: level, covers: c.ranks})
			}
			build(c, d, level+1)
		}
	}
	build(tp.root, root, 0)
	return edges
}

// planRooted compiles Broadcast, Reduce, or their composition Allreduce
// over the topology's delegate relay, rooted at rank 0. Every message
// carries exactly m bytes (a broadcast payload is replicated, a
// reduction forwards one combined partial), so kweights is all ones.
//
// Broadcast edges run top-down: a level-ℓ hop is received in phase ℓ
// and forwarded in phase ℓ+1, so each rank's own phase order encodes
// the data dependency. Reduce mirrors the relay bottom-up: a level-ℓ
// hop sends in phase L−ℓ after its children's partials arrived in
// L−ℓ−1. Allreduce appends the broadcast phases after the reduce ones.
// Blocks carry the delivery obligations the failover runtime and the
// property tests verify: (src → root) per contribution on the way up,
// (root → dst) per result copy on the way down, each delivered exactly
// once at its terminal rank.
func planRooted(spec TreeSpec, kind Kind, alg HierAlgorithm) *HierPlan {
	const root = 0
	tp := NewTreePlacement(spec)
	edges := relayTree(tp, root)
	maxLevel := 0
	for _, e := range edges {
		if e.level > maxLevel {
			maxLevel = e.level
		}
	}
	b := newPlanBuilder(tp.NumRanks())
	emitReduce := func(phaseOff int) {
		for _, e := range edges {
			blocks := make([]Block, 0, len(e.covers))
			for _, j := range e.covers {
				blocks = append(blocks, Block{Src: j, Dst: root})
			}
			ph := phaseOff + maxLevel - e.level
			b.msg(e.child, ph, e.parent, ph, blocks)
		}
	}
	emitBcast := func(phaseOff int) {
		for _, e := range edges {
			blocks := make([]Block, 0, len(e.covers))
			for _, j := range e.covers {
				blocks = append(blocks, Block{Src: root, Dst: j})
			}
			ph := phaseOff + e.level
			b.msg(e.parent, ph, e.child, ph, blocks)
		}
	}
	switch kind {
	case KindBroadcast:
		emitBcast(0)
	case KindReduce:
		emitReduce(0)
	case KindAllreduce:
		emitReduce(0)
		emitBcast(maxLevel + 1)
	}
	p := &HierPlan{Alg: alg, Kind: kind, Place: tp.Placement(), Tree: tp, perRank: b.plans, msgs: b.msgs}
	p.kweights = make([]int, len(p.msgs))
	for i := range p.kweights {
		p.kweights[i] = 1
	}
	return p
}

// RunKindPlanned executes a compiled per-kind plan on the calling rank:
// per-rank message size m for uniform kinds, the bound matrix for
// Alltoallv plans (m is then ignored). Every rank of the plan's
// topology must call it with the same plan and m.
func RunKindPlanned(r *mpi.Rank, plan *HierPlan, m int) {
	RunKindPlannedTraced(r, plan, m, nil)
}

// RunKindPlannedTraced is RunKindPlanned recording the calling rank's
// phase boundaries into pt (built for this plan); nil pt degenerates to
// the untraced executor.
func RunKindPlannedTraced(r *mpi.Rank, plan *HierPlan, m int, pt *PhaseTrace) {
	if plan.Place.NumRanks() != r.Size() {
		panic(fmt.Sprintf("coll: plan for %d ranks executed on world of %d",
			plan.Place.NumRanks(), r.Size()))
	}
	runPlanPhases(r, plan, m, pt)
}

// RunKindFlat executes the flat (non-hierarchical) kernel of a kind:
// the baseline the planner prices as FlatDirect. Rooted kinds use rank
// 0, matching PlanKindTree. KindAlltoallv is rejected — flat irregular
// exchanges go through AlltoallV.
func RunKindFlat(r *mpi.Rank, kind Kind, m int, alg Algorithm) {
	switch kind {
	case KindAlltoall:
		Alltoall(r, m, alg)
	case KindAllgather:
		Allgather(r, m)
	case KindBroadcast:
		Bcast(r, 0, m)
	case KindReduce:
		Reduce(r, 0, m)
	case KindReduceScatter:
		ReduceScatter(r, m)
	case KindAllreduce:
		Allreduce(r, m)
	default:
		panic(fmt.Sprintf("coll: no flat kernel for kind %s", kind))
	}
}

// KindMsgBytes sizes a message carrying blocks under a kind's payload
// model with per-rank contribution m: the weighting PlanKindTree bakes
// into kweights, exposed for recovery replanning over block subsets.
func KindMsgBytes(kind Kind, blocks []Block, m int) int {
	if len(blocks) == 0 {
		return 0
	}
	switch kind {
	case KindAllgather:
		return distinctSrcs(blocks) * m
	case KindReduceScatter:
		return distinctDsts(blocks) * m
	case KindBroadcast, KindReduce, KindAllreduce:
		return m
	default:
		return len(blocks) * m
	}
}

// Universe returns the plan's delivery obligations: the deduplicated
// union of all carried blocks. For All-to-All this is every ordered
// rank pair; rooted kinds restrict it to the blocks their flow defines.
func (p *HierPlan) Universe() []Block {
	seen := make(map[Block]bool)
	var out []Block
	for _, m := range p.msgs {
		for _, b := range m.blocks {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	return out
}
