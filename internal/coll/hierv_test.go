package coll

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// verifyHierPlanV executes a size-matrix-bound plan symbolically, the
// way AlltoallHierPlannedV runs it: messages whose bound payload is
// zero do not exist (both endpoints skip them), every other message
// must satisfy rendezvous-safe phase ordering. It checks:
//
//  1. payload binding: each message's bound bytes equal the sum of its
//     blocks' matrix entries, and a zero-payload message carries only
//     zero-byte blocks (skipping it can never lose data);
//  2. progress: every rank finishes all phases with the zero messages
//     removed (pruning only relaxes dependencies, but this proves it);
//  3. causality: a rank holds every nonzero block it sends;
//  4. exactly-once byte delivery: each (src, dst) pair's bytes arrive
//     at dst in exactly one message, and afterwards every rank holds
//     every nonzero block addressed to it.
func verifyHierPlanV(t *testing.T, plan *HierPlan, sz SizeMatrix) {
	t.Helper()
	if !plan.Irregular() {
		t.Fatal("plan has no bound size matrix")
	}
	n := plan.Place.NumRanks()

	// 1. Payload binding.
	for i, m := range plan.msgs {
		want := 0
		for _, blk := range m.blocks {
			want += sz.At(blk.Src, blk.Dst)
		}
		if plan.vbytes[i] != want {
			t.Fatalf("%v: message %d->%d bound to %d bytes, blocks sum to %d",
				plan.Alg, m.from, m.to, plan.vbytes[i], want)
		}
		if plan.vbytes[i] == 0 {
			for _, blk := range m.blocks {
				if sz.At(blk.Src, blk.Dst) != 0 {
					t.Fatalf("%v: zero-payload message %d->%d carries nonzero block %+v",
						plan.Alg, m.from, m.to, blk)
				}
			}
		}
	}

	// The live (executed) message set.
	type liveMsg struct{ *hierMsg }
	var live []liveMsg
	for i, m := range plan.msgs {
		if plan.vbytes[i] > 0 {
			live = append(live, liveMsg{m})
		}
	}

	hold := make([]map[Block]bool, n)
	for i := 0; i < n; i++ {
		hold[i] = map[Block]bool{}
		for j := 0; j < n; j++ {
			if j != i {
				hold[i][Block{Src: i, Dst: j}] = true
			}
		}
	}
	progress := make([]int, n)
	checkSendsHeld := func(r, ph int) {
		for _, m := range live {
			if m.from != r || m.fromPhase != ph {
				continue
			}
			for _, blk := range m.blocks {
				if sz.At(blk.Src, blk.Dst) > 0 && !hold[r][blk] {
					t.Fatalf("%v: rank %d posts nonzero block %+v in phase %d without holding it",
						plan.Alg, r, blk, ph)
				}
			}
		}
	}
	for r := 0; r < n; r++ {
		checkSendsHeld(r, 0)
	}
	for {
		advanced := false
		for r := 0; r < n; r++ {
			ph := progress[r]
			if ph >= len(plan.perRank[r]) {
				continue
			}
			ready := true
			for _, m := range live {
				if m.to == r && m.toPhase == ph && progress[m.from] < m.fromPhase {
					ready = false
					break
				}
				if m.from == r && m.fromPhase == ph && progress[m.to] < m.toPhase {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			for _, m := range live {
				if m.to == r && m.toPhase == ph {
					for _, blk := range m.blocks {
						hold[r][blk] = true
					}
				}
			}
			progress[r]++
			if progress[r] < len(plan.perRank[r]) {
				checkSendsHeld(r, progress[r])
			}
			advanced = true
		}
		if !advanced {
			break
		}
	}
	for r := 0; r < n; r++ {
		if progress[r] != len(plan.perRank[r]) {
			t.Fatalf("%v: deadlock after zero-message pruning, rank %d stuck at phase %d/%d",
				plan.Alg, r, progress[r], len(plan.perRank[r]))
		}
	}

	// 4. Exactly-once byte delivery.
	delivered := map[Block]int{}
	for _, m := range live {
		for _, blk := range m.blocks {
			if blk.Dst == m.to {
				delivered[blk]++
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			blk := Block{Src: i, Dst: j}
			if sz.At(i, j) > 0 {
				if got := delivered[blk]; got != 1 {
					t.Fatalf("%v: %d bytes of pair %d->%d delivered by %d messages, want exactly 1",
						plan.Alg, sz.At(i, j), i, j, got)
				}
				if !hold[j][blk] {
					t.Fatalf("%v: nonzero block %d->%d never reached rank %d", plan.Alg, i, j, j)
				}
			}
		}
	}
}

// TestHierPlanVUniformByteIdentical pins the v-path's anchor: compiled
// from a uniform matrix, PlanHierTreeV must be byte-identical to
// PlanHierTree — same fingerprint (phases, messages, blocks, tags) and
// every message bound to exactly blocks·m bytes.
func TestHierPlanVUniformByteIdentical(t *testing.T) {
	const m = 4096
	for ti, spec := range treeSpecs() {
		n := len(specRanks(spec))
		for _, alg := range HierAlgorithms {
			base := PlanHierTree(spec, alg)
			v := PlanHierTreeV(spec, alg, UniformSizeMatrix(n, m))
			if got, want := planFingerprint(v), planFingerprint(base); got != want {
				t.Fatalf("tree %d %v: uniform v-plan structure diverged:\n--- v ---\n%s--- base ---\n%s",
					ti, alg, got, want)
			}
			for i, msg := range v.msgs {
				if v.vbytes[i] != len(msg.blocks)*m {
					t.Fatalf("tree %d %v: message %d->%d bound to %d bytes, want blocks·m = %d",
						ti, alg, msg.from, msg.to, v.vbytes[i], len(msg.blocks)*m)
				}
			}
			if base.MessageBytes(m) != v.MessageBytes(0) {
				t.Fatalf("tree %d %v: MessageBytes disagree: uniform %d vs bound %d",
					ti, alg, base.MessageBytes(m), v.MessageBytes(0))
			}
		}
	}
}

// randomSizeMatrix draws per-pair sizes with a heavy zero fraction and
// a wide spread, the adversarial shape for zero-skip plumbing.
func randomSizeMatrix(rng *rand.Rand, n int) SizeMatrix {
	sz := NewSizeMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			switch rng.Intn(4) {
			case 0: // zero pair
			case 1:
				sz.Set(i, j, 1+rng.Intn(64))
			default:
				sz.Set(i, j, 1+rng.Intn(64<<10))
			}
		}
	}
	return sz
}

// TestHierTreeVPermutation checks the v-plan invariants across the
// fixed multi-level topologies with skewed and zero-heavy matrices.
func TestHierTreeVPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, spec := range treeSpecs() {
		n := len(specRanks(spec))
		mats := []SizeMatrix{
			UniformSizeMatrix(n, 2048),
			NewSizeMatrix(n), // all-zero: every message pruned
			randomSizeMatrix(rng, n),
		}
		for _, sz := range mats {
			for _, alg := range HierAlgorithms {
				verifyHierPlanV(t, PlanHierTreeV(spec, alg, sz), sz)
			}
		}
	}
}

// TestHierTreeVCoordinatorFuzz fuzzes the full space at once: random
// topology trees, random rank placements, random coordinator
// assignments (non-lowest, multi-coordinator, inner tiers) and random
// zero-heavy size matrices — asserting exactly-once delivery of every
// pair's bytes and deadlock-free progress after zero-message pruning.
func TestHierTreeVCoordinatorFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	var build func(depthLeft int) TreeSpec
	var leafCount int
	build = func(depthLeft int) TreeSpec {
		if depthLeft == 0 || rng.Intn(3) == 0 {
			leafCount++
			return TreeSpec{Ranks: []int{}}
		}
		k := rng.Intn(3) + 1
		var s TreeSpec
		for c := 0; c < k; c++ {
			s.Children = append(s.Children, build(depthLeft-1))
		}
		return s
	}
	fill := func(s *TreeSpec, perLeaf [][]int) {
		idx := 0
		var walk func(v *TreeSpec)
		walk = func(v *TreeSpec) {
			if len(v.Children) == 0 {
				v.Ranks = perLeaf[idx]
				idx++
				return
			}
			for i := range v.Children {
				walk(&v.Children[i])
			}
		}
		walk(s)
	}
	var assignCoords func(s *TreeSpec)
	assignCoords = func(s *TreeSpec) {
		for i := range s.Children {
			assignCoords(&s.Children[i])
		}
		if rng.Intn(2) == 0 {
			return
		}
		ranks := specRanks(*s)
		rng.Shuffle(len(ranks), func(i, j int) { ranks[i], ranks[j] = ranks[j], ranks[i] })
		c := rng.Intn(3) + 1
		if c > len(ranks) {
			c = len(ranks)
		}
		s.Coords = append([]int(nil), ranks[:c]...)
	}
	for iter := 0; iter < 60; iter++ {
		leafCount = 0
		spec := build(3)
		if leafCount == 0 {
			continue
		}
		n := leafCount + rng.Intn(10)
		perm := rng.Perm(n)
		perLeaf := make([][]int, leafCount)
		for l := 0; l < leafCount; l++ {
			perLeaf[l] = []int{perm[l]}
		}
		for i := leafCount; i < n; i++ {
			l := rng.Intn(leafCount)
			perLeaf[l] = append(perLeaf[l], perm[i])
		}
		fill(&spec, perLeaf)
		assignCoords(&spec)
		sz := randomSizeMatrix(rng, n)
		for _, alg := range HierAlgorithms {
			verifyHierPlanV(t, PlanHierTreeV(spec, alg, sz), sz)
		}
	}
}

// TestAlltoallHierPlannedVUniformMatchesUniform runs the same uniform
// exchange through both executors on identically seeded grids: the
// v-executor with a uniform matrix must reproduce the uniform
// executor's simulated completion time exactly (the simulation is
// deterministic, so any divergence means the wire traffic differs).
func TestAlltoallHierPlannedVUniformMatchesUniform(t *testing.T) {
	const m = 20_000
	gp := cluster.Uniform("t-hierv-uni", cluster.WANTuned(cluster.GigabitEthernet()), 2, 3,
		cluster.DefaultWAN(10*sim.Millisecond))
	for _, alg := range HierAlgorithms {
		g1, err := cluster.BuildGrid(gp, 5)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanHier(NewPlacement(g1.ClusterOf), alg)
		w1 := mpi.NewWorld(g1.Env, mpi.Config{})
		uni := Measure(w1, 0, 1, func(r *mpi.Rank) { AlltoallHierPlanned(r, plan, m) })

		g2, err := cluster.BuildGrid(gp, 5)
		if err != nil {
			t.Fatal(err)
		}
		vplan := PlanHierV(NewPlacement(g2.ClusterOf), alg, UniformSizeMatrix(6, m))
		w2 := mpi.NewWorld(g2.Env, mpi.Config{})
		v := Measure(w2, 0, 1, func(r *mpi.Rank) { AlltoallHierPlannedV(r, vplan) })

		if uni.Mean() != v.Mean() {
			t.Fatalf("%v: v-executor with uniform matrix took %.6fs, uniform executor %.6fs",
				alg, v.Mean(), uni.Mean())
		}
	}
}

// TestAlltoallVOnGrid runs the irregular exchanges end-to-end on the
// mpi runtime — flat AlltoallV and both hierarchical v-plans — with a
// hotspot matrix and with a block-diagonal matrix whose cross-cluster
// entries are all zero (so the hierarchical plans prune every WAN
// message and must still complete, faster than one WAN latency).
func TestAlltoallVOnGrid(t *testing.T) {
	gp := cluster.Uniform("t-allv", cluster.WANTuned(cluster.GigabitEthernet()), 2, 3,
		cluster.DefaultWAN(10*sim.Millisecond))
	n := gp.TotalNodes()

	hotspot := UniformSizeMatrix(n, 10_000)
	for j := 1; j < n; j++ {
		hotspot.Set(0, j, 80_000)
	}
	localOnly := NewSizeMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && i/3 == j/3 { // clusters are rank blocks of 3
				localOnly.Set(i, j, 10_000)
			}
		}
	}

	for _, alg := range HierAlgorithms {
		g, err := cluster.BuildGrid(gp, 5)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanHierV(NewPlacement(g.ClusterOf), alg, hotspot)
		w := mpi.NewWorld(g.Env, mpi.Config{})
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { AlltoallHierPlannedV(r, plan) })
		if meas.Mean() <= 0.010 || meas.Mean() > 5 {
			t.Fatalf("%v hotspot: implausible completion %.4fs", alg, meas.Mean())
		}

		g2, err := cluster.BuildGrid(gp, 5)
		if err != nil {
			t.Fatal(err)
		}
		plan2 := PlanHierV(NewPlacement(g2.ClusterOf), alg, localOnly)
		w2 := mpi.NewWorld(g2.Env, mpi.Config{})
		meas2 := Measure(w2, 0, 1, func(r *mpi.Rank) { AlltoallHierPlannedV(r, plan2) })
		// The makespan includes the pre-measurement barrier's exit skew
		// (its last dissemination hop crosses the 10 ms WAN), so "no WAN
		// exchange traffic" shows up as ~one latency, not zero — but well
		// below any plan that actually moves payload across the WAN
		// (aggregated rendezvous transfers pay several round trips).
		if meas2.Mean() <= 0 || meas2.Mean() >= 0.020 {
			t.Fatalf("%v local-only: completion %.4fs, want positive and within barrier skew of one WAN latency", alg, meas2.Mean())
		}
	}

	// Flat v-exchange, both algorithms and the fallback resolution.
	if got := Bruck.EffectiveV(); got != Direct {
		t.Fatalf("Bruck.EffectiveV() = %v, want Direct fallback", got)
	}
	if got := PostAll.EffectiveV(); got != PostAll {
		t.Fatalf("PostAll.EffectiveV() = %v, want PostAll", got)
	}
	for _, alg := range []Algorithm{Direct, PostAll} {
		g, err := cluster.BuildGrid(gp, 7)
		if err != nil {
			t.Fatal(err)
		}
		w := mpi.NewWorld(g.Env, mpi.Config{})
		effs := make([]Algorithm, n)
		meas := Measure(w, 0, 1, func(r *mpi.Rank) { effs[r.ID()] = AlltoallV(r, hotspot, alg) })
		if meas.Mean() <= 0.010 || meas.Mean() > 5 {
			t.Fatalf("AlltoallV %v: implausible completion %.4fs", alg, meas.Mean())
		}
		for id, eff := range effs {
			if eff != alg.EffectiveV() {
				t.Fatalf("AlltoallV rank %d ran %v, want %v", id, eff, alg.EffectiveV())
			}
		}
	}
}
