package coll

import (
	"fmt"

	"repro/internal/mpi"
)

// Irregular (All-to-Allv) execution paths. The plan *structure* of a
// hierarchical exchange — which blocks travel in which message, through
// which coordinators, in which phase — depends only on the topology,
// never on sizes; what a SizeMatrix changes is how many bytes each
// message carries, and whether it needs to exist at all. PlanHierTreeV
// therefore compiles the exact same plan as PlanHierTree and then binds
// the matrix: each message's payload is the sum of its blocks' (src,
// dst) entries, and messages whose payload is zero are skipped by both
// endpoints at execution (the plan is shared, so the skip is
// symmetric). On a uniform matrix every message carries blocks·m bytes
// — byte-identical to the uniform plan, pinned by tests.

// PlanHierTreeV compiles the hierarchical All-to-Allv plan for an
// arbitrary topology tree: the PlanHierTree plan of the same spec with
// each message's payload bound to the matrix's per-block byte counts.
// It panics when the matrix does not cover exactly the spec's ranks (a
// programming error, like a malformed spec); BindSizes is the
// error-returning form for callers validating external input.
func PlanHierTreeV(spec TreeSpec, alg HierAlgorithm, sz SizeMatrix) *HierPlan {
	plan := PlanHierTree(spec, alg)
	if err := plan.BindSizes(sz); err != nil {
		panic(err.Error())
	}
	return plan
}

// BindSizes binds a size matrix to a compiled plan in place: each
// message's payload becomes the sum of its blocks' (src, dst) entries,
// and the plan then executes via AlltoallHierPlannedV. It errors when
// the matrix's rank count does not match the plan's.
func (p *HierPlan) BindSizes(sz SizeMatrix) error {
	if sz.NumRanks() != p.Place.NumRanks() {
		return fmt.Errorf("coll: size matrix covers %d ranks, topology has %d",
			sz.NumRanks(), p.Place.NumRanks())
	}
	vb := make([]int, len(p.msgs))
	for i, m := range p.msgs {
		t := 0
		for _, blk := range m.blocks {
			t += sz.At(blk.Src, blk.Dst)
		}
		vb[i] = t
	}
	p.vbytes = vb
	p.Kind = KindAlltoallv
	return nil
}

// PlanHierV compiles the hierarchical All-to-Allv plan for a flat
// two-level placement. It is sugar for PlanHierTreeV over FlatSpec.
func PlanHierV(p Placement, alg HierAlgorithm, sz SizeMatrix) *HierPlan {
	return PlanHierTreeV(FlatSpec(p), alg, sz)
}

// Irregular reports whether the plan was compiled from a SizeMatrix
// (PlanHierTreeV) and therefore executes via AlltoallHierPlannedV.
func (p *HierPlan) Irregular() bool { return p.vbytes != nil }

// MessageBytes returns the plan's total payload volume: per-block bytes
// summed over every message (so a relayed byte counts once per hop).
// For uniform plans the per-pair size m prices every block.
func (p *HierPlan) MessageBytes(m int) int {
	if p.vbytes != nil {
		t := 0
		for _, b := range p.vbytes {
			t += b
		}
		return t
	}
	t := 0
	for _, msg := range p.msgs {
		t += len(msg.blocks) * m
	}
	return t
}

// AlltoallHierPlannedV executes a size-matrix-bound plan
// (PlanHierTreeV) on the calling rank. Messages whose bound payload is
// zero are skipped on both ends — a pair that owes no bytes pays no
// start-up. Every rank of the plan's topology must call it with the
// same plan.
func AlltoallHierPlannedV(r *mpi.Rank, plan *HierPlan) {
	if plan.vbytes == nil {
		panic("coll: plan has no bound size matrix; compile with PlanHierTreeV")
	}
	if plan.Place.NumRanks() != r.Size() {
		panic(fmt.Sprintf("coll: plan for %d ranks executed on world of %d",
			plan.Place.NumRanks(), r.Size()))
	}
	runPlanPhases(r, plan, 0, nil)
}

// EffectiveV resolves the algorithm that actually runs an irregular
// exchange: Direct and PostAll generalize to per-pair sizes naturally,
// while Bruck's store-and-forward rounds and Pairwise's XOR pattern
// assume uniform blocks and fall back to Direct.
func (a Algorithm) EffectiveV() Algorithm {
	if a == PostAll {
		return PostAll
	}
	return Direct
}

// AlltoallV runs one irregular total exchange with per-pair byte counts
// sz using the chosen algorithm. Pairs owing zero bytes exchange no
// message (and pay no start-up). Every rank must call it with the same
// matrix; the algorithm actually executed is returned (see EffectiveV).
func AlltoallV(r *mpi.Rank, sz SizeMatrix, alg Algorithm) Algorithm {
	if sz.NumRanks() != r.Size() {
		panic(fmt.Sprintf("coll: size matrix covers %d ranks, world has %d",
			sz.NumRanks(), r.Size()))
	}
	eff := alg.EffectiveV()
	switch eff {
	case Direct:
		alltoallDirectV(r, sz)
	case PostAll:
		alltoallPostAllV(r, sz)
	default:
		panic("coll: unknown algorithm")
	}
	return eff
}

// alltoallDirectV is Algorithm 1 with per-pair sizes: the same n−1
// rotation rounds, each waiting for its own send and receive, with
// zero-byte directions skipped (both sides read the same matrix, so
// skips always match).
func alltoallDirectV(r *mpi.Rank, sz SizeMatrix) {
	n := r.Size()
	for t := 1; t < n; t++ {
		dst := (r.ID() + t) % n
		src := (r.ID() - t + n) % n
		qs := make([]*mpi.Request, 0, 2)
		if sz.At(src, r.ID()) > 0 {
			qs = append(qs, r.Irecv(src, tagAlltoall+int32(t)))
		}
		if b := sz.At(r.ID(), dst); b > 0 {
			qs = append(qs, r.Isend(dst, tagAlltoall+int32(t), b))
		}
		r.WaitAll(qs...)
	}
}

// alltoallPostAllV posts every nonzero receive and send at once and
// waits for all of them.
func alltoallPostAllV(r *mpi.Rank, sz SizeMatrix) {
	n := r.Size()
	qs := make([]*mpi.Request, 0, 2*(n-1))
	for t := 1; t < n; t++ {
		src := (r.ID() - t + n) % n
		if sz.At(src, r.ID()) > 0 {
			qs = append(qs, r.Irecv(src, tagAlltoall+int32(t)))
		}
	}
	for t := 1; t < n; t++ {
		dst := (r.ID() + t) % n
		if b := sz.At(r.ID(), dst); b > 0 {
			qs = append(qs, r.Isend(dst, tagAlltoall+int32(t), b))
		}
	}
	r.WaitAll(qs...)
}
