package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is a scheduled callback. seq breaks timestamp ties so that events
// scheduled earlier run earlier, which makes runs reproducible.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the pending event queue. It is not
// safe for concurrent use: all interaction must happen from the event loop
// goroutine or from the single active simulated process.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	ctrl    chan struct{} // hand-back channel from active proc to the loop
	procs   []*Proc
	stopped bool
	events  uint64 // total events executed, for diagnostics
}

// New creates a simulator whose random stream is seeded with seed.
// Identical seeds yield identical simulations.
func New(seed int64) *Simulator {
	return &Simulator{
		rng:  rand.New(rand.NewSource(seed)),
		ctrl: make(chan struct{}),
	}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random stream.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Events returns the number of events executed so far.
func (s *Simulator) Events() uint64 { return s.events }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the caller; it is clamped to the present to keep the clock
// monotonic.
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in timestamp order until the queue drains or Stop is
// called. It returns the final simulated time.
func (s *Simulator) Run() Time {
	for len(s.queue) > 0 && !s.stopped {
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		s.events++
		ev.fn()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline, then returns.
// The clock is advanced to deadline even if the queue drained earlier.
func (s *Simulator) RunUntil(deadline Time) Time {
	for len(s.queue) > 0 && !s.stopped && s.queue[0].at <= deadline {
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		s.events++
		ev.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Blocked returns the processes that are parked waiting for a wakeup.
// After Run returns with an empty queue, a non-empty result indicates a
// deadlock in the simulated program.
func (s *Simulator) Blocked() []*Proc {
	var out []*Proc
	for _, p := range s.procs {
		if p.state == procParked {
			out = append(out, p)
		}
	}
	return out
}

// MustQuiesce panics if any spawned process has not finished. Tests use it
// to assert deadlock-freedom of simulated protocols.
func (s *Simulator) MustQuiesce() {
	if blocked := s.Blocked(); len(blocked) > 0 {
		names := make([]string, len(blocked))
		for i, p := range blocked {
			names[i] = p.name
		}
		panic(fmt.Sprintf("sim: deadlock, %d process(es) still blocked: %v", len(blocked), names))
	}
}
