package sim

import "fmt"

// Mode selects the simulation engine a network simulation runs under.
// The packet engine is the ground truth: every segment, ACK and queue
// occupancy is an event. The fluid engine prices large steady-state
// transfers analytically (a flow with a rate, not a packet train) and
// exists because characterization wall-clock is dominated by exactly
// those transfers; small messages always stay packet-level (see
// netsim.FluidConfig.Threshold).
type Mode int

const (
	// ModePacket simulates every packet discretely (the default).
	ModePacket Mode = iota
	// ModeFluid prices large WAN transfers as analytic flows and falls
	// back to ModePacket below the configured byte threshold.
	ModeFluid
)

// String names the mode as used in flags and benchmark output.
func (m Mode) String() string {
	switch m {
	case ModePacket:
		return "packet"
	case ModeFluid:
		return "fluid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a mode name as accepted on command lines
// ("packet" or "fluid").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "packet", "":
		return ModePacket, nil
	case "fluid":
		return ModeFluid, nil
	default:
		return ModePacket, fmt.Errorf("sim: unknown mode %q (want packet or fluid)", s)
	}
}
