package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("final time = %v, want 30", s.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken events not FIFO at %d: %v", i, order[:i+1])
		}
	}
}

func TestSchedulingInsideEvents(t *testing.T) {
	s := New(1)
	var hits []Time
	s.At(10, func() {
		s.After(5, func() { hits = append(hits, s.Now()) })
		s.After(1, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 11 || hits[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", hits)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	s := New(1)
	fired := Time(-1)
	s.At(100, func() {
		s.At(50, func() { fired = s.Now() }) // in the past: clamp to now
	})
	s.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var count int
	for i := 1; i <= 10; i++ {
		s.At(Time(i*10), func() { count++ })
	}
	s.RunUntil(50)
	if count != 5 {
		t.Fatalf("RunUntil(50) executed %d events, want 5", count)
	}
	if s.Now() != 50 {
		t.Fatalf("clock = %v, want 50", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("drain executed %d total, want 10", count)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	var count int
	s.At(1, func() { count++; s.Stop() })
	s.At(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt the loop: count=%d", count)
	}
}

func TestProcSleep(t *testing.T) {
	s := New(1)
	var wake []Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10)
		wake = append(wake, p.Now())
		p.Sleep(25)
		wake = append(wake, p.Now())
	})
	s.Run()
	if len(wake) != 2 || wake[0] != 10 || wake[1] != 35 {
		t.Fatalf("sleep wakeups = %v, want [10 35]", wake)
	}
	s.MustQuiesce()
}

func TestProcInterleaving(t *testing.T) {
	s := New(1)
	var trace []string
	mk := func(name string, d Time) {
		s.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(d)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 10)
	mk("b", 15)
	s.Run()
	// Wakeups: a@10, b@15, a@20, then both at t=30 where b's event was
	// scheduled first (at t=15 vs t=20), then b@45.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full: %v)", i, trace[i], want[i], trace)
		}
	}
}

func TestFuture(t *testing.T) {
	s := New(1)
	var f Future
	var got Time
	s.Spawn("waiter", func(p *Proc) {
		p.Await(&f)
		got = p.Now()
	})
	s.At(42, func() { f.Complete(s) })
	s.Run()
	if got != 42 {
		t.Fatalf("waiter resumed at %v, want 42", got)
	}
	// Awaiting a completed future returns immediately.
	var resumed Time
	s.Spawn("late", func(p *Proc) {
		p.Await(&f)
		resumed = p.Now()
	})
	s.Run()
	if resumed != 42 {
		t.Fatalf("late waiter at %v, want 42 (no extra delay)", resumed)
	}
	s.MustQuiesce()
}

func TestFutureMultipleWaitersFIFO(t *testing.T) {
	s := New(1)
	var f Future
	var order []string
	for _, name := range []string{"w0", "w1", "w2"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			p.Await(&f)
			order = append(order, name)
		})
	}
	s.At(5, func() { f.Complete(s) })
	s.Run()
	if len(order) != 3 || order[0] != "w0" || order[1] != "w1" || order[2] != "w2" {
		t.Fatalf("waiter wake order = %v", order)
	}
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	var wg WaitGroup
	wg.Add(3)
	var done Time
	s.Spawn("waiter", func(p *Proc) {
		p.Wait(&wg)
		done = p.Now()
	})
	s.At(10, func() { wg.DoneOne(s) })
	s.At(20, func() { wg.DoneOne(s) })
	s.At(30, func() { wg.DoneOne(s) })
	s.Run()
	if done != 30 {
		t.Fatalf("waitgroup released at %v, want 30", done)
	}
}

func TestBlockedDetection(t *testing.T) {
	s := New(1)
	var f Future
	s.Spawn("stuck", func(p *Proc) { p.Await(&f) })
	s.Run()
	if len(s.Blocked()) != 1 {
		t.Fatalf("expected 1 blocked proc, got %d", len(s.Blocked()))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustQuiesce should panic on blocked procs")
		}
		// Unblock so the goroutine can finish.
		f.Complete(s)
		s.Run()
	}()
	s.MustQuiesce()
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(seed)
		var stamps []Time
		for i := 0; i < 4; i++ {
			s.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Time(1 + s.Rand().Intn(100)))
					stamps = append(stamps, p.Now())
				}
			})
		}
		s.Run()
		return stamps
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestTransmitTime(t *testing.T) {
	cases := []struct {
		size int
		rate int64
		want Time
	}{
		{1500, 125_000_000, 12_000}, // 1500 B at 1 Gbit/s = 12 µs
		{1500, 12_500_000, 120_000}, // 1500 B at 100 Mbit/s = 120 µs
		{1, 1_000_000_000, 1},       // rounds up to 1 ns
		{0, 125_000_000, 0},         // empty payload is free
		{32 << 20, 125_000_000, Time(int64(32<<20) * int64(Second) / 125_000_000)},
	}
	for _, c := range cases {
		if got := TransmitTime(c.size, c.rate); got != c.want {
			t.Errorf("TransmitTime(%d, %d) = %v, want %v", c.size, c.rate, got, c.want)
		}
	}
}

func TestTransmitTimeProperties(t *testing.T) {
	// Monotone in size, and never zero for positive size.
	prop := func(a, b uint16, rate uint32) bool {
		r := int64(rate%1_000_000_000) + 1
		sa, sb := int(a), int(a)+int(b)
		ta, tb := TransmitTime(sa, r), TransmitTime(sb, r)
		if sa > 0 && ta <= 0 {
			return false
		}
		return tb >= ta
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != Second+500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatalf("Seconds() = %v", (2 * Second).Seconds())
	}
	prop := func(ms uint32) bool {
		// Round trip through float64 seconds is exact to within 1 ns
		// (large values lose the last bit of the decimal fraction).
		tm := Time(ms) * Millisecond
		diff := FromSeconds(tm.Seconds()) - tm
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		1500 * Millisecond: "1.500000s",
		3 * Millisecond:    "3.000ms",
		7 * Microsecond:    "7.000µs",
		12 * Nanosecond:    "12ns",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}
