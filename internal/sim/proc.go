package sim

import "fmt"

type procState int

const (
	procNew procState = iota
	procRunning
	procParked
	procDone
)

// Proc is a simulated process. Its body runs on a dedicated goroutine, but
// the scheduler guarantees that at most one process goroutine (or the event
// loop) executes at a time, with explicit hand-off, so simulated code needs
// no locking and behaves deterministically.
type Proc struct {
	sim    *Simulator
	name   string
	resume chan struct{}
	state  procState
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn schedules a new process to start at the current simulated time.
// The body receives the Proc, whose blocking primitives (Sleep, Await)
// advance simulated time.
func (s *Simulator) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.procs = append(s.procs, p)
	s.After(0, func() { p.start(body) })
	return p
}

// SpawnAt is Spawn with an explicit start time.
func (s *Simulator) SpawnAt(t Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.procs = append(s.procs, p)
	s.At(t, func() { p.start(body) })
	return p
}

// start launches the process goroutine and transfers control to it until
// it parks or finishes. Runs on the event-loop goroutine.
func (p *Proc) start(body func(*Proc)) {
	p.state = procRunning
	go func() {
		body(p)
		p.state = procDone
		p.sim.ctrl <- struct{}{}
	}()
	<-p.sim.ctrl
}

// park suspends the calling process goroutine and returns control to the
// event loop. It resumes when unparkNow is invoked for this process.
func (p *Proc) park() {
	p.state = procParked
	p.sim.ctrl <- struct{}{}
	<-p.resume
	p.state = procRunning
}

// unparkNow transfers control to the parked process until it parks again
// or finishes. Must only be called from the event-loop goroutine (i.e.
// from inside a scheduled event).
func (p *Proc) unparkNow() {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: unpark of process %q in state %d", p.name, p.state))
	}
	p.resume <- struct{}{}
	<-p.sim.ctrl
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Time) {
	p.sim.After(d, func() { p.unparkNow() })
	p.park()
}

// Yield reschedules the process at the current timestamp, letting other
// events at the same instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// futWaiter is one parked process waiting on a Future. A timed wait that
// gives up marks its entry cancelled rather than removing it, so the
// completion wake-up path can skip it without disturbing wait order.
type futWaiter struct {
	p         *Proc
	cancelled bool
}

// Future is a one-shot completion that processes can Await. Completing a
// future wakes all waiters at the current simulated time (in wait order).
// The zero value is ready to use.
type Future struct {
	done    bool
	waiters []*futWaiter
}

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Complete marks the future done and schedules all waiters to resume.
// Completing twice is a no-op.
func (f *Future) Complete(s *Simulator) {
	if f.done {
		return
	}
	f.done = true
	for _, w := range f.waiters {
		w := w
		s.After(0, func() {
			if !w.cancelled {
				w.p.unparkNow()
			}
		})
	}
	f.waiters = nil
}

// Await blocks the process until the future completes. Returns immediately
// if it already has.
func (p *Proc) Await(f *Future) {
	if f.done {
		return
	}
	f.waiters = append(f.waiters, &futWaiter{p: p})
	p.park()
}

// AwaitTimeout blocks until the future completes or d of simulated time
// elapses, whichever comes first. It returns true if the future completed
// and false on timeout; a same-instant tie resolves in event-queue order
// (whichever event was scheduled first). A false return leaves the
// future's other waiters untouched; this process simply stops waiting.
func (p *Proc) AwaitTimeout(f *Future, d Time) bool {
	if f.done {
		return true
	}
	w := &futWaiter{p: p}
	f.waiters = append(f.waiters, w)
	completed := false
	p.sim.After(d, func() {
		// If the future completed first, its wake-up already ran (or is
		// queued ahead of us and set completed before this fires — wake
		// events are scheduled the moment Complete runs, so they sort
		// before this timer whenever completion is not later). Cancelling
		// after completion would be a lost wake-up; the completed flag
		// guards that. If the waiter is still live, cancel it and wake
		// the process ourselves so it can report the timeout.
		if !completed && !w.cancelled {
			w.cancelled = true
			p.unparkNow()
		}
	})
	p.park()
	if w.cancelled {
		return false
	}
	completed = true
	return true
}

// AwaitAll blocks until every future in fs has completed.
func (p *Proc) AwaitAll(fs ...*Future) {
	for _, f := range fs {
		p.Await(f)
	}
}

// WaitGroup counts outstanding work items for simulated processes. Unlike
// sync.WaitGroup it is single-threaded and integrates with the simulated
// clock.
type WaitGroup struct {
	n      int
	future Future
}

// Add registers delta outstanding items.
func (wg *WaitGroup) Add(delta int) { wg.n += delta }

// DoneOne marks one item complete, waking waiters when the count hits zero.
func (wg *WaitGroup) DoneOne(s *Simulator) {
	wg.n--
	if wg.n < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if wg.n == 0 {
		wg.future.Complete(s)
		wg.future = Future{} // reusable for a next round
	}
}

// Wait blocks until the count reaches zero. If it is already zero, Wait
// returns immediately.
func (p *Proc) Wait(wg *WaitGroup) {
	if wg.n == 0 {
		return
	}
	p.Await(&wg.future)
}
