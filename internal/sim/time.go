// Package sim provides a deterministic discrete-event simulation core:
// a time-ordered event queue, a scheduler, and a cooperative process
// (coroutine) model in which each simulated process runs as a goroutine
// but exactly one goroutine is active at any instant. Determinism is
// guaranteed for a fixed seed: events firing at the same timestamp are
// executed in scheduling order.
package sim

import "fmt"

// Time is a simulated timestamp in nanoseconds. Simulations always start
// at Time(0). int64 nanoseconds give ~292 years of range, far beyond any
// experiment in this repository, while keeping arithmetic exact (no
// floating-point drift in event ordering).
type Time int64

// Duration constants, mirroring time.Duration but for simulated time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts floating-point seconds to a simulated time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// String renders a Time with an adaptive unit, for logs and test output.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// TransmitTime returns the wire serialization time of size bytes on a link
// of rate bytesPerSec. It rounds up to a whole nanosecond so that a
// positive size never serializes in zero time.
func TransmitTime(size int, bytesPerSec int64) Time {
	if size <= 0 || bytesPerSec <= 0 {
		return 0
	}
	num := int64(size) * int64(Second)
	t := num / bytesPerSec
	if num%bytesPerSec != 0 {
		t++
	}
	return Time(t)
}
