package sim

import "testing"

// BenchmarkEventThroughput measures raw event scheduling+dispatch rate,
// the figure that bounds how large a cluster simulation is affordable.
func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	var count int
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(100, tick)
		}
	}
	s.After(100, tick)
	b.ResetTimer()
	s.Run()
}

// BenchmarkHeapChurn measures scheduling with a deep pending queue.
func BenchmarkHeapChurn(b *testing.B) {
	s := New(1)
	for i := 0; i < 10_000; i++ {
		s.At(Time(1_000_000+i), func() {})
	}
	var count int
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	b.ResetTimer()
	s.RunUntil(999_999)
}

// BenchmarkProcContextSwitch measures coroutine park/unpark hand-offs.
func BenchmarkProcContextSwitch(b *testing.B) {
	s := New(1)
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	s.Run()
}
