package sim

import (
	"strings"
	"testing"
)

// TestParseMode pins the flag grammar: "packet" and the empty default
// map to ModePacket, "fluid" to ModeFluid, and anything else is an
// error naming the bad value.
func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{
		{"packet", ModePacket},
		{"", ModePacket},
		{"fluid", ModeFluid},
	} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v, nil", tc.in, got, err, tc.want)
		}
	}
	got, err := ParseMode("quantum")
	if err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
	if !strings.Contains(err.Error(), `unknown mode "quantum"`) {
		t.Fatalf("error %q does not name the bad mode", err)
	}
	if got != ModePacket {
		t.Fatalf("failed parse returned %v, want the packet default", got)
	}
}

// TestModeString covers the flag spellings and the out-of-range
// fallback.
func TestModeString(t *testing.T) {
	if ModePacket.String() != "packet" || ModeFluid.String() != "fluid" {
		t.Fatalf("mode names = %q, %q", ModePacket, ModeFluid)
	}
	if got := Mode(7).String(); got != "Mode(7)" {
		t.Fatalf("Mode(7).String() = %q", got)
	}
}
