package sim

import "testing"

// TestAwaitTimeoutCompletesFirst: completion before the deadline returns
// true at the completion instant, and the later timer fires as a no-op.
func TestAwaitTimeoutCompletesFirst(t *testing.T) {
	s := New(1)
	var f Future
	var ok bool
	var at Time
	s.Spawn("w", func(p *Proc) {
		ok = p.AwaitTimeout(&f, 100)
		at = p.Now()
	})
	s.At(30, func() { f.Complete(s) })
	s.Run()
	if !ok || at != 30 {
		t.Fatalf("ok=%v at=%v, want completion at 30", ok, at)
	}
	s.MustQuiesce()
}

// TestAwaitTimeoutExpires: the deadline passing first returns false at
// the deadline; a completion landing afterwards must not wake the
// cancelled waiter a second time.
func TestAwaitTimeoutExpires(t *testing.T) {
	s := New(1)
	var f Future
	var ok bool
	var at Time
	wakes := 0
	s.Spawn("w", func(p *Proc) {
		ok = p.AwaitTimeout(&f, 20)
		at = p.Now()
		wakes++
		p.Sleep(100) // stay alive across the late completion
	})
	s.At(60, func() { f.Complete(s) })
	s.Run()
	if ok || at != 20 {
		t.Fatalf("ok=%v at=%v, want timeout at 20", ok, at)
	}
	if wakes != 1 {
		t.Fatalf("waiter woke %d times, want 1", wakes)
	}
	if !f.Done() {
		t.Fatal("future not completed")
	}
	s.MustQuiesce()
}

// TestAwaitTimeoutAlreadyDone: a completed future returns true without
// parking or arming a timer.
func TestAwaitTimeoutAlreadyDone(t *testing.T) {
	s := New(1)
	var f Future
	f.Complete(s)
	var ok bool
	var at Time
	s.Spawn("w", func(p *Proc) {
		ok = p.AwaitTimeout(&f, 50)
		at = p.Now()
	})
	s.Run()
	if !ok || at != 0 {
		t.Fatalf("ok=%v at=%v, want immediate true at 0", ok, at)
	}
	if s.Now() != 0 {
		t.Fatalf("final time = %v: the unused timeout timer should not exist", s.Now())
	}
}

// TestAwaitTimeoutSameInstantTie: completion and deadline at the same
// timestamp resolve in event-queue order. Complete's own event runs
// first at t=50, but the waiter wake it schedules lands behind the
// timer armed back at t=0 — so the timer fires before the wake, the
// waiter is cancelled, and the wait reports a timeout.
func TestAwaitTimeoutSameInstantTie(t *testing.T) {
	s := New(1)
	var f Future
	var ok bool
	s.Spawn("w", func(p *Proc) {
		ok = p.AwaitTimeout(&f, 50) // timer for t=50, armed at t=0
	})
	s.At(50, func() { f.Complete(s) }) // wake enqueues at t=50, after the timer
	s.Run()
	if ok {
		t.Fatal("timer queued ahead of the completion wake should win the tie")
	}
	if !f.Done() {
		t.Fatal("future left incomplete")
	}
	s.MustQuiesce()
}

// TestAwaitTimeoutOtherWaitersUntouched: one waiter timing out must not
// disturb a plain Await on the same future.
func TestAwaitTimeoutOtherWaitersUntouched(t *testing.T) {
	s := New(1)
	var f Future
	var timedOut, plainAt Time
	s.Spawn("timed", func(p *Proc) {
		if p.AwaitTimeout(&f, 10) {
			t.Error("timed waiter completed, want timeout")
		}
		timedOut = p.Now()
	})
	s.Spawn("plain", func(p *Proc) {
		p.Await(&f)
		plainAt = p.Now()
	})
	s.At(40, func() { f.Complete(s) })
	s.Run()
	if timedOut != 10 {
		t.Fatalf("timed waiter gave up at %v, want 10", timedOut)
	}
	if plainAt != 40 {
		t.Fatalf("plain waiter resumed at %v, want 40", plainAt)
	}
	s.MustQuiesce()
}
