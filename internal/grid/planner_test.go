package grid

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/sim"
)

// wanTunedGE is the Gigabit Ethernet profile with long-fat-pipe tuning.
func wanTunedGE() cluster.Profile {
	return cluster.WANTuned(cluster.GigabitEthernet())
}

// testTopo is the two-level scenario: two clusters over a ≥10 ms WAN —
// the PR 1 acceptance grid, now expressed as a depth-1 tree.
func testTopo() cluster.TopoNode {
	return cluster.Uniform("test-grid", wanTunedGE(), 2, 3, cluster.DefaultWAN(20*sim.Millisecond)).Tree()
}

// cheapOptions keeps characterization affordable in CI: single-point
// probe fits (the scalar-compatible fast path) unless a test overrides
// ProbeSizes to exercise curve fitting.
func cheapOptions() Options {
	return Options{
		FitN:       6,
		FitSizes:   []int{16 << 10, 64 << 10, 128 << 10, 256 << 10},
		WANSizes:   []int{2 << 10, 32 << 10, 128 << 10, 512 << 10},
		ProbeSizes: []int{64 << 10},
		Reps:       1,
		Seed:       3,
	}
}

func TestPlannerCharacterization(t *testing.T) {
	opt := cheapOptions()
	opt.ProbeSizes = []int{8 << 10, 64 << 10, 256 << 10} // the production default
	pl, err := NewPlanner(testTopo(), opt)
	if err != nil {
		t.Fatal(err)
	}
	wan := pl.Model.Root.Wan
	if len(wan.Curve) != 4 {
		t.Fatalf("WAN curve has %d points, want 4", len(wan.Curve))
	}
	// One-way start-up must reflect the 20 ms WAN propagation.
	if wan.Alpha() < 0.020 {
		t.Fatalf("WAN α = %v, below the 20 ms propagation delay", wan.Alpha())
	}
	// One fitted γ_wan point per probe size, each clamped ≥ 1.
	if got := len(wan.Gamma.Points); got != 3 {
		t.Fatalf("fitted γ_wan curve has %d points, want one per probe size (3)", got)
	}
	for _, p := range wan.Gamma.Points {
		if p.Factor < 1 {
			t.Fatalf("fitted γ_wan(%d) = %v, must be ≥ 1", p.Bytes, p.Factor)
		}
	}
	for _, c := range [][]int{{8 << 10, 64 << 10}, {64 << 10, 256 << 10}} {
		lo, hi := wan.Gamma.At(c[0]), wan.Gamma.At(c[1])
		mid := wan.Gamma.At((c[0] + c[1]) / 2)
		if mid < min(lo, hi) || mid > max(lo, hi) {
			t.Fatalf("γ_wan interpolation at %d outside its bracket [%v, %v]: %v",
				(c[0]+c[1])/2, lo, hi, mid)
		}
	}
	if got := pl.Model.TotalNodes(); got != 6 {
		t.Fatalf("model covers %d nodes, want 6", got)
	}
	leaves := pl.Model.Leaves()
	for c, lf := range leaves {
		if lf.LAN.Gamma < 1 {
			t.Fatalf("cluster %d signature γ = %v < 1", c, lf.LAN.Gamma)
		}
	}
	// Uniform grids characterize the member profile once; both entries
	// must be identical.
	if leaves[0].LAN != leaves[1].LAN {
		t.Fatal("uniform grid re-characterized an identical member profile")
	}
}

// TestPlanner3LevelCharacterization: on a 3-level tree every tier gets
// its own curve, and the continental tier's start-up must exceed the
// campus tier's.
func TestPlanner3LevelCharacterization(t *testing.T) {
	topo := cluster.ThreeLevel("char3", wanTunedGE(), 2, 2, 2,
		cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(50*sim.Millisecond))
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	root := pl.Model.Root
	if root.Height() != 2 {
		t.Fatalf("model height %d, want 2", root.Height())
	}
	if root.Wan.Alpha() < 0.050 {
		t.Fatalf("continental α = %v, below the 50 ms propagation delay", root.Wan.Alpha())
	}
	for i, nation := range root.Children {
		if nation.Wan.Alpha() < 0.010 {
			t.Fatalf("nation %d campus α = %v, below the 10 ms propagation delay", i, nation.Wan.Alpha())
		}
		if nation.Wan.Alpha() >= root.Wan.Alpha() {
			t.Fatalf("nation %d campus α %v not below continental α %v",
				i, nation.Wan.Alpha(), root.Wan.Alpha())
		}
		if nation.Wan.Gamma.At(64<<10) < 1 {
			t.Fatalf("nation %d γ_wan = %v, must be ≥ 1", i, nation.Wan.Gamma)
		}
	}
	// Uniform nations: the tier fit must be shared, not re-run.
	if !reflect.DeepEqual(root.Children[0].Wan.Gamma, root.Children[1].Wan.Gamma) {
		t.Fatal("identical nation subtrees fitted different γ_wan")
	}
}

// rankingMatchesSimulation asserts the planner's predicted strategy
// order equals packet-level simulation's at every message size
// (simulated times averaged over seeds, since single lossy-TCP runs are
// RTO-noisy). Strategy pairs whose simulated times lie within tieFrac
// of each other are statistical ties and exempt from the order check —
// a coin-flip between near-equal strategies is not a planner error.
func rankingMatchesSimulation(t *testing.T, topo cluster.TopoNode, pl *Planner, msgs []int, tieFrac float64) {
	t.Helper()
	for _, m := range msgs {
		preds := pl.Predict(m)
		if len(preds) != len(Strategies) {
			t.Fatalf("m=%d: %d predictions, want %d", m, len(preds), len(Strategies))
		}
		predT := map[Strategy]float64{}
		for _, pr := range preds {
			predT[pr.Strategy] = pr.T
		}
		simT := map[Strategy]float64{}
		for _, s := range Strategies {
			mean := 0.0
			for _, seed := range []int64{7, 19} {
				// Hierarchical strategies run the planner's chosen plan
				// (PlanSpec is the lowest-rank default until a selection
				// is made), so predictions and ground truth agree on
				// what executes.
				var st float64
				var err error
				if alg, ok := DescribeStrategy(s); ok {
					st, err = SimulateSpec(topo, pl.PlanSpec(), alg, m, seed, 1, 2)
				} else {
					st, err = Simulate(topo, s, m, seed, 1, 2)
				}
				if err != nil {
					t.Fatal(err)
				}
				if st <= 0 {
					t.Fatalf("m=%d %v: nonpositive simulated time", m, s)
				}
				mean += st
			}
			simT[s] = mean / 2
		}
		for _, a := range Strategies {
			for _, b := range Strategies {
				sa, sb := simT[a], simT[b]
				if sa >= sb || sb-sa <= tieFrac*sb {
					continue // not a decisively ordered pair
				}
				if predT[a] >= predT[b] {
					t.Fatalf("m=%d: simulation has %v (%.3fs) decisively before %v (%.3fs), planner predicts %.3fs vs %.3fs",
						m, a, sa, b, sb, predT[a], predT[b])
				}
			}
		}
		// The predicted best must be the simulated best, or tied with it.
		best := pl.Best(m).Strategy
		simBest := Strategies[0]
		for _, s := range Strategies {
			if simT[s] < simT[simBest] {
				simBest = s
			}
		}
		if best != simBest && simT[best]-simT[simBest] > tieFrac*simT[best] {
			t.Fatalf("m=%d: Best() = %v (sim %.3fs), simulation says %v (%.3fs)",
				m, best, simT[best], simBest, simT[simBest])
		}
	}
}

// TestPlannerRankingMatchesSimulation is the two-level acceptance test
// (and the depth-2 regression for the recursive rewrite): across a
// message-size sweep on a two-cluster grid over a 20 ms WAN, the
// planner's predicted completion times must rank the three strategies
// in the same order as packet-level simulation.
func TestPlannerRankingMatchesSimulation(t *testing.T) {
	topo := cluster.Uniform("accept-grid", wanTunedGE(), 2, 6, cluster.DefaultWAN(20*sim.Millisecond)).Tree()
	pl, err := NewPlanner(topo, Options{FitN: 8, Reps: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rankingMatchesSimulation(t, topo, pl, []int{16 << 10, 48 << 10}, 0)
}

// TestPlannerRankingMatchesSimulation3Level extends the acceptance to
// two 3-level (campus → national → continental) topologies over
// different member networks. Message sizes bracket the calibration
// probes; sizes deep in the RTO-noisy small-message regime (where
// completion is dominated by retransmission-timeout chaos the
// per-level curves cannot see — the known limitation GR1 documents for
// two-level grids) are not acceptance material, and neither are
// (topology, size) points whose strategy order is itself a seed
// lottery: on the Fast Ethernet grid at 64 KiB the hierarchical
// completion times range 2.3–9.1 s across seeds with overlapping
// supports for both strategies (7-seed means within 5%), so a 2-seed
// ground truth there validates noise — 96–128 KiB, where the
// distributions are tight, is the regime the model claims for FE.
func TestPlannerRankingMatchesSimulation3Level(t *testing.T) {
	fe := cluster.WANTuned(cluster.FastEthernet())
	for _, tc := range []struct {
		name string
		topo cluster.TopoNode
		msgs []int
	}{
		{
			name: "ge-uniform",
			topo: cluster.ThreeLevel("accept3-ge", wanTunedGE(), 2, 2, 3,
				cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond)),
			msgs: []int{48 << 10, 64 << 10},
		},
		{
			name: "fe-uniform",
			topo: cluster.ThreeLevel("accept3-fe", fe, 2, 2, 4,
				cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(30*sim.Millisecond)),
			msgs: []int{96 << 10, 128 << 10},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := NewPlanner(tc.topo, Options{FitN: 6, Reps: 2, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			rankingMatchesSimulation(t, tc.topo, pl, tc.msgs, 0.08)
		})
	}
}

func TestSimulateRejectsUnknownStrategy(t *testing.T) {
	if _, err := Simulate(testTopo(), Strategy(99), 1024, 1, 0, 1); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestPlannerRejectsSingleCluster(t *testing.T) {
	solo := cluster.Leaf(wanTunedGE(), 4)
	if _, err := NewPlanner(solo, cheapOptions()); err == nil {
		t.Fatal("single-cluster topology must be rejected with an error, not a panic")
	}
	oneChild := cluster.Group("one", cluster.DefaultWAN(10*sim.Millisecond),
		cluster.Leaf(wanTunedGE(), 4))
	if _, err := NewPlanner(oneChild, cheapOptions()); err == nil {
		t.Fatal("single-child tier must be rejected with an error, not a panic")
	}
}

// heteroTestTopo is a small heterogeneous two-cluster grid: each
// cluster's lowest rank sits on a 100 Mb port while the rest have full
// Gigabit headroom.
func heteroTestTopo(nodes int) cluster.TopoNode {
	p := wanTunedGE()
	p.Name = "ge-mixed-nics"
	p.NodeLinkRates = []int64{12_500_000}
	return cluster.Uniform("hetero-test", p, 2, nodes, cluster.DefaultWAN(20*sim.Millisecond)).Tree()
}

// TestPlannerHeadroomProbe: characterization measures per-node NIC
// rates back from the built network — the degraded rank 0 probes
// markedly below its full-rate peers, and homogeneous peers probe
// alike.
func TestPlannerHeadroomProbe(t *testing.T) {
	pl, err := NewPlanner(heteroTestTopo(4), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Headroom) != 2 {
		t.Fatalf("headroom for %d leaves, want 2", len(pl.Headroom))
	}
	for l, rates := range pl.Headroom {
		if len(rates) != 4 {
			t.Fatalf("leaf %d: %d node rates, want 4", l, len(rates))
		}
		for i, r := range rates {
			if r <= 0 {
				t.Fatalf("leaf %d node %d: nonpositive probed rate %v", l, i, r)
			}
		}
		// Node 0 is on a 100 Mb port; node 1 has Gigabit headroom.
		if rates[0]*4 > rates[1] {
			t.Fatalf("leaf %d: degraded node 0 (%.0f B/s) not well below node 1 (%.0f B/s)",
				l, rates[0], rates[1])
		}
		// The full-rate nodes must probe within noise of each other.
		if rates[1] > 1.5*rates[2] || rates[2] > 1.5*rates[1] {
			t.Fatalf("leaf %d: homogeneous nodes probed apart: %v", l, rates)
		}
	}
}

// TestPlannerHomogeneousSelectionKeepsDefault pins the regression the
// ISSUE demands: on a homogeneous grid the selection logic provably
// changes nothing — every leaf keeps the lowest-rank default, the
// model fields stay zero, and predictions are bit-identical to the
// pre-selection planner.
func TestPlannerHomogeneousSelectionKeepsDefault(t *testing.T) {
	pl, err := NewPlanner(testTopo(), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := 64 << 10
	before := pl.Predict(m)
	choices, err := pl.SelectCoordinators(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 2 {
		t.Fatalf("%d choices, want 2", len(choices))
	}
	for _, c := range choices {
		if !c.Default {
			t.Fatalf("homogeneous grid selected a non-default coordinator: %v", c)
		}
	}
	for l, lf := range pl.Model.Leaves() {
		if lf.NumCoords != 0 || lf.CoordBeta != 0 {
			t.Fatalf("leaf %d model touched by default selection: C=%d β=%v", l, lf.NumCoords, lf.CoordBeta)
		}
	}
	after := pl.Predict(m)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("default selection changed predictions: %v -> %v", before[i], after[i])
		}
	}
	// PlanSpec still compiles to the default lowest-rank plan.
	plan := coll.PlanHierTree(pl.PlanSpec(), coll.HierGather)
	for l := 0; l < plan.Tree.NumLeaves(); l++ {
		coords := plan.Tree.Coordinators(l)
		members := plan.Tree.LeafMembers(l)
		if len(coords) != 1 || coords[0] != members[0] {
			t.Fatalf("leaf %d: default PlanSpec coordinators = %v, want lowest rank %d", l, coords, members[0])
		}
	}
}

// TestPlannerSelectsCoordinatorOnHeteroGrid is the tentpole acceptance
// test on a two-cluster heterogeneous grid: selection must steer every
// leaf's relay off the degraded rank 0 port, and the chosen plan must
// beat the lowest-rank default in packet-level simulation.
func TestPlannerSelectsCoordinatorOnHeteroGrid(t *testing.T) {
	topo := heteroTestTopo(4)
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := 64 << 10
	choices, err := pl.SelectCoordinators(m)
	if err != nil {
		t.Fatal(err)
	}
	nonDefault := 0
	for _, c := range choices {
		if c.Default {
			continue
		}
		nonDefault++
		for _, i := range c.Local {
			if i == 0 {
				t.Fatalf("selection kept the degraded node 0 in %v", c)
			}
		}
	}
	if nonDefault == 0 {
		t.Fatalf("selection kept the lowest-rank default on a heterogeneous grid: %v", choices)
	}

	// Ground truth: the selected hier-gather plan must beat the
	// lowest-rank default (averaged over seeds; lossy TCP is noisy).
	defT, selT := 0.0, 0.0
	for _, seed := range []int64{7, 19} {
		d, err := Simulate(topo, HierGather, m, seed, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SimulateSpec(topo, pl.PlanSpec(), coll.HierGather, m, seed, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		defT += d / 2
		selT += s / 2
	}
	if selT >= defT {
		t.Fatalf("selected coordinators (%.3fs) did not beat the lowest-rank default (%.3fs)", selT, defT)
	}
}

// TestPlannerHeteroCanonicalAcceptance is the acceptance test on the
// canonical heterogeneous grid (hetero-3lvl): the planner must select a
// non-lowest-rank coordinator for every campus, the selected
// hier-gather plan must beat the lowest-rank default in packet-level
// simulation on every seed, and the predicted strategy ranking (with
// the selection applied) must match simulation order.
func TestPlannerHeteroCanonicalAcceptance(t *testing.T) {
	topo, err := cluster.TreeByName("hetero-3lvl")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlanner(topo, Options{FitN: 6, Reps: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 48 KiB sits in the model's claimed bracket; larger sizes push the
	// continental exchange many MB past the measured curve, where
	// completion is RTO-chaotic (docs/MODEL.md §6).
	m := 48 << 10
	choices, err := pl.SelectCoordinators(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 4 {
		t.Fatalf("%d choices, want 4", len(choices))
	}
	for _, c := range choices {
		if c.Default {
			t.Fatalf("campus %d kept the degraded lowest-rank default: %v", c.Leaf, c)
		}
		for _, i := range c.Local {
			if i == 0 {
				t.Fatalf("campus %d selection kept the degraded node 0: %v", c.Leaf, c)
			}
		}
	}
	// The plan spec must route every tier — leaves AND the inner nation
	// tiers, whose default relay is the same degraded lowest rank — off
	// the 100 Mb ports (ranks 0, 4, 8, 12).
	degraded := map[int]bool{0: true, 4: true, 8: true, 12: true}
	var walkSpec func(s coll.TreeSpec, depth int)
	walkSpec = func(s coll.TreeSpec, depth int) {
		if depth > 0 && len(s.Children) > 0 && len(s.Coords) == 0 {
			t.Fatalf("inner tier at depth %d left on its degraded default relay", depth)
		}
		for _, cr := range s.Coords {
			if degraded[cr] {
				t.Fatalf("plan spec relays through degraded rank %d", cr)
			}
		}
		for _, c := range s.Children {
			walkSpec(c, depth+1)
		}
	}
	walkSpec(pl.PlanSpec(), 0)

	for _, seed := range []int64{7, 19} {
		defT, err := Simulate(topo, HierGather, m, seed, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		selT, err := SimulateSpec(topo, pl.PlanSpec(), coll.HierGather, m, seed, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if selT >= defT {
			t.Fatalf("seed %d: selected coordinators (%.3fs) did not beat the lowest-rank default (%.3fs)",
				seed, selT, defT)
		}
	}
	rankingMatchesSimulation(t, topo, pl, []int{m}, 0.08)
}

// TestPlannerSelectsMultiCoordinatorForWideLeaf: a wide Fast Ethernet
// cluster next to two small Gigabit ones saturates any single
// coordinator port with its gather incast, so selection must split the
// wide leaf's relay across two coordinators (C=2) while the narrow
// leaves keep their lowest-rank default — and the split plan must beat
// the default in packet-level simulation.
func TestPlannerSelectsMultiCoordinatorForWideLeaf(t *testing.T) {
	fe := cluster.WANTuned(cluster.FastEthernet())
	gp := cluster.GridProfile{
		Name: "wide-mixed",
		Members: []cluster.GridMember{
			{Profile: fe, Nodes: 8},
			{Profile: wanTunedGE(), Nodes: 3},
			{Profile: wanTunedGE(), Nodes: 3},
		},
		WAN: cluster.DefaultWAN(20 * sim.Millisecond),
	}
	topo := gp.Tree()
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := 64 << 10
	choices, err := pl.SelectCoordinators(m)
	if err != nil {
		t.Fatal(err)
	}
	wide := choices[0]
	if wide.Default || len(wide.Local) != 2 {
		t.Fatalf("wide leaf not split across two coordinators: %v", wide)
	}
	for _, c := range choices[1:] {
		if !c.Default {
			t.Fatalf("narrow leaf %d unexpectedly changed coordinators: %v", c.Leaf, c)
		}
	}
	for _, seed := range []int64{7, 19} {
		defT, err := Simulate(topo, HierGather, m, seed, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		selT, err := SimulateSpec(topo, pl.PlanSpec(), coll.HierGather, m, seed, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if selT >= defT {
			t.Fatalf("seed %d: split coordinators (%.3fs) did not beat the single default (%.3fs)",
				seed, selT, defT)
		}
	}
}
