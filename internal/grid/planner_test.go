package grid

import (
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// testGrid is the acceptance scenario: two clusters over a ≥10 ms WAN.
func testGrid() cluster.GridProfile {
	p := cluster.GigabitEthernet()
	p.TCP.RcvWindow = 256 << 10 // long-fat-pipe tuning
	return cluster.Uniform("test-grid", p, 2, 3, cluster.DefaultWAN(20*sim.Millisecond))
}

// cheapOptions keeps characterization affordable in CI.
func cheapOptions() Options {
	return Options{
		FitN:     6,
		FitSizes: []int{16 << 10, 64 << 10, 128 << 10, 256 << 10},
		WANSizes: []int{2 << 10, 32 << 10, 128 << 10, 512 << 10},
		Reps:     1,
		Seed:     3,
	}
}

func TestPlannerCharacterization(t *testing.T) {
	pl, err := NewPlanner(testGrid(), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	wan := pl.Model.Wan
	if len(wan.Curve) != 4 {
		t.Fatalf("WAN curve has %d points, want 4", len(wan.Curve))
	}
	// One-way start-up must reflect the 20 ms WAN propagation.
	if wan.Alpha() < 0.020 {
		t.Fatalf("WAN α = %v, below the 20 ms propagation delay", wan.Alpha())
	}
	if wan.Gamma < 1 {
		t.Fatalf("fitted γ_wan = %v, must be ≥ 1", wan.Gamma)
	}
	if got := pl.Model.TotalNodes(); got != 6 {
		t.Fatalf("model covers %d nodes, want 6", got)
	}
	for c, sig := range pl.Model.LAN {
		if sig.Gamma < 1 {
			t.Fatalf("cluster %d signature γ = %v < 1", c, sig.Gamma)
		}
	}
	// Uniform grids characterize the member profile once; both entries
	// must be identical.
	if pl.Model.LAN[0] != pl.Model.LAN[1] {
		t.Fatal("uniform grid re-characterized an identical member profile")
	}
}

// TestPlannerRankingMatchesSimulation is the subsystem's acceptance
// test: across a message-size sweep on a two-cluster grid over a 20 ms
// WAN, the planner's predicted completion times must rank the three
// strategies in the same order as packet-level simulation (simulated
// times averaged over seeds, since single lossy-TCP runs are noisy).
func TestPlannerRankingMatchesSimulation(t *testing.T) {
	p := cluster.GigabitEthernet()
	p.TCP.RcvWindow = 256 << 10
	gp := cluster.Uniform("accept-grid", p, 2, 6, cluster.DefaultWAN(20*sim.Millisecond))
	pl, err := NewPlanner(gp, Options{FitN: 8, Reps: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{16 << 10, 48 << 10} {
		preds := pl.Predict(m)
		if len(preds) != len(Strategies) {
			t.Fatalf("m=%d: %d predictions, want %d", m, len(preds), len(Strategies))
		}
		type ranked struct {
			s Strategy
			t float64
		}
		var sims []ranked
		for _, s := range Strategies {
			mean := 0.0
			for _, seed := range []int64{7, 19} {
				st, err := Simulate(gp, s, m, seed, 1, 2)
				if err != nil {
					t.Fatal(err)
				}
				if st <= 0 {
					t.Fatalf("m=%d %v: nonpositive simulated time", m, s)
				}
				mean += st
			}
			sims = append(sims, ranked{s, mean / 2})
		}
		sort.SliceStable(sims, func(i, j int) bool { return sims[i].t < sims[j].t })
		for i := range preds {
			if preds[i].Strategy != sims[i].s {
				t.Fatalf("m=%d: predicted order %v... differs from simulated order %v... (pred=%v sim=%v)",
					m, preds[i].Strategy, sims[i].s, preds, sims)
			}
		}
		if best := pl.Best(m); best.Strategy != sims[0].s {
			t.Fatalf("m=%d: Best() = %v, simulation says %v", m, best.Strategy, sims[0].s)
		}
	}
}

func TestSimulateRejectsUnknownStrategy(t *testing.T) {
	if _, err := Simulate(testGrid(), Strategy(99), 1024, 1, 0, 1); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestPlannerRejectsSingleCluster(t *testing.T) {
	gp := cluster.Uniform("solo", cluster.GigabitEthernet(), 1, 4,
		cluster.DefaultWAN(10*sim.Millisecond))
	if _, err := NewPlanner(gp, cheapOptions()); err == nil {
		t.Fatal("single-cluster grid must be rejected with an error, not a panic")
	}
}
