package grid

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// wanTunedGE is the Gigabit Ethernet profile with long-fat-pipe tuning.
func wanTunedGE() cluster.Profile {
	return cluster.WANTuned(cluster.GigabitEthernet())
}

// testTopo is the two-level scenario: two clusters over a ≥10 ms WAN —
// the PR 1 acceptance grid, now expressed as a depth-1 tree.
func testTopo() cluster.TopoNode {
	return cluster.Uniform("test-grid", wanTunedGE(), 2, 3, cluster.DefaultWAN(20*sim.Millisecond)).Tree()
}

// cheapOptions keeps characterization affordable in CI.
func cheapOptions() Options {
	return Options{
		FitN:     6,
		FitSizes: []int{16 << 10, 64 << 10, 128 << 10, 256 << 10},
		WANSizes: []int{2 << 10, 32 << 10, 128 << 10, 512 << 10},
		Reps:     1,
		Seed:     3,
	}
}

func TestPlannerCharacterization(t *testing.T) {
	pl, err := NewPlanner(testTopo(), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	wan := pl.Model.Root.Wan
	if len(wan.Curve) != 4 {
		t.Fatalf("WAN curve has %d points, want 4", len(wan.Curve))
	}
	// One-way start-up must reflect the 20 ms WAN propagation.
	if wan.Alpha() < 0.020 {
		t.Fatalf("WAN α = %v, below the 20 ms propagation delay", wan.Alpha())
	}
	if wan.Gamma < 1 {
		t.Fatalf("fitted γ_wan = %v, must be ≥ 1", wan.Gamma)
	}
	if got := pl.Model.TotalNodes(); got != 6 {
		t.Fatalf("model covers %d nodes, want 6", got)
	}
	leaves := pl.Model.Leaves()
	for c, lf := range leaves {
		if lf.LAN.Gamma < 1 {
			t.Fatalf("cluster %d signature γ = %v < 1", c, lf.LAN.Gamma)
		}
	}
	// Uniform grids characterize the member profile once; both entries
	// must be identical.
	if leaves[0].LAN != leaves[1].LAN {
		t.Fatal("uniform grid re-characterized an identical member profile")
	}
}

// TestPlanner3LevelCharacterization: on a 3-level tree every tier gets
// its own curve, and the continental tier's start-up must exceed the
// campus tier's.
func TestPlanner3LevelCharacterization(t *testing.T) {
	topo := cluster.ThreeLevel("char3", wanTunedGE(), 2, 2, 2,
		cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(50*sim.Millisecond))
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	root := pl.Model.Root
	if root.Height() != 2 {
		t.Fatalf("model height %d, want 2", root.Height())
	}
	if root.Wan.Alpha() < 0.050 {
		t.Fatalf("continental α = %v, below the 50 ms propagation delay", root.Wan.Alpha())
	}
	for i, nation := range root.Children {
		if nation.Wan.Alpha() < 0.010 {
			t.Fatalf("nation %d campus α = %v, below the 10 ms propagation delay", i, nation.Wan.Alpha())
		}
		if nation.Wan.Alpha() >= root.Wan.Alpha() {
			t.Fatalf("nation %d campus α %v not below continental α %v",
				i, nation.Wan.Alpha(), root.Wan.Alpha())
		}
		if nation.Wan.Gamma < 1 {
			t.Fatalf("nation %d γ_wan = %v, must be ≥ 1", i, nation.Wan.Gamma)
		}
	}
	// Uniform nations: the tier fit must be shared, not re-run.
	if root.Children[0].Wan.Gamma != root.Children[1].Wan.Gamma {
		t.Fatal("identical nation subtrees fitted different γ_wan")
	}
}

// rankingMatchesSimulation asserts the planner's predicted strategy
// order equals packet-level simulation's at every message size
// (simulated times averaged over seeds, since single lossy-TCP runs are
// RTO-noisy). Strategy pairs whose simulated times lie within tieFrac
// of each other are statistical ties and exempt from the order check —
// a coin-flip between near-equal strategies is not a planner error.
func rankingMatchesSimulation(t *testing.T, topo cluster.TopoNode, pl *Planner, msgs []int, tieFrac float64) {
	t.Helper()
	for _, m := range msgs {
		preds := pl.Predict(m)
		if len(preds) != len(Strategies) {
			t.Fatalf("m=%d: %d predictions, want %d", m, len(preds), len(Strategies))
		}
		predT := map[Strategy]float64{}
		for _, pr := range preds {
			predT[pr.Strategy] = pr.T
		}
		simT := map[Strategy]float64{}
		for _, s := range Strategies {
			mean := 0.0
			for _, seed := range []int64{7, 19} {
				st, err := Simulate(topo, s, m, seed, 1, 2)
				if err != nil {
					t.Fatal(err)
				}
				if st <= 0 {
					t.Fatalf("m=%d %v: nonpositive simulated time", m, s)
				}
				mean += st
			}
			simT[s] = mean / 2
		}
		for _, a := range Strategies {
			for _, b := range Strategies {
				sa, sb := simT[a], simT[b]
				if sa >= sb || sb-sa <= tieFrac*sb {
					continue // not a decisively ordered pair
				}
				if predT[a] >= predT[b] {
					t.Fatalf("m=%d: simulation has %v (%.3fs) decisively before %v (%.3fs), planner predicts %.3fs vs %.3fs",
						m, a, sa, b, sb, predT[a], predT[b])
				}
			}
		}
		// The predicted best must be the simulated best, or tied with it.
		best := pl.Best(m).Strategy
		simBest := Strategies[0]
		for _, s := range Strategies {
			if simT[s] < simT[simBest] {
				simBest = s
			}
		}
		if best != simBest && simT[best]-simT[simBest] > tieFrac*simT[best] {
			t.Fatalf("m=%d: Best() = %v (sim %.3fs), simulation says %v (%.3fs)",
				m, best, simT[best], simBest, simT[simBest])
		}
	}
}

// TestPlannerRankingMatchesSimulation is the two-level acceptance test
// (and the depth-2 regression for the recursive rewrite): across a
// message-size sweep on a two-cluster grid over a 20 ms WAN, the
// planner's predicted completion times must rank the three strategies
// in the same order as packet-level simulation.
func TestPlannerRankingMatchesSimulation(t *testing.T) {
	topo := cluster.Uniform("accept-grid", wanTunedGE(), 2, 6, cluster.DefaultWAN(20*sim.Millisecond)).Tree()
	pl, err := NewPlanner(topo, Options{FitN: 8, Reps: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rankingMatchesSimulation(t, topo, pl, []int{16 << 10, 48 << 10}, 0)
}

// TestPlannerRankingMatchesSimulation3Level extends the acceptance to
// two 3-level (campus → national → continental) topologies over
// different member networks. Message sizes bracket the calibration
// probe: per-tier contention factors are fitted at one probe size, so
// sizes deep in the RTO-noisy small-message regime (where completion is
// dominated by retransmission-timeout chaos the per-level curves cannot
// see — the known limitation GR1 documents for two-level grids) are not
// acceptance material; 48–96 KiB is the regime the model claims.
func TestPlannerRankingMatchesSimulation3Level(t *testing.T) {
	fe := cluster.WANTuned(cluster.FastEthernet())
	for _, tc := range []struct {
		name string
		topo cluster.TopoNode
		msgs []int
	}{
		{
			name: "ge-uniform",
			topo: cluster.ThreeLevel("accept3-ge", wanTunedGE(), 2, 2, 3,
				cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond)),
			msgs: []int{48 << 10, 64 << 10},
		},
		{
			name: "fe-uniform",
			topo: cluster.ThreeLevel("accept3-fe", fe, 2, 2, 4,
				cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(30*sim.Millisecond)),
			msgs: []int{64 << 10, 96 << 10},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := NewPlanner(tc.topo, Options{FitN: 6, Reps: 2, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			rankingMatchesSimulation(t, tc.topo, pl, tc.msgs, 0.08)
		})
	}
}

func TestSimulateRejectsUnknownStrategy(t *testing.T) {
	if _, err := Simulate(testTopo(), Strategy(99), 1024, 1, 0, 1); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestPlannerRejectsSingleCluster(t *testing.T) {
	solo := cluster.Leaf(wanTunedGE(), 4)
	if _, err := NewPlanner(solo, cheapOptions()); err == nil {
		t.Fatal("single-cluster topology must be rejected with an error, not a panic")
	}
	oneChild := cluster.Group("one", cluster.DefaultWAN(10*sim.Millisecond),
		cluster.Leaf(wanTunedGE(), 4))
	if _, err := NewPlanner(oneChild, cheapOptions()); err == nil {
		t.Fatal("single-child tier must be rejected with an error, not a panic")
	}
}
