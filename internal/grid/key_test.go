package grid

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/transport"
)

// TestProfileKeyDistinguishesProfiles is the regression test for the
// reflective (%+v) cache key: every field of cluster.Profile — name,
// rates, buffers, per-node rate overrides, transport tuning — must
// produce a distinct key when it alone changes, and equal values must
// produce equal keys. A collision here silently shares one
// characterization (signature fit, headroom probe) between members that
// need separate fits.
func TestProfileKeyDistinguishesProfiles(t *testing.T) {
	// Field-count pins: profileKey/wanKey render every field explicitly,
	// so growing one of these structs without extending the key (and the
	// variant table below) must fail here first — the variant table
	// alone can only cover the fields that existed when it was written.
	for _, pin := range []struct {
		typ  reflect.Type
		want int
	}{
		{reflect.TypeOf(cluster.Profile{}), 16},
		{reflect.TypeOf(transport.TCPConfig{}), 11},
		{reflect.TypeOf(transport.GMConfig{}), 2},
		{reflect.TypeOf(cluster.WANConfig{}), 5},
	} {
		if got := pin.typ.NumField(); got != pin.want {
			t.Fatalf("%v has %d fields, key was written for %d — extend profileKey/wanKey and this test",
				pin.typ, got, pin.want)
		}
	}

	base := cluster.GigabitEthernet()

	variants := map[string]cluster.Profile{}
	add := func(name string, mut func(p *cluster.Profile)) {
		p := base
		// Copy the one reference-typed field so mutations stay local.
		p.NodeLinkRates = append([]int64(nil), base.NodeLinkRates...)
		mut(&p)
		variants[name] = p
	}
	add("base", func(p *cluster.Profile) {})
	add("name", func(p *cluster.Profile) { p.Name = "other" })
	add("link-rate", func(p *cluster.Profile) { p.LinkRate++ })
	add("link-latency", func(p *cluster.Profile) { p.LinkLatency++ })
	add("port-buffer", func(p *cluster.Profile) { p.PortBuffer++ })
	add("lossless", func(p *cluster.Profile) { p.Lossless = true })
	add("leaves", func(p *cluster.Profile) { p.Leaves = 3 })
	add("nodes-per-leaf", func(p *cluster.Profile) { p.NodesPerLeaf = 9 })
	add("uplink-rate", func(p *cluster.Profile) { p.UplinkRate = 1 })
	add("uplink-latency", func(p *cluster.Profile) { p.UplinkLatency = 1 })
	add("core-buffer", func(p *cluster.Profile) { p.CorePortBuffer = 1 })
	add("rx-base", func(p *cluster.Profile) { p.RxCostBase++ })
	add("rx-per-conn", func(p *cluster.Profile) { p.RxCostPerConn++ })
	add("node-rates", func(p *cluster.Profile) { p.NodeLinkRates = []int64{12_500_000} })
	add("node-rates-2", func(p *cluster.Profile) { p.NodeLinkRates = []int64{1, 2} })
	// Ambiguity regression: a slice [12] must not collide with [1, 2]
	// under any separator scheme.
	add("node-rates-12", func(p *cluster.Profile) { p.NodeLinkRates = []int64{12} })
	// Transport tuning must separate fits: WANTuned widens RcvWindow
	// only — PR 3's "members sharing a name but not tuning" rule.
	add("wan-tuned", func(p *cluster.Profile) { p.TCP.RcvWindow = 256 << 10 })
	add("tcp-mss", func(p *cluster.Profile) { p.TCP.MSS = 9000 })
	add("tcp-rtomin", func(p *cluster.Profile) { p.TCP.RTOMin = 1 })
	add("tcp-maxretries", func(p *cluster.Profile) { p.TCP.MaxRetries = 7 })
	add("gm-mtu", func(p *cluster.Profile) { p.GM.MTU = 2048 })
	// Crafted-name regression: under an unquoted reflective rendering, a
	// name that imitates the rate-slice syntax could collide with the
	// "node-rates" variant, which really has that slice. Quoting must
	// keep them apart.
	add("evil-name", func(p *cluster.Profile) { p.Name = base.Name + `" rates=[12500000]` })

	keys := map[string]string{}
	for name, p := range variants {
		keys[name] = profileKey(p)
	}
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && ka == kb {
				t.Fatalf("profileKey collision between %q and %q: %s", a, b, ka)
			}
		}
	}

	// Equal values must key equally, including separately built copies.
	again := cluster.GigabitEthernet()
	if profileKey(again) != keys["base"] {
		t.Fatalf("identical profiles keyed differently:\n%s\n%s", profileKey(again), keys["base"])
	}
}

// TestTopoKeySharesStructureIgnoresNames: topoKey must ignore node
// names (so generated sibling tiers share one fit) while distinguishing
// WAN parameters and leaf shapes.
func TestTopoKeySharesStructureIgnoresNames(t *testing.T) {
	ge := cluster.WANTuned(cluster.GigabitEthernet())
	wan := cluster.DefaultWAN(10 * sim.Millisecond)
	a := cluster.Group("first", wan, cluster.Leaf(ge, 3), cluster.Leaf(ge, 3))
	b := cluster.Group("second", wan, cluster.Leaf(ge, 3), cluster.Leaf(ge, 3))
	if topoKey(a) != topoKey(b) {
		t.Fatal("structurally identical subtrees keyed differently")
	}
	slower := wan
	slower.Rate /= 2
	c := cluster.Group("first", slower, cluster.Leaf(ge, 3), cluster.Leaf(ge, 3))
	if topoKey(a) == topoKey(c) {
		t.Fatal("different WAN rates keyed identically")
	}
	d := cluster.Group("first", wan, cluster.Leaf(ge, 3), cluster.Leaf(ge, 4))
	if topoKey(a) == topoKey(d) {
		t.Fatal("different leaf sizes keyed identically")
	}
}
