package grid

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// Observability plumbing for the planner pipeline. Everything here is
// gated on a nil check of Options.Trace (an *obs.Collector): a planner
// built without one runs the exact pre-instrumentation code paths plus
// nil checks.

// Aggregate counter names the planner feeds while characterizing and
// validating (in addition to the netsim.* counters the packet layer
// publishes through the same collector).
const (
	// CtrProbes counts probe simulations run (signature sweeps, WAN
	// ping-pongs, headroom probes, and contention-factor probes alike).
	CtrProbes = "planner.probes"
	// CtrSimEvents accumulates discrete-event counts across all probe
	// and validation simulators — the work metric BENCH_PLANNER tracks.
	CtrSimEvents = "sim.events"
	// CtrRetransmits accumulates transport retransmissions (fast and
	// timeout-driven) across traced simulations.
	CtrRetransmits = "transport.retransmits"
	// CtrTimeouts accumulates transport RTO firings across traced
	// simulations.
	CtrTimeouts = "transport.timeouts"
	// CtrValidations counts traced validation simulations
	// (SimulateSpecTraced / SimulateSpecVTraced) — ground-truth runs of
	// an already-planned exchange. Kept apart from CtrProbes so a
	// warm-store planner run reports planner.probes = 0 even when its
	// diagnostics re-simulate the chosen plan.
	CtrValidations = "planner.validations"
	// CtrStoreHit / CtrStoreMiss count CurveStore lookups during planner
	// builds, per record (leaf fit, headroom, tier curve, γ/ω/κ fits):
	// a fully warm build is all hits and zero probes, and a regression
	// that stops consulting the store shows up as misses before it shows
	// up as time.
	CtrStoreHit  = "store.hit"
	CtrStoreMiss = "store.miss"
	// CtrStoreRefit counts planner builds that mixed store hits and
	// misses — incremental re-fits that re-probed only the records the
	// store lacked (typically after CurveStore.Invalidate).
	CtrStoreRefit = "store.refit"
	// CtrStoreStale counts write-backs dropped by the build-epoch guard:
	// a planner build that raced a CurveStore.Invalidate finished with
	// pre-invalidation fits and was barred from re-inserting them.
	CtrStoreStale = "store.stale_drop"
	// CtrServiceEvict counts planner-cache evictions in grid.Service
	// (least-recently-used past Options.CacheCap).
	CtrServiceEvict = "service.evict"
)

// ProbeWarning flags a seed-lottery strategy probe: at Size, the two
// hierarchical strategies' per-seed completion supports overlap, so the
// fitted ω/κ ordering at that size is a draw between seeds rather than
// a measurement (the FE 3-level 64 KiB case: 2.3–9.1 s overlapping
// supports). Surfaced in Planner.Warnings and, when tracing, as a
// probe.unstable event — the groundwork for a stop-when-stable
// sampling rule.
type ProbeWarning struct {
	// Stage is "characterize" (NewPlanner's initial fit) or "refit"
	// (the post-selection refit, which re-probes the chosen plan).
	Stage string
	// Size is the probe's per-pair message size in bytes.
	Size int
	// HDMin..HDMax is the hier-direct probe's per-seed support (s).
	HDMin, HDMax float64
	// HGMin..HGMax is the hier-gather probe's per-seed support (s).
	HGMin, HGMax float64
}

// String renders the warning for planner output.
func (w ProbeWarning) String() string {
	return fmt.Sprintf("probe unstable (%s, %d B): hier-direct %.3g–%.3gs overlaps hier-gather %.3g–%.3gs — ranking at this size is seed-sensitive",
		w.Stage, w.Size, w.HDMin, w.HDMax, w.HGMin, w.HGMax)
}

// ProbeStat summarizes one contention-factor probe's per-seed spread —
// the dispersion a trace records as probe.sample/probe.dispersion
// events, kept on the Planner so callers can render it (textplot)
// without a collector.
type ProbeStat struct {
	// Factor names the fitted factor: "gamma_wan", "omega", "kappa".
	Factor string
	// Tier names the tier being fitted (γ_wan only; empty for the
	// whole-tree strategy factors).
	Tier string
	// Stage is "characterize" or "refit".
	Stage string
	// Size is the probe's per-pair message size in bytes.
	Size int
	// Min, Median, Max are the per-seed completion times (s).
	Min, Median, Max float64
}

// Label renders a compact identifier for plots: "ω@64k", "γ@8k(t1)".
func (s ProbeStat) Label() string {
	short := map[string]string{"gamma_wan": "γ", "omega": "ω", "kappa": "κ"}[s.Factor]
	if short == "" {
		short = s.Factor
	}
	lbl := fmt.Sprintf("%s@%s", short, sizeLabel(s.Size))
	if s.Tier != "" {
		lbl += "(" + s.Tier + ")"
	}
	return lbl
}

// sizeLabel renders a byte count compactly (8k, 1M, 300).
func sizeLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// dispersion reduces per-seed probe times to (min, median, max). The
// input is not mutated; an empty slice returns zeros.
func dispersion(times []float64) (lo, med, hi float64) {
	if len(times) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), times...)
	sort.Float64s(s)
	return s[0], s[len(s)/2], s[len(s)-1]
}

// recordProbe emits the per-seed samples and their dispersion for one
// (factor, size) probe under sp, appends the ProbeStat to the planner,
// and returns the dispersion. times are in probeSeeds order.
func (pl *Planner) recordProbe(sp *obs.Span, factor, tier, stage string, size int, baseSeed int64, times []float64) (lo, med, hi float64) {
	lo, med, hi = dispersion(times)
	pl.ProbeStats = append(pl.ProbeStats, ProbeStat{
		Factor: factor, Tier: tier, Stage: stage, Size: size, Min: lo, Median: med, Max: hi,
	})
	if sp != nil {
		for i, sd := range probeSeeds(baseSeed) {
			if i < len(times) {
				sp.Event("probe.sample",
					obs.Str("factor", factor), obs.Int("size", size),
					obs.I64("seed", sd), obs.F64("t_s", times[i]))
			}
		}
		sp.Event("probe.dispersion",
			obs.Str("factor", factor), obs.Int("size", size),
			obs.F64("min_s", lo), obs.F64("median_s", med), obs.F64("max_s", hi))
	}
	return lo, med, hi
}

// checkOverlap records a ProbeWarning (and a probe.unstable event when
// tracing) when the two strategies' per-seed supports intersect.
func (pl *Planner) checkOverlap(sp *obs.Span, stage string, size int, hd, hg []float64) {
	hdLo, _, hdHi := dispersion(hd)
	hgLo, _, hgHi := dispersion(hg)
	if hdLo > hgHi || hgLo > hdHi {
		return
	}
	pl.Warnings = append(pl.Warnings, ProbeWarning{
		Stage: stage, Size: size, HDMin: hdLo, HDMax: hdHi, HGMin: hgLo, HGMax: hgHi,
	})
	if sp != nil {
		sp.Event("probe.unstable",
			obs.Str("stage", stage), obs.Int("size", size),
			obs.F64("hd_min_s", hdLo), obs.F64("hd_max_s", hdHi),
			obs.F64("hg_min_s", hgLo), obs.F64("hg_max_s", hgHi))
	}
}

// measureEnv measures op on a built environment, feeding the
// collector's aggregate counters (probe count, sim events, transport
// recovery) when tracing — the one funnel every planner probe and
// Simulate* call goes through.
func measureEnv(c *obs.Collector, env *cluster.Cluster, warmup, reps int, op func(r *mpi.Rank)) float64 {
	return measureEnvAs(c, CtrProbes, env, warmup, reps, op)
}

// measureEnvAs is measureEnv with the run counted under an explicit
// counter: probe simulations feed CtrProbes, traced validation runs
// feed CtrValidations.
func measureEnvAs(c *obs.Collector, counter string, env *cluster.Cluster, warmup, reps int, op func(r *mpi.Rank)) float64 {
	env.Net.AttachCollector(c)
	w := mpi.NewWorld(env, mpi.Config{})
	t := coll.Measure(w, warmup, reps, op).Mean()
	addRunCountersAs(c, counter, env)
	return t
}

// addRunCounters feeds one finished simulation's aggregate totals into
// the collector: one probe, its event count, and the transport's
// loss-recovery tallies. No-op on a nil collector.
func addRunCounters(c *obs.Collector, env *cluster.Cluster) {
	addRunCountersAs(c, CtrProbes, env)
}

// addRunCountersAs is addRunCounters under an explicit run counter.
func addRunCountersAs(c *obs.Collector, counter string, env *cluster.Cluster) {
	if c == nil {
		return
	}
	c.Add(counter, 1)
	c.Add(CtrSimEvents, env.Sim.Events())
	ts := env.Fabric.TotalStats()
	c.Add(CtrRetransmits, uint64(ts.Retransmits))
	c.Add(CtrTimeouts, uint64(ts.Timeouts))
}

// emitPhases records one simulate span with a phase event per
// PhaseSpan: the per-phase/per-tier timing breakdown of a traced plan
// execution. No-op on a nil collector.
func emitPhases(c *obs.Collector, alg coll.HierAlgorithm, m int, spans []coll.PhaseSpan, dims string) {
	if c == nil {
		return
	}
	name := "hier-gather"
	if alg == coll.HierDirect {
		name = "hier-direct"
	}
	sp := c.Span("simulate.phases", obs.Str("alg", name), obs.Int("m", m), obs.Str("dims", dims))
	for _, ps := range spans {
		sp.Event("phase",
			obs.Int("phase", ps.Phase), obs.Str("label", ps.Label),
			obs.F64("start_s", ps.Start), obs.F64("end_s", ps.End),
			obs.F64("dur_s", ps.Dur()), obs.Int("ranks", ps.Ranks))
	}
	sp.End()
}

// SimulateSpecTraced is SimulateSpec with execution tracing: it records
// the plan's per-phase spans (returned for rendering) and, when c is
// non-nil, emits them as simulate.phases events, publishes the built
// network's per-port counters, and feeds the aggregate counters. The
// measured time is identical to SimulateSpec's for the same arguments —
// tracing reads the simulated clock but never perturbs it.
func SimulateSpecTraced(c *obs.Collector, topo cluster.TopoNode, spec coll.TreeSpec, alg coll.HierAlgorithm, m int, seed int64, warmup, reps int) (float64, []coll.PhaseSpan, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return 0, nil, err
	}
	plan := coll.PlanHierTree(spec, alg)
	if plan.Place.NumRanks() != len(g.Env.Hosts) {
		return 0, nil, fmt.Errorf("grid: plan spec covers %d ranks, topology has %d",
			plan.Place.NumRanks(), len(g.Env.Hosts))
	}
	pt := coll.NewPhaseTrace(plan)
	t := measureEnvAs(c, CtrValidations, g.Env, warmup, reps, func(r *mpi.Rank) {
		coll.AlltoallHierPlannedTraced(r, plan, m, pt)
	})
	spans := pt.Spans()
	emitPhases(c, alg, m, spans, topo.Name)
	g.Env.Net.PublishPorts(c, fmt.Sprintf("simulate-spec/%s/%d", topo.Name, m))
	return t, spans, nil
}

// SimulateSpecVTraced is SimulateSpecV with execution tracing,
// mirroring SimulateSpecTraced for a size-bound plan.
func SimulateSpecVTraced(c *obs.Collector, topo cluster.TopoNode, spec coll.TreeSpec, alg coll.HierAlgorithm, sz coll.SizeMatrix, seed int64, warmup, reps int) (float64, []coll.PhaseSpan, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return 0, nil, err
	}
	plan := coll.PlanHierTree(spec, alg)
	if plan.Place.NumRanks() != len(g.Env.Hosts) {
		return 0, nil, fmt.Errorf("grid: plan spec covers %d ranks, topology has %d",
			plan.Place.NumRanks(), len(g.Env.Hosts))
	}
	if err := plan.BindSizes(sz); err != nil {
		return 0, nil, err
	}
	pt := coll.NewPhaseTrace(plan)
	t := measureEnvAs(c, CtrValidations, g.Env, warmup, reps, func(r *mpi.Rank) {
		coll.AlltoallHierPlannedVTraced(r, plan, pt)
	})
	spans := pt.Spans()
	emitPhases(c, alg, 0, spans, topo.Name)
	g.Env.Net.PublishPorts(c, fmt.Sprintf("simulate-specv/%s", topo.Name))
	return t, spans, nil
}
