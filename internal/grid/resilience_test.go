package grid

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// failoverSpec characterizes the two-level test grid and returns a plan
// spec with coordinators and standbys annotated, plus the name of the
// host backing rank 0 (leaf 0's default coordinator) for fault
// targeting.
func failoverSpec(t *testing.T, opt Options) (cluster.TopoNode, coll.TreeSpec, string) {
	t.Helper()
	topo := testTopo()
	pl, err := NewPlanner(topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.SelectCoordinators(32 << 10); err != nil {
		t.Fatal(err)
	}
	spec := pl.PlanSpec()
	g, err := cluster.BuildGridTree(topo, opt.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return topo, spec, g.Env.Hosts[0].Name()
}

// TestSimulateSpecFailoverEndToEnd: a planner-produced spec (standbys
// annotated by selection) survives losing leaf 0's coordinator mid-run
// in both engines — the run fails over, delivery verifies, and the
// declare/epoch telemetry lands on the collector.
func TestSimulateSpecFailoverEndToEnd(t *testing.T) {
	opt := cheapOptions()
	topo, spec, victim := failoverSpec(t, opt)
	if len(spec.Children) == 0 || len(spec.Children[0].Standbys) == 0 {
		t.Fatalf("plan spec carries no standbys: %+v", spec.Children)
	}
	fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{{Host: victim, At: 15 * sim.Millisecond}}}
	for _, sc := range []SimConfig{{Mode: sim.ModePacket}, {Mode: sim.ModeFluid}} {
		c := obs.New()
		res, tEnd, err := SimulateSpecFailover(c, sc, topo, spec, coll.HierGather,
			32<<10, opt.Seed, fs, 250*sim.Millisecond)
		if err != nil {
			t.Fatalf("%v: %v (result %+v)", sc.Mode, err, res)
		}
		if res.Epochs < 2 || len(res.Dead) != 1 || res.Dead[0] != 0 {
			t.Fatalf("%v: epochs=%d dead=%v, want a recovery epoch for rank 0", sc.Mode, res.Epochs, res.Dead)
		}
		if tEnd <= 0.015 {
			t.Fatalf("%v: finished at %.4fs, before the fault", sc.Mode, tEnd)
		}
		if got := counterValue(c, CtrFailoverDeclared); got != 1 {
			t.Fatalf("%v: %s = %d, want 1", sc.Mode, CtrFailoverDeclared, got)
		}
		if got := counterValue(c, CtrFailoverEpochs); got < 1 {
			t.Fatalf("%v: %s = %d, want >= 1", sc.Mode, CtrFailoverEpochs, got)
		}
		var sawDeclare bool
		for _, ev := range c.Events() {
			if ev.Name == EvFailoverDeclare {
				sawDeclare = true
			}
		}
		if !sawDeclare {
			t.Fatalf("%v: no %s event on the trace", sc.Mode, EvFailoverDeclare)
		}
	}
}

// TestSimulateSpecFailoverRejects covers the error paths: a schedule
// naming an unknown host, and a spec whose rank count does not match
// the topology.
func TestSimulateSpecFailoverRejects(t *testing.T) {
	opt := cheapOptions()
	topo, spec, _ := failoverSpec(t, opt)
	bad := netsim.FaultSchedule{Nodes: []netsim.NodeFault{{Host: "no-such-host", At: sim.Millisecond}}}
	if _, _, err := SimulateSpecFailover(obs.New(), SimConfig{}, topo, spec, coll.HierGather,
		1<<10, opt.Seed, bad, 0); err == nil || !strings.Contains(err.Error(), "unknown host") {
		t.Fatalf("unknown host not rejected: %v", err)
	}
	other := cluster.Uniform("t-other", wanTunedGE(), 2, 2, cluster.DefaultWAN(20*sim.Millisecond)).Tree()
	if _, _, err := SimulateSpecFailover(obs.New(), SimConfig{}, other, spec, coll.HierGather,
		1<<10, opt.Seed, netsim.FaultSchedule{}, 0); err == nil || !strings.Contains(err.Error(), "ranks") {
		t.Fatalf("rank mismatch not rejected: %v", err)
	}
}

// TestChaosDeterminism: the same fault schedule and seed produce a
// byte-identical NDJSON trace and an identical failover result on
// every run, in both engines — the property that makes chaos failures
// replayable.
func TestChaosDeterminism(t *testing.T) {
	opt := cheapOptions()
	topo, spec, victim := failoverSpec(t, opt)
	fs := netsim.GenFaultSchedule(99,
		[]string{}, []string{victim},
		netsim.FaultGenConfig{NodeLosses: 1, Horizon: 40 * sim.Millisecond})
	if len(fs.Nodes) != 1 {
		t.Fatalf("generator drew %+v", fs)
	}
	for _, sc := range []SimConfig{{Mode: sim.ModePacket}, {Mode: sim.ModeFluid}} {
		run := func() ([]byte, coll.FailoverResult, float64) {
			c := obs.New()
			c.SetClock(func() int64 { return 0 })
			res, tEnd, err := SimulateSpecFailover(c, sc, topo, spec, coll.HierGather,
				32<<10, opt.Seed, fs, 250*sim.Millisecond)
			if err != nil {
				t.Fatalf("%v: %v", sc.Mode, err)
			}
			var buf bytes.Buffer
			if err := c.WriteNDJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), res, tEnd
		}
		b1, r1, t1 := run()
		b2, r2, t2 := run()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%v: NDJSON traces differ across identical runs", sc.Mode)
		}
		if !reflect.DeepEqual(r1, r2) || t1 != t2 {
			t.Fatalf("%v: results differ: %+v @%v vs %+v @%v", sc.Mode, r1, t1, r2, t2)
		}
	}
}

// TestReportDeltaSkipsSmall: deviations inside DeltaThreshold are noise
// — nothing is invalidated, refitted, or re-ranked.
func TestReportDeltaSkipsSmall(t *testing.T) {
	topo := testTopo()
	svc, err := NewService(cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Predict(topo, 32<<10); err != nil {
		t.Fatal(err)
	}
	records := svc.Store().Len()
	rep, err := svc.ReportDelta(topo, TierKey(topo.Children[0]), Delta{RateFactor: 1.05})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Skipped || rep.DroppedRecords != 0 || rep.Predictions != nil {
		t.Fatalf("sub-threshold delta acted: %+v", rep)
	}
	if got := svc.Store().Len(); got != records {
		t.Fatalf("store went from %d to %d records on a skipped delta", records, got)
	}
	if svc.Len() != 1 {
		t.Fatalf("planner cache disturbed: %d entries", svc.Len())
	}
}

// TestReportDeltaDegradedPortReplans is the GR6 planner-side property:
// a degraded NIC reported against its leaf tier invalidates exactly
// that characterization path, rebuilds warm (strictly fewer probes than
// a cold build, with store hits on the unaffected tiers), and the
// re-selection moves coordinators off the degraded node with standbys
// re-ranked.
func TestReportDeltaDegradedPortReplans(t *testing.T) {
	const m = 64 << 10
	healthy := cluster.Uniform("delta-grid", wanTunedGE(), 2, 4,
		cluster.DefaultWAN(20*sim.Millisecond)).Tree()
	// The same grid after the monitor saw cluster 0 node 0's NIC drop
	// to a tenth: one changed NodeLinkRates entry, which renames that
	// leaf's tier so stale curves cannot shadow current ones.
	degProfile := wanTunedGE()
	degProfile.Name = "ge-degraded-n0"
	degProfile.NodeLinkRates = []int64{12_500_000}
	degraded := healthy
	degraded.Children = append([]cluster.TopoNode(nil), healthy.Children...)
	degraded.Children[0] = cluster.Leaf(degProfile, 4)

	c := obs.New()
	opt := cheapOptions()
	opt.Trace = c
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SelectCoordinators(healthy, m); err != nil {
		t.Fatal(err)
	}
	warmProbes := counterValue(c, CtrProbes)
	warmHits := counterValue(c, CtrStoreHit)

	rep, err := svc.ReportDelta(degraded, TierKey(healthy.Children[0]),
		Delta{RateFactor: 0.1, Size: m, Source: "nic-monitor"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped || rep.DroppedRecords == 0 {
		t.Fatalf("degraded-port delta did not invalidate: %+v", rep)
	}
	if len(rep.Predictions) == 0 {
		t.Fatal("replan produced no ranking")
	}
	for _, ch := range rep.Choices {
		if ch.Leaf != 0 {
			continue
		}
		if ch.Default {
			t.Fatalf("leaf 0 kept the degraded default coordinator: %+v", ch)
		}
		for _, i := range ch.Local {
			if i == 0 {
				t.Fatalf("replan kept degraded node 0 as coordinator: %+v", ch)
			}
		}
		// The degraded node may remain a last-resort standby, but the
		// headroom ranking must put it behind every healthy node.
		for pos, i := range ch.Standby {
			if i == 0 && pos != len(ch.Standby)-1 {
				t.Fatalf("replan ranked degraded node 0 ahead of healthy standbys: %+v", ch)
			}
		}
	}
	// The replanned spec must carry the moved coordinator for leaf 0
	// (a default-kept leaf leaves Coords empty) and ranked standbys on
	// every leaf for the failover executor.
	if len(rep.Spec.Children[0].Coords) == 0 {
		t.Fatalf("degraded leaf's spec carries no explicit coordinator: %+v", rep.Spec.Children[0])
	}
	for _, child := range rep.Spec.Children {
		if len(child.Standbys) == 0 {
			t.Fatalf("replanned spec child missing standbys: %+v", child)
		}
	}
	replanProbes := counterValue(c, CtrProbes) - warmProbes
	replanHits := counterValue(c, CtrStoreHit) - warmHits
	if replanProbes == 0 {
		t.Fatal("replan ran no probes for the renamed degraded tier")
	}
	if replanHits == 0 {
		t.Fatal("replan hit nothing in the store: unaffected tiers were re-probed")
	}
	if got := counterValue(c, CtrStoreRefit); got == 0 {
		t.Fatalf("%s = 0, want a refit build", CtrStoreRefit)
	}

	// Ceiling: a cold build plus selection of the degraded grid from an
	// empty store — the same work the replan did, minus the store.
	coldTrace := obs.New()
	coldOpt := cheapOptions()
	coldOpt.Trace = coldTrace
	coldPl, err := NewPlanner(degraded, coldOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coldPl.SelectCoordinators(m); err != nil {
		t.Fatal(err)
	}
	coldProbes := counterValue(coldTrace, CtrProbes)
	if replanProbes >= coldProbes {
		t.Fatalf("warm replan probed %d times, cold build %d — nothing was reused",
			replanProbes, coldProbes)
	}
}

// TestServiceCacheThrashConcurrent is the eviction/epoch edge test:
// CacheCap 1, concurrent predictions over two topologies thrashing the
// single slot while Invalidate and ReportDelta race the builds. The
// service must stay consistent (run under -race), evictions must be
// counted, an invalidation landing mid-build must bar that build's
// write-back (store.stale_drop), and a topology untouched by the chaos
// must rebuild from the store without a single probe.
func TestServiceCacheThrashConcurrent(t *testing.T) {
	c := obs.New()
	opt := cheapOptions()
	opt.CacheCap = 1
	opt.Trace = c
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	topoA := testTopo()
	topoB := invalidateTestTopo()
	aTier := TierKey(topoA.Children[0])
	bTier := TierKey(topoB.Children[0])

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 3; j++ {
				topo := topoA
				if (i+j)%2 == 0 {
					topo = topoB
				}
				if _, err := svc.Predict(topo, 32<<10); err != nil {
					t.Errorf("Predict: %v", err)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for j := 0; j < 5; j++ {
			svc.Invalidate(aTier)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		// Sub-threshold on B: must never invalidate B's curves.
		if rep, err := svc.ReportDelta(topoB, bTier, Delta{RateFactor: 1.02}); err != nil || !rep.Skipped {
			t.Errorf("ReportDelta(B): rep=%+v err=%v", rep, err)
		}
		if _, err := svc.ReportDelta(topoA, aTier, Delta{RateFactor: 0.5, Size: 32 << 10}); err != nil {
			t.Errorf("ReportDelta(A): %v", err)
		}
	}()
	close(start)
	wg.Wait()

	if got := counterValue(c, CtrServiceEvict); got == 0 {
		t.Fatalf("%s = 0 after thrashing a 1-slot cache", CtrServiceEvict)
	}
	if svc.Len() > 1 {
		t.Fatalf("cache holds %d entries past CacheCap 1", svc.Len())
	}

	// Force a stale drop deterministically if the race above never
	// produced one: invalidate A's tier while a build of A is in
	// flight; the build must complete but be barred from writing back.
	for try := 0; counterValue(c, CtrStoreStale) == 0 && try < 20; try++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := svc.Predict(topoA, 32<<10); err != nil {
				t.Errorf("Predict(A): %v", err)
			}
		}()
		time.Sleep(3 * time.Millisecond)
		svc.Invalidate(aTier)
		<-done
	}
	if got := counterValue(c, CtrStoreStale); got == 0 {
		t.Fatalf("%s = 0: no in-flight build was ever barred from writing back", CtrStoreStale)
	}

	// Settle B's records with no invalidation racing the build, then a
	// fresh service over the same store must answer for B with zero
	// probe simulations — the warm-rebuild contract.
	if _, err := svc.Predict(topoB, 32<<10); err != nil {
		t.Fatal(err)
	}
	warmTrace := obs.New()
	warmOpt := cheapOptions()
	warmOpt.Trace = warmTrace
	warm, err := NewServiceWithStore(warmOpt, svc.Store())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Predict(topoB, 32<<10); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(warmTrace, CtrProbes); got != 0 {
		t.Fatalf("warm rebuild of the untouched topology ran %d probes, want 0", got)
	}
}

// TestGoldenFailoverTraceOutline pins the span/event structure of the
// resilience pipeline — a replan-on-delta followed by a failover
// execution — the same way TestGoldenTraceOutline pins the planning
// pipeline. Refresh with `go test ./internal/grid -run GoldenFailover
// -update`.
func TestGoldenFailoverTraceOutline(t *testing.T) {
	c := obs.New()
	c.SetClock(func() int64 { return 0 })
	opt := cheapOptions()
	opt.Trace = c
	topo := testTopo()
	svc, err := NewServiceWithStore(opt, NewCurveStore())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SelectCoordinators(topo, 32<<10); err != nil {
		t.Fatal(err)
	}
	c.Reset() // keep the outline to the resilience spans only
	rep, err := svc.ReportDelta(topo, TierKey(topo.Children[0]),
		Delta{RateFactor: 0.5, Size: 32 << 10, Source: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cluster.BuildGridTree(topo, opt.Seed)
	if err != nil {
		t.Fatal(err)
	}
	fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{
		{Host: g.Env.Hosts[0].Name(), At: 15 * sim.Millisecond},
	}}
	if _, _, err := SimulateSpecFailover(c, SimConfig{}, topo, rep.Spec, coll.HierGather,
		32<<10, opt.Seed, fs, 250*sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	got := strings.Join(c.Outline(), "\n") + "\n"
	golden := filepath.Join("testdata", "failover_outline.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("failover outline drifted from %s (run with -update if intended)\ngot %d lines, want %d\n%s",
			golden, strings.Count(got, "\n"), strings.Count(string(want), "\n"), firstDiff(got, string(want)))
	}
	var buf bytes.Buffer
	if err := c.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateNDJSON(&buf); err != nil || n == 0 {
		t.Fatalf("resilience trace failed schema validation: n=%d err=%v", n, err)
	}
}
