package grid

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Observability names of the failover runtime.
const (
	// SpanFailover wraps one failover execution end to end.
	SpanFailover = "failover.run"
	// EvFailoverDeclare marks one confirmed death declaration.
	EvFailoverDeclare = "failover.declare"
	// EvFailoverEpoch marks a recovery epoch opening.
	EvFailoverEpoch = "failover.epoch"
	// CtrFailoverEpochs counts recovery epochs across a trace.
	CtrFailoverEpochs = "failover.epochs"
	// CtrFailoverDeclared counts declared deaths across a trace.
	CtrFailoverDeclared = "failover.declared"
)

// SimulateSpecFailover builds the topology, arms the fault schedule on
// its network, and executes one hierarchical plan (compiled from spec,
// e.g. Planner.PlanSpec with its coordinator and standby annotations)
// under the epoch-failover runtime: rendezvous timeouts are checked
// against the schedule's ground truth, confirmed-dead coordinators are
// replaced by the spec's ranked standbys, and delivery stays
// exactly-once among survivors (coll.FailoverRun). It returns the
// failover result and the completion time of the latest surviving rank
// in seconds. A zero timeout takes the runtime's default. The run is
// counted under planner.validations; declarations and epochs land on
// the collector as events inside a failover.run span.
//
// An error is returned for a malformed topology or schedule, and also
// when the run finishes but violates its own delivery invariants — the
// result is still returned alongside for diagnosis.
func SimulateSpecFailover(c *obs.Collector, sc SimConfig, topo cluster.TopoNode, spec coll.TreeSpec, alg coll.HierAlgorithm, m int, seed int64, fs netsim.FaultSchedule, timeout sim.Time) (coll.FailoverResult, float64, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return coll.FailoverResult{}, 0, err
	}
	applySimConfig(g, sc)
	plan := coll.PlanHierTree(spec, alg)
	if plan.Place.NumRanks() != len(g.Env.Hosts) {
		return coll.FailoverResult{}, 0, fmt.Errorf("grid: plan spec covers %d ranks, topology has %d",
			plan.Place.NumRanks(), len(g.Env.Hosts))
	}
	if err := g.Env.Net.ApplyFaults(fs); err != nil {
		return coll.FailoverResult{}, 0, err
	}
	g.Env.Net.AttachCollector(c)
	sp := c.Span(SpanFailover, obs.Str("topo", topo.Name), obs.Int("m", m),
		obs.Int("link_faults", len(fs.Links)), obs.Int("node_faults", len(fs.Nodes)))
	fr := coll.NewFailoverRun(plan, m, coll.FailoverConfig{
		Timeout: timeout,
		IsDead: func(rank int) bool {
			return fs.NodeLostBy(g.Env.Hosts[rank].Name(), g.Env.Sim.Now())
		},
		Quench: func(rank int) { g.Env.Fabric.Quench(rank) },
		OnDeclare: func(rank, epoch int, now sim.Time) {
			c.Add(CtrFailoverDeclared, 1)
			sp.Event(EvFailoverDeclare, obs.Int("rank", rank), obs.Int("epoch", epoch),
				obs.F64("t", now.Seconds()))
		},
		OnEpoch: func(epoch int, now sim.Time) {
			c.Add(CtrFailoverEpochs, 1)
			sp.Event(EvFailoverEpoch, obs.Int("epoch", epoch), obs.F64("t", now.Seconds()))
		},
	})
	w := mpi.NewWorld(g.Env, mpi.Config{})
	w.Run(func(r *mpi.Rank) { fr.Run(r) })
	res := fr.Result()
	var tEnd sim.Time
	for _, ft := range res.FinishAt {
		if ft > tEnd {
			tEnd = ft
		}
	}
	addRunCountersAs(c, CtrValidations, g.Env)
	sp.End(obs.Int("epochs", res.Epochs), obs.Int("dead", len(res.Dead)),
		obs.Int("delivered", res.DeliveredBlocks), obs.Int("waived", res.WaivedBlocks))
	if err := fr.Verify(); err != nil {
		return res, tEnd.Seconds(), err
	}
	return res, tEnd.Seconds(), nil
}
