package grid

import (
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Observability names of the failover runtime.
const (
	// SpanFailover wraps one failover execution end to end.
	SpanFailover = "failover.run"
	// EvFailoverDeclare marks one confirmed death declaration.
	EvFailoverDeclare = "failover.declare"
	// EvFailoverEpoch marks a recovery epoch opening.
	EvFailoverEpoch = "failover.epoch"
	// CtrFailoverEpochs counts recovery epochs across a trace.
	CtrFailoverEpochs = "failover.epochs"
	// CtrFailoverDeclared counts declared deaths across a trace.
	CtrFailoverDeclared = "failover.declared"
)

// SimulateSpecFailover builds the topology, arms the fault schedule on
// its network, and executes one hierarchical plan (compiled from spec,
// e.g. Planner.PlanSpec with its coordinator and standby annotations)
// under the epoch-failover runtime: rendezvous timeouts are checked
// against the schedule's ground truth, confirmed-dead coordinators are
// replaced by the spec's ranked standbys, and delivery stays
// exactly-once among survivors (coll.FailoverRun). It returns the
// failover result and the completion time of the latest surviving rank
// in seconds. A zero timeout takes the runtime's default. The run is
// counted under planner.validations; declarations and epochs land on
// the collector as events inside a failover.run span.
//
// An error is returned for a malformed topology or schedule, and also
// when the run finishes but violates its own delivery invariants — the
// result is still returned alongside for diagnosis.
func SimulateSpecFailover(c *obs.Collector, sc SimConfig, topo cluster.TopoNode, spec coll.TreeSpec, alg coll.HierAlgorithm, m int, seed int64, fs netsim.FaultSchedule, timeout sim.Time) (coll.FailoverResult, float64, error) {
	// All-to-All is one kind of the collective suite: the kind-general
	// runner compiles the identical plan (coll.PlanKindTree pins
	// KindAlltoall to coll.PlanHierTree) and runs the identical failover
	// runtime, so this delegation changes nothing but the span's kind
	// attribute.
	return SimulateSpecKindFailover(c, sc, topo, spec, coll.KindAlltoall, alg, m, seed, fs, timeout)
}
