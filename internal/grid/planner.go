// Package grid implements the contention-aware planner for multi-level
// grid All-to-All: given a cluster topology tree (cluster.TopoNode) and
// a message size, it predicts the completion time of each candidate
// strategy (flat direct exchange, hierarchical gather, hierarchical
// direct) from the per-cluster contention signatures and per-tier WAN
// terms, and selects the best — the paper's "performance prediction
// framework" use case, extended from one cluster to grids of grids.
//
// Characterization follows the paper's Section 7 procedure per member
// network: a ping-pong calibrates the contention-free Hockney
// parameters, a small All-to-All sweep at a modest process count fits
// the contention signature, and the signature extrapolates. Each WAN
// tier is characterized empirically on a minimal (one node per cluster)
// instance of the same topology — a ping-pong between two subtrees
// joined at that tier, so propagation, router forwarding and transport
// window effects land in the tier's curve. The contention factors the
// analytics cannot supply are fitted from capped probe grids, one tier
// at a time from the innermost outward.
package grid

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/signature"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Strategy is one candidate All-to-All execution strategy on a grid.
type Strategy int

const (
	// FlatDirect runs the paper's Algorithm 1 over the whole grid,
	// ignoring topology.
	FlatDirect Strategy = iota
	// HierGather runs coll.HierGather (sequential gather / per-tier
	// coordinator exchange / scatter).
	HierGather
	// HierDirect runs coll.HierDirect (intra-cluster exchange
	// overlapped with the coordinator relay).
	HierDirect
)

// Strategies lists all candidate strategies.
var Strategies = []Strategy{FlatDirect, HierGather, HierDirect}

// String names the strategy as used in experiment output.
func (s Strategy) String() string {
	switch s {
	case FlatDirect:
		return "flat-direct"
	case HierGather:
		return "hier-gather"
	case HierDirect:
		return "hier-direct"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// tagWANProbe is the reserved tag of the WAN ping-pong probe.
const tagWANProbe int32 = 7100

// Options tunes planner characterization. Zero values take defaults.
type Options struct {
	// FitN is the process count n' at which each member network's
	// signature is fitted (default 8).
	FitN int
	// FitSizes is the message sweep of the fit (default 16k..512k, 5
	// points; at least 4 distinct positive sizes are required).
	FitSizes []int
	// WANSizes is the transfer sweep of the per-tier WAN ping-pong
	// curves (default 2k..1M, 5 points; at least 2 distinct positive
	// sizes are required — duplicates are deduplicated, never measured
	// into zero-width curve segments).
	WANSizes []int
	// ProbeSizes are the per-pair message sizes the contention-factor
	// probes fit each factor curve at (default 8 KiB / 64 KiB /
	// 256 KiB). Every distinct size contributes one fitted point per
	// factor (γ_wan per tier, ω, κ); a single size yields single-point
	// curves — the scalar-factor model, whose lookups are
	// size-independent and pinned bit-identical to the pre-curve
	// predictions at the model level (the fitted values themselves come
	// from the multi-seed median probes below, not the pre-curve
	// single-seed probe). Every probe runs at least three seeds and
	// fits the median run — extending to five when the first three
	// disperse past StableSpread — stabilizing the fits, and with them
	// the flat-vs-hier crossover, against heavy-tailed loss-recovery
	// draws (see probeTypical).
	ProbeSizes []int
	// ProbeSize is the per-pair message size of the per-node headroom
	// ping-pongs (default 64 KiB; the probe transfers 4× this).
	ProbeSize int
	// ProbeCap caps per-cluster node counts in probe grids (default 4):
	// large enough that uplink sharing and LAN/WAN overlap interference
	// show up, small enough to stay affordable.
	ProbeCap int
	// MaxCoords caps how many coordinators SelectCoordinators may split
	// one leaf's relay across (default 2).
	MaxCoords int
	// Reps is the repetitions per measured point (default 2).
	Reps int
	// Seed drives the characterization simulations.
	Seed int64
	// StableSpread is the stop-when-stable threshold of the
	// contention-factor probes (default 0.5): each probe runs three
	// seeds, and only when the per-seed spread (max−min) exceeds
	// StableSpread × median — the probe.unstable dispersion signal —
	// does it sample the two extra seeds (bounded at five, median of
	// all). Stable probes stay at three samples; seed-lottery cases
	// (overlapping strategy supports, RTO-noisy sizes) buy a wider
	// median. Must be positive and finite.
	StableSpread float64
	// Trace, when non-nil, collects the characterization's spans and
	// events (per-tier WAN probes, per-seed factor-probe samples and
	// dispersion, fitted curve points) plus aggregate counters (probe
	// count, simulator events, transport retransmits). NewPlanner also
	// installs it on the assembled Model, so later predictions emit
	// factor.lookup events into the same trace. Nil disables all
	// tracing; the disabled paths cost nil checks only.
	Trace *obs.Collector
	// SimMode selects the simulation engine for WAN probe and
	// validation simulations (default sim.ModePacket, the ground
	// truth). sim.ModeFluid prices large WAN transfers analytically —
	// much faster, within the model's acceptance tolerance above
	// FluidThreshold — and changes fitted values, so it is part of the
	// store fingerprint. LAN-only simulations (leaf signature fits,
	// headroom probes) are unaffected: the fluid path only engages on
	// WAN-crossing transfers.
	SimMode sim.Mode
	// FluidThreshold is the payload-byte cutoff below which fluid-mode
	// simulations still run packet-level (default
	// netsim.DefaultFluidThreshold = 32 KiB, the RTO-noisy regime of
	// docs/MODEL.md §6). Ignored under ModePacket.
	FluidThreshold int
	// Workers bounds the probe worker pool: independent probe
	// simulations (per-seed, per-size) fan out across up to Workers
	// goroutines, each on its own Simulator. Default
	// runtime.GOMAXPROCS(0); 1 forces fully sequential execution.
	// Fitted results are bit-identical for any Workers value, so it is
	// excluded from the store fingerprint.
	Workers int
	// CacheCap bounds Service's planner cache: past CacheCap cached
	// planners, the least-recently-used ready entry is evicted (and
	// rebuilds warm from the store if asked for again). Default 256.
	// Excluded from the store fingerprint.
	CacheCap int
}

func (o Options) withDefaults() Options {
	if o.FitN == 0 {
		o.FitN = 8
	}
	if len(o.FitSizes) == 0 {
		o.FitSizes = []int{16 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
	}
	if len(o.WANSizes) == 0 {
		o.WANSizes = []int{2 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	if len(o.ProbeSizes) == 0 {
		o.ProbeSizes = []int{8 << 10, 64 << 10, 256 << 10}
	}
	if o.ProbeSize == 0 {
		o.ProbeSize = 64 << 10
	}
	if o.ProbeCap == 0 {
		o.ProbeCap = 4
	}
	if o.MaxCoords == 0 {
		o.MaxCoords = 2
	}
	if o.Reps == 0 {
		o.Reps = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.StableSpread == 0 {
		o.StableSpread = 0.5
	}
	if o.FluidThreshold == 0 {
		o.FluidThreshold = netsim.DefaultFluidThreshold
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheCap == 0 {
		o.CacheCap = 256
	}
	o.FitSizes = sortedDistinct(o.FitSizes)
	o.WANSizes = sortedDistinct(o.WANSizes)
	o.ProbeSizes = sortedDistinct(o.ProbeSizes)
	return o
}

// sortedDistinct returns a sorted copy of sizes with duplicates
// removed; the caller's slice is never mutated. Non-positive entries
// are kept (leftmost after sorting) so validation can reject them.
func sortedDistinct(sizes []int) []int {
	out := append([]int(nil), sizes...)
	sort.Ints(out)
	kept := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			kept = append(kept, v)
		}
	}
	return kept
}

// validate rejects probe/fit sweeps a characterization cannot use:
// non-positive sizes, too few distinct points (a WAN curve needs ≥ 2
// to interpolate — equal-size points would make Transfer's segments
// zero-width — and the signature fit needs ≥ 4 samples for its four
// parameters). Called by NewPlanner after defaults are applied, so a
// zero Options always passes.
func (o Options) validate() error {
	for _, c := range []struct {
		name     string
		sizes    []int
		distinct int
	}{
		{"FitSizes", o.FitSizes, 4},
		{"WANSizes", o.WANSizes, 2},
		{"ProbeSizes", o.ProbeSizes, 1},
	} {
		if len(c.sizes) > 0 && c.sizes[0] <= 0 {
			return fmt.Errorf("grid: %s contains non-positive size %d", c.name, c.sizes[0])
		}
		if len(c.sizes) < c.distinct {
			return fmt.Errorf("grid: %s has %d distinct size(s), need at least %d",
				c.name, len(c.sizes), c.distinct)
		}
	}
	if o.ProbeSize <= 0 {
		return fmt.Errorf("grid: ProbeSize %d is not positive", o.ProbeSize)
	}
	if o.StableSpread <= 0 || math.IsNaN(o.StableSpread) || math.IsInf(o.StableSpread, 0) {
		return fmt.Errorf("grid: StableSpread %v is not a positive finite threshold", o.StableSpread)
	}
	if o.FluidThreshold < 0 {
		return fmt.Errorf("grid: FluidThreshold %d is negative", o.FluidThreshold)
	}
	if o.Workers < 0 {
		return fmt.Errorf("grid: Workers %d is negative", o.Workers)
	}
	if o.CacheCap < 0 {
		return fmt.Errorf("grid: CacheCap %d is negative", o.CacheCap)
	}
	return nil
}

// fingerprint renders the characterization-relevant options as the
// store's compatibility key: two planners may share fitted curves only
// when every probe sweep, cap, and seed matches — the fitted values are
// functions of all of them. Trace is excluded (tracing never perturbs
// fits; see TestTracingDoesNotPerturbResults), as are Workers and
// CacheCap (parallel characterization is pinned bit-identical to
// sequential, and the cache cap never touches fitted values). SimMode
// is included when fluid — fluid-mode fits are a different (cheaper)
// measurement — with the packet-mode rendering kept byte-identical to
// the pre-fluid format so existing stores stay valid. Call after
// withDefaults.
func (o Options) fingerprint() string {
	fp := fmt.Sprintf("fitn=%d fit=%v wan=%v probes=%v psize=%d pcap=%d maxc=%d reps=%d seed=%d stable=%g",
		o.FitN, o.FitSizes, o.WANSizes, o.ProbeSizes, o.ProbeSize, o.ProbeCap,
		o.MaxCoords, o.Reps, o.Seed, o.StableSpread)
	if o.SimMode == sim.ModeFluid {
		fp += fmt.Sprintf(" mode=fluid thr=%d", o.FluidThreshold)
	}
	return fp
}

// SimConfig selects the simulation engine a ground-truth run uses.
// The zero value is full packet-level simulation.
type SimConfig struct {
	// Mode is the engine (packet or fluid).
	Mode sim.Mode
	// FluidThreshold is the packet-fallback byte cutoff under
	// ModeFluid; zero selects netsim.DefaultFluidThreshold.
	FluidThreshold int
}

// simCfg extracts the engine selection from planner options.
func (o Options) simCfg() SimConfig {
	return SimConfig{Mode: o.SimMode, FluidThreshold: o.FluidThreshold}
}

// applySimConfig arms the selected engine on a freshly built grid.
func applySimConfig(g *cluster.Grid, sc SimConfig) {
	if sc.Mode == sim.ModeFluid {
		g.Env.Net.EnableFluid(netsim.FluidConfig{Threshold: sc.FluidThreshold})
	}
}

// probeSeeds returns the candidate seeds a contention-factor probe may
// run over, in execution order (probeTypical keeps the median of the
// seeds it actually ran): the first three always run — lossy-TCP WAN
// completion is seed-sensitive everywhere, worst in the RTO-noisy
// small bracket (≤ 32 KiB, docs/MODEL.md §6), and a median needs an
// odd sample — and the last two only when the first three disperse
// past Options.StableSpread. The offsets are fixed primes so the same
// base seed reproduces the same samples in any process.
func probeSeeds(base int64) []int64 {
	return []int64{base, base + 97, base + 193, base + 389, base + 577}
}

// probeSeedsInitial is how many probeSeeds entries every probe runs;
// the remainder run only on an unstable first dispersion.
const probeSeedsInitial = 3

// Planner predicts and ranks grid All-to-All strategies.
type Planner struct {
	// Topo is the topology tree the planner was characterized for.
	Topo cluster.TopoNode
	// Model is the assembled multi-level grid model.
	Model model.GridModel
	// Hockney holds the calibrated point-to-point parameters per leaf
	// cluster, in tree order (diagnostic).
	Hockney []model.Hockney
	// Headroom holds the probed per-node NIC rates in bytes/s, per leaf
	// in tree order: Headroom[l][i] is leaf l's node i. Coordinator
	// selection ranks candidates by it.
	Headroom [][]float64
	// Selected holds the per-leaf coordinator selection after
	// SelectCoordinators; nil until then (the lowest-rank default).
	Selected []CoordChoice
	// Warnings flags seed-sensitive strategy probes discovered while
	// fitting (see ProbeWarning). Populated whether or not a Trace
	// collector is set.
	Warnings []ProbeWarning
	// ProbeStats holds every contention-factor probe's per-seed
	// dispersion in fit order, for diagnostics rendering. Populated
	// whether or not a Trace collector is set.
	ProbeStats []ProbeStat

	opt Options
	// sv is the build's window onto the optional CurveStore (always
	// non-nil; inert without a store). Kept on the planner so the
	// post-selection refit (coords.go) shares the same cache and
	// hit/miss accounting as the initial characterization.
	sv *storeView
	// kindGamma caches the per-kind hierarchical correction curves,
	// fitted lazily on the first PredictKind of each kind (kinds.go).
	// kindMu guards it; All-to-All never takes an entry.
	kindMu    sync.Mutex
	kindGamma map[coll.Kind]model.FactorCurve
}

// NewPlanner characterizes every member network and every WAN tier of
// the topology and assembles the grid model. Identical member profiles
// (uniform grids) are characterized once, as are structurally identical
// subtrees during contention-factor fitting.
func NewPlanner(topo cluster.TopoNode, opt Options) (*Planner, error) {
	return newPlannerWithStore(topo, opt, nil)
}

// newPlannerWithStore is NewPlanner against an optional persistent
// CurveStore: every characterization artifact — leaf Hockney+signature
// fits, per-node headroom, per-tier WAN curves, fitted γ_wan and ω/κ
// curves — is looked up in the store before probing and written back
// after, with store.hit/store.miss events and counters per record kind
// (so planner.probes stays the cache-regression signal: a fully warm
// store builds a planner with zero probe simulations). A nil store
// degrades to today's NewPlanner exactly. The simulations behind every
// record are deterministic in (topology, Options), so a warm build's
// fitted values are bit-identical to a cold build's — the property the
// service tests pin.
func newPlannerWithStore(topo cluster.TopoNode, opt Options, st *CurveStore) (*Planner, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if st != nil {
		// Fitted values are functions of the probe configuration: refuse
		// to serve one configuration's curves to another.
		if err := st.bind(opt.fingerprint()); err != nil {
			return nil, err
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if topo.NumLeaves() < 2 {
		// A single cluster is the paper's base case: use the plain
		// contention signature, there is no WAN to characterize.
		return nil, fmt.Errorf("grid: topology %q has %d leaf cluster(s), planner needs at least 2",
			topo.Name, topo.NumLeaves())
	}
	var checkGroups func(t cluster.TopoNode) error
	checkGroups = func(t cluster.TopoNode) error {
		if t.IsLeaf() {
			return nil
		}
		if len(t.Children) < 2 {
			return fmt.Errorf("grid: topology %q has a single-child tier, planner needs ≥ 2 subtrees per tier", topo.Name)
		}
		for _, c := range t.Children {
			if err := checkGroups(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := checkGroups(topo); err != nil {
		return nil, err
	}

	pl := &Planner{Topo: topo, opt: opt, sv: newStoreView(st, opt.Trace),
		kindGamma: map[coll.Kind]model.FactorCurve{}}
	rootSpan := opt.Trace.Span("planner.characterize",
		obs.Str("topo", topo.Name), obs.Int("leaves", topo.NumLeaves()),
		obs.Int("nodes", topo.TotalNodes()))
	defer rootSpan.End()

	// Leaf characterization: ping-pong Hockney plus the paper's
	// signature fit, cached on the full profile value (members sharing a
	// name but not tuning must not share a fit).
	type charac struct {
		h   model.Hockney
		sig model.Signature
	}
	cache := map[string]charac{}
	for _, lf := range topo.Leaves() {
		p := lf.Profile
		if _, ok := cache[profileKey(p)]; ok {
			continue
		}
		if rec, ok := pl.sv.leaf(rootSpan, profileKey(p)); ok {
			cache[profileKey(p)] = charac{h: rec.Hockney, sig: rec.Signature}
			continue
		}
		sp := rootSpan.Span("planner.leaf_fit", obs.Str("profile", p.Name), obs.Int("fit_n", opt.FitN))
		h := calib.PingPong(p, mpi.Config{}, opt.Seed, calib.PingPongConfig{Reps: 3})
		// The per-size sweep simulations are independent (each builds
		// its own cluster and Simulator from a size-indexed seed), so
		// they fan out across the worker pool; events are emitted by
		// this goroutine afterwards, in size order, so traces stay
		// deterministic.
		times := make([]float64, len(opt.FitSizes))
		parallelDo(opt.Workers, len(opt.FitSizes), func(i int) {
			m := opt.FitSizes[i]
			cl := cluster.Build(p, opt.FitN, opt.Seed+int64(i)*101)
			times[i] = measureEnv(opt.Trace, cl, 1, opt.Reps, func(r *mpi.Rank) {
				coll.Alltoall(r, m, coll.PostAll)
			})
		})
		samples := make([]signature.Sample, 0, len(opt.FitSizes))
		for i, m := range opt.FitSizes {
			sp.Event("fit.sample", obs.Int("size", m), obs.F64("t_s", times[i]))
			samples = append(samples, signature.Sample{M: m, T: times[i]})
		}
		sig, _, err := signature.Fit(h, opt.FitN, samples, signature.Options{})
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("grid: fitting %s: %w", p.Name, err)
		}
		sp.End()
		cache[profileKey(p)] = charac{h: h, sig: sig}
		pl.sv.putLeaf(profileKey(p), storedLeaf{Hockney: h, Signature: sig})
	}
	for _, lf := range topo.Leaves() {
		pl.Hockney = append(pl.Hockney, cache[profileKey(lf.Profile)].h)
	}

	// Per-node uplink headroom, probed once per distinct (profile, size)
	// member on a standalone leaf build — the data SelectCoordinators
	// ranks coordinator candidates by. Probed eagerly with the rest of
	// characterization: a couple of LAN ping-pongs per node is noise
	// next to the signature sweeps, and Headroom is part of the
	// planner's published characterization.
	hrCache := map[string][]float64{}
	for _, lf := range topo.Leaves() {
		key := fmt.Sprintf("%s|%d", profileKey(lf.Profile), lf.Nodes)
		rates, ok := hrCache[key]
		if !ok {
			if stored, hit := pl.sv.headroom(rootSpan, key); hit {
				rates = stored
			} else {
				rates = probeHeadroom(lf.Profile, lf.Nodes, opt)
				pl.sv.putHeadroom(key, rates)
			}
			hrCache[key] = rates
		}
		pl.Headroom = append(pl.Headroom, rates)
	}

	// Model tree mirroring the topology, with per-tier WAN curves
	// measured on minimal instances of the grid. Structurally identical
	// tiers share one measured curve through the cache.
	curves := map[string]model.WANModel{}
	root, err := buildModelTree(topo, 0, func(p cluster.Profile) model.Signature { return cache[profileKey(p)].sig }, topo, curves, opt, pl.sv, rootSpan)
	if err != nil {
		return nil, err
	}
	gm := model.GridModel{Root: root}
	if err := gm.Validate(); err != nil {
		return nil, err
	}

	// Contention-factor curves: per-tier γ_wan from flat probes at every
	// probe size, innermost tiers first, then the strategy factors ω
	// and κ on the whole tree.
	fitted := map[string]model.FactorCurve{}
	if err := pl.fitTierGammas(topo, root, fitted, rootSpan); err != nil {
		return nil, err
	}
	omega, kappa, err := pl.fitStrategyFactors(topo, gm, rootSpan)
	if err != nil {
		return nil, err
	}
	gm.OverlapGamma = omega
	gm.GatherGamma = kappa
	// A build that mixed hits and misses is an incremental re-fit: it
	// re-probed only the records the store lacked (e.g. one invalidated
	// tier) and reused every other cached curve.
	pl.sv.noteRefit(rootSpan)
	// The assembled model inherits the trace collector so predictions
	// report which fitted curve points they interpolate; the capped
	// probe models used during fitting stay untraced on purpose —
	// inversion would otherwise flood the trace with internal lookups.
	gm.Obs = opt.Trace
	pl.Model = gm
	return pl, nil
}

// buildModelTree mirrors the topology into model nodes, measuring each
// tier's WAN transfer curve as it goes. base is the global leaf index
// of the subtree's first leaf; curves caches measurements across
// structurally identical tiers (the probe path never leaves the
// subtree, so isomorphic subtrees measure the same curve).
func buildModelTree(t cluster.TopoNode, base int, sigOf func(cluster.Profile) model.Signature, full cluster.TopoNode, curves map[string]model.WANModel, opt Options, sv *storeView, tsp *obs.Span) (*model.ModelNode, error) {
	if t.IsLeaf() {
		return model.LeafNode(t.Nodes, sigOf(t.Profile)), nil
	}
	v := &model.ModelNode{}
	off := base
	for _, c := range t.Children {
		cm, err := buildModelTree(c, off, sigOf, full, curves, opt, sv, tsp)
		if err != nil {
			return nil, err
		}
		v.Children = append(v.Children, cm)
		off += c.NumLeaves()
	}
	key := topoKey(t)
	if wan, ok := curves[key]; ok {
		v.Wan = wan
		return v, nil
	}
	if rec, ok := sv.tier(tsp, key); ok {
		// The stored record carries the measured curve only; Gamma stays
		// the identity curve until fitTierGammas fits (or restores) it,
		// exactly as after a fresh characterizeTier.
		wan := model.WANModel{Curve: rec.Curve, BetaWire: rec.BetaWire}
		curves[key] = wan
		v.Wan = wan
		return v, nil
	}
	// Probe between the first leaf of the tier's first child and the
	// first leaf of its second child: their paths diverge at this tier.
	wan, err := characterizeTier(full, t, base, base+t.Children[0].NumLeaves(), opt, tsp)
	if err != nil {
		return nil, err
	}
	curves[key] = wan
	sv.putTier(key, storedTier{Curve: wan.Curve, BetaWire: wan.BetaWire})
	v.Wan = wan
	return v, nil
}

// characterizeTier measures the one-way transfer curve of tier `node`:
// a ping-pong between ranks a and b (leaves whose paths diverge at the
// tier) on a minimal (one node per cluster) instance of the full
// topology — the same wires, routers and transport tuning as the real
// deployment, so slow-start and window effects land in the curve — and
// derives the wire-rate serialization floor from the tier's link rate.
// Each tier probes a freshly built mini grid on purpose: sharing one
// warm world across tiers would let one probe's transport state (warmed
// congestion windows on shared access links) bleed into the next
// tier's curve.
func characterizeTier(full cluster.TopoNode, node cluster.TopoNode, a, b int, opt Options, parent *obs.Span) (model.WANModel, error) {
	sp := parent.Span("tier.characterize",
		obs.Str("tier", node.Name), obs.Int("height", node.Height()),
		obs.Int("rank_a", a), obs.Int("rank_b", b))
	defer sp.End()
	mini := cappedTree(full, 1)
	g, err := cluster.BuildGridTree(mini, opt.Seed+31)
	if err != nil {
		return model.WANModel{}, err
	}
	g.Env.Net.AttachCollector(opt.Trace)
	applySimConfig(g, opt.simCfg())
	// Sort and deduplicate defensively (validate already rejects sweeps
	// with < 2 distinct sizes): duplicate sizes would measure curve
	// points with equal Bytes, whose zero-width segments Transfer can
	// only skip, not interpolate.
	sizes := sortedDistinct(opt.WANSizes)
	times := make(map[int][]float64, len(sizes))
	w := mpi.NewWorld(g.Env, mpi.Config{})
	w.Run(func(r *mpi.Rank) {
		if r.ID() != a && r.ID() != b {
			return
		}
		for _, m := range sizes {
			// One unmeasured repetition warms the congestion window,
			// matching the warmed-up conditions of measured exchanges.
			for rep := 0; rep <= opt.Reps; rep++ {
				if r.ID() == a {
					t0 := r.Now()
					r.Send(b, tagWANProbe, m)
					r.Recv(b, tagWANProbe)
					if rep > 0 {
						times[m] = append(times[m], (r.Now()-t0).Seconds()/2)
					}
				} else {
					r.Recv(a, tagWANProbe)
					r.Send(a, tagWANProbe, m)
				}
			}
		}
	})
	addRunCounters(opt.Trace, g.Env)
	curve := make([]model.WANPoint, 0, len(sizes))
	for _, m := range sizes {
		ts := times[m]
		if len(ts) == 0 {
			return model.WANModel{}, fmt.Errorf("grid: WAN probe produced no samples for %d bytes", m)
		}
		mean := 0.0
		for rep, t := range ts {
			sp.Event("probe.wan", obs.Int("size", m), obs.Int("rep", rep), obs.F64("t_s", t))
			mean += t
		}
		mean /= float64(len(ts))
		sp.Event("wan.point", obs.Int("size", m), obs.F64("t_s", mean))
		curve = append(curve, model.WANPoint{Bytes: m, T: mean})
	}
	return model.WANModel{
		Curve: curve,
		// The serialization floor uses the tier's own subtree profile:
		// framing overhead may differ between branches of a mixed grid.
		BetaWire: wireGap(node.Leaves()[0].Profile, node.WAN.Rate),
		// Gamma stays the identity curve until fitTierGammas fits it.
	}, nil
}

// profileKey renders a profile value as a cache key: every field
// explicitly, strings quoted, slices element-wise. A reflective
// rendering (%+v) is fragile here — it neither quotes strings (a crafted
// Name could imitate field boundaries) nor pins a format for future
// field types (maps iterate in random order, floats round) — and a key
// collision would silently share one characterization between members
// that need separate fits. When cluster.Profile (or its transport
// configs) grows a field, extend this key; the collision regression
// test enumerates fields to catch omissions.
func profileKey(p cluster.Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%q kind=%d link=%d/%d edge=%d/%t leaves=%d/%d up=%d/%d core=%d rx=%d/%d",
		p.Name, p.Kind, p.LinkRate, p.LinkLatency, p.PortBuffer, p.Lossless,
		p.Leaves, p.NodesPerLeaf, p.UplinkRate, p.UplinkLatency, p.CorePortBuffer,
		p.RxCostBase, p.RxCostPerConn)
	b.WriteString(" rates=[")
	for i, r := range p.NodeLinkRates {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	fmt.Fprintf(&b, "] tcp={%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d}",
		p.TCP.MSS, p.TCP.HeaderSize, p.TCP.AckSize, p.TCP.RcvWindow, p.TCP.InitCwnd,
		p.TCP.RTOMin, p.TCP.RTOMax, p.TCP.TxQueueLimit, p.TCP.DelAckTimeout, p.TCP.AckJitter,
		p.TCP.MaxRetries)
	fmt.Fprintf(&b, " gm={%d,%d}", p.GM.MTU, p.GM.HeaderSize)
	return b.String()
}

// wanKey renders a WAN tier's parameters for topoKey, field-wise like
// profileKey.
func wanKey(w cluster.WANConfig) string {
	return fmt.Sprintf("rate=%d lat=%d buf=%d proc=%d mesh=%t",
		w.Rate, w.Latency, w.PortBuffer, w.ProcDelay, w.Mesh)
}

// topoKey renders a subtree as a canonical string: profile and node
// count at leaves, WAN parameters and child keys at groups. Used to
// cache contention-factor fits across structurally identical subtrees;
// node Names are informational and deliberately excluded, so sibling
// tiers that differ only in their generated names share one fit.
func topoKey(t cluster.TopoNode) string {
	if t.IsLeaf() {
		return fmt.Sprintf("L{%s|%d}", profileKey(t.Profile), t.Nodes)
	}
	key := fmt.Sprintf("G{%s|", wanKey(t.WAN))
	for _, c := range t.Children {
		key += topoKey(c) + ","
	}
	return key + "}"
}

// cappedTree copies a topology with every leaf capped to at most `cap`
// nodes (cap < 1 means uncapped).
func cappedTree(t cluster.TopoNode, cap int) cluster.TopoNode {
	if t.IsLeaf() {
		if cap >= 1 && t.Nodes > cap {
			t.Nodes = cap
		}
		return t
	}
	children := make([]cluster.TopoNode, len(t.Children))
	for i, c := range t.Children {
		children[i] = cappedTree(c, cap)
	}
	t.Children = children
	return t
}

// cappedModel clones a model subtree with leaf sizes matching
// cappedTree(topo, cap).
func cappedModel(v *model.ModelNode, cap int) *model.ModelNode {
	if v.IsLeaf() {
		size := v.Size
		if cap >= 1 && size > cap {
			size = cap
		}
		return model.LeafNode(size, v.LAN)
	}
	out := &model.ModelNode{Wan: v.Wan}
	for _, c := range v.Children {
		out.Children = append(out.Children, cappedModel(c, cap))
	}
	return out
}

// wireGap returns a WAN link's per-byte serialization gap including
// framing overhead. Grids are TCP-only (BuildGridTree enforces it).
func wireGap(p cluster.Profile, rate int64) float64 {
	tcp := transport.DefaultTCPConfig()
	mss, hdr := tcp.MSS, tcp.HeaderSize
	if p.TCP.MSS > 0 {
		mss = p.TCP.MSS
	}
	if p.TCP.HeaderSize > 0 {
		hdr = p.TCP.HeaderSize
	}
	return float64(mss+hdr) / float64(mss) / float64(rate)
}

// clampGamma bounds a fitted contention factor.
func clampGamma(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > 50 {
		return 50
	}
	return v
}

// probeTypical runs one probe simulation (the closure) over a
// stop-when-stable seed schedule and keeps the median run. Completion
// times on lossy WANs are heavy-tailed upward — a single
// retransmission timeout adds whole RTO periods — so a mean bakes one
// seed's tail draw into every prediction, while a minimum discards the
// systematic loss recovery the factors exist to price (an incast's
// "lucky" run dodges the very losses κ summarizes). The median is
// robust against both.
//
// Sampling is adaptive on the per-seed dispersion signal: the first
// probeSeedsInitial seeds always run; if their spread (max−min)
// exceeds stableSpread × median — the same overlap-prone dispersion
// probe.unstable warns about — the remaining probeSeeds run too
// (bounded at five) and the median widens to all samples. Stable
// probes pay three simulations, seed-lottery ones five.
//
// Both the initial fits (Simulate) and the post-selection refits
// (SimulateSpec, internal/grid/coords.go) share this one harness, so
// the statistic and seed schedule cannot drift apart. The raw per-seed
// times come back in probeSeeds order for dispersion diagnostics
// (recordProbe); given the same baseSeed and closure behavior, the
// samples and median are identical in any process.
func probeTypical(baseSeed int64, stableSpread float64, run func(seed int64) (float64, error)) (float64, []float64, error) {
	seeds := probeSeeds(baseSeed)
	times := make([]float64, 0, len(seeds))
	for _, sd := range seeds[:probeSeedsInitial] {
		one, err := run(sd)
		if err != nil {
			return 0, nil, err
		}
		times = append(times, one)
	}
	if lo, med, hi := dispersion(times); med > 0 && hi-lo > stableSpread*med {
		for _, sd := range seeds[probeSeedsInitial:] {
			one, err := run(sd)
			if err != nil {
				return 0, nil, err
			}
			times = append(times, one)
		}
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2], times, nil
}

// fitTierGammas fits every tier's flat-exchange contention-factor
// curve γ_wan, innermost tiers first: each tier is probed with capped
// flat exchanges at every probe size, and the model decomposition —
// whose inner tiers already carry their fitted curves — is inverted
// for the tier's residual inflation per size. Structurally identical
// subtrees share one fit through the cache; a cache hit reuses the fit
// without probing, so cached tiers record no span or samples.
func (pl *Planner) fitTierGammas(topo cluster.TopoNode, mod *model.ModelNode, cache map[string]model.FactorCurve, parent *obs.Span) error {
	opt := pl.opt
	if topo.IsLeaf() {
		return nil
	}
	for i := range topo.Children {
		if err := pl.fitTierGammas(topo.Children[i], mod.Children[i], cache, parent); err != nil {
			return err
		}
	}
	probeTopo := cappedTree(topo, opt.ProbeCap)
	// Fits are keyed by the tier's uncapped structure — the same key the
	// tier's WAN curve uses — so CurveStore.Invalidate's substring rule
	// covers the γ fit along with the curve. The probe simulations below
	// run on the capped tree, so tiers identical when capped but not
	// uncapped fit identical values from separate (deterministic) probes
	// instead of sharing one cache entry.
	key := topoKey(topo)
	if gamma, ok := cache[key]; ok {
		mod.Wan.Gamma = gamma
		return nil
	}
	if gamma, ok := pl.sv.gamma(parent, key); ok {
		cache[key] = gamma
		mod.Wan.Gamma = gamma
		return nil
	}
	sp := parent.Span("tier.fit_gamma", obs.Str("tier", topo.Name), obs.Int("height", topo.Height()))
	defer sp.End()
	probeModel := model.GridModel{Root: cappedModel(mod, opt.ProbeCap)}
	// Per-size probes are independent (each seed builds its own grid
	// and Simulator), so the whole (size × seed) batch fans out across
	// the worker pool; recordProbe/fit.point events follow in size
	// order from this goroutine, bit-identical to sequential runs.
	probes := make([]*probeRun, len(opt.ProbeSizes))
	for i, p := range opt.ProbeSizes {
		m := p
		probes[i] = &probeRun{baseSeed: opt.Seed + 53, run: func(sd int64) (float64, error) {
			return simulateObsIn(opt.Trace, opt.simCfg(), probeTopo, FlatDirect, m, sd, 1, opt.Reps)
		}}
	}
	runProbes(opt.Workers, opt.StableSpread, probes)
	points := make([]model.FactorPoint, 0, len(opt.ProbeSizes))
	for i, p := range opt.ProbeSizes {
		pr := probes[i]
		if pr.err != nil {
			return pr.err
		}
		pl.recordProbe(sp, "gamma_wan", topo.Name, "characterize", p, opt.Seed+53, pr.times)
		gamma := 1.0
		if fixed, startup, rootWan := probeModel.FlatParts(p); rootWan > 0 {
			gamma = clampGamma((pr.median - fixed - startup) / rootWan)
		}
		sp.Event("fit.point", obs.Str("factor", "gamma_wan"), obs.Int("size", p), obs.F64("value", gamma))
		points = append(points, model.FactorPoint{Bytes: p, Factor: gamma})
	}
	curve := model.CurveOf(points...)
	mod.Wan.Gamma = curve
	cache[key] = curve
	pl.sv.putGamma(key, curve)
	return nil
}

// fitStrategyFactors runs the two hierarchical strategies on a capped
// probe grid at every probe size and inverts the model decompositions
// for the factor curves the analytics cannot supply — the grid
// analogue of fitting γ at a modest n′ and extrapolating, extended
// along the size axis:
//
//	ω  hier-direct: WAN-leg inflation from overlapped LAN traffic
//	κ  hier-gather: coordinator-incast inflation of the synchronized
//	   gather/scatter phases
//
// Each probe's per-seed dispersion lands in pl.ProbeStats, and sizes
// where the two strategies' per-seed supports overlap are flagged in
// pl.Warnings (see ProbeWarning).
func (pl *Planner) fitStrategyFactors(topo cluster.TopoNode, gm model.GridModel, parent *obs.Span) (omega, kappa model.FactorCurve, err error) {
	opt := pl.opt
	// Strategy factors are whole-topology fits, keyed apart from the
	// per-tier records ("S|" prefix; the post-selection refit uses "R|").
	// A hit restores the fitted curves without probing, so the build
	// records no omega/kappa ProbeStats or overlap warnings — the cached
	// analogue of a shared tier fit.
	skey := "S|" + topoKey(topo)
	if rec, ok := pl.sv.strategy(parent, skey); ok {
		return rec.Omega, rec.Kappa, nil
	}
	probeTopo := cappedTree(topo, opt.ProbeCap)
	probeModel := model.GridModel{Root: cappedModel(gm.Root, opt.ProbeCap)}
	sp := parent.Span("planner.fit_strategy", obs.Int("probe_cap", opt.ProbeCap))
	defer sp.End()

	// Both strategies × all sizes fan out as one probe batch; results
	// are then folded in the legacy order (per size: ω probe, κ probe,
	// overlap check) so events, ProbeStats and Warnings are
	// bit-identical to sequential runs.
	hdProbes := make([]*probeRun, len(opt.ProbeSizes))
	hgProbes := make([]*probeRun, len(opt.ProbeSizes))
	for i, p := range opt.ProbeSizes {
		m := p
		hdProbes[i] = &probeRun{baseSeed: opt.Seed + 71, run: func(sd int64) (float64, error) {
			return simulateObsIn(opt.Trace, opt.simCfg(), probeTopo, HierDirect, m, sd, 1, opt.Reps)
		}}
		hgProbes[i] = &probeRun{baseSeed: opt.Seed + 89, run: func(sd int64) (float64, error) {
			return simulateObsIn(opt.Trace, opt.simCfg(), probeTopo, HierGather, m, sd, 1, opt.Reps)
		}}
	}
	batch := make([]*probeRun, 0, 2*len(opt.ProbeSizes))
	for i := range opt.ProbeSizes {
		batch = append(batch, hdProbes[i], hgProbes[i])
	}
	runProbes(opt.Workers, opt.StableSpread, batch)

	var omegaPts, kappaPts []model.FactorPoint
	for i, p := range opt.ProbeSizes {
		hd, hg := hdProbes[i], hgProbes[i]
		if hd.err != nil {
			return model.FactorCurve{}, model.FactorCurve{}, hd.err
		}
		pl.recordProbe(sp, "omega", "", "characterize", p, opt.Seed+71, hd.times)
		o := 1.0
		if phase0, xchg, scatter := probeModel.HierDirectParts(p); xchg > 0 {
			o = clampGamma((hd.median - phase0 - scatter) / xchg)
		}
		sp.Event("fit.point", obs.Str("factor", "omega"), obs.Int("size", p), obs.F64("value", o))
		omegaPts = append(omegaPts, model.FactorPoint{Bytes: p, Factor: o})

		if hg.err != nil {
			return model.FactorCurve{}, model.FactorCurve{}, hg.err
		}
		pl.recordProbe(sp, "kappa", "", "characterize", p, opt.Seed+89, hg.times)
		k := 1.0
		if intra, xchg, local := probeModel.HierGatherParts(p); local > 0 {
			k = clampGamma((hg.median - intra - xchg) / local)
		}
		sp.Event("fit.point", obs.Str("factor", "kappa"), obs.Int("size", p), obs.F64("value", k))
		kappaPts = append(kappaPts, model.FactorPoint{Bytes: p, Factor: k})

		pl.checkOverlap(sp, "characterize", p, hd.times, hg.times)
	}
	omega, kappa = model.CurveOf(omegaPts...), model.CurveOf(kappaPts...)
	pl.sv.putStrategy(skey, storedStrategy{Omega: omega, Kappa: kappa})
	return omega, kappa, nil
}

// Prediction is one strategy's predicted completion time.
type Prediction struct {
	Strategy Strategy
	T        float64 // seconds
}

// Predict returns every strategy's predicted completion time for an
// All-to-All of per-pair message size m, sorted fastest first.
func (pl *Planner) Predict(m int) []Prediction {
	out := []Prediction{
		{FlatDirect, pl.Model.PredictFlat(m)},
		{HierGather, pl.Model.PredictHierGather(m)},
		{HierDirect, pl.Model.PredictHierDirect(m)},
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Best returns the predicted-fastest strategy for message size m.
func (pl *Planner) Best(m int) Prediction { return pl.Predict(m)[0] }

// PredictV returns every strategy's predicted completion time for an
// irregular total exchange with per-pair byte counts sz, sorted fastest
// first: each tier's WAN leg is priced by the matrix's actual
// cross-subtree cut instead of n·m (model.GridModel's v-variants).
// Uniform matrices reduce to Predict bit-identically. The matrix ranks
// must match the planner's topology (contiguous leaf blocks in tree
// order, as BuildGridTree assigns them) — a mismatch panics, a
// programming error like Predict on a foreign model; the v-APIs that
// accept external input (SelectCoordinatorsV, SimulateV, SimulateSpecV)
// validate and return errors instead.
func (pl *Planner) PredictV(sz coll.SizeMatrix) []Prediction {
	out := []Prediction{
		{FlatDirect, pl.Model.PredictFlatV(sz)},
		{HierGather, pl.Model.PredictHierGatherV(sz)},
		{HierDirect, pl.Model.PredictHierDirectV(sz)},
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// BestV returns the predicted-fastest strategy for the size matrix sz.
func (pl *Planner) BestV(sz coll.SizeMatrix) Prediction { return pl.PredictV(sz)[0] }

// Simulate builds the topology and measures one strategy's All-to-All
// completion time in full packet-level simulation — the planner's ground
// truth for validation.
func Simulate(topo cluster.TopoNode, strat Strategy, m int, seed int64, warmup, reps int) (float64, error) {
	return simulateObs(nil, topo, strat, m, seed, warmup, reps)
}

// SimulateIn is Simulate under an explicit engine selection: the fluid
// agreement tests and benchmarks compare SimulateIn(fluid) against the
// packet-mode Simulate on identical arguments.
func SimulateIn(cfg SimConfig, topo cluster.TopoNode, strat Strategy, m int, seed int64, warmup, reps int) (float64, error) {
	return simulateObsIn(nil, cfg, topo, strat, m, seed, warmup, reps)
}

// simulateObs is Simulate with an optional trace collector: the
// planner's probe loops route through it so probe simulations feed the
// aggregate counters (probe count, sim events, transport recovery).
func simulateObs(c *obs.Collector, topo cluster.TopoNode, strat Strategy, m int, seed int64, warmup, reps int) (float64, error) {
	return simulateObsIn(c, SimConfig{}, topo, strat, m, seed, warmup, reps)
}

// simulateObsIn is simulateObs under an explicit engine selection.
func simulateObsIn(c *obs.Collector, sc SimConfig, topo cluster.TopoNode, strat Strategy, m int, seed int64, warmup, reps int) (float64, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return 0, err
	}
	applySimConfig(g, sc)
	var op func(r *mpi.Rank)
	switch strat {
	case FlatDirect:
		op = func(r *mpi.Rank) { coll.Alltoall(r, m, coll.Direct) }
	case HierGather, HierDirect:
		alg := coll.HierGather
		if strat == HierDirect {
			alg = coll.HierDirect
		}
		plan := coll.PlanHierTree(coll.GridSpec(g), alg)
		op = func(r *mpi.Rank) { coll.AlltoallHierPlanned(r, plan, m) }
	default:
		return 0, fmt.Errorf("grid: unknown strategy %v", strat)
	}
	return measureEnv(c, g.Env, warmup, reps, op), nil
}

// SimulateV builds the topology and measures one strategy's irregular
// All-to-Allv completion time in full packet-level simulation — the
// ground truth for validating PredictV rankings (GR4). Flat direct runs
// coll.AlltoallV; the hierarchical strategies compile the size matrix
// into the plan with coll.PlanHierTreeV.
func SimulateV(topo cluster.TopoNode, strat Strategy, sz coll.SizeMatrix, seed int64, warmup, reps int) (float64, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return 0, err
	}
	if sz.NumRanks() != len(g.Env.Hosts) {
		return 0, fmt.Errorf("grid: size matrix covers %d ranks, topology has %d",
			sz.NumRanks(), len(g.Env.Hosts))
	}
	var op func(r *mpi.Rank)
	switch strat {
	case FlatDirect:
		op = func(r *mpi.Rank) { coll.AlltoallV(r, sz, coll.Direct) }
	case HierGather, HierDirect:
		alg, _ := DescribeStrategy(strat)
		plan := coll.PlanHierTreeV(coll.GridSpec(g), alg, sz)
		op = func(r *mpi.Rank) { coll.AlltoallHierPlannedV(r, plan) }
	default:
		return 0, fmt.Errorf("grid: unknown strategy %v", strat)
	}
	w := mpi.NewWorld(g.Env, mpi.Config{})
	return coll.Measure(w, warmup, reps, op).Mean(), nil
}

// SimulateSpecV builds the topology and measures one hierarchical
// algorithm's All-to-Allv compiled from an explicit plan spec (e.g.
// PlanSpec's selected coordinators) and a size matrix in full
// packet-level simulation.
func SimulateSpecV(topo cluster.TopoNode, spec coll.TreeSpec, alg coll.HierAlgorithm, sz coll.SizeMatrix, seed int64, warmup, reps int) (float64, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return 0, err
	}
	plan := coll.PlanHierTree(spec, alg)
	if plan.Place.NumRanks() != len(g.Env.Hosts) {
		return 0, fmt.Errorf("grid: plan spec covers %d ranks, topology has %d",
			plan.Place.NumRanks(), len(g.Env.Hosts))
	}
	if err := plan.BindSizes(sz); err != nil {
		return 0, err
	}
	w := mpi.NewWorld(g.Env, mpi.Config{})
	return coll.Measure(w, warmup, reps, func(r *mpi.Rank) {
		coll.AlltoallHierPlannedV(r, plan)
	}).Mean(), nil
}
