// Package grid implements the contention-aware planner for multi-cluster
// All-to-All: given a cluster.GridProfile and a message size, it predicts
// the completion time of each candidate strategy (flat direct exchange,
// hierarchical gather, hierarchical direct) from the per-cluster
// contention signatures and a WAN term, and selects the best — the
// paper's "performance prediction framework" use case, extended from one
// cluster to a grid.
//
// Characterization follows the paper's Section 7 procedure per member
// network: a ping-pong calibrates the contention-free Hockney
// parameters, a small All-to-All sweep at a modest process count fits
// the contention signature, and the signature extrapolates. The WAN side
// is derived analytically from the grid profile (propagation, router
// forwarding, wire rate, and the transport's window cap over the
// long-fat pipe).
package grid

import (
	"fmt"
	"sort"

	"repro/internal/calib"
	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/signature"
	"repro/internal/transport"
)

// Strategy is one candidate All-to-All execution strategy on a grid.
type Strategy int

const (
	// FlatDirect runs the paper's Algorithm 1 over the whole grid,
	// ignoring topology.
	FlatDirect Strategy = iota
	// HierGather runs coll.HierGather (sequential gather / coordinator
	// exchange / scatter).
	HierGather
	// HierDirect runs coll.HierDirect (intra-cluster exchange
	// overlapped with the coordinator relay).
	HierDirect
)

// Strategies lists all candidate strategies.
var Strategies = []Strategy{FlatDirect, HierGather, HierDirect}

func (s Strategy) String() string {
	switch s {
	case FlatDirect:
		return "flat-direct"
	case HierGather:
		return "hier-gather"
	case HierDirect:
		return "hier-direct"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// tagWANProbe is the reserved tag of the WAN ping-pong probe.
const tagWANProbe int32 = 7100

// Options tunes planner characterization. Zero values take defaults.
type Options struct {
	// FitN is the process count n' at which each member network's
	// signature is fitted (default 8).
	FitN int
	// FitSizes is the message sweep of the fit (default 16k..512k, 5
	// points; at least 4 are required).
	FitSizes []int
	// WANSizes is the transfer sweep of the WAN ping-pong curve
	// (default 2k..1M, 5 points).
	WANSizes []int
	// ProbeSize is the per-pair message size of the flat-exchange probe
	// that fits the WAN contention factor γ_wan (default 64 KiB).
	ProbeSize int
	// Reps is the repetitions per measured point (default 2).
	Reps int
	// Seed drives the characterization simulations.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.FitN == 0 {
		o.FitN = 8
	}
	if len(o.FitSizes) == 0 {
		o.FitSizes = []int{16 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
	}
	if len(o.WANSizes) == 0 {
		o.WANSizes = []int{2 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	}
	if o.ProbeSize == 0 {
		o.ProbeSize = 64 << 10
	}
	if o.Reps == 0 {
		o.Reps = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Planner predicts and ranks grid All-to-All strategies.
type Planner struct {
	Profile cluster.GridProfile
	Model   model.GridModel
	// Hockney holds the calibrated point-to-point parameters per member
	// (diagnostic).
	Hockney []model.Hockney
}

// NewPlanner characterizes every member network of the grid profile and
// assembles the grid model. Identical member profiles (uniform grids)
// are characterized once.
func NewPlanner(gp cluster.GridProfile, opt Options) (*Planner, error) {
	opt = opt.withDefaults()
	if len(gp.Members) < 2 {
		// A single cluster is the paper's base case: use the plain
		// contention signature, there is no WAN to characterize.
		return nil, fmt.Errorf("grid: profile %q has %d member(s), planner needs at least 2", gp.Name, len(gp.Members))
	}
	pl := &Planner{Profile: gp}
	var gm model.GridModel

	type charac struct {
		h   model.Hockney
		sig model.Signature
	}
	// Keyed on the full profile value: members sharing a name but not
	// tuning (e.g. a widened receive window) must not share a fit.
	cache := map[cluster.Profile]charac{}
	for _, mem := range gp.Members {
		p := mem.Profile
		ch, ok := cache[p]
		if !ok {
			h := calib.PingPong(p, mpi.Config{}, opt.Seed, calib.PingPongConfig{Reps: 3})
			samples := make([]signature.Sample, 0, len(opt.FitSizes))
			for i, m := range opt.FitSizes {
				cl := cluster.Build(p, opt.FitN, opt.Seed+int64(i)*101)
				w := mpi.NewWorld(cl, mpi.Config{})
				meas := coll.Measure(w, 1, opt.Reps, func(r *mpi.Rank) {
					coll.Alltoall(r, m, coll.PostAll)
				})
				samples = append(samples, signature.Sample{M: m, T: meas.Mean()})
			}
			sig, _, err := signature.Fit(h, opt.FitN, samples, signature.Options{})
			if err != nil {
				return nil, fmt.Errorf("grid: fitting %s: %w", p.Name, err)
			}
			ch = charac{h: h, sig: sig}
			cache[p] = ch
		}
		pl.Hockney = append(pl.Hockney, ch.h)
		gm.Sizes = append(gm.Sizes, mem.Nodes)
		gm.LAN = append(gm.LAN, ch.sig)
	}
	// WAN path: empirical ping-pong curve over a one-node-per-cluster
	// instance of the same grid, then the flat-exchange probe that fits
	// the uplink contention factor γ_wan.
	wan, err := characterizeWAN(gp, opt)
	if err != nil {
		return nil, err
	}
	gm.Wan = wan
	if err := gm.Validate(); err != nil {
		return nil, err
	}
	gamma, omega, kappa, err := fitContentionFactors(gp, gm, opt)
	if err != nil {
		return nil, err
	}
	gm.Wan.Gamma = gamma
	gm.OverlapGamma = omega
	gm.GatherGamma = kappa
	pl.Model = gm
	return pl, nil
}

// characterizeWAN measures the one-way WAN transfer curve between the
// first two clusters of a minimal (one node per cluster) instance of
// the grid — the same wires, routers and transport tuning as the real
// deployment, so slow-start and window effects land in the curve — and
// derives the wire-rate serialization floor from the profile.
func characterizeWAN(gp cluster.GridProfile, opt Options) (model.WANModel, error) {
	mini := gp
	mini.Members = append([]cluster.GridMember(nil), gp.Members...)
	for i := range mini.Members {
		mini.Members[i].Nodes = 1
	}
	g, err := cluster.BuildGrid(mini, opt.Seed+31)
	if err != nil {
		return model.WANModel{}, err
	}
	sizes := append([]int(nil), opt.WANSizes...)
	sort.Ints(sizes)
	times := make(map[int][]float64, len(sizes))
	w := mpi.NewWorld(g.Env, mpi.Config{})
	w.Run(func(r *mpi.Rank) {
		if r.ID() > 1 {
			return
		}
		for _, m := range sizes {
			// One unmeasured repetition warms the congestion window,
			// matching the warmed-up conditions of measured exchanges.
			for rep := 0; rep <= opt.Reps; rep++ {
				if r.ID() == 0 {
					t0 := r.Now()
					r.Send(1, tagWANProbe, m)
					r.Recv(1, tagWANProbe)
					if rep > 0 {
						times[m] = append(times[m], (r.Now()-t0).Seconds()/2)
					}
				} else {
					r.Recv(0, tagWANProbe)
					r.Send(0, tagWANProbe, m)
				}
			}
		}
	})
	curve := make([]model.WANPoint, 0, len(sizes))
	for _, m := range sizes {
		ts := times[m]
		if len(ts) == 0 {
			return model.WANModel{}, fmt.Errorf("grid: WAN probe produced no samples for %d bytes", m)
		}
		mean := 0.0
		for _, t := range ts {
			mean += t
		}
		curve = append(curve, model.WANPoint{Bytes: m, T: mean / float64(len(ts))})
	}
	return model.WANModel{
		Curve:    curve,
		BetaWire: wireGap(gp),
		Gamma:    1,
	}, nil
}

// wireGap returns the WAN uplink's per-byte serialization gap including
// framing overhead. Grids are TCP-only (BuildGrid enforces it).
func wireGap(gp cluster.GridProfile) float64 {
	p := gp.Members[0].Profile
	tcp := transport.DefaultTCPConfig()
	mss, hdr := tcp.MSS, tcp.HeaderSize
	if p.TCP.MSS > 0 {
		mss = p.TCP.MSS
	}
	if p.TCP.HeaderSize > 0 {
		hdr = p.TCP.HeaderSize
	}
	return float64(mss+hdr) / float64(mss) / float64(gp.WAN.Rate)
}

// fitContentionFactors runs each strategy once on a capped probe grid
// and inverts the model decompositions for the contention factors the
// analytics cannot supply — the grid analogue of fitting γ at a modest
// n′ and extrapolating. Each strategy has one fitted hotspot factor:
//
//	γ_wan  flat:        shared-uplink inflation under uncoordinated flows
//	ω      hier-direct: WAN-leg inflation from overlapped LAN traffic
//	κ      hier-gather: coordinator-incast inflation of the synchronized
//	                    gather/scatter phases
func fitContentionFactors(gp cluster.GridProfile, gm model.GridModel, opt Options) (gamma, omega, kappa float64, err error) {
	probe := gp
	probe.Members = append([]cluster.GridMember(nil), gp.Members...)
	probeModel := gm
	probeModel.Sizes = append([]int(nil), gm.Sizes...)
	// The probe keeps the grid's shape but caps cluster sizes: large
	// enough that uplink sharing and LAN/WAN overlap interference show
	// up, small enough to stay affordable.
	for i := range probe.Members {
		n := probe.Members[i].Nodes
		if n > 4 {
			n = 4
		}
		probe.Members[i].Nodes = n
		probeModel.Sizes[i] = n
	}
	clamp := func(v float64) float64 {
		if v < 1 {
			return 1
		}
		if v > 50 {
			return 50
		}
		return v
	}

	gamma = 1
	simFlat, err := Simulate(probe, FlatDirect, opt.ProbeSize, opt.Seed+53, 1, opt.Reps)
	if err != nil {
		return 0, 0, 0, err
	}
	if lan, startup, wan := probeModel.FlatParts(opt.ProbeSize); wan > 0 {
		gamma = clamp((simFlat - lan - startup) / wan)
	}

	omega = 1
	simHD, err := Simulate(probe, HierDirect, opt.ProbeSize, opt.Seed+71, 1, opt.Reps)
	if err != nil {
		return 0, 0, 0, err
	}
	if phase0, xchg, scatter := probeModel.HierDirectParts(opt.ProbeSize); xchg > 0 {
		omega = clamp((simHD - phase0 - scatter) / xchg)
	}

	kappa = 1
	simHG, err := Simulate(probe, HierGather, opt.ProbeSize, opt.Seed+89, 1, opt.Reps)
	if err != nil {
		return 0, 0, 0, err
	}
	if intra, xchg, local := probeModel.HierGatherParts(opt.ProbeSize); local > 0 {
		kappa = clamp((simHG - intra - xchg) / local)
	}
	return gamma, omega, kappa, nil
}

// Prediction is one strategy's predicted completion time.
type Prediction struct {
	Strategy Strategy
	T        float64 // seconds
}

// Predict returns every strategy's predicted completion time for an
// All-to-All of per-pair message size m, sorted fastest first.
func (pl *Planner) Predict(m int) []Prediction {
	out := []Prediction{
		{FlatDirect, pl.Model.PredictFlat(m)},
		{HierGather, pl.Model.PredictHierGather(m)},
		{HierDirect, pl.Model.PredictHierDirect(m)},
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// Best returns the predicted-fastest strategy for message size m.
func (pl *Planner) Best(m int) Prediction { return pl.Predict(m)[0] }

// Simulate builds the grid and measures one strategy's All-to-All
// completion time in full packet-level simulation — the planner's ground
// truth for validation.
func Simulate(gp cluster.GridProfile, strat Strategy, m int, seed int64, warmup, reps int) (float64, error) {
	g, err := cluster.BuildGrid(gp, seed)
	if err != nil {
		return 0, err
	}
	var op func(r *mpi.Rank)
	switch strat {
	case FlatDirect:
		op = func(r *mpi.Rank) { coll.Alltoall(r, m, coll.Direct) }
	case HierGather, HierDirect:
		alg := coll.HierGather
		if strat == HierDirect {
			alg = coll.HierDirect
		}
		plan := coll.PlanHier(coll.NewPlacement(g.ClusterOf), alg)
		op = func(r *mpi.Rank) { coll.AlltoallHierPlanned(r, plan, m) }
	default:
		return 0, fmt.Errorf("grid: unknown strategy %v", strat)
	}
	w := mpi.NewWorld(g.Env, mpi.Config{})
	return coll.Measure(w, warmup, reps, op).Mean(), nil
}
