package grid

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coll"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace outlines")

// TestGoldenTraceOutline pins the trace *structure* of a canonical
// characterize→predict→simulate run on the two-level test grid: which
// spans open under which parents, which events carry which attribute
// keys, and in what order — the schema contract downstream tooling
// parses. The outline deliberately excludes attribute values and
// durations, so the golden file is stable across machines while any
// schema drift (renamed event, dropped attribute, reordered pipeline)
// fails the diff. Refresh with `go test ./internal/grid -run Golden
// -update` after intentional schema changes.
func TestGoldenTraceOutline(t *testing.T) {
	c := obs.New()
	opt := cheapOptions()
	opt.ProbeSizes = []int{32 << 10}
	opt.Trace = c
	topo := testTopo()
	pl, err := NewPlanner(topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	pl.Predict(48 << 10)
	if _, _, err := SimulateSpecTraced(c, topo, pl.PlanSpec(), coll.HierGather, 32<<10, opt.Seed, 1, 1); err != nil {
		t.Fatal(err)
	}

	got := strings.Join(c.Outline(), "\n") + "\n"
	golden := filepath.Join("testdata", "trace_outline.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("trace outline drifted from %s (run with -update if intended)\ngot %d lines, want %d\n%s",
			golden, strings.Count(got, "\n"), strings.Count(string(want), "\n"), firstDiff(got, string(want)))
	}

	// The same trace must round-trip the NDJSON schema.
	var buf bytes.Buffer
	if err := c.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateNDJSON(&buf)
	if err != nil {
		t.Fatalf("trace failed schema validation: %v", err)
	}
	if n == 0 {
		t.Fatal("trace is empty")
	}
}

// firstDiff renders the first differing line of two outlines.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("first diff at line %d: got %q, want %q", i+1, g[i], w[i])
		}
	}
	return "outlines differ in length"
}

// TestPlannerProbeDiagnostics checks the satellite contract on Planner
// output: ProbeStats covers every (factor, probe size) pair with
// ordered dispersion whether or not tracing is enabled, and the traced
// and untraced planners agree on them.
func TestPlannerProbeDiagnostics(t *testing.T) {
	opt := cheapOptions()
	opt.ProbeSizes = []int{8 << 10, 64 << 10}
	plain, err := NewPlanner(testTopo(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Trace = obs.New()
	traced, err := NewPlanner(testTopo(), opt)
	if err != nil {
		t.Fatal(err)
	}

	// One γ_wan stat per (tier, size) plus ω and κ per size: the
	// two-level test grid has one tier, so 2 + 2 + 2.
	if got, want := len(plain.ProbeStats), 6; got != want {
		t.Fatalf("got %d probe stats, want %d: %+v", got, want, plain.ProbeStats)
	}
	for _, ps := range plain.ProbeStats {
		if ps.Min > ps.Median || ps.Median > ps.Max {
			t.Errorf("%s dispersion out of order: %+v", ps.Label(), ps)
		}
		if ps.Stage != "characterize" {
			t.Errorf("%s stage = %q, want characterize", ps.Label(), ps.Stage)
		}
	}
	if len(traced.ProbeStats) != len(plain.ProbeStats) {
		t.Fatalf("tracing changed probe stats: %d vs %d", len(traced.ProbeStats), len(plain.ProbeStats))
	}
	for i := range plain.ProbeStats {
		if plain.ProbeStats[i] != traced.ProbeStats[i] {
			t.Errorf("stat %d differs with tracing: %+v vs %+v", i, plain.ProbeStats[i], traced.ProbeStats[i])
		}
	}
	// Warnings, when any fire, must agree too — they derive from the
	// same probe times.
	if len(plain.Warnings) != len(traced.Warnings) {
		t.Errorf("tracing changed warnings: %d vs %d", len(plain.Warnings), len(traced.Warnings))
	}
	for _, w := range plain.Warnings {
		if w.HDMin > w.HDMax || w.HGMin > w.HGMax {
			t.Errorf("warning supports out of order: %+v", w)
		}
		if !strings.Contains(w.String(), "overlaps") {
			t.Errorf("warning text missing overlap description: %q", w.String())
		}
	}
}

// TestTracingDoesNotPerturbResults pins the zero-interference property:
// a traced characterization fits bit-identical curves and predictions
// to an untraced one — tracing only reads the simulated clock.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	opt := cheapOptions()
	plain, err := NewPlanner(testTopo(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Trace = obs.New()
	traced, err := NewPlanner(testTopo(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{8 << 10, 48 << 10, 256 << 10} {
		a, b := plain.Predict(m), traced.Predict(m)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("prediction %d at %d B differs with tracing: %+v vs %+v", i, m, a[i], b[i])
			}
		}
	}
}

// TestSimulateSpecTracedMatchesUntraced pins that the traced executor
// measures the same completion time as SimulateSpec and reduces to
// labeled per-phase spans covering the whole run.
func TestSimulateSpecTracedMatchesUntraced(t *testing.T) {
	opt := cheapOptions()
	pl, err := NewPlanner(testTopo(), opt)
	if err != nil {
		t.Fatal(err)
	}
	spec := pl.PlanSpec()
	const m = 32 << 10
	want, err := SimulateSpec(testTopo(), spec, coll.HierGather, m, opt.Seed, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := obs.New()
	got, phases, err := SimulateSpecTraced(c, testTopo(), spec, coll.HierGather, m, opt.Seed, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("traced time %v != untraced %v", got, want)
	}
	if len(phases) == 0 {
		t.Fatal("no phase spans recorded")
	}
	labels := map[string]bool{}
	for _, ph := range phases {
		labels[ph.Label] = true
		if ph.Dur() < 0 {
			t.Errorf("phase %q has negative duration: %+v", ph.Label, ph)
		}
		if ph.Ranks <= 0 {
			t.Errorf("phase %q has no participating ranks", ph.Label)
		}
	}
	for _, want := range []string{"intra", "leaf-gather", "tier-1-exchange", "scatter-depth-1"} {
		if !labels[want] {
			t.Errorf("missing phase label %q in %v", want, phases)
		}
	}
	// The traced run must have published per-port counters and fed the
	// aggregates — under the validation counter, not the probe counter:
	// re-simulating an already-planned exchange is not characterization,
	// and a warm-store planner run must be able to report zero probes.
	var sawPort bool
	for _, ev := range c.Events() {
		if ev.Name == "netsim.port" {
			sawPort = true
		}
	}
	if !sawPort {
		t.Error("no netsim.port events published")
	}
	for _, name := range []string{CtrValidations, CtrSimEvents} {
		var found bool
		for _, cv := range c.Counters() {
			if cv.Name == name && cv.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("counter %s not fed", name)
		}
	}
	for _, cv := range c.Counters() {
		if cv.Name == CtrProbes && cv.Value > 0 {
			t.Errorf("validation simulation fed %s = %d, want 0", CtrProbes, cv.Value)
		}
	}
}
