package grid

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestProbeSeedsSchedule pins the probe seed schedule: fixed prime
// offsets from the base, identical on every invocation — the property
// that makes per-seed samples reproducible across processes.
func TestProbeSeedsSchedule(t *testing.T) {
	want := []int64{7, 7 + 97, 7 + 193, 7 + 389, 7 + 577}
	if got := probeSeeds(7); !reflect.DeepEqual(got, want) {
		t.Fatalf("probeSeeds(7) = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(probeSeeds(7), probeSeeds(7)) {
		t.Fatal("probeSeeds is not deterministic")
	}
	if probeSeedsInitial >= len(probeSeeds(0)) {
		t.Fatalf("probeSeedsInitial %d leaves no extra seeds to extend into", probeSeedsInitial)
	}
}

// TestProbeTypicalStopsWhenStable pins the stable path of the
// stop-when-stable rule: when the first three seeds agree within the
// spread threshold, the probe stops at three samples and returns their
// median.
func TestProbeTypicalStopsWhenStable(t *testing.T) {
	vals := map[int64]float64{100: 1.00, 197: 1.10, 293: 1.05}
	calls := 0
	med, times, err := probeTypical(100, 0.5, func(sd int64) (float64, error) {
		calls++
		v, ok := vals[sd]
		if !ok {
			t.Fatalf("probe ran unscheduled seed %d", sd)
		}
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("stable probe ran %d seeds, want 3", calls)
	}
	if len(times) != 3 {
		t.Fatalf("stable probe returned %d samples, want 3", len(times))
	}
	if med != 1.05 {
		t.Fatalf("median = %v, want 1.05 (median of three)", med)
	}
}

// TestProbeTypicalExtendsWhenUnstable pins the unstable path: when the
// first three seeds disperse past StableSpread × median, the probe runs
// the two extra seeds (bounded at five) and the median widens to all
// five samples.
func TestProbeTypicalExtendsWhenUnstable(t *testing.T) {
	// Spread 9.0 − 1.0 = 8.0 > 0.5 × 2.0: the FE 64 KiB seed lottery.
	vals := map[int64]float64{100: 1.0, 197: 9.0, 293: 2.0, 489: 2.2, 677: 2.4}
	calls := 0
	med, times, err := probeTypical(100, 0.5, func(sd int64) (float64, error) {
		calls++
		return vals[sd], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("unstable probe ran %d seeds, want 5", calls)
	}
	if len(times) != 5 {
		t.Fatalf("unstable probe returned %d samples, want 5", len(times))
	}
	if med != 2.2 {
		t.Fatalf("median = %v, want 2.2 (median of five)", med)
	}
	// Samples come back in probeSeeds order for dispersion diagnostics.
	want := []float64{1.0, 9.0, 2.0, 2.2, 2.4}
	if !reflect.DeepEqual(times, want) {
		t.Fatalf("samples = %v, want seed order %v", times, want)
	}
}

// TestProbeTypicalDeterminism covers the determinism satellite: two
// independent invocations with the same base seed produce identical
// per-seed samples and an identical median — both on a synthetic
// closure and on real probe simulations, which rebuild their world from
// the seed alone and so behave like separate processes.
func TestProbeTypicalDeterminism(t *testing.T) {
	synthetic := func() (float64, []float64) {
		med, times, err := probeTypical(31, 0.5, func(sd int64) (float64, error) {
			return float64(sd%7) * 0.125, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return med, times
	}
	m1, t1 := synthetic()
	m2, t2 := synthetic()
	if m1 != m2 || !reflect.DeepEqual(t1, t2) {
		t.Fatalf("synthetic probe not deterministic: %v/%v vs %v/%v", m1, t1, m2, t2)
	}

	topo := cappedTree(testTopo(), 2)
	simulated := func() (float64, []float64) {
		med, times, err := probeTypical(53, 0.5, func(sd int64) (float64, error) {
			return simulateObs(nil, topo, FlatDirect, 16<<10, sd, 1, 1)
		})
		if err != nil {
			t.Fatal(err)
		}
		return med, times
	}
	s1, st1 := simulated()
	s2, st2 := simulated()
	if s1 != s2 || !reflect.DeepEqual(st1, st2) {
		t.Fatalf("simulated probe not deterministic: %v/%v vs %v/%v", s1, st1, s2, st2)
	}
	if s1 <= 0 {
		t.Fatalf("nonpositive probe median %v", s1)
	}
}

// TestProbeTypicalPropagatesErrors: a failing run aborts the probe.
func TestProbeTypicalPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	if _, _, err := probeTypical(1, 0.5, func(int64) (float64, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestOptionsRejectBadStableSpread covers Options.validate on the new
// stop-when-stable threshold.
func TestOptionsRejectBadStableSpread(t *testing.T) {
	for _, v := range []float64{-0.5, math.NaN(), math.Inf(1)} {
		opt := cheapOptions()
		opt.StableSpread = v
		if _, err := NewPlanner(testTopo(), opt); err == nil {
			t.Fatalf("StableSpread %v accepted", v)
		}
	}
	// Zero takes the default and must pass.
	opt := cheapOptions()
	opt.StableSpread = 0
	if got := opt.withDefaults().StableSpread; got != 0.5 {
		t.Fatalf("default StableSpread = %v, want 0.5", got)
	}
}
