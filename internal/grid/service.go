package grid

import (
	"io"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/obs"
)

// Service is the planner as a long-lived, concurrency-safe layer: one
// Options configuration, one CurveStore of fitted curves, and a cache
// of assembled planners keyed by topology structure. The paper's
// workflow is characterize once, predict many times — Service is the
// "many times": N goroutines may call Predict/Best/SelectCoordinators
// concurrently over any mix of topologies, characterization runs
// single-flight (simultaneous first requests for one topology probe
// once, the rest wait for the same planner), and the store carries the
// fits across topologies sharing structure and — through WriteJSON /
// ReadCurveStore — across processes.
//
// Topologies are identified by their structure (TierKey of the root):
// two trees differing only in node names share one planner, exactly as
// they would produce bit-identical planners built separately.
type Service struct {
	opt   Options
	store *CurveStore

	mu      sync.Mutex
	entries map[string]*serviceEntry
	// tick is a logical clock for LRU eviction: it advances on every
	// cache touch, and each entry remembers the tick of its last use.
	// The cache is bounded at opt.CacheCap entries; inserting past the
	// cap evicts the least-recently-used ready entry (in-flight builds
	// are never evicted — waiters hold their channel). Evicted planners
	// are not lost work: the store keeps every fitted record, so a
	// re-requested topology rebuilds warm, without probe simulations.
	tick uint64
}

// serviceEntry is one cached planner build. ready closes when the
// build (pl, err) is final; mu then serializes model mutation:
// predictions are pure model reads and take it shared, while
// SelectCoordinators mutates per-leaf coordinator fields and the
// strategy factor curves and takes it exclusively.
type serviceEntry struct {
	ready chan struct{}
	mu    sync.RWMutex
	pl    *Planner
	err   error
	// lastUsed is the service tick of the entry's most recent touch,
	// read and written under Service.mu.
	lastUsed uint64
}

// NewService returns a service over a fresh in-memory store.
func NewService(opt Options) (*Service, error) {
	return NewServiceWithStore(opt, NewCurveStore())
}

// NewServiceWithStore returns a service over an existing store —
// typically one loaded with ReadCurveStore to reuse another process's
// characterization. The store must be empty or fitted under the same
// probe configuration: fitted values are functions of every sweep,
// cap, and seed in Options, so a mismatch is an error, not a warm
// start.
func NewServiceWithStore(opt Options, st *CurveStore) (*Service, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if st == nil {
		st = NewCurveStore()
	}
	if err := st.bind(opt.fingerprint()); err != nil {
		return nil, err
	}
	return &Service{opt: opt, store: st, entries: map[string]*serviceEntry{}}, nil
}

// Store returns the service's curve store (for WriteJSON or direct
// Invalidate; the store is itself safe for concurrent use).
func (s *Service) Store() *CurveStore { return s.store }

// SaveStore serializes the store (see CurveStore.WriteJSON).
func (s *Service) SaveStore(w io.Writer) error { return s.store.WriteJSON(w) }

// PlannerFor returns the cached planner of the topology, building and
// characterizing it on first request. Concurrent first requests are
// single-flight: one caller builds, the rest block until the same
// planner (or error) is ready. Build errors are deterministic in
// (topology, Options) — an invalid tree stays invalid — so they cache
// like successes.
//
// The returned planner is shared: concurrent Predict*/Best* calls on
// it are safe only through the service's methods (which hold the
// entry's read-write lock around SelectCoordinators' model mutation);
// callers using the planner directly must not race its SelectCoordinators.
func (s *Service) PlannerFor(topo cluster.TopoNode) (*Planner, error) {
	e := s.entryFor(topo)
	return e.pl, e.err
}

// entryFor returns the topology's entry, building it single-flight.
// Every hit or insert stamps the entry's LRU tick; an insert past
// Options.CacheCap evicts the least-recently-used ready entry first.
func (s *Service) entryFor(topo cluster.TopoNode) *serviceEntry {
	key := topoKey(topo)
	s.mu.Lock()
	s.tick++
	if e, ok := s.entries[key]; ok {
		e.lastUsed = s.tick
		s.mu.Unlock()
		<-e.ready
		return e
	}
	e := &serviceEntry{ready: make(chan struct{}), lastUsed: s.tick}
	s.entries[key] = e
	s.evictLocked()
	s.mu.Unlock()
	e.pl, e.err = newPlannerWithStore(topo, s.opt, s.store)
	close(e.ready)
	return e
}

// evictLocked drops least-recently-used ready entries until the cache
// fits opt.CacheCap. Called with s.mu held. Only ready entries are
// candidates: evicting an in-flight build would strand its waiters and
// duplicate the probes it is already running.
func (s *Service) evictLocked() {
	for len(s.entries) > s.opt.CacheCap {
		var victimKey string
		var victim *serviceEntry
		for k, e := range s.entries {
			select {
			case <-e.ready:
			default:
				continue // in-flight: never evicted
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return // everything in flight; retry on the next insert
		}
		delete(s.entries, victimKey)
		if s.opt.Trace != nil {
			s.opt.Trace.Add(CtrServiceEvict, 1)
		}
	}
}

// Predict returns every strategy's predicted completion time for an
// All-to-All of per-pair size m on the topology, fastest first,
// characterizing on first use. Safe for concurrent use.
func (s *Service) Predict(topo cluster.TopoNode, m int) ([]Prediction, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return nil, e.err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pl.Predict(m), nil
}

// Best returns the predicted-fastest strategy for size m on the
// topology. Safe for concurrent use.
func (s *Service) Best(topo cluster.TopoNode, m int) (Prediction, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return Prediction{}, e.err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pl.Best(m), nil
}

// PredictV returns every strategy's predicted completion time for the
// irregular exchange sz on the topology, fastest first. The matrix
// ranks must match the topology (PredictV panics on a mismatch, like
// Planner.PredictV). Safe for concurrent use.
func (s *Service) PredictV(topo cluster.TopoNode, sz coll.SizeMatrix) ([]Prediction, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return nil, e.err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pl.PredictV(sz), nil
}

// BestV returns the predicted-fastest strategy for the size matrix sz
// on the topology. Safe for concurrent use.
func (s *Service) BestV(topo cluster.TopoNode, sz coll.SizeMatrix) (Prediction, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return Prediction{}, e.err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pl.BestV(sz), nil
}

// PredictKind returns every candidate strategy's predicted completion
// time for a collective of the given kind at per-rank contribution m on
// the topology, fastest first, characterizing on first use.
// KindAlltoall is served bit-identically to Predict; other kinds may
// lazily calibrate their correction curve on first request (probe
// simulations recorded in the shared store, so later requests — and
// later processes loading the store — predict without probing). Safe
// for concurrent use: calibration is internally locked and never
// mutates the model, so concurrent predictions proceed under the
// entry's shared lock.
func (s *Service) PredictKind(topo cluster.TopoNode, kind coll.Kind, m int) ([]Prediction, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return nil, e.err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pl.PredictKind(kind, m)
}

// BestKind returns the predicted-fastest strategy for the kind at
// per-rank contribution m on the topology. Safe for concurrent use.
func (s *Service) BestKind(topo cluster.TopoNode, kind coll.Kind, m int) (Prediction, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return Prediction{}, e.err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pl.BestKind(kind, m)
}

// SelectCoordinatorsKind runs coordinator selection with candidates
// priced through the kind's hierarchical model, under the entry's
// exclusive lock like SelectCoordinators. Safe for concurrent use.
func (s *Service) SelectCoordinatorsKind(topo cluster.TopoNode, kind coll.Kind, m int) ([]CoordChoice, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return nil, e.err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pl.SelectCoordinatorsKind(kind, m)
}

// SelectCoordinators runs bandwidth-aware coordinator selection at
// size m on the topology's cached planner, under the entry's exclusive
// lock (selection mutates the model's per-leaf coordinator fields and
// refits ω/κ); concurrent predictions on the same topology observe
// either the pre- or post-selection model, never a partial write. Safe
// for concurrent use.
func (s *Service) SelectCoordinators(topo cluster.TopoNode, m int) ([]CoordChoice, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return nil, e.err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pl.SelectCoordinators(m)
}

// SelectCoordinatorsV is SelectCoordinators for an irregular exchange.
func (s *Service) SelectCoordinatorsV(topo cluster.TopoNode, sz coll.SizeMatrix) ([]CoordChoice, error) {
	e := s.entryFor(topo)
	if e.err != nil {
		return nil, e.err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pl.SelectCoordinatorsV(sz)
}

// Invalidate declares one tier's characterization stale — its WAN
// changed, remeasure — and returns the number of store records
// dropped: the tier's measured curve and γ fit, every ancestor tier's
// fits, and the strategy fits of every topology containing the tier
// (CurveStore.Invalidate's substring rule over the compositional
// TierKey). Cached planners whose topology contains the tier are
// dropped too; their next PlannerFor re-fits incrementally, reusing
// every surviving record. Builds already in flight when Invalidate
// runs complete with their own (pre-invalidation) fits, but the
// store's build-epoch guard bars them from writing those fits back
// (counted under store.stale_drop) — the next build after the
// invalidation always re-probes the invalidated records.
func (s *Service) Invalidate(tierKey string) int {
	if tierKey == "" {
		return 0
	}
	s.mu.Lock()
	planners := 0
	for k := range s.entries {
		if strings.Contains(k, tierKey) {
			delete(s.entries, k)
			planners++
		}
	}
	s.mu.Unlock()
	records := s.store.Invalidate(tierKey)
	sp := s.opt.Trace.Span("service.invalidate",
		obs.Int("planners", planners), obs.Int("records", records))
	sp.End()
	return records
}

// DeltaThreshold is the relative throughput deviation below which
// ReportDelta skips replanning: WAN rates jitter a few percent without
// the strategy ranking moving, and replanning on noise would churn the
// store for nothing.
const DeltaThreshold = 0.10

// Delta is one monitored deviation report against a tier's
// characterized behavior.
type Delta struct {
	// RateFactor is the observed throughput over the characterized
	// throughput on the tier: 1 means nominal, 0.5 half speed, 1.5
	// a recovered or upgraded link.
	RateFactor float64
	// Size is the per-pair message size to re-rank strategies at after
	// the refit; zero defaults to 64 KiB.
	Size int
	// Source labels the reporting monitor in the trace.
	Source string
}

// Replan reports what ReportDelta did.
type Replan struct {
	// Skipped is true when the delta was inside DeltaThreshold and
	// nothing was invalidated or refitted.
	Skipped bool
	// DroppedRecords is how many store records the invalidation hit.
	DroppedRecords int
	// Predictions ranks the strategies after the refit, fastest first.
	Predictions []Prediction
	// Choices is the post-refit coordinator selection.
	Choices []CoordChoice
	// Spec is the post-refit plan spec (coordinators and standbys
	// annotated), ready for coll.PlanHierTree.
	Spec coll.TreeSpec
}

// ReportDelta reacts to a monitored deviation on one tier: a delta past
// DeltaThreshold invalidates exactly that tier's characterization (the
// compositional-key rule takes ancestors and containing strategy fits
// with it), rebuilds the topology's planner warm — unaffected tiers hit
// the store and are not re-probed; only the invalidated path refits,
// counted under store.refit — re-runs coordinator selection, and
// re-ranks the strategies at d.Size.
//
// topo must describe the grid as it is now: a degraded NIC shows up as
// the changed NodeLinkRates entry, which changes the leaf's TierKey so
// its old curves cannot be mistaken for current ones, and the refit's
// headroom probes then steer coordinators off the degraded port.
// Safe for concurrent use; concurrent ReportDelta calls for one
// topology serialize on the entry lock like SelectCoordinators.
func (s *Service) ReportDelta(topo cluster.TopoNode, tierKey string, d Delta) (*Replan, error) {
	dev := d.RateFactor - 1
	if dev < 0 {
		dev = -dev
	}
	if dev < DeltaThreshold {
		return &Replan{Skipped: true}, nil
	}
	if d.Size == 0 {
		d.Size = 64 << 10
	}
	sp := s.opt.Trace.Span("service.replan",
		obs.Str("tier", tierKey), obs.Str("source", d.Source),
		obs.F64("rate_factor", d.RateFactor), obs.Int("size", d.Size))
	defer sp.End()
	dropped := s.Invalidate(tierKey)
	e := s.entryFor(topo)
	if e.err != nil {
		return nil, e.err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	choices, err := e.pl.SelectCoordinators(d.Size)
	if err != nil {
		return nil, err
	}
	return &Replan{
		DroppedRecords: dropped,
		Predictions:    e.pl.Predict(d.Size),
		Choices:        choices,
		Spec:           e.pl.PlanSpec(),
	}, nil
}

// Len reports how many planners the service currently caches.
func (s *Service) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
