package grid

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Probe worker pool. Every probe simulation builds its own topology and
// Simulator from an explicit seed, so independent probes share no
// mutable state and can run concurrently; the only shared sink is the
// obs.Collector's counters, which are thread-safe and order-
// independent. Everything order-sensitive — trace events, ProbeStats,
// fitted points, error propagation — is folded by the calling goroutine
// after the batch completes, in the exact order the sequential code
// produced, which is how parallel characterization stays bit-identical
// to sequential (the property the service tests pin).

// parallelDo runs fn(0..n-1) across at most workers goroutines. With
// workers ≤ 1 (or a single job) it runs inline on the caller — truly
// sequential, no goroutine spawned — so Options.Workers = 1 reproduces
// the pre-pool execution exactly.
func parallelDo(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := int64(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// probeRun is one contention-factor probe scheduled on the pool: the
// batch analogue of a probeTypical call. run must be safe to invoke
// concurrently with other probes' runs (each invocation builds its own
// simulation). After runProbes, either err is set or times holds the
// per-seed samples in probeSeeds order and median their median —
// exactly probeTypical's return values for the same baseSeed and run.
type probeRun struct {
	baseSeed int64
	run      func(seed int64) (float64, error)

	times  []float64
	median float64
	err    error
}

// runProbes executes a batch of probes over the stop-when-stable seed
// schedule, fanning every (probe, seed) simulation across the worker
// pool. Two phases: all probes' initial seeds run first; then the
// dispersion gate is evaluated sequentially (same rule as probeTypical)
// and unstable probes' extension seeds form a second parallel phase.
// Error semantics match probeTypical: a probe reports its first error
// in seed order, with no samples.
func runProbes(workers int, stableSpread float64, probes []*probeRun) {
	type job struct{ p, s int }
	res := make([][]float64, len(probes))
	errs := make([][]error, len(probes))
	jobs := make([]job, 0, len(probes)*probeSeedsInitial)
	for pi, p := range probes {
		n := len(probeSeeds(p.baseSeed))
		res[pi] = make([]float64, n)
		errs[pi] = make([]error, n)
		for s := 0; s < probeSeedsInitial; s++ {
			jobs = append(jobs, job{pi, s})
		}
	}
	runJob := func(j job) {
		p := probes[j.p]
		res[j.p][j.s], errs[j.p][j.s] = p.run(probeSeeds(p.baseSeed)[j.s])
	}
	parallelDo(workers, len(jobs), func(i int) { runJob(jobs[i]) })

	// Fold initial seeds and evaluate the dispersion gate per probe.
	var ext []job
	for pi, p := range probes {
		for s := 0; s < probeSeedsInitial; s++ {
			if errs[pi][s] != nil {
				p.err = errs[pi][s]
				break
			}
		}
		if p.err != nil {
			continue
		}
		p.times = append(p.times, res[pi][:probeSeedsInitial]...)
		if lo, med, hi := dispersion(p.times); med > 0 && hi-lo > stableSpread*med {
			for s := probeSeedsInitial; s < len(probeSeeds(p.baseSeed)); s++ {
				ext = append(ext, job{pi, s})
			}
		}
	}
	parallelDo(workers, len(ext), func(i int) { runJob(ext[i]) })
	for _, j := range ext {
		p := probes[j.p]
		if p.err != nil {
			continue
		}
		if e := errs[j.p][j.s]; e != nil {
			p.err = e
			p.times = nil
			continue
		}
		p.times = append(p.times, res[j.p][j.s])
	}

	for _, p := range probes {
		if p.err != nil {
			continue
		}
		sorted := append([]float64(nil), p.times...)
		sort.Float64s(sorted)
		p.median = sorted[len(sorted)/2]
	}
}
