package grid

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// Bandwidth-aware coordinator selection. The hierarchical relay
// serializes every cross-subtree block through its subtree coordinators,
// so the coordinator NIC is the incast bottleneck the κ factor prices —
// and the default (each subtree's lowest rank) ignores measured uplink
// headroom entirely. The planner therefore probes each node's achievable
// NIC rate during characterization, and SelectCoordinators picks, per
// leaf, the coordinator set (which ranks, and how many ports C to split
// the gather/scatter across) that minimizes the predicted hierarchical
// completion time. Homogeneous clusters measure equal headroom and keep
// the lowest-rank default, leaving the model untouched — the selection
// machinery changes nothing unless headroom data says otherwise.

// tagNICProbe is the reserved tag of the per-node headroom ping-pong.
const tagNICProbe int32 = 7200

// selectMargin is the minimum predicted relative improvement a
// non-default coordinator choice must show before it replaces the
// lowest-rank default: within this band a measured-rate wobble could
// flip the choice without a real win.
const selectMargin = 0.02

// standbyCap bounds each leaf's ranked standby-coordinator list. Three
// standbys survive three coordinated deaths in one leaf — already far
// beyond the single-failure scenarios the failover runtime targets —
// while keeping the PlanSpec annotation small.
const standbyCap = 3

// probeHeadroom measures each node's achievable NIC rate (bytes/s) on a
// standalone build of the leaf cluster: every node runs a warmed
// large-message ping-pong against two distinct partners and keeps the
// best observed rate. A pairwise probe is limited by the slower
// endpoint, so the best of two partners isolates the probed node's own
// port unless both partners are degraded too. Two-node leaves have a
// single pair, whose time crosses both access links either way — a
// degraded port cannot be attributed to one endpoint there, both nodes
// measure alike, and selection conservatively keeps the default.
func probeHeadroom(p cluster.Profile, nodes int, opt Options) []float64 {
	rates := make([]float64, nodes)
	if nodes < 2 {
		for i := range rates {
			rates[i] = float64(p.NodeRate(i))
		}
		return rates
	}
	// Unordered probe pairs: (i, i+1) and (i, i+2) mod n, deduplicated.
	type pair struct{ a, b int }
	seen := map[pair]bool{}
	var pairs []pair
	for i := 0; i < nodes; i++ {
		for _, d := range []int{1, 2} {
			j := (i + d) % nodes
			if j == i {
				continue
			}
			pr := pair{a: i, b: j}
			if pr.a > pr.b {
				pr.a, pr.b = pr.b, pr.a
			}
			if !seen[pr] {
				seen[pr] = true
				pairs = append(pairs, pr)
			}
		}
	}
	m := 4 * opt.ProbeSize // bandwidth-dominated transfer
	times := make([]float64, len(pairs))
	cl := cluster.Build(p, nodes, opt.Seed+113)
	cl.Net.AttachCollector(opt.Trace)
	w := mpi.NewWorld(cl, mpi.Config{})
	w.Run(func(r *mpi.Rank) {
		for pi, pr := range pairs {
			if r.ID() != pr.a && r.ID() != pr.b {
				continue
			}
			// One unmeasured repetition warms the congestion window.
			for rep := 0; rep <= opt.Reps; rep++ {
				if r.ID() == pr.a {
					t0 := r.Now()
					r.Send(pr.b, tagNICProbe, m)
					r.Recv(pr.b, tagNICProbe)
					if rep > 0 {
						times[pi] += (r.Now() - t0).Seconds() / 2 / float64(opt.Reps)
					}
				} else {
					r.Recv(pr.a, tagNICProbe)
					r.Send(pr.a, tagNICProbe, m)
				}
			}
		}
	})
	addRunCounters(opt.Trace, cl)
	for pi, pr := range pairs {
		if times[pi] <= 0 {
			continue
		}
		rate := float64(m) / times[pi]
		if rate > rates[pr.a] {
			rates[pr.a] = rate
		}
		if rate > rates[pr.b] {
			rates[pr.b] = rate
		}
	}
	return rates
}

// safeHeadroom returns leaf l's probed per-node rates with every
// unusable entry — zero (all of a node's probe pair times unmeasured,
// or a 1-node leaf whose profile declares NodeRate 0), negative, or
// non-finite — replaced by the profile's nominal access rate. A node
// whose nominal rate is itself non-positive keeps 0, and betaOf maps it
// to the model's "no headroom data" default rather than dividing by it:
// selection must never emit a non-finite CoordBeta
// (model.ModelNode.CoordBeta poisons every subsequent prediction
// otherwise).
func (pl *Planner) safeHeadroom(l int) []float64 {
	probed := pl.Headroom[l]
	p := pl.Topo.Leaves()[l].Profile
	out := make([]float64, len(probed))
	for i, r := range probed {
		if r > 0 && !math.IsInf(r, 0) {
			out[i] = r
			continue
		}
		if nominal := float64(p.NodeRate(i)); nominal > 0 {
			out[i] = nominal
		}
	}
	return out
}

// betaOf converts a probed NIC rate to the model's per-byte gap,
// mapping unusable rates to 0 — the model's documented "no headroom
// data" fallback — instead of a poisonous +Inf.
func betaOf(rate float64) float64 {
	if rate <= 0 || math.IsInf(rate, 0) {
		return 0
	}
	return 1 / rate
}

// CoordChoice is one leaf's coordinator selection.
type CoordChoice struct {
	// Leaf is the leaf index in tree order.
	Leaf int
	// Local are the chosen coordinators as node indices within the
	// leaf, in ownership order (divergence target k goes to entry
	// k mod C).
	Local []int
	// Ranks are the same coordinators as global MPI ranks of a grid
	// built from the planner's topology (contiguous leaf blocks).
	Ranks []int
	// Rate is the slowest chosen coordinator's probed NIC rate in B/s
	// (the profile's nominal rate where the probe came back unusable —
	// see safeHeadroom).
	Rate float64
	// Standby are the leaf's secondary coordinators as node indices
	// within the leaf, ranked best first by the same measured headroom
	// that ranked the chosen set, excluding the chosen coordinators.
	// They are the failover order: when a coordinator's node is
	// declared dead mid-plan, the executor promotes the first live
	// standby (coll.FailoverRun). Capped at standbyCap entries.
	Standby []int
	// Default reports that the lowest-rank single-coordinator default
	// was kept; the model is left untouched for this leaf.
	Default bool
	// PredT is the predicted best hierarchical completion time with the
	// final selection (every leaf's decided choice) applied.
	PredT float64
}

// String renders the choice for experiment output.
func (c CoordChoice) String() string {
	if c.Default {
		return fmt.Sprintf("leaf %d: rank %d (default)", c.Leaf, c.Ranks[0])
	}
	return fmt.Sprintf("leaf %d: ranks %v (%.0f MB/s)", c.Leaf, c.Ranks, c.Rate/1e6)
}

// leafTargetCounts returns, per leaf in tree order, the number of
// divergence targets (sibling subtrees across all ancestor tiers) —
// the useful upper bound on a leaf's coordinator count, since target
// ownership is what a split partitions.
func leafTargetCounts(t cluster.TopoNode) []int {
	var out []int
	var walk func(v cluster.TopoNode, above int)
	walk = func(v cluster.TopoNode, above int) {
		if v.IsLeaf() {
			out = append(out, above)
			return
		}
		for _, c := range v.Children {
			walk(c, above+len(v.Children)-1)
		}
	}
	walk(t, 0)
	return out
}

// SelectCoordinators picks each leaf's coordinator set by predicted
// cost at per-pair message size m: candidates are the headroom-ranked
// top-C nodes for C = 1..MaxCoords (capped by the leaf's width and its
// divergence target count), evaluated through the grid model with the
// candidate's measured NIC gap and split applied. A non-default choice
// must beat the lowest-rank default by selectMargin; otherwise the
// default is kept and the model stays untouched for that leaf, so
// homogeneous grids provably keep today's behavior (all-default
// selections skip the refit below, leaving predictions bit-identical).
// The winning choices are applied to the planner's model, the strategy
// factors ω and κ are re-fitted against the selected plan
// (refitStrategyFactors), Predict reflects both, and PlanSpec carries
// the annotation.
func (pl *Planner) SelectCoordinators(m int) ([]CoordChoice, error) {
	return pl.selectCoordinators(func() float64 {
		hg, hd := pl.Model.PredictHierGather(m), pl.Model.PredictHierDirect(m)
		if hd < hg {
			return hd
		}
		return hg
	})
}

// SelectCoordinatorsV is the irregular-exchange form of
// SelectCoordinators: candidates are evaluated through the v-model at
// the given size matrix, so a candidate's predicted cost weighs its
// measured headroom by the leaf's *actual* relay bytes (the matrix's
// out- and inbound cuts at that leaf) rather than by the uniform
// (n−s)·m volume — a leaf that relays little can keep a mediocre
// default port while a hotspot leaf is steered or split. Decision
// margin, model application and the ω/κ refit are shared with the
// uniform path; uniform matrices select identically to
// SelectCoordinators at m.
func (pl *Planner) SelectCoordinatorsV(sz coll.SizeMatrix) ([]CoordChoice, error) {
	if sz.NumRanks() != pl.Model.TotalNodes() {
		return nil, fmt.Errorf("grid: size matrix covers %d ranks, topology has %d",
			sz.NumRanks(), pl.Model.TotalNodes())
	}
	return pl.selectCoordinators(func() float64 {
		hg, hd := pl.Model.PredictHierGatherV(sz), pl.Model.PredictHierDirectV(sz)
		if hd < hg {
			return hd
		}
		return hg
	})
}

// selectCoordinators is the shared selection core: hierBest returns the
// best hierarchical prediction under the model's current per-leaf
// coordinator fields (NumCoords, CoordBeta), which the candidate loop
// mutates and compares through it.
func (pl *Planner) selectCoordinators(hierBest func() float64) ([]CoordChoice, error) {
	leaves := pl.Model.Leaves()
	targetCounts := leafTargetCounts(pl.Topo)
	bases := make([]int, len(leaves))
	base := 0
	for l, lf := range pl.Topo.Leaves() {
		bases[l] = base
		base += lf.Nodes
	}

	// Sanitized headroom: probed rates with unusable entries (zero
	// probes, non-finite noise) replaced by nominal profile rates, so
	// no candidate pricing below can divide by zero.
	safe := make([][]float64, len(leaves))
	for l := range leaves {
		safe[l] = pl.safeHeadroom(l)
	}

	// Provisional pricing: while candidates are compared, every
	// undecided leaf is priced at its best-headroom single port. The
	// hierarchical legs take the worst leaf, so leaving other leaves at
	// their pessimistic nominal pricing would mask this leaf's
	// improvement behind their max.
	for l, lf := range leaves {
		rates := safe[l]
		bi := 0
		for i, r := range rates {
			if r > rates[bi] {
				bi = i
			}
		}
		lf.NumCoords, lf.CoordBeta = 1, betaOf(rates[bi])
	}

	out := make([]CoordChoice, 0, len(leaves))
	for l, lf := range leaves {
		rates := safe[l]
		s := lf.Size

		// Nodes ranked by measured headroom, ties broken toward lower
		// indices so a homogeneous leaf ranks its lowest rank first.
		order := make([]int, s)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return rates[order[a]] > rates[order[b]] })

		minRate := func(nodes []int) float64 {
			mr := rates[nodes[0]]
			for _, i := range nodes[1:] {
				if rates[i] < mr {
					mr = rates[i]
				}
			}
			return mr
		}
		evaluate := func(nodes []int) float64 {
			lf.NumCoords = len(nodes)
			lf.CoordBeta = betaOf(minRate(nodes))
			return hierBest()
		}

		// The default everything must beat: the lowest rank, priced
		// with its measured headroom so candidates compare fairly.
		defCost := evaluate([]int{0})
		bestNodes, bestCost := []int{0}, defCost
		maxC := pl.opt.MaxCoords
		if maxC > s {
			maxC = s
		}
		if tc := targetCounts[l]; maxC > tc && tc > 0 {
			maxC = tc
		}
		for c := 1; c <= maxC; c++ {
			cand := append([]int(nil), order[:c]...)
			if cost := evaluate(cand); cost < bestCost {
				bestNodes, bestCost = cand, cost
			}
		}

		isDefault := len(bestNodes) == 1 && bestNodes[0] == 0
		if !isDefault && bestCost >= defCost*(1-selectMargin) {
			isDefault = true // not a decisive win: keep the default
		}
		choice := CoordChoice{Leaf: l}
		if isDefault {
			choice.Default = true
			choice.Local = []int{0}
			choice.Ranks = []int{bases[l]}
			choice.Rate = rates[0]
			// Decided: price the true default port for the remaining
			// leaves' comparisons; zeroed below once all are decided.
			lf.NumCoords, lf.CoordBeta = 1, betaOf(rates[0])
		} else {
			choice.Local = bestNodes
			choice.Rate = minRate(bestNodes)
			for _, i := range bestNodes {
				choice.Ranks = append(choice.Ranks, bases[l]+i)
			}
			lf.NumCoords = len(bestNodes)
			lf.CoordBeta = betaOf(choice.Rate)
		}
		chosen := make(map[int]bool, len(choice.Local))
		for _, i := range choice.Local {
			chosen[i] = true
		}
		for _, i := range order {
			if len(choice.Standby) >= standbyCap {
				break
			}
			if !chosen[i] {
				choice.Standby = append(choice.Standby, i)
			}
		}
		out = append(out, choice)
	}

	// Leaves that kept the default leave the model untouched — the
	// pre-selection planner, provably unchanged without headroom wins.
	anyNonDefault := false
	for l, lf := range leaves {
		if out[l].Default {
			lf.NumCoords, lf.CoordBeta = 0, 0
		} else {
			anyNonDefault = true
		}
	}
	pl.Selected = out
	if anyNonDefault {
		if err := pl.refitStrategyFactors(out); err != nil {
			pl.Selected = nil
			return nil, err
		}
	}
	final := hierBest()
	for i := range out {
		out[i].PredT = final
	}
	return out, nil
}

// specFor builds the coll topology spec of a grid built from topo —
// contiguous rank blocks in leaf (tree) order, matching
// cluster.BuildGridTree's rank assignment — with per-leaf coordinator
// choices (leaf-local node indices) annotated. Inner tiers follow the
// leaf decision: a subtree's default relay is its lowest rank, which
// lives in one of its leaves, so when that leaf's choice moved off the
// (degraded) default, the subtree relays through the leaf's primary
// chosen coordinator instead — otherwise every inter-tier byte would
// still funnel through the port selection steered away from. Default
// (or nil) choices annotate nothing, reproducing the lowest-rank plan
// exactly.
func specFor(topo cluster.TopoNode, choices []CoordChoice) coll.TreeSpec {
	var leafSizes []int
	for _, lf := range topo.Leaves() {
		leafSizes = append(leafSizes, lf.Nodes)
	}
	// leafOf maps a global rank to its leaf index.
	leafOf := func(r int) int {
		for l, n := range leafSizes {
			if r < n {
				return l
			}
			r -= n
		}
		panic("grid: rank outside topology")
	}
	coordsOf := func(l, base int) []int {
		if choices == nil || choices[l].Default {
			return nil
		}
		var out []int
		for _, i := range choices[l].Local {
			if i < leafSizes[l] {
				out = append(out, base+i)
			}
		}
		return out
	}
	// Standbys annotate every leaf with a selection — default choices
	// included, since the default coordinator's node can die too and the
	// headroom ranking knows its best replacement either way.
	standbysOf := func(l, base int) []int {
		if choices == nil {
			return nil
		}
		var out []int
		for _, i := range choices[l].Standby {
			if i < leafSizes[l] {
				out = append(out, base+i)
			}
		}
		return out
	}

	rank := 0
	bases := make([]int, len(leafSizes))
	for l := 1; l < len(leafSizes); l++ {
		bases[l] = bases[l-1] + leafSizes[l-1]
	}
	var walk func(t cluster.TopoNode) coll.TreeSpec
	walk = func(t cluster.TopoNode) coll.TreeSpec {
		if t.IsLeaf() {
			s := coll.TreeSpec{}
			for i := 0; i < t.Nodes; i++ {
				s.Ranks = append(s.Ranks, rank+i)
			}
			s.Coords = coordsOf(leafOf(s.Ranks[0]), s.Ranks[0])
			s.Standbys = standbysOf(leafOf(s.Ranks[0]), s.Ranks[0])
			rank += t.Nodes
			return s
		}
		var s coll.TreeSpec
		lowest := rank // ranks are assigned in tree order: the subtree's lowest is next
		for _, c := range t.Children {
			s.Children = append(s.Children, walk(c))
		}
		if l := leafOf(lowest); choices != nil && !choices[l].Default {
			if cs := coordsOf(l, bases[l]); len(cs) > 0 {
				s.Coords = cs[:1]
			}
		}
		return s
	}
	return walk(topo)
}

// PlanSpec returns the coll topology spec of a grid built from the
// planner's topology, with any selected coordinators annotated (leaf
// coordinator sets plus the inner-tier follow-through; see specFor).
// Compile it with coll.PlanHierTree to run the planner's chosen plan;
// before SelectCoordinators it describes the lowest-rank default.
func (pl *Planner) PlanSpec() coll.TreeSpec {
	return specFor(pl.Topo, pl.Selected)
}

// refitStrategyFactors re-runs the capped hierarchical probes with the
// selected coordinators applied and re-inverts the full strategy
// factor curves ω and κ — one point per probe size, exactly as the
// initial fit: the factors summarize the residual loss-recovery
// inflation of the plan that actually runs, and a selection that moves
// the relay off a degraded port (or splits it) changes that plan
// materially — curves fitted against the lowest-rank default would
// misprice it. Probe dispersion and instability land in pl.ProbeStats
// and pl.Warnings with Stage "refit", alongside the initial fit's.
func (pl *Planner) refitStrategyFactors(choices []CoordChoice) error {
	capN := pl.opt.ProbeCap
	probeTopo := cappedTree(pl.Topo, capN)
	sp := pl.opt.Trace.Span("planner.refit_strategy", obs.Int("probe_cap", capN))
	defer sp.End()

	// Capped view of the selection: chosen node indices beyond the
	// probe cap fall away; a leaf with none left reverts to default.
	capped := make([]CoordChoice, len(choices))
	probeLeaves := probeTopo.Leaves()
	for l, ch := range choices {
		cc := CoordChoice{Leaf: l, Default: ch.Default}
		for _, i := range ch.Local {
			if i < probeLeaves[l].Nodes {
				cc.Local = append(cc.Local, i)
			}
		}
		if len(cc.Local) == 0 {
			cc.Default = true
			cc.Local = []int{0}
		}
		capped[l] = cc
	}

	// Refits cache under the topology plus the capped selection: the
	// probe spec and the inverted probe model depend on nothing else
	// (headroom rates are themselves store-cached and deterministic
	// under the bound options), so a second process planning the same
	// selection restores the refit without a single probe.
	rkey := "R|" + topoKey(pl.Topo) + "|" + selectionKey(capped)
	if rec, ok := pl.sv.strategy(sp, rkey); ok {
		pl.Model.OverlapGamma = rec.Omega
		pl.Model.GatherGamma = rec.Kappa
		return nil
	}

	probeRoot := cappedModel(pl.Model.Root, capN)
	for l, lf := range probeRoot.Leaves() {
		if capped[l].Default {
			continue
		}
		rates := pl.safeHeadroom(l)
		mr := rates[capped[l].Local[0]]
		for _, i := range capped[l].Local[1:] {
			if rates[i] < mr {
				mr = rates[i]
			}
		}
		lf.NumCoords = len(capped[l].Local)
		lf.CoordBeta = betaOf(mr)
	}
	probeModel := model.GridModel{Root: probeRoot}
	spec := specFor(probeTopo, capped)

	// Same batch/fold split as fitStrategyFactors: both strategies ×
	// all sizes fan out across the worker pool, results fold in the
	// legacy per-size order (ω, κ, overlap check) bit-identically.
	hdProbes := make([]*probeRun, len(pl.opt.ProbeSizes))
	hgProbes := make([]*probeRun, len(pl.opt.ProbeSizes))
	for i, p := range pl.opt.ProbeSizes {
		m := p
		hdProbes[i] = &probeRun{baseSeed: pl.opt.Seed + 71, run: func(sd int64) (float64, error) {
			return simulateSpecObsIn(pl.opt.Trace, pl.opt.simCfg(), probeTopo, spec, coll.HierDirect, m, sd, 1, pl.opt.Reps)
		}}
		hgProbes[i] = &probeRun{baseSeed: pl.opt.Seed + 89, run: func(sd int64) (float64, error) {
			return simulateSpecObsIn(pl.opt.Trace, pl.opt.simCfg(), probeTopo, spec, coll.HierGather, m, sd, 1, pl.opt.Reps)
		}}
	}
	batch := make([]*probeRun, 0, 2*len(pl.opt.ProbeSizes))
	for i := range pl.opt.ProbeSizes {
		batch = append(batch, hdProbes[i], hgProbes[i])
	}
	runProbes(pl.opt.Workers, pl.opt.StableSpread, batch)

	var omegaPts, kappaPts []model.FactorPoint
	for i, p := range pl.opt.ProbeSizes {
		hd, hg := hdProbes[i], hgProbes[i]
		if hd.err != nil {
			return hd.err
		}
		pl.recordProbe(sp, "omega", "", "refit", p, pl.opt.Seed+71, hd.times)
		o := 1.0
		if phase0, xchg, scatter := probeModel.HierDirectParts(p); xchg > 0 {
			o = clampGamma((hd.median - phase0 - scatter) / xchg)
		}
		sp.Event("fit.point", obs.Str("factor", "omega"), obs.Int("size", p), obs.F64("value", o))
		omegaPts = append(omegaPts, model.FactorPoint{Bytes: p, Factor: o})

		if hg.err != nil {
			return hg.err
		}
		pl.recordProbe(sp, "kappa", "", "refit", p, pl.opt.Seed+89, hg.times)
		k := 1.0
		if intra, xchg, local := probeModel.HierGatherParts(p); local > 0 {
			k = clampGamma((hg.median - intra - xchg) / local)
		}
		sp.Event("fit.point", obs.Str("factor", "kappa"), obs.Int("size", p), obs.F64("value", k))
		kappaPts = append(kappaPts, model.FactorPoint{Bytes: p, Factor: k})

		pl.checkOverlap(sp, "refit", p, hd.times, hg.times)
	}
	pl.Model.OverlapGamma = model.CurveOf(omegaPts...)
	pl.Model.GatherGamma = model.CurveOf(kappaPts...)
	pl.sv.putStrategy(rkey, storedStrategy{Omega: pl.Model.OverlapGamma, Kappa: pl.Model.GatherGamma})
	return nil
}

// selectionKey renders a capped coordinator selection as a refit cache
// key component: per leaf, "d" for a kept default or the chosen local
// node indices. Leaves render in tree order, so structurally identical
// selections share a key.
func selectionKey(choices []CoordChoice) string {
	var b strings.Builder
	for l, ch := range choices {
		if l > 0 {
			b.WriteByte(';')
		}
		if ch.Default {
			b.WriteByte('d')
			continue
		}
		for i, n := range ch.Local {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", n)
		}
	}
	return b.String()
}

// SimulateSpec builds the topology and measures one hierarchical
// algorithm's All-to-All compiled from an explicit plan spec (e.g.
// PlanSpec's selected coordinators) in full packet-level simulation —
// the ground truth that validates a coordinator choice.
func SimulateSpec(topo cluster.TopoNode, spec coll.TreeSpec, alg coll.HierAlgorithm, m int, seed int64, warmup, reps int) (float64, error) {
	return simulateSpecObs(nil, topo, spec, alg, m, seed, warmup, reps)
}

// simulateSpecObs is SimulateSpec with an optional trace collector, the
// refit probes' counterpart of simulateObs.
func simulateSpecObs(c *obs.Collector, topo cluster.TopoNode, spec coll.TreeSpec, alg coll.HierAlgorithm, m int, seed int64, warmup, reps int) (float64, error) {
	return simulateSpecObsIn(c, SimConfig{}, topo, spec, alg, m, seed, warmup, reps)
}

// simulateSpecObsIn is simulateSpecObs under an explicit engine
// selection.
func simulateSpecObsIn(c *obs.Collector, sc SimConfig, topo cluster.TopoNode, spec coll.TreeSpec, alg coll.HierAlgorithm, m int, seed int64, warmup, reps int) (float64, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return 0, err
	}
	applySimConfig(g, sc)
	plan := coll.PlanHierTree(spec, alg)
	if plan.Place.NumRanks() != len(g.Env.Hosts) {
		return 0, fmt.Errorf("grid: plan spec covers %d ranks, topology has %d",
			plan.Place.NumRanks(), len(g.Env.Hosts))
	}
	return measureEnv(c, g.Env, warmup, reps, func(r *mpi.Rank) {
		coll.AlltoallHierPlanned(r, plan, m)
	}), nil
}

// DescribeStrategy maps a planner strategy to the coll algorithm it
// compiles to, for callers running selected plans; ok is false for
// FlatDirect, which has no hierarchical plan.
func DescribeStrategy(s Strategy) (coll.HierAlgorithm, bool) {
	switch s {
	case HierGather:
		return coll.HierGather, true
	case HierDirect:
		return coll.HierDirect, true
	default:
		return 0, false
	}
}
