package grid

import (
	"math"
	"strings"
	"testing"

	"repro/internal/coll"
)

// isFinite reports a usable model quantity: not NaN, not ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// TestOptionsValidation: sweeps a characterization cannot use must be
// rejected by NewPlanner with an error naming the field — not measured
// into NaN-spraying curves.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"wan-all-duplicates", func(o *Options) { o.WANSizes = []int{64 << 10, 64 << 10, 64 << 10} }, "WANSizes"},
		{"wan-nonpositive", func(o *Options) { o.WANSizes = []int{0, 2 << 10, 64 << 10} }, "WANSizes"},
		{"wan-negative", func(o *Options) { o.WANSizes = []int{-4, 2 << 10, 64 << 10} }, "WANSizes"},
		{"fit-too-few", func(o *Options) { o.FitSizes = []int{16 << 10, 64 << 10, 256 << 10} }, "FitSizes"},
		{"fit-duplicates-below-four", func(o *Options) {
			o.FitSizes = []int{16 << 10, 16 << 10, 64 << 10, 128 << 10}
		}, "FitSizes"},
		{"probe-nonpositive", func(o *Options) { o.ProbeSizes = []int{0} }, "ProbeSizes"},
		{"probesize-negative", func(o *Options) { o.ProbeSize = -1 }, "ProbeSize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := cheapOptions()
			tc.mut(&opt)
			_, err := NewPlanner(testTopo(), opt)
			if err == nil {
				t.Fatalf("invalid %s accepted", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
}

// TestPlannerDuplicateWANSizesStayFinite pins the NaN regression of the
// probe→model pipeline: duplicated WANSizes used to measure curve
// points with equal Bytes, whose zero-width segment made
// WANModel.Transfer divide by zero and spray NaN into every
// prediction. characterizeTier now dedupes, so the curve carries
// distinct sizes and predictions stay finite.
func TestPlannerDuplicateWANSizesStayFinite(t *testing.T) {
	opt := cheapOptions()
	opt.WANSizes = []int{2 << 10, 32 << 10, 32 << 10, 128 << 10, 128 << 10, 512 << 10}
	pl, err := NewPlanner(testTopo(), opt)
	if err != nil {
		t.Fatal(err)
	}
	curve := pl.Model.Root.Wan.Curve
	if len(curve) != 4 {
		t.Fatalf("curve has %d points, want 4 deduplicated", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Bytes <= curve[i-1].Bytes {
			t.Fatalf("curve sizes not strictly increasing: %+v", curve)
		}
	}
	for _, m := range []int{8 << 10, 32 << 10, 200 << 10} {
		for _, pr := range pl.Predict(m) {
			if !isFinite(pr.T) || pr.T <= 0 {
				t.Fatalf("m=%d %v: non-finite or non-positive prediction %v", m, pr.Strategy, pr.T)
			}
		}
	}
}

// TestSelectCoordinatorsZeroHeadroomFinite pins the Inf regression: a
// node whose probed headroom comes back 0 used to make
// selectCoordinators set CoordBeta = 1/0 = +Inf, poisoning every
// subsequent prediction and the selection itself. Zero probes must
// fall back to the profile's nominal rate and never emit a non-finite
// CoordBeta.
func TestSelectCoordinatorsZeroHeadroomFinite(t *testing.T) {
	pl, err := NewPlanner(heteroTestTopo(4), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a probe failure: leaf 0's pair times all unmeasured,
	// leaf 1 with one dead entry.
	for i := range pl.Headroom[0] {
		pl.Headroom[0][i] = 0
	}
	pl.Headroom[1][1] = 0
	choices, err := pl.SelectCoordinators(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 2 {
		t.Fatalf("%d choices, want 2", len(choices))
	}
	for _, c := range choices {
		if !isFinite(c.Rate) || !isFinite(c.PredT) || c.PredT <= 0 {
			t.Fatalf("non-finite selection outcome: %+v", c)
		}
	}
	for l, lf := range pl.Model.Leaves() {
		if !isFinite(lf.CoordBeta) {
			t.Fatalf("leaf %d: non-finite CoordBeta %v", l, lf.CoordBeta)
		}
	}
	for _, pr := range pl.Predict(64 << 10) {
		if !isFinite(pr.T) || pr.T <= 0 {
			t.Fatalf("%v: non-finite prediction %v after zero-headroom selection", pr.Strategy, pr.T)
		}
	}
}

// TestPlannerAllZeroMatrixDegenerates pins the degenerate irregular
// input end to end: an all-zero SizeMatrix predicts exactly 0 for
// every strategy, selects all-default coordinators without NaN/Inf,
// and simulates without error.
func TestPlannerAllZeroMatrixDegenerates(t *testing.T) {
	topo := testTopo()
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	zero := coll.NewSizeMatrix(pl.Model.TotalNodes())
	for _, pr := range pl.PredictV(zero) {
		if pr.T != 0 {
			t.Fatalf("%v: all-zero matrix predicted %v, want 0", pr.Strategy, pr.T)
		}
	}
	choices, err := pl.SelectCoordinatorsV(zero)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range choices {
		if !c.Default {
			t.Fatalf("all-zero matrix selected a non-default coordinator: %+v", c)
		}
		if !isFinite(c.PredT) {
			t.Fatalf("non-finite PredT on all-zero selection: %+v", c)
		}
	}
	for l, lf := range pl.Model.Leaves() {
		if lf.NumCoords != 0 || lf.CoordBeta != 0 {
			t.Fatalf("leaf %d model touched by all-zero selection: C=%d β=%v", l, lf.NumCoords, lf.CoordBeta)
		}
	}
	for _, strat := range Strategies {
		simT, err := SimulateV(topo, strat, zero, 7, 0, 1)
		if err != nil {
			t.Fatalf("%v: all-zero simulation failed: %v", strat, err)
		}
		if !isFinite(simT) || simT < 0 {
			t.Fatalf("%v: all-zero simulated time %v", strat, simT)
		}
	}
}

// TestPlannerSingleProbeSizeIsScalarCompatible: a one-size probe sweep
// must produce single-point factor curves — the scalar-compatible
// configuration whose predictions the model-level pins prove
// bit-identical to the pre-curve scalar-factor model.
func TestPlannerSingleProbeSizeIsScalarCompatible(t *testing.T) {
	pl, err := NewPlanner(testTopo(), cheapOptions()) // ProbeSizes: {64k}
	if err != nil {
		t.Fatal(err)
	}
	for name, curve := range map[string]int{
		"γ_wan": len(pl.Model.Root.Wan.Gamma.Points),
		"ω":     len(pl.Model.OverlapGamma.Points),
		"κ":     len(pl.Model.GatherGamma.Points),
	} {
		if curve != 1 {
			t.Fatalf("%s curve has %d points under a single probe size, want 1", name, curve)
		}
	}
	// Scalar compatibility: the lookup is size-independent.
	for _, c := range []struct {
		name  string
		curve interface{ At(int) float64 }
	}{
		{"γ_wan", pl.Model.Root.Wan.Gamma},
		{"ω", pl.Model.OverlapGamma},
		{"κ", pl.Model.GatherGamma},
	} {
		if c.curve.At(1<<10) != c.curve.At(1<<20) {
			t.Fatalf("%s single-point curve not constant across sizes", c.name)
		}
	}
}
