package grid

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
)

// fluidCfg is the default fluid engine selection used by these tests.
func fluidCfg() SimConfig {
	return SimConfig{Mode: sim.ModeFluid}
}

// TestFluidPacketAgreement is the fluid-vs-packet agreement table:
// above the fallback threshold, the analytic flow pricer must land
// within the model's existing acceptance envelope of the packet engine
// (docs/MODEL.md reports ~31% mean magnitude error for the analytic
// planner itself, with worst rows above 100%; single lossy-TCP runs are
// RTO-noisy, so rows average two seeds exactly as
// rankingMatchesSimulation does). Individual rows can still sit one
// ~200 ms LAN-incast RTO away from their twin — side-by-side engine
// traces show gather legs entering the measured rep from near-identical
// congestion windows and diverging only on whether one microsecond of
// timing skew tips a tail-drop into a timeout — so each row gets a 50%
// ceiling while the table mean must stay within 20%, both well inside
// the model's own documented envelope.
func TestFluidPacketAgreement(t *testing.T) {
	topos := map[string]cluster.TopoNode{
		"2lvl": testTopo(),
		"3lvl": cluster.ThreeLevel("t3", wanTunedGE(), 2, 2, 2,
			cluster.DefaultWAN(30*sim.Millisecond), cluster.DefaultWAN(10*sim.Millisecond)),
	}
	seeds := []int64{7, 19}
	var sumAbs float64
	var rows int
	for name, topo := range topos {
		for _, m := range []int{64 << 10, 256 << 10} {
			for _, st := range Strategies {
				var pt, ft float64
				for _, seed := range seeds {
					p, err := Simulate(topo, st, m, seed, 1, 1)
					if err != nil {
						t.Fatal(err)
					}
					f, err := SimulateIn(fluidCfg(), topo, st, m, seed, 1, 1)
					if err != nil {
						t.Fatal(err)
					}
					pt += p
					ft += f
				}
				relErr := (ft - pt) / pt
				t.Logf("%s m=%dk %-12s packet=%.4fs fluid=%.4fs err=%+.1f%%",
					name, m>>10, st, pt/2, ft/2, 100*relErr)
				if math.Abs(relErr) > 0.50 {
					t.Errorf("%s m=%d %v: fluid deviates %+.1f%% from packet (limit 50%%)",
						name, m, st, 100*relErr)
				}
				sumAbs += math.Abs(relErr)
				rows++
			}
		}
	}
	if mean := sumAbs / float64(rows); mean > 0.20 {
		t.Errorf("mean |error| over %d rows = %.1f%%, limit 20%%", rows, 100*mean)
	}
}

// TestFluidBelowThresholdBitIdentical pins the fallback boundary: a
// collective whose transfers all sit at or below the fluid threshold
// must simulate bit-identically under fluid mode, because every message
// takes the packet path. The threshold applies to transport-level
// message size, which includes the mpi envelope (64 bytes on top of
// the payload), so payload sizes here leave envelope headroom below
// the 32 KiB default rather than sitting exactly on it.
func TestFluidBelowThresholdBitIdentical(t *testing.T) {
	topo := testTopo()
	for _, m := range []int{8 << 10, 24 << 10} {
		pt, err := Simulate(topo, FlatDirect, m, 11, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		ft, err := SimulateIn(fluidCfg(), topo, FlatDirect, m, 11, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pt != ft {
			t.Fatalf("m=%d at/below threshold diverged: packet %v, fluid %v", m, pt, ft)
		}
	}
}

// TestFluidPlannerRankingPreserved pins fit transfer: a planner
// characterized under fluid mode must reproduce the packet-fitted
// planner's predictions — per-strategy times within 10%, the same
// predicted order, the same Best — across the size sweep. (The
// planner's accuracy against packet ground truth is the acceptance
// suite's job; what fluid mode must not do is change the fit.)
// StableSpread is tightened below the default 0.5 because the
// hier-gather probe grid sits on a LAN-incast RTO knife-edge (roughly
// 2 in 5 seeds hit a ~200 ms timeout in either engine, on
// engine-dependent seeds): the default gate can accept an initial
// seed trio whose median is the RTO mode, while the full five-seed
// schedule puts the median on the clean mode for both engines.
func TestFluidPlannerRankingPreserved(t *testing.T) {
	popt := cheapOptions()
	popt.StableSpread = 0.25
	pp, err := NewPlanner(testTopo(), popt)
	if err != nil {
		t.Fatal(err)
	}
	fopt := cheapOptions()
	fopt.StableSpread = 0.25
	fopt.SimMode = sim.ModeFluid
	fp, err := NewPlanner(testTopo(), fopt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{64 << 10, 128 << 10, 256 << 10, 512 << 10} {
		pPred := map[Strategy]float64{}
		for _, pr := range pp.Predict(m) {
			pPred[pr.Strategy] = pr.T
		}
		pOrder, fOrder := pp.Predict(m), fp.Predict(m)
		for i, pr := range fOrder {
			want := pPred[pr.Strategy]
			if rel := math.Abs(pr.T-want) / want; rel > 0.10 {
				t.Errorf("m=%d %v: fluid-fit predicts %.4fs, packet-fit %.4fs (%.1f%% apart)",
					m, pr.Strategy, pr.T, want, 100*rel)
			}
			if pr.Strategy != pOrder[i].Strategy {
				t.Errorf("m=%d: predicted order differs at position %d: fluid %v, packet %v",
					m, i, pr.Strategy, pOrder[i].Strategy)
			}
		}
		if pb, fb := pp.Best(m).Strategy, fp.Best(m).Strategy; pb != fb {
			t.Errorf("m=%d: Best differs: fluid-fit %v, packet-fit %v", m, fb, pb)
		}
	}
}

// TestFluidFingerprintDistinct pins that fluid-fitted stores cannot be
// silently reused by packet-mode planners and vice versa.
func TestFluidFingerprintDistinct(t *testing.T) {
	packet := cheapOptions().withDefaults()
	fluid := cheapOptions()
	fluid.SimMode = sim.ModeFluid
	fluidOpt := fluid.withDefaults()
	if packet.fingerprint() == fluidOpt.fingerprint() {
		t.Fatal("packet and fluid Options share a store fingerprint")
	}
	// Workers and CacheCap are execution knobs, not fit parameters:
	// they must not split the store.
	w := cheapOptions()
	w.Workers = 7
	w.CacheCap = 3
	if w.withDefaults().fingerprint() != packet.fingerprint() {
		t.Fatal("Workers/CacheCap leaked into the store fingerprint")
	}
}

// TestProbePoolBitIdentity is the parallel-vs-sequential pin: a planner
// characterized with a 4-worker probe pool must be bit-identical to the
// sequential build — same model, same probe stats, same serialized
// store bytes.
func TestProbePoolBitIdentity(t *testing.T) {
	build := func(workers int) (*Planner, []byte) {
		opt := cheapOptions()
		opt.Workers = workers
		st := NewCurveStore()
		pl, err := newPlannerWithStore(testTopo(), opt.withDefaults(), st)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := st.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return pl, buf.Bytes()
	}
	seqPl, seqJSON := build(1)
	parPl, parJSON := build(4)
	if !reflect.DeepEqual(seqPl.Model, parPl.Model) {
		t.Fatal("4-worker model differs from sequential")
	}
	if !reflect.DeepEqual(seqPl.ProbeStats, parPl.ProbeStats) {
		t.Fatalf("probe stats differ:\nseq: %+v\npar: %+v", seqPl.ProbeStats, parPl.ProbeStats)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("4-worker store serialization differs from sequential")
	}
}

// TestProbePoolFluidBitIdentity repeats the pin under fluid mode, where
// per-probe wall clock is short enough that scheduling skew between
// workers would surface any order dependence.
func TestProbePoolFluidBitIdentity(t *testing.T) {
	build := func(workers int) *Planner {
		opt := cheapOptions()
		opt.Workers = workers
		opt.SimMode = sim.ModeFluid
		pl, err := NewPlanner(testTopo(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	seq, par := build(1), build(4)
	if !reflect.DeepEqual(seq.Model, par.Model) {
		t.Fatal("fluid 4-worker model differs from sequential")
	}
}

// TestProbePoolRaceWithTrace drives a 4-worker characterization with a
// live trace collector attached — the configuration the -race CI job
// exercises: concurrent probe simulations share only the thread-safe
// collector, and the fitted result must still be deterministic.
func TestProbePoolRaceWithTrace(t *testing.T) {
	opt := cheapOptions()
	opt.Workers = 4
	opt.Trace = obs.New()
	pl, err := NewPlanner(testTopo(), opt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewPlanner(testTopo(), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The model embeds the trace collector (GridModel.Obs) for lookup
	// events; clear it on both sides so DeepEqual compares the fit, not
	// the observability wiring.
	got, want := pl.Model, plain.Model
	got.Obs, want.Obs = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Fatal("traced 4-worker model differs from untraced sequential")
	}
	if counterValue(opt.Trace, CtrProbes) == 0 {
		t.Fatalf("%s = 0 after a traced parallel build", CtrProbes)
	}
}
