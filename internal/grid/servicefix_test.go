package grid

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestStoreEpochDropsStaleBuildWrites is the regression test for the
// Invalidate race: a build (storeView) that snapshotted its epoch
// before an Invalidate must not write fits back — its put is dropped,
// counted under store.stale_drop, and the record stays absent so the
// next build re-probes it.
func TestStoreEpochDropsStaleBuildWrites(t *testing.T) {
	st := NewCurveStore()
	c := obs.New()
	view := newStoreView(st, c)
	curve := model.CurveOf(model.FactorPoint{Bytes: 64 << 10, Factor: 1.5})

	// A fresh view writes through: epoch matches.
	view.putGamma("g|old", curve)
	if _, ok := st.gamma("g|old"); !ok {
		t.Fatal("pre-invalidation put did not store")
	}

	if n := st.Invalidate("g|old"); n != 1 {
		t.Fatalf("Invalidate dropped %d records, want 1", n)
	}

	// The same view is now stale: its write-backs must be dropped.
	view.putGamma("g|old", curve)
	if _, ok := st.gamma("g|old"); ok {
		t.Fatal("stale build re-inserted an invalidated record")
	}
	view.putTier("t|new", storedTier{Curve: []model.WANPoint{{Bytes: 1 << 10, T: 0.01}, {Bytes: 64 << 10, T: 0.1}}})
	if _, ok := st.tier("t|new"); ok {
		t.Fatal("stale build stored a tier record")
	}
	if got := counterValue(c, CtrStoreStale); got != 2 {
		t.Fatalf("%s = %d, want 2", CtrStoreStale, got)
	}

	// A view opened after the invalidation writes through again.
	fresh := newStoreView(st, c)
	fresh.putGamma("g|old", curve)
	if _, ok := st.gamma("g|old"); !ok {
		t.Fatal("post-invalidation build could not write")
	}
}

// TestServiceInvalidateDuringBuildDropsWrites drives the race through
// the public API: Invalidate fires while a characterization is in
// flight, the build must complete (its caller keeps a usable planner)
// but none of its fits may land in the store.
func TestServiceInvalidateDuringBuildDropsWrites(t *testing.T) {
	opt := cheapOptions()
	opt.Trace = obs.New()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	topo := testTopo()
	tier := TierKey(topo.Children[0])

	// Bump the epoch after the build's view snapshot but before its
	// write-backs: simulate by snapshotting a view now, invalidating,
	// then building. The service path is exercised end-to-end below via
	// a mid-build invalidation from a second goroutine.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Races the build; whichever way the interleaving falls, the
		// invariants below must hold.
		svc.Invalidate(tier)
	}()
	pl, err := svc.PlannerFor(topo)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.Predict(64 << 10)); got != len(Strategies) {
		t.Fatalf("racing build returned unusable planner: %d predictions", got)
	}

	// Deterministic leg: a view from before an invalidation never
	// writes. Populate from a build that post-dates every invalidation
	// (the racing one above may have dropped all of the first build's
	// writes), count its store records, invalidate the tier, and require
	// the records the substring rule covers to be gone and stay gone
	// until a non-stale build refits them.
	svc.Invalidate(tier)
	if _, err := svc.PlannerFor(topo); err != nil {
		t.Fatal(err)
	}
	before := svc.Store().Len()
	if before == 0 {
		t.Fatal("build left no store records")
	}
	dropped := svc.Invalidate(tier)
	if dropped == 0 {
		t.Fatal("Invalidate matched no records")
	}
	if got := svc.Store().Len(); got != before-dropped {
		t.Fatalf("store has %d records after dropping %d of %d", got, dropped, before)
	}
	// Rebuild: re-fits only the dropped records, writes them back.
	if _, err := svc.PlannerFor(topo); err != nil {
		t.Fatal(err)
	}
	if got := svc.Store().Len(); got != before {
		t.Fatalf("incremental refit restored %d of %d records", got, before)
	}
}

// TestServiceEvictsLRU is the regression test for the unbounded planner
// cache: past Options.CacheCap the service must evict the
// least-recently-used entry, count it under service.evict, and rebuild
// a re-requested evicted topology warm from the store (zero probes).
func TestServiceEvictsLRU(t *testing.T) {
	opt := cheapOptions()
	opt.CacheCap = 2
	opt.Trace = obs.New()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	topoA := testTopo()
	topoB := cluster.Uniform("b", wanTunedGE(), 2, 2, cluster.DefaultWAN(25*sim.Millisecond)).Tree()
	topoC := cluster.Uniform("c", wanTunedGE(), 3, 2, cluster.DefaultWAN(35*sim.Millisecond)).Tree()

	plA, err := svc.PlannerFor(topoA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PlannerFor(topoB); err != nil {
		t.Fatal(err)
	}
	// Touch A so B is the LRU victim when C arrives.
	if _, err := svc.PlannerFor(topoA); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PlannerFor(topoC); err != nil {
		t.Fatal(err)
	}
	if got := svc.Len(); got != 2 {
		t.Fatalf("cache holds %d planners, want CacheCap=2", got)
	}
	if got := counterValue(opt.Trace, CtrServiceEvict); got != 1 {
		t.Fatalf("%s = %d, want 1", CtrServiceEvict, got)
	}
	// A stayed cached: same pointer, no rebuild.
	plA2, err := svc.PlannerFor(topoA)
	if err != nil {
		t.Fatal(err)
	}
	if plA2 != plA {
		t.Fatal("recently-used entry was evicted")
	}
	// B was evicted: rebuilding gives a new planner, but warm — the
	// store kept its fits, so the rebuild runs zero probe simulations.
	probesBefore := counterValue(opt.Trace, CtrProbes)
	if _, err := svc.PlannerFor(topoB); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(opt.Trace, CtrProbes); got != probesBefore {
		t.Fatalf("evicted topology rebuild ran %d probes, want 0", got-probesBefore)
	}
	// Rebuilding B evicted the then-LRU entry (C, never re-touched).
	if got := counterValue(opt.Trace, CtrServiceEvict); got != 2 {
		t.Fatalf("%s = %d after rebuild, want 2", CtrServiceEvict, got)
	}
}

// TestStoreSaveFileAtomic is the regression test for crash-safe store
// persistence: SaveFile round-trips bit-identically, leaves no temp
// residue, and LoadCurveStoreFile rejects truncated and torn files
// instead of serving partial fits.
func TestStoreSaveFileAtomic(t *testing.T) {
	opt := cheapOptions()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PlannerFor(testTopo()); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	if err := svc.Store().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "store.json" {
			t.Fatalf("SaveFile left residue: %s", e.Name())
		}
	}

	// Round trip: loaded store serves a warm, bit-identical build.
	loaded, err := LoadCurveStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wopt := opt
	wopt.Trace = obs.New()
	warm, err := NewServiceWithStore(wopt, loaded)
	if err != nil {
		t.Fatal(err)
	}
	wpl, err := warm.PlannerFor(testTopo())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := svc.PlannerFor(testTopo())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{64 << 10, 256 << 10} {
		wp, cp := wpl.Predict(m), cold.Predict(m)
		for i := range cp {
			if wp[i] != cp[i] {
				t.Fatalf("m=%d: loaded-store prediction %d = %+v, original = %+v", m, i, wp[i], cp[i])
			}
		}
	}
	if probes := counterValue(wopt.Trace, CtrProbes); probes != 0 {
		t.Fatalf("loaded store still ran %d probes", probes)
	}

	// Truncated file (a torn write without the rename guard): rejected.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCurveStoreFile(torn); err == nil {
		t.Fatal("truncated store file loaded without error")
	} else if !strings.Contains(err.Error(), "truncated or torn") {
		t.Fatalf("truncated store error does not explain itself: %v", err)
	}

	// Trailing data after the document (a concatenated write): rejected.
	doubled := filepath.Join(dir, "doubled.json")
	if err := os.WriteFile(doubled, append(append([]byte{}, raw...), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCurveStoreFile(doubled); err == nil {
		t.Fatal("store file with trailing data loaded without error")
	}

	// Missing file: os.IsNotExist survives for caller handling.
	if _, err := LoadCurveStoreFile(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Fatalf("missing store file error = %v, want os.IsNotExist", err)
	}
}
