package grid

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Fluid-vs-packet engine benchmarks (BENCH_SIM.json). The packet
// engine's cost scales with segment count — every MSS of a WAN
// transfer is an event — while the fluid engine prices a transfer in
// O(flow updates). The headline metric is the cold characterization of
// a canonical 3-level topology, where WAN probe sweeps dominate the
// build.

// benchSimTopo3 is the canonical 3-level characterization subject: two
// national tiers of two campuses of two nodes, 30 ms top / 10 ms
// inner WAN — the BENCH_SIM.json configuration.
func benchSimTopo3() cluster.TopoNode {
	return cluster.ThreeLevel("bench3", wanTunedGE(), 2, 2, 2,
		cluster.DefaultWAN(30*sim.Millisecond), cluster.DefaultWAN(10*sim.Millisecond))
}

// benchSimTransfer runs one flat All-to-All at per-pair size m under
// the given engine — the WAN-transfer-dominated simulation shape.
func benchSimTransfer(b *testing.B, cfg SimConfig, m int) {
	topo := testTopo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateIn(cfg, topo, FlatDirect, m, 7, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimTransferPacket256k(b *testing.B) {
	benchSimTransfer(b, SimConfig{}, 256<<10)
}

func BenchmarkSimTransferFluid256k(b *testing.B) {
	benchSimTransfer(b, SimConfig{Mode: sim.ModeFluid}, 256<<10)
}

func BenchmarkSimTransferPacket1M(b *testing.B) {
	benchSimTransfer(b, SimConfig{}, 1<<20)
}

func BenchmarkSimTransferFluid1M(b *testing.B) {
	benchSimTransfer(b, SimConfig{Mode: sim.ModeFluid}, 1<<20)
}

// benchSimOptions is a bulk-transfer characterization sweep: WAN
// curves and strategy probes measured at the sizes grid bulk data
// movement actually uses (64 KiB – 1 MiB), where the packet engine
// pays one event per MSS and the fluid engine prices whole flows.
func benchSimOptions() Options {
	return Options{
		FitN:       6,
		FitSizes:   []int{8 << 10, 16 << 10, 32 << 10, 64 << 10},
		WANSizes:   []int{64 << 10, 256 << 10, 1 << 20, 2 << 20},
		ProbeSizes: []int{128 << 10},
		Reps:       1,
		Seed:       3,
	}
}

// benchSimCharacterize measures a cold characterization (no store) of
// the canonical 3-level topology under the given engine and worker
// count — the BENCH_SIM.json headline.
func benchSimCharacterize(b *testing.B, mode sim.Mode, workers int) {
	topo := benchSimTopo3()
	opt := benchSimOptions()
	opt.SimMode = mode
	opt.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlanner(topo, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimCharacterizationPacket(b *testing.B) {
	benchSimCharacterize(b, sim.ModePacket, 1)
}

func BenchmarkSimCharacterizationFluid(b *testing.B) {
	benchSimCharacterize(b, sim.ModeFluid, 1)
}

func BenchmarkSimCharacterizationFluidPar(b *testing.B) {
	benchSimCharacterize(b, sim.ModeFluid, 4)
}
