package grid

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// suiteKinds are the collective kinds beyond All-to-All(v) the planner
// prices through the per-kind model.
var suiteKinds = []coll.Kind{
	coll.KindAllgather, coll.KindBroadcast, coll.KindReduce,
	coll.KindReduceScatter, coll.KindAllreduce,
}

// TestServicePredictKindAlltoallDelegates pins the suite's bit-identity
// anchor: PredictKind(KindAlltoall) and SelectCoordinatorsKind
// (KindAlltoall) are the pre-suite Predict/SelectCoordinators answers,
// bit for bit, and never fit a per-kind correction.
func TestServicePredictKindAlltoallDelegates(t *testing.T) {
	pl, err := NewPlanner(testTopo(), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{8 << 10, 64 << 10, 256 << 10} {
		kp, err := pl.PredictKind(coll.KindAlltoall, m)
		if err != nil {
			t.Fatal(err)
		}
		want := pl.Predict(m)
		if len(kp) != len(want) {
			t.Fatalf("m=%d: %d kind predictions, want %d", m, len(kp), len(want))
		}
		for i := range want {
			if kp[i] != want[i] {
				t.Fatalf("m=%d: PredictKind[%d] = %+v, Predict = %+v", m, i, kp[i], want[i])
			}
		}
	}
	if len(pl.kindGamma) != 0 {
		t.Fatalf("alltoall predictions fitted %d per-kind corrections, want 0", len(pl.kindGamma))
	}
	if _, err := pl.PredictKind(coll.KindAlltoallv, 4<<10); err == nil {
		t.Fatal("PredictKind(KindAlltoallv) did not reject the size-bound kind")
	}
}

// TestServicePredictKindWarmMatchesCold extends the warm-vs-cold
// bit-identity property to the collective suite: a service answering
// per-kind predictions from a JSON-round-tripped store reproduces a
// cold planner's predictions exactly, without one probe simulation —
// the per-kind correction curves persist like every other fitted
// record.
func TestServicePredictKindWarmMatchesCold(t *testing.T) {
	topo := testTopo()
	opt := cheapOptions()
	const m = 48 << 10

	cold, err := NewPlanner(topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	coldPreds := map[coll.Kind][]Prediction{}
	for _, k := range suiteKinds {
		p, err := cold.PredictKind(k, m)
		if err != nil {
			t.Fatal(err)
		}
		coldPreds[k] = p
	}

	// Fill a store through a service, then round-trip it through JSON.
	fill, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range suiteKinds {
		if _, err := fill.PredictKind(topo, k, m); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := fill.SaveStore(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadCurveStore(&buf)
	if err != nil {
		t.Fatal(err)
	}

	wopt := opt
	wopt.Trace = obs.New()
	warm, err := NewServiceWithStore(wopt, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range suiteKinds {
		got, err := warm.PredictKind(topo, k, m)
		if err != nil {
			t.Fatal(err)
		}
		want := coldPreds[k]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: warm prediction %d = %+v, cold = %+v", k, i, got[i], want[i])
			}
		}
	}
	if probes := counterValue(wopt.Trace, CtrProbes); probes != 0 {
		t.Fatalf("warm per-kind predictions ran %d probe simulations, want 0", probes)
	}
	if misses := counterValue(wopt.Trace, CtrStoreMiss); misses != 0 {
		t.Fatalf("warm per-kind predictions missed the store %d times, want 0", misses)
	}
	if hits := counterValue(wopt.Trace, CtrStoreHit); hits == 0 {
		t.Fatal("warm per-kind predictions recorded no store hits")
	}
}

// TestServiceKindPredictionsRankHierOnWAN sanity-checks the suite's
// output shape on the two-cluster WAN grid: every kind yields both
// candidate strategies with positive times, sorted fastest first.
func TestServiceKindPredictionsRankHierOnWAN(t *testing.T) {
	svc, err := NewService(cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range suiteKinds {
		preds, err := svc.PredictKind(testTopo(), k, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		if len(preds) != len(StrategiesFor(k)) {
			t.Fatalf("%v: %d predictions, want %d", k, len(preds), len(StrategiesFor(k)))
		}
		for _, p := range preds {
			if p.T <= 0 {
				t.Fatalf("%v: nonpositive prediction %+v", k, p)
			}
		}
		if preds[0].T > preds[1].T {
			t.Fatalf("%v: predictions not sorted: %+v", k, preds)
		}
	}
}

// TestServiceSelectCoordinatorsKind runs kind-priced coordinator
// selection end to end: one choice per leaf, coordinators within node
// bounds, and the alltoall path identical to plain SelectCoordinators.
func TestServiceSelectCoordinatorsKind(t *testing.T) {
	topo := heteroTestTopo(3)
	svc, err := NewService(cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	const m = 64 << 10
	choices, err := svc.SelectCoordinatorsKind(topo, coll.KindReduce, m)
	if err != nil {
		t.Fatal(err)
	}
	leaves := topo.Leaves()
	if len(choices) != len(leaves) {
		t.Fatalf("%d choices for %d leaves", len(choices), len(leaves))
	}
	for i, ch := range choices {
		if len(ch.Ranks) == 0 {
			t.Fatalf("leaf %d: empty coordinator set", i)
		}
		for _, cd := range ch.Local {
			if cd < 0 || cd >= leaves[i].Nodes {
				t.Fatalf("leaf %d: coordinator %d out of range [0,%d)", i, cd, leaves[i].Nodes)
			}
		}
	}

	svcA, err := NewService(cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	svcB, err := NewService(cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	viaKind, err := svcA.SelectCoordinatorsKind(topo, coll.KindAlltoall, m)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := svcB.SelectCoordinators(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaKind) != len(plain) {
		t.Fatalf("%d kind choices vs %d plain", len(viaKind), len(plain))
	}
	for i := range plain {
		if viaKind[i].String() != plain[i].String() {
			t.Fatalf("leaf %d: kind-path choice %v != plain choice %v", i, viaKind[i], plain[i])
		}
	}
}

// TestKindFailoverOnPlannedSpec executes suite kinds under the
// epoch-failover runtime on a planner-selected spec with a mid-run node
// death: the run completes, the victim is declared dead, and the kind's
// exactly-once delivery invariants verify among survivors.
func TestKindFailoverOnPlannedSpec(t *testing.T) {
	topo := testTopo()
	opt := cheapOptions()
	pl, err := NewPlanner(topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.SelectCoordinators(32 << 10); err != nil {
		t.Fatal(err)
	}
	spec := pl.PlanSpec()
	victim := topo.TotalNodes() - 1 // a delegate: exercises non-coordinator death and quench
	for _, k := range []coll.Kind{coll.KindBroadcast, coll.KindAllgather, coll.KindAllreduce} {
		c := obs.New()
		g, err := cluster.BuildGridTree(topo, opt.Seed)
		if err != nil {
			t.Fatal(err)
		}
		hostName := g.Env.Hosts[victim].Name()
		fs := netsim.FaultSchedule{Nodes: []netsim.NodeFault{
			{Host: hostName, At: 15 * sim.Millisecond},
		}}
		res, tEnd, err := SimulateSpecKindFailover(c, SimConfig{}, topo, spec, k, coll.HierGather,
			32<<10, opt.Seed, fs, 250*sim.Millisecond)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if tEnd <= 0 {
			t.Fatalf("%v: nonpositive completion time %v", k, tEnd)
		}
		if len(res.Dead) == 0 {
			t.Fatalf("%v: mid-run node death was never declared", k)
		}
		if res.DeliveredBlocks == 0 {
			t.Fatalf("%v: no blocks delivered among survivors", k)
		}
	}
}

// TestStoreSaveFileMergeUnions pins satellite SaveFile semantics: saving
// over an existing compatible store file merges instead of overwriting —
// disk-only records survive, shared keys take the in-memory value, and
// the write stays atomic (temp + rename).
func TestStoreSaveFileMergeUnions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "curves.json")

	a := NewCurveStore()
	if err := a.bind("opts-x"); err != nil {
		t.Fatal(err)
	}
	a.putGamma(0, "G{tier-a}", model.ScalarFactor(2))
	a.putGamma(0, "G{shared}", model.ScalarFactor(3))
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	b := NewCurveStore()
	if err := b.bind("opts-x"); err != nil {
		t.Fatal(err)
	}
	b.putGamma(0, "K|broadcast|G{tier-b}", model.ScalarFactor(5))
	b.putGamma(0, "G{shared}", model.ScalarFactor(7))
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCurveStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := got.gamma("G{tier-a}"); !ok || c.At(1) != 2 {
		t.Fatalf("disk-only record lost in merge: ok=%v curve=%+v", ok, c)
	}
	if c, ok := got.gamma("K|broadcast|G{tier-b}"); !ok || c.At(1) != 5 {
		t.Fatalf("in-memory kind record missing after merge: ok=%v curve=%+v", ok, c)
	}
	if c, ok := got.gamma("G{shared}"); !ok || c.At(1) != 7 {
		t.Fatalf("conflicting key did not take the in-memory value: ok=%v curve=%+v", ok, c)
	}
	// The in-memory store was not mutated by its own save.
	if _, ok := b.gamma("G{tier-a}"); ok {
		t.Fatal("SaveFile merged disk records into the in-memory store")
	}

	// A differently-fingerprinted file is replaced wholesale, as before.
	c2 := NewCurveStore()
	if err := c2.bind("opts-y"); err != nil {
		t.Fatal(err)
	}
	c2.putGamma(0, "G{fresh}", model.ScalarFactor(9))
	if err := c2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCurveStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("incompatible save kept %d records, want 1 (wholesale replace)", got.Len())
	}
}

// TestStoreSaveFileMergeSkipsInvalidated pins the merge's interaction
// with Invalidate: a record deliberately dropped from the in-memory
// store is not resurrected from an older on-disk snapshot when saving.
func TestStoreSaveFileMergeSkipsInvalidated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "curves.json")

	a := NewCurveStore()
	if err := a.bind("opts-x"); err != nil {
		t.Fatal(err)
	}
	a.putGamma(0, "G{stale-tier}", model.ScalarFactor(2))
	a.putGamma(0, "K|reduce|G{stale-tier}", model.ScalarFactor(4))
	a.putGamma(0, "G{live-tier}", model.ScalarFactor(3))
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	b, err := LoadCurveStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := b.Invalidate("G{stale-tier}"); n != 2 {
		t.Fatalf("Invalidate dropped %d records, want 2", n)
	}
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCurveStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.gamma("G{stale-tier}"); ok {
		t.Fatal("invalidated γ record resurrected from the on-disk snapshot")
	}
	if _, ok := got.gamma("K|reduce|G{stale-tier}"); ok {
		t.Fatal("invalidated per-kind record resurrected from the on-disk snapshot")
	}
	if _, ok := got.gamma("G{live-tier}"); !ok {
		t.Fatal("unrelated record lost while skipping invalidated ones")
	}

	// Corrupt file: the save replaces it instead of failing the merge.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCurveStoreFile(path); err != nil {
		t.Fatalf("save over a corrupt file left it unloadable: %v", err)
	}
}

// TestKindTracedValidationEmitsSpan pins the simulate.kind span and its
// counter routing: a traced per-kind validation run counts under
// planner.validations, never planner.probes.
func TestKindTracedValidationEmitsSpan(t *testing.T) {
	topo := testTopo()
	opt := cheapOptions()
	pl, err := NewPlanner(topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	c := obs.New()
	tt, spans, err := SimulateSpecKindTraced(c, topo, pl.PlanSpec(), coll.KindAllreduce,
		coll.HierGather, 32<<10, opt.Seed, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tt <= 0 {
		t.Fatalf("nonpositive traced time %v", tt)
	}
	if len(spans) == 0 {
		t.Fatal("traced kind run recorded no phase spans")
	}
	found := false
	for _, ln := range c.Outline() {
		if bytes.Contains([]byte(ln), []byte(SpanSimulateKind)) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("trace outline has no %s span", SpanSimulateKind)
	}
	if got := counterValue(c, CtrProbes); got != 0 {
		t.Fatalf("traced kind validation counted %d probes, want 0", got)
	}
	if got := counterValue(c, CtrValidations); got == 0 {
		t.Fatal("traced kind validation did not count under planner.validations")
	}
}
