package grid

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/obs"
)

// CurveStore is the planner's persistent characterization cache: every
// fitted artifact of the characterize→fit pipeline, keyed by the
// collision-hardened field-wise keys (profileKey for member networks,
// topoKey for tiers and whole topologies). The paper's workflow is
// characterize once, predict many times — the store is the "once": a
// planner built through it probes only the records it cannot find,
// reuses everything else bit-identically, and writes its own fits back
// for the next planner (or, via the deterministic JSON form, the next
// process).
//
// Record kinds and their keys:
//
//	leaves      profileKey(p)            Hockney + contention signature
//	headroom    profileKey(p)|nodes      per-node probed NIC rates
//	tiers       topoKey(tier)            measured WAN transfer curve
//	gammas      topoKey(tier)            fitted per-tier γ_wan curve
//	            "K|"+kind+"|"+topoKey    per-kind hierarchical correction
//	strategies  "S|"+topoKey(topo)       initial ω/κ strategy curves
//	            "R|"+topoKey(topo)+sel   post-selection ω/κ refits
//
// Per-kind corrections (kinds.go) live in the gammas map under "K|"
// keys, so collective-suite fits persist through the version-1 schema
// unchanged and an Alltoall-only store serializes byte-identically to
// the pre-suite planner's.
//
// topoKey is compositional — a subtree's key is a substring of every
// ancestor's — which is what makes Invalidate's semantics exact: a
// record is stale if and only if its keyed structure contains the
// invalidated subtree, so dropping records whose key contains the tier
// key removes the tier's own fits, every ancestor fit derived from
// them (tier fitting is bottom-up), and the whole-tree strategy fits,
// while sibling tiers and all member-network fits survive.
//
// All methods are safe for concurrent use. Records are write-once per
// key in practice (planners only put on a miss), so concurrent writers
// of the same key — two single-flight builds of different topologies
// sharing a tier — write identical deterministic values.
type CurveStore struct {
	mu sync.RWMutex
	// optKey pins the Options fingerprint the fits were produced under;
	// fitted values depend on probe sweeps and seeds, so a store is only
	// valid for the exact configuration that filled it (bind rejects
	// mismatches instead of silently mispredicting).
	optKey     string
	leaves     map[string]storedLeaf
	headroom   map[string][]float64
	tiers      map[string]storedTier
	gammas     map[string]model.FactorCurve
	strategies map[string]storedStrategy
	// epoch is the build-epoch guard against the Invalidate race: every
	// Invalidate bumps it, and a put carrying an older epoch (a build
	// that started before the invalidation) is dropped instead of
	// re-inserting records fitted from pre-invalidation simulations.
	epoch uint64
	// invalidated accumulates every tier key passed to Invalidate over
	// the store's lifetime. SaveFile's merge consults it so records a
	// caller deliberately dropped are not resurrected from an older
	// on-disk snapshot.
	invalidated []string
}

// StoreVersion is the serialized store's schema version. Load rejects
// any other value: a schema drift (re-keyed records, re-shaped curves)
// must fail loudly, not deserialize into wrong predictions.
const StoreVersion = 1

// storedLeaf is one member network's characterization.
type storedLeaf struct {
	Hockney   model.Hockney
	Signature model.Signature
}

// storedTier is one tier's measured WAN transfer curve (the fitted
// γ_wan curve is a separate record: Invalidate-driven refits re-measure
// both, but tier curves are also consumed by ancestors' fits).
type storedTier struct {
	Curve    []model.WANPoint
	BetaWire float64
}

// storedStrategy is one whole-topology strategy-factor fit.
type storedStrategy struct {
	Omega model.FactorCurve
	Kappa model.FactorCurve
}

// storeFile is the serialized form. Maps marshal with sorted keys and
// floats in shortest-round-trip form, so the output is deterministic
// and a save→load cycle reproduces every fitted value bit-identically.
type storeFile struct {
	Version    int                          `json:"version"`
	Options    string                       `json:"options,omitempty"`
	Leaves     map[string]storedLeaf        `json:"leaves,omitempty"`
	Headroom   map[string][]float64         `json:"headroom,omitempty"`
	Tiers      map[string]storedTier        `json:"tiers,omitempty"`
	Gammas     map[string]model.FactorCurve `json:"gammas,omitempty"`
	Strategies map[string]storedStrategy    `json:"strategies,omitempty"`
}

// NewCurveStore returns an empty store.
func NewCurveStore() *CurveStore {
	return &CurveStore{
		leaves:     map[string]storedLeaf{},
		headroom:   map[string][]float64{},
		tiers:      map[string]storedTier{},
		gammas:     map[string]model.FactorCurve{},
		strategies: map[string]storedStrategy{},
	}
}

// bind pins the store to an Options fingerprint. The first bind adopts
// the fingerprint; later binds must match — fitted values depend on the
// probe configuration, so serving one configuration's curves to another
// would mispredict silently.
func (s *CurveStore) bind(optKey string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.optKey == "" {
		s.optKey = optKey
		return nil
	}
	if s.optKey != optKey {
		return fmt.Errorf("grid: store was fitted under different options:\n  store:   %s\n  request: %s", s.optKey, optKey)
	}
	return nil
}

// Len returns the total record count across all kinds.
func (s *CurveStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.leaves) + len(s.headroom) + len(s.tiers) + len(s.gammas) + len(s.strategies)
}

// Invalidate drops every record whose keyed structure contains the
// given tier key (see TierKey): the tier's measured curve and fitted
// γ_wan, every ancestor tier's fits (fitted bottom-up through this
// tier's curve), and the strategy fits of every topology containing the
// tier. Member-network characterizations and unrelated tiers survive,
// so the next planner build re-probes only what the invalidation
// actually touched — the incremental re-fit path. Returns the number of
// records dropped.
//
// Invalidate also advances the store's build epoch: a planner build
// that started before the invalidation carries the old epoch and its
// write-backs are silently dropped (counted under store.stale_drop), so
// an in-flight build can never re-insert records fitted from
// pre-invalidation simulations. The epoch bumps even when zero records
// match — the in-flight build may not have written its records yet.
func (s *CurveStore) Invalidate(tierKey string) int {
	if tierKey == "" {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	s.invalidated = append(s.invalidated, tierKey)
	n := 0
	for k := range s.tiers {
		if strings.Contains(k, tierKey) {
			delete(s.tiers, k)
			n++
		}
	}
	for k := range s.gammas {
		if strings.Contains(k, tierKey) {
			delete(s.gammas, k)
			n++
		}
	}
	for k := range s.strategies {
		if strings.Contains(k, tierKey) {
			delete(s.strategies, k)
			n++
		}
	}
	return n
}

// curEpoch returns the store's current build epoch. Builds snapshot it
// when they start (storeView); puts carrying an older epoch are
// dropped.
func (s *CurveStore) curEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// leaf / putLeaf access one member network's characterization. Every
// put carries the writing build's epoch snapshot and reports whether
// the record was stored (false: the build is stale — an Invalidate
// happened after it started).
func (s *CurveStore) leaf(key string) (storedLeaf, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.leaves[key]
	return v, ok
}

func (s *CurveStore) putLeaf(epoch uint64, key string, v storedLeaf) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return false
	}
	s.leaves[key] = v
	return true
}

// headroomFor / putHeadroom access one (profile, size) headroom probe.
func (s *CurveStore) headroomFor(key string) ([]float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.headroom[key]
	return v, ok
}

func (s *CurveStore) putHeadroom(epoch uint64, key string, rates []float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return false
	}
	s.headroom[key] = append([]float64(nil), rates...)
	return true
}

// tier / putTier access one tier's measured WAN transfer curve.
func (s *CurveStore) tier(key string) (storedTier, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tiers[key]
	return v, ok
}

func (s *CurveStore) putTier(epoch uint64, key string, v storedTier) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return false
	}
	s.tiers[key] = v
	return true
}

// gamma / putGamma access one tier's fitted γ_wan curve.
func (s *CurveStore) gamma(key string) (model.FactorCurve, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.gammas[key]
	return v, ok
}

func (s *CurveStore) putGamma(epoch uint64, key string, c model.FactorCurve) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return false
	}
	s.gammas[key] = c
	return true
}

// strategy / putStrategy access one whole-topology ω/κ fit ("S|" keys)
// or post-selection refit ("R|" keys).
func (s *CurveStore) strategy(key string) (storedStrategy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.strategies[key]
	return v, ok
}

func (s *CurveStore) putStrategy(epoch uint64, key string, v storedStrategy) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epoch {
		return false
	}
	s.strategies[key] = v
	return true
}

// WriteJSON serializes the store. The output is deterministic — map
// keys sort, floats render in shortest round-trip form — so two stores
// holding the same fits serialize byte-identically, and re-saving a
// loaded store reproduces the file.
func (s *CurveStore) WriteJSON(w io.Writer) error {
	s.mu.RLock()
	f := storeFile{
		Version:    StoreVersion,
		Options:    s.optKey,
		Leaves:     s.leaves,
		Headroom:   s.headroom,
		Tiers:      s.tiers,
		Gammas:     s.gammas,
		Strategies: s.strategies,
	}
	b, err := json.MarshalIndent(f, "", " ")
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// snapshot copies the store's records into a serializable storeFile
// under the read lock, along with the invalidation history. The maps
// are fresh, so a caller (SaveFile's merge) may mutate them without
// touching the live store.
func (s *CurveStore) snapshot() (storeFile, []string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f := storeFile{
		Version:    StoreVersion,
		Options:    s.optKey,
		Leaves:     make(map[string]storedLeaf, len(s.leaves)),
		Headroom:   make(map[string][]float64, len(s.headroom)),
		Tiers:      make(map[string]storedTier, len(s.tiers)),
		Gammas:     make(map[string]model.FactorCurve, len(s.gammas)),
		Strategies: make(map[string]storedStrategy, len(s.strategies)),
	}
	for k, v := range s.leaves {
		f.Leaves[k] = v
	}
	for k, v := range s.headroom {
		f.Headroom[k] = v
	}
	for k, v := range s.tiers {
		f.Tiers[k] = v
	}
	for k, v := range s.gammas {
		f.Gammas[k] = v
	}
	for k, v := range s.strategies {
		f.Strategies[k] = v
	}
	return f, append([]string(nil), s.invalidated...)
}

// mergeDisk folds an existing on-disk snapshot under an in-memory one:
// disk records absent from memory are kept (so concurrent processes
// characterizing different topologies against one file compose instead
// of clobbering each other), memory wins every conflict, and disk
// records whose key contains a tier key this store has Invalidated are
// dropped — a deliberate refit must not resurrect stale fits from an
// older save. Merging only makes sense within one probe configuration;
// the caller checks the Options fingerprints match first.
func mergeDisk(mem storeFile, disk storeFile, invalidated []string) storeFile {
	dropped := func(key string) bool {
		for _, tk := range invalidated {
			if strings.Contains(key, tk) {
				return true
			}
		}
		return false
	}
	for k, v := range disk.Leaves {
		if _, ok := mem.Leaves[k]; !ok {
			mem.Leaves[k] = v
		}
	}
	for k, v := range disk.Headroom {
		if _, ok := mem.Headroom[k]; !ok {
			mem.Headroom[k] = v
		}
	}
	for k, v := range disk.Tiers {
		if _, ok := mem.Tiers[k]; !ok && !dropped(k) {
			mem.Tiers[k] = v
		}
	}
	for k, v := range disk.Gammas {
		if _, ok := mem.Gammas[k]; !ok && !dropped(k) {
			mem.Gammas[k] = v
		}
	}
	for k, v := range disk.Strategies {
		if _, ok := mem.Strategies[k]; !ok && !dropped(k) {
			mem.Strategies[k] = v
		}
	}
	return mem
}

// SaveFile atomically writes the store to path: the JSON form goes to a
// temp file in the same directory, is synced, and is renamed over path,
// so a crash mid-save (or a concurrent reader/saver) observes either
// the old complete file or the new complete file — never a torn one.
//
// When path already holds a loadable store fitted under the same
// Options fingerprint, the save merges rather than overwrites: on-disk
// records this store lacks survive (minus any whose key contains a tier
// key passed to Invalidate since the store was created), records
// present in both take the in-memory value, and the in-memory store
// itself is never mutated. A missing, corrupt, or differently-
// fingerprinted file is replaced wholesale, exactly as before.
func (s *CurveStore) SaveFile(path string) error {
	mem, invalidated := s.snapshot()
	if old, err := LoadCurveStoreFile(path); err == nil {
		disk, _ := old.snapshot()
		if disk.Options == mem.Options {
			mem = mergeDisk(mem, disk, invalidated)
		}
	}
	b, err := json.MarshalIndent(mem, "", " ")
	if err != nil {
		return fmt.Errorf("grid: saving store to %s: %w", path, err)
	}
	b = append(b, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("grid: saving store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("grid: saving store to %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("grid: saving store to %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("grid: saving store to %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("grid: saving store to %s: %w", path, err)
	}
	return nil
}

// LoadCurveStoreFile loads a store saved by SaveFile (or WriteJSON),
// with ReadCurveStore's full validation. A missing file returns the
// os.Open error unwrapped, so callers can keep their os.IsNotExist
// handling.
func LoadCurveStoreFile(path string) (*CurveStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := ReadCurveStore(f)
	if err != nil {
		return nil, fmt.Errorf("grid: loading store %s: %w", path, err)
	}
	return st, nil
}

// ReadCurveStore deserializes a store written by WriteJSON, validating
// the schema version and every curve before any record becomes
// servable: a version drift or a corrupt curve (non-finite, mis-ordered
// points) fails the load with a clear error instead of silently
// mispredicting later.
func ReadCurveStore(r io.Reader) (*CurveStore, error) {
	var f storeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("grid: store is not valid JSON (truncated or torn write?): %w", err)
	}
	// A complete save is exactly one JSON document plus whitespace;
	// anything after it means a torn or concatenated write, and
	// partially applying records would mispredict silently.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("grid: store has trailing data after the JSON document (torn or concatenated write?)")
	}
	if f.Version != StoreVersion {
		return nil, fmt.Errorf("grid: store schema version %d, this build reads version %d — refit the store",
			f.Version, StoreVersion)
	}
	st := NewCurveStore()
	st.optKey = f.Options
	for k, v := range f.Leaves {
		if err := v.Hockney.Validate(); err != nil {
			return nil, fmt.Errorf("grid: store leaf %q: %w", k, err)
		}
		if err := v.Signature.Validate(); err != nil {
			return nil, fmt.Errorf("grid: store leaf %q: %w", k, err)
		}
		st.leaves[k] = v
	}
	for k, rates := range f.Headroom {
		for i, r := range rates {
			if r < 0 || !finiteF64(r) {
				return nil, fmt.Errorf("grid: store headroom %q entry %d is unusable: %v", k, i, r)
			}
		}
		st.headroom[k] = rates
	}
	for k, v := range f.Tiers {
		// Re-validate through WANModel so tier records obey the same
		// interpolation invariants the planner's own fits do.
		wm := model.WANModel{Curve: v.Curve, BetaWire: v.BetaWire}
		if err := wm.Validate(); err != nil {
			return nil, fmt.Errorf("grid: store tier %q: %w", k, err)
		}
		st.tiers[k] = v
	}
	for k, c := range f.Gammas {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("grid: store gamma %q: %w", k, err)
		}
		st.gammas[k] = c
	}
	for k, v := range f.Strategies {
		if err := v.Omega.Validate(); err != nil {
			return nil, fmt.Errorf("grid: store strategy %q omega: %w", k, err)
		}
		if err := v.Kappa.Validate(); err != nil {
			return nil, fmt.Errorf("grid: store strategy %q kappa: %w", k, err)
		}
		st.strategies[k] = v
	}
	return st, nil
}

// TierKey returns the canonical cache key of a topology subtree — the
// identity Invalidate matches records against, and the key PlannerFor
// caches planners under when given the whole topology. Node names are
// excluded (structurally identical tiers share fits); pass the subtree
// value the topology was built from, e.g. topo.Children[0].
func TierKey(t cluster.TopoNode) string { return topoKey(t) }

// finiteF64 reports whether v is a usable stored value.
func finiteF64(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// storeView is one planner build's window onto an optional CurveStore:
// nil-tolerant lookups that count and trace store.hit/store.miss per
// record kind, so planner.probes keeps working as the cache-regression
// signal and a trace shows exactly which characterizations were reused.
// Without a store (st nil) every lookup is an inert miss that records
// nothing — the plain NewPlanner path.
//
// The view itself is used by one build at a time (hits/misses are not
// locked); only the underlying CurveStore is shared between builds.
//
// The view snapshots the store's build epoch at creation. Puts carry
// the snapshot and the store drops those from a stale epoch — a build
// racing an Invalidate keeps its own (pre-invalidation) fitted values
// but never writes them back. Dropped writes are counted under
// store.stale_drop.
type storeView struct {
	st           *CurveStore
	c            *obs.Collector
	epoch        uint64
	hits, misses int
}

// newStoreView opens one build's window onto st (nil-tolerant),
// snapshotting the current build epoch.
func newStoreView(st *CurveStore, c *obs.Collector) *storeView {
	v := &storeView{st: st, c: c}
	if st != nil {
		v.epoch = st.curEpoch()
	}
	return v
}

// noteStale counts one epoch-dropped write-back.
func (v *storeView) noteStale() {
	if v.c != nil {
		v.c.Add(CtrStoreStale, 1)
	}
}

// record tallies one lookup and emits its store.hit/store.miss event
// and counter.
func (v *storeView) record(sp *obs.Span, hit bool, kind string) {
	if v == nil || v.st == nil {
		return
	}
	name := CtrStoreMiss
	if hit {
		v.hits++
		name = CtrStoreHit
	} else {
		v.misses++
		name = CtrStoreMiss
	}
	if sp != nil {
		sp.Event(name, obs.Str("kind", kind))
	}
	if v.c != nil {
		v.c.Add(name, 1)
	}
}

// noteRefit emits the store.refit event and counter when the finished
// build mixed hits and misses — an incremental re-fit that re-probed
// only what the store lacked (e.g. one invalidated tier) and reused
// every other cached curve.
func (v *storeView) noteRefit(sp *obs.Span) {
	if v == nil || v.st == nil || v.hits == 0 || v.misses == 0 {
		return
	}
	if sp != nil {
		sp.Event(CtrStoreRefit, obs.Int("hits", v.hits), obs.Int("misses", v.misses))
	}
	if v.c != nil {
		v.c.Add(CtrStoreRefit, 1)
	}
}

func (v *storeView) leaf(sp *obs.Span, key string) (storedLeaf, bool) {
	if v == nil || v.st == nil {
		return storedLeaf{}, false
	}
	rec, ok := v.st.leaf(key)
	v.record(sp, ok, "leaf")
	return rec, ok
}

func (v *storeView) putLeaf(key string, rec storedLeaf) {
	if v != nil && v.st != nil && !v.st.putLeaf(v.epoch, key, rec) {
		v.noteStale()
	}
}

func (v *storeView) headroom(sp *obs.Span, key string) ([]float64, bool) {
	if v == nil || v.st == nil {
		return nil, false
	}
	rates, ok := v.st.headroomFor(key)
	v.record(sp, ok, "headroom")
	return rates, ok
}

func (v *storeView) putHeadroom(key string, rates []float64) {
	if v != nil && v.st != nil && !v.st.putHeadroom(v.epoch, key, rates) {
		v.noteStale()
	}
}

func (v *storeView) tier(sp *obs.Span, key string) (storedTier, bool) {
	if v == nil || v.st == nil {
		return storedTier{}, false
	}
	rec, ok := v.st.tier(key)
	v.record(sp, ok, "tier")
	return rec, ok
}

func (v *storeView) putTier(key string, rec storedTier) {
	if v != nil && v.st != nil && !v.st.putTier(v.epoch, key, rec) {
		v.noteStale()
	}
}

func (v *storeView) gamma(sp *obs.Span, key string) (model.FactorCurve, bool) {
	if v == nil || v.st == nil {
		return model.FactorCurve{}, false
	}
	c, ok := v.st.gamma(key)
	v.record(sp, ok, "gamma")
	return c, ok
}

func (v *storeView) putGamma(key string, c model.FactorCurve) {
	if v != nil && v.st != nil && !v.st.putGamma(v.epoch, key, c) {
		v.noteStale()
	}
}

func (v *storeView) strategy(sp *obs.Span, key string) (storedStrategy, bool) {
	if v == nil || v.st == nil {
		return storedStrategy{}, false
	}
	rec, ok := v.st.strategy(key)
	kind := "strategy"
	if strings.HasPrefix(key, "R|") {
		kind = "refit"
	}
	v.record(sp, ok, kind)
	return rec, ok
}

func (v *storeView) putStrategy(key string, rec storedStrategy) {
	if v != nil && v.st != nil && !v.st.putStrategy(v.epoch, key, rec) {
		v.noteStale()
	}
}

// kindCurve / putKindCurve access one per-kind hierarchical correction
// curve (kinds.go). The records share the gammas map under "K|" keys —
// the same curve shape, validation, and Invalidate semantics — but
// trace as their own record kind so a warm collective-suite build is
// distinguishable from a warm tier fit.
func (v *storeView) kindCurve(sp *obs.Span, key string) (model.FactorCurve, bool) {
	if v == nil || v.st == nil {
		return model.FactorCurve{}, false
	}
	c, ok := v.st.gamma(key)
	v.record(sp, ok, "kind")
	return c, ok
}

func (v *storeView) putKindCurve(key string, c model.FactorCurve) {
	if v != nil && v.st != nil && !v.st.putGamma(v.epoch, key, c) {
		v.noteStale()
	}
}
