package grid

import (
	"strings"
	"testing"
)

// TestOptionsValidateRejectsNegatives: validation runs before any
// probing, so a malformed Options fails NewPlanner fast with an error
// naming the bad field and value.
func TestOptionsValidateRejectsNegatives(t *testing.T) {
	topo := testTopo()
	for _, tc := range []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"negative workers", func(o *Options) { o.Workers = -3 }, "Workers -3 is negative"},
		{"negative cache cap", func(o *Options) { o.CacheCap = -1 }, "CacheCap -1 is negative"},
		{"negative fluid threshold", func(o *Options) { o.FluidThreshold = -5 }, "FluidThreshold -5 is negative"},
	} {
		opt := cheapOptions()
		tc.mut(&opt)
		_, err := NewPlanner(topo, opt)
		if err == nil {
			t.Fatalf("%s: NewPlanner accepted the options", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Zero values are defaults, not errors.
	if _, err := NewPlanner(topo, cheapOptions()); err != nil {
		t.Fatalf("baseline options rejected: %v", err)
	}
}
