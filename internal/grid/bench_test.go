package grid

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/obs"
)

// BenchmarkNewPlanner measures a full two-level characterization with
// tracing enabled and reports the planner's own work counters next to
// wall time: probe simulations per characterization and discrete sim
// events per characterization — the metrics BENCH_PLANNER.json tracks
// so a probe-count regression (a broken cache, a widened sweep) shows
// up even when wall time is noisy.
func BenchmarkNewPlanner(b *testing.B) {
	topo := testTopo()
	c := obs.New()
	opt := cheapOptions()
	opt.Trace = c
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if _, err := NewPlanner(topo, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The last iteration's counters: Reset zeroes them each round, so
	// they describe one characterization, not the sum over b.N.
	for _, cv := range c.Counters() {
		switch cv.Name {
		case CtrProbes:
			b.ReportMetric(float64(cv.Value), "probes/op")
		case CtrSimEvents:
			b.ReportMetric(float64(cv.Value), "simevents/op")
		}
	}
}

// BenchmarkServiceWarm measures a warm-start planner build: a fresh
// Service over a store another service already filled — the new-process
// path of characterize once, predict many. probes/op is the headline
// metric and must be 0: a warm build that probes even once means a
// store key stopped matching. storehits/op counts the records reused.
func BenchmarkServiceWarm(b *testing.B) {
	topo := testTopo()
	c := obs.New()
	opt := cheapOptions()
	opt.Trace = c
	cold, err := NewService(opt)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cold.PlannerFor(topo); err != nil {
		b.Fatal(err)
	}
	store := cold.Store()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		svc, err := NewServiceWithStore(opt, store)
		if err != nil {
			b.Fatal(err)
		}
		pl, err := svc.PlannerFor(topo)
		if err != nil {
			b.Fatal(err)
		}
		if preds := pl.Predict(48 << 10); len(preds) != 3 {
			b.Fatalf("got %d predictions", len(preds))
		}
	}
	b.StopTimer()
	// The last iteration's counters (Reset zeroes them each round).
	probes := 0.0
	for _, cv := range c.Counters() {
		switch cv.Name {
		case CtrProbes:
			probes = float64(cv.Value)
		case CtrStoreHit:
			b.ReportMetric(float64(cv.Value), "storehits/op")
		}
	}
	b.ReportMetric(probes, "probes/op")
	if probes != 0 {
		b.Fatalf("warm service build ran %v probes, want 0", probes)
	}
}

// BenchmarkServiceConcurrent measures the steady state the service
// exists for: many goroutines predicting concurrently against one
// warmed planner, regular and irregular sizes mixed. No probes may run
// after the warmup (probes/op reports the total over the whole parallel
// phase, and must be 0).
func BenchmarkServiceConcurrent(b *testing.B) {
	topo := testTopo()
	c := obs.New()
	opt := cheapOptions()
	opt.Trace = c
	svc, err := NewService(opt)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.PlannerFor(topo); err != nil {
		b.Fatal(err)
	}
	sz := coll.SizeMatrixFromRows(cluster.BlockDiagonalBytes(topo, 256<<10, 4<<10))
	warmProbes := counterValue(c, CtrProbes)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%2 == 0 {
				if _, err := svc.Predict(topo, 48<<10); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := svc.PredictV(topo, sz); err != nil {
					b.Fatal(err)
				}
			}
			i++
		}
	})
	b.StopTimer()
	probes := float64(counterValue(c, CtrProbes) - warmProbes)
	b.ReportMetric(probes, "probes/op")
	if probes != 0 {
		b.Fatalf("concurrent predictions ran %v probes, want 0", probes)
	}
}

// BenchmarkPredictV measures irregular prediction with observability
// disabled (nil collector) — the configuration whose cost must not
// regress against the pre-observability planner. The skewed workload
// exercises the non-uniform path, where every tier prices its actual
// byte cut.
func BenchmarkPredictV(b *testing.B) {
	topo := testTopo()
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		b.Fatal(err)
	}
	sz := coll.SizeMatrixFromRows(cluster.BlockDiagonalBytes(topo, 256<<10, 4<<10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if preds := pl.PredictV(sz); len(preds) != 3 {
			b.Fatalf("got %d predictions", len(preds))
		}
	}
}

// BenchmarkPredictVTraced is BenchmarkPredictV with a live collector,
// quantifying the enabled-tracing overhead (factor.lookup events per
// prediction are reported as events/op).
func BenchmarkPredictVTraced(b *testing.B) {
	topo := testTopo()
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		b.Fatal(err)
	}
	c := obs.New()
	pl.Model.Obs = c
	sz := coll.SizeMatrixFromRows(cluster.BlockDiagonalBytes(topo, 256<<10, 4<<10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if preds := pl.PredictV(sz); len(preds) != 3 {
			b.Fatalf("got %d predictions", len(preds))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(c.Events())), "events/op")
}
