package grid

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/obs"
)

// BenchmarkNewPlanner measures a full two-level characterization with
// tracing enabled and reports the planner's own work counters next to
// wall time: probe simulations per characterization and discrete sim
// events per characterization — the metrics BENCH_PLANNER.json tracks
// so a probe-count regression (a broken cache, a widened sweep) shows
// up even when wall time is noisy.
func BenchmarkNewPlanner(b *testing.B) {
	topo := testTopo()
	c := obs.New()
	opt := cheapOptions()
	opt.Trace = c
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if _, err := NewPlanner(topo, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The last iteration's counters: Reset zeroes them each round, so
	// they describe one characterization, not the sum over b.N.
	for _, cv := range c.Counters() {
		switch cv.Name {
		case CtrProbes:
			b.ReportMetric(float64(cv.Value), "probes/op")
		case CtrSimEvents:
			b.ReportMetric(float64(cv.Value), "simevents/op")
		}
	}
}

// BenchmarkPredictV measures irregular prediction with observability
// disabled (nil collector) — the configuration whose cost must not
// regress against the pre-observability planner. The skewed workload
// exercises the non-uniform path, where every tier prices its actual
// byte cut.
func BenchmarkPredictV(b *testing.B) {
	topo := testTopo()
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		b.Fatal(err)
	}
	sz := coll.SizeMatrixFromRows(cluster.BlockDiagonalBytes(topo, 256<<10, 4<<10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if preds := pl.PredictV(sz); len(preds) != 3 {
			b.Fatalf("got %d predictions", len(preds))
		}
	}
}

// BenchmarkPredictVTraced is BenchmarkPredictV with a live collector,
// quantifying the enabled-tracing overhead (factor.lookup events per
// prediction are reported as events/op).
func BenchmarkPredictVTraced(b *testing.B) {
	topo := testTopo()
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		b.Fatal(err)
	}
	c := obs.New()
	pl.Model.Obs = c
	sz := coll.SizeMatrixFromRows(cluster.BlockDiagonalBytes(topo, 256<<10, 4<<10))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		if preds := pl.PredictV(sz); len(preds) != 3 {
			b.Fatalf("got %d predictions", len(preds))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(c.Events())), "events/op")
}
