package grid

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Per-kind planning: the collective suite (coll.PlanKindTree) through
// the planner pipeline. Every kind reuses the planner's fitted
// ingredients — tier transfer curves, γ_wan, the κ incast factor, probed
// coordinator headroom — via the per-kind model (model.PredictKindFlat /
// PredictKindHier), plus one lazily fitted per-kind correction curve
// that absorbs what the weighted decomposition cannot know analytically
// (rendezvous pipelining between relay levels, per-kind transport
// behavior). All-to-All(v) itself never takes a correction: its
// predictions, plans and store records stay bit-identical to the
// pre-suite planner.

// SpanSimulateKind wraps one traced per-kind plan execution
// (SimulateSpecKindTraced); cmd/tracecheck's -span flag can assert its
// presence in a trace.
const SpanSimulateKind = "simulate.kind"

// StrategiesFor lists the candidate strategies of a collective kind.
// All-to-All(v) keeps all three; the other kinds compile structurally
// identical plans under both hierarchical algorithm variants (the
// rooted relay and the weighted gather/scatter have no overlapped
// "direct" variant), so one hierarchical candidate covers them.
func StrategiesFor(kind coll.Kind) []Strategy {
	switch kind {
	case coll.KindAlltoall, coll.KindAlltoallv:
		return Strategies
	default:
		return []Strategy{FlatDirect, HierGather}
	}
}

// kindKey is the store key of one kind's fitted correction curve. The
// key embeds the full topology key, so CurveStore.Invalidate's
// substring rule drops kind fits along with the tier fits they were
// inverted against; the "K|" prefix keeps them apart from the raw
// per-tier γ records and the legacy "S|" strategy records (which are
// and remain the All-to-All fits).
func kindKey(kind coll.Kind, topo cluster.TopoNode) string {
	return "K|" + kind.String() + "|" + topoKey(topo)
}

// kindFactor returns the kind's fitted hierarchical correction curve,
// calibrating it on first use: the capped probe grid runs the kind's
// compiled plan at every probe size (counted under planner.probes, so a
// warm store still builds and predicts with zero probe simulations),
// and the per-kind model decomposition is inverted for the residual
// inflation per size. Fits land in the curve store under kindKey and
// restore without probing. Safe for concurrent use on one planner; the
// calibration must not race SelectCoordinators (the service holds the
// entry lock around both).
func (pl *Planner) kindFactor(kind coll.Kind) (model.FactorCurve, error) {
	pl.kindMu.Lock()
	defer pl.kindMu.Unlock()
	if c, ok := pl.kindGamma[kind]; ok {
		return c, nil
	}
	key := kindKey(kind, pl.Topo)
	if c, ok := pl.sv.kindCurve(nil, key); ok {
		pl.kindGamma[kind] = c
		return c, nil
	}
	opt := pl.opt
	sp := opt.Trace.Span("planner.fit_kind",
		obs.Str("kind", kind.String()), obs.Int("probe_cap", opt.ProbeCap))
	defer sp.End()
	probeTopo := cappedTree(pl.Topo, opt.ProbeCap)
	probeModel := model.GridModel{
		Root:         cappedModel(pl.Model.Root, opt.ProbeCap),
		OverlapGamma: pl.Model.OverlapGamma,
		GatherGamma:  pl.Model.GatherGamma,
		CombineBeta:  pl.Model.CombineBeta,
	}
	probes := make([]*probeRun, len(opt.ProbeSizes))
	for i, p := range opt.ProbeSizes {
		m := p
		probes[i] = &probeRun{baseSeed: opt.Seed + 131, run: func(sd int64) (float64, error) {
			return simulateKindObsIn(opt.Trace, opt.simCfg(), probeTopo, kind, HierGather, m, sd, 1, opt.Reps)
		}}
	}
	runProbes(opt.Workers, opt.StableSpread, probes)
	points := make([]model.FactorPoint, 0, len(opt.ProbeSizes))
	for i, p := range opt.ProbeSizes {
		pr := probes[i]
		if pr.err != nil {
			return model.FactorCurve{}, pr.err
		}
		pl.recordProbe(sp, "gamma_"+kind.String(), "", "kind", p, opt.Seed+131, pr.times)
		g := 1.0
		if pred := probeModel.PredictKindHier(kind, p); pred > 0 {
			g = clampGamma(pr.median / pred)
		}
		sp.Event("fit.point", obs.Str("factor", "gamma_"+kind.String()),
			obs.Int("size", p), obs.F64("value", g))
		points = append(points, model.FactorPoint{Bytes: p, Factor: g})
	}
	curve := model.CurveOf(points...)
	pl.kindGamma[kind] = curve
	pl.sv.putKindCurve(key, curve)
	return curve, nil
}

// PredictKind returns every candidate strategy's predicted completion
// time for a collective of the given kind at per-rank contribution m,
// sorted fastest first. KindAlltoall delegates to Predict bit-identically
// (no per-kind correction is ever fitted or applied to it); the other
// kinds price the flat kernel and the hierarchical plan through the
// per-kind model, with the hierarchical term scaled by the kind's
// lazily calibrated correction curve. KindAlltoallv is size-bound and
// has no uniform-m prediction — use PredictV.
func (pl *Planner) PredictKind(kind coll.Kind, m int) ([]Prediction, error) {
	switch kind {
	case coll.KindAlltoall:
		return pl.Predict(m), nil
	case coll.KindAlltoallv:
		return nil, fmt.Errorf("grid: %v is size-bound, use PredictV", kind)
	}
	f, err := pl.kindFactor(kind)
	if err != nil {
		return nil, err
	}
	hier := pl.Model.PredictKindHier(kind, m)
	if !f.IsZero() {
		hier *= f.At(m)
	}
	out := []Prediction{
		{FlatDirect, pl.Model.PredictKindFlat(kind, m)},
		{HierGather, hier},
	}
	if out[1].T < out[0].T {
		out[0], out[1] = out[1], out[0]
	}
	return out, nil
}

// BestKind returns the predicted-fastest strategy for the kind at
// per-rank contribution m.
func (pl *Planner) BestKind(kind coll.Kind, m int) (Prediction, error) {
	preds, err := pl.PredictKind(kind, m)
	if err != nil {
		return Prediction{}, err
	}
	return preds[0], nil
}

// SelectCoordinatorsKind is SelectCoordinators with candidates priced
// through the kind's hierarchical model: a reduction's coordinator
// choice weighs the relay incast, not the All-to-All exchange volume.
// KindAlltoall delegates to SelectCoordinators exactly. The decision
// margin, model application, and ω/κ refit are shared with the
// All-to-All path.
func (pl *Planner) SelectCoordinatorsKind(kind coll.Kind, m int) ([]CoordChoice, error) {
	switch kind {
	case coll.KindAlltoall:
		return pl.SelectCoordinators(m)
	case coll.KindAlltoallv:
		return nil, fmt.Errorf("grid: %v is size-bound, use SelectCoordinatorsV", kind)
	}
	return pl.selectCoordinators(func() float64 {
		return pl.Model.PredictKindHier(kind, m)
	})
}

// SimulateKind builds the topology and measures one strategy's
// execution of the kind in full packet-level simulation — the ground
// truth for validating PredictKind rankings (GR7). FlatDirect runs the
// kind's flat kernel (coll.RunKindFlat); the hierarchical strategies
// compile the kind's plan over the default (lowest-rank) coordinator
// tree and execute it with coll.RunKindPlanned.
func SimulateKind(topo cluster.TopoNode, kind coll.Kind, strat Strategy, m int, seed int64, warmup, reps int) (float64, error) {
	return simulateKindObsIn(nil, SimConfig{}, topo, kind, strat, m, seed, warmup, reps)
}

// simulateKindObsIn is SimulateKind with an optional trace collector
// and explicit engine selection — the funnel the per-kind calibration
// probes run through, so they feed planner.probes like every other
// characterization simulation.
func simulateKindObsIn(c *obs.Collector, sc SimConfig, topo cluster.TopoNode, kind coll.Kind, strat Strategy, m int, seed int64, warmup, reps int) (float64, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return 0, err
	}
	applySimConfig(g, sc)
	var op func(r *mpi.Rank)
	switch strat {
	case FlatDirect:
		op = func(r *mpi.Rank) { coll.RunKindFlat(r, kind, m, coll.Direct) }
	case HierGather, HierDirect:
		alg := coll.HierGather
		if strat == HierDirect {
			alg = coll.HierDirect
		}
		plan := coll.PlanKindTree(coll.GridSpec(g), kind, alg)
		op = func(r *mpi.Rank) { coll.RunKindPlanned(r, plan, m) }
	default:
		return 0, fmt.Errorf("grid: unknown strategy %v", strat)
	}
	return measureEnv(c, g.Env, warmup, reps, op), nil
}

// SimulateSpecKind builds the topology and measures one kind's plan
// compiled from an explicit plan spec (e.g. PlanSpec's selected
// coordinators) in full packet-level simulation.
func SimulateSpecKind(topo cluster.TopoNode, spec coll.TreeSpec, kind coll.Kind, alg coll.HierAlgorithm, m int, seed int64, warmup, reps int) (float64, error) {
	t, _, err := simulateSpecKind(nil, topo, spec, kind, alg, m, seed, warmup, reps, false)
	return t, err
}

// SimulateSpecKindTraced is SimulateSpecKind with execution tracing: it
// wraps the run in a simulate.kind span (see SpanSimulateKind), records
// the plan's per-phase spans, and counts the run under
// planner.validations — a warm-store planner run that re-simulates its
// chosen kind plan still reports planner.probes = 0.
func SimulateSpecKindTraced(c *obs.Collector, topo cluster.TopoNode, spec coll.TreeSpec, kind coll.Kind, alg coll.HierAlgorithm, m int, seed int64, warmup, reps int) (float64, []coll.PhaseSpan, error) {
	return simulateSpecKind(c, topo, spec, kind, alg, m, seed, warmup, reps, true)
}

func simulateSpecKind(c *obs.Collector, topo cluster.TopoNode, spec coll.TreeSpec, kind coll.Kind, alg coll.HierAlgorithm, m int, seed int64, warmup, reps int, traced bool) (float64, []coll.PhaseSpan, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return 0, nil, err
	}
	plan := coll.PlanKindTree(spec, kind, alg)
	if plan.Place.NumRanks() != len(g.Env.Hosts) {
		return 0, nil, fmt.Errorf("grid: plan spec covers %d ranks, topology has %d",
			plan.Place.NumRanks(), len(g.Env.Hosts))
	}
	if !traced {
		return measureEnvAs(c, CtrValidations, g.Env, warmup, reps, func(r *mpi.Rank) {
			coll.RunKindPlanned(r, plan, m)
		}), nil, nil
	}
	sp := c.Span(SpanSimulateKind,
		obs.Str("kind", kind.String()), obs.Str("topo", topo.Name), obs.Int("m", m))
	pt := coll.NewPhaseTrace(plan)
	t := measureEnvAs(c, CtrValidations, g.Env, warmup, reps, func(r *mpi.Rank) {
		coll.RunKindPlannedTraced(r, plan, m, pt)
	})
	spans := pt.Spans()
	for _, ps := range spans {
		sp.Event("phase",
			obs.Int("phase", ps.Phase), obs.Str("label", ps.Label),
			obs.F64("start_s", ps.Start), obs.F64("end_s", ps.End),
			obs.F64("dur_s", ps.Dur()), obs.Int("ranks", ps.Ranks))
	}
	sp.End(obs.F64("t_s", t))
	return t, spans, nil
}

// SimulateSpecKindFailover is SimulateSpecFailover for any collective
// kind: the kind's plan compiles from the spec (coordinators and ranked
// standbys annotated) and executes under the epoch-failover runtime,
// with recovery replans compiled per kind and delivery verified against
// the kind's own block universe.
func SimulateSpecKindFailover(c *obs.Collector, sc SimConfig, topo cluster.TopoNode, spec coll.TreeSpec, kind coll.Kind, alg coll.HierAlgorithm, m int, seed int64, fs netsim.FaultSchedule, timeout sim.Time) (coll.FailoverResult, float64, error) {
	g, err := cluster.BuildGridTree(topo, seed)
	if err != nil {
		return coll.FailoverResult{}, 0, err
	}
	applySimConfig(g, sc)
	plan := coll.PlanKindTree(spec, kind, alg)
	if plan.Place.NumRanks() != len(g.Env.Hosts) {
		return coll.FailoverResult{}, 0, fmt.Errorf("grid: plan spec covers %d ranks, topology has %d",
			plan.Place.NumRanks(), len(g.Env.Hosts))
	}
	if err := g.Env.Net.ApplyFaults(fs); err != nil {
		return coll.FailoverResult{}, 0, err
	}
	g.Env.Net.AttachCollector(c)
	sp := c.Span(SpanFailover, obs.Str("topo", topo.Name), obs.Str("kind", kind.String()),
		obs.Int("m", m), obs.Int("link_faults", len(fs.Links)), obs.Int("node_faults", len(fs.Nodes)))
	fr := coll.NewFailoverRun(plan, m, coll.FailoverConfig{
		Timeout: timeout,
		IsDead: func(rank int) bool {
			return fs.NodeLostBy(g.Env.Hosts[rank].Name(), g.Env.Sim.Now())
		},
		Quench: func(rank int) { g.Env.Fabric.Quench(rank) },
		OnDeclare: func(rank, epoch int, now sim.Time) {
			c.Add(CtrFailoverDeclared, 1)
			sp.Event(EvFailoverDeclare, obs.Int("rank", rank), obs.Int("epoch", epoch),
				obs.F64("t", now.Seconds()))
		},
		OnEpoch: func(epoch int, now sim.Time) {
			c.Add(CtrFailoverEpochs, 1)
			sp.Event(EvFailoverEpoch, obs.Int("epoch", epoch), obs.F64("t", now.Seconds()))
		},
	})
	w := mpi.NewWorld(g.Env, mpi.Config{})
	w.Run(func(r *mpi.Rank) { fr.Run(r) })
	res := fr.Result()
	var tEnd sim.Time
	for _, ft := range res.FinishAt {
		if ft > tEnd {
			tEnd = ft
		}
	}
	addRunCountersAs(c, CtrValidations, g.Env)
	sp.End(obs.Int("epochs", res.Epochs), obs.Int("dead", len(res.Dead)),
		obs.Int("delivered", res.DeliveredBlocks), obs.Int("waived", res.WaivedBlocks))
	if err := fr.Verify(); err != nil {
		return res, tEnd.Seconds(), err
	}
	return res, tEnd.Seconds(), nil
}
