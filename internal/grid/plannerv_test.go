package grid

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/sim"
)

// rankingMatchesSimulationV is rankingMatchesSimulation's irregular
// form: for every named size matrix, the planner's PredictV order must
// match packet-level All-to-Allv simulation, decisive pairs only
// (simulated times within tieFrac are statistical ties).
func rankingMatchesSimulationV(t *testing.T, topo cluster.TopoNode, pl *Planner, mats map[string]coll.SizeMatrix, tieFrac float64) {
	t.Helper()
	for name, sz := range mats {
		preds := pl.PredictV(sz)
		if len(preds) != len(Strategies) {
			t.Fatalf("%s: %d predictions, want %d", name, len(preds), len(Strategies))
		}
		predT := map[Strategy]float64{}
		for _, pr := range preds {
			predT[pr.Strategy] = pr.T
		}
		simT := map[Strategy]float64{}
		for _, s := range Strategies {
			mean := 0.0
			for _, seed := range []int64{7, 19} {
				var st float64
				var err error
				if alg, ok := DescribeStrategy(s); ok {
					st, err = SimulateSpecV(topo, pl.PlanSpec(), alg, sz, seed, 1, 2)
				} else {
					st, err = SimulateV(topo, s, sz, seed, 1, 2)
				}
				if err != nil {
					t.Fatal(err)
				}
				if st <= 0 {
					t.Fatalf("%s %v: nonpositive simulated time", name, s)
				}
				mean += st
			}
			simT[s] = mean / 2
		}
		for _, a := range Strategies {
			for _, b := range Strategies {
				sa, sb := simT[a], simT[b]
				if sa >= sb || sb-sa <= tieFrac*sb {
					continue
				}
				if predT[a] >= predT[b] {
					t.Fatalf("%s: simulation has %v (%.3fs) decisively before %v (%.3fs), planner predicts %.3fs vs %.3fs",
						name, a, sa, b, sb, predT[a], predT[b])
				}
			}
		}
		best := pl.BestV(sz).Strategy
		simBest := Strategies[0]
		for _, s := range Strategies {
			if simT[s] < simT[simBest] {
				simBest = s
			}
		}
		if best != simBest && simT[best]-simT[simBest] > tieFrac*simT[best] {
			t.Fatalf("%s: BestV() = %v (sim %.3fs), simulation says %v (%.3fs)",
				name, best, simT[best], simBest, simT[simBest])
		}
	}
}

// skewedMatrices wraps the canonical cluster workloads for a topology.
func skewedMatrices(topo cluster.TopoNode) map[string]coll.SizeMatrix {
	out := map[string]coll.SizeMatrix{}
	for name, rows := range cluster.SkewedWorkloads(topo) {
		out[name] = coll.SizeMatrixFromRows(rows)
	}
	return out
}

// TestPlannerVRankingMatchesSimulation is the GR4 acceptance: on two
// topologies (two-level and 3-level), the planner's irregular-exchange
// ranking must agree with packet-level simulation on both canonical
// skewed matrices (hotspot-row and block-diagonal).
func TestPlannerVRankingMatchesSimulation(t *testing.T) {
	for _, tc := range []struct {
		name string
		topo cluster.TopoNode
	}{
		{
			name: "two-level",
			topo: cluster.Uniform("acceptv-2lvl", wanTunedGE(), 2, 4, cluster.DefaultWAN(20*sim.Millisecond)).Tree(),
		},
		{
			name: "three-level",
			topo: cluster.ThreeLevel("acceptv-3lvl", wanTunedGE(), 2, 2, 2,
				cluster.DefaultWAN(10*sim.Millisecond), cluster.DefaultWAN(40*sim.Millisecond)),
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := NewPlanner(tc.topo, Options{FitN: 6, Reps: 2, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			rankingMatchesSimulationV(t, tc.topo, pl, skewedMatrices(tc.topo), 0.08)
		})
	}
}

// TestPredictVUniformMatchesPredict pins the planner-level fast path:
// a uniform matrix must reproduce Predict(m) bit-identically, order
// included.
func TestPredictVUniformMatchesPredict(t *testing.T) {
	pl, err := NewPlanner(testTopo(), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{16 << 10, 64 << 10} {
		uni := pl.Predict(m)
		v := pl.PredictV(coll.UniformSizeMatrix(pl.Model.TotalNodes(), m))
		for i := range uni {
			if uni[i] != v[i] {
				t.Fatalf("m=%d: PredictV[%d] = %+v, want bit-equal %+v", m, i, v[i], uni[i])
			}
		}
	}
}

// TestSelectCoordinatorsVUniformEqualsUniformSelection: fed a uniform
// matrix, the v-selection must make exactly the uniform selection's
// choices (the shared core evaluated through the v-model's fast path).
func TestSelectCoordinatorsVUniformEqualsUniformSelection(t *testing.T) {
	m := 64 << 10
	p1, err := NewPlanner(heteroTestTopo(4), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlanner(heteroTestTopo(4), cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	uni, err := p1.SelectCoordinators(m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p2.SelectCoordinatorsV(coll.UniformSizeMatrix(p2.Model.TotalNodes(), m))
	if err != nil {
		t.Fatal(err)
	}
	if len(uni) != len(v) {
		t.Fatalf("choice counts differ: %d vs %d", len(uni), len(v))
	}
	for l := range uni {
		a, b := uni[l], v[l]
		if a.Default != b.Default || a.Rate != b.Rate ||
			len(a.Local) != len(b.Local) {
			t.Fatalf("leaf %d: uniform selection %+v, v-selection %+v", l, a, b)
		}
		for i := range a.Local {
			if a.Local[i] != b.Local[i] || a.Ranks[i] != b.Ranks[i] {
				t.Fatalf("leaf %d: uniform selection %+v, v-selection %+v", l, a, b)
			}
		}
	}
}

// TestSelectCoordinatorsVSteersHotspotRelay: on the heterogeneous grid
// (lowest rank of each cluster on a degraded port) with a hotspot
// workload, the v-selection must still steer every non-default leaf off
// the degraded node, and the selected plan must beat the lowest-rank
// default in v-simulation.
func TestSelectCoordinatorsVSteersHotspotRelay(t *testing.T) {
	topo := heteroTestTopo(4)
	pl, err := NewPlanner(topo, cheapOptions())
	if err != nil {
		t.Fatal(err)
	}
	sz := coll.SizeMatrixFromRows(cluster.HotspotRowBytes(topo, 32<<10, 1, 8))
	choices, err := pl.SelectCoordinatorsV(sz)
	if err != nil {
		t.Fatal(err)
	}
	nonDefault := 0
	for _, c := range choices {
		if c.Default {
			continue
		}
		nonDefault++
		for _, i := range c.Local {
			if i == 0 {
				t.Fatalf("v-selection kept the degraded node 0 in %v", c)
			}
		}
	}
	if nonDefault == 0 {
		t.Fatalf("v-selection kept the lowest-rank default on a heterogeneous grid: %v", choices)
	}
	defT, selT := 0.0, 0.0
	for _, seed := range []int64{7, 19} {
		d, err := SimulateV(topo, HierGather, sz, seed, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SimulateSpecV(topo, pl.PlanSpec(), coll.HierGather, sz, seed, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		defT += d / 2
		selT += s / 2
	}
	if selT >= defT {
		t.Fatalf("v-selected coordinators (%.3fs) did not beat the lowest-rank default (%.3fs)", selT, defT)
	}
}
