package grid

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/coll"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
)

// counterValue reads one aggregate counter off a collector (0 when the
// counter was never fed).
func counterValue(c *obs.Collector, name string) uint64 {
	for _, cv := range c.Counters() {
		if cv.Name == name {
			return cv.Value
		}
	}
	return 0
}

// fuzzTopo derives a small random topology from rng: 2–3 clusters of
// 2–4 nodes over a randomized WAN latency, occasionally three levels.
// Everything downstream must hold for whatever this returns.
func fuzzTopo(rng *rand.Rand) cluster.TopoNode {
	lat := sim.Time(10+rng.Intn(30)) * sim.Millisecond
	if rng.Intn(3) == 0 {
		inner := sim.Time(5+rng.Intn(10)) * sim.Millisecond
		return cluster.ThreeLevel("fuzz3", wanTunedGE(), 2, 2, 2,
			cluster.DefaultWAN(inner), cluster.DefaultWAN(lat))
	}
	clusters := 2 + rng.Intn(2)
	nodes := 2 + rng.Intn(3)
	return cluster.Uniform("fuzz", wanTunedGE(), clusters, nodes, cluster.DefaultWAN(lat)).Tree()
}

// fuzzMatrix derives a random irregular size matrix over n ranks.
func fuzzMatrix(rng *rand.Rand, n int) coll.SizeMatrix {
	sz := coll.NewSizeMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				sz.Set(i, j, rng.Intn(96<<10))
			}
		}
	}
	return sz
}

// TestServiceWarmMatchesColdPlanner is the tentpole property test: over
// fuzzed topologies and size matrices, a service answering from a warm
// store predicts bit-identically to a cold single-shot NewPlanner — and
// does so without running a single probe simulation (planner.probes = 0,
// store.miss = 0 on the warm build).
func TestServiceWarmMatchesColdPlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	msgs := []int{8 << 10, 48 << 10, 200 << 10}
	for trial := 0; trial < 3; trial++ {
		topo := fuzzTopo(rng)
		opt := cheapOptions()

		cold, err := NewPlanner(topo, opt)
		if err != nil {
			t.Fatal(err)
		}

		// First service call characterizes and fills the store...
		warmSvc, err := NewService(opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := warmSvc.Predict(topo, msgs[0]); err != nil {
			t.Fatal(err)
		}
		// ...a second service over the same store must answer from it.
		wopt := opt
		wopt.Trace = obs.New()
		svc, err := NewServiceWithStore(wopt, warmSvc.Store())
		if err != nil {
			t.Fatal(err)
		}
		sz := fuzzMatrix(rng, topo.TotalNodes())
		for _, m := range msgs {
			warm, err := svc.Predict(topo, m)
			if err != nil {
				t.Fatal(err)
			}
			coldP := cold.Predict(m)
			for i := range coldP {
				if warm[i] != coldP[i] {
					t.Fatalf("trial %d m=%d: warm prediction %d = %+v, cold = %+v",
						trial, m, i, warm[i], coldP[i])
				}
			}
		}
		warmV, err := svc.PredictV(topo, sz)
		if err != nil {
			t.Fatal(err)
		}
		coldV := cold.PredictV(sz)
		for i := range coldV {
			if warmV[i] != coldV[i] {
				t.Fatalf("trial %d: warm PredictV %d = %+v, cold = %+v", trial, i, warmV[i], coldV[i])
			}
		}
		if probes := counterValue(wopt.Trace, CtrProbes); probes != 0 {
			t.Fatalf("trial %d: warm build ran %d probe simulations, want 0", trial, probes)
		}
		if misses := counterValue(wopt.Trace, CtrStoreMiss); misses != 0 {
			t.Fatalf("trial %d: warm build missed the store %d times, want 0", trial, misses)
		}
		if hits := counterValue(wopt.Trace, CtrStoreHit); hits == 0 {
			t.Fatalf("trial %d: warm build recorded no store hits", trial)
		}
	}
}

// TestServiceSingleFlight pins the single-flight guarantee: N
// simultaneous PlannerFor calls for one topology build one planner —
// every caller gets the same *Planner, and the probe counter matches a
// solo build's exactly (concurrency added zero probe simulations).
func TestServiceSingleFlight(t *testing.T) {
	opt := cheapOptions()
	opt.Trace = obs.New()
	solo, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.PlannerFor(testTopo()); err != nil {
		t.Fatal(err)
	}
	want := counterValue(opt.Trace, CtrProbes)
	if want == 0 {
		t.Fatal("solo build ran no probes — baseline is broken")
	}

	opt.Trace = obs.New()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	planners := make([]*Planner, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pl, err := svc.PlannerFor(testTopo())
			if err != nil {
				t.Error(err)
				return
			}
			planners[i] = pl
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if planners[i] != planners[0] {
			t.Fatalf("caller %d got a different planner instance", i)
		}
	}
	if got := counterValue(opt.Trace, CtrProbes); got != want {
		t.Fatalf("%d concurrent callers ran %d probes, solo build runs %d — characterization was not single-flight",
			callers, got, want)
	}
	if svc.Len() != 1 {
		t.Fatalf("service caches %d planners, want 1", svc.Len())
	}
}

// TestServiceStress is the -race harness: goroutines × topologies
// hammering Predict/PredictV/Best/SelectCoordinators/Invalidate/
// PlannerFor concurrently. Correctness here is "no data race, no
// panic, no error, sane outputs" — the bit-identity properties are
// pinned by the deterministic tests above.
func TestServiceStress(t *testing.T) {
	topos := []cluster.TopoNode{
		testTopo(),
		heteroTestTopo(3),
		cluster.Uniform("stress-3c", wanTunedGE(), 3, 2, cluster.DefaultWAN(15*sim.Millisecond)).Tree(),
	}
	opt := cheapOptions()
	opt.Trace = obs.New()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	tier := TierKey(topos[0])

	const workers = 4
	const opsPerWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < opsPerWorker; i++ {
				topo := topos[rng.Intn(len(topos))]
				switch rng.Intn(6) {
				case 0:
					if _, err := svc.PlannerFor(topo); err != nil {
						t.Error(err)
					}
				case 1:
					preds, err := svc.Predict(topo, 32<<10)
					if err != nil {
						t.Error(err)
					} else if len(preds) != len(Strategies) {
						t.Errorf("%d predictions, want %d", len(preds), len(Strategies))
					}
				case 2:
					best, err := svc.Best(topo, 64<<10)
					if err != nil {
						t.Error(err)
					} else if best.T <= 0 {
						t.Errorf("nonpositive best prediction %+v", best)
					}
				case 3:
					sz := coll.UniformSizeMatrix(topo.TotalNodes(), 16<<10)
					if _, err := svc.PredictV(topo, sz); err != nil {
						t.Error(err)
					}
				case 4:
					if _, err := svc.SelectCoordinators(topo, 48<<10); err != nil {
						t.Error(err)
					}
				case 5:
					svc.Invalidate(tier)
				}
			}
		}(w)
	}
	wg.Wait()
	// The store must still round-trip after the pounding.
	var buf bytes.Buffer
	if err := svc.SaveStore(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCurveStore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// invalidateTestTopo is a 3-level tree whose two nation tiers differ
// (distinct WAN latencies), so their store records live under distinct
// keys and Invalidate of one must not touch the other.
func invalidateTestTopo() cluster.TopoNode {
	return cluster.Group("inv-root", cluster.DefaultWAN(40*sim.Millisecond),
		cluster.Group("nation-a", cluster.DefaultWAN(10*sim.Millisecond),
			cluster.Leaf(wanTunedGE(), 2), cluster.Leaf(wanTunedGE(), 2)),
		cluster.Group("nation-b", cluster.DefaultWAN(15*sim.Millisecond),
			cluster.Leaf(wanTunedGE(), 2), cluster.Leaf(wanTunedGE(), 2)))
}

// TestServiceInvalidateRefitsIncrementally pins the invalidation
// semantics end to end: dropping one nation tier kills exactly that
// tier's records, its ancestors' (the root tier, fitted through it) and
// the whole-tree strategy fits — the sibling nation and every leaf
// record survive, the rebuild re-probes only the dropped records
// (store.refit fires), and the refitted predictions are bit-identical
// to the originals (the underlying simulations are deterministic).
func TestServiceInvalidateRefitsIncrementally(t *testing.T) {
	topo := invalidateTestTopo()
	opt := cheapOptions()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	const m = 48 << 10
	before, err := svc.Predict(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	full := svc.Store().Len()

	nationA := topo.Children[0]
	dropped := svc.Invalidate(TierKey(nationA))
	// nation-a tier curve + its γ, root tier curve + its γ, and the
	// "S|" strategy record: exactly 5.
	if dropped != 5 {
		t.Fatalf("invalidate dropped %d records, want 5", dropped)
	}
	if got := svc.Store().Len(); got != full-dropped {
		t.Fatalf("store holds %d records after invalidate, want %d", got, full-dropped)
	}
	if svc.Len() != 0 {
		t.Fatalf("service still caches %d planners over the invalidated tier", svc.Len())
	}

	// Rebuild through a traced service sharing the store: only the five
	// dropped records may miss, and the build must flag itself as an
	// incremental refit.
	ropt := opt
	ropt.Trace = obs.New()
	rsvc, err := NewServiceWithStore(ropt, svc.Store())
	if err != nil {
		t.Fatal(err)
	}
	after, err := rsvc.Predict(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("incremental refit changed prediction %d: %+v -> %+v", i, before[i], after[i])
		}
	}
	if misses := counterValue(ropt.Trace, CtrStoreMiss); misses != 5 {
		t.Fatalf("incremental refit missed %d records, want exactly the 5 dropped", misses)
	}
	if hits := counterValue(ropt.Trace, CtrStoreHit); hits == 0 {
		t.Fatal("incremental refit reused nothing from the store")
	}
	if refits := counterValue(ropt.Trace, CtrStoreRefit); refits != 1 {
		t.Fatalf("store.refit = %d, want 1", refits)
	}
	if got := rsvc.Store().Len(); got != full {
		t.Fatalf("store holds %d records after refit, want %d restored", got, full)
	}
}

// TestStoreRoundTripBitIdentity pins the cross-process contract:
// serialize a characterized store, load it back, and a service over the
// loaded store predicts bit-identically without probing; re-saving the
// loaded store reproduces the file byte for byte.
func TestStoreRoundTripBitIdentity(t *testing.T) {
	topo := testTopo()
	opt := cheapOptions()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	const m = 64 << 10
	want, err := svc.Predict(topo, m)
	if err != nil {
		t.Fatal(err)
	}

	var first bytes.Buffer
	if err := svc.SaveStore(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCurveStore(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("save -> load -> save did not reproduce the store file")
	}

	lopt := opt
	lopt.Trace = obs.New()
	lsvc, err := NewServiceWithStore(lopt, loaded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lsvc.Predict(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loaded-store prediction %d = %+v, original = %+v", i, got[i], want[i])
		}
	}
	if probes := counterValue(lopt.Trace, CtrProbes); probes != 0 {
		t.Fatalf("loaded store still ran %d probes", probes)
	}
}

// TestStoreRejectsVersionAndOptionMismatch covers the schema-version
// satellite: a serialized store from a different schema version or a
// different probe configuration must fail loudly, never mispredict
// silently.
func TestStoreRejectsVersionAndOptionMismatch(t *testing.T) {
	if _, err := ReadCurveStore(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("version 99 store loaded without error")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch error does not name the version: %v", err)
	}
	if _, err := ReadCurveStore(strings.NewReader(`{`)); err == nil {
		t.Fatal("truncated store loaded without error")
	}
	// Corrupt curve: mis-ordered factor points must fail validation.
	bad := `{"version": 1, "gammas": {"k": {"Points": [{"Bytes": 100, "Factor": 2}, {"Bytes": 50, "Factor": 3}]}}}`
	if _, err := ReadCurveStore(strings.NewReader(bad)); err == nil {
		t.Fatal("mis-ordered gamma curve loaded without error")
	}

	// A store fitted under one configuration must refuse another.
	opt := cheapOptions()
	svc, err := NewService(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Predict(testTopo(), 32<<10); err != nil {
		t.Fatal(err)
	}
	other := opt
	other.Seed = opt.Seed + 1
	if _, err := NewServiceWithStore(other, svc.Store()); err == nil {
		t.Fatal("store fitted under seed 3 accepted a seed-4 service")
	} else if !strings.Contains(err.Error(), "options") {
		t.Fatalf("options mismatch error does not explain itself: %v", err)
	}
	// The planner-level path rejects it too.
	if _, err := newPlannerWithStore(testTopo(), other, svc.Store()); err == nil {
		t.Fatal("newPlannerWithStore accepted a mismatched store")
	}
}

// TestStoreGoldenFile pins the serialized schema byte-for-byte on a
// hand-built store (no simulation, so the golden is platform-stable):
// deterministic marshalling is what makes the cross-process bit-identity
// guarantee checkable at all. Refresh with -update after intentional
// schema changes — bumping StoreVersion alongside.
func TestStoreGoldenFile(t *testing.T) {
	h := model.Hockney{Alpha: 12e-6, Beta: 9.2e-9}
	st := NewCurveStore()
	st.optKey = "fitn=6 seed=3"
	st.putLeaf(0, "leaf-a", storedLeaf{
		Hockney:   h,
		Signature: model.Signature{H: h, Gamma: 1.5, Delta: 0.25},
	})
	st.putHeadroom(0, "leaf-a|3", []float64{1.25e8, 1.25e8, 1.2e7})
	st.putTier(0, "G{tier}", storedTier{
		Curve:    []model.WANPoint{{Bytes: 2048, T: 0.021}, {Bytes: 1 << 20, T: 0.25}},
		BetaWire: 8.6e-9,
	})
	st.putGamma(0, "G{tier}", model.CurveOf(model.FactorPoint{Bytes: 64 << 10, Factor: 2.5}))
	st.putStrategy(0, "S|G{tier}", storedStrategy{
		Omega: model.CurveOf(model.FactorPoint{Bytes: 64 << 10, Factor: 1.75}),
		Kappa: model.CurveOf(model.FactorPoint{Bytes: 64 << 10, Factor: 3.125}),
	})

	var got bytes.Buffer
	if err := st.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "store_v1.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("store serialization drifted from %s (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, got.Bytes(), want)
	}
	// The golden must load back and re-serialize identically.
	loaded, err := ReadCurveStore(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := loaded.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Fatal("golden store did not round-trip byte-identically")
	}
}
