package transport

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// msgBound records that a message ends at stream offset end.
type msgBound struct {
	end int64
	msg Message
}

// tcpConn is one side of a duplex TCP-like connection. The sender half
// transmits a byte stream (message sizes are concatenated); the receiver
// half reassembles the peer's stream and fires the handler at message
// boundaries. Loss recovery follows Reno with NewReno-style partial-ack
// retransmission and go-back-N after a retransmission timeout.
type tcpConn struct {
	net    *netsim.Network
	clk    *sim.Simulator
	cfg    TCPConfig
	nic    *netsim.Device // local host, for transmit-queue pacing
	local  netsim.NodeID
	peer   netsim.NodeID
	txFlow uint64
	mirror *tcpConn // the peer-side conn object
	txWait bool     // a NotifyTxDrain callback is pending

	handler Handler

	// Sender half.
	streamLen  int64 // bytes queued for transmission (ever)
	sndUna     int64
	sndNxt     int64
	cwnd       int
	ssthresh   int
	dupacks    int
	inRecovery bool
	recoverSeq int64
	retxScan   int64 // SACK recovery: next byte to consider retransmitting
	// One-at-a-time RTT sampling (Karn's algorithm: never from
	// retransmitted segments).
	rttPending bool
	rttSeq     int64
	rttSentAt  sim.Time
	srtt       sim.Time
	rttvar     sim.Time
	rto        sim.Time
	backoff    uint
	timerGen   uint64
	timerOn    bool
	stats      ConnStats

	// Receiver half.
	rcvNxt      int64
	ooo         intervalSet
	inMeta      []msgBound
	unackedPkts int    // in-order packets since the last ACK
	delackGen   uint64 // cancels stale delayed-ACK timers

	// Fluid fast path (sender half). Large transfers on fluid-enabled
	// networks bypass the byte stream and are priced analytically; the
	// pending queue preserves per-connection FIFO delivery across the
	// two engines (a fluid transfer must not overtake queued stream
	// bytes and vice versa).
	fluidChecked bool // path eligibility resolved
	fluidOK      bool
	fluidPath    netsim.PathInfo
	fluidBusy    bool // a fluid transfer is in flight on this half
	pendQ        []pendMsg

	// aborted kills the half (see Conn.Abort): sends are dropped, timers
	// disarm, arriving packets are ignored.
	aborted bool
}

// pendMsg is a message held back to preserve FIFO ordering between the
// packet stream and fluid transfers.
type pendMsg struct {
	msg   Message
	fluid bool
}

// newTCPHalf creates one side of a duplex connection, owned by epA with
// peer epB. The sender half transmits on flow (A,B) and hears ACKs for
// it; the receiver half hears data on flow (B,A). Mirror halves must be
// linked with linkMirror before use.
func newTCPHalf(n *netsim.Network, epA, epB *Endpoint, cfg TCPConfig) *tcpConn {
	c := &tcpConn{
		net: n, clk: n.Sim(), cfg: cfg, nic: epA.host,
		local: epA.id, peer: epB.id,
		txFlow:   flowID(epA.id, epB.id),
		cwnd:     cfg.InitCwnd,
		ssthresh: cfg.RcvWindow,
		rto:      cfg.RTOMin,
	}
	epA.acks[c.txFlow] = c
	epA.data[flowID(epB.id, epA.id)] = c
	return c
}

// linkMirror ties the two halves of a duplex connection together so the
// sender can register message boundaries at the receiver.
func linkMirror(a, b *tcpConn) {
	a.mirror = b
	b.mirror = a
}

// Send queues a message toward the peer. On fluid-enabled networks,
// messages above the fluid threshold whose path crosses a WAN link are
// priced analytically; everything else travels the packet byte stream.
// FIFO delivery order is preserved across the two engines.
func (c *tcpConn) Send(msg Message) {
	if msg.Size <= 0 {
		panic(fmt.Sprintf("transport: message size %d must be positive", msg.Size))
	}
	if c.aborted {
		return
	}
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(msg.Size)
	fluid := c.fluidEligible(msg.Size)
	if c.fluidBusy || len(c.pendQ) > 0 || (fluid && !c.streamDrained()) {
		c.pendQ = append(c.pendQ, pendMsg{msg: msg, fluid: fluid})
		return
	}
	if fluid {
		c.startFluid(msg)
		return
	}
	c.streamSend(msg)
}

// streamSend queues a message onto the packet-level byte stream.
func (c *tcpConn) streamSend(msg Message) {
	c.streamLen += int64(msg.Size)
	// Register the boundary at the receiving side: delivery is gated on
	// the receiver's in-order byte count, so this is causally safe.
	c.mirror.inMeta = append(c.mirror.inMeta, msgBound{end: c.streamLen, msg: msg})
	c.trySend()
}

// streamDrained reports whether every stream byte this half has sent
// was received in order at the peer (so all stream messages delivered).
func (c *tcpConn) streamDrained() bool {
	return c.mirror.rcvNxt >= c.streamLen
}

// fluidEligible decides whether a message of the given size takes the
// fluid path: fluid mode enabled, size above the threshold, and the
// routed path crosses a WAN link (LAN segments stay packet-level — the
// contention the model prices there is emergent queueing, which a
// per-connection fluid cap would erase).
func (c *tcpConn) fluidEligible(size int) bool {
	thr := c.net.FluidThreshold()
	if thr <= 0 || size <= thr {
		return false
	}
	if !c.fluidChecked {
		c.fluidChecked = true
		pi, ok := c.net.PathInfo(c.local, c.peer)
		c.fluidPath = pi
		c.fluidOK = ok && pi.CrossesWAN && pi.Bottleneck > 0
	}
	return c.fluidOK
}

// startFluid prices one message as an analytic flow. The flow's rate
// cap reproduces the packet engine's steady state: the receive window
// (inflated to wire bytes) divided by the path RTT, bounded by what the
// smallest lossy buffer sustains without loss and by the destination
// CPU's per-packet receive cost. The transfer also pays an explicit
// slow-start ramp from the connection's live congestion window — one
// RTT per window, the window growing 1.5× per round exactly as the
// packet engine's delayed-ACK slow start does (+MSS per ACK, one ACK
// per two segments) — and the grown window is written back to c.cwnd,
// so fluid and packet transfers interleaved on one connection observe
// a single consistent window history.
func (c *tcpConn) startFluid(msg Message) {
	c.fluidBusy = true
	pi := c.fluidPath
	nPkts := (msg.Size + c.cfg.MSS - 1) / c.cfg.MSS
	wire := float64(msg.Size + nPkts*c.cfg.HeaderSize)
	pktWire := float64(c.cfg.MSS + c.cfg.HeaderSize)
	inflate := pktWire / float64(c.cfg.MSS)
	bneck := float64(pi.Bottleneck)
	rtt := 2*pi.Latency.Seconds() + pktWire*pi.SerialPerByte + float64(c.cfg.AckSize)/bneck
	wnd := float64(c.cfg.RcvWindow) * inflate
	if pi.MinBuffer > 0 {
		// A window larger than BDP + bottleneck buffer overflows the
		// queue and oscillates under loss; the sustainable average sits
		// below the ceiling (AIMD sawtooth), approximated at 3/4.
		if lim := 0.75 * (bneck*rtt + float64(pi.MinBuffer)); wnd > lim {
			wnd = lim
		}
	}
	capRate := wnd / rtt
	if pi.RxCost > 0 {
		if lim := pktWire / pi.RxCost.Seconds(); capRate > lim {
			capRate = lim
		}
	}
	if capRate > bneck {
		capRate = bneck
	}
	// Slow-start ramp: each round trip carries one congestion window
	// and grows it 1.5× (delayed ACKs acknowledge every second
	// segment, each ACK adds one MSS). The remainder beyond the ramp
	// streams at capRate; sending it still grows the window by half
	// the bytes ACKed, capped at the receive window, and the result is
	// written back so the packet engine inherits it.
	var delay sim.Time
	cw := float64(c.cwnd) * inflate
	for cw < wnd && cw < wire {
		delay += sim.FromSeconds(rtt)
		wire -= cw
		cw *= 1.5
	}
	if wire < pktWire {
		wire = pktWire
	}
	if grown := cw + wire/2; grown < wnd {
		cw = grown
	} else {
		cw = wnd
	}
	if next := int(cw / inflate); next > c.cwnd {
		c.cwnd = next
		if c.cwnd > c.cfg.RcvWindow {
			c.cwnd = c.cfg.RcvWindow
		}
	}
	wireBytes := int64(wire + 0.5)
	start := func() {
		c.net.StartFluidFlow(c.local, c.peer, wireBytes, capRate,
			c.onFluidDrained, func() { c.onFluidDeliver(msg) })
	}
	if delay > 0 {
		c.clk.After(delay, start)
	} else {
		start()
	}
}

// onFluidDrained releases the connection when a fluid transfer's last
// byte enters the pipe: the next queued message may start immediately,
// exactly as the byte stream pipelines back-to-back messages, while
// delivery of the drained transfer is still one path latency away.
func (c *tcpConn) onFluidDrained() {
	if c.aborted {
		return
	}
	c.fluidBusy = false
	c.pumpPend()
}

// onFluidDeliver completes a fluid transfer at the receiver.
func (c *tcpConn) onFluidDeliver(msg Message) {
	if c.aborted || c.mirror.aborted {
		return
	}
	if c.mirror.handler != nil {
		c.mirror.handler(msg)
	}
}

// pumpPend releases held-back messages in FIFO order as the engines
// allow: a fluid head still waits for the stream to drain, a stream
// head waits for no in-flight fluid transfer.
func (c *tcpConn) pumpPend() {
	if c.aborted {
		return
	}
	for !c.fluidBusy && len(c.pendQ) > 0 {
		p := c.pendQ[0]
		if p.fluid && !c.streamDrained() {
			return
		}
		copy(c.pendQ, c.pendQ[1:])
		c.pendQ = c.pendQ[:len(c.pendQ)-1]
		if p.fluid {
			c.startFluid(p.msg)
		} else {
			c.streamSend(p.msg)
		}
	}
}

// SetHandler installs the message delivery callback for this side.
func (c *tcpConn) SetHandler(h Handler) { c.handler = h }

// Abort kills this half: pending queues are dropped, the RTO and
// delayed-ACK timers are disarmed, and every later send, ACK, data
// arrival, or fluid completion is ignored. In-flight packets still
// traverse the network but produce no transport reaction on arrival
// here, so an aborted connection stops generating events.
func (c *tcpConn) Abort() {
	if c.aborted {
		return
	}
	c.aborted = true
	c.stopTimer()
	c.delackGen++
	c.unackedPkts = 0
	c.pendQ = nil
	c.fluidBusy = false
}

// Stats returns the sender-half counters.
func (c *tcpConn) Stats() ConnStats { return c.stats }

// window is the sender's effective window in bytes. Limited transmit
// (RFC 3042) lets the first two duplicate ACKs clock out one new segment
// each, keeping the ACK stream alive for small windows — without it,
// flows trimmed to a few segments by congestion can never gather three
// duplicate ACKs and fall into 200 ms timeouts, which real stacks of the
// paper's era (Linux 2.4 with SACK) did not do.
func (c *tcpConn) window() int {
	w := c.cwnd
	if c.dupacks > 0 && !c.inRecovery {
		lt := c.dupacks
		if lt > 2 {
			lt = 2
		}
		w += lt * c.cfg.MSS
	}
	if c.cfg.RcvWindow < w {
		w = c.cfg.RcvWindow
	}
	if w < c.cfg.MSS {
		w = c.cfg.MSS
	}
	return w
}

// trySend transmits new segments while the window allows and the host
// NIC transmit queue has room (device-queue pacing).
func (c *tcpConn) trySend() {
	if c.aborted {
		return
	}
	c.txWait = false
	for c.sndNxt < c.streamLen {
		inflight := int(c.sndNxt - c.sndUna)
		room := c.window() - inflight
		if room <= 0 {
			return
		}
		if c.nic.TxBacklogBytes() >= c.cfg.TxQueueLimit {
			if !c.txWait {
				c.txWait = true
				c.nic.NotifyTxDrain(c.trySend)
			}
			return
		}
		ln := c.cfg.MSS
		if room < ln {
			ln = room
		}
		if rem := c.streamLen - c.sndNxt; int64(ln) > rem {
			ln = int(rem)
		}
		c.sendSegment(c.sndNxt, ln, false)
		c.sndNxt += int64(ln)
	}
}

// sendSegment injects one data segment. Retransmissions are flagged so
// they are counted and excluded from RTT sampling.
func (c *tcpConn) sendSegment(seq int64, ln int, retx bool) {
	if retx {
		c.stats.Retransmits++
	} else if !c.rttPending {
		c.rttPending = true
		c.rttSeq = seq + int64(ln)
		c.rttSentAt = c.clk.Now()
	}
	c.net.Inject(&netsim.Packet{
		Src: c.local, Dst: c.peer, Flow: c.txFlow,
		Seq: seq, Payload: ln, Size: ln + c.cfg.HeaderSize, Kind: pkData,
	})
	if !c.timerOn {
		c.restartTimer()
	}
}

// effectiveRTO applies exponential backoff with the configured cap.
func (c *tcpConn) effectiveRTO() sim.Time {
	r := c.rto
	for i := uint(0); i < c.backoff; i++ {
		r *= 2
		if r >= c.cfg.RTOMax {
			return c.cfg.RTOMax
		}
	}
	if r > c.cfg.RTOMax {
		r = c.cfg.RTOMax
	}
	return r
}

func (c *tcpConn) restartTimer() {
	c.timerGen++
	c.timerOn = true
	gen := c.timerGen
	c.clk.After(c.effectiveRTO(), func() {
		if gen == c.timerGen && c.timerOn {
			c.onTimeout()
		}
	})
}

func (c *tcpConn) stopTimer() {
	c.timerGen++
	c.timerOn = false
}

// onTimeout handles an RTO: collapse to one segment, go back to the first
// unacknowledged byte, and retransmit with exponential backoff.
func (c *tcpConn) onTimeout() {
	if c.sndUna >= c.streamLen && c.sndNxt <= c.sndUna {
		c.stopTimer()
		return
	}
	c.stats.Timeouts++
	flight := int(c.sndNxt - c.sndUna)
	c.ssthresh = maxInt(flight/2, 2*c.cfg.MSS)
	c.cwnd = c.cfg.MSS
	c.inRecovery = false
	c.dupacks = 0
	c.rttPending = false // Karn: no sample across a timeout
	c.backoff++
	if c.cfg.MaxRetries > 0 && int(c.backoff) > c.cfg.MaxRetries {
		// Give up, as real stacks do (tcp_retries2): the peer has
		// answered nothing across the whole backoff ladder — it is
		// gone, not congested. Without this, a connection to a
		// blackholed host rearms its RTO timer forever and the
		// simulator's event queue never drains.
		c.Abort()
		return
	}
	// Go-back-N: rewind and let the window re-cover the stream.
	c.sndNxt = c.sndUna
	ln := c.cfg.MSS
	if rem := c.streamLen - c.sndNxt; int64(ln) > rem {
		ln = int(rem)
	}
	c.sendSegment(c.sndNxt, ln, true)
	c.sndNxt += int64(ln)
	c.restartTimer()
}

// onAck processes a cumulative acknowledgment arriving at the sender.
func (c *tcpConn) onAck(pkt *netsim.Packet) {
	if c.aborted {
		return
	}
	ack := pkt.Ack
	if ack > c.sndNxt {
		ack = c.sndNxt
	}
	if ack > c.sndUna {
		c.newAck(ack)
	} else if ack == c.sndUna && c.sndNxt > c.sndUna {
		// Stale ACKs (ack < sndUna, possible with ACK-generation
		// jitter) are not duplicate ACKs and must not trigger recovery.
		c.dupAck()
	}
	c.trySend()
}

func (c *tcpConn) newAck(ack int64) {
	if c.rttPending && ack >= c.rttSeq {
		c.sampleRTT(c.clk.Now() - c.rttSentAt)
		c.rttPending = false
	}
	c.backoff = 0
	c.sndUna = ack
	if c.inRecovery {
		if ack >= c.recoverSeq {
			// Full recovery: deflate to ssthresh and resume avoidance.
			c.inRecovery = false
			c.cwnd = c.ssthresh
			c.dupacks = 0
		} else {
			// Partial ack: rescan from the new left edge and keep
			// retransmitting known holes (SACK-style recovery).
			c.retxScan = c.sndUna
			c.pumpRecovery()
		}
	} else {
		c.dupacks = 0
		c.growCwnd()
	}
	if c.sndUna >= c.streamLen {
		c.stopTimer()
	} else {
		c.restartTimer()
	}
}

// dupAck handles a duplicate acknowledgment. The duplicate-ACK
// threshold drops below three when fewer than four segments are in
// flight (early retransmit, RFC 5827): small-window flows would
// otherwise have to wait out a full RTO for every loss.
func (c *tcpConn) dupAck() {
	c.dupacks++
	thresh := 3
	if segs := int(c.sndNxt-c.sndUna+int64(c.cfg.MSS)-1) / c.cfg.MSS; segs <= 3 && c.sndNxt >= c.streamLen {
		thresh = segs - 1
		if thresh < 1 {
			thresh = 1
		}
	}
	if c.dupacks >= thresh && !c.inRecovery {
		c.inRecovery = true
		c.recoverSeq = c.sndNxt
		c.retxScan = c.sndUna
		flight := int(c.sndNxt - c.sndUna)
		c.ssthresh = maxInt(flight/2, 2*c.cfg.MSS)
		c.cwnd = c.ssthresh
		c.stats.FastRetransmits++
		c.pumpRecovery()
		c.restartTimer()
	} else if c.inRecovery {
		// Each further dupack clocks out more hole retransmissions.
		c.pumpRecovery()
	}
}

// retransmitHead resends one MSS at the left edge of the window.
func (c *tcpConn) retransmitHead() {
	ln := c.cfg.MSS
	if rem := c.streamLen - c.sndUna; int64(ln) > rem {
		ln = int(rem)
	}
	if ln <= 0 {
		return
	}
	c.sendSegment(c.sndUna, ln, true)
}

// holesAbove reports the first missing byte range at or after from in
// this side's receive reassembly state, or ok=false if none is known.
// Only ranges below the highest out-of-order byte count as holes: bytes
// beyond it may simply not have been sent yet.
func (c *tcpConn) holesAbove(from int64) (start, end int64, ok bool) {
	if from < c.rcvNxt {
		from = c.rcvNxt
	}
	prevEnd := c.rcvNxt
	for _, iv := range c.ooo.iv {
		if iv.start > prevEnd { // hole candidate [prevEnd, iv.start)
			hs, he := prevEnd, iv.start
			if from < he {
				if from > hs {
					hs = from
				}
				return hs, he, true
			}
		}
		prevEnd = iv.end
	}
	return 0, 0, false
}

// pumpRecovery retransmits known-missing segments during loss recovery,
// pacing itself by the incoming ACK clock (at most two segments per
// call). The sender reads the peer's exact reassembly holes — the
// simulator's stand-in for the SACK blocks that the paper-era Linux
// stacks carried on every ACK. Without selective retransmission, flows
// trimmed to small windows by congestion lose multiple segments per
// window and collapse into serial 200 ms timeouts, which is not how the
// measured systems behaved.
func (c *tcpConn) pumpRecovery() {
	if !c.inRecovery {
		return
	}
	budget := 2
	for budget > 0 {
		from := c.retxScan
		if c.sndUna > from {
			from = c.sndUna
		}
		start, end, ok := c.mirror.holesAbove(from)
		if !ok {
			// No known holes: fall back to the cumulative edge once.
			if c.retxScan <= c.sndUna {
				c.retransmitHead()
				c.retxScan = c.sndUna + int64(c.cfg.MSS)
			}
			return
		}
		ln := c.cfg.MSS
		if int64(ln) > end-start {
			ln = int(end - start)
		}
		c.sendSegment(start, ln, true)
		c.retxScan = start + int64(ln)
		budget--
	}
}

func (c *tcpConn) growCwnd() {
	if c.cwnd < c.ssthresh {
		c.cwnd += c.cfg.MSS // slow start
	} else {
		inc := c.cfg.MSS * c.cfg.MSS / c.cwnd // congestion avoidance
		if inc < 1 {
			inc = 1
		}
		c.cwnd += inc
	}
	if c.cwnd > c.cfg.RcvWindow {
		c.cwnd = c.cfg.RcvWindow
	}
}

// sampleRTT updates srtt/rttvar/rto per RFC 6298.
func (c *tcpConn) sampleRTT(r sim.Time) {
	if c.srtt == 0 {
		c.srtt = r
		c.rttvar = r / 2
	} else {
		d := c.srtt - r
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + r) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.RTOMin {
		c.rto = c.cfg.RTOMin
	}
	if c.rto > c.cfg.RTOMax {
		c.rto = c.cfg.RTOMax
	}
}

// onData processes an arriving data segment at the receiver half.
// In-order segments are acknowledged with the delayed-ACK policy (every
// second packet, or after the delayed-ACK timeout); anything anomalous —
// duplicates, holes — is acknowledged immediately so the sender's loss
// detection keeps working.
func (c *tcpConn) onData(pkt *netsim.Packet) {
	if c.aborted {
		return
	}
	seq, end := pkt.Seq, pkt.Seq+int64(pkt.Payload)
	switch {
	case end <= c.rcvNxt:
		// Entire segment is a duplicate.
		c.sendAck()
	case seq <= c.rcvNxt:
		if end > c.rcvNxt {
			c.rcvNxt = end
		}
		c.rcvNxt = c.ooo.advance(c.rcvNxt)
		c.deliver()
		// The peer's stream toward us advanced: it may unblock a fluid
		// transfer waiting for the stream to drain.
		c.mirror.pumpPend()
		if !c.ooo.empty() {
			// Filling part of a hole: ack immediately.
			c.sendAck()
			return
		}
		c.unackedPkts++
		if c.unackedPkts >= 2 {
			c.sendAck()
			return
		}
		// First unacked packet: arm the delayed-ACK timer.
		gen := c.delackGen
		c.clk.After(c.cfg.DelAckTimeout, func() {
			if gen == c.delackGen && c.unackedPkts > 0 {
				c.sendAck()
			}
		})
	default:
		c.ooo.add(seq, end) // hole: buffer and dup-ack immediately
		c.sendAck()
	}
}

// sendAck emits a cumulative ACK back to the peer's sender half, with a
// small random generation delay modeling NIC interrupt coalescing and
// host scheduling noise. Besides realism, the jitter desynchronizes the
// AIMD cycles of concurrent flows, as real hosts' noise does.
func (c *tcpConn) sendAck() {
	c.unackedPkts = 0
	c.delackGen++
	jitter := sim.Time(0)
	if c.cfg.AckJitter > 0 {
		jitter = sim.Time(c.clk.Rand().Int63n(int64(c.cfg.AckJitter) + 1))
	}
	ackNo := c.rcvNxt
	c.clk.After(jitter, func() {
		c.net.Inject(&netsim.Packet{
			Src: c.local, Dst: c.peer,
			Flow: flowID(c.peer, c.local), // the peer's tx flow
			Ack:  ackNo, Size: c.cfg.AckSize, Kind: pkAck, Prio: true,
		})
	})
}

// deliver fires the handler for every message whose last byte is now in
// order.
func (c *tcpConn) deliver() {
	for len(c.inMeta) > 0 && c.inMeta[0].end <= c.rcvNxt {
		m := c.inMeta[0]
		c.inMeta = c.inMeta[1:]
		if c.handler != nil {
			c.handler(m.msg)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
