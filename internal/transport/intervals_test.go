package transport

import (
	"math/rand"
	"testing"
)

// Dedicated coverage for intervalSet (intervals.go): the out-of-order
// receive buffer behind SACK reassembly. TestIntervalSet
// (transport_test.go) covers the basic merge shapes; these tests pin
// the failure paths and fuzz the structure against a reference model.

// TestIntervalSetInvertedRangeRejected: an inverted or empty range is
// the failure path of add — it must be a no-op, never a corrupted
// entry.
func TestIntervalSetInvertedRangeRejected(t *testing.T) {
	var s intervalSet
	s.add(20, 10) // inverted
	if !s.empty() {
		t.Fatalf("inverted add created data: %+v", s.iv)
	}
	s.add(10, 20)
	s.add(40, 30) // inverted, with existing data
	if len(s.iv) != 1 || s.iv[0] != (interval{10, 20}) {
		t.Fatalf("inverted add corrupted the set: %+v", s.iv)
	}
	if got := s.advance(0); got != 0 {
		t.Fatalf("advance(0) = %d, want 0 (hole before first range)", got)
	}
}

// TestIntervalSetAbsorbsSpanningAdd: one add can swallow several
// existing ranges at once.
func TestIntervalSetAbsorbsSpanningAdd(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(30, 40)
	s.add(50, 60)
	s.add(5, 65)
	if len(s.iv) != 1 || s.iv[0] != (interval{5, 65}) {
		t.Fatalf("spanning add failed to absorb: %+v", s.iv)
	}
}

// TestIntervalSetAdjacencyMerges: ranges touching end-to-start merge;
// a one-byte gap does not.
func TestIntervalSetAdjacencyMerges(t *testing.T) {
	var s intervalSet
	s.add(10, 20)
	s.add(20, 30) // adjacent: merges
	if len(s.iv) != 1 || s.iv[0] != (interval{10, 30}) {
		t.Fatalf("adjacent ranges did not merge: %+v", s.iv)
	}
	s.add(31, 40) // one-byte hole at 30
	if len(s.iv) != 2 {
		t.Fatalf("hole collapsed: %+v", s.iv)
	}
	if got := s.advance(10); got != 30 {
		t.Fatalf("advance stopped at %d, want 30 (hole at 30)", got)
	}
	if s.empty() {
		t.Fatal("data past the hole must stay buffered")
	}
}

// TestIntervalSetAdvancePartialOverlap: advancing from inside the
// first range consumes it from the frontier.
func TestIntervalSetAdvancePartialOverlap(t *testing.T) {
	var s intervalSet
	s.add(10, 30)
	if got := s.advance(15); got != 30 || !s.empty() {
		t.Fatalf("advance(15) = %d (empty=%v), want 30 and empty", got, s.empty())
	}
	// Advancing past everything leaves pos untouched.
	s.add(40, 50)
	if got := s.advance(60); got != 60 || !s.empty() {
		t.Fatalf("advance(60) = %d (empty=%v), want 60 and empty", got, s.empty())
	}
}

// TestIntervalSetRandomAgainstReference fuzzes add/advance against a
// per-byte reference bitmap: the set must report exactly the reference
// frontier after every advance, across duplicated, overlapping and
// inverted adds.
func TestIntervalSetRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		var s intervalSet
		const span = 200
		have := [span]bool{}
		pos := int64(0)
		for op := 0; op < 60; op++ {
			a := int64(rng.Intn(span))
			b := int64(rng.Intn(span))
			if rng.Intn(5) == 0 {
				a, b = b, a // sometimes inverted on purpose
			}
			s.add(a, b)
			for i := a; i < b && i < span; i++ {
				have[i] = true
			}
			// Reference frontier: first uncovered byte at or after pos.
			want := pos
			for want < span && have[want] {
				want++
			}
			if got := s.advance(pos); got != want {
				t.Fatalf("iter %d op %d: advance(%d) = %d, want %d (after add [%d,%d))",
					iter, op, pos, got, want, a, b)
			} else {
				pos = got
			}
		}
	}
}
