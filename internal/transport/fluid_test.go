package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// buildWANPair creates two hosts in separate switch fabrics joined by a
// router-router WAN link, with a TCP fabric on top. fluid toggles the
// flow-level pricer on the underlying network.
func buildWANPair(seed int64, fluid bool) (*sim.Simulator, *netsim.Network, *Fabric) {
	s := sim.New(seed)
	nw := netsim.New(s)
	lan := netsim.LinkConfig{Rate: 125_000_000, Latency: 20 * sim.Microsecond}
	wan := netsim.LinkConfig{Rate: 12_500_000, Latency: 10 * sim.Millisecond}
	hosts := make([]*netsim.Device, 2)
	routers := make([]*netsim.Device, 2)
	for i := 0; i < 2; i++ {
		hosts[i] = nw.AddHost("h")
		sw := nw.AddSwitch("sw", netsim.SwitchConfig{PortBuffer: 1 << 20})
		nw.Connect(hosts[i], sw, lan)
		routers[i] = nw.AddRouter("rt", netsim.RouterConfig{ProcDelay: 5 * sim.Microsecond})
		nw.Connect(sw, routers[i], lan)
	}
	port := netsim.PortConfig{Buffer: 256 << 10}
	nw.ConnectPorts(routers[0], routers[1], wan, wan, port, port)
	nw.ComputeRoutes()
	if fluid {
		nw.EnableFluid(netsim.FluidConfig{})
	}
	cfg := FabricConfig{Kind: TCP}
	cfg.TCP.RcvWindow = 256 << 10
	return s, nw, NewFabric(nw, hosts, cfg)
}

// TestFluidOrderingAcrossEngines interleaves small (packet) and large
// (fluid) messages on one connection and requires strict FIFO delivery:
// a fluid transfer must not overtake queued stream bytes, nor stream
// bytes a fluid transfer.
func TestFluidOrderingAcrossEngines(t *testing.T) {
	s, _, f := buildWANPair(7, true)
	var seqs []int64
	f.Conn(1, 0).SetHandler(func(m Message) { seqs = append(seqs, m.MsgSeq) })
	sizes := []int{1000, 200 << 10, 2000, 64 << 10, 100 << 10, 500, 300 << 10, 900}
	for i, sz := range sizes {
		f.Conn(0, 1).Send(Message{MsgSeq: int64(i), Size: sz})
	}
	s.Run()
	if len(seqs) != len(sizes) {
		t.Fatalf("delivered %d messages, want %d", len(seqs), len(sizes))
	}
	for i, q := range seqs {
		if q != int64(i) {
			t.Fatalf("out of order at %d: %v", i, seqs[:i+1])
		}
	}
}

// TestFluidMatchesPacketBelowThreshold pins the fallback: on a
// fluid-enabled network, transfers at or below the threshold must
// produce bit-identical delivery times to the pure packet engine.
func TestFluidMatchesPacketBelowThreshold(t *testing.T) {
	run := func(fluid bool) sim.Time {
		s, _, f := buildWANPair(11, fluid)
		var when sim.Time
		f.Conn(1, 0).SetHandler(func(m Message) { when = s.Now() })
		f.Conn(0, 1).Send(Message{Size: netsim.DefaultFluidThreshold})
		s.Run()
		return when
	}
	packet, fluid := run(false), run(true)
	if packet != fluid {
		t.Fatalf("threshold-sized transfer diverged: packet %v, fluid %v", packet, fluid)
	}
}

// TestFluidLargeTransferTiming sanity-checks the analytic pricing of a
// large WAN transfer: delivery must land between the hard physical
// lower bound (wire bytes at the bottleneck rate plus path latency) and
// the packet engine's own completion time with slack.
func TestFluidLargeTransferTiming(t *testing.T) {
	const size = 2 << 20
	run := func(fluid bool) sim.Time {
		s, _, f := buildWANPair(13, fluid)
		var when sim.Time
		f.Conn(1, 0).SetHandler(func(m Message) { when = s.Now() })
		f.Conn(0, 1).Send(Message{Size: size})
		s.Run()
		return when
	}
	packet, fluid := run(false), run(true)
	floor := sim.FromSeconds(float64(size) / 12_500_000)
	if fluid < floor {
		t.Fatalf("fluid delivery %v beats the bottleneck-rate floor %v", fluid, floor)
	}
	// The two engines price the same transfer: within 15% of each other.
	diff := float64(fluid-packet) / float64(packet)
	if diff < -0.15 || diff > 0.15 {
		t.Fatalf("fluid %v vs packet %v: relative difference %.1f%% exceeds 15%%",
			fluid, packet, 100*diff)
	}
}

// TestFluidLANStaysPacket pins eligibility: on an all-LAN network the
// fluid pricer must never engage even for large transfers, so LAN
// contention keeps its emergent packet-level queueing.
func TestFluidLANStaysPacket(t *testing.T) {
	run := func(fluid bool) sim.Time {
		s := sim.New(17)
		nw := netsim.New(s)
		sw := nw.AddSwitch("sw", netsim.SwitchConfig{PortBuffer: 1 << 20})
		hosts := make([]*netsim.Device, 2)
		for i := range hosts {
			hosts[i] = nw.AddHost("h")
			nw.Connect(hosts[i], sw, gigELink)
		}
		nw.ComputeRoutes()
		if fluid {
			nw.EnableFluid(netsim.FluidConfig{})
		}
		f := NewFabric(nw, hosts, FabricConfig{Kind: TCP})
		var when sim.Time
		f.Conn(1, 0).SetHandler(func(m Message) { when = s.Now() })
		f.Conn(0, 1).Send(Message{Size: 1 << 20})
		s.Run()
		return when
	}
	packet, fluid := run(false), run(true)
	if packet != fluid {
		t.Fatalf("LAN transfer diverged under fluid mode: packet %v, fluid %v", packet, fluid)
	}
}
