package transport

// intervalSet tracks received out-of-order byte ranges [start, end) in a
// sorted, non-overlapping slice. Sizes stay tiny in practice (a handful
// of holes per loss episode), so linear merging is fine.
type intervalSet struct {
	iv []interval
}

type interval struct{ start, end int64 }

// add inserts [start, end), merging overlapping and adjacent ranges.
func (s *intervalSet) add(start, end int64) {
	if start >= end {
		return
	}
	out := s.iv[:0]
	inserted := false
	for _, cur := range s.iv {
		switch {
		case cur.end < start: // cur entirely before: keep
			out = append(out, cur)
		case end < cur.start: // cur entirely after
			if !inserted {
				out = append(out, interval{start, end})
				inserted = true
			}
			out = append(out, cur)
		default: // overlap or adjacency: absorb cur
			if cur.start < start {
				start = cur.start
			}
			if cur.end > end {
				end = cur.end
			}
		}
	}
	if !inserted {
		out = append(out, interval{start, end})
	}
	s.iv = out
}

// advance consumes ranges contiguous with pos and returns the new
// in-order frontier.
func (s *intervalSet) advance(pos int64) int64 {
	for len(s.iv) > 0 && s.iv[0].start <= pos {
		if s.iv[0].end > pos {
			pos = s.iv[0].end
		}
		s.iv = s.iv[1:]
	}
	return pos
}

// empty reports whether no out-of-order data is buffered.
func (s *intervalSet) empty() bool { return len(s.iv) == 0 }
