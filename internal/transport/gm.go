package transport

import (
	"fmt"

	"repro/internal/netsim"
)

// gmConn is one side of a duplex GM-like (Myrinet) connection. The
// network is lossless and FIFO, so the transport needs neither
// acknowledgments nor retransmission: messages are segmented into MTU
// packets and injected; the receiver counts arrived payload bytes and
// fires the handler at message boundaries.
type gmConn struct {
	net    *netsim.Network
	cfg    GMConfig
	local  netsim.NodeID
	peer   netsim.NodeID
	txFlow uint64
	mirror *gmConn

	handler Handler

	streamLen int64 // bytes queued (and immediately injected)
	rcvd      int64 // in-order payload bytes received
	inMeta    []msgBound
	stats     ConnStats

	// aborted kills the half (see Conn.Abort).
	aborted bool
}

func newGMHalf(n *netsim.Network, epA, epB *Endpoint, cfg GMConfig) *gmConn {
	c := &gmConn{
		net: n, cfg: cfg,
		local: epA.id, peer: epB.id,
		txFlow: flowID(epA.id, epB.id),
	}
	epA.data[flowID(epB.id, epA.id)] = c
	return c
}

func linkGMMirror(a, b *gmConn) {
	a.mirror = b
	b.mirror = a
}

// Send segments the message into MTU-sized packets and hands them to the
// NIC immediately; the lossless network's backpressure paces them.
func (c *gmConn) Send(msg Message) {
	if msg.Size <= 0 {
		panic(fmt.Sprintf("transport: message size %d must be positive", msg.Size))
	}
	if c.aborted {
		return
	}
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(msg.Size)
	c.streamLen += int64(msg.Size)
	c.mirror.inMeta = append(c.mirror.inMeta, msgBound{end: c.streamLen, msg: msg})
	remaining := msg.Size
	for remaining > 0 {
		ln := c.cfg.MTU
		if remaining < ln {
			ln = remaining
		}
		c.net.Inject(&netsim.Packet{
			Src: c.local, Dst: c.peer, Flow: c.txFlow,
			Payload: ln, Size: ln + c.cfg.HeaderSize, Kind: pkGM,
		})
		remaining -= ln
	}
}

func (c *gmConn) SetHandler(h Handler) { c.handler = h }

func (c *gmConn) Stats() ConnStats { return c.stats }

// Abort kills this half: later sends are dropped and arriving packets
// are ignored. GM has no timers, so there is nothing to disarm.
func (c *gmConn) Abort() {
	c.aborted = true
	c.inMeta = nil
}

// onData counts arrived bytes and delivers completed messages. The
// lossless network guarantees FIFO, loss-free delivery, so a running
// counter suffices.
func (c *gmConn) onData(pkt *netsim.Packet) {
	if c.aborted {
		return
	}
	c.rcvd += int64(pkt.Payload)
	for len(c.inMeta) > 0 && c.inMeta[0].end <= c.rcvd {
		m := c.inMeta[0]
		c.inMeta = c.inMeta[1:]
		if c.handler != nil {
			c.handler(m.msg)
		}
	}
}

// onAck is never called for GM (no acknowledgments on the wire).
func (c *gmConn) onAck(pkt *netsim.Packet) {}
